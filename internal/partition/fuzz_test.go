package partition

import (
	"testing"

	"hypersort/internal/cube"
)

// FuzzFindCuttingSet cross-checks the branch-and-bound search against the
// brute-force subset enumeration for fuzzer-chosen fault sets on Q_4 and
// Q_5. Run with `go test -fuzz=FuzzFindCuttingSet ./internal/partition`.
func FuzzFindCuttingSet(f *testing.F) {
	f.Add(uint8(4), uint32(0b1001_0110))
	f.Add(uint8(5), uint32(0x80000001))
	f.Add(uint8(4), uint32(0))
	f.Add(uint8(5), uint32(0xFFFF))
	f.Fuzz(func(t *testing.T, dimRaw uint8, faultBits uint32) {
		n := 4 + int(dimRaw)%2
		h := cube.New(n)
		faults := cube.NewNodeSet()
		for b := 0; b < h.Size() && b < 32; b++ {
			if faultBits>>uint(b)&1 == 1 {
				faults.Add(cube.NodeID(b))
			}
		}
		set, err := FindCuttingSet(h, faults)
		// Brute force ground truth.
		want := -1
		for k := 0; k <= n && want < 0; k++ {
			for _, dims := range cube.Combinations(n, k) {
				if cube.MustSplit(h, cube.CutSequence(dims)).IsSingleFault(faults) {
					want = k
					break
				}
			}
		}
		if want > n-1 || (want == n && len(faults) > 1) {
			// Separable only with a full cut (or not at all): the search
			// caps at n-1 so every subcube keeps a live processor.
		}
		if err != nil {
			// The search may legitimately refuse sets needing n cuts;
			// verify brute force agrees nothing shorter exists.
			if want >= 0 && want <= n-1 {
				t.Fatalf("faults=%v: search refused but brute force found %d cuts", faults.Sorted(), want)
			}
			return
		}
		if set.Mincut != want {
			t.Fatalf("faults=%v: mincut %d, brute force %d", faults.Sorted(), set.Mincut, want)
		}
		for _, d := range set.Sequences {
			if !cube.MustSplit(h, d).IsSingleFault(faults) {
				t.Fatalf("faults=%v: sequence %v not single-fault", faults.Sorted(), d)
			}
		}
	})
}
