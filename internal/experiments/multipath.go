package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// MultipathRow is one (n, r, M) cell of the routing study (E24): the
// same sort run under the legacy single-path e-cube discipline and
// under multipath striping, both against a machine with one hot link
// injected on the dimension-0 edge 0-1 (the busiest wire of a bitonic
// schedule: every dimension-0 compare-exchange between nodes 0 and 1
// crosses it). Single and Multi are congestion-priced makespans — link
// queueing and the hot-link surcharge included — so the comparison
// isolates exactly what the routing policy changes.
type MultipathRow struct {
	N, R, M int
	// Surcharge is the injected hot link's per-traversal cost.
	Surcharge machine.Time
	// Single and Multi are the simulated makespans under RouteSingle
	// and RouteMultipath respectively.
	Single, Multi machine.Time
	// Speedup is Single/Multi (> 1 means multipath won).
	Speedup float64
	// StripedSends counts the transfers the multipath run actually
	// striped across more than one path.
	StripedSends int64
	// WaitSingle and WaitMulti are the runs' total modeled link-queue
	// waits (machine.Result.LinkWait).
	WaitSingle, WaitMulti machine.Time
}

// MultipathConfig parameterizes E24.
type MultipathConfig struct {
	// Ns are the cube dimensions swept; zero means {4, 5}.
	Ns []int
	// Rs are the fault counts swept; zero means {0, 1}.
	Rs []int
	// Ms are the element counts swept; zero means {1600, 6400} — large
	// enough that every compare-split transfer clears the striping
	// threshold on the default dimensions.
	Ms []int
	// Surcharge is the hot link's per-traversal cost; zero means
	// M/2 * Cost.Elem per cell (half the payload's transfer time, so
	// the hot wire dominates without drowning the rest of the model).
	Surcharge machine.Time
	Seed      uint64
	Cost      machine.CostModel
}

func (c *MultipathConfig) fill() {
	if len(c.Ns) == 0 {
		c.Ns = []int{4, 5}
	}
	if len(c.Rs) == 0 {
		c.Rs = []int{0, 1}
	}
	if len(c.Ms) == 0 {
		c.Ms = []int{1600, 6400}
	}
	if (c.Cost == machine.CostModel{}) {
		c.Cost = machine.PaperCostModel()
	}
}

// Multipath runs E24: for every (n, r, M) cell, sort the same keys on
// the same faulty cube with a hot dimension-0 link under both routing
// policies and compare congestion-priced makespans. The single-path run
// keeps the legacy hop-objective plan; the multipath run plans with the
// congestion objective, exactly as the engine does for
// RouteMultipath. Both outputs are verified sorted and identical.
func Multipath(cfg MultipathConfig) ([]MultipathRow, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	var rows []MultipathRow
	for _, n := range cfg.Ns {
		h := cube.New(n)
		for _, r := range cfg.Rs {
			faults := sampleFaults(h, r, rng)
			// Keep the hot edge's endpoints healthy so every cell
			// exercises the 0-1 exchange the study is about.
			for faults.Has(0) || faults.Has(1) {
				faults = sampleFaults(h, r, rng)
			}
			planHops, err := partition.BuildPlan(n, faults)
			if err != nil {
				return nil, err
			}
			planCong, err := partition.BuildPlanObjective(n, faults, partition.ObjectiveCongestion)
			if err != nil {
				return nil, err
			}
			for _, m := range cfg.Ms {
				keys := workload.MustGenerate(workload.Uniform, m, rng)
				surcharge := cfg.Surcharge
				if surcharge == 0 {
					surcharge = machine.Time(int64(m) / 2 * int64(cfg.Cost.Elem))
				}
				hot := map[cube.Edge]machine.Time{cube.NewEdge(0, 1): surcharge}

				single := machine.MustNew(machine.Config{
					Dim: n, Faults: faults, Cost: cfg.Cost, HotLinks: hot,
				})
				sortedS, resS, err := core.FTSort(single, planHops, keys)
				if err != nil {
					return nil, fmt.Errorf("experiments: multipath single n=%d r=%d M=%d: %w", n, r, m, err)
				}
				multi := machine.MustNew(machine.Config{
					Dim: n, Faults: faults, Cost: cfg.Cost, HotLinks: hot,
					Routing: machine.RouteMultipath,
				})
				sortedM, resM, err := core.FTSort(multi, planCong, keys)
				if err != nil {
					return nil, fmt.Errorf("experiments: multipath multi n=%d r=%d M=%d: %w", n, r, m, err)
				}
				if !sortutil.IsSorted(sortedS, sortutil.Ascending) || !sortutil.IsSorted(sortedM, sortutil.Ascending) {
					return nil, fmt.Errorf("experiments: multipath n=%d r=%d M=%d produced unsorted output", n, r, m)
				}
				for i := range sortedS {
					if sortedS[i] != sortedM[i] {
						return nil, fmt.Errorf("experiments: multipath n=%d r=%d M=%d outputs diverge at %d", n, r, m, i)
					}
				}
				rows = append(rows, MultipathRow{
					N: n, R: r, M: m,
					Surcharge:    surcharge,
					Single:       resS.Makespan,
					Multi:        resM.Makespan,
					Speedup:      float64(resS.Makespan) / float64(resM.Makespan),
					StripedSends: resM.StripedSends,
					WaitSingle:   resS.LinkWait,
					WaitMulti:    resM.LinkWait,
				})
			}
		}
	}
	return rows, nil
}

// FormatMultipath renders E24's rows.
func FormatMultipath(rows []MultipathRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tM\thot surcharge\tsingle\tmultipath\tspeedup\tstriped\twait single\twait multi")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.3fx\t%d\t%d\t%d\n",
			r.N, r.R, r.M, r.Surcharge, r.Single, r.Multi, r.Speedup,
			r.StripedSends, r.WaitSingle, r.WaitMulti)
	}
	w.Flush()
	return b.String()
}
