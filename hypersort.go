// Package hypersort is a fault-tolerant parallel sorting library for
// (simulated) hypercube multicomputers, reproducing Sheu, Chen & Chang,
// "Fault-Tolerant Sorting Algorithm on Hypercube Multicomputers"
// (ICPP 1992).
//
// An n-dimensional hypercube of 2^n processors with up to n-1 known
// faulty processors sorts M keys with no spare hardware: the cube is
// partitioned into subcubes holding at most one fault each (with the
// minimum number of cuts), a single-fault-tolerant bitonic sort runs
// inside each subcube, and a bitonic-like merge runs across subcubes.
// Against the classic alternative — retreating to the largest fault-free
// subcube — the algorithm keeps at least 3/4 of the machine working
// instead of as little as 1/4.
//
// # Quick start
//
//	s, err := hypersort.New(hypersort.Config{Dim: 6, Faults: []hypersort.NodeID{3, 17}})
//	if err != nil { ... }
//	sorted, stats, err := s.Sort(keys)
//
// The machine is simulated: each processor is a goroutine, links are
// channels, and Stats reports virtual time in units of the configured
// cost model (per-comparison and per-key-per-hop constants), so
// experiments are deterministic and reproducible. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-versus-measured record.
package hypersort

import (
	"fmt"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/diagnosis"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/selection"
	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

// Key is one sortable element.
type Key = sortutil.Key

// NodeID is a processor address in the hypercube; bit d is the
// coordinate along dimension d.
type NodeID = cube.NodeID

// FaultModel selects how faulty processors treat traffic.
type FaultModel = machine.FaultModel

// Fault model values: Partial faults still forward messages (the
// NCUBE/VERTEX behaviour the paper simulated); Total faults kill the
// node's links too, forcing detours.
const (
	Partial = machine.Partial
	Total   = machine.Total
)

// Time is simulated time in cost-model units.
type Time = machine.Time

// CostModel carries the simulator's time constants: Compare (the paper's
// t_c), Elem (t_s/r, per key per hop), and Startup (per-hop message
// overhead, zero in the paper's model).
type CostModel = machine.CostModel

// DefaultCostModel mirrors an NCUBE-era communication/computation ratio.
func DefaultCostModel() CostModel { return machine.DefaultCostModel() }

// PaperCostModel is the unit-cost model of the paper's §3 analysis.
func PaperCostModel() CostModel { return machine.PaperCostModel() }

// Protocol selects the compare-exchange wire protocol.
type Protocol = bitonic.Protocol

// Protocol values: FullBlock swaps whole chunks in one message (default);
// HalfExchange is the paper's literal two-round Step 7(a)-(c).
const (
	FullBlock    = bitonic.FullBlock
	HalfExchange = bitonic.HalfExchange
)

// TraceEvent is one simulator event (send, receive, or compute); see
// Config.Trace.
type TraceEvent = machine.TraceEvent

// RoutingPolicy selects how compare-split traffic is routed and priced.
type RoutingPolicy = machine.RoutingPolicy

// Routing policy values: RouteECube (default) is the classic
// deterministic dimension-order discipline with hop-count pricing — the
// paper's model, bit-identical to every prior release. RouteMultipath
// stripes large transfers across vertex-disjoint paths and prices
// per-link queueing: the partition heuristic switches to the
// congestion-aware objective and Stats.Makespan includes modeled link
// wait. See DESIGN.md §12.
const (
	RouteECube     = machine.RouteSingle
	RouteMultipath = machine.RouteMultipath
)

// Config assembles a fault-tolerant sorter.
type Config struct {
	// Dim is the hypercube dimension n (2^n processors).
	Dim int
	// Faults lists faulty processor addresses. The paper's guarantee
	// covers up to Dim-1 faults; larger sets are accepted whenever a
	// single-fault partition still exists.
	Faults []NodeID
	// Model is the fault model (default Partial, as in the paper's
	// NCUBE simulation).
	Model FaultModel
	// Cost is the simulator cost model (default PaperCostModel).
	Cost CostModel
	// Protocol is the compare-exchange wire protocol (default FullBlock).
	Protocol Protocol
	// LinkFaults lists dead links as endpoint pairs; messages route
	// around them (the paper's "faulty processors/links" model).
	LinkFaults [][2]NodeID
	// AccountDistribution includes the host scatter/gather of keys in
	// the simulated time (the paper's cost model excludes it).
	AccountDistribution bool
	// Routing selects the compare-split routing policy (default
	// RouteECube, the paper's hop-priced dimension-order discipline).
	Routing RoutingPolicy
	// Trace, if non-nil, receives every simulator event during Sort; it
	// is called concurrently from processor goroutines and must be safe
	// for concurrent use (see internal/trace.Recorder).
	Trace func(TraceEvent)
}

// Stats reports one sort's simulated execution.
//
// Each request — including each request of an Engine batch — runs on its
// own simulated machine with its own virtual clock, so Stats values from
// different requests are independent. To aggregate over a batch, sum the
// work counters (Messages, KeysSent, KeyHops, Comparisons); Makespans do
// not sum — independent machines run in parallel, so the batch's
// simulated critical path is the maximum Makespan, which is what
// SumStats reports.
type Stats struct {
	// Makespan is the simulated completion time in cost-model units.
	Makespan int64
	// Messages, KeysSent, KeyHops and Comparisons count communication
	// and computation over all processors.
	Messages    int64
	KeysSent    int64
	KeyHops     int64
	Comparisons int64
}

// Partition describes the partition decisions behind a sorter, mirroring
// the paper's §2.2-§3 outputs.
type Partition struct {
	// Mincut is m, the minimum number of cutting dimensions.
	Mincut int
	// CuttingSet is Ψ: every minimum-length cutting sequence.
	CuttingSet [][]int
	// Chosen is the selected sequence D_β.
	Chosen []int
	// ExtraComm is formula (1)'s bound for Chosen.
	ExtraComm int
	// Dangling lists healthy processors idled for load balance.
	Dangling []NodeID
	// Working is N', the number of key-holding processors.
	Working int
	// Utilization is Working over healthy processors, in [0, 1].
	Utilization float64
}

// Sorter is a reusable fault-tolerant sorter for one machine
// configuration. It is safe for sequential reuse; concurrent Sort calls
// on the same Sorter are not supported (the underlying simulated machine
// is single-run). For concurrent requests, repeated configurations, or
// batch workloads, use Engine, which caches partition plans and pools
// independent machines per configuration.
type Sorter struct {
	mach *machine.Machine
	plan *partition.Plan
	opts core.Options
}

// New validates the configuration, runs the partition algorithm, and
// builds the simulated machine.
func New(cfg Config) (*Sorter, error) {
	if cfg.Dim < 0 || cfg.Dim > cube.MaxDim {
		return nil, fmt.Errorf("hypersort: dimension %d outside [0,%d]", cfg.Dim, cube.MaxDim)
	}
	faults := cube.NewNodeSet(cfg.Faults...)
	for _, f := range cfg.Faults {
		if !cube.New(cfg.Dim).Contains(f) {
			return nil, fmt.Errorf("hypersort: fault address %d outside Q_%d", f, cfg.Dim)
		}
	}
	if len(faults) >= 1<<uint(cfg.Dim) {
		return nil, fmt.Errorf("hypersort: %d faults leave no working processor on Q_%d", len(faults), cfg.Dim)
	}
	obj := partition.ObjectiveHops
	if cfg.Routing == RouteMultipath {
		obj = partition.ObjectiveCongestion
	}
	plan, err := partition.BuildPlanObjective(cfg.Dim, faults, obj)
	if err != nil {
		return nil, err
	}
	links := cube.NewEdgeSet()
	for _, pair := range cfg.LinkFaults {
		if cube.HammingDistance(pair[0], pair[1]) != 1 {
			return nil, fmt.Errorf("hypersort: link fault %d-%d is not a hypercube edge", pair[0], pair[1])
		}
		links.Add(pair[0], pair[1])
	}
	mach, err := machine.New(machine.Config{
		Dim:        cfg.Dim,
		Faults:     faults,
		Model:      cfg.Model,
		Cost:       cfg.Cost,
		LinkFaults: links,
		Routing:    cfg.Routing,
		Trace:      cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Sorter{
		mach: mach,
		plan: plan,
		opts: core.Options{Protocol: cfg.Protocol, AccountDistribution: cfg.AccountDistribution},
	}, nil
}

// Sort sorts keys ascending on the faulty hypercube and returns the
// sorted slice with execution statistics. The input is not modified.
func (s *Sorter) Sort(keys []Key) ([]Key, Stats, error) {
	sorted, res, err := core.FTSortOpt(s.mach, s.plan, keys, s.opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return sorted, statsOf(res), nil
}

// Partition returns the partition decisions (Ψ, D_β, dangling
// processors, utilization) the sorter operates with.
func (s *Sorter) Partition() Partition {
	return partitionInfo(s.plan)
}

// partitionInfo converts an internal plan into the public Partition.
func partitionInfo(p *partition.Plan) Partition {
	out := Partition{
		Mincut:      p.Mincut(),
		Chosen:      append([]int(nil), p.Chosen...),
		ExtraComm:   p.ExtraComm,
		Dangling:    append([]NodeID(nil), p.Dangling...),
		Working:     p.Working(),
		Utilization: p.Utilization(),
	}
	for _, d := range p.Set.Sequences {
		out.CuttingSet = append(out.CuttingSet, append([]int(nil), d...))
	}
	return out
}

// EstimatedTime evaluates the paper's §3 closed-form worst-case cost for
// sorting m keys on this configuration, in cost-model units.
func (s *Sorter) EstimatedTime(m int) (int64, error) {
	t, err := core.CostEstimate(m, s.plan.Cube.Dim(), s.plan.Mincut(), s.plan.HasDead, s.mach.Cost())
	return int64(t), err
}

// KthSmallest returns the k-th smallest key (1-based) without sorting,
// via distributed binary search with rank-count reductions on the same
// fault-tolerant layout — far cheaper than Sort when only an order
// statistic is needed. See internal/selection for the algorithm.
func (s *Sorter) KthSmallest(keys []Key, k int) (Key, Stats, error) {
	v, res, err := selection.KthSmallest(s.mach, s.plan, keys, k)
	if err != nil {
		return 0, Stats{}, err
	}
	return v, statsOf(res), nil
}

// Median returns the lower median of keys without sorting.
func (s *Sorter) Median(keys []Key) (Key, Stats, error) {
	v, res, err := selection.Median(s.mach, s.plan, keys)
	if err != nil {
		return 0, Stats{}, err
	}
	return v, statsOf(res), nil
}

// TopK returns the k largest keys in ascending order without a full
// sort.
func (s *Sorter) TopK(keys []Key, k int) ([]Key, Stats, error) {
	out, res, err := selection.TopK(s.mach, s.plan, keys, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, statsOf(res), nil
}

// Sort is the one-call convenience: configure, plan, and sort.
func Sort(cfg Config, keys []Key) ([]Key, Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return s.Sort(keys)
}

// Diagnose runs a simulated PMC test round on a Q_dim whose true fault
// set is trueFaults and decodes the syndrome, returning the identified
// faults. It makes the paper's "fault locations are known beforehand"
// assumption executable: callers can feed the result straight into
// Config.Faults. The seed drives the faulty testers' arbitrary replies.
func Diagnose(dim int, trueFaults []NodeID, seed uint64) ([]NodeID, error) {
	h := cube.New(dim)
	faults := cube.NewNodeSet(trueFaults...)
	syndrome := diagnosis.Collect(h, faults, xrand.New(seed))
	found, err := diagnosis.Diagnose(h, syndrome, dim)
	if err != nil {
		return nil, err
	}
	return found.Sorted(), nil
}

func statsOf(res machine.Result) Stats {
	return Stats{
		Makespan:    int64(res.Makespan),
		Messages:    res.Messages,
		KeysSent:    res.KeysSent,
		KeyHops:     res.KeyHops,
		Comparisons: res.Comparisons,
	}
}
