package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// CostAgreementRow compares the §3 closed-form estimate against the
// simulated makespan for one configuration (experiment E8).
type CostAgreementRow struct {
	N, R, M  int
	Mincut   int
	Estimate machine.Time
	Measured machine.Time
	Ratio    float64
}

// CostAgreement sweeps configurations and reports measured/estimated
// ratios under the paper's cost model. A stable ratio across the sweep
// means the closed form captures the scaling even where its constants
// differ from the implementation's.
func CostAgreement(seed uint64) ([]CostAgreementRow, error) {
	rng := xrand.New(seed)
	var rows []CostAgreementRow
	for _, cfg := range []struct{ n, r, m int }{
		{4, 0, 4000}, {4, 2, 4000}, {5, 1, 8000}, {5, 4, 8000},
		{6, 2, 16000}, {6, 5, 16000},
	} {
		faults := sampleFaults(cube.New(cfg.n), cfg.r, rng)
		keys := workload.MustGenerate(workload.Uniform, cfg.m, rng)
		_, plan, res, err := core.SortOnFaultyCube(cfg.n, faults, machine.Partial, machine.PaperCostModel(), keys)
		if err != nil {
			return nil, err
		}
		est, err := core.CostEstimate(cfg.m, cfg.n, plan.Mincut(), plan.HasDead, machine.PaperCostModel())
		if err != nil {
			return nil, err
		}
		rows = append(rows, CostAgreementRow{
			N: cfg.n, R: cfg.r, M: cfg.m, Mincut: plan.Mincut(),
			Estimate: est, Measured: res.Makespan,
			Ratio: float64(res.Makespan) / float64(est),
		})
	}
	return rows, nil
}

// FormatCostAgreement renders E8's rows.
func FormatCostAgreement(rows []CostAgreementRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tM\tmincut\testimate\tmeasured\tratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.2f\n", r.N, r.R, r.M, r.Mincut, r.Estimate, r.Measured, r.Ratio)
	}
	w.Flush()
	return b.String()
}

// HeuristicRow compares the heuristically selected cutting sequence
// against the worst member of Ψ for one fault placement (experiment E9).
type HeuristicRow struct {
	N, R          int
	BestCost      int // formula (1) for the selected sequence
	WorstCost     int // formula (1) for the worst sequence in Ψ
	BestMakespan  machine.Time
	WorstMakespan machine.Time
	BestKeyHops   int64
	WorstKeyHops  int64
}

// HeuristicValue quantifies what the min-max selection of §3 buys: for
// sampled fault placements with a non-trivial Ψ, sort once with the
// selected sequence and once with the worst-scoring one, comparing
// simulated time and key-hop traffic.
func HeuristicValue(n, mKeys, trials int, seed uint64) ([]HeuristicRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	var rows []HeuristicRow
	for trial := 0; trial < trials; trial++ {
		r := 3 + rng.IntN(n-3) // >= 3 faults so Ψ has room to differ
		faults := sampleFaults(h, r, rng)
		set, err := partition.FindCuttingSet(h, faults)
		if err != nil {
			return nil, err
		}
		if len(set.Sequences) < 2 {
			continue // no selection to make
		}
		bestSeq, bestCost, err := partition.Select(h, faults, set)
		if err != nil {
			return nil, err
		}
		worstSeq, worstCost := bestSeq, bestCost
		for _, d := range set.Sequences {
			c, err := partition.ExtraCommCost(h, faults, d)
			if err != nil {
				return nil, err
			}
			if c > worstCost {
				worstSeq, worstCost = d, c
			}
		}
		if worstCost == bestCost {
			continue // all members tie; nothing to compare
		}
		keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
		best, err := sortWithSequence(n, faults, bestSeq, keys)
		if err != nil {
			return nil, err
		}
		worst, err := sortWithSequence(n, faults, worstSeq, keys)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HeuristicRow{
			N: n, R: r, BestCost: bestCost, WorstCost: worstCost,
			BestMakespan: best.Makespan, WorstMakespan: worst.Makespan,
			BestKeyHops: best.KeyHops, WorstKeyHops: worst.KeyHops,
		})
	}
	return rows, nil
}

// sortWithSequence runs the FT sort with a caller-forced cutting sequence
// instead of the heuristic choice.
func sortWithSequence(n int, faults cube.NodeSet, seq cube.CutSequence, keys []sortutil.Key) (machine.Result, error) {
	plan, err := partition.BuildPlanWithSequence(n, faults, seq)
	if err != nil {
		return machine.Result{}, err
	}
	m, err := machine.New(machine.Config{Dim: n, Faults: faults})
	if err != nil {
		return machine.Result{}, err
	}
	_, res, err := core.FTSort(m, plan, keys)
	return res, err
}

// FormatHeuristic renders E9's rows.
func FormatHeuristic(rows []HeuristicRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tbest cost\tworst cost\tbest time\tworst time\tbest key-hops\tworst key-hops")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.N, r.R, r.BestCost, r.WorstCost, r.BestMakespan, r.WorstMakespan, r.BestKeyHops, r.WorstKeyHops)
	}
	w.Flush()
	return b.String()
}

// FaultModelRow compares partial- and total-fault routing for one
// configuration (experiment E10, the paper's §4 remark that total faults
// cost more than the partial faults VERTEX gave them).
type FaultModelRow struct {
	N, R, M         int
	PartialMakespan machine.Time
	TotalMakespan   machine.Time
	PartialKeyHops  int64
	TotalKeyHops    int64
}

// FaultModelComparison runs the FT sort under both fault models on the
// same fault placements and workloads.
func FaultModelComparison(n, mKeys, trials int, seed uint64) ([]FaultModelRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	var rows []FaultModelRow
	for trial := 0; trial < trials; trial++ {
		r := 1 + rng.IntN(n-1)
		faults := sampleFaults(h, r, rng)
		keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
		_, _, resP, err := core.SortOnFaultyCube(n, faults, machine.Partial, machine.CostModel{}, keys)
		if err != nil {
			return nil, err
		}
		_, _, resT, err := core.SortOnFaultyCube(n, faults, machine.Total, machine.CostModel{}, keys)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaultModelRow{
			N: n, R: r, M: mKeys,
			PartialMakespan: resP.Makespan, TotalMakespan: resT.Makespan,
			PartialKeyHops: resP.KeyHops, TotalKeyHops: resT.KeyHops,
		})
	}
	return rows, nil
}

// FormatFaultModel renders E10's rows.
func FormatFaultModel(rows []FaultModelRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tM\tpartial time\ttotal time\tpartial key-hops\ttotal key-hops")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.N, r.R, r.M, r.PartialMakespan, r.TotalMakespan, r.PartialKeyHops, r.TotalKeyHops)
	}
	w.Flush()
	return b.String()
}
