// Package maxsubcube implements the reconfiguration baseline the paper
// compares against: Özgüner & Aykanat's maximum dimensional fault-free
// subcube method (Information Processing Letters 29(5), 1988). When r
// faults appear in Q_n, the method finds a largest subcube containing no
// faulty processor and runs the unmodified algorithm there, idling every
// processor outside it (the paper's "dangling processors").
package maxsubcube

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

// Find returns a maximum-dimensional fault-free subcube of Q_n and its
// dimension. Among equal-dimensional candidates the lexicographically
// first (by fixed-dimension combination, then by fixed coordinates) is
// returned, making results deterministic. With no faults the whole cube
// is returned; if every processor is faulty the dimension is -1 and the
// zero Subcube is returned.
//
// The search enumerates all C(n, n-k)*2^(n-k) subcubes of dimension k
// for k = n down to 0 — exact and exhaustive, matching the baseline's
// offline reconfiguration step (the paper's experiments have n <= 6, so
// the 3^n total candidates are trivial).
func Find(h cube.Hypercube, faults cube.NodeSet) (cube.Subcube, int) {
	if len(faults) == 0 {
		return cube.WholeCube(), h.Dim()
	}
	for k := h.Dim(); k >= 0; k-- {
		for _, sc := range cube.EnumerateSubcubes(h, k) {
			if faultFree(sc, faults) {
				return sc, k
			}
		}
	}
	return cube.Subcube{}, -1
}

// faultFree reports whether no fault lies inside sc.
func faultFree(sc cube.Subcube, faults cube.NodeSet) bool {
	for f := range faults {
		if sc.Contains(f) {
			return false
		}
	}
	return true
}

// Utilization returns the baseline's processor utilization for Table 2:
// the 2^k processors of the chosen subcube as a fraction of the N-r
// healthy processors.
func Utilization(h cube.Hypercube, faults cube.NodeSet) float64 {
	healthy := h.Size() - len(faults)
	if healthy <= 0 {
		return 0
	}
	_, k := Find(h, faults)
	if k < 0 {
		return 0
	}
	return float64(int(1)<<k) / float64(healthy)
}

// SampledDimBounds estimates the best- and worst-case fault-free subcube
// dimension over random placements of r faults in Q_n — the methodology
// behind the paper's Table 2 best/worst columns (10000 random placements
// per configuration). For r >= 1 the true best case n-1 (all faults in
// one half) is found quickly; the worst case converges with trials.
func SampledDimBounds(h cube.Hypercube, r, trials int, rng *xrand.RNG) (best, worst int, err error) {
	if r < 0 || r > h.Size() {
		return 0, 0, fmt.Errorf("maxsubcube: %d faults outside [0,%d]", r, h.Size())
	}
	if trials <= 0 {
		return 0, 0, fmt.Errorf("maxsubcube: non-positive trial count %d", trials)
	}
	if r == 0 {
		return h.Dim(), h.Dim(), nil
	}
	best, worst = -1, h.Dim()+1
	for t := 0; t < trials; t++ {
		faults := cube.NewNodeSet()
		for _, f := range rng.Sample(h.Size(), r) {
			faults.Add(cube.NodeID(f))
		}
		_, k := Find(h, faults)
		if k > best {
			best = k
		}
		if k < worst {
			worst = k
		}
	}
	return best, worst, nil
}
