package core

import (
	"fmt"

	"hypersort/internal/collective"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
)

// VerifyDistributed checks — on the machine itself, in parallel — that
// the chunks laid out across the plan's working processors form a
// globally ascending sequence in (subcube, logical) order. Each
// processor validates its own chunk locally, exchanges boundary keys
// with its successor in the layout, and the verdicts are AND-reduced;
// total work is O(M/N' + log N') per processor versus the host's O(M)
// for a sequential scan.
//
// This is the check a real deployment would run after a sort (collecting
// all keys to one node just to verify would erase the parallel sort's
// benefit). chunks must be indexed like Layout.Working; every working
// processor's chunk must be present.
func VerifyDistributed(m *machine.Machine, plan *partition.Plan, chunks [][]sortutil.Key) (bool, machine.Result, error) {
	layout := NewLayout(plan)
	if len(chunks) != len(layout.Working) {
		return false, machine.Result{}, fmt.Errorf("core: %d chunks for %d working processors", len(chunks), len(layout.Working))
	}
	group, err := collective.NewGroup(layout.Working)
	if err != nil {
		return false, machine.Result{}, err
	}
	const (
		boundaryTag machine.Tag = 1
		reduceTag   machine.Tag = 2
	)
	verdicts := make([]bool, len(layout.Working))
	res, err := m.Run(layout.Working, func(p *machine.Proc) error {
		slot := layout.SlotOf[p.ID()]
		mine := chunks[slot]
		ok := sortutil.IsSorted(mine, sortutil.Ascending)
		p.Compute(len(mine))

		// Send my maximum to the next processor in layout order and
		// check the predecessor's running maximum against my minimum.
		// Non-empty chunks send immediately (all boundary exchanges run
		// in parallel); an empty chunk must first learn the running
		// maximum so the obligation passes through it intact.
		hasNext := slot+1 < len(layout.Working)
		if len(mine) > 0 {
			if hasNext {
				p.Send(layout.Working[slot+1], boundaryTag, []sortutil.Key{mine[len(mine)-1]})
			}
			if slot > 0 {
				prev := p.Recv(layout.Working[slot-1], boundaryTag)
				if prev[0] > mine[0] {
					ok = false
				}
				p.Release(prev)
				p.Compute(1)
			}
		} else {
			running := sortutil.NegInf
			if slot > 0 {
				got := p.Recv(layout.Working[slot-1], boundaryTag)
				running = got[0]
				p.Release(got)
			}
			if hasNext {
				p.Send(layout.Working[slot+1], boundaryTag, []sortutil.Key{running})
			}
		}
		verdict := int64(1)
		if !ok {
			verdict = 0
		}
		all := collective.AllReduce(p, group, reduceTag, verdict, collective.Min)
		verdicts[slot] = all == 1
		return nil
	})
	if err != nil {
		return false, machine.Result{}, err
	}
	// AllReduce agrees everywhere; take slot 0's verdict.
	return verdicts[0], res, nil
}

// boundaryNeighbors is a helper for tests: the layout-successor pairs the
// verifier checks.
func boundaryNeighbors(plan *partition.Plan) [][2]cube.NodeID {
	l := NewLayout(plan)
	var out [][2]cube.NodeID
	for i := 1; i < len(l.Working); i++ {
		out = append(out, [2]cube.NodeID{l.Working[i-1], l.Working[i]})
	}
	return out
}
