package cluster

// RemoteShard adapts one shard PROCESS — reached through the transport
// client — to the same Backend interface localShard satisfies, which is
// the whole point of the multi-process mode: the ring, the spill/shed
// thresholds, and the facade are reused verbatim, and only the shard
// boundary moves from a method call to a pipelined socket.

import (
	"context"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/transport"
)

// RemoteShard is one shard process as a router backend.
type RemoteShard struct {
	cl *transport.Client
}

// NewRemoteShard wraps an existing transport client as a backend.
func NewRemoteShard(cl *transport.Client) *RemoteShard { return &RemoteShard{cl: cl} }

// Addr returns the shard process address.
func (b *RemoteShard) Addr() string { return b.cl.Addr() }

// Do forwards one request over the wire. The shard runs its own direct
// fast path, so no DoDirect probing happens proxy-side.
func (b *RemoteShard) Do(ctx context.Context, req engine.Request) engine.Result {
	return b.cl.Do(ctx, req)
}

// InjectFault arms chaos injections on the shard process for cfg.
func (b *RemoteShard) InjectFault(cfg engine.Config, injs ...machine.Injection) error {
	return b.cl.InjectFault(cfg, injs...)
}

// DisarmFaults clears cfg's injection schedule on the shard process.
func (b *RemoteShard) DisarmFaults(cfg engine.Config) error { return b.cl.DisarmFaults(cfg) }

// Metrics fetches the shard engine's counters over the wire; an
// unreachable shard contributes zeros.
func (b *RemoteShard) Metrics() engine.Metrics { return b.cl.Metrics() }

// Healthy reports the client's view of shard reachability: flipped
// false by any transport error, flipped back by the reprobe loop.
func (b *RemoteShard) Healthy() bool { return b.cl.Healthy() }

// Load is the shard's in-flight gauge from its most recent response —
// live feedback that also sees traffic from other proxies.
func (b *RemoteShard) Load() int64 { return b.cl.Load() }

// QueueWaitNs is the shard's reported median queue wait from its most
// recent response.
func (b *RemoteShard) QueueWaitNs() int64 { return b.cl.QueueWaitNs() }

// Instrument attaches the transport bundle (RTT, pipeline depth,
// unhealthy transitions) to the underlying client. Registration is
// idempotent, so all shards of one proxy share the same series.
func (b *RemoteShard) Instrument(r *obs.Registry) {
	tm := obs.NewTransportMetrics(r)
	b.cl.Instrument(tm.RTT, tm.PipelineDepth, tm.ShardUnhealthy)
}

// Close closes the transport client (the shard process itself is not
// ours to stop).
func (b *RemoteShard) Close() { b.cl.Close() }
