package main

// TestMultiProcessSmoke is the end-to-end drill for the multi-process
// deployment: it builds the real serve binary, stands up three shard
// processes and one front proxy as SEPARATE OS processes, drives a
// mixed sort/top-k storm through the proxy's HTTP surface, SIGKILLs one
// shard while the storm is in flight, and requires every request to
// come back either correctly served (200, sorted) or cleanly shed (503
// with a Retry-After header) — never a dropped connection, a 5xx other
// than backpressure, or a wrong answer. The CI smoke leg runs exactly
// this test.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// startProc launches the serve binary with args and scrapes its stdout
// for the "listening on" line, returning the resolved address. The
// process is killed (if still alive) at cleanup.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrC <- rest:
				default:
				}
			}
		}
		// Keep draining so the child never blocks on a full pipe.
	}()
	select {
	case addr := <-addrC:
		return cmd, addr
	case <-time.After(15 * time.Second):
		t.Fatalf("process %v never printed its listen address", args)
		return nil, ""
	}
}

func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke builds and launches real binaries")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Three shard processes on ephemeral ports, small enough engines
	// that the storm actually queues.
	const shards = 3
	cmds := make([]*exec.Cmd, shards)
	addrs := make([]string, shards)
	for i := range cmds {
		cmds[i], addrs[i] = startProc(t, bin,
			"-cluster-mode=shard", "-addr", "127.0.0.1:0", "-pool", "1", "-workers", "2", "-trace-buf", "0")
	}
	_, proxyAddr := startProc(t, bin,
		"-cluster-mode=proxy", "-addr", "127.0.0.1:0", "-shard-addrs", strings.Join(addrs, ","))

	url := "http://" + proxyAddr + "/v1/sort"
	do := func(i int) error {
		n := 64 + i%64
		keys := make([]int64, n)
		for j := range keys {
			keys[j] = int64((i+1)*2654435761) ^ int64(j*40503)
		}
		req := map[string]any{"dim": 4 + i%3, "keys": keys}
		if i%5 == 0 {
			req["op"], req["k"] = "topk", 8
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var out struct {
				Keys []int64 `json:"keys"`
				Err  string  `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return fmt.Errorf("request %d: decode: %w", i, err)
			}
			if out.Err != "" {
				return fmt.Errorf("request %d: engine error %q", i, out.Err)
			}
			if !sort.SliceIsSorted(out.Keys, func(a, b int) bool { return out.Keys[a] < out.Keys[b] }) {
				return fmt.Errorf("request %d: unsorted keys", i)
			}
			return nil
		case http.StatusServiceUnavailable:
			// Clean shed: backpressure with the Retry-After contract.
			if resp.Header.Get("Retry-After") == "" {
				return fmt.Errorf("request %d: 503 without Retry-After", i)
			}
			return nil
		default:
			return fmt.Errorf("request %d: status %d", i, resp.StatusCode)
		}
	}

	// Warm up: every shard reachable, a first wave must fully succeed.
	for i := 0; i < 6; i++ {
		if err := do(i); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}

	// The storm, with one shard SIGKILLed after the first third has been
	// issued. Everything must still come back 200-sorted or 503-shed.
	const storm = 120
	var issued atomic.Int64
	var killOnce sync.Once
	errs := make([]error, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if issued.Add(1) == storm/3 {
				killOnce.Do(func() {
					if err := cmds[0].Process.Signal(syscall.SIGKILL); err != nil {
						errs[i] = fmt.Errorf("SIGKILL shard 0: %w", err)
						return
					}
				})
			}
			errs[i] = do(i)
		}(i)
	}
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
			t.Errorf("storm: %v", err)
		}
	}
	if failed > 0 {
		t.Fatalf("%d of %d storm requests failed outside the 200/503 contract", failed, storm)
	}

	// With the dead shard routed around, a final wave must also succeed.
	for i := 0; i < 6; i++ {
		if err := do(1000 + i); err != nil {
			t.Fatalf("post-kill wave: %v", err)
		}
	}
}
