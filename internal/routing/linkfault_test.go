package routing

import (
	"errors"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

func TestFaultAvoidingLinksDetour(t *testing.T) {
	h := cube.New(3)
	// Kill the direct link 000-001: the route must detour.
	bad := cube.NewEdgeSet(cube.NewEdge(0b000, 0b001))
	p, err := FaultAvoidingLinks(h, 0b000, 0b001, nil, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(0b000, 0b001) || !p.AvoidsLinkFaults(bad) {
		t.Fatalf("bad path %v", p)
	}
	if p.Hops() < 3 {
		t.Errorf("detour should cost >= 3 hops, got %d", p.Hops())
	}
}

func TestFaultAvoidingLinksSelf(t *testing.T) {
	h := cube.New(2)
	p, err := FaultAvoidingLinks(h, 2, 2, nil, nil)
	if err != nil || p.Hops() != 0 {
		t.Errorf("self route = %v, %v", p, err)
	}
}

func TestFaultAvoidingLinksNoPath(t *testing.T) {
	h := cube.New(2)
	// Isolate node 0: both its links dead.
	bad := cube.NewEdgeSet(cube.NewEdge(0, 1), cube.NewEdge(0, 2))
	_, err := FaultAvoidingLinks(h, 3, 0, nil, bad)
	var noPath ErrNoPathLinks
	if !errors.As(err, &noPath) {
		t.Fatalf("want ErrNoPathLinks, got %v", err)
	}
	if noPath.Error() == "" {
		t.Error("empty error message")
	}
}

// TestLinkFaultConnectivityBound: the n-cube's edge connectivity is n, so
// any n-1 dead links leave every pair routable.
func TestLinkFaultConnectivityBound(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{3, 4, 5} {
		h := cube.New(n)
		for trial := 0; trial < 40; trial++ {
			bad := cube.NewEdgeSet()
			for len(bad) < n-1 {
				a := cube.NodeID(r.IntN(h.Size()))
				d := r.IntN(n)
				bad.Add(a, h.Neighbor(a, d))
			}
			src := cube.NodeID(r.IntN(h.Size()))
			dst := cube.NodeID(r.IntN(h.Size()))
			p, err := FaultAvoidingLinks(h, src, dst, nil, bad)
			if err != nil {
				t.Fatalf("n=%d links=%v: %v", n, bad.Sorted(), err)
			}
			if !p.Valid(src, dst) || !p.AvoidsLinkFaults(bad) {
				t.Fatalf("n=%d: invalid path %v", n, p)
			}
		}
	}
}

func TestFaultAvoidingLinksRespectsNodeFaultsToo(t *testing.T) {
	h := cube.New(3)
	nodeFaults := cube.NewNodeSet(0b001)
	linkFaults := cube.NewEdgeSet(cube.NewEdge(0b000, 0b010))
	p, err := FaultAvoidingLinks(h, 0b000, 0b011, nodeFaults, linkFaults)
	if err != nil {
		t.Fatal(err)
	}
	if !p.AvoidsFaults(nodeFaults) || !p.AvoidsLinkFaults(linkFaults) {
		t.Fatalf("path %v crosses a fault", p)
	}
}

func TestLinkAwareRouter(t *testing.T) {
	h := cube.New(3)
	rt := NewLinkAwareRouter(h, nil, cube.NewEdgeSet(cube.NewEdge(0, 1)))
	if rt.Name() != "link-aware" {
		t.Error("name wrong")
	}
	p, err := rt.Route(0, 1)
	if err != nil || p.Hops() < 3 {
		t.Errorf("route = %v, %v", p, err)
	}
	// nil sets accepted.
	rt2 := NewLinkAwareRouter(h, nil, nil)
	if p, err := rt2.Route(0, 7); err != nil || p.Hops() != 3 {
		t.Errorf("fault-free link-aware route = %v, %v", p, err)
	}
}

func TestPathAvoidsLinkFaults(t *testing.T) {
	bad := cube.NewEdgeSet(cube.NewEdge(1, 3))
	if (Path{0, 1, 3}).AvoidsLinkFaults(bad) {
		t.Error("path over dead link accepted")
	}
	if !(Path{0, 2, 3}).AvoidsLinkFaults(bad) {
		t.Error("clean path rejected")
	}
}
