// The sharded-cluster throughput rig: the same 64-client storm as the
// engine rig, served by N engine shards behind the consistent-hash
// router instead of one engine. The single-engine baseline serializes
// every request through one plan-key mutex and one set of dispatch
// lanes; the cluster splits that serialization N ways and serves
// direct-eligible sorts inline on the client goroutine (the router's
// shed limit replaces the lane's admission queue), so the win shows up
// even without true hardware parallelism. E23 records both tables.
package hypersort

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypersort/internal/cluster"
	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/obs"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// clusterBackend abstracts the two serving topologies under comparison;
// both rigs drive it through the same client loop.
type clusterBackend interface {
	Do(req engine.Request) engine.Result
	Close()
}

// runClusterThroughput drives the 64-client storm against be. Reports
// req/s; spill/shed totals are asserted, not reported — a shed request
// would make the comparison dishonest.
func runClusterThroughput(b *testing.B, be clusterBackend, configs []engine.Config, pick func(client int, i int64) int, sheds func() int64) {
	rng := xrand.New(7)
	inputs := make([][]sortutil.Key, throughputClients)
	for i := range inputs {
		inputs[i] = workload.MustGenerate(workload.Uniform, throughputM, rng)
	}
	for _, cfg := range configs {
		if res := be.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: inputs[0]}); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < throughputClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				req := engine.Request{
					Config: configs[pick(c, i)],
					Op:     engine.OpSort,
					Keys:   inputs[c],
				}
				if res := be.Do(req); res.Err != nil {
					b.Error(res.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	if n := sheds(); n != 0 {
		b.Fatalf("%d requests shed during the benchmark: the comparison would be dishonest", n)
	}
}

// newBenchCluster builds the cluster under benchmark: direct substrate
// (matching the strongest single-engine baseline), one replica, and a
// shed limit high enough that the storm is never refused — the rig
// measures throughput, not admission policy.
func newBenchCluster(shards int) *cluster.Cluster {
	c := cluster.New(cluster.Options{
		Shards:    shards,
		Replicas:  1,
		ShedLimit: 1 << 20,
		PoolSize:  1,
		Workers:   throughputClients,
		Batch:     engine.BatchOptions{MaxBatch: 32, MaxLinger: 100 * time.Microsecond},
		Mode:      engine.ModeDirect,
	})
	c.Instrument(obs.NewRegistry())
	return c
}

// newBenchEngine builds the single-engine baseline: the continuous-
// batching dispatcher on the direct substrate — the strongest
// configuration PR 7 left behind (E22), so the cluster's margin is
// measured against the best prior art, not a strawman.
func newBenchEngine() *engine.Engine {
	e := engine.NewOpts(1, throughputClients, engine.BatchOptions{MaxBatch: 32, MaxLinger: 100 * time.Microsecond})
	e.SetMode(engine.ModeDirect)
	e.Instrument(obs.NewRegistry())
	return e
}

// BenchmarkClusterThroughput compares the sharded cluster against the
// single-engine dispatcher on both storm shapes:
//
//   - hot: all 64 clients on ONE damaged-Q_2 configuration — the
//     consistent hash pins it to one home shard, so this measures the
//     inline direct path and replica spill, not shard spread.
//   - mix: clients cycling the four-rung degradation ladder — different
//     plan keys land on different shards, so the per-engine mutexes and
//     lanes stop being a global serialization point.
//
// Reproduce the E23 tables with:
//
//	GOMAXPROCS=4 go test -run '^$' -bench BenchmarkClusterThroughput -benchtime 1000x .
func BenchmarkClusterThroughput(b *testing.B) {
	hot := []engine.Config{{Dim: 2, Faults: []cube.NodeID{3}}}
	mix := throughputConfigs()
	scenarios := []struct {
		name    string
		configs []engine.Config
		pick    func(int, int64) int
	}{
		{"hot", hot, func(int, int64) int { return 0 }},
		{"mix", mix, func(_ int, i int64) int { return int(i) % len(mix) }},
	}
	for _, sc := range scenarios {
		b.Run(sc.name+"/engine", func(b *testing.B) {
			e := newBenchEngine()
			defer e.Close()
			runClusterThroughput(b, e, sc.configs, sc.pick, func() int64 { return 0 })
		})
		b.Run(sc.name+"/cluster-4", func(b *testing.B) {
			c := newBenchCluster(4)
			defer c.Close()
			runClusterThroughput(b, c, sc.configs, sc.pick, func() int64 { return c.Metrics().Sheds })
		})
	}
}

// TestClusterThroughputSmoke is the CI-sized cluster storm, driven
// through the public facade: a concurrent burst over the degradation
// ladder must come back correctly sorted from a sharded cluster, with
// every request accounted for and none shed. Run in the CI
// throughput-smoke leg at GOMAXPROCS=1 and 4.
func TestClusterThroughputSmoke(t *testing.T) {
	cl := NewCluster(ClusterConfig{Shards: 4, Replicas: 1, PoolSize: 1, BatchWorkers: 32, Mode: ModeDirect})
	defer cl.Close()
	ladder := []Config{
		{Dim: 2},
		{Dim: 2, Faults: []NodeID{3}},
		{Dim: 2, Faults: []NodeID{2, 3}},
		{Dim: 1, Faults: []NodeID{1}},
	}
	rng := xrand.New(13)
	const burst = 64
	inputs := make([][]Key, burst)
	for i := range inputs {
		inputs[i] = workload.MustGenerate(workload.Uniform, 64, rng)
	}
	results := make([]Result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys, _, err := cl.Sort(ladder[i%len(ladder)], inputs[i])
			results[i] = Result{Keys: keys, Err: err}
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if len(res.Keys) != len(inputs[i]) {
			t.Fatalf("request %d: %d keys out, %d in", i, len(res.Keys), len(inputs[i]))
		}
		for j := 1; j < len(res.Keys); j++ {
			if res.Keys[j-1] > res.Keys[j] {
				t.Fatalf("request %d: output not sorted at %d", i, j)
			}
		}
	}
	m := cl.Metrics()
	if m.Requests != burst {
		t.Fatalf("router saw %d requests, want %d", m.Requests, burst)
	}
	if m.Engine.Requests != burst {
		t.Fatalf("shards served %d requests, want %d", m.Engine.Requests, burst)
	}
	if m.Sheds != 0 {
		t.Fatalf("%d requests shed with default thresholds under a %d-burst", m.Sheds, burst)
	}
	t.Logf("cluster smoke: %d requests, %d spills, shards served %v",
		m.Requests, m.Spills, func() []int64 {
			var per []int64
			for _, sm := range m.Shards {
				per = append(per, sm.Requests)
			}
			return per
		}())
}
