package engine

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestMultipathSortThroughEngine: a RouteMultipath request plans with
// the congestion objective, runs on a congestion-priced machine, and
// still returns the reference ordering. The plan key must diverge from
// the single-path key for the same configuration, while the single-path
// key stays byte-identical to the pre-routing encoding.
func TestMultipathSortThroughEngine(t *testing.T) {
	e := New(2, 2)
	defer e.Close()
	keys := workload.MustGenerate(workload.Uniform, 2000, xrand.New(7))
	cfg := Config{Dim: 4, Faults: []cube.NodeID{3}, Routing: machine.RouteMultipath}
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("multipath engine sort diverges from reference")
	}
	if res.Res.StripedSends == 0 {
		t.Error("multipath run striped nothing")
	}

	single := cfg
	single.Routing = machine.RouteSingle
	if e.planKey(cfg) == e.planKey(single) {
		t.Error("routing policy not part of the plan key")
	}
}

// TestMultipathNeverDirect: direct mode must refuse multipath requests
// — Predict models hop-only pricing, so a direct result would carry a
// silently wrong makespan. The request still succeeds, on the
// simulator.
func TestMultipathNeverDirect(t *testing.T) {
	e := New(2, 2)
	defer e.Close()
	e.SetMode(ModeDirect)
	keys := workload.MustGenerate(workload.Uniform, 1500, xrand.New(3))
	cfg := Config{Dim: 4, Routing: machine.RouteMultipath}
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Direct {
		t.Error("multipath request served direct")
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("fallback sort diverges from reference")
	}
	// The hop-only sibling is still direct-eligible.
	ecube := cfg
	ecube.Routing = machine.RouteSingle
	res = e.Do(Request{Config: ecube, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Direct {
		t.Error("single-path request lost direct eligibility")
	}
}

// TestMultipathBypassesLanes: congestion-priced sorts cannot join fused
// batch sessions (the occupancy replay is per run), so the dispatcher
// must route them down the unbatched pool path — observable as zero
// batched requests after a multipath burst.
func TestMultipathBypassesLanes(t *testing.T) {
	e := New(2, 4)
	defer e.Close()
	cfg := Config{Dim: 3, Routing: machine.RouteMultipath}
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{
			Config: cfg, Op: OpSort,
			Keys: workload.MustGenerate(workload.Uniform, 600, xrand.New(uint64(i+1))),
		}
	}
	for _, res := range e.Batch(reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if m := e.Metrics(); m.FusedBatches != 0 || m.FusedRequests != 0 {
		t.Errorf("multipath requests joined a fused batch: %+v", m)
	}
}
