package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Subcube identifies a subcube of Q_n by the classic mask/value encoding:
// the dimensions set in Mask are fixed to the corresponding bits of Value,
// the remaining dimensions are free. A Subcube with an empty mask is the
// whole cube; a mask of all n bits is a single processor.
//
// In the paper's *-notation a subcube of Q_5 written 1*0*1 has
// Mask = 10101 (dims 0, 2, 4 fixed) and Value = 10001.
type Subcube struct {
	Mask  NodeID // set bits = fixed dimensions
	Value NodeID // fixed coordinates; Value &^ Mask must be zero
}

// WholeCube returns the subcube covering all of Q_n.
func WholeCube() Subcube { return Subcube{} }

// SingleNode returns the 0-dimensional subcube holding exactly id in Q_n.
func SingleNode(h Hypercube, id NodeID) Subcube {
	all := NodeID(1<<h.n) - 1
	return Subcube{Mask: all, Value: id & all}
}

// Normalize clears any value bits outside the mask, returning the
// canonical representation.
func (s Subcube) Normalize() Subcube {
	s.Value &= s.Mask
	return s
}

// Dim returns the dimension of the subcube within Q_n: the number of free
// dimensions, n minus the number of fixed ones.
func (s Subcube) Dim(h Hypercube) int {
	return h.n - bits.OnesCount32(uint32(s.Mask))
}

// Size returns the number of processors in the subcube within Q_n.
func (s Subcube) Size(h Hypercube) int { return 1 << s.Dim(h) }

// Contains reports whether id lies inside the subcube.
func (s Subcube) Contains(id NodeID) bool { return id&s.Mask == s.Value&s.Mask }

// FreeDims returns the free dimensions of the subcube in Q_n, ascending.
func (s Subcube) FreeDims(h Hypercube) []int {
	out := make([]int, 0, s.Dim(h))
	for d := 0; d < h.n; d++ {
		if s.Mask&(1<<d) == 0 {
			out = append(out, d)
		}
	}
	return out
}

// FixedDims returns the fixed dimensions of the subcube, ascending.
func (s Subcube) FixedDims(h Hypercube) []int {
	out := make([]int, 0, h.n-s.Dim(h))
	for d := 0; d < h.n; d++ {
		if s.Mask&(1<<d) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// Nodes enumerates every processor of the subcube in ascending address
// order within Q_n.
func (s Subcube) Nodes(h Hypercube) []NodeID {
	free := s.FreeDims(h)
	out := make([]NodeID, 0, 1<<len(free))
	for i := 0; i < 1<<len(free); i++ {
		id := s.Value & s.Mask
		for j, d := range free {
			if i>>uint(j)&1 == 1 {
				id |= 1 << d
			}
		}
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SplitAlong cuts the subcube along dimension d, returning the half with
// u_d = 0 first and the half with u_d = 1 second. It panics if d is
// already fixed: re-cutting a fixed dimension is a logic error in the
// partition search.
func (s Subcube) SplitAlong(d int) (zero, one Subcube) {
	bit := NodeID(1) << d
	if s.Mask&bit != 0 {
		panic(fmt.Sprintf("cube: dimension %d already fixed in subcube %+v", d, s))
	}
	zero = Subcube{Mask: s.Mask | bit, Value: s.Value &^ bit}
	one = Subcube{Mask: s.Mask | bit, Value: s.Value | bit}
	return zero, one
}

// String renders the subcube in *-notation for an n-bit cube; since the
// Subcube does not carry n, callers wanting exact width should use Format.
func (s Subcube) String() string {
	n := MaxDim
	for n > 1 && s.Mask>>(n-1) == 0 && s.Value>>(n-1) == 0 {
		n--
	}
	return s.Format(New(n))
}

// Format renders the subcube in the paper's *-notation, most significant
// dimension first: fixed dimensions print their coordinate, free
// dimensions print '*'.
func (s Subcube) Format(h Hypercube) string {
	var b strings.Builder
	for d := h.n - 1; d >= 0; d-- {
		switch {
		case s.Mask&(1<<d) == 0:
			b.WriteByte('*')
		case s.Value&(1<<d) != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParseSubcube parses *-notation (e.g. "1*0*1") written most significant
// dimension first, the inverse of Format.
func ParseSubcube(s string) (Subcube, error) {
	if len(s) == 0 || len(s) > MaxDim {
		return Subcube{}, fmt.Errorf("cube: subcube %q must have between 1 and %d symbols", s, MaxDim)
	}
	var sc Subcube
	for _, c := range s {
		sc.Mask <<= 1
		sc.Value <<= 1
		switch c {
		case '*':
		case '0':
			sc.Mask |= 1
		case '1':
			sc.Mask |= 1
			sc.Value |= 1
		default:
			return Subcube{}, fmt.Errorf("cube: subcube %q contains invalid symbol %q", s, c)
		}
	}
	return sc, nil
}

// EnumerateSubcubes yields every subcube of Q_n with exactly dim free
// dimensions. There are C(n, dim) * 2^(n-dim) of them. Order: by free-set
// combination, then by value.
func EnumerateSubcubes(h Hypercube, dim int) []Subcube {
	if dim < 0 || dim > h.n {
		return nil
	}
	var out []Subcube
	combos := Combinations(h.n, h.n-dim) // fixed-dimension choices
	for _, fixed := range combos {
		var mask NodeID
		for _, d := range fixed {
			mask |= 1 << d
		}
		// Enumerate all assignments of the fixed dimensions.
		k := len(fixed)
		for v := 0; v < 1<<k; v++ {
			var val NodeID
			for j, d := range fixed {
				if v>>uint(j)&1 == 1 {
					val |= 1 << d
				}
			}
			out = append(out, Subcube{Mask: mask, Value: val})
		}
	}
	return out
}

// Combinations returns all k-element subsets of {0, 1, ..., n-1}, each in
// ascending order, in lexicographic order of the subsets.
func Combinations(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
