package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryDocs runs the full lint against the repository root, so
// the ordinary `go test ./...` leg enforces the documentation contract:
// package comments, exported-symbol godoc, and working Markdown links.
func TestRepositoryDocs(t *testing.T) {
	findings := Lint(repoRoot(t))
	for _, f := range findings {
		t.Error(f)
	}
}

// TestLintGoDocsCatches proves the Go checks actually fire, using a
// synthetic package with every class of violation.
func TestLintGoDocsCatches(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

func Exposed() {}

// Wrong name leads this comment.
type Thing struct{}

const Loose = 1

var Stray int
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := LintGoDocs(dir)
	wants := []string{
		"package bad has no package comment",
		"exported function Exposed",
		"exported type Thing",
		"exported const Loose",
		"exported var Stray",
	}
	for _, w := range wants {
		if !anyContains(findings, w) {
			t.Errorf("missing finding %q in %v", w, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
}

// TestLintGoDocsAccepts proves the accepted godoc idioms stay clean:
// name-led comments, article prefixes, grouped blocks, trailing
// line comments on const specs, unexported receivers, test files.
func TestLintGoDocsAccepts(t *testing.T) {
	dir := t.TempDir()
	src := `// Package good is documented.
package good

// Exposed does a thing.
func Exposed() {}

// A Widget holds state.
type Widget struct{}

// Tuning constants for the frobnicator.
const (
	Low  = 1
	High = 2
)

const (
	Alpha = iota // Alpha is first.
	Beta         // Beta is second.
)

type hidden struct{}

func (h hidden) Exported() {} // method on unexported type: exempt
`
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tsrc := `package good

func HelperForTests() {}
`
	if err := os.WriteFile(filepath.Join(dir, "good_test.go"), []byte(tsrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if findings := LintGoDocs(dir); len(findings) != 0 {
		t.Errorf("clean package produced findings: %v", findings)
	}
}

// TestLintMarkdownLinks proves relative-link checking: existing targets
// pass (with or without anchors), missing ones are reported, and
// external links are ignored.
func TestLintMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "REAL.md"), []byte("# real\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `# doc
[ok](REAL.md) and [anchored](REAL.md#real) and [ext](https://example.com/x.md)
[broken](MISSING.md)
`
	if err := os.WriteFile(filepath.Join(dir, "DOC.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := LintMarkdownLinks(dir)
	if len(findings) != 1 || !strings.Contains(findings[0], "MISSING.md") {
		t.Errorf("want exactly one MISSING.md finding, got %v", findings)
	}
	if !strings.Contains(findings[0], "DOC.md:3") {
		t.Errorf("finding should carry file:line, got %v", findings)
	}
}

// TestLintServeFlags proves both directions of the flag contract with
// a synthetic tree: a declared-but-undocumented flag and a
// documented-but-undeclared flag each produce exactly one finding, and
// documentation in either README.md or OBSERVABILITY.md satisfies the
// declared side.
func TestLintServeFlags(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "cmd", "serve"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "flag"

func main() {
	flag.String("addr", ":8080", "listen address")
	flag.Bool("undoc", false, "nobody wrote this one up")
	flag.Int("workers", 0, "worker count")
	flag.Parse()
}
`
	if err := os.WriteFile(filepath.Join(dir, "cmd", "serve", "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	readme := "# readme\n\nRun with `-workers 4` for parallelism.\n"
	obs := `# obs

## Running the service

` + "```\ngo run ./cmd/serve -addr :8080 [-workers 8]\n```\n" + `
- ` + "`-addr`" + ` — listen address.
- ` + "`-ghost`" + ` — this flag was deleted from main.go.

## Another section

Mentions of ` + "`-unrelated`" + ` outside the flag section are fine.
`
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte(readme), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "OBSERVABILITY.md"), []byte(obs), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := LintServeFlags(dir)
	wants := []string{
		"flag -undoc is not documented",
		"flag -ghost is not declared",
	}
	for _, w := range wants {
		if !anyContains(findings, w) {
			t.Errorf("missing finding %q in %v", w, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
	// A root without cmd/serve is out of scope, not a failure.
	if extra := LintServeFlags(t.TempDir()); len(extra) != 0 {
		t.Errorf("serve-less root produced findings: %v", extra)
	}
}

// TestLintExperimentIDs proves the experiment-namespace checks with a
// synthetic doc set: a duplicate heading ID, a dangling reference, and
// an uncited heading are each reported; range syntax (hyphen and
// en-dash, with or without the second E) expands on both sides.
func TestLintExperimentIDs(t *testing.T) {
	dir := t.TempDir()
	experiments := `# EXPERIMENTS

## Table 1 (E1)

## Sweep (E2-E4)

## Duplicate (E2)

## Orphan (E6)

Body text citing E3 is fine; body text citing E9 dangles.
`
	changes := "PR 1: ships E1 and the E2–4 sweep.\n"
	design := "The index covers E1 and nothing else.\n"
	for name, data := range map[string]string{
		"EXPERIMENTS.md": experiments,
		"CHANGES.md":     changes,
		"DESIGN.md":      design,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings := LintExperimentIDs(dir)
	wants := []string{
		"experiment E2 already declared",
		"experiment E9 is referenced but has no EXPERIMENTS.md heading",
		"experiment E6 is not referenced from CHANGES.md or DESIGN.md",
	}
	for _, w := range wants {
		if !anyContains(findings, w) {
			t.Errorf("missing finding %q in %v", w, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
	if extra := LintExperimentIDs(t.TempDir()); len(extra) != 0 {
		t.Errorf("EXPERIMENTS-less root produced findings: %v", extra)
	}
}

// anyContains reports whether any string in list contains sub.
func anyContains(list []string, sub string) bool {
	for _, s := range list {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// repoRoot locates the repository root from the test's working
// directory (cmd/docslint), verified by the presence of go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}
