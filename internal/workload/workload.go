// Package workload generates the key distributions the experiments sort
// and handles splitting a key stream over the working processors of a
// (possibly faulty) hypercube, padding with dummy keys the way the paper
// prescribes ("some dummy keys (∞) will be filled in processors if the
// distribution of each processor is not uniform").
package workload

import (
	"fmt"
	"sort"

	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

// Kind names a key distribution.
type Kind string

// The supported distributions. Uniform is what the paper's simulation
// uses; the others exercise the sort on adversarial and structured inputs.
const (
	Uniform      Kind = "uniform"       // i.i.d. uniform over a wide range
	Gaussian     Kind = "gaussian"      // bell-shaped (Irwin-Hall)
	Sorted       Kind = "sorted"        // already ascending
	ReverseOrder Kind = "reverse"       // descending
	NearlySorted Kind = "nearly-sorted" // ascending with sparse swaps
	FewDistinct  Kind = "few-distinct"  // heavy duplication (16 values)
	ZipfLite     Kind = "zipf-lite"     // skewed toward small keys
)

// Kinds lists every distribution, in a stable order for sweeps.
func Kinds() []Kind {
	return []Kind{Uniform, Gaussian, Sorted, ReverseOrder, NearlySorted, FewDistinct, ZipfLite}
}

// Generate produces m keys of the given distribution from r. It returns
// an error for unknown kinds so CLI flag plumbing can report typos.
func Generate(kind Kind, m int, r *xrand.RNG) ([]sortutil.Key, error) {
	if m < 0 {
		return nil, fmt.Errorf("workload: negative element count %d", m)
	}
	xs := make([]sortutil.Key, m)
	switch kind {
	case Uniform:
		for i := range xs {
			xs[i] = sortutil.Key(r.Int63() % (1 << 40))
		}
	case Gaussian:
		for i := range xs {
			xs[i] = sortutil.Key(r.NormFloat64() * 1e6)
		}
	case Sorted:
		fillUniform(xs, r)
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	case ReverseOrder:
		fillUniform(xs, r)
		sort.Slice(xs, func(i, j int) bool { return xs[i] > xs[j] })
	case NearlySorted:
		fillUniform(xs, r)
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		// Perturb ~2% of positions with local swaps.
		for k := 0; k < m/50; k++ {
			i := r.IntN(m)
			j := i + 1 + r.IntN(8)
			if j >= m {
				j = m - 1
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
	case FewDistinct:
		for i := range xs {
			xs[i] = sortutil.Key(r.IntN(16))
		}
	case ZipfLite:
		// P(k) proportional to 1/(k+1): inverse-CDF over a small table.
		for i := range xs {
			u := r.Float64()
			k := 0
			cum, norm := 0.0, 0.0
			for j := 1; j <= 64; j++ {
				norm += 1 / float64(j)
			}
			for j := 1; j <= 64; j++ {
				cum += 1 / float64(j) / norm
				if u <= cum {
					k = j - 1
					break
				}
			}
			xs[i] = sortutil.Key(k)
		}
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", kind)
	}
	return xs, nil
}

// MustGenerate is Generate for statically known kinds; it panics on error.
func MustGenerate(kind Kind, m int, r *xrand.RNG) []sortutil.Key {
	xs, err := Generate(kind, m, r)
	if err != nil {
		panic(err)
	}
	return xs
}

func fillUniform(xs []sortutil.Key, r *xrand.RNG) {
	for i := range xs {
		xs[i] = sortutil.Key(r.Int63() % (1 << 40))
	}
}

// Distribute splits keys round-robin-by-block over p processors, padding
// every share with Inf dummies to the common size ceil(m/p). This is the
// paper's Step 2: the host hands each working processor floor(M/N')
// elements, with dummies absorbing the remainder. The returned shares all
// have equal length; share i receives the keys [i*q, (i+1)*q) where q is
// the padded share size.
func Distribute(keys []sortutil.Key, p int) ([][]sortutil.Key, error) {
	_, shares, err := DistributeInto(nil, nil, keys, p)
	return shares, err
}

// DistributeInto is Distribute with caller-controlled allocation: the
// shares are carved from backing and the share headers written into
// shares, both grown only when too small. The returned backing and
// shares must replace the caller's (they may have been reallocated).
// Serving paths that redistribute fresh keys over the same processor
// count on every request reuse one arena instead of allocating two
// objects per call.
func DistributeInto(backing []sortutil.Key, shares [][]sortutil.Key, keys []sortutil.Key, p int) ([]sortutil.Key, [][]sortutil.Key, error) {
	if p <= 0 {
		return backing, shares, fmt.Errorf("workload: cannot distribute over %d processors", p)
	}
	q := (len(keys) + p - 1) / p
	if q == 0 {
		q = 1 // every processor holds at least one (dummy) slot
	}
	// One backing array for all shares: the shares are owned by the
	// caller (kernels mutate them in place), and full slice expressions
	// keep an append on one share from bleeding into the next.
	if cap(backing) < p*q {
		backing = make([]sortutil.Key, p*q)
	} else {
		backing = backing[:p*q]
	}
	n := copy(backing, keys)
	for i := n; i < len(backing); i++ {
		backing[i] = sortutil.Inf
	}
	if cap(shares) < p {
		shares = make([][]sortutil.Key, p)
	} else {
		shares = shares[:p]
	}
	for i := 0; i < p; i++ {
		shares[i] = backing[i*q : (i+1)*q : (i+1)*q]
	}
	return backing, shares, nil
}

// Gather concatenates shares back into one slice (the inverse of
// Distribute up to padding), dropping nothing.
func Gather(shares [][]sortutil.Key) []sortutil.Key {
	var total int
	for _, s := range shares {
		total += len(s)
	}
	out := make([]sortutil.Key, 0, total)
	for _, s := range shares {
		out = append(out, s...)
	}
	return out
}
