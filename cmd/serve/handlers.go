package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"hypersort"
	"hypersort/internal/obs"
	"hypersort/internal/trace"
)

// backend is what the handlers need from the serving layer — satisfied
// by both *hypersort.Engine (the classic single-engine service) and
// *hypersort.Cluster (the sharded router behind -shards), so the whole
// handler set is topology-blind. InjectFault and DisarmFaults address
// every shard on a cluster backend, which is exactly what a drill
// wants: the router may serve a configuration from its home shard or
// any replica.
type backend interface {
	SortBatchContext(ctx context.Context, reqs []hypersort.Request) []hypersort.Result
	InjectFault(cfg hypersort.Config, injs ...hypersort.Injection) error
	DisarmFaults(cfg hypersort.Config) error
}

// newMux assembles the service's routes. Factored out of main so the
// conformance tests can drive the exact production handler set through
// httptest. ring may be nil (tracing disabled): /v1/trace then returns
// an empty trace document rather than an error, so dashboards poll it
// safely either way. chaos gates the fault-injection endpoints (off by
// default — arming kills against production traffic is a drill, not a
// service feature). routing is the -routing default: requests that do
// not name a "routing" policy themselves inherit it.
func newMux(eng backend, ring *trace.Ring, chaos bool, routing hypersort.RoutingPolicy) *http.ServeMux {
	// The queue-wait histogram feeds Retry-After on 503s. Retrieved by
	// name (registration is idempotent) so the handlers work against any
	// backend that instruments the shared engine bundle — which every
	// Engine and Cluster does at construction.
	queueWait := obs.Default().Histogram("hypersort_engine_queue_wait_ns",
		"Nanoseconds a request waited for execution capacity (lane queue or machine-pool acquire).")
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Prometheus text-format exposition of the process-wide registry —
	// the scrape target for Prometheus-compatible collectors. /v1/metrics
	// below carries the same registry as JSON for humans and scripts.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		payload := map[string]any{
			"memory":   readMemMetrics(),
			"registry": obs.Default().Snapshot(),
		}
		switch be := eng.(type) {
		case *hypersort.Engine:
			payload["engine"] = be.Metrics()
		case *hypersort.Cluster:
			// Clusters report the shard-summed engine view under the same
			// key dashboards already read, plus the router totals and the
			// per-shard split.
			cm := be.Metrics()
			payload["engine"] = cm.Engine
			payload["cluster"] = cm
		}
		writeJSON(w, http.StatusOK, payload)
	})
	// Chrome trace-event JSON of the most recent machine events — load
	// the response in https://ui.perfetto.dev. ?last=N trims to the N
	// newest events.
	mux.HandleFunc("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		last := 0
		if q := r.URL.Query().Get("last"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad last=%q: want a non-negative integer", q))
				return
			}
			last = n
		}
		var events []hypersort.TraceEvent
		if ring != nil {
			events = ring.Snapshot(last)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChrome(w, events)
	})
	// Live profiling: `go tool pprof http://host/debug/pprof/allocs` is
	// how the zero-allocation hot path gets verified (and re-verified)
	// against production-shaped traffic.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/sort", func(w http.ResponseWriter, r *http.Request) {
		var wreq wireRequest
		if !readJSON(w, r, &wreq) {
			return
		}
		req, err := wreq.toRequest(routing)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, wireResult{Err: err.Error()})
			return
		}
		// The request context rides into the engine: a client that
		// disconnects while its request is queued frees the slot
		// immediately (the dispatcher never claims a cancelled item).
		res := eng.SortBatchContext(r.Context(), []hypersort.Request{req})[0]
		status := statusFor(res.Err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(queueWait, eng)))
		}
		writeJSON(w, status, toWire(req, res))
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Requests []wireRequest `json:"requests"`
		}
		if !readJSON(w, r, &body) {
			return
		}
		reqs := make([]hypersort.Request, len(body.Requests))
		preErr := make([]error, len(body.Requests))
		for i, wr := range body.Requests {
			reqs[i], preErr[i] = wr.toRequest(routing)
		}
		results := eng.SortBatchContext(r.Context(), reqs)
		out := make([]wireResult, len(results))
		for i, res := range results {
			if preErr[i] != nil {
				out[i] = wireResult{Err: preErr[i].Error()}
				continue
			}
			out[i] = toWire(reqs[i], res)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	})
	if chaos {
		// Chaos drill endpoints: arm a scheduled casualty against a
		// configuration's machine pool, or stand the drill down. A sort
		// hit by an armed kill recovers in-flight (diagnose, replan,
		// redistribute) and still answers 200 with sorted keys; the
		// recovery instruments land on /metrics.
		mux.HandleFunc("/v1/chaos/inject", func(w http.ResponseWriter, r *http.Request) {
			var wi wireInjection
			if !readJSON(w, r, &wi) {
				return
			}
			cfg, inj, err := wi.toInjection(routing)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := eng.InjectFault(cfg, inj); err != nil {
				writeError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "armed"})
		})
		mux.HandleFunc("/v1/chaos/disarm", func(w http.ResponseWriter, r *http.Request) {
			var wr wireRequest
			if !readJSON(w, r, &wr) {
				return
			}
			cfg, err := wr.toConfig(routing)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := eng.DisarmFaults(cfg); err != nil {
				writeError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "disarmed"})
		})
	}
	return mux
}

// queueWaitHinter is implemented by backends that learn queue wait from
// somewhere other than the local histogram — the multi-process proxy's
// cluster, whose shards report their own medians on every response. The
// local histogram alone would be blind there: the proxy never runs an
// engine, so its local p50 stays zero no matter how backed up the
// shards are.
type queueWaitHinter interface{ QueueWaitHint() int64 }

// retryAfterSeconds derives the Retry-After hint for a 503 from the
// observed p50 queue wait: if the median admitted request waits that
// long for capacity, a shed request retrying sooner would likely just
// be shed again. The observation is the worse of the local histogram's
// p50 and — when the backend reports one — the remote shards' own
// medians. Ceiling to whole seconds with a floor of 1 — the header's
// unit is seconds and "0" would invite an immediate hot retry loop, the
// opposite of backpressure.
func retryAfterSeconds(queueWait *obs.Histogram, be backend) int {
	p50 := queueWait.Quantile(0.5)
	if h, ok := be.(queueWaitHinter); ok {
		if w := h.QueueWaitHint(); w > p50 {
			p50 = w
		}
	}
	secs := (p50 + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	// Cap the hint: the histogram's power-of-two bounds can overshoot by
	// 2x, and telling clients to go away for minutes turns a transient
	// spike into an outage of our own making.
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// statusFor maps a per-request engine error to its HTTP status:
// admission rejection (the lane's bounded queue is full) is transient
// backpressure, so it answers 503 rather than 422 — clients should shed
// or retry, not fix the request.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, hypersort.ErrAdmissionRejected):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// wireRequest is the JSON shape of one request.
type wireRequest struct {
	Dim        int        `json:"dim"`
	Faults     []int64    `json:"faults,omitempty"`
	LinkFaults [][2]int64 `json:"link_faults,omitempty"`
	Model      string     `json:"model,omitempty"`   // "partial" (default) or "total"
	Routing    string     `json:"routing,omitempty"` // "ecube" or "multipath" ("" = the -routing default)
	Op         string     `json:"op,omitempty"`      // "sort" (default), "kth", "median", "topk"
	K          int        `json:"k,omitempty"`
	Keys       []int64    `json:"keys"`
}

// toConfig converts the wire form's configuration fields, rejecting
// unknown fault-model and routing strings. defRouting fills in for
// requests that leave "routing" empty — the server's -routing flag.
func (wr wireRequest) toConfig(defRouting hypersort.RoutingPolicy) (hypersort.Config, error) {
	cfg := hypersort.Config{Dim: wr.Dim}
	for _, f := range wr.Faults {
		cfg.Faults = append(cfg.Faults, hypersort.NodeID(f))
	}
	for _, l := range wr.LinkFaults {
		cfg.LinkFaults = append(cfg.LinkFaults, [2]hypersort.NodeID{hypersort.NodeID(l[0]), hypersort.NodeID(l[1])})
	}
	switch wr.Model {
	case "", "partial":
		cfg.Model = hypersort.Partial
	case "total":
		cfg.Model = hypersort.Total
	default:
		return hypersort.Config{}, fmt.Errorf("unknown fault model %q", wr.Model)
	}
	switch wr.Routing {
	case "":
		cfg.Routing = defRouting
	case "ecube":
		cfg.Routing = hypersort.RouteECube
	case "multipath":
		cfg.Routing = hypersort.RouteMultipath
	default:
		return hypersort.Config{}, fmt.Errorf("unknown routing policy %q", wr.Routing)
	}
	return cfg, nil
}

// toRequest converts the wire form into a library request, rejecting
// unknown enum strings.
func (wr wireRequest) toRequest(defRouting hypersort.RoutingPolicy) (hypersort.Request, error) {
	cfg, err := wr.toConfig(defRouting)
	if err != nil {
		return hypersort.Request{}, err
	}
	var op hypersort.Op
	switch wr.Op {
	case "", "sort":
		op = hypersort.OpSort
	case "kth":
		op = hypersort.OpKthSmallest
	case "median":
		op = hypersort.OpMedian
	case "topk":
		op = hypersort.OpTopK
	default:
		return hypersort.Request{}, fmt.Errorf("unknown op %q", wr.Op)
	}
	keys := make([]hypersort.Key, len(wr.Keys))
	for i, k := range wr.Keys {
		keys[i] = hypersort.Key(k)
	}
	return hypersort.Request{Config: cfg, Op: op, Keys: keys, K: wr.K}, nil
}

// wireInjection is the JSON shape of one chaos-drill casualty: the
// target configuration (same fields as a sort request) plus exactly one
// of kill_node / kill_link, triggered at virtual time "at" or — nodes
// only — after the victim's "after_messages"-th send.
type wireInjection struct {
	wireRequest
	KillNode      *int64    `json:"kill_node,omitempty"`
	KillLink      *[2]int64 `json:"kill_link,omitempty"`
	At            int64     `json:"at,omitempty"`
	AfterMessages int64     `json:"after_messages,omitempty"`
}

// toInjection converts the wire form into the target configuration and
// the scheduled casualty.
func (wi wireInjection) toInjection(defRouting hypersort.RoutingPolicy) (hypersort.Config, hypersort.Injection, error) {
	cfg, err := wi.toConfig(defRouting)
	if err != nil {
		return hypersort.Config{}, hypersort.Injection{}, err
	}
	inj := hypersort.Injection{At: hypersort.Time(wi.At), AfterMessages: wi.AfterMessages}
	switch {
	case wi.KillNode != nil && wi.KillLink != nil:
		return hypersort.Config{}, hypersort.Injection{}, fmt.Errorf("kill_node and kill_link are mutually exclusive")
	case wi.KillNode != nil:
		inj.Kind = hypersort.KillNode
		inj.Node = hypersort.NodeID(*wi.KillNode)
	case wi.KillLink != nil:
		inj.Kind = hypersort.KillLink
		inj.Link = [2]hypersort.NodeID{hypersort.NodeID(wi.KillLink[0]), hypersort.NodeID(wi.KillLink[1])}
	default:
		return hypersort.Config{}, hypersort.Injection{}, fmt.Errorf("one of kill_node or kill_link is required")
	}
	return cfg, inj, nil
}

// wireResult is the JSON shape of one outcome. Direct marks results
// served by the direct host-speed substrate: the keys are exact, the
// stats are the analytic prediction instead of simulator measurements.
type wireResult struct {
	Keys   []int64         `json:"keys,omitempty"`
	Value  *int64          `json:"value,omitempty"`
	Stats  hypersort.Stats `json:"stats"`
	Direct bool            `json:"direct,omitempty"`
	Err    string          `json:"error,omitempty"`
}

// toWire converts a library result into its wire form, selecting the
// payload field the request's op populates.
func toWire(req hypersort.Request, res hypersort.Result) wireResult {
	if res.Err != nil {
		return wireResult{Err: res.Err.Error()}
	}
	out := wireResult{Stats: res.Stats, Direct: res.Direct}
	switch req.Op {
	case hypersort.OpKthSmallest, hypersort.OpMedian:
		v := int64(res.Value)
		out.Value = &v
	default:
		out.Keys = make([]int64, len(res.Keys))
		for i, k := range res.Keys {
			out.Keys[i] = int64(k)
		}
	}
	return out
}

// memMetrics is the allocation-health slice of runtime.MemStats exposed
// on /v1/metrics: enough to watch steady-state allocation rate and GC
// pressure without scraping full pprof profiles.
type memMetrics struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	Frees           uint64 `json:"frees"`
	LiveObjects     uint64 `json:"live_objects"`
	NumGC           uint32 `json:"num_gc"`
	PauseTotalNs    uint64 `json:"gc_pause_total_ns"`
}

// readMemMetrics snapshots the runtime allocator counters.
func readMemMetrics() memMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memMetrics{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		LiveObjects:     ms.Mallocs - ms.Frees,
		NumGC:           ms.NumGC,
		PauseTotalNs:    ms.PauseTotalNs,
	}
}

// requireGet rejects non-GET methods with a JSON 405 (HEAD passes — the
// stdlib mux serves it through the GET handler).
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return false
	}
	return true
}

// readJSON decodes a POST body into dst, answering malformed requests
// with JSON error bodies and the appropriate status code.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the service's uniform JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
