// Command benchjson runs a set of Go benchmarks and emits their results
// as a stable JSON document (ns/op, B/op, allocs/op per benchmark), or
// compares a fresh run against a committed baseline and fails when a
// metric regresses past its threshold.
//
// It exists so CI can gate on allocation regressions without external
// tooling (benchstat is not vendored): the repo commits the baseline
// (BENCH_PR3.json) and the regression job runs
//
//	go run ./cmd/benchjson -bench '^(BenchmarkFig7a|BenchmarkEngineBatch)$' \
//	    -benchtime 2x -baseline BENCH_PR3.json
//
// Comparison rules: allocs/op is the tightest gating metric — it is
// deterministic for these simulations (virtual-time kernels allocate
// identically run to run). ns/op is gated too, at ±25% by default: wide
// enough for shared-runner noise, tight enough that losing the execution
// core's constant-factor wins (persistent workers, SPSC rings, the tree
// barrier) trips the gate. Raise -time-tolerance per-invocation when a
// runner class is known-noisy.
//
// With -count N the benchmarks run N times (go test -count) and every
// gated metric is the per-benchmark median, so one noisy sample on a
// shared runner neither writes a skewed baseline nor trips the gate.
// Custom b.ReportMetric columns (req/s, p99-wait-ns, ...) are tolerated
// and ignored: only ns/op, B/op, and allocs/op are recorded.
//
// Usage:
//
//	benchjson -bench 'BenchmarkFig7c' -count 3 -o BENCH_PR5.json  # write baseline
//	benchjson -bench '...' -baseline BENCH_PR5.json               # gate in CI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured metrics. With -count > 1 each
// metric is the median of the samples (ties averaged), and Samples
// records how many runs fed it.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"b_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Samples  int     `json:"samples,omitempty"`
}

// Doc is the file format: results keyed by benchmark name plus the exact
// command that produced them, so a baseline is reproducible by hand.
type Doc struct {
	Command string   `json:"command"`
	Results []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", "^(BenchmarkFig7a|BenchmarkEngineBatch|BenchmarkFTSort|BenchmarkDirectBatch|BenchmarkClusterThroughput|BenchmarkMultipathSort|BenchmarkTransportCodec)$", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "2x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("o", "", "write results as JSON to this file (default stdout)")
		baseline  = flag.String("baseline", "", "compare against this baseline JSON instead of writing; non-zero exit on regression")
		allocTol  = flag.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op increase over baseline")
		bytesTol  = flag.Float64("bytes-tolerance", 0.25, "allowed fractional B/op increase over baseline")
		timeTol   = flag.Float64("time-tolerance", 0.25, "allowed fractional ns/op increase over baseline")
		count     = flag.Int("count", 1, "benchmark repetitions (go test -count); metrics are per-benchmark medians")
		input     = flag.String("parse", "", "parse an existing `go test -bench` output file instead of running benchmarks")
	)
	flag.Parse()

	var (
		raw     []byte
		command string
		err     error
	)
	if *input != "" {
		command = "parsed from " + *input
		raw, err = os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
		command = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err = cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("benchmark run failed: %w", err))
		}
	}

	results, err := parseBench(string(raw))
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *bench))
	}
	doc := Doc{Command: command, Results: results}

	if *baseline != "" {
		base, err := readDoc(*baseline)
		if err != nil {
			fatal(err)
		}
		if ok := compare(base, doc, *allocTol, *bytesTol, *timeTol); !ok {
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// benchLine matches `go test -bench -benchmem` output rows, tolerating
// any custom b.ReportMetric columns between ns/op and the -benchmem
// pair (req/s, p99-wait-ns, ...), e.g.
//
//	BenchmarkFig7c-4   2   119450477 ns/op   23925104 B/op   20650 allocs/op
//	BenchmarkEngineThroughput/batching-4   516145   3923 ns/op   254930 req/s   145 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.eE+-]+ [\w/.-]+)*?\s+(\d+) B/op\s+(\d+) allocs/op`)

// parseBench extracts Results from go test -bench output, collapsing
// repeated rows of one benchmark (go test -count N) into per-metric
// medians. Benchmarks without -benchmem columns are skipped (everything
// in this repo reports allocations).
func parseBench(out string) ([]Result, error) {
	samples := make(map[string]*[3][]float64)
	var order []string
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		bpo, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
		}
		apo, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
		}
		s, ok := samples[m[1]]
		if !ok {
			s = new([3][]float64)
			samples[m[1]] = s
			order = append(order, m[1])
		}
		s[0] = append(s[0], ns)
		s[1] = append(s[1], float64(bpo))
		s[2] = append(s[2], float64(apo))
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		s := samples[name]
		results = append(results, Result{
			Name:     name,
			NsPerOp:  median(s[0]),
			BPerOp:   int64(median(s[1])),
			AllocsOp: int64(median(s[2])),
			Samples:  len(s[0]),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// median returns the middle sample (the mean of the middle two for even
// counts). The slice is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func readDoc(path string) (Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compare prints a per-benchmark table and returns false if any current
// metric exceeds baseline*(1+tolerance). Benchmarks present on only one
// side are reported but never fail the gate (renames shouldn't break CI;
// the baseline refresh catches them).
func compare(base, cur Doc, allocTol, bytesTol, timeTol float64) bool {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	ok := true
	for _, c := range cur.Results {
		b, found := baseBy[c.Name]
		if !found {
			fmt.Printf("%-48s (new; no baseline)\n", c.Name)
			continue
		}
		delete(baseBy, c.Name)
		allocBad := exceeds(float64(c.AllocsOp), float64(b.AllocsOp), allocTol)
		bytesBad := exceeds(float64(c.BPerOp), float64(b.BPerOp), bytesTol)
		timeBad := exceeds(c.NsPerOp, b.NsPerOp, timeTol)
		status := "ok"
		if allocBad || bytesBad || timeBad {
			status = "REGRESSION"
			ok = false
		}
		fmt.Printf("%-48s allocs %8d -> %8d (%+6.1f%%)  B %10d -> %10d  ns %12.0f -> %12.0f  %s\n",
			c.Name, b.AllocsOp, c.AllocsOp, pct(float64(c.AllocsOp), float64(b.AllocsOp)),
			b.BPerOp, c.BPerOp, b.NsPerOp, c.NsPerOp, status)
		if allocBad {
			fmt.Printf("  allocs/op regressed beyond %.0f%% tolerance\n", allocTol*100)
		}
		if bytesBad {
			fmt.Printf("  B/op regressed beyond %.0f%% tolerance\n", bytesTol*100)
		}
		if timeBad {
			fmt.Printf("  ns/op regressed beyond %.0f%% tolerance\n", timeTol*100)
		}
	}
	for name := range baseBy {
		fmt.Printf("%-48s (in baseline but not measured)\n", name)
	}
	if !ok {
		fmt.Println("benchjson: FAIL — regression against baseline")
	} else {
		fmt.Println("benchjson: PASS — within baseline tolerances")
	}
	return ok
}

// exceeds reports cur > base*(1+tol), treating a zero baseline as "any
// increase is a regression" only when cur exceeds a small absolute slack.
func exceeds(cur, base, tol float64) bool {
	if base == 0 {
		return cur > 8 // allow trivial noise over a zero baseline
	}
	return cur > base*(1+tol)
}

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
