package bitonic

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func TestFullCubeViewMapping(t *testing.T) {
	v := FullCube(4)
	if v.S() != 4 || v.Size() != 16 || v.LiveCount() != 16 {
		t.Fatalf("view = %+v", v)
	}
	for id := cube.NodeID(0); id < 16; id++ {
		if v.Phys(id) != id || v.Logical(id) != id {
			t.Fatalf("full view not identity at %d", id)
		}
	}
}

func TestSingleFaultViewMapping(t *testing.T) {
	v := SingleFaultView(4, 0b1010)
	if !v.Dead || v.LiveCount() != 15 {
		t.Fatal("dead flag or live count wrong")
	}
	if v.Phys(0) != 0b1010 {
		t.Errorf("logical 0 should be the fault, got %04b", v.Phys(0))
	}
	if v.Logical(0b1010) != 0 {
		t.Error("fault should map to logical 0")
	}
	// Reindexing preserves adjacency.
	for logical := cube.NodeID(0); logical < 16; logical++ {
		for j := 0; j < 4; j++ {
			a := v.Phys(logical)
			b := v.Phys(cube.FlipBit(logical, j))
			if cube.HammingDistance(a, b) != 1 {
				t.Fatalf("adjacency broken at logical %d dim %d", logical, j)
			}
		}
	}
}

func TestSubcubeViewMapping(t *testing.T) {
	h := cube.New(5)
	sc, _ := cube.ParseSubcube("1*0*1")
	deadW := cube.NodeID(0b10) // local bits over free dims {1, 3}: dim3=1, dim1=0
	v := SubcubeView(h, sc, &deadW)
	if v.S() != 2 || !v.Dead {
		t.Fatalf("view = %+v", v)
	}
	// Logical 0 is the dead node: fixed bits 1_0_1 with dim3=1, dim1=0:
	// address 11001 = 25.
	if v.Phys(0) != 0b11001 {
		t.Errorf("dead phys = %05b", v.Phys(0))
	}
	// Every live physical address must be inside the subcube.
	for _, phys := range v.LivePhys() {
		if !sc.Contains(phys) {
			t.Errorf("live node %05b outside subcube", phys)
		}
	}
	// Without a dead node the view is the plain subcube.
	v2 := SubcubeView(h, sc, nil)
	if v2.Dead || v2.LiveCount() != 4 {
		t.Errorf("no-dead view = %+v", v2)
	}
}

func TestViewValidate(t *testing.T) {
	if err := (View{Dims: []int{0, 0}}).Validate(3); err == nil {
		t.Error("repeated dim accepted")
	}
	if err := (View{Dims: []int{5}}).Validate(3); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if err := (View{Dims: []int{0}, Pivot: 2}).Validate(3); err == nil {
		t.Error("oversized pivot accepted")
	}
	if err := FullCube(3).Validate(3); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
}

func TestLiveLogicalsSkipsDead(t *testing.T) {
	v := SingleFaultView(2, 3)
	logicals := v.LiveLogicals()
	if len(logicals) != 3 || logicals[0] != 1 {
		t.Errorf("live logicals = %v", logicals)
	}
}

// sortAndCheck runs Sort and verifies the result is a sorted permutation.
func sortAndCheck(t *testing.T, m *machine.Machine, v View, keys []sortutil.Key, dir sortutil.Direction) machine.Result {
	t.Helper()
	got, res, err := Sort(m, v, keys, dir)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if !sortutil.IsSorted(got, dir) {
		t.Fatalf("result not sorted %v: %v", dir, got)
	}
	if !sortutil.SameMultiset(got, keys) {
		t.Fatalf("result not a permutation of input")
	}
	return res
}

func TestFaultFreeSortSmallCubes(t *testing.T) {
	r := xrand.New(1)
	for n := 0; n <= 4; n++ {
		m := machine.MustNew(machine.Config{Dim: n})
		for _, mult := range []int{1, 3, 8} {
			keys := workload.MustGenerate(workload.Uniform, mult*(1<<n), r)
			sortAndCheck(t, m, FullCube(n), keys, sortutil.Ascending)
			sortAndCheck(t, m, FullCube(n), keys, sortutil.Descending)
		}
	}
}

func TestFaultFreeSortAllDistributions(t *testing.T) {
	r := xrand.New(2)
	m := machine.MustNew(machine.Config{Dim: 3})
	for _, kind := range workload.Kinds() {
		keys := workload.MustGenerate(kind, 100, r)
		sortAndCheck(t, m, FullCube(3), keys, sortutil.Ascending)
	}
}

func TestFaultFreeSortRaggedSizes(t *testing.T) {
	r := xrand.New(3)
	m := machine.MustNew(machine.Config{Dim: 3})
	for _, sz := range []int{1, 5, 7, 9, 63, 65, 100} {
		keys := workload.MustGenerate(workload.Uniform, sz, r)
		sortAndCheck(t, m, FullCube(3), keys, sortutil.Ascending)
	}
}

// TestSingleFaultSortEveryFaultLocation is the core §2.1 claim: bitonic
// sort works on Q_n with one faulty processor at ANY address.
func TestSingleFaultSortEveryFaultLocation(t *testing.T) {
	r := xrand.New(4)
	for _, n := range []int{2, 3, 4} {
		for f := cube.NodeID(0); f < cube.NodeID(1<<n); f++ {
			m := machine.MustNew(machine.Config{Dim: n, Faults: cube.NewNodeSet(f)})
			keys := workload.MustGenerate(workload.Uniform, 6*(1<<n)-3, r)
			v := SingleFaultView(n, f)
			sortAndCheck(t, m, v, keys, sortutil.Ascending)
			sortAndCheck(t, m, v, keys, sortutil.Descending)
		}
	}
}

func TestSingleFaultSortTotalModel(t *testing.T) {
	// Under the total fault model messages detour around the fault; the
	// sort must still be correct and cost at least as much as partial.
	r := xrand.New(5)
	keys := workload.MustGenerate(workload.Uniform, 200, r)
	f := cube.NodeID(5)
	v := SingleFaultView(4, f)
	mPartial := machine.MustNew(machine.Config{Dim: 4, Faults: cube.NewNodeSet(f), Model: machine.Partial})
	mTotal := machine.MustNew(machine.Config{Dim: 4, Faults: cube.NewNodeSet(f), Model: machine.Total})
	resP := sortAndCheck(t, mPartial, v, keys, sortutil.Ascending)
	resT := sortAndCheck(t, mTotal, v, keys, sortutil.Ascending)
	if resT.Makespan < resP.Makespan {
		t.Errorf("total model (%d) cheaper than partial (%d)", resT.Makespan, resP.Makespan)
	}
	if resT.KeyHops < resP.KeyHops {
		t.Errorf("total model hops (%d) below partial (%d)", resT.KeyHops, resP.KeyHops)
	}
}

func TestSubcubeSortWithDeadNode(t *testing.T) {
	// Sort inside subcube 1*0*1 of Q_5 whose processor at local 10 is
	// dangling: the machine has no fault there, but the view excludes it.
	h := cube.New(5)
	sc, _ := cube.ParseSubcube("1*0*1")
	deadW := cube.NodeID(0b10)
	v := SubcubeView(h, sc, &deadW)
	m := machine.MustNew(machine.Config{Dim: 5})
	r := xrand.New(6)
	keys := workload.MustGenerate(workload.Uniform, 50, r)
	sortAndCheck(t, m, v, keys, sortutil.Ascending)
	sortAndCheck(t, m, v, keys, sortutil.Descending)
}

func TestSortRejectsFaultyLiveProcessor(t *testing.T) {
	// A fault-free view over a machine that DOES have a fault in it must
	// be rejected rather than silently running a kernel on a faulty node.
	m := machine.MustNew(machine.Config{Dim: 3, Faults: cube.NewNodeSet(2)})
	_, _, err := Sort(m, FullCube(3), []sortutil.Key{3, 1, 2}, sortutil.Ascending)
	if err == nil {
		t.Error("Sort accepted a view whose live set includes a faulty node")
	}
}

func TestSortRejectsInvalidView(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 3})
	_, _, err := Sort(m, View{Dims: []int{7}}, nil, sortutil.Ascending)
	if err == nil {
		t.Error("invalid view accepted")
	}
}

func TestSortDeterministicMakespan(t *testing.T) {
	r := xrand.New(7)
	keys := workload.MustGenerate(workload.Uniform, 128, r)
	var first machine.Time
	for trial := 0; trial < 4; trial++ {
		m := machine.MustNew(machine.Config{Dim: 4, Cost: machine.DefaultCostModel()})
		_, res, err := Sort(m, FullCube(4), keys, sortutil.Ascending)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("makespan %d != %d", res.Makespan, first)
		}
	}
}

func TestSortCostScalesWithM(t *testing.T) {
	r := xrand.New(8)
	m := machine.MustNew(machine.Config{Dim: 4})
	small := workload.MustGenerate(workload.Uniform, 1<<8, r)
	large := workload.MustGenerate(workload.Uniform, 1<<12, r)
	_, resS, err := Sort(m, FullCube(4), small, sortutil.Ascending)
	if err != nil {
		t.Fatal(err)
	}
	_, resL, err := Sort(m, FullCube(4), large, sortutil.Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if resL.Makespan <= resS.Makespan {
		t.Errorf("16x data not slower: %d vs %d", resL.Makespan, resS.Makespan)
	}
}

func TestDegenerateViews(t *testing.T) {
	// s=0 (one node), and s=1 with a dead node (single live processor).
	m := machine.MustNew(machine.Config{Dim: 2})
	keys := []sortutil.Key{5, 1, 3}
	v0 := View{Dims: nil, Fixed: 2}
	sortAndCheck(t, m, v0, keys, sortutil.Ascending)

	m1 := machine.MustNew(machine.Config{Dim: 1, Faults: cube.NewNodeSet(1)})
	v1 := SingleFaultView(1, 1)
	sortAndCheck(t, m1, v1, keys, sortutil.Ascending)
}

func TestHeapsortCostFormula(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1 + 1, 4: 3*2 + 1, 5: 4*3 + 1, 8: 7*3 + 1}
	for k, want := range cases {
		if got := heapsortCost(k); got != want {
			t.Errorf("heapsortCost(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCtxTagAlignment(t *testing.T) {
	// SkipStep and ExchangeSplit must consume tags identically.
	m := machine.MustNew(machine.Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *machine.Proc) error {
		ctx := NewCtx(p, FullCube(1), []sortutil.Key{sortutil.Key(p.ID())})
		if p.ID() == 0 {
			ctx.SkipStep() // pretend to sit out step 1
			ctx.ExchangeSplit(1, true)
		} else {
			ctx.SkipStep()
			ctx.ExchangeSplit(0, false)
		}
		if ctx.Chunk[0] != sortutil.Key(p.ID()) {
			t.Errorf("node %d chunk = %v", p.ID(), ctx.Chunk)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
