package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"hypersort/internal/machine"
)

// Ring is a bounded, concurrency-safe trace sink meant to stay attached
// to a production engine permanently: it keeps the most recent events in
// a fixed ring buffer and optionally samples (records one of every k
// offered events), so memory and overhead are constant no matter how
// long the process runs or how hot the machines get.
//
// The write path is one atomic increment to claim a slot plus a per-slot
// mutex for the copy; older events are overwritten in FIFO order. Pass
// Record as machine.Config.Trace (or through the public engine trace
// hook) exactly like a Recorder.
type Ring struct {
	mask   uint64
	sample uint64
	slots  []ringSlot

	seen atomic.Uint64 // events offered to Record
	seq  atomic.Uint64 // events accepted (claims slots, 1-based)
}

// ringSlot is one ring entry. The mutex makes the (seq, ev) pair
// atomic with respect to readers; writers of different slots never
// contend.
type ringSlot struct {
	mu  sync.Mutex
	seq uint64 // 1-based acceptance sequence; 0 = never written
	ev  machine.TraceEvent
}

// NewRing returns a ring holding the last capacity events (rounded up to
// a power of two, minimum 16), recording one of every sampleEvery events
// offered (values < 1 mean record everything).
func NewRing(capacity, sampleEvery int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Ring{
		mask:   uint64(n - 1),
		sample: uint64(sampleEvery),
		slots:  make([]ringSlot, n),
	}
}

// Record offers one event to the ring; it keeps every sample-th one.
// Safe for concurrent use; assignable to machine.Config.Trace.
func (r *Ring) Record(ev machine.TraceEvent) {
	if n := r.seen.Add(1); r.sample > 1 && (n-1)%r.sample != 0 {
		return
	}
	s := r.seq.Add(1)
	slot := &r.slots[(s-1)&r.mask]
	slot.mu.Lock()
	slot.seq = s
	slot.ev = ev
	slot.mu.Unlock()
}

// Seen returns the number of events offered to the ring (before
// sampling).
func (r *Ring) Seen() uint64 { return r.seen.Load() }

// Recorded returns the number of events accepted into the ring
// (after sampling, including ones since overwritten).
func (r *Ring) Recorded() uint64 { return r.seq.Load() }

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	held := r.seq.Load()
	if held > uint64(len(r.slots)) {
		held = uint64(len(r.slots))
	}
	return int(held)
}

// Snapshot returns up to last of the most recent events in acceptance
// order (oldest first); last <= 0 means everything held. The snapshot is
// consistent per event but not across events — writers racing the
// snapshot may overwrite the oldest entries, which are then simply
// omitted. Acceptance order makes repeated exports of a quiescent ring
// byte-identical.
func (r *Ring) Snapshot(last int) []machine.TraceEvent {
	hi := r.seq.Load()
	if hi == 0 {
		return nil
	}
	lo := uint64(1)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots)) + 1
	}
	if last > 0 && hi-lo+1 > uint64(last) {
		lo = hi - uint64(last) + 1
	}
	type seqEv struct {
		seq uint64
		ev  machine.TraceEvent
	}
	got := make([]seqEv, 0, hi-lo+1)
	for i := range r.slots {
		slot := &r.slots[i]
		slot.mu.Lock()
		s, ev := slot.seq, slot.ev
		slot.mu.Unlock()
		// Accept slots still inside the requested window; concurrent
		// writers may have pushed a slot past hi — those are newer events
		// than the snapshot asked for, so they are dropped too.
		if s >= lo && s <= hi {
			got = append(got, seqEv{s, ev})
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	out := make([]machine.TraceEvent, len(got))
	for i, se := range got {
		out[i] = se.ev
	}
	return out
}

// Reset empties the ring and restarts the sampling phase.
func (r *Ring) Reset() {
	for i := range r.slots {
		slot := &r.slots[i]
		slot.mu.Lock()
		slot.seq = 0
		slot.ev = machine.TraceEvent{}
		slot.mu.Unlock()
	}
	r.seen.Store(0)
	r.seq.Store(0)
}
