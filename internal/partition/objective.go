package partition

import (
	"fmt"

	"hypersort/internal/cube"
)

// This file adds the congestion-aware variant of the §3 selection
// heuristic. The paper's formula (1) charges a cutting sequence by hop
// count alone: Σ_i max(h_i), the worst extra Hamming distance a
// reindexed compare-exchange pair pays per cross-subcube dimension.
// Hops are congestion-blind — two reindexed pairs whose detour routes
// share a link serialize on it, and the hop objective cannot see that.
//
// ObjectiveCongestion models the sharing: for each cross-subcube
// dimension, lay the e-cube route of every reindexed pair onto the
// subcube's local (w-space) links, count how many routes load each
// link, and charge every pair its hop count plus the queueing exposure
// along its route (Σ per route edge of load-1 — the transfers that must
// drain first in the worst case). The objective stays a deterministic
// integer, so plan selection remains reproducible and cacheable; the
// legacy hop objective is untouched and remains the default.

// Objective selects the cutting-sequence scoring rule of the §3
// heuristic.
type Objective int

const (
	// ObjectiveHops is the paper's formula (1): hop count only. The
	// default — plans built with it are bit-identical to previous
	// releases.
	ObjectiveHops Objective = iota
	// ObjectiveCongestion charges hop count plus modeled link wait on
	// shared route edges (used for multipath/congestion-priced
	// configurations).
	ObjectiveCongestion
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveHops:
		return "hops"
	case ObjectiveCongestion:
		return "congestion"
	}
	return "objective(?)"
}

// ExtraCommCostCongestion evaluates the congestion-aware objective for
// an ordered cutting sequence: formula (1)'s per-dimension maximum over
// fault pairs of (Hamming distance + modeled link wait), summed over
// cross-subcube dimensions. The link wait of a pair is the number of
// other pairs' e-cube route segments sharing its route's edges — the
// worst-case serialization the occupancy replay would charge.
func ExtraCommCostCongestion(h cube.Hypercube, faults cube.NodeSet, d cube.CutSequence) (int, error) {
	sp, err := cube.NewSplit(h, d)
	if err != nil {
		return 0, err
	}
	if !sp.IsSingleFault(faults) {
		return 0, fmt.Errorf("partition: %v does not yield a single-fault structure", d)
	}
	faultW := make([]int64, sp.NumSubcubes())
	for i := range faultW {
		faultW[i] = -1
	}
	for f := range faults {
		faultW[sp.V(f)] = int64(sp.W(f))
	}
	type wpair struct{ a, b cube.NodeID }
	total := 0
	for i := 0; i < sp.M(); i++ {
		// Collect this dimension's reindexed pairs, then lay their
		// dimension-order routes onto the w-space links to count
		// per-edge load.
		var pairs []wpair
		for v := 0; v < sp.NumSubcubes(); v++ {
			if cube.Bit(cube.NodeID(v), i) != 0 {
				continue
			}
			nb := int(sp.NeighborSubcube(cube.NodeID(v), i))
			if faultW[v] < 0 || faultW[nb] < 0 {
				continue
			}
			pairs = append(pairs, wpair{cube.NodeID(faultW[v]), cube.NodeID(faultW[nb])})
		}
		load := make(map[cube.Edge]int)
		for _, p := range pairs {
			walkECube(p.a, p.b, func(x, y cube.NodeID) { load[cube.NewEdge(x, y)]++ })
		}
		maxCost := 0
		for _, p := range pairs {
			cost := cube.HammingDistance(p.a, p.b)
			walkECube(p.a, p.b, func(x, y cube.NodeID) { cost += load[cube.NewEdge(x, y)] - 1 })
			if cost > maxCost {
				maxCost = cost
			}
		}
		total += maxCost
	}
	return total, nil
}

// walkECube visits the edges of the dimension-order route from a to b
// (correct differing bits ascending — the same discipline every e-cube
// path in the repository uses).
func walkECube(a, b cube.NodeID, visit func(x, y cube.NodeID)) {
	cur := a
	for _, d := range cube.DifferingDims(a, b) {
		next := cube.FlipBit(cur, d)
		visit(cur, next)
		cur = next
	}
}

// SelectObjective is Select under a caller-chosen objective: among the
// sequences of Ψ it returns the one minimizing the objective, breaking
// ties toward the first (lexicographically smallest, matching the
// paper's choice of D_1 in Example 2).
func SelectObjective(h cube.Hypercube, faults cube.NodeSet, set CutSet, obj Objective) (cube.CutSequence, int, error) {
	if len(set.Sequences) == 0 {
		return nil, 0, fmt.Errorf("partition: empty cutting set")
	}
	score := ExtraCommCost
	switch obj {
	case ObjectiveHops:
	case ObjectiveCongestion:
		score = ExtraCommCostCongestion
	default:
		return nil, 0, fmt.Errorf("partition: unknown objective %d", int(obj))
	}
	best := -1
	bestCost := 0
	for i, d := range set.Sequences {
		cost, err := score(h, faults, d)
		if err != nil {
			return nil, 0, err
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return set.Sequences[best].Clone(), bestCost, nil
}

// BuildPlanObjective is BuildPlan under a caller-chosen objective.
// BuildPlan itself delegates here with ObjectiveHops, so legacy plans
// are bit-identical to previous releases.
func BuildPlanObjective(n int, faults cube.NodeSet, obj Objective) (*Plan, error) {
	h := cube.New(n)
	if faults == nil {
		faults = cube.NewNodeSet()
	}
	set, err := FindCuttingSet(h, faults)
	if err != nil {
		return nil, err
	}
	chosen, cost, err := SelectObjective(h, faults, set, obj)
	if err != nil {
		return nil, err
	}
	sp, err := cube.NewSplit(h, chosen)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cube:      h,
		Faults:    faults.Clone(),
		Set:       set,
		Chosen:    chosen,
		ExtraComm: cost,
		Split:     sp,
	}
	p.assignDead()
	return p, nil
}
