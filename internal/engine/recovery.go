package engine

// Hot replanning: the live-fault recovery path. A run that dies to an
// injected casualty (machine.ProcessorDiedError / LinkDiedError) does
// not surface the error — the engine diagnoses the degraded machine with
// an online PMC probe round, folds the agreed casualties into a new
// canonical configuration, resolves it through the ordinary plan cache
// (a repeat casualty pattern replans for free), and re-dispatches the
// request's keys onto the surviving processors. The original input lives
// host-side, so "redistribute the surviving keys" is exact: every key
// survives, and the recovered output is the full sorted input.
//
// Recovery composes with itself: the degraded re-run goes through
// doUnbatched, whose own recovery hook handles a second casualty striking
// mid-recovery. Each level adds at least one fault to the configuration,
// and validate rejects a fault set that fills the cube, so the recursion
// is bounded by the machine size. When planning the degraded
// configuration fails — the fault set no longer admits a single-fault
// partition, the paper's recoverability frontier — the request fails
// fast with ErrUnrecoverable.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hypersort/internal/cube"
	"hypersort/internal/diagnosis"
	"hypersort/internal/machine"
)

// ErrUnrecoverable is found (via errors.Is) in Result.Err when a mid-run
// casualty left the machine beyond repair: the degraded fault set admits
// no single-fault partition (or no working processor at all), so the
// engine gave up instead of hanging or mis-sorting. Within the paper's
// guarantee band — at most dim-1 processor faults in total — recovery
// never reports it.
var ErrUnrecoverable = errors.New("engine: fault set unrecoverable")

// recoverySeed drives the PMC liar bits of online diagnosis rounds. It
// is a fixed constant so a given (machine state, schedule) recovers
// identically on every substrate and run.
const recoverySeed = 0xD1A6

// InjectFault arms live fault injections on cfg's machine pool: the
// scheduled casualties will strike runs of that configuration mid-kernel
// (see machine.Injection for trigger semantics). The pool's template is
// built on demand and its injector is shared by every pooled machine,
// existing and future. The configuration must be valid and plannable —
// a chaos drill against an unservable configuration is refused.
func (e *Engine) InjectFault(cfg Config, injs ...machine.Injection) error {
	if err := validate(cfg); err != nil {
		return err
	}
	key := e.planKey(cfg)
	if _, err := e.plan(key, cfg); err != nil {
		return err
	}
	return e.poolFor(poolKey{pk: key, cost: cfg.Cost}, cfg).arm(injs...)
}

// DisarmFaults clears cfg's injection schedule, fired entries included:
// the pool serves the configuration at full health again. Call only with
// no run in flight on the configuration.
func (e *Engine) DisarmFaults(cfg Config) error {
	if err := validate(cfg); err != nil {
		return err
	}
	key := e.planKey(cfg)
	if _, err := e.plan(key, cfg); err != nil {
		return err
	}
	return e.poolFor(poolKey{pk: key, cost: cfg.Cost}, cfg).disarm()
}

// recoverFrom is the replanning loop entry: m is the leased machine the
// casualty fired on (the lease is still held — the diagnosis round runs
// on it), req the victim request, and cause the fatal death error.
// Returns the recovered result, or an ErrUnrecoverable-wrapped failure.
func (e *Engine) recoverFrom(ctx context.Context, m *machine.Machine, req Request, cause error) Result {
	start := time.Now()

	// Online diagnosis on the survivors. A second casualty may strike
	// during the probe round itself; each retry sees a smaller survivor
	// set, so the loop is bounded by the machine size.
	var diag diagnosis.OnlineResult
	var derr error
	for attempt := 0; ; attempt++ {
		diag, derr = diagnosis.OnlineRound(m, recoverySeed)
		if derr == nil {
			break
		}
		if machine.IsInjectedDeath(derr) && attempt < m.Cube().Size() {
			continue
		}
		return e.unrecoverable(cause, fmt.Errorf("diagnosis failed: %w", derr))
	}

	// Fold the agreed casualties into a new canonical configuration. The
	// plan key canonicalizes fault and link order, so any arrival order
	// of casualties hits the same cache entries.
	newCfg := req.Config
	newCfg.Faults = diag.Faults.Sorted()
	if len(diag.NewLinks) > 0 {
		newCfg.LinkFaults = append(append([][2]cube.NodeID(nil), req.Config.LinkFaults...), diag.NewLinks...)
	}
	newKey := e.planKey(newCfg)
	if newKey == e.planKey(req.Config) {
		// Diagnosis found nothing new — the death error cannot be
		// replanned away, so surface it rather than loop.
		return Result{Err: cause}
	}
	if err := validate(newCfg); err != nil {
		return e.unrecoverable(cause, err)
	}
	entry, err := e.plan(newKey, newCfg)
	if err != nil {
		return e.unrecoverable(cause, err)
	}

	// Re-dispatch the original keys on the degraded configuration. The
	// nested doUnbatched carries its own recovery hook, so a casualty
	// striking the recovery run recurses with a strictly larger fault
	// set.
	newReq := req
	newReq.Config = newCfg
	res := e.doUnbatched(ctx, newKey, newCfg, entry, newReq)
	if res.Err == nil {
		e.replans.Add(1)
		if em := e.em; em != nil {
			em.Replans.Inc()
			em.KeysRedistributed.Add(int64(len(req.Keys)))
			em.RecoveryLatency.Observe(time.Since(start).Nanoseconds())
		}
	}
	return res
}

// unrecoverable records a failed recovery and wraps the evidence in
// ErrUnrecoverable.
func (e *Engine) unrecoverable(cause, err error) Result {
	e.unrecov.Add(1)
	if e.em != nil {
		e.em.Unrecoverable.Inc()
	}
	return Result{Err: fmt.Errorf("%w: %v (casualty: %v)", ErrUnrecoverable, err, cause)}
}
