package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// LinkFaultRow is one dead-link count of the link-fault study (E16): the
// paper's model admits "faulty processors/links" but its evaluation only
// exercises processor faults; this sweep measures what dead wires cost
// when the router detours around them.
type LinkFaultRow struct {
	N, M      int
	DeadLinks int
	Trials    int
	// MeanKeyHopInflation is mean(key-hops with faults / key-hops clean).
	MeanKeyHopInflation float64
	// MeanSlowdown is mean(makespan with faults / makespan clean).
	MeanSlowdown float64
}

// LinkFaults sweeps dead-link counts on an otherwise healthy Q_n,
// verifying every sort and reporting traffic and time inflation. Counts
// up to n-1 are always routable (edge connectivity n); beyond that,
// placements that disconnect the cube abort the sweep, so callers stay
// within the bound.
func LinkFaults(n, mKeys, maxLinks, trials int, seed uint64) ([]LinkFaultRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	plan, err := partition.BuildPlan(n, nil)
	if err != nil {
		return nil, err
	}
	keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
	clean := machine.MustNew(machine.Config{Dim: n})
	_, cleanRes, err := core.FTSort(clean, plan, keys)
	if err != nil {
		return nil, err
	}

	var rows []LinkFaultRow
	for dead := 1; dead <= maxLinks; dead++ {
		row := LinkFaultRow{N: n, M: mKeys, DeadLinks: dead, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			links := cube.NewEdgeSet()
			for len(links) < dead {
				a := cube.NodeID(rng.IntN(h.Size()))
				links.Add(a, h.Neighbor(a, rng.IntN(n)))
			}
			m, err := machine.New(machine.Config{Dim: n, LinkFaults: links})
			if err != nil {
				return nil, err
			}
			sorted, res, err := core.FTSort(m, plan, keys)
			if err != nil {
				return nil, fmt.Errorf("experiments: link-fault sort failed with %d dead links: %w", dead, err)
			}
			if !sortutil.IsSorted(sorted, sortutil.Ascending) {
				return nil, fmt.Errorf("experiments: link-fault sort WRONG with links %v", links.Sorted())
			}
			row.MeanKeyHopInflation += float64(res.KeyHops) / float64(cleanRes.KeyHops)
			row.MeanSlowdown += float64(res.Makespan) / float64(cleanRes.Makespan)
		}
		row.MeanKeyHopInflation /= float64(trials)
		row.MeanSlowdown /= float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatLinkFaults renders E16's rows.
func FormatLinkFaults(rows []LinkFaultRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tM\tdead links\tkey-hop inflation\tslowdown")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3fx\t%.3fx\n",
			r.N, r.M, r.DeadLinks, r.MeanKeyHopInflation, r.MeanSlowdown)
	}
	w.Flush()
	return b.String()
}
