package machine

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

func TestPerNodeClocks(t *testing.T) {
	m := MustNew(Config{Dim: 2})
	res, err := m.Run([]cube.NodeID{0, 1, 2}, func(p *Proc) error {
		p.Compute(int(p.ID()) * 7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 3 {
		t.Fatalf("PerNode has %d entries", len(res.PerNode))
	}
	for id, clock := range res.PerNode {
		if clock != Time(id)*7 {
			t.Errorf("node %d clock = %d", id, clock)
		}
	}
	if res.Makespan != 14 {
		t.Errorf("makespan = %d", res.Makespan)
	}
}

func TestRecvWaitsCountsStalls(t *testing.T) {
	// Node 1 computes a long time before sending; node 0's receive must
	// record a stall (it blocks on the mailbox in real time).
	m := MustNew(Config{Dim: 1})
	res, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 1 {
			p.Compute(1000)
			p.Send(0, 1, []sortutil.Key{1})
			return nil
		}
		p.Recv(1, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stall is scheduling-dependent in *count* but the virtual clock
	// is not: node 0 finishes at node 1's send completion time.
	if res.PerNode[0] < 1000 {
		t.Errorf("receiver clock %d below sender compute time", res.PerNode[0])
	}
	_ = res.RecvWaits // counted but scheduling-dependent; just exercise it
}

func TestResultAggregation(t *testing.T) {
	m := MustNew(Config{Dim: 2, Cost: CostModel{Compare: 1, Elem: 1}})
	res, err := m.RunAllHealthy(func(p *Proc) error {
		peer := cube.FlipBit(p.ID(), 0)
		p.Exchange(peer, 1, make([]sortutil.Key, 5))
		p.Compute(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 || res.KeysSent != 20 || res.KeyHops != 20 {
		t.Errorf("aggregation wrong: %+v", res)
	}
	if res.Comparisons != 12 {
		t.Errorf("comparisons = %d", res.Comparisons)
	}
}
