package bitonic

import (
	"sync"
	"testing"
	"testing/quick"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func TestProtocolString(t *testing.T) {
	if FullBlock.String() != "full-block" || HalfExchange.String() != "half-exchange" {
		t.Error("Protocol strings wrong")
	}
	if FullBlock.tagsPerExchange() != 1 || HalfExchange.tagsPerExchange() != 2 {
		t.Error("tag budgets wrong")
	}
}

func TestSortBitonicRuns(t *testing.T) {
	cases := [][]sortutil.Key{
		{},
		{5},
		{1, 2, 3},
		{3, 2, 1},
		{1, 5, 9, 7, 2},    // mountain
		{9, 4, 1, 3, 8},    // valley
		{2, 2, 5, 5, 3, 1}, // mountain with plateaus
		{7, 7, 1, 1, 4},    // valley with plateaus
		{1, 1, 1},          // constant
		{5, 1},             // two elements desc
	}
	for _, c := range cases {
		orig := sortutil.Clone(c)
		got := sortBitonicRuns(sortutil.Clone(c))
		if !sortutil.IsSorted(got, sortutil.Ascending) || !sortutil.SameMultiset(got, orig) {
			t.Errorf("sortBitonicRuns(%v) = %v", orig, got)
		}
	}
}

func TestSortBitonicRunsQuick(t *testing.T) {
	// Build random two-run sequences and verify sorting.
	r := xrand.New(1)
	f := func(rawA, rawB []int16, mountain bool) bool {
		a := make([]sortutil.Key, len(rawA))
		for i, v := range rawA {
			a[i] = sortutil.Key(v)
		}
		b := make([]sortutil.Key, len(rawB))
		for i, v := range rawB {
			b[i] = sortutil.Key(v)
		}
		if mountain {
			sortutil.HeapSort(a, sortutil.Ascending)
			sortutil.HeapSort(b, sortutil.Descending)
		} else {
			sortutil.HeapSort(a, sortutil.Descending)
			sortutil.HeapSort(b, sortutil.Ascending)
		}
		xs := append(a, b...)
		orig := sortutil.Clone(xs)
		got := sortBitonicRuns(xs)
		return sortutil.IsSorted(got, sortutil.Ascending) && sortutil.SameMultiset(got, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = r
}

// TestHalfExchangePairEquivalence checks one compare-exchange under both
// protocols produces identical chunks on both sides.
func TestHalfExchangePairEquivalence(t *testing.T) {
	r := xrand.New(2)
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.IntN(32)
		a := workload.MustGenerate(workload.Uniform, k, r)
		b := workload.MustGenerate(workload.Uniform, k, r)
		sortutil.HeapSort(a, sortutil.Ascending)
		sortutil.HeapSort(b, sortutil.Ascending)

		results := map[Protocol][2][]sortutil.Key{}
		for _, proto := range []Protocol{FullBlock, HalfExchange} {
			m := machine.MustNew(machine.Config{Dim: 1})
			var out [2][]sortutil.Key
			_, err := m.Run([]cube.NodeID{0, 1}, func(p *machine.Proc) error {
				mine := a
				keepLow := true
				if p.ID() == 1 {
					mine = b
					keepLow = false
				}
				ctx := NewCtx(p, FullCube(1), sortutil.Clone(mine))
				ctx.Protocol = proto
				ctx.ExchangeSplit(p.ID()^1, keepLow)
				out[p.ID()] = ctx.Chunk
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			results[proto] = out
		}
		for side := 0; side < 2; side++ {
			fb, he := results[FullBlock][side], results[HalfExchange][side]
			if len(fb) != len(he) {
				t.Fatalf("trial %d side %d: lengths differ", trial, side)
			}
			for i := range fb {
				if fb[i] != he[i] {
					t.Fatalf("trial %d side %d: protocols disagree:\n full %v\n half %v\n a=%v b=%v",
						trial, side, fb, he, a, b)
				}
			}
		}
	}
}

// TestHalfExchangeSortCorrectness runs the full distributed sorts under
// the half-exchange protocol, including single-fault views.
func TestHalfExchangeSortCorrectness(t *testing.T) {
	r := xrand.New(3)
	for _, n := range []int{2, 3, 4} {
		m := machine.MustNew(machine.Config{Dim: n})
		keys := workload.MustGenerate(workload.Uniform, 7*(1<<n)-5, r)
		got, _, err := SortProto(m, FullCube(n), keys, sortutil.Ascending, HalfExchange)
		if err != nil {
			t.Fatal(err)
		}
		if !sortutil.IsSorted(got, sortutil.Ascending) || !sortutil.SameMultiset(got, keys) {
			t.Fatalf("n=%d: half-exchange fault-free sort wrong", n)
		}
		for f := cube.NodeID(0); f < cube.NodeID(1<<n); f += 3 {
			mf := machine.MustNew(machine.Config{Dim: n, Faults: cube.NewNodeSet(f)})
			got, _, err := SortProto(mf, SingleFaultView(n, f), keys, sortutil.Ascending, HalfExchange)
			if err != nil {
				t.Fatal(err)
			}
			if !sortutil.IsSorted(got, sortutil.Ascending) || !sortutil.SameMultiset(got, keys) {
				t.Fatalf("n=%d fault=%d: half-exchange single-fault sort wrong", n, f)
			}
		}
	}
}

// TestProtocolTrafficProfile verifies the ablation's headline numbers:
// the half-exchange sends twice the messages and the same key volume.
func TestProtocolTrafficProfile(t *testing.T) {
	r := xrand.New(4)
	keys := workload.MustGenerate(workload.Uniform, 1024, r)
	m := machine.MustNew(machine.Config{Dim: 4})
	_, resFull, err := SortProto(m, FullCube(4), keys, sortutil.Ascending, FullBlock)
	if err != nil {
		t.Fatal(err)
	}
	_, resHalf, err := SortProto(m, FullCube(4), keys, sortutil.Ascending, HalfExchange)
	if err != nil {
		t.Fatal(err)
	}
	if resHalf.Messages != 2*resFull.Messages {
		t.Errorf("messages: half %d, full %d (want exactly 2x)", resHalf.Messages, resFull.Messages)
	}
	// Same volume: chunk size is even (1024/16 = 64), so each half-round
	// moves exactly half a chunk.
	if resHalf.KeysSent != resFull.KeysSent {
		t.Errorf("keys sent: half %d, full %d", resHalf.KeysSent, resFull.KeysSent)
	}
	// Half-exchange pays more comparisons (k/2 + k-1 vs k per exchange).
	if resHalf.Comparisons <= resFull.Comparisons {
		t.Errorf("comparisons: half %d should exceed full %d", resHalf.Comparisons, resFull.Comparisons)
	}
}

// TestHalfExchangeDuplicateHeavy pins a regression: run-boundary
// detection in sortBitonicRuns must treat equal neighbors as continuing
// a run, or duplicate-laden chunks split into more than two pieces and
// the Step 7(c) merge produces garbage.
func TestHalfExchangeDuplicateHeavy(t *testing.T) {
	r := xrand.New(6)
	m := machine.MustNew(machine.Config{Dim: 3})
	for trial := 0; trial < 20; trial++ {
		keys := make([]sortutil.Key, 64)
		for i := range keys {
			keys[i] = sortutil.Key(r.IntN(4)) // heavy duplication
		}
		got, _, err := SortProto(m, FullCube(3), keys, sortutil.Ascending, HalfExchange)
		if err != nil {
			t.Fatal(err)
		}
		if !sortutil.IsSorted(got, sortutil.Ascending) || !sortutil.SameMultiset(got, keys) {
			t.Fatalf("trial %d: duplicate-heavy half-exchange wrong", trial)
		}
	}
}

// TestHalfExchangeComparisonAccounting pins the Compute charges of one
// half-exchange against the paper's Step 7 accounting. Pairing k keys
// costs k comparisons total, split across the sides: the keep-low side
// evaluates pairs t in [h, k) and charges k-h = ceil(k/2); the keep-high
// side evaluates t in [0, h) and charges h = floor(k/2) (the paper's
// "k/2 per side", with the odd key's comparison landing on the keep-low
// side). Each side then charges k-1 for the Step 7(c) merge. The in-place
// kernel rewrite must never change these numbers — they are the cost
// model, not an implementation detail.
func TestHalfExchangeComparisonAccounting(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 17} {
		var mu sync.Mutex
		charges := map[cube.NodeID][]int{}
		m := machine.MustNew(machine.Config{Dim: 1, Trace: func(ev machine.TraceEvent) {
			if ev.Kind != machine.TraceCompute {
				return
			}
			mu.Lock()
			charges[ev.Node] = append(charges[ev.Node], ev.Keys)
			mu.Unlock()
		}})
		r := xrand.New(uint64(k))
		a := workload.MustGenerate(workload.Uniform, k, r)
		b := workload.MustGenerate(workload.Uniform, k, r)
		sortutil.HeapSort(a, sortutil.Ascending)
		sortutil.HeapSort(b, sortutil.Ascending)
		_, err := m.Run([]cube.NodeID{0, 1}, func(p *machine.Proc) error {
			mine, keepLow := a, true
			if p.ID() == 1 {
				mine, keepLow = b, false
			}
			ctx := NewCtx(p, FullCube(1), sortutil.Clone(mine))
			ctx.Protocol = HalfExchange
			ctx.ExchangeSplit(p.ID()^1, keepLow)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h := k / 2
		want := map[cube.NodeID][]int{
			0: {k - h, k - 1}, // keep-low: ceil(k/2) pair compares + merge
			1: {h, k - 1},     // keep-high: floor(k/2) pair compares + merge
		}
		for node, w := range want {
			got := charges[node]
			if len(got) != len(w) {
				t.Fatalf("k=%d node %d: %d Compute calls %v, want %v", k, node, len(got), got, w)
			}
			for i := range w {
				if got[i] != w[i] {
					t.Errorf("k=%d node %d: charge %d = %d, want %d", k, node, i, got[i], w[i])
				}
			}
		}
		// Cross-check the paper's totals: k pair comparisons across both
		// sides plus 2(k-1) merge comparisons.
		total := 0
		for _, cs := range charges {
			for _, c := range cs {
				total += c
			}
		}
		if wantTotal := k + 2*(k-1); total != wantTotal {
			t.Errorf("k=%d: total comparisons %d, want %d", k, total, wantTotal)
		}
	}
}

func TestHalfExchangeOddChunks(t *testing.T) {
	// Odd chunk sizes exercise the asymmetric h = k/2 split.
	r := xrand.New(5)
	m := machine.MustNew(machine.Config{Dim: 3})
	for _, mKeys := range []int{8, 24, 40, 56} { // k = 1, 3, 5, 7
		keys := workload.MustGenerate(workload.Uniform, mKeys, r)
		got, _, err := SortProto(m, FullCube(3), keys, sortutil.Ascending, HalfExchange)
		if err != nil {
			t.Fatal(err)
		}
		if !sortutil.IsSorted(got, sortutil.Ascending) || !sortutil.SameMultiset(got, keys) {
			t.Fatalf("M=%d: odd-chunk half-exchange wrong", mKeys)
		}
	}
}
