// Package plot renders experiment results as standalone SVG charts using
// only the standard library — the repository's stand-in for the paper's
// hand-drawn figures. The output is deterministic (no timestamps, no
// randomness), so golden tests can pin it.
package plot

import (
	"fmt"
	"math"
	"strings"

	"hypersort/internal/experiments"
)

// Geometry of the chart canvas.
const (
	width   = 860.0
	height  = 540.0
	marginL = 80.0
	marginR = 230.0 // room for the legend
	marginT = 50.0
	marginB = 60.0
)

// palette holds line colors; series cycle through it.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// Fig7SVG renders a Figure 7 panel as a log-log line chart: one polyline
// per series, thin solid lines for the fault-tolerant sort, thick dashed
// lines for the fault-free subcube baselines, log-decade gridlines, and
// a legend. It returns a complete standalone SVG document.
func Fig7SVG(series []experiments.Fig7Series, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="28" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, escape(title))

	if len(series) == 0 || len(series[0].Points) == 0 {
		b.WriteString(`<text x="80" y="100" font-family="sans-serif" font-size="14">no data</text>` + "\n</svg>\n")
		return b.String()
	}

	// Data ranges in log10 space.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			x := math.Log10(float64(p.M))
			y := math.Log10(float64(p.Makespan))
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	sx := func(logx float64) float64 { return marginL + (logx-minX)/(maxX-minX)*plotW }
	sy := func(logy float64) float64 { return marginT + plotH - (logy-minY)/(maxY-minY)*plotH }

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Decade gridlines and tick labels.
	for e := math.Ceil(minX); e <= math.Floor(maxX)+1e-9; e++ {
		x := sx(e)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", x, marginT, x, marginT+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">1e%d</text>`+"\n",
			x, marginT+plotH+18, int(e))
	}
	for e := math.Ceil(minY); e <= math.Floor(maxY)+1e-9; e++ {
		y := sy(e)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="end">1e%d</text>`+"\n",
			marginL-6, y+4, int(e))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle">number of keys M</text>`+"\n",
		marginL+plotW/2, height-16)
	fmt.Fprintf(&b, `<text x="20" y="%g" font-family="sans-serif" font-size="13" transform="rotate(-90 20 %g)" text-anchor="middle">simulated time</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2)

	// Series polylines and legend.
	legendY := marginT + 8
	for i, s := range series {
		color := palette[i%len(palette)]
		strokeW, dash := 1.5, ""
		if s.Baseline {
			strokeW, dash = 3.0, ` stroke-dasharray="7,4"`
		}
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f",
				sx(math.Log10(float64(p.M))), sy(math.Log10(float64(p.Makespan)))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%g"%s/>`+"\n",
			strings.Join(pts, " "), color, strokeW, dash)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				sx(math.Log10(float64(p.M))), sy(math.Log10(float64(p.Makespan))), color)
		}
		// Legend entry.
		lx := marginL + plotW + 14
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="%g"%s/>`+"\n",
			lx, legendY, lx+26, legendY, color, strokeW, dash)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+32, legendY+4, escape(s.Label))
		legendY += 20
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// escape performs minimal XML text escaping.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
