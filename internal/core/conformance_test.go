package core

import (
	"fmt"
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestConformanceMatrix is the exhaustive cross-product check: every cube
// size in the paper's range x every fault count x both fault models x
// both wire protocols x several workload shapes, each verified as a
// sorted permutation. It is the suite's single widest net (hundreds of
// configurations) and is skipped under -short.
func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance matrix")
	}
	r := xrand.New(2026)
	kinds := []workload.Kind{workload.Uniform, workload.FewDistinct, workload.NearlySorted}
	for _, n := range []int{3, 4, 5, 6} {
		for nf := 0; nf < n; nf++ {
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(1<<n, nf) {
				faults.Add(cube.NodeID(f))
			}
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range []machine.FaultModel{machine.Partial, machine.Total} {
				for _, proto := range []bitonic.Protocol{bitonic.FullBlock, bitonic.HalfExchange} {
					for _, kind := range kinds {
						name := fmt.Sprintf("n=%d/r=%d/%s/%s/%s", n, nf, model, proto, kind)
						t.Run(name, func(t *testing.T) {
							m, err := machine.New(machine.Config{Dim: n, Faults: faults, Model: model})
							if err != nil {
								t.Fatal(err)
							}
							mKeys := 3*(1<<n) + r.IntN(100)
							keys := workload.MustGenerate(kind, mKeys, r)
							sorted, res, err := FTSortOpt(m, plan, keys, Options{Protocol: proto})
							if err != nil {
								t.Fatal(err)
							}
							if !sortutil.IsSorted(sorted, sortutil.Ascending) {
								t.Fatal("output not sorted")
							}
							if !sortutil.SameMultiset(sorted, keys) {
								t.Fatal("output not a permutation")
							}
							if mKeys > 0 && res.Makespan <= 0 {
								t.Fatal("no cost accounted")
							}
						})
					}
				}
			}
		}
	}
}

// TestConformanceQ7 pushes one size past the paper's largest machine:
// Q_7 (128 processors) with 6 faults, still correct and still bounded by
// the N/4 dangling guarantee.
func TestConformanceQ7(t *testing.T) {
	if testing.Short() {
		t.Skip("128-goroutine run")
	}
	r := xrand.New(7)
	faults := cube.NewNodeSet()
	for _, f := range r.Sample(128, 6) {
		faults.Add(cube.NodeID(f))
	}
	plan, err := partition.BuildPlan(7, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Dangling) > 128/4 {
		t.Fatalf("%d dangling > N/4", len(plan.Dangling))
	}
	m := machine.MustNew(machine.Config{Dim: 7, Faults: faults})
	keys := workload.MustGenerate(workload.Uniform, 6400, r)
	sorted, _, err := FTSort(m, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) || !sortutil.SameMultiset(sorted, keys) {
		t.Fatal("Q_7 sort wrong")
	}
}
