// Package collective implements the classic hypercube collective
// operations — binomial-tree broadcast, scatter, gather, and reductions —
// over arbitrary participant groups of the simulated machine.
//
// The paper's Step 2 assumes a host that "distributes each normal
// processor ⌊M/N'⌋ elements" and its cost model excludes that phase;
// these collectives make the phase executable (and priceable) so the
// distribution overhead the paper set aside can be measured (see the
// distribution ablation in EXPERIMENTS.md).
//
// Groups are ordered lists of physical processors; the trees are built
// over group *ranks*, so they work for any participant set — including
// the fault-tolerant sort's working set, which is not a subcube — with
// the machine's router pricing each edge's real hop count.
package collective

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// Group is an ordered set of participating processors. Rank i is
// Members[i]; collective semantics (roots, share order) are defined over
// ranks.
type Group struct {
	members []cube.NodeID
	rank    map[cube.NodeID]int
}

// NewGroup builds a group from an ordered member list. Duplicate members
// are rejected: a processor cannot hold two ranks.
func NewGroup(members []cube.NodeID) (*Group, error) {
	g := &Group{
		members: append([]cube.NodeID(nil), members...),
		rank:    make(map[cube.NodeID]int, len(members)),
	}
	for i, m := range members {
		if _, dup := g.rank[m]; dup {
			return nil, fmt.Errorf("collective: processor %d appears twice in group", m)
		}
		g.rank[m] = i
	}
	if len(g.members) == 0 {
		return nil, fmt.Errorf("collective: empty group")
	}
	return g, nil
}

// MustGroup is NewGroup for statically valid member lists.
func MustGroup(members []cube.NodeID) *Group {
	g, err := NewGroup(members)
	if err != nil {
		panic(err)
	}
	return g
}

// Size returns the number of participants P.
func (g *Group) Size() int { return len(g.members) }

// Member returns the processor at the given rank.
func (g *Group) Member(rank int) cube.NodeID { return g.members[rank] }

// RankOf returns the rank of a processor and whether it belongs to the
// group.
func (g *Group) RankOf(id cube.NodeID) (int, bool) {
	r, ok := g.rank[id]
	return r, ok
}

// rankOfProc returns the caller's rank, panicking the kernel (via the
// machine's failure path) if it is not a member — calling a collective
// from outside the group is a programming error that must not hang the
// other participants silently.
func rankOfProc(p *machine.Proc, g *Group) int {
	r, ok := g.rank[p.ID()]
	if !ok {
		panic(fmt.Sprintf("collective: processor %d is not in the group", p.ID()))
	}
	return r
}

// Broadcast distributes keys from the root rank to every group member
// using a binomial tree (ceil(log2 P) rounds). Every member must call it
// with the same root and tag; non-root callers pass nil keys and receive
// the broadcast payload. The returned slice is owned by the caller.
func Broadcast(p *machine.Proc, g *Group, root int, tag machine.Tag, keys []sortutil.Key) []sortutil.Key {
	self := rankOfProc(p, g)
	pSize := g.Size()
	// Rotate ranks so the root is virtual rank 0.
	vr := (self - root + pSize) % pSize
	data := keys
	if vr != 0 {
		// Receive from the partner that covers this rank: the sender is
		// vr with its highest set bit cleared.
		h := highestBit(vr)
		src := (clearBit(vr, h) + root) % pSize
		data = p.Recv(g.Member(src), tag)
	}
	// Forward to the ranks this node covers.
	for h := nextPow2Exp(pSize) - 1; h >= 0; h-- {
		if vr >= 1<<h {
			continue // this node receives in round h, never sends before
		}
		dst := vr | 1<<h
		if dst < pSize && dst != vr {
			p.Send(g.Member((dst+root)%pSize), tag, data)
		}
	}
	out := append([]sortutil.Key(nil), data...)
	if vr != 0 {
		p.Release(data) // the received payload was copied out above
	}
	return out
}

// Scatter distributes shares[i] to rank i from the root using recursive
// range halving (binomial scatter): the holder of a rank range forwards
// the upper half's shares in one message, so the root injects O(M) keys
// over O(log P) messages instead of P messages. Only the root passes
// shares (len(shares) == P, in rank order); every member returns its own
// share.
func Scatter(p *machine.Proc, g *Group, root int, tag machine.Tag, shares [][]sortutil.Key) []sortutil.Key {
	self := rankOfProc(p, g)
	pSize := g.Size()
	vr := (self - root + pSize) % pSize

	// blocks[i] is virtual-rank i's share (populated at the root, or on
	// receipt for the subtree this node owns).
	var owned [][]sortutil.Key
	lo, hi := 0, pSize // the virtual-rank range this node currently owns
	if vr == 0 {
		if len(shares) != pSize {
			panic(fmt.Sprintf("collective: %d shares for group of %d", len(shares), pSize))
		}
		owned = make([][]sortutil.Key, pSize)
		for i := range shares {
			owned[(i-root+pSize)%pSize] = shares[i]
		}
	} else {
		// Receive this node's subtree block. In the range-halving tree a
		// base rank's parent is the rank with its lowest set bit cleared
		// (the retained lower half's base).
		src := (clearLowestBit(vr) + root) % pSize
		flat := p.Recv(g.Member(src), tag)
		counts := p.Recv(g.Member(src), tag+1)
		owned = unflatten(flat, counts)
		p.Release(flat) // unflatten copied both payloads out
		p.Release(counts)
		lo = vr
		hi = vr + len(owned)
	}
	// Split the owned range by halving: in each step send the upper half
	// of the remaining range to its base rank.
	for hi-lo > 1 {
		mid := lo + nextRangeSplit(hi-lo)
		upper := owned[mid-lo:]
		dst := (mid + root) % pSize
		flat, counts := flatten(upper)
		p.Send(g.Member(dst), tag, flat)
		p.Send(g.Member(dst), tag+1, counts)
		owned = owned[:mid-lo]
		hi = mid
	}
	return append([]sortutil.Key(nil), owned[0]...)
}

// Gather is the inverse of Scatter: every member contributes mine, and
// the root returns all shares in rank order (others return nil). The
// same halving tree runs in reverse, so the root drains O(M) keys over
// O(log P) messages.
func Gather(p *machine.Proc, g *Group, root int, tag machine.Tag, mine []sortutil.Key) [][]sortutil.Key {
	self := rankOfProc(p, g)
	pSize := g.Size()
	vr := (self - root + pSize) % pSize

	owned := [][]sortutil.Key{append([]sortutil.Key(nil), mine...)}
	lo, hi := vr, vr+1
	// Receive subtree blocks in ascending round order (mirror of the
	// scatter's descending splits): rank r owns ranges whose bases are
	// r + 2^j for each zero bit j of r below its highest set bit... in
	// practice: collect from children dst = vr | 1<<j while that child
	// base is in range and vr's bit j is zero.
	for j := 0; j < nextPow2Exp(pSize); j++ {
		if vr&(1<<j) != 0 {
			break // ranks above this node's lowest set bit are not children
		}
		childBase := vr | 1<<j
		if childBase >= pSize || childBase < hi {
			continue
		}
		src := (childBase + root) % pSize
		flat := p.Recv(g.Member(src), tag)
		counts := p.Recv(g.Member(src), tag+1)
		owned = append(owned, unflatten(flat, counts)...)
		p.Release(flat) // unflatten copied both payloads out
		p.Release(counts)
		hi = lo + len(owned)
	}
	if vr != 0 {
		dst := (clearLowestBit(vr) + root) % pSize
		flat, counts := flatten(owned)
		p.Send(g.Member(dst), tag, flat)
		p.Send(g.Member(dst), tag+1, counts)
		return nil
	}
	// Root: rotate back to group rank order.
	out := make([][]sortutil.Key, pSize)
	for i, block := range owned {
		out[(i+root)%pSize] = block
	}
	return out
}

// ReduceOp combines two partial values.
type ReduceOp func(a, b int64) int64

// Sum, Max and Min are the stock reduction operators.
var (
	Sum ReduceOp = func(a, b int64) int64 { return a + b }
	Max ReduceOp = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	Min ReduceOp = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce folds every member's value to the root rank with a binomial
// tree; the root returns the reduction, others return their partial (the
// value is meaningful only at the root). Values travel as single-key
// messages, so a reduction costs O(log P) latency.
func Reduce(p *machine.Proc, g *Group, root int, tag machine.Tag, value int64, op ReduceOp) int64 {
	self := rankOfProc(p, g)
	pSize := g.Size()
	vr := (self - root + pSize) % pSize
	acc := value
	for j := 0; j < nextPow2Exp(pSize); j++ {
		if vr&(1<<j) != 0 {
			dst := (clearBit(vr, j) + root) % pSize
			p.Send(g.Member(dst), tag, []sortutil.Key{sortutil.Key(acc)})
			return acc
		}
		childBase := vr | 1<<j
		if childBase < pSize {
			got := p.Recv(g.Member((childBase+root)%pSize), tag)
			acc = op(acc, int64(got[0]))
			p.Release(got)
			p.Compute(1)
		}
	}
	return acc
}

// AllReduce folds every member's value and broadcasts the result back,
// returning the full reduction on every member.
func AllReduce(p *machine.Proc, g *Group, tag machine.Tag, value int64, op ReduceOp) int64 {
	total := Reduce(p, g, 0, tag, value, op)
	out := Broadcast(p, g, 0, tag+2, []sortutil.Key{sortutil.Key(total)})
	return int64(out[0])
}

// flatten packs blocks into one payload plus a per-block length vector
// (lengths ride as keys; the simulator prices them as one extra key each,
// a fair stand-in for a small header).
func flatten(blocks [][]sortutil.Key) (flat, counts []sortutil.Key) {
	for _, b := range blocks {
		counts = append(counts, sortutil.Key(len(b)))
		flat = append(flat, b...)
	}
	return flat, counts
}

// unflatten is the inverse of flatten.
func unflatten(flat, counts []sortutil.Key) [][]sortutil.Key {
	out := make([][]sortutil.Key, len(counts))
	off := 0
	for i, c := range counts {
		n := int(c)
		out[i] = append([]sortutil.Key(nil), flat[off:off+n]...)
		off += n
	}
	return out
}

// highestBit returns the index of v's highest set bit; v must be > 0.
func highestBit(v int) int {
	h := 0
	for v > 1 {
		v >>= 1
		h++
	}
	return h
}

// clearBit clears bit h of v.
func clearBit(v, h int) int { return v &^ (1 << h) }

// clearLowestBit clears the lowest set bit of v; v must be > 0.
func clearLowestBit(v int) int { return v & (v - 1) }

// nextPow2Exp returns the smallest e with 2^e >= n.
func nextPow2Exp(n int) int {
	e := 0
	for 1<<e < n {
		e++
	}
	return e
}

// nextRangeSplit returns the size of the lower part when a range of the
// given size splits: the largest power of two strictly less than size
// (so the upper part's base is rank-aligned for the binomial tree).
func nextRangeSplit(size int) int {
	s := 1
	for s*2 < size {
		s *= 2
	}
	return s
}
