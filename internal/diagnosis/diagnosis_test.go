package diagnosis

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

func sameSet(a, b cube.NodeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b.Has(x) {
			return false
		}
	}
	return true
}

func TestDiagnoseNoFaults(t *testing.T) {
	h := cube.New(4)
	s := Collect(h, cube.NewNodeSet(), xrand.New(1))
	got, err := Diagnose(h, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("diagnosed phantom faults %v", got.Sorted())
	}
}

func TestDiagnoseSingleFaultEveryLocation(t *testing.T) {
	h := cube.New(4)
	for f := cube.NodeID(0); f < 16; f++ {
		s := Collect(h, cube.NewNodeSet(f), xrand.New(uint64(f)))
		got, err := Diagnose(h, s, 4)
		if err != nil {
			t.Fatalf("fault %d: %v", f, err)
		}
		if !sameSet(got, cube.NewNodeSet(f)) {
			t.Fatalf("fault %d diagnosed as %v", f, got.Sorted())
		}
	}
}

// TestDiagnoseRandomFaultSets sweeps the paper's regime (r <= n-1) with
// adversarial lying testers: diagnosis must recover the exact fault set.
func TestDiagnoseRandomFaultSets(t *testing.T) {
	r := xrand.New(7)
	for _, n := range []int{3, 4, 5, 6} {
		h := cube.New(n)
		for trial := 0; trial < 80; trial++ {
			nf := r.IntN(n) // 0..n-1
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(h.Size(), nf) {
				faults.Add(cube.NodeID(f))
			}
			s := Collect(h, faults, r.Split())
			got, err := Diagnose(h, s, n-1)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			if !sameSet(got, faults) {
				t.Fatalf("n=%d: diagnosed %v, want %v", n, got.Sorted(), faults.Sorted())
			}
		}
	}
}

// TestDiagnoseFullDiagnosabilityBound exercises r = n (the one-step
// diagnosability limit of the n-cube), still uniquely decodable.
func TestDiagnoseFullDiagnosabilityBound(t *testing.T) {
	r := xrand.New(8)
	h := cube.New(4)
	for trial := 0; trial < 40; trial++ {
		faults := cube.NewNodeSet()
		for _, f := range r.Sample(16, 4) {
			faults.Add(cube.NodeID(f))
		}
		s := Collect(h, faults, r.Split())
		got, err := Diagnose(h, s, 4)
		if err != nil {
			t.Fatalf("faults %v: %v", faults.Sorted(), err)
		}
		if !sameSet(got, faults) {
			t.Fatalf("diagnosed %v, want %v", got.Sorted(), faults.Sorted())
		}
	}
}

func TestDiagnoseRejectsBadArgs(t *testing.T) {
	h := cube.New(3)
	s := Collect(h, nil, xrand.New(1))
	if _, err := Diagnose(cube.New(4), s, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Diagnose(h, s, 4); err == nil {
		t.Error("maxFaults beyond diagnosability accepted")
	}
	if _, err := Diagnose(h, s, -1); err == nil {
		t.Error("negative maxFaults accepted")
	}
}

func TestDiagnoseLiarsCannotFrameHealthyNodes(t *testing.T) {
	// Whatever the liars say, the decoded set equals the true fault set —
	// try many adversarial lie streams for one fixed fault set.
	h := cube.New(5)
	faults := cube.NewNodeSet(0, 3, 17, 24)
	for seed := uint64(0); seed < 50; seed++ {
		s := Collect(h, faults, xrand.New(seed))
		got, err := Diagnose(h, s, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameSet(got, faults) {
			t.Fatalf("seed %d: diagnosed %v", seed, got.Sorted())
		}
	}
}

func TestSyndromeAccessors(t *testing.T) {
	s := NewSyndrome(3)
	if s.Dim() != 3 {
		t.Error("Dim wrong")
	}
	s.Fail[2][1] = true
	if !s.Result(2, 1) || s.Result(2, 0) {
		t.Error("Result wrong")
	}
}
