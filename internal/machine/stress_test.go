package machine

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// TestStressQ8AllHealthy runs 256 concurrent processor goroutines through
// a full dimension sweep of exchanges — a scheduler stress test for the
// mailbox and clock machinery (the paper's machines top out at Q_6; the
// simulator should comfortably exceed that).
func TestStressQ8AllHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("256-goroutine stress run")
	}
	m := MustNew(Config{Dim: 8, Cost: DefaultCostModel()})
	res, err := m.RunAllHealthy(func(p *Proc) error {
		keys := make([]sortutil.Key, 32)
		for d := 0; d < p.Dim(); d++ {
			got := p.Exchange(cube.FlipBit(p.ID(), d), Tag(d), keys)
			p.Compute(len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 256*8 {
		t.Errorf("messages = %d, want %d", res.Messages, 256*8)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

// TestStressQ10RepeatedRuns reuses one large machine across several runs,
// checking state resets cleanly at 1024 nodes.
func TestStressQ10RepeatedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-goroutine stress run")
	}
	m := MustNew(Config{Dim: 10})
	var first Time
	for trial := 0; trial < 3; trial++ {
		res, err := m.RunAllHealthy(func(p *Proc) error {
			peer := cube.FlipBit(p.ID(), trialDim(p.ID()))
			p.Exchange(peer, 1, []sortutil.Key{sortutil.Key(p.ID())})
			p.Compute(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("run %d makespan %d != %d (state leak)", trial, res.Makespan, first)
		}
	}
}

// trialDim picks a deterministic dimension per node so exchanges pair up
// (both endpoints derive the same dimension from the lower address).
func trialDim(id cube.NodeID) int { return 0 }

func TestElapse(t *testing.T) {
	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Elapse(37)
		if p.Clock() != 37 {
			t.Errorf("clock = %d", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElapseNegativePanicsIntoError(t *testing.T) {
	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Elapse(-1)
		return nil
	})
	if err == nil {
		t.Error("negative Elapse did not fail the run")
	}
}

func TestComputeNegativePanicsIntoError(t *testing.T) {
	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Compute(-1)
		return nil
	})
	if err == nil {
		t.Error("negative Compute did not fail the run")
	}
}

func TestHopsToAndSendOutsideCube(t *testing.T) {
	m := MustNew(Config{Dim: 3})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		if p.HopsTo(7) != 3 {
			t.Errorf("HopsTo(7) = %d", p.HopsTo(7))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Send(9, 0, nil)
		return nil
	})
	if err == nil {
		t.Error("send outside cube did not fail")
	}
}

func TestMailboxPending(t *testing.T) {
	mb := newMailbox(4)
	if mb.pending() != 0 {
		t.Error("fresh mailbox not empty")
	}
	mb.put(message{src: 1, tag: 2})
	if mb.pending() != 1 {
		t.Error("pending wrong after put")
	}
	if _, _, ok := mb.take(1, 2); !ok {
		t.Error("take failed")
	}
	if mb.pending() != 0 {
		t.Error("pending wrong after take")
	}
}

// TestMailboxRingSpill drives one link far past the ring capacity so the
// sticky spill path engages, then checks per-(src, tag) FIFO order and
// stash-based out-of-order tag matching across the ring/general boundary.
func TestMailboxRingSpill(t *testing.T) {
	const msgs = 10 * ringSlots
	mb := newMailbox(4)
	for i := 0; i < msgs; i++ {
		mb.put(message{src: 1, tag: 7, arrival: Time(i)})
	}
	if got := mb.pending(); got != msgs {
		t.Fatalf("pending = %d, want %d", got, msgs)
	}
	for i := 0; i < msgs; i++ {
		m, _, ok := mb.take(1, 7)
		if !ok || m.arrival != Time(i) {
			t.Fatalf("message %d: got arrival %d (ok=%v), want %d", i, m.arrival, ok, i)
		}
	}

	// Distinct tags received in reverse order: every earlier message
	// must survive the scan (via the stash) regardless of which segment
	// (ring or spilled queue) it sits in.
	for i := 0; i < msgs; i++ {
		mb.put(message{src: 1, tag: Tag(i), arrival: Time(i)})
	}
	for i := msgs - 1; i >= 0; i-- {
		m, _, ok := mb.take(1, Tag(i))
		if !ok || m.arrival != Time(i) {
			t.Fatalf("tag %d: got arrival %d (ok=%v)", i, m.arrival, ok)
		}
	}
	if got := mb.pending(); got != 0 {
		t.Fatalf("pending = %d after draining, want 0", got)
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceSend.String() != "send" || TraceRecv.String() != "recv" || TraceCompute.String() != "compute" {
		t.Error("TraceKind strings wrong")
	}
	if TraceKind(9).String() != "unknown" {
		t.Error("unknown kind string wrong")
	}
}
