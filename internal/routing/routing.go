// Package routing computes message paths on (possibly faulty) hypercubes.
//
// Two routers are provided, matching the paper's two fault models (§4):
//
//   - ECube: classic dimension-order (e-cube) routing, the algorithm the
//     NCUBE/7's VERTEX operating system uses. It ignores faults, which is
//     exactly the *partial fault* model — a faulty processor's compute
//     portion is dead but its communication portion still forwards
//     messages.
//   - FaultAvoiding: a depth-first adaptive router in the spirit of
//     Chen & Shin (IEEE ToC 1990, the paper's reference [7]) that refuses
//     to traverse faulty processors entirely — the *total fault* model.
//     It prefers profitable dimensions (those reducing Hamming distance)
//     and backtracks out of dead ends, so it finds a fault-free path
//     whenever one exists.
//
// Paths are returned as node sequences including both endpoints; the hop
// count of a path of length L nodes is L-1.
package routing

import (
	"fmt"
	"sync"

	"hypersort/internal/cube"
)

// Path is a walk on the hypercube: consecutive entries are neighbors.
type Path []cube.NodeID

// Hops returns the number of edges traversed.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether p is a genuine hypercube walk from src to dst:
// non-empty, correct endpoints, and unit Hamming distance per step.
func (p Path) Valid(src, dst cube.NodeID) bool {
	if len(p) == 0 || p[0] != src || p[len(p)-1] != dst {
		return false
	}
	for i := 1; i < len(p); i++ {
		if cube.HammingDistance(p[i-1], p[i]) != 1 {
			return false
		}
	}
	return true
}

// AvoidsFaults reports whether no *intermediate* node of the path is
// faulty. Endpoints are exempt: a partially faulty endpoint can still
// source or sink a message in the paper's model, and callers never route
// to totally faulty nodes in the first place.
func (p Path) AvoidsFaults(faults cube.NodeSet) bool {
	for i := 1; i < len(p)-1; i++ {
		if faults.Has(p[i]) {
			return false
		}
	}
	return true
}

// ECube returns the dimension-order route from src to dst: correct the
// differing address bits from dimension 0 upward. The path has exactly
// HammingDistance(src, dst) hops and ignores faults (partial-fault model).
func ECube(h cube.Hypercube, src, dst cube.NodeID) Path {
	path := Path{src}
	cur := src
	for d := 0; d < h.Dim(); d++ {
		if cube.Bit(cur, d) != cube.Bit(dst, d) {
			cur = cube.FlipBit(cur, d)
			path = append(path, cur)
		}
	}
	return path
}

// ErrNoPath is returned when the fault-avoiding router cannot reach dst
// without crossing a faulty processor.
type ErrNoPath struct {
	Src, Dst cube.NodeID
}

// Error implements the error interface.
func (e ErrNoPath) Error() string {
	return fmt.Sprintf("routing: no fault-free path from %d to %d", e.Src, e.Dst)
}

// FaultAvoiding returns a path from src to dst that never traverses a
// faulty intermediate node, using depth-first search that greedily prefers
// profitable dimensions (lowest first, mirroring e-cube's order) before
// spilling to misrouting dimensions. Endpoints may be faulty (partial
// endpoints source/sink their own traffic); every intermediate node is
// guaranteed fault-free. It returns ErrNoPath if the fault set
// disconnects the pair.
//
// The search is complete: with backtracking over all n dimensions it
// explores the whole fault-free component if necessary, so failure really
// means no path exists. With r <= n-1 faults a hypercube minus its faults
// is always connected, so in the paper's regime FaultAvoiding always
// succeeds.
func FaultAvoiding(h cube.Hypercube, src, dst cube.NodeID, faults cube.NodeSet) (Path, error) {
	if src == dst {
		return Path{src}, nil
	}
	visited := make(map[cube.NodeID]bool, h.Size())
	visited[src] = true
	path := Path{src}
	if p := dfsAvoid(h, src, dst, faults, visited, path); p != nil {
		return p, nil
	}
	return nil, ErrNoPath{Src: src, Dst: dst}
}

// dfsAvoid extends path from cur toward dst, returning the completed path
// or nil. Profitable dimensions (bits where cur and dst differ) are tried
// in ascending order first, then the remaining dimensions as detours.
func dfsAvoid(h cube.Hypercube, cur, dst cube.NodeID, faults cube.NodeSet, visited map[cube.NodeID]bool, path Path) Path {
	// Order candidate dimensions: profitable first (ascending), then
	// detours (ascending).
	profitable := cube.DifferingDims(cur, dst)
	inProfit := make(map[int]bool, len(profitable))
	for _, d := range profitable {
		inProfit[d] = true
	}
	order := append([]int(nil), profitable...)
	for d := 0; d < h.Dim(); d++ {
		if !inProfit[d] {
			order = append(order, d)
		}
	}
	for _, d := range order {
		next := cube.FlipBit(cur, d)
		if next == dst {
			return append(path, next)
		}
		if visited[next] || faults.Has(next) {
			continue
		}
		visited[next] = true
		if p := dfsAvoid(h, next, dst, faults, visited, append(path, next)); p != nil {
			return p
		}
		// Leave next marked visited: any path through it has been fully
		// explored from this search's perspective.
	}
	return nil
}

// Router selects and runs one of the two routing disciplines.
type Router interface {
	// Route returns the path a message takes from src to dst.
	Route(src, dst cube.NodeID) (Path, error)
	// Name identifies the discipline for reports.
	Name() string
}

// HopCounter is an optional Router fast path. The simulator prices a
// message by hop count alone, so routers that can produce the count
// without materializing a Path implement it and the machine prefers it —
// on the default e-cube discipline that makes pricing a Send
// allocation-free. Implementations must agree with Route's hop count.
type HopCounter interface {
	Hops(src, dst cube.NodeID) (int, error)
}

// ecubeRouter implements Router over ECube.
type ecubeRouter struct{ h cube.Hypercube }

// NewECubeRouter returns the VERTEX-style dimension-order router
// (partial-fault model: messages may pass through faulty processors).
func NewECubeRouter(h cube.Hypercube) Router { return ecubeRouter{h: h} }

func (r ecubeRouter) Route(src, dst cube.NodeID) (Path, error) {
	return ECube(r.h, src, dst), nil
}

func (r ecubeRouter) Name() string { return "e-cube" }

// Hops implements HopCounter: dimension-order routing always takes the
// Hamming-distance shortest path.
func (r ecubeRouter) Hops(src, dst cube.NodeID) (int, error) {
	return cube.HammingDistance(src, dst), nil
}

// HammingHops reports whether the router's hop count is always exactly
// the Hamming distance between the endpoints (true for the e-cube
// router, whose dimension-order paths never detour). The machine's
// message hot path uses it to compute hop counts inline instead of
// paying an interface dispatch per send.
func HammingHops(r Router) bool {
	_, ok := r.(ecubeRouter)
	return ok
}

// hopMemo caches hop counts for routers whose path search is expensive.
// A router's fault sets are immutable, so a pair's hop count never
// changes; the memo is shared by every machine holding the router
// (Clones included) and is safe for concurrent use. Negative entries
// record "no path" so doomed searches are not repeated either.
type hopMemo struct {
	mu sync.RWMutex
	m  map[uint64]int
}

func newHopMemo() *hopMemo { return &hopMemo{m: make(map[uint64]int)} }

func memoKey(src, dst cube.NodeID) uint64 {
	return uint64(src)<<32 | uint64(uint32(dst))
}

// hops serves a cached count, or runs route once and caches its result.
func (hm *hopMemo) hops(src, dst cube.NodeID, route func() (Path, error)) (int, error) {
	key := memoKey(src, dst)
	hm.mu.RLock()
	h, ok := hm.m[key]
	hm.mu.RUnlock()
	if !ok {
		p, err := route()
		if err != nil {
			h = -1
		} else {
			h = p.Hops()
		}
		hm.mu.Lock()
		hm.m[key] = h
		hm.mu.Unlock()
	}
	if h < 0 {
		return 0, ErrNoPath{Src: src, Dst: dst}
	}
	return h, nil
}

// avoidRouter implements Router over FaultAvoiding with a fixed fault set.
type avoidRouter struct {
	h      cube.Hypercube
	faults cube.NodeSet
	memo   *hopMemo
}

// NewFaultAvoidingRouter returns the adaptive router for the total-fault
// model: paths never cross the given faulty processors.
func NewFaultAvoidingRouter(h cube.Hypercube, faults cube.NodeSet) Router {
	return avoidRouter{h: h, faults: faults.Clone(), memo: newHopMemo()}
}

func (r avoidRouter) Route(src, dst cube.NodeID) (Path, error) {
	return FaultAvoiding(r.h, src, dst, r.faults)
}

// Hops implements HopCounter by memoizing the DFS result per pair: the
// fault set is fixed, so each pair pays the search once per router
// lifetime instead of once per message.
func (r avoidRouter) Hops(src, dst cube.NodeID) (int, error) {
	return r.memo.hops(src, dst, func() (Path, error) { return r.Route(src, dst) })
}

func (r avoidRouter) Name() string { return "fault-avoiding" }
