package selection

import (
	"sort"
	"testing"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func setup(t *testing.T, n int, faults cube.NodeSet) (*machine.Machine, *partition.Plan) {
	t.Helper()
	plan, err := partition.BuildPlan(n, faults)
	if err != nil {
		t.Fatal(err)
	}
	return machine.MustNew(machine.Config{Dim: n, Faults: faults}), plan
}

// refKth is the sequential specification.
func refKth(keys []sortutil.Key, k int) sortutil.Key {
	s := sortutil.Clone(keys)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[k-1]
}

func TestKthSmallestMatchesReference(t *testing.T) {
	r := xrand.New(1)
	m, plan := setup(t, 4, cube.NewNodeSet(3, 9))
	for trial := 0; trial < 20; trial++ {
		keys := workload.MustGenerate(workload.Uniform, 50+r.IntN(200), r)
		k := 1 + r.IntN(len(keys))
		got, res, err := KthSmallest(m, plan, keys, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := refKth(keys, k); got != want {
			t.Fatalf("trial %d: kth(%d) = %d, want %d", trial, k, got, want)
		}
		if res.Makespan <= 0 {
			t.Fatal("no cost accounted")
		}
	}
}

func TestKthSmallestExtremes(t *testing.T) {
	m, plan := setup(t, 3, cube.NewNodeSet(5))
	keys := workload.MustGenerate(workload.Uniform, 100, xrand.New(2))
	minGot, _, err := KthSmallest(m, plan, keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxGot, _, err := KthSmallest(m, plan, keys, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	if minGot != refKth(keys, 1) || maxGot != refKth(keys, len(keys)) {
		t.Errorf("extremes wrong: %d, %d", minGot, maxGot)
	}
}

func TestKthSmallestNegativeKeys(t *testing.T) {
	m, plan := setup(t, 3, nil)
	keys := []sortutil.Key{-50, -1, 0, 3, -7, 12, -50, 8}
	for k := 1; k <= len(keys); k++ {
		got, _, err := KthSmallest(m, plan, keys, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := refKth(keys, k); got != want {
			t.Fatalf("k=%d: got %d, want %d", k, got, want)
		}
	}
}

func TestKthSmallestBadRank(t *testing.T) {
	m, plan := setup(t, 3, nil)
	keys := []sortutil.Key{1, 2, 3}
	if _, _, err := KthSmallest(m, plan, keys, 0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, _, err := KthSmallest(m, plan, keys, 4); err == nil {
		t.Error("rank beyond n accepted")
	}
}

func TestMedian(t *testing.T) {
	m, plan := setup(t, 4, cube.NewNodeSet(0, 6, 9))
	keys := workload.MustGenerate(workload.Uniform, 201, xrand.New(3))
	got, _, err := Median(m, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	if want := refKth(keys, 101); got != want {
		t.Errorf("median = %d, want %d", got, want)
	}
	if _, _, err := Median(m, plan, nil); err == nil {
		t.Error("empty median accepted")
	}
}

func TestTopK(t *testing.T) {
	r := xrand.New(4)
	m, plan := setup(t, 4, cube.NewNodeSet(2))
	keys := workload.MustGenerate(workload.FewDistinct, 300, r) // heavy ties
	for _, k := range []int{0, 1, 5, 50, 300} {
		got, _, err := TopK(m, plan, keys, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("top-%d returned %d keys", k, len(got))
		}
		// Reference: the k largest, ascending.
		s := sortutil.Clone(keys)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		want := s[len(s)-k:]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("top-%d mismatch at %d: %v vs %v", k, i, got, want)
			}
		}
	}
	if _, _, err := TopK(m, plan, keys, 301); err == nil {
		t.Error("oversized k accepted")
	}
}

// TestSelectionCheaperThanSort verifies the point of the package: one
// order statistic costs far less simulated time than the full sort.
func TestSelectionCheaperThanSort(t *testing.T) {
	faults := cube.NewNodeSet(3, 17)
	plan, err := partition.BuildPlan(5, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 5, Faults: faults})
	keys := workload.MustGenerate(workload.Uniform, 20000, xrand.New(5))
	_, selRes, err := KthSmallest(m, plan, keys, 12345)
	if err != nil {
		t.Fatal(err)
	}
	_, sortRes, err := core.FTSort(m, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	if selRes.Makespan*2 > sortRes.Makespan {
		t.Errorf("selection (%d) not clearly cheaper than sorting (%d)", selRes.Makespan, sortRes.Makespan)
	}
}
