// Package engine is the concurrent request engine behind the public
// hypersort.Engine: it amortizes the two expensive parts of serving many
// sort requests against a small set of machine configurations.
//
//   - Plan cache: partition.BuildPlan runs the O(rN) cutting-dimension
//     search. The engine runs it once per canonical configuration
//     (partition.PlanKey) and caches the resulting *partition.Plan — and,
//     just as importantly, caches the *failure* for inseparable fault
//     sets, so a hammering client cannot make the engine repeat a doomed
//     search. Concurrent first requests for the same key are
//     single-flighted: one goroutine searches, the rest wait.
//
//   - Machine pool: a machine.Machine is single-run — concurrent kernels
//     on one machine would interleave mailboxes. The engine keeps a
//     bounded pool of machines per configuration; a request borrows one
//     (cloning from a template when the pool has headroom, blocking for a
//     returned machine when it does not) and returns it afterwards.
//     Plans are immutable and shared by all machines of a configuration.
//
// Requests are value-in/value-out and isolated: Do never panics the
// caller, Batch never lets one bad request poison its neighbors, and no
// request can observe another's keys — each run owns a private machine,
// and the sort/selection kernels treat the input slice as read-only,
// cloning per-processor shares before mutating.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/direct"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/partition"
	"hypersort/internal/selection"
	"hypersort/internal/sortutil"
)

// Config describes the machine configuration one request runs on. It
// mirrors the public hypersort.Config minus the Trace hook (a per-run
// callback cannot be part of a cache key, and pooled machines must not
// smuggle one request's events into another's recorder).
type Config struct {
	Dim                 int
	Faults              []cube.NodeID
	LinkFaults          [][2]cube.NodeID
	Model               machine.FaultModel
	Cost                machine.CostModel
	Protocol            bitonic.Protocol
	AccountDistribution bool
	// Routing selects the machine's path discipline (default
	// RouteSingle). RouteMultipath requests get congestion-aware plans,
	// congestion-priced machines, and — because the occupancy replay is
	// a per-run pass — the unbatched pool path instead of fused
	// dispatch lanes; they are also never direct-eligible (the §3
	// predictor has no congestion model).
	Routing machine.RoutingPolicy
}

// Op selects what a Request computes.
type Op int

const (
	// OpSort sorts Keys ascending.
	OpSort Op = iota
	// OpKthSmallest returns the K-th smallest key (1-based).
	OpKthSmallest
	// OpMedian returns the lower median.
	OpMedian
	// OpTopK returns the K largest keys in ascending order.
	OpTopK
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSort:
		return "sort"
	case OpKthSmallest:
		return "kth-smallest"
	case OpMedian:
		return "median"
	case OpTopK:
		return "top-k"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Request is one unit of work: a configuration, an operation, and its
// operands. Requests in a batch are independent — they may use the same
// or different configurations.
type Request struct {
	Config Config
	Op     Op
	Keys   []sortutil.Key
	// K is the rank for OpKthSmallest / the count for OpTopK.
	K int
}

// Result is one request's outcome. Exactly one of the payload fields is
// meaningful, according to the request's Op: Keys for OpSort and OpTopK,
// Value for OpKthSmallest and OpMedian. Err is per-request: a failed
// request reports here and nowhere else.
//
// Res.PerNode aliases a buffer pooled with the machine that served the
// request (see lease): it is valid until the engine serves another
// request on the same configuration. Callers that hold results across
// further engine traffic must copy the map; every aggregate counter in
// Res is a plain value and safe to keep.
//
// Direct reports which substrate served the request: false means a
// simulated machine measured Res; true means the direct host-speed
// substrate sorted the keys and Res is the analytic prediction (see
// direct.Schedule.Predict for the exactness contract).
type Result struct {
	Keys   []sortutil.Key
	Value  sortutil.Key
	Res    machine.Result
	Direct bool
	Err    error
}

// Metrics is a snapshot of the engine's lifetime counters.
type Metrics struct {
	// Requests counts completed requests (including failed ones).
	Requests int64
	// PlanHits / PlanMisses count plan-cache lookups; a miss runs the
	// partition search (or finds its cached failure already recorded —
	// negative results count as hits once cached).
	PlanHits   int64
	PlanMisses int64
	// MachinesBuilt counts full machine.New constructions (one per pool,
	// the template); MachinesCloned counts Clone fast-path constructions.
	MachinesBuilt  int64
	MachinesCloned int64
	// FusedBatches counts fused dispatches (one machine lease each) and
	// FusedRequests the requests they carried; FusedRequests greater
	// than FusedBatches means the dispatcher coalesced concurrent work.
	FusedBatches  int64
	FusedRequests int64
	// AdmissionRejected counts requests refused with
	// ErrAdmissionRejected; Cancelled counts requests whose context was
	// cancelled while queued.
	AdmissionRejected int64
	Cancelled         int64
	// Replans counts successful hot replans after mid-run injected
	// casualties; Unrecoverable counts casualties the engine could not
	// replan around (the caller saw ErrUnrecoverable).
	Replans       int64
	Unrecoverable int64
	// DirectRequests counts requests served by the direct host-speed
	// substrate (no machine lease, predicted Result); DirectBatches
	// counts dispatcher batches executed directly.
	DirectRequests int64
	DirectBatches  int64
	// OracleRuns counts sampled direct results re-executed on the
	// simulator oracle; ParityBreaks counts oracle runs whose sorted
	// output differed from the direct output (any nonzero value is a
	// substrate bug).
	OracleRuns   int64
	ParityBreaks int64
}

// Engine caches plans, pools machines, and coalesces concurrent
// compatible sort requests into fused machine runs (see lane). The zero
// value is not usable; construct with New or NewOpts. All methods are
// safe for concurrent use.
type Engine struct {
	poolSize int
	workers  int
	batch    BatchOptions // normalized: see NewOpts

	mu    sync.Mutex
	plans map[partition.PlanKey]*planEntry
	pools map[poolKey]*pool
	lanes map[laneKey]*lane

	// pkIntern maps a configuration's fingerprint bytes to the one
	// durable PlanKey string for it, so the per-request path builds the
	// fingerprint in a pooled buffer and allocates the string only on a
	// configuration's first appearance. Guarded by mu.
	pkIntern map[string]partition.PlanKey
	keyBufs  sync.Pool

	// mode selects the execution substrate (see Mode) and oracleSample
	// the direct-result cross-check rate; both are set before the engine
	// serves traffic (SetMode / SetOracleSample) and read without locks.
	mode         Mode
	oracleSample int

	// Dispatcher lifecycle: stop tells lane dispatchers to drain and
	// exit; wg tracks dispatchers and in-flight fused runners; closed
	// (under closeMu) gates new lane submissions so Close cannot strand
	// a queued request. Do keeps working after Close via the unbatched
	// path.
	closeMu sync.RWMutex
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// items recycles queued-request descriptors (and their rendezvous
	// channels) across submissions; see item.
	items sync.Pool

	requests   atomic.Int64
	planHits   atomic.Int64
	planMisses atomic.Int64
	built      atomic.Int64
	cloned     atomic.Int64
	fusedBat   atomic.Int64
	fusedReq   atomic.Int64
	rejected   atomic.Int64
	cancelled  atomic.Int64
	replans    atomic.Int64
	unrecov    atomic.Int64

	directReq    atomic.Int64
	directBat    atomic.Int64
	oracleRuns   atomic.Int64
	parityBreaks atomic.Int64
	// oracleTick counts direct results for 1-in-N oracle sampling.
	oracleTick atomic.Int64

	// Observability hooks, set before the engine serves requests (see
	// Instrument / SetTrace): nil means off, and every consuming path
	// guards on that nil.
	em     *obs.EngineMetrics
	mm     *obs.MachineMetrics
	phases *obs.PhaseSet
	trace  machine.TraceFunc
}

// planEntry single-flights one configuration's partition search and
// caches the derived kernel layout (views, working order, slot map) —
// a pure function of the plan that would otherwise be rebuilt on every
// request. The direct-substrate artifacts ride along: the compiled
// schedule (single-flighted like the plan) and a pool of executors,
// since an Exec's retained arenas are single-request.
type planEntry struct {
	once   sync.Once
	plan   *partition.Plan
	layout *core.Layout
	err    error

	directOnce sync.Once
	sched      *direct.Schedule
	execs      sync.Pool
}

// poolKey identifies one machine pool: everything machine.New consumes.
// The cost model is not part of the plan key (plans are cost-blind), but
// machines are built with it, so it extends the pool key.
type poolKey struct {
	pk   partition.PlanKey
	cost machine.CostModel
}

// New builds an engine with default batching options. poolSize bounds
// the simulated machines kept per configuration and workers bounds
// concurrently executing batch requests; values < 1 select GOMAXPROCS.
func New(poolSize, workers int) *Engine {
	return NewOpts(poolSize, workers, BatchOptions{})
}

// NewOpts is New with explicit continuous-batching options (zero-value
// fields select the defaults documented on BatchOptions).
func NewOpts(poolSize, workers int, batch BatchOptions) *Engine {
	if poolSize < 1 {
		poolSize = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batch.MaxBatch < 1 {
		batch.MaxBatch = defaultMaxBatch
	}
	if batch.QueueDepth < 1 {
		batch.QueueDepth = defaultQueueDepth
	}
	if batch.MaxLinger < 0 {
		batch.MaxLinger = 0
	}
	return &Engine{
		poolSize: poolSize,
		workers:  workers,
		batch:    batch,
		plans:    make(map[partition.PlanKey]*planEntry),
		pools:    make(map[poolKey]*pool),
		lanes:    make(map[laneKey]*lane),
		pkIntern: make(map[string]partition.PlanKey),
		stop:     make(chan struct{}),
	}
}

// planKey returns the interned PlanKey for cfg. The fingerprint is built
// in a pooled buffer and looked up without allocating; only a
// configuration's first appearance pays the string construction.
func (e *Engine) planKey(cfg Config) partition.PlanKey {
	bp, _ := e.keyBufs.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	b := partition.AppendKeyRouting((*bp)[:0], cfg.Dim, cfg.Faults, cfg.LinkFaults, int(cfg.Model), int(cfg.Routing))
	e.mu.Lock()
	pk, ok := e.pkIntern[string(b)]
	if !ok {
		pk = partition.PlanKey(b)
		e.pkIntern[string(pk)] = pk
	}
	e.mu.Unlock()
	*bp = b
	e.keyBufs.Put(bp)
	return pk
}

// Close shuts down the dispatch lanes — queued requests are drained and
// served, then the dispatcher and runner goroutines exit — and retires
// the persistent worker goroutines of every pooled machine. Call it when
// the engine is done serving — e.g. on server shutdown — after all
// in-flight requests have completed; requests issued after Close still
// work (they take the unbatched pool path, and a closed machine
// respawns its workers on the next run) but lose the warm-worker and
// fusion amortization. Close is idempotent.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if !e.closed {
		e.closed = true
		close(e.stop)
	}
	e.closeMu.Unlock()
	e.wg.Wait()
	e.mu.Lock()
	pools := make([]*pool, 0, len(e.pools))
	for _, p := range e.pools {
		pools = append(pools, p)
	}
	e.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
}

// Instrument registers the engine's observability bundles in r and
// attaches them: request latency and failure accounting, plan-cache and
// pool counters mirrored as scrapeable metrics, per-run machine
// aggregates, and per-phase kernel breakdowns. Call it once, before the
// engine serves requests — pooled machines capture the bundles at build
// time and the fields are read without locks.
func (e *Engine) Instrument(r *obs.Registry) {
	e.em = obs.NewEngineMetrics(r)
	e.mm = obs.NewMachineMetrics(r)
	e.phases = obs.NewPhaseSet(r)
}

// SetTrace attaches fn as the trace hook of every machine the engine
// builds afterwards. fn is called concurrently from all processor
// goroutines of all pooled machines and must be safe for concurrent use
// (a bounded ring like trace.Ring is the intended sink). Call before the
// engine serves requests: machines already pooled keep their old hook.
func (e *Engine) SetTrace(fn machine.TraceFunc) { e.trace = fn }

// Metrics returns a snapshot of the lifetime counters.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Requests:          e.requests.Load(),
		PlanHits:          e.planHits.Load(),
		PlanMisses:        e.planMisses.Load(),
		MachinesBuilt:     e.built.Load(),
		MachinesCloned:    e.cloned.Load(),
		FusedBatches:      e.fusedBat.Load(),
		FusedRequests:     e.fusedReq.Load(),
		AdmissionRejected: e.rejected.Load(),
		Cancelled:         e.cancelled.Load(),
		Replans:           e.replans.Load(),
		Unrecoverable:     e.unrecov.Load(),
		DirectRequests:    e.directReq.Load(),
		DirectBatches:     e.directBat.Load(),
		OracleRuns:        e.oracleRuns.Load(),
		ParityBreaks:      e.parityBreaks.Load(),
	}
}

// validate re-implements the facade's configuration checks. The engine
// must reject bad configurations itself — partition and cube panic on
// out-of-range dimensions, and a pooled engine cannot let one malformed
// request take the process down.
func validate(cfg Config) error {
	if cfg.Dim < 0 || cfg.Dim > cube.MaxDim {
		return fmt.Errorf("engine: dimension %d outside [0,%d]", cfg.Dim, cube.MaxDim)
	}
	h := cube.New(cfg.Dim)
	for _, f := range cfg.Faults {
		if !h.Contains(f) {
			return fmt.Errorf("engine: fault address %d outside Q_%d", f, cfg.Dim)
		}
	}
	if len(cube.NewNodeSet(cfg.Faults...)) >= h.Size() {
		return fmt.Errorf("engine: %d faults leave no working processor on Q_%d", len(cfg.Faults), cfg.Dim)
	}
	for _, pair := range cfg.LinkFaults {
		if !h.Contains(pair[0]) || !h.Contains(pair[1]) {
			return fmt.Errorf("engine: link fault %d-%d outside Q_%d", pair[0], pair[1], cfg.Dim)
		}
		if cube.HammingDistance(pair[0], pair[1]) != 1 {
			return fmt.Errorf("engine: link fault %d-%d is not a hypercube edge", pair[0], pair[1])
		}
	}
	return nil
}

// plan returns the cached plan entry for key, running the partition
// search (and the layout derivation) exactly once per key
// (single-flight). Failures are cached too.
func (e *Engine) plan(key partition.PlanKey, cfg Config) (*planEntry, error) {
	e.mu.Lock()
	entry, ok := e.plans[key]
	if !ok {
		entry = &planEntry{}
		e.plans[key] = entry
	}
	e.mu.Unlock()
	if ok {
		e.planHits.Add(1)
		if e.em != nil {
			e.em.PlanHits.Inc()
		}
	} else {
		e.planMisses.Add(1)
		if e.em != nil {
			e.em.PlanMisses.Inc()
		}
	}
	entry.once.Do(func() {
		// Multipath configurations score cutting sequences with the
		// congestion-aware objective; the plan key already carries the
		// routing policy, so the two plan families never collide.
		obj := partition.ObjectiveHops
		if cfg.Routing == machine.RouteMultipath {
			obj = partition.ObjectiveCongestion
		}
		entry.plan, entry.err = partition.BuildPlanObjective(cfg.Dim, cube.NewNodeSet(cfg.Faults...), obj)
		if entry.err == nil {
			entry.layout = core.NewLayout(entry.plan)
		}
	})
	return entry, entry.err
}

// poolFor returns the machine pool for key, creating it on first use.
func (e *Engine) poolFor(key poolKey, cfg Config) *pool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pools[key]
	if !ok {
		p = newPool(e.poolSize, func(prev *machine.Machine) (*machine.Machine, error) {
			if prev != nil {
				e.cloned.Add(1)
				if e.em != nil {
					e.em.MachinesCloned.Inc()
				}
				return prev.Clone(), nil
			}
			links := cube.NewEdgeSet()
			for _, pair := range cfg.LinkFaults {
				links.Add(pair[0], pair[1])
			}
			m, err := machine.New(machine.Config{
				Dim:        cfg.Dim,
				Faults:     cube.NewNodeSet(cfg.Faults...),
				Model:      cfg.Model,
				Cost:       cfg.Cost,
				LinkFaults: links,
				Routing:    cfg.Routing,
				Trace:      e.trace,
				Metrics:    e.mm,
			})
			if err == nil {
				e.built.Add(1)
				if e.em != nil {
					e.em.MachinesBuilt.Inc()
				}
			}
			return m, err
		})
		e.pools[key] = p
	}
	return p
}

// Plan returns the cached partition plan for cfg, running the
// cutting-dimension search only on the first request for the
// configuration. The returned plan is shared and must be treated as
// read-only.
func (e *Engine) Plan(cfg Config) (*partition.Plan, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	key := e.planKey(cfg)
	entry, err := e.plan(key, cfg)
	if err != nil {
		return nil, err
	}
	return entry.plan, nil
}

// Do executes one request synchronously and returns its result. Errors —
// configuration, planning, or run-time — are reported in Result.Err;
// Do never panics and never fails any request but its own.
func (e *Engine) Do(req Request) Result {
	return e.DoContext(context.Background(), req)
}

// DoContext is Do with deadline and cancellation awareness: if ctx is
// done before the request acquires execution capacity (a lane slot or a
// pooled machine), the request returns promptly with the context's error
// wrapped in Result.Err, leaking no pool token or queue slot. A context
// that expires mid-run does not abort the simulation — runs are short
// and a partially executed simulated machine is worthless to a pool.
func (e *Engine) DoContext(ctx context.Context, req Request) Result {
	em := e.em
	if em == nil {
		res := e.do(ctx, req)
		e.requests.Add(1)
		return res
	}
	start := time.Now()
	res := e.do(ctx, req)
	e.requests.Add(1)
	em.Requests.Inc()
	if res.Err != nil {
		em.Failures.Inc()
	}
	em.Latency.Observe(time.Since(start).Nanoseconds())
	return res
}

// do is DoContext's body: panic containment, validation, planning, then
// dispatch — through a batching lane for sorts, the direct substrate
// for eligible sorts when batching is off, or the unbatched pool path.
func (e *Engine) do(ctx context.Context, req Request) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Errorf("engine: request panicked: %v", r)}
		}
	}()
	cfg := req.Config
	if err := validate(cfg); err != nil {
		return Result{Err: err}
	}
	if err := ctx.Err(); err != nil {
		// Deadline-aware admission: a dead-on-arrival request never
		// touches a queue or a machine.
		return Result{Err: fmt.Errorf("engine: request not admitted: %w", err)}
	}
	key := e.planKey(cfg)
	entry, err := e.plan(key, cfg)
	if err != nil {
		return Result{Err: err}
	}
	// Sorts go through the continuous-batching lanes (whose dispatchers
	// pick the substrate per batch); selection ops run their own
	// internal multi-run protocols and stay on the unbatched path, and
	// so do congestion-priced (multipath) sorts — their occupancy
	// replay is a per-run pass that fused sessions cannot segment. A
	// closed engine falls back to the unbatched path too.
	if req.Op == OpSort && !e.batch.Disabled && cfg.Routing == machine.RouteSingle {
		if res, handled := e.submit(ctx, key, cfg, entry, req); handled {
			return res
		}
	}
	// No lane took the request (batching disabled or engine closed):
	// eligible sorts still get the direct substrate, unless this
	// configuration's pool has chaos injections armed.
	if e.directEligible(cfg, req.Op) && !e.poolArmed(key, cfg) {
		return e.serveDirect(key, cfg, entry, req)
	}
	return e.doUnbatched(ctx, key, cfg, entry, req)
}

// doUnbatched is the pool-only path: lease a machine, run the request
// on it, release. Used by every non-sort op, by simulated sorts when
// batching is disabled or the engine is closed, and by the dispatcher's
// failure isolation re-runs.
func (e *Engine) doUnbatched(ctx context.Context, key partition.PlanKey, cfg Config, entry *planEntry, req Request) Result {
	pl := e.poolFor(poolKey{pk: key, cost: cfg.Cost}, cfg)
	var start time.Time
	if e.em != nil {
		start = time.Now()
	}
	l, err := pl.acquire(ctx, nil)
	if err != nil {
		if ctx.Err() != nil {
			e.cancelled.Add(1)
			if e.em != nil {
				e.em.Cancelled.Inc()
			}
		}
		return Result{Err: fmt.Errorf("engine: waiting for a machine: %w", err)}
	}
	if e.em != nil {
		e.em.QueueWait.Observe(time.Since(start).Nanoseconds())
		e.em.PoolInUse.Add(1)
	}
	defer func() {
		pl.release(l)
		if e.em != nil {
			e.em.PoolInUse.Add(-1)
		}
	}()
	res := e.runOnLease(l, entry, req)
	if res.Err != nil && machine.IsInjectedDeath(res.Err) {
		// A live fault killed the run: diagnose on the still-leased
		// machine, replan, and finish on the degraded configuration.
		res = e.recoverFrom(ctx, l.m, req, res.Err)
	}
	return res
}

// runOnLease executes one request on an already-acquired lease.
func (e *Engine) runOnLease(l *lease, entry *planEntry, req Request) Result {
	cfg := req.Config
	m := l.m

	// Keys pass through uncloned: every downstream path (FTSortOpt,
	// selection) treats the input as read-only, cloning per-processor
	// shares before mutating — the same contract Sorter relies on.
	keys := req.Keys
	switch req.Op {
	case OpSort:
		out, r, err := core.FTSortLayout(m, entry.layout, keys, core.Options{
			Protocol:            cfg.Protocol,
			AccountDistribution: cfg.AccountDistribution,
			// Reuse the lease's PerNode buffer run over run (first run
			// allocates it, the capture below pools it) — the aliasing
			// rule is documented on Result.
			PerNodeBuf: l.perNode,
			Phases:     e.phases,
		})
		if r.PerNode != nil {
			l.perNode = r.PerNode
		}
		return Result{Keys: out, Res: r, Err: err}
	case OpKthSmallest:
		v, r, err := selection.KthSmallestOpt(m, entry.plan, keys, req.K, selection.Options{Phases: e.phases})
		return Result{Value: v, Res: r, Err: err}
	case OpMedian:
		v, r, err := selection.MedianOpt(m, entry.plan, keys, selection.Options{Phases: e.phases})
		return Result{Value: v, Res: r, Err: err}
	case OpTopK:
		out, r, err := selection.TopKOpt(m, entry.plan, keys, req.K, selection.Options{Phases: e.phases})
		return Result{Keys: out, Res: r, Err: err}
	}
	return Result{Err: fmt.Errorf("engine: unknown op %d", int(req.Op))}
}

// Batch executes the requests concurrently — at most the engine's worker
// bound in flight, each request drawing a machine from its
// configuration's pool — and returns one Result per request, in order.
// Errors are isolated per request: results[i].Err concerns reqs[i] only.
func (e *Engine) Batch(reqs []Request) []Result {
	return e.BatchContext(context.Background(), reqs)
}

// BatchContext is Batch with a shared context: requests still waiting
// when ctx is done return its error (already-running requests complete).
func (e *Engine) BatchContext(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = e.DoContext(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}
