package transport

// The shard server: one TCP listener wrapping one request backend
// (in production, one engine). Each connection is a pipelined stream —
// the read loop decodes frames and dispatches requests to their own
// goroutines, so a slow sort never blocks the requests queued behind it
// on the same connection; responses are serialized on a per-connection
// write lock and may interleave in any completion order, matched back
// to callers by correlation ID.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
)

// Backend is what a shard serves: the engine's request surface. It is
// satisfied by *engine.Engine; tests substitute slower or failing
// fakes.
type Backend interface {
	DoContext(ctx context.Context, req engine.Request) engine.Result
	InjectFault(cfg engine.Config, injs ...machine.Injection) error
	DisarmFaults(cfg engine.Config) error
	Metrics() engine.Metrics
}

// directBackend is the optional inline fast path: *engine.Engine serves
// direct-eligible sorts on the caller's goroutine, skipping the lane
// handoff exactly as the in-process cluster router does.
type directBackend interface {
	DoDirect(req engine.Request) (engine.Result, bool)
}

// ServerOptions configures a shard server.
type ServerOptions struct {
	// QueueWait, when set, is the engine's queue-wait histogram; its
	// p50 rides the feedback trailer of every response so the proxy's
	// Retry-After hints reflect this shard's real backlog.
	QueueWait *obs.Histogram
	// DrainTimeout bounds Shutdown's wait for in-flight requests
	// before connections are force-closed. Default 10s.
	DrainTimeout time.Duration
}

// Server serves the wire protocol for one backend.
type Server struct {
	backend Backend
	direct  directBackend // nil when the backend has no inline path
	opts    ServerOptions

	inflight atomic.Int64

	mu     sync.Mutex
	lis    net.Listener
	conns  map[*serverConn]struct{}
	closed bool

	done chan struct{} // closed when the accept loop exits
}

// NewServer returns a server for backend; Serve starts it.
func NewServer(backend Backend, opts ServerOptions) *Server {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 10 * time.Second
	}
	s := &Server{
		backend: backend,
		opts:    opts,
		conns:   make(map[*serverConn]struct{}),
		done:    make(chan struct{}),
	}
	s.direct, _ = backend.(directBackend)
	return s
}

// Inflight reports the requests currently executing — the same gauge
// every response feeds back to the proxy.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// feedback snapshots the load trailer for one outgoing response.
func (s *Server) feedback() Feedback {
	fb := Feedback{Inflight: s.inflight.Load()}
	if s.opts.QueueWait != nil {
		fb.QueueWaitNs = s.opts.QueueWait.Quantile(0.5)
	}
	return fb
}

// Serve accepts connections on lis until Shutdown closes it. It always
// returns a non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	defer close(s.done)
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		c := &serverConn{srv: s, conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.serve()
	}
}

// Shutdown stops accepting, waits for in-flight requests to drain —
// bounded by ctx and by DrainTimeout — then closes every connection.
// Requests still running after the bound are cut off mid-flight; their
// clients see a connection error and re-route.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
		<-s.done
	}
	if alreadyClosed {
		return nil
	}

	deadline := time.NewTimer(s.opts.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var err error
drain:
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-deadline.C:
			err = fmt.Errorf("transport: shutdown drain timed out with %d in flight", s.inflight.Load())
			break drain
		case <-tick.C:
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		c.conn.Close()
	}
	s.conns = nil
	s.mu.Unlock()
	return err
}

// serverConn is one accepted connection: a read loop plus a write lock
// shared by the response goroutines.
type serverConn struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex
	w   *bufio.Writer
}

// serve runs the connection's read loop until EOF or error, decoding
// frames and dispatching them. Requests run on their own goroutines;
// cheap control frames (probe, metrics, inject/disarm) are answered
// inline.
func (c *serverConn) serve() {
	defer func() {
		c.conn.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var lenBuf [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		// Requests own their frame (they outlive this iteration), so
		// decode into a fresh one; control frames reuse none of body
		// after dispatch returns.
		f := &Frame{}
		if err := DecodeFrame(f, body); err != nil {
			// A malformed frame means the stream framing itself is
			// suspect; drop the connection rather than guess.
			return
		}
		switch f.Type {
		case TReq:
			c.srv.inflight.Add(1)
			go c.handleRequest(f)
		case TProbe:
			c.send(func(dst []byte) []byte {
				return AppendProbeAck(dst, f.Corr, c.srv.feedback())
			})
		case TInject:
			err := c.srv.backend.InjectFault(f.Cfg, f.Injs...)
			c.send(func(dst []byte) []byte {
				return AppendAck(dst, f.Corr, err, c.srv.feedback())
			})
		case TDisarm:
			err := c.srv.backend.DisarmFaults(f.Cfg)
			c.send(func(dst []byte) []byte {
				return AppendAck(dst, f.Corr, err, c.srv.feedback())
			})
		case TMetrics:
			m := c.srv.backend.Metrics()
			c.send(func(dst []byte) []byte {
				return AppendMetricsAck(dst, f.Corr, m, c.srv.feedback())
			})
		default:
			// A response type arriving at the server is a protocol
			// violation; drop the connection.
			return
		}
	}
}

// handleRequest executes one request and writes its result frame. The
// wire deadline is re-armed on a local context so cancellation
// propagates across the process boundary.
func (c *serverConn) handleRequest(f *Frame) {
	defer c.srv.inflight.Add(-1)
	ctx := context.Background()
	if f.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, f.Deadline))
		defer cancel()
	}
	var res engine.Result
	var ok bool
	if c.srv.direct != nil {
		res, ok = c.srv.direct.DoDirect(f.Req)
	}
	if !ok {
		res = c.srv.backend.DoContext(ctx, f.Req)
	}
	c.send(func(dst []byte) []byte {
		return AppendResult(dst, f.Corr, res, c.srv.feedback())
	})
}

// sendBufs pools response encode buffers across goroutines.
var sendBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// send encodes one response under the connection write lock and
// flushes it. Write errors are ignored: the read loop will observe the
// broken connection and tear it down.
func (c *serverConn) send(encode func(dst []byte) []byte) {
	bp := sendBufs.Get().(*[]byte)
	buf := encode((*bp)[:0])
	c.wmu.Lock()
	_, err := c.w.Write(buf)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	*bp = buf[:0]
	sendBufs.Put(bp)
	_ = err
}
