package bitonic_test

import (
	"fmt"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// Example runs the paper's §2.1 single-fault bitonic sort: the cube has a
// faulty processor, addresses are XOR-reindexed so it sits at logical 0,
// and its compare-exchange partners skip their steps.
func Example() {
	fault := cube.NodeID(5)
	m := machine.MustNew(machine.Config{Dim: 3, Faults: cube.NewNodeSet(fault)})
	view := bitonic.SingleFaultView(3, fault)
	keys := []sortutil.Key{9, 2, 7, 4, 8, 1, 6, 3, 5}
	sorted, _, err := bitonic.Sort(m, view, keys, sortutil.Ascending)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(sorted)
	// Output: [1 2 3 4 5 6 7 8 9]
}
