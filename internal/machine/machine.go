// Package machine simulates an MIMD hypercube multicomputer in the style
// of the NCUBE/7 the paper evaluates on: one goroutine per processor,
// message passing between neighbors, and a causal virtual clock per node.
//
// # Timing model
//
// The simulator measures cost in abstract time units tied to the paper's
// two constants: t_c (CostModel.Compare), the cost of comparing one pair
// of keys, and t_s/r (CostModel.Elem), the cost of sending or receiving
// one key across one link. A message of L keys travelling H hops arrives
// H*(Startup + L*Elem) after it is sent (store-and-forward, as on the
// NCUBE). Each node's clock advances by its own compute calls and by
// message causality:
//
//	recv.clock = max(recv.clock, send.clock + latency)
//
// The makespan of a run is the maximum final clock over all participants
// — the simulated wall-clock time of the algorithm. Because clocks depend
// only on the message-passing causality of the (deterministic) kernels and
// never on host scheduling, repeated runs produce identical makespans.
//
// # Fault models
//
// Following §4 of the paper, a faulty processor is either *partial* (its
// compute portion is dead but its links still forward messages — what the
// VERTEX OS gave the authors) or *total* (the node routes nothing, and
// messages must detour around it, per Chen & Shin). The fault model
// selects the router: e-cube for Partial, fault-avoiding DFS for Total.
// In both models faulty processors never run kernels.
package machine

import (
	"fmt"
	"sort"

	"hypersort/internal/cube"
	"hypersort/internal/obs"
	"hypersort/internal/routing"
	"hypersort/internal/sortutil"
)

// Time is virtual time in abstract cost units.
type Time int64

// Tag disambiguates messages between the same (src, dst) pair; kernels
// typically encode the algorithm phase in it.
type Tag int32

// CostModel carries the paper's cost constants.
type CostModel struct {
	// Compare is t_c, the cost of one key comparison.
	Compare Time
	// Elem is t_s/r, the cost of moving one key across one link.
	Elem Time
	// Startup is the fixed per-hop message overhead. The paper's cost
	// model omits it (set it to zero to reproduce the closed form); real
	// machines pay it, so the default keeps a modest value.
	Startup Time
}

// DefaultCostModel mirrors the NCUBE-era ratio of communication to
// computation: moving a key across a link costs several comparisons, and
// each hop pays a fixed software overhead.
func DefaultCostModel() CostModel { return CostModel{Compare: 1, Elem: 3, Startup: 20} }

// PaperCostModel is the cost model of the paper's §3 closed-form analysis:
// unit comparison cost, unit transfer cost, no startup.
func PaperCostModel() CostModel { return CostModel{Compare: 1, Elem: 1, Startup: 0} }

// FaultModel selects how faulty processors treat traffic (§4).
type FaultModel int

const (
	// Partial faults destroy only the computational portion of a
	// processor; its links still forward messages (VERTEX behaviour).
	Partial FaultModel = iota
	// Total faults destroy the processor and all incident links; routes
	// must avoid it entirely.
	Total
)

// String implements fmt.Stringer.
func (f FaultModel) String() string {
	if f == Total {
		return "total"
	}
	return "partial"
}

// Config assembles a machine.
type Config struct {
	// Dim is the hypercube dimension n; the machine has 2^Dim processors.
	Dim int
	// Faults is the set of faulty processor addresses (may be empty).
	Faults cube.NodeSet
	// Model selects partial or total fault behaviour.
	Model FaultModel
	// Cost is the timing model; zero value means PaperCostModel.
	Cost CostModel
	// LinkFaults lists dead links. Messages route around them (the
	// paper's model allows "faulty processors/links"; a dead link always
	// blocks traffic regardless of the processor fault model).
	LinkFaults cube.EdgeSet
	// Routing selects the path discipline. RouteSingle (the default)
	// keeps the legacy single-path, hop-priced model bit-identical to
	// previous releases. RouteMultipath routes over vertex-disjoint path
	// sets, stripes large transfers across them, and turns on
	// congestion pricing (see congestion.go).
	Routing RoutingPolicy
	// HotLinks assigns an extra per-traversal virtual-time surcharge to
	// individual links — the hot-link scenario (outside contention, a
	// degraded wire, or chaos injection). A non-empty map turns on
	// congestion pricing even under RouteSingle, so single- and
	// multi-path runs against the same hot links are comparable.
	HotLinks map[cube.Edge]Time
	// Trace, if non-nil, receives every send, receive, and compute event
	// during runs. It is called from processor goroutines concurrently
	// and must be safe for concurrent use.
	Trace TraceFunc
	// Metrics, if non-nil, receives aggregate run statistics. The machine
	// flushes its per-node counters into the bundle once per Run — the
	// per-event hot path stays untouched — except queue-depth sampling,
	// which observes mailbox depth on a 1-in-16 subset of blocked
	// receives. Bundles are safe to share across machines (and Clones).
	Metrics *obs.MachineMetrics
}

// Machine is a simulated hypercube multicomputer. Create one with New,
// then execute SPMD kernels with Run. A Machine is reusable across runs;
// it is not safe for concurrent Runs. Callers that need to run several
// simulations of the same configuration at once (e.g. a request pool)
// should give each concurrent run its own Machine via Clone.
//
// The first Run spawns one persistent worker goroutine per healthy node;
// subsequent Runs reuse them. Close retires the workers (a finalizer
// catches machines dropped without Close; see Close).
type Machine struct {
	h      cube.Hypercube
	cfg    Config
	router routing.Router
	nodes  []*node
	// healthy caches the fault-free addresses (ascending) — immutable
	// topology, computed once at New and shared by Clones.
	healthy []cube.NodeID
	// bufs recycles message payload slices; shared with Clones so warm
	// buffers survive across an engine pool's machines.
	bufs *keyPool
	// hopper is the router's allocation-free hop-count fast path, nil
	// when the router only materializes full paths. hamming additionally
	// marks routers whose hop count is exactly the Hamming distance, so
	// Send can compute it inline without the interface dispatch.
	hopper  routing.HopCounter
	hamming bool
	// inj is the live fault-injection schedule, shared with Clones (like
	// bufs) so arming a pool's template arms the whole pool. Disarmed it
	// costs one atomic nil-load per Proc operation; see inject.go.
	inj *injector
	// cong is the congestion-pricing state (multipath routing and/or hot
	// links), nil for legacy configurations — one nil check in Send is
	// the entire hot-path cost of the feature. Immutable, shared with
	// Clones. replayBuf is this machine's private replay scratch.
	cong      *congestion
	replayBuf []sendRec

	// Execution substrate state, reused across Runs so the steady state
	// allocates nothing per call.
	stop    chan struct{} // retires the persistent workers; nil when none live
	ranOnce bool          // a second Run upgrades to persistent workers
	rs      runState
	procs   []Proc
	inGroup []bool // current run's participant set, indexed by address
	bar     runBarrier
	barFlat bool // which implementation bar is, so knob flips rebuild it
	// sess is the machine's cached session scratch: a machine has at
	// most one session open, so OpenSession hands out this one struct
	// (with its retained stats/separator buffers) instead of allocating
	// per fused batch.
	sess Session
}

// node is the per-processor state. Each node's clock and counters are
// only touched by its own kernel goroutine during a run; the mailbox is
// the sole cross-goroutine structure.
type node struct {
	id     cube.NodeID
	clock  Time
	box    *mailbox
	faulty bool
	work   chan runTask // persistent worker's task handoff (healthy nodes)

	// cache is the node's private payload freelist, tried before the
	// machine-wide pool. Only the node's own kernel goroutine touches it
	// (runs hand nodes off through channels, so cross-run access is
	// ordered), making the hot Send/Release path mutex-free: exchanges
	// release one payload and acquire one per step, so the symmetric flow
	// keeps this tiny stack hot. Inline array: no allocation per node.
	cache  [4][]sortutil.Key
	ncache int

	// statistics, owned by the node's goroutine
	msgsSent    int64
	keysSent    int64
	keyHops     int64
	compares    int64
	recvWaits   int64
	barrierWait int64 // virtual time absorbed synchronizing to barrier maxima

	// congestion state, owned by the node's goroutine and used only
	// when the machine prices congestion: the send log the post-run
	// replay consumes, its per-sender sequence counter, and the count
	// of transfers actually striped across multiple paths.
	slog    []sendRec
	seq     int64
	striped int64
}

// New builds the machine. It returns an error if the configuration is
// invalid (bad dimension or fault addresses outside the cube).
func New(cfg Config) (*Machine, error) {
	if cfg.Dim < 0 || cfg.Dim > cube.MaxDim {
		return nil, fmt.Errorf("machine: dimension %d out of range [0,%d]", cfg.Dim, cube.MaxDim)
	}
	h := cube.New(cfg.Dim)
	for f := range cfg.Faults {
		if !h.Contains(f) {
			return nil, fmt.Errorf("machine: fault address %d outside Q_%d", f, cfg.Dim)
		}
	}
	if (cfg.Cost == CostModel{}) {
		cfg.Cost = PaperCostModel()
	}
	if cfg.Faults == nil {
		cfg.Faults = cube.NewNodeSet()
	}
	for e := range cfg.LinkFaults {
		if !h.Contains(e.A) || !h.Contains(e.B) {
			return nil, fmt.Errorf("machine: link fault %v outside Q_%d", e, cfg.Dim)
		}
	}
	if cfg.Routing != RouteSingle && cfg.Routing != RouteMultipath {
		return nil, fmt.Errorf("machine: unknown routing policy %d", int(cfg.Routing))
	}
	for e, d := range cfg.HotLinks {
		if !h.Contains(e.A) || !h.Contains(e.B) || cube.HammingDistance(e.A, e.B) != 1 {
			return nil, fmt.Errorf("machine: hot link %v is not an edge of Q_%d", e, cfg.Dim)
		}
		if d < 0 {
			return nil, fmt.Errorf("machine: negative hot-link surcharge on %v", e)
		}
	}
	m := &Machine{h: h, cfg: cfg}
	switch {
	case cfg.Routing == RouteMultipath || len(cfg.HotLinks) > 0:
		// Congestion pricing: paths come from the multi-path router so
		// the inline pricing and the post-run occupancy replay agree on
		// every edge a message crosses. Single-path configurations with
		// hot links use the same router clamped to one path per pair.
		var nf cube.NodeSet
		if cfg.Model == Total {
			nf = cfg.Faults
		}
		maxPaths := 1
		if cfg.Routing == RouteMultipath {
			maxPaths = cfg.Dim
		}
		mpr := routing.NewMultiPathRouter(h, nf, cfg.LinkFaults, maxPaths)
		m.router = mpr
		hot := make(map[cube.Edge]Time, len(cfg.HotLinks))
		for e, d := range cfg.HotLinks {
			hot[cube.NewEdge(e.A, e.B)] = d
		}
		m.cong = &congestion{mpr: mpr, hot: hot, multipath: cfg.Routing == RouteMultipath}
	case len(cfg.LinkFaults) > 0 && cfg.Model == Total:
		m.router = routing.NewLinkAwareRouter(h, cfg.Faults, cfg.LinkFaults)
	case len(cfg.LinkFaults) > 0:
		// Partial processor faults still forward, but dead links never do.
		m.router = routing.NewLinkAwareRouter(h, nil, cfg.LinkFaults)
	case cfg.Model == Total:
		m.router = routing.NewFaultAvoidingRouter(h, cfg.Faults)
	default:
		m.router = routing.NewECubeRouter(h)
	}
	m.nodes = make([]*node, h.Size())
	for i := range m.nodes {
		id := cube.NodeID(i)
		m.nodes[i] = &node{id: id, box: newMailbox(h.Size()), faulty: cfg.Faults.Has(id)}
	}
	m.healthy = make([]cube.NodeID, 0, h.Size()-len(cfg.Faults))
	for id := cube.NodeID(0); id < cube.NodeID(h.Size()); id++ {
		if !cfg.Faults.Has(id) {
			m.healthy = append(m.healthy, id)
		}
	}
	m.bufs = &keyPool{}
	m.inj = &injector{}
	m.hopper, _ = m.router.(routing.HopCounter)
	m.hamming = routing.HammingHops(m.router)
	return m, nil
}

// Clone returns a fresh Machine of the same configuration: identical
// topology, fault sets, cost model, and routing discipline, but its own
// per-node clocks, counters, and mailboxes. It is the constructor
// fast-path machine pools use: it skips New's validation and shares the
// immutable pieces (hypercube, config, router — routers hold no mutable
// state, so concurrent Route calls are safe), allocating only the
// per-node state. Runs on a clone and on the original are fully
// independent and may proceed concurrently.
//
// Clone may be called while the source machine is mid-Run: it reads only
// immutable configuration.
func (m *Machine) Clone() *Machine {
	c := &Machine{h: m.h, cfg: m.cfg, router: m.router, healthy: m.healthy, bufs: m.bufs, hopper: m.hopper, hamming: m.hamming, inj: m.inj, cong: m.cong}
	c.nodes = make([]*node, m.h.Size())
	for i := range c.nodes {
		id := cube.NodeID(i)
		c.nodes[i] = &node{id: id, box: newMailbox(m.h.Size()), faulty: m.cfg.Faults.Has(id)}
	}
	return c
}

// MustNew is New for statically valid configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Cube returns the underlying hypercube.
func (m *Machine) Cube() cube.Hypercube { return m.h }

// Faults returns the configured fault set (not a copy; do not modify).
func (m *Machine) Faults() cube.NodeSet { return m.cfg.Faults }

// LinkFaults returns the configured dead-link set (not a copy; do not
// modify). Fired KillLink injections are not included — see FiredFaults.
func (m *Machine) LinkFaults() cube.EdgeSet { return m.cfg.LinkFaults }

// Cost returns the active cost model.
func (m *Machine) Cost() CostModel { return m.cfg.Cost }

// Model returns the active fault model.
func (m *Machine) Model() FaultModel { return m.cfg.Model }

// Healthy returns the fault-free processor addresses in ascending order.
// The slice is cached on the immutable topology at construction time and
// shared by Clones: treat it as read-only (copy before sorting or
// mutating).
func (m *Machine) Healthy() []cube.NodeID { return m.healthy }

// Kernel is the SPMD program each participating processor executes. The
// Proc argument is that processor's machine interface. A kernel returning
// an error aborts the run.
type Kernel func(p *Proc) error

// Result summarizes one Run.
type Result struct {
	// Makespan is the simulated completion time: the maximum final clock
	// over all participants.
	Makespan Time
	// Messages is the total number of point-to-point messages sent.
	Messages int64
	// KeysSent is the total number of keys contained in those messages.
	KeysSent int64
	// KeyHops is the total key*link traffic (each key counted once per
	// hop it travelled), the quantity t_s/r prices.
	KeyHops int64
	// Comparisons is the total number of key comparisons performed.
	Comparisons int64
	// RecvWaits counts receives that found no matching message queued —
	// a rough measure of synchronization stalls (diagnostic only; it does
	// not affect virtual time).
	RecvWaits int64
	// LinkWait is the total virtual time messages queued behind busy
	// links in the post-run occupancy replay. Zero unless the machine
	// prices congestion (Config.Routing or Config.HotLinks), in which
	// case the Makespan already includes the latest queued delivery.
	LinkWait Time
	// MaxLinkOccupancy is the traversal count of the hottest single
	// link during the run (congestion-priced runs only).
	MaxLinkOccupancy int64
	// StripedSends counts transfers actually split across multiple
	// disjoint paths (RouteMultipath only).
	StripedSends int64
	// PerNode holds each participant's final clock keyed by address.
	PerNode map[cube.NodeID]Time
}

// Run executes kernel on every processor in participants concurrently and
// returns the aggregated result. Every participant must be a fault-free
// node of the cube; faulty or duplicate participants are rejected. Clocks,
// counters, and mailboxes are reset at the start of each run.
func (m *Machine) Run(participants []cube.NodeID, kernel Kernel) (Result, error) {
	return m.RunInto(participants, kernel, nil)
}

// RunInto is Run with a caller-provided PerNode buffer: if perNode is
// non-nil it is cleared, filled, and installed as Result.PerNode instead
// of allocating a fresh map. Pooled callers (the engine) pass the buffer
// from the previous run on the same resource; the map is theirs again
// only once they are done with the returned Result.
func (m *Machine) RunInto(participants []cube.NodeID, kernel Kernel, perNode map[cube.NodeID]Time) (Result, error) {
	if err := m.markParticipants(participants); err != nil {
		return Result{}, err
	}
	defer m.unmarkParticipants(participants)
	m.resetNodes()
	n := len(participants)
	// A machine's first run uses throwaway goroutines; persistent workers
	// (and their teardown obligations) start paying off at the second
	// run, so only machines that are actually reused get them. See
	// startWorkers.
	persistent := m.ranOnce
	m.ranOnce = true
	if persistent {
		m.startWorkers()
	}

	rs := m.prepareRun(n)
	rs.wg.Add(n)
	for i, id := range participants {
		p := &m.procs[i]
		*p = Proc{m: m, nd: m.nodes[id], slot: i}
		task := runTask{kernel: kernel, proc: p, slot: i, rs: rs}
		if persistent {
			// The worker consumed its previous task before its wg.Done,
			// so this buffered send never blocks.
			m.nodes[id].work <- task
		} else {
			go runOneShot(task)
		}
	}
	rs.wg.Wait()

	if firstErr := rs.firstError(); firstErr != nil {
		return Result{}, firstErr
	}
	res := Result{PerNode: perNode}
	if res.PerNode == nil {
		res.PerNode = make(map[cube.NodeID]Time, n)
	} else {
		clear(res.PerNode)
	}
	var barrierWait int64
	for _, id := range participants {
		nd := m.nodes[id]
		if nd.clock > res.Makespan {
			res.Makespan = nd.clock
		}
		res.Messages += nd.msgsSent
		res.KeysSent += nd.keysSent
		res.KeyHops += nd.keyHops
		res.Comparisons += nd.compares
		res.RecvWaits += nd.recvWaits
		res.StripedSends += nd.striped
		barrierWait += nd.barrierWait
		res.PerNode[id] = nd.clock
	}
	if m.cong != nil {
		// Serialize concurrent traffic on shared links: replay the send
		// logs through the per-edge occupancy table and raise the
		// makespan to the latest queued delivery (see congestion.go).
		st := m.replayCongestion()
		res.LinkWait = st.linkWait
		res.MaxLinkOccupancy = st.maxOcc
		if st.latest > res.Makespan {
			res.Makespan = st.latest
		}
		if mm := m.cfg.Metrics; mm != nil {
			mm.FlushCongestion(int64(st.linkWait), st.perDim, st.maxOcc, res.StripedSends)
		}
	}
	// One flush per run: eight atomic adds, regardless of how many
	// millions of events the run produced.
	if mm := m.cfg.Metrics; mm != nil {
		mm.Runs.Inc()
		mm.Messages.Add(res.Messages)
		mm.KeysSent.Add(res.KeysSent)
		mm.KeyHops.Add(res.KeyHops)
		mm.Comparisons.Add(res.Comparisons)
		mm.RecvWaits.Add(res.RecvWaits)
		mm.BarrierVTime.Add(barrierWait)
		mm.Makespan.Observe(int64(res.Makespan))
	}
	return res, nil
}

// markParticipants validates a participant list — every entry a healthy
// node of the cube, no duplicates — and marks it in m.inGroup (which
// doubles as Proc.InGroup's membership set). On error nothing stays
// marked; on success the caller owns the marks and must clear them with
// unmarkParticipants when the run or session ends.
func (m *Machine) markParticipants(participants []cube.NodeID) error {
	if m.inGroup == nil {
		m.inGroup = make([]bool, m.h.Size())
	}
	for i, id := range participants {
		var err error
		switch {
		case !m.h.Contains(id):
			err = fmt.Errorf("machine: participant %d outside Q_%d", id, m.cfg.Dim)
		case m.cfg.Faults.Has(id):
			err = fmt.Errorf("machine: participant %d is faulty", id)
		case m.inGroup[id]:
			err = fmt.Errorf("machine: participant %d listed twice", id)
		}
		if err != nil {
			m.unmarkParticipants(participants[:i])
			return err
		}
		m.inGroup[id] = true
	}
	return nil
}

// unmarkParticipants clears marks set by a successful markParticipants.
func (m *Machine) unmarkParticipants(participants []cube.NodeID) {
	for _, id := range participants {
		m.inGroup[id] = false
	}
}

// prepareRun re-arms the shared run state for a run of n participants:
// barrier, abort flag, error slots, and Proc storage, all reused across
// runs so the steady state allocates nothing per call.
func (m *Machine) prepareRun(n int) *runState {
	m.bar = m.barrierFor(n)
	rs := &m.rs
	rs.nodes = m.nodes
	rs.bar = m.bar
	rs.aborting.Store(false)
	if cap(rs.errs) < n {
		rs.errs = make([]error, n)
	} else {
		rs.errs = rs.errs[:n]
		clear(rs.errs)
	}
	if cap(m.procs) < n {
		m.procs = make([]Proc, n)
	} else {
		m.procs = m.procs[:n]
	}
	return rs
}

// resetNodes clears every node's clock, counters, and mailbox for a fresh
// run. Called with no kernel goroutines live.
func (m *Machine) resetNodes() {
	for _, nd := range m.nodes {
		nd.clock = 0
		nd.msgsSent, nd.keysSent, nd.keyHops, nd.compares, nd.recvWaits = 0, 0, 0, 0, 0
		nd.barrierWait = 0
		nd.slog, nd.seq, nd.striped = nd.slog[:0], 0, 0
		// Undelivered payloads from an aborted previous run go back to
		// the pool: no kernel goroutine is alive to reference them.
		for _, msg := range nd.box.reset() {
			m.bufs.put(msg.keys)
		}
	}
}

// barrierFor returns the cached barrier re-armed for a run of n
// participants, rebuilding it when the participant count or the harness's
// substrate knob changed since the last run.
func (m *Machine) barrierFor(n int) runBarrier {
	flat := useFlatBarrier.Load()
	if m.bar == nil || m.bar.size() != n || m.barFlat != flat {
		if flat {
			m.bar = newFlatBarrier(n)
		} else {
			m.bar = newTreeBarrier(n)
		}
		m.barFlat = flat
	}
	m.bar.arm()
	return m.bar
}

// RunAllHealthy executes kernel on every fault-free processor.
func (m *Machine) RunAllHealthy(kernel Kernel) (Result, error) {
	return m.Run(m.Healthy(), kernel)
}

// Hops returns the hop count a message pays between src and dst under the
// machine's routing discipline, or an error if no route exists (possible
// only in the Total model).
func (m *Machine) Hops(src, dst cube.NodeID) (int, error) {
	if src == dst {
		return 0, nil
	}
	// Every message is priced by hop count alone, so prefer the router's
	// path-free counter (cached at construction) over materializing a Path.
	if m.hopper != nil {
		return m.hopper.Hops(src, dst)
	}
	p, err := m.router.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return p.Hops(), nil
}

// SortedParticipants is a convenience for deterministic participant
// ordering in reports.
func SortedParticipants(ids []cube.NodeID) []cube.NodeID {
	out := append([]cube.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
