package engine

import (
	"sort"
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func sortedRef(keys []sortutil.Key) []sortutil.Key {
	out := sortutil.Clone(keys)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keysEqual(a, b []sortutil.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDoSortMatchesReference(t *testing.T) {
	e := New(2, 2)
	keys := workload.MustGenerate(workload.Uniform, 500, xrand.New(1))
	cfg := Config{Dim: 4, Faults: []cube.NodeID{3, 9}}
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatalf("engine sort diverges from reference")
	}
	if res.Res.Makespan <= 0 {
		t.Fatalf("no simulated time recorded")
	}
}

func TestPlanCacheHitsAndSingleSearch(t *testing.T) {
	e := New(1, 4)
	cfg := Config{Dim: 5, Faults: []cube.NodeID{3, 17}}
	keys := workload.MustGenerate(workload.Uniform, 200, xrand.New(2))
	for i := 0; i < 5; i++ {
		if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// Same configuration written differently: permuted fault order must
	// hit the same cache entry.
	perm := Config{Dim: 5, Faults: []cube.NodeID{17, 3}}
	if res := e.Do(Request{Config: perm, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	}
	m := e.Metrics()
	if m.PlanMisses != 1 {
		t.Fatalf("plan misses = %d, want 1 (one search per configuration)", m.PlanMisses)
	}
	if m.PlanHits != 5 {
		t.Fatalf("plan hits = %d, want 5", m.PlanHits)
	}
	if m.Requests != 6 {
		t.Fatalf("requests = %d, want 6", m.Requests)
	}
}

func TestPoolBoundAndCloneFastPath(t *testing.T) {
	const bound = 3
	e := New(bound, 16)
	cfg := Config{Dim: 4, Faults: []cube.NodeID{5}}
	keys := workload.MustGenerate(workload.Uniform, 300, xrand.New(3))
	want := sortedRef(keys)

	var wg sync.WaitGroup
	errs := make([]error, 24)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
			if res.Err != nil {
				errs[i] = res.Err
				return
			}
			if !keysEqual(res.Keys, want) {
				t.Errorf("request %d: wrong result", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.MachinesBuilt != 1 {
		t.Fatalf("machines built = %d, want 1 template", m.MachinesBuilt)
	}
	if got := m.MachinesBuilt + m.MachinesCloned; got > bound {
		t.Fatalf("pool created %d machines, bound is %d", got, bound)
	}
}

func TestNegativePlanResultCached(t *testing.T) {
	e := New(1, 1)
	// Three faults on Q_2: a single cut leaves some 2-node subcube with
	// two faults (pigeonhole), and the search caps at n-1 cuts, so no
	// single-fault partition exists.
	cfg := Config{Dim: 2, Faults: []cube.NodeID{0, 1, 2}}
	r1 := e.Do(Request{Config: cfg, Op: OpSort, Keys: []sortutil.Key{1}})
	if r1.Err == nil {
		t.Fatal("expected plan failure for inseparable fault set")
	}
	r2 := e.Do(Request{Config: cfg, Op: OpSort, Keys: []sortutil.Key{1}})
	if r2.Err == nil {
		t.Fatal("expected cached plan failure")
	}
	m := e.Metrics()
	if m.PlanMisses != 1 || m.PlanHits != 1 {
		t.Fatalf("misses=%d hits=%d, want 1 and 1 (failure cached)", m.PlanMisses, m.PlanHits)
	}
}

func TestBatchErrorIsolation(t *testing.T) {
	e := New(2, 4)
	good := workload.MustGenerate(workload.Uniform, 100, xrand.New(4))
	reqs := []Request{
		{Config: Config{Dim: 3, Faults: []cube.NodeID{1}}, Op: OpSort, Keys: good},
		{Config: Config{Dim: 3, Faults: []cube.NodeID{99}}, Op: OpSort, Keys: good},      // fault outside Q_3
		{Config: Config{Dim: 3}, Op: OpKthSmallest, Keys: good, K: 0},                    // rank out of range
		{Config: Config{Dim: -1}, Op: OpSort, Keys: good},                                // bad dimension
		{Config: Config{Dim: 2, Faults: []cube.NodeID{0, 1, 2}}, Op: OpSort, Keys: good}, // inseparable
		{Config: Config{Dim: 3}, Op: OpTopK, Keys: good, K: 5},
	}
	results := e.Batch(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for _, i := range []int{1, 2, 3, 4} {
		if results[i].Err == nil {
			t.Fatalf("request %d should have failed", i)
		}
	}
	if results[0].Err != nil {
		t.Fatalf("valid sort failed alongside bad requests: %v", results[0].Err)
	}
	if !keysEqual(results[0].Keys, sortedRef(good)) {
		t.Fatalf("batch sort result wrong")
	}
	if results[5].Err != nil {
		t.Fatalf("valid top-k failed: %v", results[5].Err)
	}
	ref := sortedRef(good)
	if !keysEqual(results[5].Keys, ref[len(ref)-5:]) {
		t.Fatalf("batch top-k result wrong")
	}
}

func TestOpsThroughPool(t *testing.T) {
	e := New(2, 4)
	cfg := Config{Dim: 4, Faults: []cube.NodeID{7}}
	keys := workload.MustGenerate(workload.Uniform, 257, xrand.New(5))
	ref := sortedRef(keys)

	if res := e.Do(Request{Config: cfg, Op: OpKthSmallest, Keys: keys, K: 10}); res.Err != nil || res.Value != ref[9] {
		t.Fatalf("kth-smallest = %v err=%v, want %v", res.Value, res.Err, ref[9])
	}
	if res := e.Do(Request{Config: cfg, Op: OpMedian, Keys: keys}); res.Err != nil || res.Value != ref[(len(ref)-1)/2] {
		t.Fatalf("median = %v err=%v, want %v", res.Value, res.Err, ref[(len(ref)-1)/2])
	}
	if res := e.Do(Request{Config: cfg, Op: OpTopK, Keys: keys, K: 3}); res.Err != nil || !keysEqual(res.Keys, ref[len(ref)-3:]) {
		t.Fatalf("top-k wrong: %v err=%v", res.Keys, res.Err)
	}
	if res := e.Do(Request{Config: cfg, Op: Op(42), Keys: keys}); res.Err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestDifferentCostModelsGetDifferentPools(t *testing.T) {
	e := New(1, 2)
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(6))
	paper := Config{Dim: 3, Cost: machine.PaperCostModel()}
	ncube := Config{Dim: 3, Cost: machine.DefaultCostModel()}
	r1 := e.Do(Request{Config: paper, Op: OpSort, Keys: keys})
	r2 := e.Do(Request{Config: ncube, Op: OpSort, Keys: keys})
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	if r1.Res.Makespan == r2.Res.Makespan {
		t.Fatal("distinct cost models produced identical makespans — pools likely shared")
	}
	if m := e.Metrics(); m.MachinesBuilt != 2 {
		t.Fatalf("machines built = %d, want 2 (one template per cost model)", m.MachinesBuilt)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	e := New(1, 1)
	if res := e.Do(Request{Config: Config{Dim: 0}, Op: OpSort, Keys: nil}); res.Err != nil || len(res.Keys) != 0 {
		t.Fatalf("empty sort on Q_0: keys=%v err=%v", res.Keys, res.Err)
	}
	one := []sortutil.Key{42}
	if res := e.Do(Request{Config: Config{Dim: 1}, Op: OpSort, Keys: one}); res.Err != nil || !keysEqual(res.Keys, one) {
		t.Fatalf("single-key sort: keys=%v err=%v", res.Keys, res.Err)
	}
}
