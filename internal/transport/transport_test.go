package transport

// Integration tests for the pipelined client against a live server:
// correctness over a real socket, many requests in flight at once,
// deadline propagation, and the health machinery (shard death fails
// fast, reprobe resurrects).

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

// fakeBackend is a controllable Backend: it sorts in-process (no
// engine), optionally blocking until released, and records calls.
type fakeBackend struct {
	mu       sync.Mutex
	injected int
	disarmed int
	block    chan struct{} // non-nil: Do waits for close or ctx
}

func (b *fakeBackend) DoContext(ctx context.Context, req engine.Request) engine.Result {
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return engine.Result{Err: ctx.Err()}
		}
	}
	keys := append([]sortutil.Key(nil), req.Keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return engine.Result{Keys: keys, Res: machine.Result{Comparisons: int64(len(keys))}}
}

func (b *fakeBackend) InjectFault(cfg engine.Config, injs ...machine.Injection) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.injected += len(injs)
	return nil
}

func (b *fakeBackend) DisarmFaults(cfg engine.Config) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.disarmed++
	return nil
}

func (b *fakeBackend) Metrics() engine.Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return engine.Metrics{Requests: int64(b.injected)*0 + 42}
}

// startServer serves backend on an ephemeral port; cleanup shuts it
// down. Returns the address and the server.
func startServer(t *testing.T, backend Backend, opts ServerOptions) (string, *Server) {
	t.Helper()
	srv := NewServer(backend, opts)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return lis.Addr().String(), srv
}

func fastClientOptions() ClientOptions {
	return ClientOptions{DialTimeout: time.Second, CallTimeout: 5 * time.Second, ReprobeInterval: 10 * time.Millisecond}
}

func TestClientServerRoundTrip(t *testing.T) {
	addr, _ := startServer(t, &fakeBackend{}, ServerOptions{})
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	res := cl.Do(context.Background(), engine.Request{
		Config: engine.Config{Dim: 3},
		Op:     engine.OpSort,
		Keys:   []sortutil.Key{5, -1, 3, 0},
	})
	if res.Err != nil {
		t.Fatalf("Do: %v", res.Err)
	}
	want := []sortutil.Key{-1, 0, 3, 5}
	for i, k := range want {
		if res.Keys[i] != k {
			t.Fatalf("keys = %v, want %v", res.Keys, want)
		}
	}
	if res.Res.Comparisons != 4 {
		t.Fatalf("stats did not cross the wire: %+v", res.Res)
	}
}

// TestClientPipelining proves many requests ride one client
// concurrently and every response reaches its own caller (correlation,
// not ordering).
func TestClientPipelining(t *testing.T) {
	addr, _ := startServer(t, &fakeBackend{}, ServerOptions{})
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	const calls = 128
	rng := xrand.New(7)
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		keys := make([]sortutil.Key, 32)
		for j := range keys {
			keys[j] = sortutil.Key(rng.Uint64())
		}
		wg.Add(1)
		go func(i int, keys []sortutil.Key) {
			defer wg.Done()
			res := cl.Do(context.Background(), engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: keys})
			if res.Err != nil {
				errs[i] = res.Err
				return
			}
			if !sort.SliceIsSorted(res.Keys, func(a, b int) bool { return res.Keys[a] < res.Keys[b] }) {
				errs[i] = errors.New("unsorted response")
			}
		}(i, keys)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if !cl.Healthy() {
		t.Fatal("client unhealthy after a clean storm")
	}
}

// TestDeadlinePropagation sends a request whose context expires while
// the backend blocks; the shard side must observe the deadline and the
// caller must get a timely error, not hang for CallTimeout.
func TestDeadlinePropagation(t *testing.T) {
	be := &fakeBackend{block: make(chan struct{})}
	defer close(be.block)
	addr, _ := startServer(t, be, ServerOptions{})
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := cl.Do(ctx, engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: []sortutil.Key{1}})
	if res.Err == nil {
		t.Fatal("expected a deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to surface", elapsed)
	}
}

// TestControlPlane exercises inject/disarm/probe/metrics over the wire.
func TestControlPlane(t *testing.T) {
	be := &fakeBackend{}
	addr, _ := startServer(t, be, ServerOptions{})
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	cfg := engine.Config{Dim: 4}
	if err := cl.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 3, At: 10}); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	if err := cl.DisarmFaults(cfg); err != nil {
		t.Fatalf("DisarmFaults: %v", err)
	}
	if fb, err := cl.Probe(context.Background()); err != nil || fb.Inflight < 0 {
		t.Fatalf("Probe: %v %+v", err, fb)
	}
	if m := cl.Metrics(); m.Requests != 42 {
		t.Fatalf("Metrics.Requests = %d, want 42", m.Requests)
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	if be.injected != 1 || be.disarmed != 1 {
		t.Fatalf("backend saw inject=%d disarm=%d", be.injected, be.disarmed)
	}
}

// TestShardDeathAndReprobe kills the server mid-stream: in-flight and
// subsequent calls fail fast with ErrShardDown, the client flips
// unhealthy, and once a new server takes over the same address the
// reprobe loop flips it back healthy and calls succeed again.
func TestShardDeathAndReprobe(t *testing.T) {
	srv := NewServer(&fakeBackend{}, ServerOptions{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go srv.Serve(lis)

	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()
	if res := cl.Do(context.Background(), engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: []sortutil.Key{2, 1}}); res.Err != nil {
		t.Fatalf("warm-up call: %v", res.Err)
	}

	// Kill the shard (no drain — the CI smoke leg SIGKILLs too).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	srv.Shutdown(ctx)
	cancel()

	res := cl.Do(context.Background(), engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: []sortutil.Key{2, 1}})
	if !errors.Is(res.Err, ErrShardDown) {
		t.Fatalf("post-kill error = %v, want ErrShardDown", res.Err)
	}
	if cl.Healthy() {
		t.Fatal("client still healthy after shard death")
	}

	// Resurrect on the same address; the reprobe loop must notice.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := NewServer(&fakeBackend{}, ServerOptions{})
	go srv2.Serve(lis2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for !cl.Healthy() {
		if time.Now().After(deadline) {
			t.Fatal("client never re-probed the resurrected shard healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res := cl.Do(context.Background(), engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: []sortutil.Key{2, 1}}); res.Err != nil {
		t.Fatalf("post-resurrection call: %v", res.Err)
	}
}

// TestServerShutdownDrains pins the shard-side half of graceful
// shutdown: Shutdown returns only after in-flight requests completed,
// and the late responses still reach their callers.
func TestServerShutdownDrains(t *testing.T) {
	be := &fakeBackend{block: make(chan struct{})}
	addr, srv := startServer(t, be, ServerOptions{DrainTimeout: 5 * time.Second})
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	resC := make(chan engine.Result, 1)
	go func() {
		resC <- cl.Do(context.Background(), engine.Request{Config: engine.Config{Dim: 2}, Op: engine.OpSort, Keys: []sortutil.Key{9, 1}})
	}()
	// Wait until the request is in flight server-side.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was still executing")
	case <-time.After(50 * time.Millisecond):
	}

	close(be.block) // release the request; drain should now complete
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-resC
	if res.Err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.Err)
	}
	if len(res.Keys) != 2 || res.Keys[0] != 1 {
		t.Fatalf("bad drained result: %+v", res.Keys)
	}
}
