package machine

import (
	"sync"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// message is one point-to-point transfer. arrival is the virtual time the
// last byte reaches the destination under the cost model.
type message struct {
	src     cube.NodeID
	tag     Tag
	arrival Time
	keys    []sortutil.Key
}

// mailbox is an unbounded MPI-style receive queue with (source, tag)
// matching. Sends never block; receives block until a matching message is
// present or the run is aborted. An unbounded queue is the right choice
// here: kernels exchange O(1) outstanding messages per peer, and a
// bounded channel would turn an algorithmic bug into a silent deadlock
// instead of an observable stuck queue.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []message
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// reset clears the queue and abort flag between runs, returning any
// undelivered messages so the machine can recycle their payloads.
func (mb *mailbox) reset() []message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	left := mb.q
	mb.q = nil
	mb.aborted = false
	return left
}

// put enqueues a message and wakes any waiting receiver.
func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.q = append(mb.q, m)
	mb.cond.Broadcast()
}

// abort wakes all blocked receivers; their take calls return ok=false.
func (mb *mailbox) abort() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.aborted = true
	mb.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag),
// blocking until one arrives. waited reports whether the caller had to
// block. ok is false if the run was aborted while waiting.
func (mb *mailbox) take(src cube.NodeID, tag Tag) (m message, waited, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.aborted {
			return message{}, waited, false
		}
		for i := range mb.q {
			if mb.q[i].src == src && mb.q[i].tag == tag {
				m = mb.q[i]
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m, waited, true
			}
		}
		waited = true
		mb.cond.Wait()
	}
}

// pending returns the queue length (diagnostics).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.q)
}

// barrier synchronizes a fixed group of kernel goroutines and their
// virtual clocks: every participant's clock leaves the barrier set to the
// group maximum. The barrier itself is free in virtual time — it models
// the logical phase structure of an SPMD algorithm, not a timed
// collective (the algorithms under study synchronize through their data
// messages, which are priced).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	max     Time
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants have called wait, then releases
// them all with the maximum clock. ok is false if the run was aborted.
func (b *barrier) wait(t Time) (syncTime Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return 0, false
	}
	if t > b.max {
		b.max = t
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		// Last arrival: open the next generation.
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.max, true
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return 0, false
	}
	return b.max, true
}

// abort releases all waiters with ok=false and poisons future waits.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}
