// Command ablations runs the design-choice studies DESIGN.md indexes:
//
//	E8  — the §3 closed-form cost model versus the simulator
//	E9  — the formula (1) cutting-sequence heuristic versus the worst
//	      member of Ψ
//	E10 — partial versus total fault models (routing through versus
//	      around faulty processors)
//	E11 — full-block versus the paper's literal half-exchange
//	      compare-exchange protocol
//	E12 — distribution (Step 2 scatter + final gather) overhead the
//	      paper's cost model excludes
//	E13 — strong-scaling speedup of the distributed sort
//	E14 — the paper's r >= n remark: how far past the guarantee the
//	      partition (and the sort) still works
//	E15 — mid-run failures: expected time-to-sorted under the
//	      detect/re-partition/restart policy
//	E16 — dead links: traffic and time inflation from routing detours
//
// Usage:
//
//	ablations [-seed 1992] [-which e8,e9,e10,e11]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hypersort/internal/experiments"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 1992, "random seed")
		which = flag.String("which", "e8,e9,e10,e11,e12,e13,e14,e15,e16", "comma-separated studies to run")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(strings.ToLower(w))] = true
	}

	if want["e8"] {
		rows, err := experiments.CostAgreement(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E8 — closed-form cost model vs simulated makespan")
		fmt.Println(experiments.FormatCostAgreement(rows))
	}
	if want["e9"] {
		rows, err := experiments.HeuristicValue(6, 4000, 20, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E9 — formula (1) selection vs worst member of Ψ (Q_6)")
		fmt.Println(experiments.FormatHeuristic(rows))
	}
	if want["e11"] {
		rows, err := experiments.ProtocolComparison(5, 4000, 5, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E11 — full-block vs half-exchange protocol (Q_5)")
		fmt.Println(experiments.FormatProtocol(rows))
	}
	if want["e12"] {
		rows, err := experiments.DistributionOverhead(6, 3, []int{3200, 32000, 320000}, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E12 — distribution overhead the cost model excludes (Q_6, r=3)")
		fmt.Println(experiments.FormatDistribution(rows))
	}
	if want["e13"] {
		rows, err := experiments.Speedup(64000, 8, *seed, experiments.DefaultSpeedupCost())
		if err != nil {
			fatal(err)
		}
		fmt.Println("E13 — strong scaling of the fault-free distributed sort (M=64000)")
		fmt.Println(experiments.FormatSpeedup(rows))
	}
	if want["e14"] {
		rows, err := experiments.BeyondGuarantee(5, 12, 400, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E14 — beyond the r <= n-1 guarantee (Q_5, sampled placements)")
		fmt.Println(experiments.FormatBeyond(rows))
	}
	if want["e15"] {
		rows, err := experiments.Availability(5, 4000, 40, nil, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E15 — mid-run failures: restart-policy cost vs failure rate (Q_5)")
		fmt.Println(experiments.FormatAvailability(rows))
	}
	if want["e16"] {
		rows, err := experiments.LinkFaults(5, 4000, 4, 10, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E16 — dead links: detour cost on an otherwise healthy Q_5")
		fmt.Println(experiments.FormatLinkFaults(rows))
	}
	if want["e10"] {
		rows, err := experiments.FaultModelComparison(5, 4000, 10, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("E10 — partial vs total fault model (Q_5)")
		fmt.Println(experiments.FormatFaultModel(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ablations:", err)
	os.Exit(1)
}
