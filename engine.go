package hypersort

import (
	"context"
	"fmt"
	"time"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
)

// EngineConfig tunes an Engine's resource bounds and its continuous-
// batching dispatcher. The zero value selects sensible defaults
// (GOMAXPROCS for both resource bounds, batching on).
type EngineConfig struct {
	// PoolSize bounds the simulated machines kept per configuration.
	// Each concurrent request on one configuration needs its own
	// machine; beyond PoolSize in-flight requests for a configuration,
	// further requests wait for a machine to free up. A machine costs
	// 2^Dim node states, so size the pool by memory and host
	// parallelism, not by request count. Values < 1 mean GOMAXPROCS.
	PoolSize int
	// BatchWorkers bounds how many requests SortBatch executes
	// concurrently across all configurations. Values < 1 mean
	// GOMAXPROCS.
	BatchWorkers int
	// Trace, if non-nil, receives every machine event (send, receive,
	// compute) of every request the engine serves. Unlike Sorter's
	// per-run Config.Trace — which the engine rejects — this hook is
	// engine-wide: pooled machines share it, so events from concurrent
	// requests interleave. It is called from many goroutines at once and
	// must be safe for concurrent use; a bounded sampling sink (the
	// internal ring tracer behind cmd/serve's /v1/trace) is the intended
	// consumer. Leave nil for zero tracing overhead.
	Trace func(TraceEvent)

	// DisableBatching turns the continuous-batching dispatcher off:
	// every request leases its own machine (the pool-only behaviour of
	// earlier releases). Mainly for A/B measurement.
	DisableBatching bool
	// MaxBatch caps how many concurrent compatible sort requests one
	// fused machine run may carry. Values < 1 select the default (8).
	MaxBatch int
	// MaxLinger is how long the dispatcher holds a partial batch open
	// waiting for more requests. 0 (the default) never waits: batches
	// form only while the machine pool is saturated, adding no latency
	// at low load. Positive values trade latency for larger batches.
	MaxLinger time.Duration
	// AdmissionQueue bounds how many sort requests may wait per
	// configuration; beyond it requests fail fast with
	// ErrAdmissionRejected. Values < 1 select the default (256).
	AdmissionQueue int

	// Mode selects the execution substrate. ModeSim (the default) runs
	// every request on the simulated machine with measured Stats.
	// ModeDirect serves eligible sorts (full-block protocol, no
	// distribution accounting) at host speed with analytically predicted
	// Stats — bit-identical sorted output, no simulated machinery — and
	// falls back to the simulator for everything else, including any
	// configuration with chaos injections armed. ModeAuto is ModeDirect
	// unless Trace is set (direct runs emit no machine events).
	Mode ExecMode
	// OracleSample, when > 0 with direct execution active, re-runs one
	// in every OracleSample direct results on the simulator oracle and
	// cross-checks the sorted output (EngineMetrics.OracleRuns /
	// ParityBreaks; the sampled request waits for the simulated run).
	OracleSample int
}

// ExecMode selects an Engine's execution substrate; see EngineConfig.Mode.
type ExecMode = engine.Mode

// Execution substrates: the simulator (measured Stats), the direct
// host-speed path (predicted Stats), or automatic selection.
const (
	ModeSim    = engine.ModeSim
	ModeDirect = engine.ModeDirect
	ModeAuto   = engine.ModeAuto
)

// ErrAdmissionRejected is found (via errors.Is) in a Result.Err or Sort
// error when the engine's bounded admission queue for the request's
// configuration was full. It is the backpressure signal: shed load or
// retry with backoff. cmd/serve maps it to HTTP 503.
var ErrAdmissionRejected = engine.ErrAdmissionRejected

// ErrUnrecoverable is found (via errors.Is) in a Result.Err or Sort
// error when a live fault injected mid-run left the configuration beyond
// repair: the degraded fault set no longer admits a single-fault
// partition, so the engine failed fast instead of hanging or
// mis-sorting. Within the paper's guarantee band (at most Dim-1
// processor faults in total) it is never reported.
var ErrUnrecoverable = engine.ErrUnrecoverable

// Injection is one scheduled live fault for InjectFault: a processor or
// link killed at a virtual time (or on the victim's Nth send) while sort
// kernels are running. See the field docs for trigger semantics.
type Injection = machine.Injection

// InjectionKind selects what an Injection destroys.
type InjectionKind = machine.InjectionKind

// Injection kinds: kill a processor, or sever one hypercube edge.
const (
	KillNode = machine.KillNode
	KillLink = machine.KillLink
)

// ProcessorDiedError reports (via errors.As) a processor killed by a
// fired injection; recovery normally absorbs it, so callers see it only
// when replanning was impossible or injections fired beyond repair.
type ProcessorDiedError = machine.ProcessorDiedError

// LinkDiedError is ProcessorDiedError's link-casualty counterpart.
type LinkDiedError = machine.LinkDiedError

// Engine is a concurrent, reusable front end to the fault-tolerant
// sorter, built for serving many requests against a recurring set of
// configurations. Unlike Sorter it is safe for arbitrary concurrent use:
// it caches partition plans by canonical configuration (so repeated
// configurations skip the O(rN) cutting-dimension search entirely),
// pools independent simulated machines per configuration (so concurrent
// requests run in parallel instead of serializing or racing), and
// coalesces concurrent compatible sort requests into fused machine runs
// via a continuous-batching dispatcher (so a saturated pool amortizes
// lease and dispatch overhead across the queue instead of paying it per
// request — see EngineConfig's MaxBatch/MaxLinger/AdmissionQueue).
//
// Limitations: Config.Trace is rejected — a per-run event hook cannot be
// cached or pooled; use a dedicated Sorter to trace a run. Plan-search
// failures (inseparable fault sets) are cached like successes, so
// retrying a doomed configuration is cheap.
type Engine struct {
	eng *engine.Engine
}

// NewEngine builds an engine. It performs no planning up front; plans
// and machines materialize lazily as configurations are first used.
//
// Every engine registers its observability bundles in the process-wide
// metrics registry (exposed by cmd/serve on GET /metrics): request
// latency, plan-cache and pool counters, per-run machine aggregates, and
// per-phase kernel breakdowns. The bundles are shared instruments — two
// engines in one process accumulate into the same series.
func NewEngine(cfg EngineConfig) *Engine {
	eng := engine.NewOpts(cfg.PoolSize, cfg.BatchWorkers, engine.BatchOptions{
		Disabled:   cfg.DisableBatching,
		MaxBatch:   cfg.MaxBatch,
		MaxLinger:  cfg.MaxLinger,
		QueueDepth: cfg.AdmissionQueue,
	})
	eng.Instrument(obs.Default())
	if cfg.Trace != nil {
		eng.SetTrace(machine.TraceFunc(cfg.Trace))
	}
	eng.SetMode(cfg.Mode)
	eng.SetOracleSample(cfg.OracleSample)
	return &Engine{eng: eng}
}

// Op selects what a batch Request computes.
type Op = engine.Op

// Batch operations: sort ascending, order statistics, or top-K.
const (
	OpSort        = engine.OpSort
	OpKthSmallest = engine.OpKthSmallest
	OpMedian      = engine.OpMedian
	OpTopK        = engine.OpTopK
)

// Request is one unit of batch work: a machine configuration, an
// operation, and its operands. Requests in one batch are independent and
// may freely mix configurations.
type Request struct {
	// Config is the machine configuration; Config.Trace must be nil.
	Config Config
	// Op selects the computation (default OpSort).
	Op Op
	// Keys is the input; it is not modified.
	Keys []Key
	// K is the 1-based rank for OpKthSmallest or the count for OpTopK.
	K int
}

// Result is one batch request's outcome. The payload field that matters
// follows the request's Op: Keys for OpSort and OpTopK, Value for
// OpKthSmallest and OpMedian. Err is per-request — see Stats for how to
// aggregate statistics over a batch.
//
// Direct reports which substrate served the request: false means a
// simulated machine measured Stats, true means the direct host-speed
// substrate sorted the keys and Stats is the analytic prediction (the
// §3 worst-case makespan and exact message/key/comparison counts; key
// hops are a lower bound under detour routing).
type Result struct {
	Keys   []Key
	Value  Key
	Stats  Stats
	Direct bool
	Err    error
}

// Close shuts down the engine's dispatch lanes (queued requests are
// drained and served first) and retires the persistent worker goroutines
// of its pooled machines. Call it when done serving — typically on
// server shutdown, after in-flight requests have drained. The engine
// remains usable afterwards (requests fall back to the unbatched pool
// path and machines respawn workers on demand), so Close is a resource
// release, not a poison pill; it is idempotent and safe to defer at
// construction time.
func (e *Engine) Close() { e.eng.Close() }

// EngineMetrics snapshots an engine's lifetime counters: requests
// served, plan-cache hits and misses, machines constructed (full builds
// versus pool-clone fast-paths), and the continuous-batching
// dispatcher's coalescing, rejection, and cancellation counts.
type EngineMetrics = engine.Metrics

// Metrics returns a snapshot of the engine's lifetime counters.
func (e *Engine) Metrics() EngineMetrics { return e.eng.Metrics() }

// Partition returns the partition decisions for cfg from the engine's
// plan cache: the first call for a configuration runs the
// cutting-dimension search, every later call is a lookup. It is the
// cheap way to inspect (or pre-warm) a configuration without building a
// Sorter.
func (e *Engine) Partition(cfg Config) (Partition, error) {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return Partition{}, err
	}
	plan, err := e.eng.Plan(ecfg)
	if err != nil {
		return Partition{}, err
	}
	return partitionInfo(plan), nil
}

// InjectFault arms live fault injections against cfg's machine pool: the
// scheduled casualties strike runs of that configuration mid-kernel. The
// engine then recovers on its own — online diagnosis converges on the
// new fault set, the request replans through the plan cache, and the
// keys are redistributed over the surviving processors — so a Sort
// overlapping the casualty still returns the correctly sorted keys
// (or ErrUnrecoverable when the degraded machine admits no plan).
// Recovery activity is visible in Metrics and on /metrics
// (hypersort_engine_replans_total, hypersort_engine_recovery_latency_ns,
// ...). Chaos drills and tests are the intended callers.
func (e *Engine) InjectFault(cfg Config, injs ...Injection) error {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return err
	}
	return e.eng.InjectFault(ecfg, injs...)
}

// DisarmFaults clears cfg's injection schedule, fired casualties
// included: the pool serves the configuration at full health again. Call
// only with no request in flight on the configuration.
func (e *Engine) DisarmFaults(cfg Config) error {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return err
	}
	return e.eng.DisarmFaults(ecfg)
}

// Sort sorts keys ascending on the configured faulty hypercube, reusing
// the engine's cached plan and pooled machines for cfg — and, when other
// Sorts for the same configuration are in flight, fusing them into one
// machine run via the continuous-batching dispatcher. Safe for
// concurrent use.
func (e *Engine) Sort(cfg Config, keys []Key) ([]Key, Stats, error) {
	return e.SortContext(context.Background(), cfg, keys)
}

// SortContext is Sort with deadline and cancellation awareness: a
// request whose context is done before it acquires execution capacity
// returns promptly with the context's error (check with errors.Is). A
// context that expires after the simulated run started does not abort
// it.
func (e *Engine) SortContext(ctx context.Context, cfg Config, keys []Key) ([]Key, Stats, error) {
	res := e.doCtx(ctx, Request{Config: cfg, Op: OpSort, Keys: keys})
	return res.Keys, res.Stats, res.Err
}

// KthSmallest returns the k-th smallest key (1-based) via the engine.
func (e *Engine) KthSmallest(cfg Config, keys []Key, k int) (Key, Stats, error) {
	res := e.do(Request{Config: cfg, Op: OpKthSmallest, Keys: keys, K: k})
	return res.Value, res.Stats, res.Err
}

// Median returns the lower median of keys via the engine.
func (e *Engine) Median(cfg Config, keys []Key) (Key, Stats, error) {
	res := e.do(Request{Config: cfg, Op: OpMedian, Keys: keys})
	return res.Value, res.Stats, res.Err
}

// TopK returns the k largest keys in ascending order via the engine.
func (e *Engine) TopK(cfg Config, keys []Key, k int) ([]Key, Stats, error) {
	res := e.do(Request{Config: cfg, Op: OpTopK, Keys: keys, K: k})
	return res.Keys, res.Stats, res.Err
}

// SortBatch executes the requests concurrently across the engine's
// machine pools and returns one Result per request, in request order.
// Errors are isolated: a request with a bad configuration, an impossible
// fault set, or invalid operands fails alone — every valid request in
// the batch still returns its result.
func (e *Engine) SortBatch(reqs []Request) []Result {
	return e.SortBatchContext(context.Background(), reqs)
}

// SortBatchContext is SortBatch with a shared context: requests still
// waiting for execution capacity when ctx is done return its error in
// their Result; requests already running complete normally.
func (e *Engine) SortBatchContext(ctx context.Context, reqs []Request) []Result {
	inner := make([]engine.Request, len(reqs))
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		ecfg, err := engineConfig(r.Config)
		if err != nil {
			errs[i] = err
			continue
		}
		inner[i] = engine.Request{Config: ecfg, Op: r.Op, Keys: r.Keys, K: r.K}
	}
	innerRes := e.eng.BatchContext(ctx, inner)
	out := make([]Result, len(reqs))
	for i := range reqs {
		if errs[i] != nil {
			out[i] = Result{Err: errs[i]}
			continue
		}
		out[i] = Result{
			Keys:   innerRes[i].Keys,
			Value:  innerRes[i].Value,
			Stats:  statsOf(innerRes[i].Res),
			Direct: innerRes[i].Direct,
			Err:    innerRes[i].Err,
		}
	}
	return out
}

// do runs one request through the engine.
func (e *Engine) do(req Request) Result {
	return e.doCtx(context.Background(), req)
}

// doCtx runs one request through the engine under ctx.
func (e *Engine) doCtx(ctx context.Context, req Request) Result {
	ecfg, err := engineConfig(req.Config)
	if err != nil {
		return Result{Err: err}
	}
	res := e.eng.DoContext(ctx, engine.Request{Config: ecfg, Op: req.Op, Keys: req.Keys, K: req.K})
	return Result{Keys: res.Keys, Value: res.Value, Stats: statsOf(res.Res), Direct: res.Direct, Err: res.Err}
}

// engineConfig converts the public Config, rejecting what an engine
// cannot serve.
func engineConfig(cfg Config) (engine.Config, error) {
	if cfg.Trace != nil {
		return engine.Config{}, fmt.Errorf("hypersort: Engine does not support Config.Trace; use a Sorter to trace a run")
	}
	return engine.Config{
		Dim:                 cfg.Dim,
		Faults:              cfg.Faults,
		LinkFaults:          cfg.LinkFaults,
		Model:               cfg.Model,
		Cost:                cfg.Cost,
		Protocol:            cfg.Protocol,
		AccountDistribution: cfg.AccountDistribution,
		Routing:             cfg.Routing,
	}, nil
}

// SumStats aggregates a batch's statistics: work counters sum over the
// successful results, and Makespan is the maximum — the batch's
// simulated critical path, since each request ran on an independent
// machine in parallel. Failed results contribute nothing.
func SumStats(results []Result) Stats {
	var agg Stats
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		agg.Messages += r.Stats.Messages
		agg.KeysSent += r.Stats.KeysSent
		agg.KeyHops += r.Stats.KeyHops
		agg.Comparisons += r.Stats.Comparisons
		if r.Stats.Makespan > agg.Makespan {
			agg.Makespan = r.Stats.Makespan
		}
	}
	return agg
}
