package transport

// The per-shard client: a small fixed pool of connections, each
// pipelined — many requests in flight at once, matched to waiters by
// correlation ID by a reader goroutine per connection. The client also
// owns the shard's health state: any dial, write, read, or framing
// error marks the shard down (ErrShardDown), in-flight calls fail fast
// so the router can re-route to ring successors, and a background
// reprobe loop dials and probes until the shard answers again.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
)

// ErrShardDown reports that the shard behind a client is unreachable or
// mid-failure; the cluster router treats it as a signal to re-route to
// ring successors.
var ErrShardDown = errors.New("transport: shard down")

// ClientOptions configures one shard client.
type ClientOptions struct {
	// Conns is the connection-pool size. Pipelining means one
	// connection already sustains many in-flight requests; more
	// connections mainly spread kernel socket work. Default 2.
	Conns int
	// DialTimeout bounds one dial attempt. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-request deadline applied when the
	// caller's context has none. Default 30s.
	CallTimeout time.Duration
	// ReprobeInterval is how often an unhealthy shard is probed for
	// recovery. Default 250ms.
	ReprobeInterval time.Duration

	// RTT, PipelineDepth, and Unhealthy are optional transport
	// instruments: per-call round-trip time, in-flight calls observed
	// at send, and healthy→unhealthy transitions.
	RTT           *obs.Histogram
	PipelineDepth *obs.Histogram
	Unhealthy     *obs.Counter
}

// Client is the proxy-side handle for one shard process.
type Client struct {
	addr string
	opts ClientOptions

	slots []*clientConn // fixed; slots dial lazily and redial after errors
	next  atomic.Uint64 // round-robin slot cursor
	corr  atomic.Uint64 // correlation IDs, unique across the client

	healthy  atomic.Bool
	inflight atomic.Int64

	// Shard load feedback from the most recent response, consumed by
	// the router's spill/shed decisions and Retry-After hints.
	lastInflight  atomic.Int64
	lastQueueWait atomic.Int64

	closed atomic.Bool
	probeC chan struct{} // kicks the reprobe loop
	doneC  chan struct{} // closed by Close
}

// call is one in-flight request's rendezvous.
type call struct {
	done chan struct{}
	f    Frame
	err  error
}

// clientConn is one pooled connection with its reader goroutine.
type clientConn struct {
	c    *Client
	mu   sync.Mutex // guards conn/w and dialing
	conn net.Conn
	w    *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]*call
}

// NewClient returns a client for the shard at addr. The client starts
// healthy and optimistic; the first failing call flips it unhealthy and
// starts reprobing. Close stops the reprobe loop and closes the pool.
func NewClient(addr string, opts ClientOptions) *Client {
	if opts.Conns <= 0 {
		opts.Conns = 2
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 30 * time.Second
	}
	if opts.ReprobeInterval <= 0 {
		opts.ReprobeInterval = 250 * time.Millisecond
	}
	cl := &Client{
		addr:   addr,
		opts:   opts,
		probeC: make(chan struct{}, 1),
		doneC:  make(chan struct{}),
	}
	cl.healthy.Store(true)
	cl.slots = make([]*clientConn, opts.Conns)
	for i := range cl.slots {
		cl.slots[i] = &clientConn{c: cl, pending: make(map[uint64]*call)}
	}
	go cl.reprobeLoop()
	return cl
}

// Addr returns the shard address this client dials.
func (cl *Client) Addr() string { return cl.addr }

// Instrument attaches the transport instruments after construction.
// Call before the client serves traffic.
func (cl *Client) Instrument(rtt, depth *obs.Histogram, unhealthy *obs.Counter) {
	cl.opts.RTT = rtt
	cl.opts.PipelineDepth = depth
	cl.opts.Unhealthy = unhealthy
}

// Healthy reports the shard's last known reachability.
func (cl *Client) Healthy() bool { return cl.healthy.Load() }

// Load returns the shard's in-flight gauge from its most recent
// response — the live signal the router spills and sheds on.
func (cl *Client) Load() int64 { return cl.lastInflight.Load() }

// QueueWaitNs returns the shard's reported median queue wait from its
// most recent response.
func (cl *Client) QueueWaitNs() int64 { return cl.lastQueueWait.Load() }

// Close shuts the client down: the reprobe loop exits, connections
// close, and in-flight calls fail with ErrShardDown.
func (cl *Client) Close() {
	if cl.closed.Swap(true) {
		return
	}
	close(cl.doneC)
	for _, s := range cl.slots {
		s.teardown(ErrShardDown)
	}
}

// markUnhealthy flips the health bit (counting the transition) and
// kicks the reprobe loop.
func (cl *Client) markUnhealthy() {
	if cl.healthy.Swap(false) {
		if cl.opts.Unhealthy != nil {
			cl.opts.Unhealthy.Inc()
		}
		select {
		case cl.probeC <- struct{}{}:
		default:
		}
	}
}

// reprobeLoop probes an unhealthy shard until it answers, then flips it
// back healthy. Probes ride the normal call path, so a successful probe
// also re-establishes a pooled connection.
func (cl *Client) reprobeLoop() {
	tick := time.NewTicker(cl.opts.ReprobeInterval)
	defer tick.Stop()
	for {
		select {
		case <-cl.doneC:
			return
		case <-cl.probeC:
		case <-tick.C:
		}
		if cl.healthy.Load() || cl.closed.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), cl.opts.DialTimeout)
		_, err := cl.Probe(ctx)
		cancel()
		if err == nil {
			cl.healthy.Store(true)
		}
	}
}

// absorb records the load feedback a response carried.
func (cl *Client) absorb(fb Feedback) {
	cl.lastInflight.Store(fb.Inflight)
	cl.lastQueueWait.Store(fb.QueueWaitNs)
}

// roundTrip sends one frame and waits for its response, handling
// deadline propagation, health transitions, and call bookkeeping. The
// encode callback receives (dst, corr, deadlineNs) and returns the
// encoded frame appended to dst.
func (cl *Client) roundTrip(ctx context.Context, want byte, encode func(dst []byte, corr uint64, deadline int64) []byte) (Frame, error) {
	if cl.closed.Load() {
		return Frame{}, ErrShardDown
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.opts.CallTimeout)
		defer cancel()
		deadline, _ = ctx.Deadline()
	}

	corr := cl.corr.Add(1)
	ca := &call{done: make(chan struct{})}
	slot := cl.slots[cl.next.Add(1)%uint64(len(cl.slots))]

	depth := cl.inflight.Add(1)
	defer cl.inflight.Add(-1)
	if cl.opts.PipelineDepth != nil {
		cl.opts.PipelineDepth.Observe(depth)
	}
	start := time.Now()

	if err := slot.send(corr, ca, func(dst []byte) []byte {
		return encode(dst, corr, deadline.UnixNano())
	}); err != nil {
		cl.markUnhealthy()
		return Frame{}, err
	}

	select {
	case <-ctx.Done():
		slot.forget(corr)
		return Frame{}, ctx.Err()
	case <-ca.done:
	}
	if ca.err != nil {
		cl.markUnhealthy()
		return Frame{}, ca.err
	}
	if cl.opts.RTT != nil {
		cl.opts.RTT.Observe(time.Since(start).Nanoseconds())
	}
	cl.absorb(ca.f.Feedback)
	if ca.f.Type != want {
		cl.markUnhealthy()
		return Frame{}, ErrShardDown
	}
	return ca.f, nil
}

// Do executes one request on the shard.
func (cl *Client) Do(ctx context.Context, req engine.Request) engine.Result {
	f, err := cl.roundTrip(ctx, TRes, func(dst []byte, corr uint64, deadline int64) []byte {
		return AppendRequest(dst, corr, req, deadline)
	})
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrShardDown) {
			err = errors.Join(ErrShardDown, err)
		}
		return engine.Result{Err: err}
	}
	return f.Res
}

// Probe checks shard liveness and refreshes load feedback.
func (cl *Client) Probe(ctx context.Context) (Feedback, error) {
	f, err := cl.roundTrip(ctx, TProbeAck, func(dst []byte, corr uint64, _ int64) []byte {
		return AppendProbe(dst, corr)
	})
	return f.Feedback, err
}

// InjectFault arms chaos injections on the shard.
func (cl *Client) InjectFault(cfg engine.Config, injs ...machine.Injection) error {
	f, err := cl.roundTrip(context.Background(), TAck, func(dst []byte, corr uint64, _ int64) []byte {
		return AppendInject(dst, corr, cfg, injs)
	})
	if err != nil {
		return err
	}
	return f.Err
}

// DisarmFaults clears a configuration's injections on the shard.
func (cl *Client) DisarmFaults(cfg engine.Config) error {
	f, err := cl.roundTrip(context.Background(), TAck, func(dst []byte, corr uint64, _ int64) []byte {
		return AppendDisarm(dst, corr, cfg)
	})
	if err != nil {
		return err
	}
	return f.Err
}

// Metrics fetches the shard engine's counter snapshot. Unreachable
// shards contribute a zero snapshot.
func (cl *Client) Metrics() engine.Metrics {
	f, err := cl.roundTrip(context.Background(), TMetricsAck, func(dst []byte, corr uint64, _ int64) []byte {
		return AppendMetricsReq(dst, corr)
	})
	if err != nil {
		return engine.Metrics{}
	}
	return f.Metrics
}

// send registers the call and writes its frame, dialing the slot if
// needed. On any error the slot tears down (failing all its pending
// calls) so the pipeline never stalls on a half-dead socket.
func (s *clientConn) send(corr uint64, ca *call, encode func(dst []byte) []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		if err := s.dialLocked(); err != nil {
			return errors.Join(ErrShardDown, err)
		}
	}
	s.pmu.Lock()
	s.pending[corr] = ca
	s.pmu.Unlock()

	bp := sendBufs.Get().(*[]byte)
	buf := encode((*bp)[:0])
	_, err := s.w.Write(buf)
	if err == nil {
		err = s.w.Flush()
	}
	*bp = buf[:0]
	sendBufs.Put(bp)
	if err != nil {
		s.teardownLocked(errors.Join(ErrShardDown, err))
		return errors.Join(ErrShardDown, err)
	}
	return nil
}

// forget abandons a call the caller stopped waiting for (context
// cancellation); the late response, if any, is discarded by the reader.
func (s *clientConn) forget(corr uint64) {
	s.pmu.Lock()
	delete(s.pending, corr)
	s.pmu.Unlock()
}

// dialLocked establishes the slot's connection and starts its reader.
func (s *clientConn) dialLocked() error {
	conn, err := net.DialTimeout("tcp", s.c.addr, s.c.opts.DialTimeout)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s.conn = conn
	s.w = bufio.NewWriterSize(conn, 64<<10)
	go s.readLoop(conn)
	return nil
}

// teardown fails every pending call and closes the connection; the next
// send redials.
func (s *clientConn) teardown(err error) {
	s.mu.Lock()
	s.teardownLocked(err)
	s.mu.Unlock()
}

func (s *clientConn) teardownLocked(err error) {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.w = nil
	}
	s.pmu.Lock()
	for corr, ca := range s.pending {
		delete(s.pending, corr)
		ca.err = err
		close(ca.done)
	}
	s.pmu.Unlock()
}

// readLoop decodes responses off one connection and completes their
// calls. Any read or framing error fails everything pending: responses
// are ordered only by completion, so after a framing slip no later
// correlation can be trusted.
func (s *clientConn) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var lenBuf [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			s.connFailed(conn, err)
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			s.connFailed(conn, ErrBadFrame)
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			s.connFailed(conn, err)
			return
		}
		var f Frame
		if err := DecodeFrame(&f, body); err != nil {
			s.connFailed(conn, err)
			return
		}
		s.pmu.Lock()
		ca := s.pending[f.Corr]
		delete(s.pending, f.Corr)
		s.pmu.Unlock()
		if ca == nil {
			continue // forgotten (cancelled) call
		}
		ca.f = f
		close(ca.done)
	}
}

// connFailed tears the slot down if conn is still its current
// connection (a teardown may have already replaced it).
func (s *clientConn) connFailed(conn net.Conn, err error) {
	s.mu.Lock()
	if s.conn == conn {
		s.teardownLocked(errors.Join(ErrShardDown, err))
	} else {
		conn.Close()
	}
	s.mu.Unlock()
}
