package maxsubcube

import (
	"math"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

func TestFindNoFaults(t *testing.T) {
	h := cube.New(4)
	sc, k := Find(h, nil)
	if k != 4 || sc.Size(h) != 16 {
		t.Fatalf("got dim %d", k)
	}
}

func TestFindOneFault(t *testing.T) {
	h := cube.New(4)
	for f := cube.NodeID(0); f < 16; f++ {
		sc, k := Find(h, cube.NewNodeSet(f))
		if k != 3 {
			t.Fatalf("fault %d: dim %d, want 3", f, k)
		}
		if sc.Contains(f) {
			t.Fatalf("fault %d inside chosen subcube", f)
		}
	}
}

func TestFindComplementaryFaults(t *testing.T) {
	// Faults at 0 and its complement hit every half-cube: dim must be n-2.
	h := cube.New(5)
	sc, k := Find(h, cube.NewNodeSet(0b00000, 0b11111))
	if k != 3 {
		t.Fatalf("dim = %d, want 3", k)
	}
	if sc.Contains(0) || sc.Contains(31) {
		t.Fatal("fault inside subcube")
	}
}

func TestFindAllFaulty(t *testing.T) {
	h := cube.New(2)
	faults := cube.NewNodeSet(0, 1, 2, 3)
	_, k := Find(h, faults)
	if k != -1 {
		t.Fatalf("dim = %d, want -1", k)
	}
}

func TestFindIsMaximal(t *testing.T) {
	// Cross-check: no fault-free subcube of dimension k+1 may exist.
	r := xrand.New(1)
	h := cube.New(5)
	for trial := 0; trial < 100; trial++ {
		nf := 1 + r.IntN(5)
		faults := cube.NewNodeSet()
		for _, f := range r.Sample(h.Size(), nf) {
			faults.Add(cube.NodeID(f))
		}
		sc, k := Find(h, faults)
		for f := range faults {
			if sc.Contains(f) {
				t.Fatalf("fault %d in chosen subcube", f)
			}
		}
		if k < h.Dim() {
			for _, bigger := range cube.EnumerateSubcubes(h, k+1) {
				if faultFree(bigger, faults) {
					t.Fatalf("faults %v: found dim-%d subcube %v but Find returned %d",
						faults.Sorted(), k+1, bigger.Format(h), k)
				}
			}
		}
	}
}

func TestFindDeterministic(t *testing.T) {
	h := cube.New(5)
	faults := cube.NewNodeSet(3, 17)
	a, _ := Find(h, faults)
	b, _ := Find(h, faults)
	if a != b {
		t.Error("Find not deterministic")
	}
}

func TestUtilization(t *testing.T) {
	h := cube.New(6)
	// Paper §1: one fault in Q_6 -> Q_5 usable -> 32/63 ~ 50.8%.
	u := Utilization(h, cube.NewNodeSet(0))
	if math.Abs(u-32.0/63.0) > 1e-9 {
		t.Errorf("utilization = %v", u)
	}
	if Utilization(cube.New(1), cube.NewNodeSet(0, 1)) != 0 {
		t.Error("fully faulty cube should have zero utilization")
	}
}

func TestSampledDimBounds(t *testing.T) {
	h := cube.New(5)
	r := xrand.New(2)
	best, worst, err := SampledDimBounds(h, 2, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best = %d, want 4", best)
	}
	if worst > 3 || worst < 2 {
		t.Errorf("worst = %d outside plausible band", worst)
	}
	if b, w, err := SampledDimBounds(h, 0, 10, r); err != nil || b != 5 || w != 5 {
		t.Errorf("r=0 bounds = %d/%d, %v", b, w, err)
	}
	if _, _, err := SampledDimBounds(h, -1, 10, r); err == nil {
		t.Error("negative r accepted")
	}
	if _, _, err := SampledDimBounds(h, 1, 0, r); err == nil {
		t.Error("zero trials accepted")
	}
}
