package cube

import (
	"testing"
	"testing/quick"
)

func TestSubcubeParseFormat(t *testing.T) {
	h := New(5)
	sc, err := ParseSubcube("1*0*1")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mask != 0b10101 || sc.Value != 0b10001 {
		t.Fatalf("ParseSubcube = %+v", sc)
	}
	if got := sc.Format(h); got != "1*0*1" {
		t.Errorf("Format = %q", got)
	}
	if sc.Dim(h) != 2 || sc.Size(h) != 4 {
		t.Errorf("Dim/Size = %d/%d", sc.Dim(h), sc.Size(h))
	}
}

func TestSubcubeParseErrors(t *testing.T) {
	if _, err := ParseSubcube(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseSubcube("1*x"); err == nil {
		t.Error("invalid symbol accepted")
	}
}

func TestSubcubeContains(t *testing.T) {
	sc, _ := ParseSubcube("1*0*1")
	for _, id := range []NodeID{0b10001, 0b10011, 0b11001, 0b11011} {
		if !sc.Contains(id) {
			t.Errorf("subcube should contain %05b", id)
		}
	}
	for _, id := range []NodeID{0b00001, 0b10000, 0b10101} {
		if sc.Contains(id) {
			t.Errorf("subcube should not contain %05b", id)
		}
	}
}

func TestSubcubeNodes(t *testing.T) {
	h := New(5)
	sc, _ := ParseSubcube("1*0*1")
	nodes := sc.Nodes(h)
	want := []NodeID{0b10001, 0b10011, 0b11001, 0b11011}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestWholeCubeAndSingleNode(t *testing.T) {
	h := New(4)
	if got := WholeCube().Size(h); got != 16 {
		t.Errorf("WholeCube size = %d", got)
	}
	sn := SingleNode(h, 9)
	if sn.Size(h) != 1 || !sn.Contains(9) || sn.Contains(8) {
		t.Errorf("SingleNode wrong: %+v", sn)
	}
}

func TestSplitAlong(t *testing.T) {
	h := New(4)
	zero, one := WholeCube().SplitAlong(2)
	if zero.Dim(h) != 3 || one.Dim(h) != 3 {
		t.Fatal("halves have wrong dimension")
	}
	for id := NodeID(0); id < 16; id++ {
		inZero, inOne := zero.Contains(id), one.Contains(id)
		if inZero == inOne {
			t.Fatalf("node %d in both or neither half", id)
		}
		if inOne != (Bit(id, 2) == 1) {
			t.Fatalf("node %d placed on wrong side", id)
		}
	}
}

func TestSplitAlongPanicsOnFixedDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitAlong on fixed dim did not panic")
		}
	}()
	zero, _ := WholeCube().SplitAlong(1)
	zero.SplitAlong(1)
}

func TestFreeAndFixedDims(t *testing.T) {
	h := New(5)
	sc, _ := ParseSubcube("1*0*1")
	free, fixed := sc.FreeDims(h), sc.FixedDims(h)
	if len(free) != 2 || free[0] != 1 || free[1] != 3 {
		t.Errorf("FreeDims = %v", free)
	}
	if len(fixed) != 3 || fixed[0] != 0 || fixed[1] != 2 || fixed[2] != 4 {
		t.Errorf("FixedDims = %v", fixed)
	}
}

func TestEnumerateSubcubesCount(t *testing.T) {
	h := New(4)
	// C(n,dim) * 2^(n-dim) subcubes of each dimension.
	wants := map[int]int{0: 16, 1: 4 * 8, 2: 6 * 4, 3: 4 * 2, 4: 1}
	for dim, want := range wants {
		got := len(EnumerateSubcubes(h, dim))
		if got != want {
			t.Errorf("EnumerateSubcubes(Q4, %d) = %d, want %d", dim, got, want)
		}
	}
	if EnumerateSubcubes(h, -1) != nil || EnumerateSubcubes(h, 5) != nil {
		t.Error("out-of-range dim should yield nil")
	}
}

func TestEnumerateSubcubesPartitionProperty(t *testing.T) {
	// Every node of Q_n appears in exactly C(n, k) subcubes of dimension k.
	h := New(5)
	for k := 0; k <= 5; k++ {
		counts := make(map[NodeID]int)
		for _, sc := range EnumerateSubcubes(h, k) {
			for _, id := range sc.Nodes(h) {
				counts[id]++
			}
		}
		want := len(Combinations(5, k))
		for id := NodeID(0); id < 32; id++ {
			if counts[id] != want {
				t.Fatalf("node %d appears in %d %d-subcubes, want %d", id, counts[id], k, want)
			}
		}
	}
}

func TestCombinations(t *testing.T) {
	c := Combinations(4, 2)
	if len(c) != 6 {
		t.Fatalf("C(4,2) yielded %d subsets", len(c))
	}
	if c[0][0] != 0 || c[0][1] != 1 || c[5][0] != 2 || c[5][1] != 3 {
		t.Errorf("Combinations order wrong: %v", c)
	}
	if got := Combinations(3, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("C(3,0) = %v", got)
	}
	if Combinations(3, 4) != nil {
		t.Error("C(3,4) should be nil")
	}
}

func TestNormalize(t *testing.T) {
	s := Subcube{Mask: 0b0101, Value: 0b1111}.Normalize()
	if s.Value != 0b0101 {
		t.Errorf("Normalize value = %04b", s.Value)
	}
}

func TestSubcubeStringDefault(t *testing.T) {
	sc, _ := ParseSubcube("1*0")
	if got := sc.String(); got == "" {
		t.Error("String should not be empty")
	}
}

func TestSubcubeRoundTripQuick(t *testing.T) {
	h := New(8)
	f := func(mask, val uint32) bool {
		sc := Subcube{Mask: NodeID(mask) & 0xFF, Value: NodeID(val) & 0xFF}.Normalize()
		back, err := ParseSubcube(sc.Format(h))
		return err == nil && back == sc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
