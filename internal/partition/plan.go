package partition

import (
	"fmt"
	"strings"

	"hypersort/internal/cube"
)

// Plan is the complete partition decision for one faulty hypercube: the
// paper's Ψ and mincut, the heuristically chosen D_β, the induced
// address split, and the dead (faulty or dangling) processor of every
// subcube. It is everything the fault-tolerant sorting algorithm needs to
// lay out its subcube views.
type Plan struct {
	// Cube is the hypercube being partitioned.
	Cube cube.Hypercube
	// Faults is the fault set the plan was built for.
	Faults cube.NodeSet
	// Set is the full cutting set Ψ with its mincut.
	Set CutSet
	// Chosen is the selected sequence D_β (empty for r <= 1).
	Chosen cube.CutSequence
	// ExtraComm is formula (1)'s value for Chosen.
	ExtraComm int
	// Split is the address decomposition induced by Chosen.
	Split *cube.Split
	// DeadW[v] is the local address of subcube v's dead processor: its
	// fault if it has one, otherwise the common dangling address. With
	// r = 0 there are no dead processors and DeadW is nil.
	DeadW []cube.NodeID
	// HasDead mirrors DeadW: false everywhere when r = 0.
	HasDead bool
	// Dangling lists the global addresses of the dangling processors
	// (dead processors of fault-free subcubes), ascending.
	Dangling []cube.NodeID
}

// BuildPlan runs the full §2.2 + §3 pipeline: find Ψ, select D_β, and
// determine the dangling processors. It accepts any fault count the
// search can separate (the paper's regime is r <= n-1, but the algorithm
// itself extends to any set admitting a single-fault structure).
func BuildPlan(n int, faults cube.NodeSet) (*Plan, error) {
	return BuildPlanObjective(n, faults, ObjectiveHops)
}

// BuildPlanWithSequence builds a plan around a caller-chosen cutting
// sequence instead of running the search and heuristic. The sequence must
// induce a single-fault structure for the fault set. Ablation studies use
// it to compare the heuristic's choice against other members of Ψ; it is
// also the hook for operators who want to pin a partition.
func BuildPlanWithSequence(n int, faults cube.NodeSet, seq cube.CutSequence) (*Plan, error) {
	h := cube.New(n)
	if faults == nil {
		faults = cube.NewNodeSet()
	}
	sp, err := cube.NewSplit(h, seq)
	if err != nil {
		return nil, err
	}
	if !sp.IsSingleFault(faults) {
		return nil, fmt.Errorf("partition: sequence %v does not induce a single-fault structure", seq)
	}
	cost := 0
	if len(faults) > 0 {
		cost, err = ExtraCommCost(h, faults, seq)
		if err != nil {
			return nil, err
		}
	}
	p := &Plan{
		Cube:      h,
		Faults:    faults.Clone(),
		Set:       CutSet{Mincut: len(seq), Sequences: []cube.CutSequence{seq.Clone()}},
		Chosen:    seq.Clone(),
		ExtraComm: cost,
		Split:     sp,
	}
	p.assignDead()
	return p, nil
}

// assignDead applies Steps 1's dead-processor layout: each faulty
// subcube's dead node is its fault, each fault-free subcube idles the
// dangling processor at the most frequent faulty local address. A no-op
// for fault-free plans.
func (p *Plan) assignDead() {
	if len(p.Faults) == 0 {
		return
	}
	sp := p.Split
	p.HasDead = true
	p.DeadW = make([]cube.NodeID, sp.NumSubcubes())
	danglingW := DanglingW(sp, p.Faults)
	hasFault := make([]bool, sp.NumSubcubes())
	for f := range p.Faults {
		v := sp.V(f)
		hasFault[v] = true
		p.DeadW[v] = sp.W(f)
	}
	for v := 0; v < sp.NumSubcubes(); v++ {
		if !hasFault[v] {
			p.DeadW[v] = danglingW
			p.Dangling = append(p.Dangling, sp.Compose(cube.NodeID(v), danglingW))
		}
	}
	p.Dangling = cube.NewNodeSet(p.Dangling...).Sorted()
}

// Mincut returns the number of cutting dimensions m.
func (p *Plan) Mincut() int { return p.Set.Mincut }

// NumSubcubes returns 2^m.
func (p *Plan) NumSubcubes() int { return p.Split.NumSubcubes() }

// Working returns N', the number of key-holding processors: every
// processor except the dead one of each subcube (N' = 2^n - 2^m when any
// fault exists, 2^n when none).
func (p *Plan) Working() int {
	if !p.HasDead {
		return p.Cube.Size()
	}
	return p.Cube.Size() - p.NumSubcubes()
}

// DanglingCount returns the number of healthy-but-idle processors.
func (p *Plan) DanglingCount() int { return len(p.Dangling) }

// Utilization returns the paper's Table 2 metric: working processors as a
// fraction of healthy processors, in [0, 1].
func (p *Plan) Utilization() float64 {
	healthy := p.Cube.Size() - len(p.Faults)
	if healthy == 0 {
		return 0
	}
	return float64(p.Working()) / float64(healthy)
}

// DeadOf returns the global address of subcube v's dead processor. It
// panics if the plan has no dead processors (r = 0) — callers must check
// HasDead first, as the fault-free layout has no such concept.
func (p *Plan) DeadOf(v cube.NodeID) cube.NodeID {
	if !p.HasDead {
		panic("partition: DeadOf on a fault-free plan")
	}
	return p.Split.Compose(v, p.DeadW[v])
}

// String renders a human-readable summary for CLI output.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q_%d with %d fault(s): mincut=%d, |Ψ|=%d, D_β=%v, extra-comm=%d\n",
		p.Cube.Dim(), len(p.Faults), p.Mincut(), len(p.Set.Sequences), p.Chosen, p.ExtraComm)
	fmt.Fprintf(&b, "subcubes=%d working=%d dangling=%d utilization=%.1f%%",
		p.NumSubcubes(), p.Working(), p.DanglingCount(), 100*p.Utilization())
	return b.String()
}
