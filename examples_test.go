package hypersort

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks
// for its headline output — the examples are documentation, and
// documentation that does not run is worse than none.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the example programs")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"partitioned Q_6", "sorted 100000 keys", "closed-form"}},
		{"faultsweep", []string{"ours: working", "speedup"}},
		{"diagnosis", []string{"diagnosis identified: [9 27 50]", "sorted 50000 keys"}},
		{"partition_explorer", []string{"mincut m = 3", "D_β = (0, 1, 3)", "dangling processors [18 25 26 27]"}},
		{"recovery", []string{"failure-free sort", "attempts:", "time-to-sorted"}},
		{"topk", []string{"top 10 of 50000 readings", "both methods agree", "cheaper"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
