package partition

import (
	"testing"

	"hypersort/internal/cube"
)

func TestPlanKeyCanonicalization(t *testing.T) {
	base := KeyFor(6, []cube.NodeID{3, 17, 40}, [][2]cube.NodeID{{0, 1}, {5, 7}}, 0)
	cases := []struct {
		name   string
		faults []cube.NodeID
		links  [][2]cube.NodeID
	}{
		{"permuted faults", []cube.NodeID{40, 3, 17}, [][2]cube.NodeID{{0, 1}, {5, 7}}},
		{"duplicated faults", []cube.NodeID{3, 17, 40, 17, 3}, [][2]cube.NodeID{{0, 1}, {5, 7}}},
		{"permuted links", []cube.NodeID{3, 17, 40}, [][2]cube.NodeID{{5, 7}, {0, 1}}},
		{"flipped link endpoints", []cube.NodeID{3, 17, 40}, [][2]cube.NodeID{{1, 0}, {7, 5}}},
		{"duplicated links", []cube.NodeID{3, 17, 40}, [][2]cube.NodeID{{0, 1}, {5, 7}, {1, 0}}},
	}
	for _, tc := range cases {
		if got := KeyFor(6, tc.faults, tc.links, 0); got != base {
			t.Errorf("%s: key %q != canonical %q", tc.name, got, base)
		}
	}
}

func TestPlanKeyDistinguishesComponents(t *testing.T) {
	base := KeyFor(6, []cube.NodeID{3, 17}, [][2]cube.NodeID{{0, 1}}, 0)
	diffs := map[string]PlanKey{
		"dim":       KeyFor(5, []cube.NodeID{3, 17}, [][2]cube.NodeID{{0, 1}}, 0),
		"faults":    KeyFor(6, []cube.NodeID{3, 18}, [][2]cube.NodeID{{0, 1}}, 0),
		"extra":     KeyFor(6, []cube.NodeID{3, 17, 40}, [][2]cube.NodeID{{0, 1}}, 0),
		"links":     KeyFor(6, []cube.NodeID{3, 17}, [][2]cube.NodeID{{0, 2}}, 0),
		"no links":  KeyFor(6, []cube.NodeID{3, 17}, nil, 0),
		"model":     KeyFor(6, []cube.NodeID{3, 17}, [][2]cube.NodeID{{0, 1}}, 1),
		"no faults": KeyFor(6, nil, [][2]cube.NodeID{{0, 1}}, 0),
	}
	for name, k := range diffs {
		if k == base {
			t.Errorf("differing %s collides with base key %q", name, base)
		}
	}
}

// TestPlanKeyAmbiguousSeparators guards the fingerprint against the
// classic concatenation trap: multi-digit components must not be able to
// re-parse as a different configuration.
func TestPlanKeyAmbiguousSeparators(t *testing.T) {
	a := KeyFor(10, []cube.NodeID{1, 23}, nil, 0)
	b := KeyFor(10, []cube.NodeID{12, 3}, nil, 0)
	if a == b {
		t.Fatalf("fault lists {1,23} and {12,3} collide: %q", a)
	}
	c := KeyFor(10, []cube.NodeID{123}, nil, 0)
	if a == c || b == c {
		t.Fatalf("fault list {123} collides: %q %q %q", a, b, c)
	}
}

// edgesFromBits decodes a bitmask into edges of h, indexing the cube's
// canonical edge enumeration.
func edgesFromBits(h cube.Hypercube, bits uint32) [][2]cube.NodeID {
	all := h.Edges()
	var out [][2]cube.NodeID
	for i := 0; i < 32 && i < len(all); i++ {
		if bits>>uint(i)&1 == 1 {
			out = append(out, [2]cube.NodeID{all[i].A, all[i].B})
		}
	}
	return out
}

func faultsFromBits(h cube.Hypercube, bits uint32) []cube.NodeID {
	var out []cube.NodeID
	for b := 0; b < h.Size() && b < 32; b++ {
		if bits>>uint(b)&1 == 1 {
			out = append(out, cube.NodeID(b))
		}
	}
	return out
}

// rotate returns xs rotated left by k — a cheap fuzzer-driven
// permutation of the listing order.
func rotate[T any](xs []T, k int) []T {
	if len(xs) == 0 {
		return xs
	}
	k %= len(xs)
	return append(append([]T(nil), xs[k:]...), xs[:k]...)
}

// FuzzPlanKey proves the cache fingerprint is injective on valid
// configurations: two configurations produce the same PlanKey exactly
// when they describe the same machine (same dimension, fault set,
// link-fault set, and model), regardless of listing order. Run with
// `go test -fuzz=FuzzPlanKey ./internal/partition`.
func FuzzPlanKey(f *testing.F) {
	// Seeds: identical sets listed in permuted order (must collide), and
	// near-miss pairs differing in exactly one component (must not).
	f.Add(uint8(4), uint32(0b1001_0110), uint32(0b11), uint8(0), uint32(0b1001_0110), uint32(0b11), uint8(0), uint8(3))
	f.Add(uint8(4), uint32(0b1001_0110), uint32(0), uint8(0), uint32(0b0110_1001), uint32(0), uint8(0), uint8(1))
	f.Add(uint8(5), uint32(0x80000001), uint32(0b101), uint8(1), uint32(0x80000001), uint32(0b101), uint8(0), uint8(0))
	f.Add(uint8(3), uint32(0b111), uint32(0), uint8(0), uint32(0b110), uint32(0), uint8(0), uint8(2))
	f.Add(uint8(5), uint32(0), uint32(0b1), uint8(0), uint32(0), uint32(0b10), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, dimRaw uint8, fA, lA uint32, mA uint8, fB, lB uint32, mB uint8, rot uint8) {
		n := 3 + int(dimRaw)%3 // Q_3..Q_5
		h := cube.New(n)
		faultsA, faultsB := faultsFromBits(h, fA), faultsFromBits(h, fB)
		linksA, linksB := edgesFromBits(h, lA), edgesFromBits(h, lB)
		modelA, modelB := int(mA)%2, int(mB)%2

		keyA := KeyFor(n, faultsA, linksA, modelA)
		keyB := KeyFor(n, faultsB, linksB, modelB)

		equalCfg := modelA == modelB &&
			nodeSetEqual(cube.NewNodeSet(faultsA...), cube.NewNodeSet(faultsB...)) &&
			edgeListEqual(linksA, linksB)
		if equalCfg && keyA != keyB {
			t.Fatalf("equal configurations, different keys: %q vs %q", keyA, keyB)
		}
		if !equalCfg && keyA == keyB {
			t.Fatalf("distinct configurations collide on %q (faults %v vs %v, links %v vs %v, model %d vs %d)",
				keyA, faultsA, faultsB, linksA, linksB, modelA, modelB)
		}

		// Listing order must never matter: rotate the slices and flip
		// every link's endpoints.
		permFaults := rotate(faultsA, int(rot))
		permLinks := rotate(linksA, int(rot))
		for i := range permLinks {
			permLinks[i][0], permLinks[i][1] = permLinks[i][1], permLinks[i][0]
		}
		if got := KeyFor(n, permFaults, permLinks, modelA); got != keyA {
			t.Fatalf("permuted listing changed key: %q vs %q", got, keyA)
		}
	})
}

func nodeSetEqual(a, b cube.NodeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b.Has(id) {
			return false
		}
	}
	return true
}

func edgeListEqual(a, b [][2]cube.NodeID) bool {
	es := func(xs [][2]cube.NodeID) cube.EdgeSet {
		s := cube.NewEdgeSet()
		for _, p := range xs {
			s.Add(p[0], p[1])
		}
		return s
	}
	sa, sb := es(a), es(b)
	if len(sa) != len(sb) {
		return false
	}
	for e := range sa {
		if !sb.Has(e.A, e.B) {
			return false
		}
	}
	return true
}
