package machine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// runTask is the descriptor Run hands a node's persistent worker: the
// kernel to execute and the prepared Proc for this run. The worker
// executes exactly one task per Run. A fused task (Session.RunBatch) sets
// fused instead of kernel: the worker then executes the whole kernel
// sequence before signalling done, resetting its node between sub-runs.
type runTask struct {
	kernel Kernel
	fused  *fusedState
	proc   *Proc
	slot   int
	rs     *runState
}

// runState is the shared coordination state of one Run, owned by the
// machine and reused across runs. It deliberately holds the abort fan-out
// targets (nodes, barrier) rather than the Machine itself so that a
// worker never keeps its Machine reachable between tasks — idle workers
// must not defeat the Close finalizer.
type runState struct {
	wg   sync.WaitGroup
	errs []error
	// nodes and bar are the abort fan-out for the current run; rearmed by
	// RunInto before dispatch.
	nodes    []*node
	bar      runBarrier
	aborting atomic.Bool
}

// fail records a participant's error and aborts the run exactly once,
// waking every peer blocked in Recv or Barrier.
func (rs *runState) fail(slot int, err error) {
	rs.errs[slot] = err
	if rs.aborting.CompareAndSwap(false, true) {
		rs.bar.abort()
		for _, nd := range rs.nodes {
			nd.box.abort()
		}
	}
}

// firstError selects the error to report for a finished run, preferring
// the root-cause failure over the ErrAborted echoes it triggered in the
// other participants. Called after wg.Wait, with no workers active.
func (rs *runState) firstError() error {
	var firstErr error
	for _, err := range rs.errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, ErrAborted) && !errors.Is(err, ErrAborted)) {
			firstErr = err
		}
	}
	return firstErr
}

// workerLoop is one node's persistent kernel executor. Workers are
// spawned once per machine (lazily, at the first Run) and reused across
// runs, so steady-state engine traffic pays a channel handoff instead of
// a goroutine spawn, and the worker keeps its warmed-up stack — kernels
// recurse through merge trees, and re-growing a fresh 8 KiB stack every
// run was a measurable share of the old substrate's cost.
//
// The loop deliberately references only its two channels and, while
// executing, the task descriptor: never the Machine. That keeps an idle
// machine collectible, letting the Close finalizer retire leaked workers
// (see Machine.Close).
func workerLoop(work <-chan runTask, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case t := <-work:
			runTaskBody(t)
			t.rs.wg.Done()
		}
	}
}

// runTaskBody executes one task — a single kernel or a fused sequence —
// reporting any failure into the shared run state. Factored out so the
// persistent worker loop and the one-shot path stay byte-identical in
// behaviour.
func runTaskBody(t runTask) {
	if t.fused != nil {
		runFusedNode(t)
		return
	}
	if err := t.proc.runKernel(t.kernel); err != nil {
		t.rs.fail(t.slot, err)
	}
}

// runFusedNode executes this node's side of a fused batch: the K kernels
// back-to-back, separated by separator rounds so no node starts sub-run
// k+1 before every node has finished k. Between sub-runs the worker
// resets its own node's clock and counters (each sub-run is an
// independent virtual-time experiment) and harvests the finished
// sub-run's statistics into the batch's flat stats array — its own slot
// only, so no synchronization beyond the separator is needed.
//
// The separator carries no virtual time: it synchronizes the host
// goroutines, not the virtual clocks, which restart at zero each
// sub-run.
//
// Failure discipline: a worker exiting early — its own kernel failed, or
// it observed the run abort after a separator — arrives at every
// separator it has not yet passed, so surviving peers never block on it. Peers
// that pass such a separator start the next sub-run against aborted
// mailboxes, take the same exit, and cascade their own Done()s. Because
// a separator admits no one into sub-run k+1 before every worker
// harvested k, the first failure (in real time) at sub-run k0 implies
// sub-runs [0,k0) are fully harvested on every node, and the
// first-failure CAS below records that minimal index: any later
// independent failure necessarily carries an index >= k0 and loses the
// CAS.
func runFusedNode(t runTask) {
	fs := t.fused
	nd := t.proc.nd
	for k := range fs.kernels {
		if k > 0 {
			nd.clock = 0
			nd.msgsSent, nd.keysSent, nd.keyHops, nd.compares, nd.recvWaits = 0, 0, 0, 0, 0
			nd.barrierWait = 0
		}
		if err := t.proc.runKernel(fs.kernels[k]); err != nil {
			fs.failed.CompareAndSwap(-1, int32(k))
			t.rs.fail(t.slot, err)
			for j := k; j < len(fs.seps); j++ {
				fs.seps[j].arrive()
			}
			return
		}
		fs.stats[k*fs.n+t.slot] = fusedNodeStats{
			clock:   nd.clock,
			msgs:    nd.msgsSent,
			keys:    nd.keysSent,
			hops:    nd.keyHops,
			comps:   nd.compares,
			waits:   nd.recvWaits,
			barrier: nd.barrierWait,
		}
		if k == len(fs.kernels)-1 {
			return // last sub-run: the run's WaitGroup is the final sync
		}
		fs.seps[k].arrive()
		fs.seps[k].pass(fs.n)
		if t.rs.aborting.Load() {
			// A peer failed; the next sub-run would only burn cycles
			// against aborted mailboxes. Exit, releasing the remaining
			// separators.
			for j := k + 1; j < len(fs.seps); j++ {
				fs.seps[j].arrive()
			}
			return
		}
	}
}

// runOneShot executes a single task on a throwaway goroutine. A machine's
// first Run uses these: experiment sweeps build thousands of machines
// that each run exactly once, and for them persistent workers would be
// pure overhead (spawn + teardown + finalizer bookkeeping with no reuse
// to amortize it). The second Run on a machine upgrades to the
// persistent pool.
func runOneShot(t runTask) {
	runTaskBody(t)
	t.rs.wg.Done()
}

// startWorkers spawns the persistent workers, once. Only healthy nodes
// get one — faulty processors never execute kernels.
func (m *Machine) startWorkers() {
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	for _, id := range m.healthy {
		nd := m.nodes[id]
		if nd.work == nil {
			nd.work = make(chan runTask, 1)
		}
		go workerLoop(nd.work, m.stop)
	}
	// Safety net for machines that are dropped without Close (experiment
	// sweeps build thousands of short-lived machines): once the Machine
	// is unreachable the finalizer retires its workers. This is why
	// workers must never reference the Machine while idle.
	runtime.SetFinalizer(m, (*Machine).Close)
}

// Close retires the machine's persistent worker goroutines. It must not
// be called while a Run is in flight. Close is idempotent, and the
// machine remains usable: a later Run simply respawns the workers.
// Machines that are dropped without Close are cleaned up by a finalizer,
// so calling it is an optimization (prompt teardown, e.g. on server
// shutdown), not an obligation.
func (m *Machine) Close() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	m.stop = nil
	runtime.SetFinalizer(m, nil)
}
