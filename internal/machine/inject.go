package machine

// Live fault injection: kill a processor or a link at a scheduled virtual
// time (or on the victim's Nth send) while kernels are running. The
// paper's fault model is static — §2's partition assumes the fault set is
// known before the sort starts — so injection is the bridge to the
// dynamic scenario: a fault fires mid-run, the victim's kernel aborts
// through the ordinary failure cascade (runState.fail → barrier and
// mailbox aborts), and the caller re-diagnoses and replans on the
// now-degraded machine.
//
// Design constraints, in order:
//
//  1. Zero disarmed overhead. Every Proc operation begins with one atomic
//     pointer load; nil means no injections and costs one predictable
//     branch. The benchmark gate (BENCH_PR5.json) holds the hot path to
//     this budget.
//  2. Deterministic firing. Triggers are defined purely in virtual time
//     (first victim operation at or after At) or in the victim's own
//     send count — never in host time or cross-node order — so a seeded
//     chaos schedule reproduces the same casualty at the same virtual
//     instant on every substrate.
//  3. Permanent death. Once fired, the victim stays dead for the
//     machine's lifetime (and, because the injector is shared exactly
//     like the buffer pool, for every Clone in the same pool): later
//     runs that still list the victim as a participant fail fast at its
//     first operation, which is what lets an engine detect the casualty
//     on re-dispatch instead of silently re-running on a broken node.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hypersort/internal/cube"
)

// InjectionKind selects what an Injection destroys.
type InjectionKind int

const (
	// KillNode makes a processor totally silent from the trigger on: its
	// kernel aborts at its next operation and never runs again.
	KillNode InjectionKind = iota
	// KillLink severs one hypercube edge: every later direct send across
	// it aborts the sender. Multi-hop routes are not re-examined — the
	// simulator prices paths by hop count without materializing
	// store-and-forward state per intermediate node, so a severed edge is
	// modeled at its endpoints only.
	KillLink
)

// String implements fmt.Stringer.
func (k InjectionKind) String() string {
	if k == KillLink {
		return "kill-link"
	}
	return "kill-node"
}

// Injection is one scheduled fault.
type Injection struct {
	// Kind selects processor or link death.
	Kind InjectionKind
	// Node is the KillNode victim.
	Node cube.NodeID
	// Link is the KillLink edge (either endpoint order).
	Link [2]cube.NodeID
	// At is the virtual trigger time: the fault fires at the victim's
	// first operation whose clock has reached At. Zero fires at the
	// victim's very first operation.
	At Time
	// AfterMessages, when positive, replaces the time trigger for
	// KillNode: the victim dies on its AfterMessages-th send. It is
	// counted against the victim's own sends, so the trigger is
	// deterministic regardless of host scheduling.
	AfterMessages int64
}

// ProcessorDiedError reports a KillNode injection firing: the victim's
// kernel aborted mid-run and the processor is permanently dead on this
// machine (and its pool).
type ProcessorDiedError struct {
	// Node is the dead processor.
	Node cube.NodeID
	// At is the victim's virtual clock when the fault fired.
	At Time
}

// Error implements the error interface.
func (e ProcessorDiedError) Error() string {
	return fmt.Sprintf("machine: processor %d died at virtual time %d", e.Node, e.At)
}

// LinkDiedError reports a KillLink injection firing on a send across the
// severed edge.
type LinkDiedError struct {
	// Link is the dead edge, oriented as configured.
	Link [2]cube.NodeID
	// At is the sender's virtual clock when the fault fired.
	At Time
}

// Error implements the error interface.
func (e LinkDiedError) Error() string {
	return fmt.Sprintf("machine: link %d-%d died at virtual time %d", e.Link[0], e.Link[1], e.At)
}

// IsInjectedDeath reports whether err (anywhere in its chain) is a fired
// injection — the signal recovery layers dispatch on.
func IsInjectedDeath(err error) bool {
	var pd ProcessorDiedError
	var ld LinkDiedError
	return errors.As(err, &pd) || errors.As(err, &ld)
}

// armedInjection is one schedule entry plus its firing state. fired flips
// exactly once (CAS) and firedAt records the virtual time of death for
// reporting.
type armedInjection struct {
	inj     Injection
	fired   atomic.Bool
	firedAt atomic.Int64
	// sent counts the victim's sends for AfterMessages triggers. On a
	// shared (pooled) injector concurrent machines count together; the
	// deterministic-schedule guarantee applies to single-machine use.
	sent atomic.Int64
}

// fire marks the injection fired at virtual time t. The first caller
// wins; later calls are no-ops.
func (a *armedInjection) fire(t Time) {
	if a.fired.CompareAndSwap(false, true) {
		a.firedAt.Store(int64(t))
	}
}

// injector holds a machine's (or pool's) injection schedule. The read
// path is one atomic pointer load — nil means disarmed — and the schedule
// slice is immutable once published, so Proc operations iterate it
// without locks. Arming replaces the slice copy-on-write under mu.
type injector struct {
	sched atomic.Pointer[[]*armedInjection]
	mu    sync.Mutex
}

// load returns the current schedule, or nil when disarmed.
func (ij *injector) load() []*armedInjection {
	if p := ij.sched.Load(); p != nil {
		return *p
	}
	return nil
}

// arm appends entries to the schedule (copy-on-write).
func (ij *injector) arm(entries []*armedInjection) {
	ij.mu.Lock()
	defer ij.mu.Unlock()
	var next []*armedInjection
	if p := ij.sched.Load(); p != nil {
		next = append(next, *p...)
	}
	next = append(next, entries...)
	ij.sched.Store(&next)
}

// Arm schedules injections on the machine. The injector is shared with
// every Clone (before or after the call), so arming a pool's template
// arms the whole pool. Each injection is validated against the topology;
// on error nothing is armed. Arming is safe while runs are in flight.
func (m *Machine) Arm(injs ...Injection) error {
	entries := make([]*armedInjection, 0, len(injs))
	for _, inj := range injs {
		switch inj.Kind {
		case KillNode:
			if !m.h.Contains(inj.Node) {
				return fmt.Errorf("machine: injection victim %d outside Q_%d", inj.Node, m.cfg.Dim)
			}
			if m.cfg.Faults.Has(inj.Node) {
				return fmt.Errorf("machine: injection victim %d is already faulty", inj.Node)
			}
		case KillLink:
			a, b := inj.Link[0], inj.Link[1]
			if !m.h.Contains(a) || !m.h.Contains(b) {
				return fmt.Errorf("machine: injected link %d-%d outside Q_%d", a, b, m.cfg.Dim)
			}
			if cube.HammingDistance(a, b) != 1 {
				return fmt.Errorf("machine: injected link %d-%d is not a hypercube edge", a, b)
			}
			if inj.AfterMessages > 0 {
				return fmt.Errorf("machine: AfterMessages trigger applies to KillNode only")
			}
		default:
			return fmt.Errorf("machine: unknown injection kind %d", int(inj.Kind))
		}
		if inj.At < 0 || inj.AfterMessages < 0 {
			return fmt.Errorf("machine: negative injection trigger")
		}
		entries = append(entries, &armedInjection{inj: inj})
	}
	m.inj.arm(entries)
	return nil
}

// DisarmInjections clears the schedule, including already-fired entries:
// the machine (and its Clones) is whole again. Call only with no run in
// flight on any machine sharing the injector.
func (m *Machine) DisarmInjections() { m.inj.sched.Store(nil) }

// InjectionsArmed reports whether the machine (or any Clone sharing its
// injector) has a non-empty injection schedule — fired entries included,
// since a fired-but-not-disarmed schedule still shapes runs. One atomic
// load; safe concurrently with runs, arming, and disarming.
func (m *Machine) InjectionsArmed() bool { return len(m.inj.load()) > 0 }

// FiredFaults returns the casualties so far: processors and links whose
// injections have fired. Safe to call concurrently with runs (a fault
// firing during the call may or may not be included).
func (m *Machine) FiredFaults() (nodes []cube.NodeID, links [][2]cube.NodeID) {
	for _, a := range m.inj.load() {
		if !a.fired.Load() {
			continue
		}
		if a.inj.Kind == KillNode {
			nodes = append(nodes, a.inj.Node)
		} else {
			links = append(links, a.inj.Link)
		}
	}
	return nodes, links
}

// Survivors returns the healthy processors minus fired KillNode victims —
// the participant set for an online diagnosis round after a casualty.
func (m *Machine) Survivors() []cube.NodeID {
	dead, _ := m.FiredFaults()
	if len(dead) == 0 {
		return append([]cube.NodeID(nil), m.healthy...)
	}
	ds := cube.NewNodeSet(dead...)
	out := make([]cube.NodeID, 0, len(m.healthy)-len(ds))
	for _, id := range m.healthy {
		if !ds.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// checkInjections is the non-send trigger check, called at the entry of
// Recv, Compute, and Barrier when the schedule is non-nil: a KillNode
// victim whose time trigger has been reached (or whose injection already
// fired) aborts here. Send triggers (message counting, link checks) live
// in checkSendInjections.
func (p *Proc) checkInjections(sched []*armedInjection) {
	for _, a := range sched {
		if a.inj.Kind != KillNode || a.inj.Node != p.nd.id {
			continue
		}
		if a.fired.Load() {
			p.fail(ProcessorDiedError{Node: p.nd.id, At: Time(a.firedAt.Load())})
		}
		if a.inj.AfterMessages == 0 && p.nd.clock >= a.inj.At {
			a.fire(p.nd.clock)
			p.fail(ProcessorDiedError{Node: p.nd.id, At: p.nd.clock})
		}
	}
}

// checkSendInjections is the Send-entry check: KillNode time and
// send-count triggers for the sender, and KillLink triggers for the
// (sender, dst) edge. It runs before any payload buffer is acquired, so
// an aborting send can never leak a pooled buffer.
func (p *Proc) checkSendInjections(sched []*armedInjection, dst cube.NodeID) {
	for _, a := range sched {
		switch a.inj.Kind {
		case KillNode:
			if a.inj.Node != p.nd.id {
				continue
			}
			if a.fired.Load() {
				p.fail(ProcessorDiedError{Node: p.nd.id, At: Time(a.firedAt.Load())})
			}
			if a.inj.AfterMessages > 0 {
				if a.sent.Add(1) >= a.inj.AfterMessages {
					a.fire(p.nd.clock)
					p.fail(ProcessorDiedError{Node: p.nd.id, At: p.nd.clock})
				}
			} else if p.nd.clock >= a.inj.At {
				a.fire(p.nd.clock)
				p.fail(ProcessorDiedError{Node: p.nd.id, At: p.nd.clock})
			}
		case KillLink:
			l := a.inj.Link
			if !(l[0] == p.nd.id && l[1] == dst) && !(l[1] == p.nd.id && l[0] == dst) {
				continue
			}
			if a.fired.Load() {
				p.fail(LinkDiedError{Link: l, At: Time(a.firedAt.Load())})
			}
			if p.nd.clock >= a.inj.At {
				a.fire(p.nd.clock)
				p.fail(LinkDiedError{Link: l, At: p.nd.clock})
			}
		}
	}
}

// PeerDead reports whether addr is dead from this processor's point of
// view: configured faulty or a fired KillNode victim. Diagnosis kernels
// use it as the ground truth their neighbor tests observe.
func (p *Proc) PeerDead(addr cube.NodeID) bool {
	if p.m.cfg.Faults.Has(addr) {
		return true
	}
	for _, a := range p.m.inj.load() {
		if a.inj.Kind == KillNode && a.inj.Node == addr && a.fired.Load() {
			return true
		}
	}
	return false
}

// LinkDead reports whether the a-b edge is dead: configured in
// Config.LinkFaults or a fired KillLink victim. Symmetric in its
// arguments.
func (p *Proc) LinkDead(a, b cube.NodeID) bool {
	if p.m.cfg.LinkFaults.Has(a, b) {
		return true
	}
	for _, ai := range p.m.inj.load() {
		if ai.inj.Kind != KillLink || !ai.fired.Load() {
			continue
		}
		l := ai.inj.Link
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			return true
		}
	}
	return false
}
