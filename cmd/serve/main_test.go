package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hypersort"
	"hypersort/internal/trace"
)

// newTestServer stands up the production handler set over a small
// engine with tracing enabled.
func newTestServer(t *testing.T) (*httptest.Server, *hypersort.Engine) {
	t.Helper()
	ring := trace.NewRing(4096, 1)
	eng := hypersort.NewEngine(hypersort.EngineConfig{PoolSize: 2, BatchWorkers: 2, Trace: ring.Record})
	srv := httptest.NewServer(newMux(eng, ring, true, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

// sortBody builds a /v1/sort request body with n shuffled keys.
func sortBody(dim int, faults []int64, n int) string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = strconv.Itoa((i*7 + 3) % n)
	}
	f, _ := json.Marshal(faults)
	return fmt.Sprintf(`{"dim":%d,"faults":%s,"keys":[%s]}`, dim, f, strings.Join(keys, ","))
}

// TestServeSortEndpoint drives a sort through the HTTP surface and
// checks output order plus response hygiene (status, Content-Type).
func TestServeSortEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(3, []int64{5}, 64)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var res wireResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("sort failed: %s", res.Err)
	}
	if len(res.Keys) != 64 {
		t.Fatalf("got %d keys, want 64", len(res.Keys))
	}
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i] < res.Keys[i-1] {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	if res.Stats.Comparisons == 0 {
		t.Fatal("stats missing from response")
	}
}

// TestServeResponseHygiene pins the error contract of every endpoint:
// JSON bodies with correct status codes and Content-Type on malformed
// input, wrong methods, and bad query parameters.
func TestServeResponseHygiene(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"malformed sort body", http.MethodPost, "/v1/sort", `{"dim":`, http.StatusBadRequest},
		{"bad op", http.MethodPost, "/v1/sort", `{"dim":2,"op":"frobnicate","keys":[1]}`, http.StatusBadRequest},
		{"bad model", http.MethodPost, "/v1/sort", `{"dim":2,"model":"cosmic","keys":[1]}`, http.StatusBadRequest},
		{"engine-rejected sort", http.MethodPost, "/v1/sort", `{"dim":99,"keys":[1]}`, http.StatusUnprocessableEntity},
		{"sort via GET", http.MethodGet, "/v1/sort", "", http.StatusMethodNotAllowed},
		{"batch via GET", http.MethodGet, "/v1/batch", "", http.StatusMethodNotAllowed},
		{"metrics via POST", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
		{"v1 metrics via POST", http.MethodPost, "/v1/metrics", "", http.StatusMethodNotAllowed},
		{"trace via POST", http.MethodPost, "/v1/trace", "", http.StatusMethodNotAllowed},
		{"bad trace last", http.MethodGet, "/v1/trace?last=bogus", "", http.StatusBadRequest},
		{"negative trace last", http.MethodGet, "/v1/trace?last=-4", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body["error"] == "" || body["error"] == nil {
				t.Fatalf("error body missing 'error' field: %v", body)
			}
		})
	}
}

// TestServePrometheusConformance scrapes GET /metrics after traffic and
// parses the exposition: every line must be a comment or a valid sample,
// every family needs HELP and TYPE, and the engine/machine families the
// traffic must have moved are present with nonzero values.
func TestServePrometheusConformance(t *testing.T) {
	srv, _ := newTestServer(t)
	if _, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(3, []int64{2, 5}, 64))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	text := readAll(t, resp)
	help := map[string]bool{}
	typed := map[string]bool{}
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[f[0]] = true
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric sample in %q: %v", line, err)
		}
		values[line[:i]] = v
	}
	for _, fam := range []string{
		"hypersort_engine_requests_total",
		"hypersort_engine_request_latency_ns",
		"hypersort_machine_runs_total",
		"hypersort_machine_comparisons_total",
		"hypersort_phase_vtime_total",
	} {
		if !help[fam] || !typed[fam] {
			t.Errorf("family %s missing HELP/TYPE", fam)
		}
	}
	if values["hypersort_engine_requests_total"] < 1 {
		t.Error("request counter did not move")
	}
	if values["hypersort_machine_runs_total"] < 1 {
		t.Error("machine run counter did not move")
	}
	if values[`hypersort_phase_vtime_total{phase="step3_local_sort"}`] <= 0 {
		t.Error("phase breakdown did not move")
	}
	if values[`hypersort_engine_request_latency_ns_bucket{le="+Inf"}`] < 1 {
		t.Error("latency histogram empty")
	}
}

// TestServeTraceConformance pulls GET /v1/trace after traffic and
// validates the Chrome trace-event schema Perfetto loads: a traceEvents
// array of metadata ("M") and instant ("i") rows with machine args.
func TestServeTraceConformance(t *testing.T) {
	srv, _ := newTestServer(t)
	if _, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(3, nil, 64))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/trace?last=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Ts   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	var meta, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "i":
			inst++
			switch ev.Name {
			case "send", "recv", "compute":
			default:
				t.Errorf("unexpected event name %q", ev.Name)
			}
			if _, ok := ev.Args["keys"]; !ok {
				t.Errorf("instant event without keys arg: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta == 0 || inst == 0 {
		t.Fatalf("trace lacks metadata (%d) or instant (%d) events", meta, inst)
	}
	if inst > 100 {
		t.Fatalf("last=100 returned %d events", inst)
	}
}

// TestServeMetricsJSON pins /v1/metrics shape: the pre-existing engine
// and memory keys stay, and the registry snapshot rides alongside.
func TestServeMetricsJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	if _, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(2, nil, 16))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Engine struct {
			Requests int64
		} `json:"engine"`
		Memory struct {
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"memory"`
		Registry map[string]struct {
			Kind string `json:"kind"`
		} `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Engine.Requests < 1 {
		t.Error("engine.Requests missing or zero")
	}
	if body.Memory.HeapAllocBytes == 0 {
		t.Error("memory stats missing")
	}
	if sv, ok := body.Registry["hypersort_engine_requests_total"]; !ok || sv.Kind != "counter" {
		t.Errorf("registry snapshot missing request counter: %v", body.Registry)
	}
}

// TestServeStatusMapping pins the engine-error -> HTTP status contract:
// admission rejection is backpressure (503, retryable), every other
// engine failure is the request's fault (422).
func TestServeStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"ok", nil, http.StatusOK},
		{"admission rejected", hypersort.ErrAdmissionRejected, http.StatusServiceUnavailable},
		{"wrapped admission rejected", fmt.Errorf("lane: %w", hypersort.ErrAdmissionRejected), http.StatusServiceUnavailable},
		{"other engine error", fmt.Errorf("no single-fault structure"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("%s: statusFor = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestServeBatchedSortsCoalesce drives concurrent sorts on one
// configuration through the HTTP surface and asserts the dispatcher
// actually fused them — the production path (serve -> engine -> lane ->
// fused session run) exercised end to end.
func TestServeBatchedSortsCoalesce(t *testing.T) {
	ring := trace.NewRing(1024, 1)
	eng := hypersort.NewEngine(hypersort.EngineConfig{PoolSize: 1, BatchWorkers: 16, Trace: ring.Record, MaxLinger: 2 * time.Millisecond})
	srv := httptest.NewServer(newMux(eng, ring, true, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	const burst = 16
	body := sortBody(3, []int64{5}, 64)
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	mtr := eng.Metrics()
	if mtr.FusedRequests <= mtr.FusedBatches {
		t.Fatalf("no coalescing over HTTP: %d fused requests in %d batches", mtr.FusedRequests, mtr.FusedBatches)
	}
}

// readAll drains a response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeChaosInjectRecovers is the acceptance path end to end over
// HTTP: arm a mid-run processor kill through /v1/chaos/inject, drive a
// sort that the casualty strikes, and require a 200 with the fully
// sorted keys — the engine diagnosed, replanned, and redistributed
// in-flight. The recovery instruments must then be visible on /metrics.
func TestServeChaosInjectRecovers(t *testing.T) {
	srv, eng := newTestServer(t)

	inject := `{"dim":4,"kill_node":5,"at":1}`
	resp, err := http.Post(srv.URL+"/v1/chaos/inject", "application/json", strings.NewReader(inject))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(4, nil, 200)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sort under injection: status %d", resp.StatusCode)
	}
	var res wireResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("sort under injection failed: %s", res.Err)
	}
	if len(res.Keys) != 200 {
		t.Fatalf("got %d keys, want 200", len(res.Keys))
	}
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i-1] > res.Keys[i] {
			t.Fatalf("recovered output unsorted at %d", i)
		}
	}
	if m := eng.Metrics(); m.Replans < 1 {
		t.Fatalf("Replans = %d, want >= 1", m.Replans)
	}

	// The recovery-latency histogram must be non-empty on the scrape
	// endpoint.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "hypersort_engine_recovery_latency_ns_count "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				t.Fatalf("recovery latency count = %q", v)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("hypersort_engine_recovery_latency_ns_count missing from /metrics")
	}

	// Stand the drill down; a fresh sort must run clean.
	resp, err = http.Post(srv.URL+"/v1/chaos/disarm", "application/json", strings.NewReader(`{"dim":4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm status %d", resp.StatusCode)
	}
}

// TestServeChaosInjectValidation pins the endpoint's error contract:
// malformed casualties answer 400, unservable configurations 422.
func TestServeChaosInjectValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{"dim":4}`, http.StatusBadRequest},                                  // no casualty
		{`{"dim":4,"kill_node":1,"kill_link":[0,1]}`, http.StatusBadRequest},  // both casualties
		{`{"dim":4,"model":"bogus","kill_node":1}`, http.StatusBadRequest},    // bad enum
		{`{"dim":40,"kill_node":1}`, http.StatusUnprocessableEntity},          // dimension out of range
		{`{"dim":3,"kill_link":[0,3]}`, http.StatusUnprocessableEntity},       // not a hypercube edge
		{`{"dim":3,"faults":[2],"kill_node":2}`, http.StatusUnprocessableEntity}, // victim already faulty
	}
	for i, c := range cases {
		resp, err := http.Post(srv.URL+"/v1/chaos/inject", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("case %d (%s): status %d, want %d", i, c.body, resp.StatusCode, c.status)
		}
	}
}
