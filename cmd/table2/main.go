// Command table2 regenerates the paper's Table 2: processor utilization
// of the proposed partition algorithm versus the maximum dimensional
// fault-free subcube method, best/worst/mean over random fault
// placements.
//
// Usage:
//
//	table2 [-trials 10000] [-seed 1992] [-min-n 3] [-max-n 6]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hypersort/internal/experiments"
)

func main() {
	var (
		trials = flag.Int("trials", 10000, "random fault placements per (n, r)")
		seed   = flag.Uint64("seed", 1992, "random seed")
		minN   = flag.Int("min-n", 3, "smallest cube dimension")
		maxN   = flag.Int("max-n", 6, "largest cube dimension")
		asJSON = flag.Bool("json", false, "emit rows as JSON instead of a table")
	)
	flag.Parse()

	rows, err := experiments.Table2(experiments.Table2Config{
		MinN: *minN, MaxN: *maxN, Trials: *trials, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, "table2:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Table 2 — processor utilization, ours vs maximum fault-free subcube (%d trials per row, seed %d)\n\n", *trials, *seed)
	fmt.Print(experiments.FormatTable2(rows))
}
