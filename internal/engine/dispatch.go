package engine

// Continuous-batching dispatcher. Concurrent sort requests that share a
// machine configuration land in one dispatch lane; the lane's dispatcher
// gathers whatever is queued (up to MaxBatch, optionally lingering up to
// MaxLinger for stragglers), leases ONE machine, and executes the whole
// batch as a fused machine.Session run: K kernels back-to-back per node,
// one worker handoff, one WaitGroup round-trip, one lease. Under load
// the batch size adapts automatically — while the pool is saturated the
// queue grows, and the next free machine takes everything waiting — the
// same feedback loop as continuous batching in inference serving.
//
// Admission is bounded: a lane's queue holds at most QueueDepth
// requests, and an arrival finding it full is rejected immediately with
// ErrAdmissionRejected (the service's backpressure signal; cmd/serve
// maps it to 503). A queued request whose context is cancelled before a
// batch claims it returns promptly with the context error.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
)

// ErrAdmissionRejected is reported (wrapped) in Result.Err when a
// request arrives at a dispatch lane whose bounded admission queue is
// full. It is the engine's backpressure signal: the caller should shed
// or retry with backoff rather than pile deeper.
var ErrAdmissionRejected = errors.New("engine: admission queue full")

// errClosed reports an acquire interrupted by engine shutdown.
var errClosed = errors.New("engine: closed")

// BatchOptions tunes the continuous-batching dispatcher.
type BatchOptions struct {
	// Disabled routes every request through the unbatched pool path,
	// turning coalescing off entirely (the pool-only baseline).
	Disabled bool
	// MaxBatch caps how many requests one fused dispatch may carry.
	// Values < 1 select the default (8).
	MaxBatch int
	// MaxLinger is how long a dispatcher holding a partial batch waits
	// for more arrivals before executing. 0 (the default) dispatches
	// immediately — batches then form only while the pool is saturated,
	// which is the continuous-batching steady state and adds no latency
	// when idle. Positive values trade first-request latency for larger
	// batches at low concurrency.
	MaxLinger time.Duration
	// QueueDepth bounds each lane's admission queue; an arrival finding
	// it full is rejected with ErrAdmissionRejected. Values < 1 select
	// the default (256).
	QueueDepth int
}

const (
	defaultMaxBatch   = 8
	defaultQueueDepth = 256
)

// laneKey identifies one dispatch lane: everything that must match for
// two sort requests to be fusable into one machine run — the plan (and
// thus dim/faults/model), the cost model (pool identity), and the
// kernel-shaping options.
type laneKey struct {
	pk                  partition.PlanKey
	cost                machine.CostModel
	protocol            bitonic.Protocol
	accountDistribution bool
}

// Item claim states: the submitting goroutine and the dispatcher race to
// settle a queued item's fate with one CAS — a dispatcher claims it for
// execution, or a cancelled waiter claims it for abandonment.
const (
	itemQueued int32 = iota
	itemClaimed
	itemCancelled
)

// item is one queued request: the work, the waiter's rendezvous, and the
// claim/cancel state machine. Items recycle through the engine's pool —
// the waiter returns its item after consuming the done signal (the
// runner touches a finished item never again), EXCEPT on the
// cancelled-while-queued path: there the dispatcher may still hold the
// pointer in a forming batch, where a recycled item's reset state would
// let the claim CAS succeed against the wrong lifecycle, so cancelled
// items are simply dropped to the garbage collector.
type item struct {
	req   Request
	state atomic.Int32
	done  chan struct{} // 1-buffered; the runner sends after res is written
	res   Result
	enq   time.Time // when the item entered its lane queue
}

// finish delivers res to the item's waiter. Call at most once, and only
// after winning the claim CAS. The buffered send never blocks: each
// lifecycle has exactly one finish and one receive.
func (it *item) finish(res Result) {
	it.res = res
	it.done <- struct{}{}
}

// getItem readies a pooled (or fresh) item for req.
func (e *Engine) getItem(req Request) *item {
	it, _ := e.items.Get().(*item)
	if it == nil {
		it = &item{done: make(chan struct{}, 1)}
	}
	it.req = req
	it.state.Store(itemQueued)
	it.res = Result{}
	it.enq = time.Now()
	return it
}

// putItem recycles an item whose done signal has been consumed.
func (e *Engine) putItem(it *item) {
	it.req = Request{}
	it.res = Result{}
	e.items.Put(it)
}

// lane is one (plan, config) dispatch lane: a bounded queue of
// compatible sort requests and the dispatcher goroutine that drains it
// into fused runs. cfg is a canonical configuration for the lane (every
// fusable request yields the same pool and kernels), entry its resolved
// plan — lanes are only created for successfully planned
// configurations.
type lane struct {
	e     *Engine
	key   laneKey
	cfg   Config
	entry *planEntry
	q     chan *item

	// perNodeFree recycles Result.PerNode maps across this lane's
	// batches, preserving the pool path's buffer-reuse behaviour (and
	// its documented aliasing rule: a Result's PerNode is valid until
	// the engine serves another request on the same configuration).
	mu          sync.Mutex
	perNodeFree []map[cube.NodeID]machine.Time

	// scratch recycles the per-batch assembly buffers (runs, kernels,
	// results, ...) across this lane's fused runs. A sync.Pool rather
	// than a single buffer because a lane may have several batches in
	// flight when the machine pool holds more than one machine.
	scratch sync.Pool
}

// batchScratch is one fused run's assembly state, pooled per lane so the
// steady-state dispatch path allocates nothing per batch. fusedIdx maps
// sub-run k to its index in the batch's live slice (prep-failed requests
// drop out of the fused sequence but keep their live slot).
type batchScratch struct {
	runs     []*core.SortRun
	kernels  []machine.Kernel
	fusedIdx []int
	results  []machine.Result
	perNode  []map[cube.NodeID]machine.Time
	// free holds SortRuns retired by earlier batches: the lane serves a
	// single configuration, so a finished run's arenas can be re-armed
	// for the next request with SortRun.Reuse instead of rebuilding the
	// distribution from scratch. Owned by whichever batch holds this
	// scratch, so no locking.
	free []*core.SortRun
}

// reslice readies the scratch for a batch of n requests, reusing the
// retained capacity.
func (sc *batchScratch) reslice(n int) {
	sc.runs = sc.runs[:0]
	sc.kernels = sc.kernels[:0]
	sc.fusedIdx = sc.fusedIdx[:0]
	if cap(sc.results) < n {
		sc.results = make([]machine.Result, n)
		sc.perNode = make([]map[cube.NodeID]machine.Time, n)
	} else {
		sc.results = sc.results[:n]
		sc.perNode = sc.perNode[:n]
	}
}

// recycle retires the batch's SortRuns into the scratch's freelist for
// the next batch to Reuse, drops the remaining references, and returns
// the scratch to the lane's pool.
func (ln *lane) recycle(sc *batchScratch) {
	sc.free = append(sc.free, sc.runs...)
	clear(sc.runs)
	clear(sc.kernels)
	for i := range sc.results {
		sc.results[i] = machine.Result{}
	}
	clear(sc.perNode)
	ln.scratch.Put(sc)
}

// laneFor returns the dispatch lane for key, creating it (and its
// dispatcher goroutine) on first use. entry must be a successfully
// planned entry for the key.
func (e *Engine) laneFor(key laneKey, cfg Config, entry *planEntry) *lane {
	e.mu.Lock()
	defer e.mu.Unlock()
	ln, ok := e.lanes[key]
	if !ok {
		ln = &lane{e: e, key: key, cfg: cfg, entry: entry, q: make(chan *item, e.batch.QueueDepth)}
		e.lanes[key] = ln
		e.wg.Add(1)
		go ln.dispatch()
	}
	return ln
}

// submit routes a sort request through its dispatch lane and waits for
// the result. handled is false when the engine is closed (the caller
// falls back to the unbatched path). Rejection (queue full) and
// cancellation while queued are both reported in the Result with
// handled=true.
func (e *Engine) submit(ctx context.Context, key partition.PlanKey, cfg Config, entry *planEntry, req Request) (Result, bool) {
	ln := e.laneFor(laneKey{
		pk:                  key,
		cost:                cfg.Cost,
		protocol:            cfg.Protocol,
		accountDistribution: cfg.AccountDistribution,
	}, cfg, entry)
	it := e.getItem(req)

	// The closed flag is read under closeMu so no item can slip into a
	// queue after Close started draining: Close flips the flag before
	// the drain, and every in-flight submit holding the read lock has
	// either enqueued (the drain will serve it) or will observe closed.
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return Result{}, false
	}
	select {
	case ln.q <- it:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.rejected.Add(1)
		if e.em != nil {
			e.em.AdmissionRejected.Inc()
		}
		return Result{Err: fmt.Errorf("engine: %w (lane holds %d requests)", ErrAdmissionRejected, e.batch.QueueDepth)}, true
	}
	if e.em != nil {
		e.em.QueueDepth.Add(1)
	}

	if ctx.Done() == nil {
		// Uncancellable context (the Do path): a plain receive parks
		// without the select machinery — measurably cheaper at high
		// request rates.
		<-it.done
		res := it.res
		e.putItem(it)
		return res, true
	}
	select {
	case <-it.done:
		res := it.res
		e.putItem(it)
		return res, true
	case <-ctx.Done():
		if it.state.CompareAndSwap(itemQueued, itemCancelled) {
			// Won the race against the dispatcher: the item will be
			// skipped when its batch forms; nothing to clean up (the
			// item itself is NOT recycled — see item).
			e.cancelled.Add(1)
			if e.em != nil {
				e.em.Cancelled.Inc()
				e.em.QueueDepth.Add(-1)
			}
			return Result{Err: fmt.Errorf("engine: cancelled while queued: %w", ctx.Err())}, true
		}
		// A batch already claimed the item; the result is imminent.
		<-it.done
		res := it.res
		e.putItem(it)
		return res, true
	}
}

// dispatch is the lane's dispatcher loop: block for the first queued
// item, gather a batch around it, lease one machine, and execute the
// batch as a fused run.
//
// With more than one machine in the pool the batch runs on its own
// goroutine and the dispatcher immediately goes back to gathering, so
// the next batch forms while the current one executes. With a
// single-machine pool that overlap cannot exist — the next acquire would
// block until this very batch releases the lease — so the dispatcher
// runs the batch inline, saving a goroutine handoff per batch on the
// critical path (and reusing one batch buffer forever).
func (ln *lane) dispatch() {
	e := ln.e
	defer e.wg.Done()
	inline := e.poolSize == 1
	var linger *time.Timer
	var buf []*item // reused across batches on the inline path only
	for {
		select {
		case <-e.stop:
			ln.drain()
			return
		case first := <-ln.q:
			batch := ln.gather(append(buf[:0], first), &linger)
			if ln.directOK() {
				// Eligible for the direct substrate: serve the whole
				// batch at host speed, no machine lease. Always inline —
				// there is no lease to overlap with.
				batch = ln.topUp(batch)
				ln.runDirect(batch)
				clear(batch)
				buf = batch[:0]
				continue
			}
			pl := e.poolFor(poolKey{pk: ln.key.pk, cost: ln.key.cost}, ln.cfg)
			l, err := pl.acquire(context.Background(), e.stop)
			// Top up with everything that queued while we waited for the
			// machine: this acquire-then-gather order is what makes the
			// batch size track pool saturation — a busy pool means a long
			// wait means a deep queue, and the freed machine takes all of
			// it (up to MaxBatch) in one fused run.
			batch = ln.topUp(batch)
			if err != nil {
				// Shutdown (or a template build failure): serve the batch
				// without fusion and keep draining.
				for _, it := range batch {
					if ln.claim(it) {
						it.finish(e.doUnbatched(context.Background(), ln.key.pk, ln.cfg, ln.entry, it.req))
					}
				}
				continue
			}
			if e.em != nil {
				e.em.PoolInUse.Add(1)
			}
			e.wg.Add(1) // the dispatcher's own wg slot keeps Close's Wait pending, so this Add cannot race it
			if inline {
				ln.run(pl, l, batch)
				clear(batch)
				buf = batch[:0]
			} else {
				go ln.run(pl, l, batch)
				buf = nil // ownership moved to the runner
			}
		}
	}
}

// gather extends batch up to MaxBatch with whatever the queue holds,
// lingering up to MaxLinger (one timer for the whole batch) when the
// queue runs dry early.
func (ln *lane) gather(batch []*item, linger **time.Timer) []*item {
	max := ln.e.batch.MaxBatch
	armed := false
loop:
	for len(batch) < max {
		select {
		case it := <-ln.q:
			batch = append(batch, it)
			continue
		default:
		}
		if ln.e.batch.MaxLinger <= 0 {
			break
		}
		if !armed {
			if *linger == nil {
				*linger = time.NewTimer(ln.e.batch.MaxLinger)
			} else {
				(*linger).Reset(ln.e.batch.MaxLinger)
			}
			armed = true
		}
		select {
		case it := <-ln.q:
			batch = append(batch, it)
		case <-(*linger).C:
			armed = false
			break loop
		case <-ln.e.stop:
			break loop // shutdown: dispatch what we have, then drain
		}
	}
	if armed && !(*linger).Stop() {
		<-(*linger).C
	}
	return batch
}

// topUp extends batch to MaxBatch with whatever the queue holds right
// now, without waiting.
func (ln *lane) topUp(batch []*item) []*item {
	for len(batch) < ln.e.batch.MaxBatch {
		select {
		case it := <-ln.q:
			batch = append(batch, it)
		default:
			return batch
		}
	}
	return batch
}

// claim attempts to take a queued item for execution, updating the
// queue-side metrics. False means the waiter cancelled first.
func (ln *lane) claim(it *item) bool {
	e := ln.e
	if !it.state.CompareAndSwap(itemQueued, itemClaimed) {
		return false
	}
	if e.em != nil {
		e.em.QueueDepth.Add(-1)
		e.em.QueueWait.Observe(time.Since(it.enq).Nanoseconds())
	}
	return true
}

// run executes one gathered batch as a fused session run on the leased
// machine, delivers every item's result, and releases the lease.
func (ln *lane) run(pl *pool, l *lease, batch []*item) {
	e := ln.e
	var live []*item
	defer func() {
		pl.release(l)
		if e.em != nil {
			e.em.PoolInUse.Add(-1)
		}
		if r := recover(); r != nil {
			// Backstop: a panic in batch assembly must not strand
			// waiters. Kernel panics never reach here (the machine
			// converts them to errors), so this is defensive. Finished
			// items are nil'd out of live immediately — their waiters
			// may already have recycled them, so touching a finished
			// item here would corrupt an unrelated lifecycle.
			err := fmt.Errorf("engine: fused batch panicked: %v", r)
			for _, it := range live {
				if it != nil {
					it.finish(Result{Err: err})
				}
			}
		}
		e.wg.Done()
	}()

	live = batch[:0]
	for _, it := range batch {
		if ln.claim(it) {
			live = append(live, it)
		}
	}
	if len(live) == 0 {
		return
	}
	e.fusedBat.Add(1)
	e.fusedReq.Add(int64(len(live)))
	if e.em != nil {
		e.em.FusedBatches.Inc()
		e.em.FusedRequests.Add(int64(len(live)))
		e.em.BatchSize.Observe(int64(len(live)))
	}

	layout := ln.entry.layout
	sess, err := l.m.OpenSession(layout.Working)
	if err != nil {
		for i, it := range live {
			it.finish(Result{Err: err})
			live[i] = nil
		}
		return
	}

	sc, _ := ln.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	sc.reslice(len(live))

	// Prepare each request's run — re-arming a retired SortRun from the
	// freelist when one is available (the lane serves one configuration,
	// so every retired run's layout matches). A preparation failure (bad
	// keys) fails only its own request, exactly like the unbatched path.
	for i, it := range live {
		var r *core.SortRun
		var err error
		if n := len(sc.free); n > 0 {
			r = sc.free[n-1]
			sc.free[n-1] = nil
			sc.free = sc.free[:n-1]
			err = r.Reuse(it.req.Keys)
		} else {
			r, err = core.NewSortRun(l.m, layout, it.req.Keys, core.Options{
				Protocol:            ln.cfg.Protocol,
				AccountDistribution: ln.cfg.AccountDistribution,
				Phases:              e.phases,
			})
		}
		if err != nil {
			it.finish(Result{Err: err})
			live[i] = nil
			continue
		}
		sc.runs = append(sc.runs, r)
		sc.kernels = append(sc.kernels, r.Kernel())
		sc.fusedIdx = append(sc.fusedIdx, i)
	}
	if len(sc.fusedIdx) == 0 {
		sess.Close()
		ln.recycle(sc)
		return
	}

	results := sc.results[:len(sc.fusedIdx)]
	perNode := sc.perNode[:len(sc.fusedIdx)]
	ln.mu.Lock()
	for i := range perNode {
		if n := len(ln.perNodeFree); n > 0 {
			perNode[i] = ln.perNodeFree[n-1]
			ln.perNodeFree = ln.perNodeFree[:n-1]
		} else {
			perNode[i] = nil
		}
	}
	ln.mu.Unlock()

	completed, err := sess.RunBatch(sc.kernels, results, perNode)
	sess.Close()

	for k := 0; k < completed; k++ {
		li := sc.fusedIdx[k]
		live[li].finish(Result{Keys: sc.runs[k].Gather(), Res: results[k]})
		live[li] = nil
	}
	if err != nil {
		// Sub-run `completed` failed with err; later sub-runs were never
		// attempted. Fail the culprit and re-run the rest individually on
		// this lease — per-request error isolation, same as Batch. An
		// injected casualty instead routes the culprit through recovery,
		// and the individual re-runs fail fast at the dead node's first
		// operation and recover the same way.
		if e.em != nil {
			e.em.AbortedSubRuns.Add(int64(len(sc.fusedIdx) - completed))
		}
		if completed < len(sc.fusedIdx) {
			li := sc.fusedIdx[completed]
			res := Result{Err: err}
			if machine.IsInjectedDeath(err) {
				res = e.recoverFrom(context.Background(), l.m, live[li].req, err)
			}
			live[li].finish(res)
			live[li] = nil
		}
		for _, li := range sc.fusedIdx[completed+1:] {
			res := e.runOnLease(l, ln.entry, live[li].req)
			if res.Err != nil && machine.IsInjectedDeath(res.Err) {
				res = e.recoverFrom(context.Background(), l.m, live[li].req, res.Err)
			}
			live[li].finish(res)
			live[li] = nil
		}
	}

	// Recycle the PerNode maps: completed sub-runs carry theirs in the
	// Result (reused on the next batch, per the documented aliasing
	// rule); unused input buffers go straight back.
	ln.mu.Lock()
	for k := range sc.fusedIdx {
		if k < completed {
			if results[k].PerNode != nil {
				ln.perNodeFree = append(ln.perNodeFree, results[k].PerNode)
			}
		} else if perNode[k] != nil {
			ln.perNodeFree = append(ln.perNodeFree, perNode[k])
		}
	}
	ln.mu.Unlock()
	ln.recycle(sc)
}

// drain serves everything still queued when the engine closes, on the
// dispatcher goroutine via the unbatched path, so no waiter is stranded.
func (ln *lane) drain() {
	e := ln.e
	for {
		select {
		case it := <-ln.q:
			if ln.claim(it) {
				it.finish(e.doUnbatched(context.Background(), ln.key.pk, ln.cfg, ln.entry, it.req))
			}
		default:
			return
		}
	}
}
