// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (reduced trial counts keep `go test -bench=.` quick; the
// full-scale sweeps live in cmd/table1, cmd/table2 and cmd/fig7):
//
//	BenchmarkTable1Partition   — Table 1, mincut distribution
//	BenchmarkTable2Utilization — Table 2, processor utilization
//	BenchmarkFig7a..d          — Figure 7 panels (n = 6, 5, 3, 4)
//	BenchmarkCostModelAgreement, BenchmarkAblation* — DESIGN.md ablations
//
// plus micro-benchmarks of the core operations.
package hypersort

import (
	"fmt"
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/collective"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/diagnosis"
	"hypersort/internal/experiments"
	"hypersort/internal/machine"
	"hypersort/internal/maxsubcube"
	"hypersort/internal/partition"
	"hypersort/internal/recovery"
	"hypersort/internal/routing"
	"hypersort/internal/selection"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// BenchmarkTable1Partition regenerates Table 1 (E1): the distribution of
// mincut values over random fault placements for n = 3..6.
func BenchmarkTable1Partition(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Table1Config{Trials: 500, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2Utilization regenerates Table 2 (E2): processor
// utilization of the partition algorithm versus the maximum fault-free
// subcube baseline.
func BenchmarkTable2Utilization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Table2Config{Trials: 300, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// benchFig7 runs one Figure 7 panel at bench scale.
func benchFig7(b *testing.B, n int) {
	b.Helper()
	b.ReportAllocs()
	cfg := experiments.Fig7Config{
		N:              n,
		Ms:             []int{3200, 32000},
		TrialsPerPoint: 2,
		Seed:           uint64(n),
	}
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig7a regenerates Figure 7(a): execution time vs M on Q_6 (E3).
func BenchmarkFig7a(b *testing.B) { benchFig7(b, 6) }

// BenchmarkFig7b regenerates Figure 7(b): Q_5 (E4).
func BenchmarkFig7b(b *testing.B) { benchFig7(b, 5) }

// BenchmarkFig7c regenerates Figure 7(c): Q_3 (E5).
func BenchmarkFig7c(b *testing.B) { benchFig7(b, 3) }

// BenchmarkFig7d regenerates Figure 7(d): Q_4 (E6).
func BenchmarkFig7d(b *testing.B) { benchFig7(b, 4) }

// BenchmarkCostModelAgreement runs E8: the §3 closed form versus the
// simulator across configurations.
func BenchmarkCostModelAgreement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CostAgreement(7)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Ratio <= 0 {
				b.Fatal("non-positive ratio")
			}
		}
	}
}

// BenchmarkAblationHeuristic runs E9: the formula (1) selection versus
// the worst member of Ψ.
func BenchmarkAblationHeuristic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeuristicValue(6, 2000, 6, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFaultModel runs E10: partial versus total fault
// routing.
func BenchmarkAblationFaultModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultModelComparison(5, 1000, 4, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProtocol runs E11: full-block versus the paper's
// literal half-exchange compare-exchange protocol.
func BenchmarkAblationProtocol(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ProtocolComparison(4, 1000, 2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFTSort measures the end-to-end fault-tolerant sort across
// machine sizes and fault counts.
func BenchmarkFTSort(b *testing.B) {
	b.ReportAllocs()
	for _, cfg := range []struct{ n, r, m int }{
		{4, 1, 4096}, {5, 2, 8192}, {6, 3, 16384}, {6, 5, 16384},
	} {
		b.Run(fmt.Sprintf("n=%d/r=%d/M=%d", cfg.n, cfg.r, cfg.m), func(b *testing.B) {
			b.ReportAllocs()
			rng := xrand.New(uint64(cfg.n*100 + cfg.r))
			faults := cube.NewNodeSet()
			for _, f := range rng.Sample(1<<cfg.n, cfg.r) {
				faults.Add(cube.NodeID(f))
			}
			plan, err := partition.BuildPlan(cfg.n, faults)
			if err != nil {
				b.Fatal(err)
			}
			mach := machine.MustNew(machine.Config{Dim: cfg.n, Faults: faults})
			keys := workload.MustGenerate(workload.Uniform, cfg.m, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.FTSort(mach, plan, keys); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(cfg.m * 8))
		})
	}
}

// BenchmarkEnginePlanCache isolates the component the engine amortizes:
// acquiring a configuration's partition decisions. "fresh" pays the
// cutting-dimension search plus machine construction on every call
// (hypersort.New); "cached" hits the engine's plan cache
// (Engine.Partition after warm-up). Their ratio is the per-request
// saving the plan cache delivers on repeated configurations.
func BenchmarkEnginePlanCache(b *testing.B) {
	b.ReportAllocs()
	cfg := Config{Dim: 6, Faults: []NodeID{0, 1, 2, 4, 8}}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := New(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		eng := NewEngine(EngineConfig{})
		if _, err := eng.Partition(cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Partition(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnginePooledVsFresh compares serving repeated
// same-configuration sort requests fresh (hypersort.New per call: the
// full partition search plus machine construction every time) against a
// warm Engine (cached plan, pooled machine). The "setup-heavy" case —
// small cube, near-maximal fault set, so the cutting-dimension search is
// a visible fraction of a request — is where the cache pays; the
// "simulation-heavy" case bounds the overhead the engine adds when the
// sort itself dominates. EXPERIMENTS.md records the measured ratios.
func BenchmarkEnginePooledVsFresh(b *testing.B) {
	b.ReportAllocs()
	cases := []struct {
		name   string
		cfg    Config
		mCount int
	}{
		{"setup-heavy/n=4/r=3/M=512", Config{Dim: 4, Faults: []NodeID{0, 1, 2}}, 512},
		{"sim-heavy/n=6/r=5/M=4000", Config{Dim: 6, Faults: []NodeID{3, 17, 40, 41, 62}}, 4000},
	}
	for _, tc := range cases {
		keys := genKeys(tc.mCount, 42)
		b.Run("fresh/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := New(tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := s.Sort(keys); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("engine-warm/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			eng := NewEngine(EngineConfig{PoolSize: 1})
			if _, _, err := eng.Sort(tc.cfg, keys); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Sort(tc.cfg, keys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineBatch measures SortBatch throughput on mixed traffic:
// requests round-robined over four configurations, against the fresh
// sequential loop a caller without the engine would write.
func BenchmarkEngineBatch(b *testing.B) {
	b.ReportAllocs()
	configs := []Config{
		{Dim: 4, Faults: []NodeID{0, 1, 2}},
		{Dim: 5, Faults: []NodeID{3, 17}},
		{Dim: 4, Faults: []NodeID{5}, Model: Total},
		{Dim: 5, Faults: []NodeID{0, 12, 25, 31}},
	}
	const perBatch = 32
	reqs := make([]Request, perBatch)
	for i := range reqs {
		reqs[i] = Request{Config: configs[i%len(configs)], Op: OpSort, Keys: genKeys(512, uint64(i))}
	}
	b.Run("fresh-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				s, err := New(r.Config)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := s.Sort(r.Keys); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine-batch", func(b *testing.B) {
		b.ReportAllocs()
		eng := NewEngine(EngineConfig{})
		eng.SortBatch(reqs) // warm the plan cache and pools
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.SortBatch(reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkDirectBatch measures the direct host-speed substrate on the
// exact traffic of BenchmarkEngineBatch: the same 32 mixed-configuration
// requests, served by an engine in ModeDirect (compiled schedules,
// in-memory compare-split, predicted stats) instead of the simulator.
// The ratio of engine-batch to direct-batch ns/op is the substrate's
// speedup; the acceptance bar is >= 3x at GOMAXPROCS=4.
func BenchmarkDirectBatch(b *testing.B) {
	b.ReportAllocs()
	configs := []Config{
		{Dim: 4, Faults: []NodeID{0, 1, 2}},
		{Dim: 5, Faults: []NodeID{3, 17}},
		{Dim: 4, Faults: []NodeID{5}, Model: Total},
		{Dim: 5, Faults: []NodeID{0, 12, 25, 31}},
	}
	const perBatch = 32
	reqs := make([]Request, perBatch)
	for i := range reqs {
		reqs[i] = Request{Config: configs[i%len(configs)], Op: OpSort, Keys: genKeys(512, uint64(i))}
	}
	b.Run("direct-batch", func(b *testing.B) {
		b.ReportAllocs()
		eng := NewEngine(EngineConfig{Mode: ModeDirect})
		for _, res := range eng.SortBatch(reqs) { // warm plans and compiled schedules
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.Direct {
				b.Fatal("warm-up request not served direct")
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.SortBatch(reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkBaselineBitonic measures the fault-free full-cube bitonic sort
// the baseline runs on the maximum fault-free subcube.
func BenchmarkBaselineBitonic(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mach := machine.MustNew(machine.Config{Dim: n})
			keys := workload.MustGenerate(workload.Uniform, 16384, xrand.New(uint64(n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bitonic.Sort(mach, bitonic.FullCube(n), keys, sortutil.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionSearch measures the §2.2 cutting-set search alone.
func BenchmarkPartitionSearch(b *testing.B) {
	b.ReportAllocs()
	for _, cfg := range []struct{ n, r int }{{5, 4}, {6, 5}, {8, 7}, {10, 9}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", cfg.n, cfg.r), func(b *testing.B) {
			b.ReportAllocs()
			rng := xrand.New(uint64(cfg.n))
			h := cube.New(cfg.n)
			faults := cube.NewNodeSet()
			for _, f := range rng.Sample(h.Size(), cfg.r) {
				faults.Add(cube.NodeID(f))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := partition.FindCuttingSet(h, faults); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxSubcubeSearch measures the baseline's reconfiguration step.
func BenchmarkMaxSubcubeSearch(b *testing.B) {
	b.ReportAllocs()
	h := cube.New(6)
	faults := cube.NewNodeSet(0, 21, 42, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, k := maxsubcube.Find(h, faults); k < 0 {
			b.Fatal("no subcube")
		}
	}
}

// BenchmarkDiagnosis measures syndrome collection plus decoding.
func BenchmarkDiagnosis(b *testing.B) {
	b.ReportAllocs()
	h := cube.New(6)
	faults := cube.NewNodeSet(3, 17, 40, 55, 62)
	rng := xrand.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := diagnosis.Collect(h, faults, rng)
		if _, err := diagnosis.Diagnose(h, s, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverySession measures the E15 restart loop at a failure
// rate that forces occasional retries.
func BenchmarkRecoverySession(b *testing.B) {
	b.ReportAllocs()
	keys := workload.MustGenerate(workload.Uniform, 2000, xrand.New(21))
	for i := 0; i < b.N; i++ {
		_, err := recovery.Run(recovery.Config{Dim: 4, MTBF: 20000, Seed: uint64(i)}, keys)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectiveScatterGather measures the E12 host distribution
// round trip over the full Q_6.
func BenchmarkCollectiveScatterGather(b *testing.B) {
	b.ReportAllocs()
	mach := machine.MustNew(machine.Config{Dim: 6})
	members := mach.Healthy()
	group := collective.MustGroup(members)
	shares := make([][]sortutil.Key, len(members))
	for i := range shares {
		shares[i] = make([]sortutil.Key, 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mach.Run(members, func(p *machine.Proc) error {
			r, _ := group.RankOf(p.ID())
			var in [][]sortutil.Key
			if r == 0 {
				in = shares
			}
			mine := collective.Scatter(p, group, 0, 1, in)
			collective.Gather(p, group, 0, 10, mine)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultipathSort measures one congestion-priced multipath sort
// (E24's hot-link cell) end to end: disjoint-path construction, striped
// compare-splits, and the post-run link-occupancy replay.
func BenchmarkMultipathSort(b *testing.B) {
	b.ReportAllocs()
	plan, err := partition.BuildPlanObjective(5, nil, partition.ObjectiveCongestion)
	if err != nil {
		b.Fatal(err)
	}
	hot := map[cube.Edge]machine.Time{cube.NewEdge(0, 1): 800}
	m := machine.MustNew(machine.Config{
		Dim: 5, Cost: machine.PaperCostModel(),
		Routing: machine.RouteMultipath, HotLinks: hot,
	})
	keys := workload.MustGenerate(workload.Uniform, 4000, xrand.New(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.FTSort(m, plan, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkAwareRouting measures the DFS router with dead links.
func BenchmarkLinkAwareRouting(b *testing.B) {
	b.ReportAllocs()
	h := cube.New(8)
	links := cube.NewEdgeSet()
	rng := xrand.New(5)
	for len(links) < 7 {
		a := cube.NodeID(rng.IntN(h.Size()))
		links.Add(a, h.Neighbor(a, rng.IntN(8)))
	}
	rt := routing.NewLinkAwareRouter(h, nil, links)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := cube.NodeID(rng.IntN(h.Size()))
		dst := cube.NodeID(rng.IntN(h.Size()))
		if _, err := rt.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelection measures distributed k-selection against the full
// sort on the same configuration (see internal/selection).
func BenchmarkSelection(b *testing.B) {
	b.ReportAllocs()
	faults := cube.NewNodeSet(3, 17)
	plan, err := partition.BuildPlan(5, faults)
	if err != nil {
		b.Fatal(err)
	}
	mach := machine.MustNew(machine.Config{Dim: 5, Faults: faults})
	keys := workload.MustGenerate(workload.Uniform, 16384, xrand.New(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := selection.KthSmallest(mach, plan, keys, 8000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapSort measures the Step 3 local sort.
func BenchmarkHeapSort(b *testing.B) {
	b.ReportAllocs()
	keys := workload.MustGenerate(workload.Uniform, 4096, xrand.New(3))
	buf := make([]sortutil.Key, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		sortutil.HeapSort(buf, sortutil.Ascending)
	}
	b.SetBytes(int64(len(keys) * 8))
}

// BenchmarkCompareSplit measures the per-exchange kernel operation.
func BenchmarkCompareSplit(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(5)
	mine := workload.MustGenerate(workload.Uniform, 2048, rng)
	theirs := workload.MustGenerate(workload.Uniform, 2048, rng)
	sortutil.HeapSort(mine, sortutil.Ascending)
	sortutil.HeapSort(theirs, sortutil.Ascending)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sortutil.CompareSplit(mine, theirs, i%2 == 0)
	}
}
