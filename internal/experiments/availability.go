package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/machine"
	"hypersort/internal/recovery"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// AvailabilityRow is one MTBF point of the mid-run failure study (E15):
// expected time-to-sorted under the detect/re-partition/restart policy,
// as a multiple of the failure-free sort time.
type AvailabilityRow struct {
	N, M int
	// MTBFRatio is MTBF divided by the failure-free makespan.
	MTBFRatio float64
	MTBF      machine.Time
	Trials    int
	// GaveUp counts sessions that exhausted their restart budget or ran
	// out of partitionable machines.
	GaveUp int
	// MeanAttempts and MeanSlowdown average over completed sessions
	// (slowdown = total time / failure-free makespan).
	MeanAttempts float64
	MeanSlowdown float64
}

// Availability sweeps failure rates around the sort's own duration: an
// MTBF of 10x the sort time rarely interrupts, 1x interrupts about
// every other run, 0.5x forces repeated restarts on an ever more
// degraded machine.
func Availability(n, mKeys, trials int, ratios []float64, seed uint64) ([]AvailabilityRow, error) {
	if len(ratios) == 0 {
		ratios = []float64{10, 3, 1, 0.5}
	}
	rng := xrand.New(seed)
	keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
	// Failure-free reference time.
	base, err := recovery.Run(recovery.Config{Dim: n, MTBF: 0, Seed: seed}, keys)
	if err != nil {
		return nil, err
	}
	ref := base.FinalSort

	var rows []AvailabilityRow
	for _, ratio := range ratios {
		row := AvailabilityRow{N: n, M: mKeys, MTBFRatio: ratio,
			MTBF: machine.Time(ratio * float64(ref)), Trials: trials}
		var attempts, slowdown float64
		completed := 0
		for trial := 0; trial < trials; trial++ {
			res, err := recovery.Run(recovery.Config{
				Dim: n, MTBF: row.MTBF, Seed: rng.Uint64(),
			}, keys)
			if err != nil {
				row.GaveUp++
				continue
			}
			if !sortutil.IsSorted(res.Sorted, sortutil.Ascending) {
				return nil, fmt.Errorf("experiments: availability run produced unsorted output")
			}
			completed++
			attempts += float64(res.Attempts)
			slowdown += float64(res.Total) / float64(ref)
		}
		if completed > 0 {
			row.MeanAttempts = attempts / float64(completed)
			row.MeanSlowdown = slowdown / float64(completed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAvailability renders E15's rows.
func FormatAvailability(rows []AvailabilityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tM\tMTBF/sort\tmean attempts\tmean slowdown\tgave up")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.1fx\t%.2f\t%.2fx\t%d/%d\n",
			r.N, r.M, r.MTBFRatio, r.MeanAttempts, r.MeanSlowdown, r.GaveUp, r.Trials)
	}
	w.Flush()
	return b.String()
}
