package plot

import (
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/experiments"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
)

func sampleSeries() []experiments.Fig7Series {
	return []experiments.Fig7Series{
		{
			Label: "ours n=4 r=1", R: 1, Dim: 4,
			Points: []experiments.Fig7Point{{M: 1000, Makespan: 5000}, {M: 10000, Makespan: 52000}},
		},
		{
			Label: "baseline fault-free Q_3", Dim: 3, Baseline: true,
			Points: []experiments.Fig7Point{{M: 1000, Makespan: 8000}, {M: 10000, Makespan: 81000}},
		},
	}
}

func TestFig7SVGStructure(t *testing.T) {
	svg := Fig7SVG(sampleSeries(), "test <panel> & more")
	for _, want := range []string{
		"<svg", "</svg>",
		"polyline",                 // data lines
		"stroke-dasharray",         // baseline styling
		"test &lt;panel&gt; &amp;", // escaped title
		"ours n=4 r=1",             // legend entries
		"baseline fault-free Q_3",
		"1e3", "1e4", // decade ticks
		"number of keys M",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series: two polylines.
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polyline count = %d", strings.Count(svg, "<polyline"))
	}
	// Four data points: four circles.
	if strings.Count(svg, "<circle") != 4 {
		t.Errorf("circle count = %d", strings.Count(svg, "<circle"))
	}
}

func TestFig7SVGDeterministic(t *testing.T) {
	a := Fig7SVG(sampleSeries(), "t")
	b := Fig7SVG(sampleSeries(), "t")
	if a != b {
		t.Error("SVG output not deterministic")
	}
}

func TestFig7SVGEmpty(t *testing.T) {
	svg := Fig7SVG(nil, "empty")
	if !strings.Contains(svg, "no data") || !strings.Contains(svg, "</svg>") {
		t.Error("empty chart malformed")
	}
	svg = Fig7SVG([]experiments.Fig7Series{{Label: "x"}}, "empty points")
	if !strings.Contains(svg, "no data") {
		t.Error("empty-points chart malformed")
	}
}

func TestFig7SVGDegenerateRange(t *testing.T) {
	// A single point must not divide by zero.
	s := []experiments.Fig7Series{{
		Label:  "single",
		Points: []experiments.Fig7Point{{M: 100, Makespan: machine.Time(100)}},
	}}
	svg := Fig7SVG(s, "one point")
	if !strings.Contains(svg, "<circle") {
		t.Error("single point not rendered")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate range produced NaN/Inf coordinates")
	}
}

func TestFig7SVGFromRealExperiment(t *testing.T) {
	series, err := experiments.Fig7(experiments.Fig7Config{N: 3, Ms: []int{200, 800}, TrialsPerPoint: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svg := Fig7SVG(series, "real")
	if strings.Count(svg, "<polyline") != len(series) {
		t.Errorf("expected %d polylines", len(series))
	}
}

func TestPartitionSVG(t *testing.T) {
	plan, err := partition.BuildPlan(5, cube.NewNodeSet(3, 5, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	svg := PartitionSVG(plan)
	for _, want := range []string{"<svg", "</svg>", "D_β = (0, 1, 3)", "4 fault(s)", "4 dangling", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("partition SVG missing %q", want)
		}
	}
	// 32 nodes, each a circle; faults add cross lines.
	if strings.Count(svg, "<circle") != 32 {
		t.Errorf("circle count = %d", strings.Count(svg, "<circle"))
	}
	// 80 edges on Q_5.
	edgeLines := strings.Count(svg, "stroke=\"#bbb\"")
	if edgeLines != 80 {
		t.Errorf("edge count = %d, want 80", edgeLines)
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN coordinates")
	}
}

func TestPartitionSVGTrivialPlans(t *testing.T) {
	for _, faults := range []cube.NodeSet{nil, cube.NewNodeSet(1)} {
		plan, err := partition.BuildPlan(2, faults)
		if err != nil {
			t.Fatal(err)
		}
		svg := PartitionSVG(plan)
		if !strings.Contains(svg, "</svg>") || strings.Contains(svg, "NaN") {
			t.Errorf("trivial plan SVG malformed")
		}
	}
}

func TestLayoutCubeDistinctPositions(t *testing.T) {
	for n := 0; n <= 6; n++ {
		pos := layoutCube(n, 600, 500)
		seen := map[[2]float64]bool{}
		for _, p := range pos {
			if seen[p] {
				t.Fatalf("Q_%d: duplicate node position %v", n, p)
			}
			seen[p] = true
			if p[0] < -1 || p[0] > 601 || p[1] < -1 || p[1] > 501 {
				t.Fatalf("Q_%d: position %v outside canvas", n, p)
			}
		}
	}
}

func TestHSLToRGB(t *testing.T) {
	r, g, b := hslToRGB(0, 1, 0.5)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("red = %d,%d,%d", r, g, b)
	}
	r, g, b = hslToRGB(120, 1, 0.5)
	if r != 0 || g != 255 || b != 0 {
		t.Errorf("green = %d,%d,%d", r, g, b)
	}
	r, g, b = hslToRGB(240, 1, 0.5)
	if r != 0 || g != 0 || b != 255 {
		t.Errorf("blue = %d,%d,%d", r, g, b)
	}
	if c := subcubeColor(0, 1); c != "#cfe3f5" {
		t.Errorf("single subcube color = %s", c)
	}
}
