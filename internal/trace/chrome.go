package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
)

// This file exports machine trace events in the Chrome trace-event JSON
// format, which Perfetto (https://ui.perfetto.dev) and chrome://tracing
// load directly. Each simulated processor becomes one thread row; event
// timestamps are the machine's virtual clock (cost-model units mapped
// onto microseconds, the format's native unit), so the rendered timeline
// is the simulated schedule, not wall time.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   int64      `json:"ts"`
	Pid  int        `json:"pid"`
	Tid  int64      `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the event payload shown in the Perfetto detail
// pane.
type chromeArgs struct {
	Peer *int64 `json:"peer,omitempty"`
	Keys *int   `json:"keys,omitempty"`
	Tag  *int64 `json:"tag,omitempty"`
	Hops *int   `json:"hops,omitempty"`
	Name string `json:"name,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders events as a Chrome trace-event JSON document into
// w. Events keep their given order (pass a Ring snapshot or
// Recorder.Events() output for deterministic files); thread-name
// metadata rows are emitted for every processor that appears.
func WriteChrome(w io.Writer, events []machine.TraceEvent) error {
	file := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(events)+8),
		DisplayTimeUnit: "ns",
	}

	nodes := map[cube.NodeID]bool{}
	for _, ev := range events {
		nodes[ev.Node] = true
	}
	ids := make([]cube.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  int64(id),
			Args: chromeArgs{Name: fmt.Sprintf("node %d", id)},
		})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Cat: "machine",
			Ph:  "i", // instant event: the machine clock stamps points, not spans
			S:   "t", // thread-scoped
			Ts:  int64(ev.Time),
			Pid: 0,
			Tid: int64(ev.Node),
		}
		keys := ev.Keys
		switch ev.Kind {
		case machine.TraceSend:
			peer, tag, hops := int64(ev.Peer), int64(ev.Tag), ev.Hops
			ce.Name = "send"
			ce.Args = chromeArgs{Peer: &peer, Keys: &keys, Tag: &tag, Hops: &hops}
		case machine.TraceRecv:
			peer, tag := int64(ev.Peer), int64(ev.Tag)
			ce.Name = "recv"
			ce.Args = chromeArgs{Peer: &peer, Keys: &keys, Tag: &tag}
		case machine.TraceCompute:
			ce.Name = "compute"
			ce.Args = chromeArgs{Keys: &keys}
		default:
			ce.Name = ev.Kind.String()
		}
		file.TraceEvents = append(file.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
