package bitonic

import (
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// Protocol selects how a compare-exchange moves keys between partners.
// Both protocols transfer exactly k keys per node per exchange; they
// differ in message count and comparison count.
type Protocol int

const (
	// FullBlock swaps whole chunks in one message each way; each side
	// computes the compare-split locally (k comparisons). The library
	// default.
	FullBlock Protocol = iota
	// HalfExchange is the paper's literal Step 7(a)-(c): each side sends
	// half its chunk, the pairs are compared element-wise (k/2
	// comparisons per side), losers are returned in a second message,
	// and the kept halves are merged (k-1 comparisons). Two messages
	// each way instead of one, ~1.5k comparisons instead of k.
	HalfExchange
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == HalfExchange {
		return "half-exchange"
	}
	return "full-block"
}

// tagsPerExchange returns how many message tags one compare-exchange
// consumes, so skipping nodes stay aligned with exchanging ones.
func (p Protocol) tagsPerExchange() int {
	if p == HalfExchange {
		return 2
	}
	return 1
}

// exchangeSplitHalf runs the paper's two-round protocol with the
// processor at peer. Both chunks are sorted ascending and equally sized;
// pairing is positional against the partner's descending view
// (mine[t] vs theirs[k-1-t]), which is exactly the paper's first-half /
// last-half exchange expressed over ascending storage.
//
// Roles: the keep-low side evaluates pairs t in [h, k) and ends with all
// the pair minima; the keep-high side evaluates pairs t in [0, h) and
// ends with all the maxima (h = k/2). The minima form an
// ascending-then-descending sequence and the maxima a
// descending-then-ascending one; Step 7(c)'s merge of "the two ordered
// subsequences" restores ascending chunk order.
//
// The whole round trip runs on the context's double-buffered arena: pair
// winners are written into the chunk in place (the evaluated indices
// never overlap the half that was sent), losers go to the scratch half,
// received payloads are released back to the machine's pool, and the
// final merge ping-pongs chunk and scratch — no per-step allocation.
func (c *Ctx) exchangeSplitHalf(peer cube.NodeID, tag1, tag2 machine.Tag, keepLow bool) {
	k := len(c.Chunk)
	h := k / 2
	scr := c.scratchFor(k)
	if keepLow {
		// Round 1 (Step 7a): send my first half, receive theirs.
		theirs := c.P.Exchange(peer, tag1, c.Chunk[:h])
		// Round 2 (Step 7b): evaluate pairs t in [h, k): mine[t] vs
		// theirs[k-1-t]; theirs holds their ascending first half
		// [0, k-h), and k-1-t for t in [h,k) spans [0, k-h). The pair
		// minimum lands in chunk[t], the loser in scratch (t order).
		losers := scr[:k-h]
		for t := h; t < k; t++ {
			a, b := c.Chunk[t], theirs[k-1-t]
			if a <= b {
				losers[t-h] = b
			} else {
				c.Chunk[t] = b
				losers[t-h] = a
			}
		}
		c.P.Release(theirs)
		c.P.Compute(k - h)
		c.P.Send(peer, tag2, losers)
		won := c.P.Recv(peer, tag2) // minima of pairs [0, h), in t order
		copy(c.Chunk[:h], won)      // replaces the half sent in round 1
		c.P.Release(won)
		// Step 7c: minima in t order are ascending-then-descending.
		c.Chunk, c.scratch = sortBitonicRunsInto(scr, c.Chunk), c.Chunk
		c.P.Compute(k - 1)
		return
	}
	// Keep-high side: send my first half too (the paper's "last half of
	// the descending view" is the ascending first half), receive theirs.
	theirs := c.P.Exchange(peer, tag1, c.Chunk[:k-h])
	// Evaluate pairs t in [0, h): mine in the descending view is
	// b_desc[t] = chunk[k-1-t]; partner's element is a[t] = theirs[t].
	// The pair maximum lands in chunk[t] (disjoint from the read indices
	// [k-h, k): k-h >= h for every k), the loser in scratch (t order).
	losers := scr[:h]
	for t := 0; t < h; t++ {
		a, b := theirs[t], c.Chunk[k-1-t]
		if a >= b {
			c.Chunk[t] = a
			losers[t] = b
		} else {
			c.Chunk[t] = b
			losers[t] = a
		}
	}
	c.P.Release(theirs)
	c.P.Compute(h)
	c.P.Send(peer, tag2, losers)
	won := c.P.Recv(peer, tag2) // maxima of pairs [h, k), in t order
	copy(c.Chunk[h:], won)
	c.P.Release(won)
	// Maxima in t order are descending-then-ascending (chunk[:h] covers
	// t in [0,h), the received half covers t in [h,k)).
	c.Chunk, c.scratch = sortBitonicRunsInto(scr, c.Chunk), c.Chunk
	c.P.Compute(k - 1)
}

// sortBitonicRuns sorts a sequence consisting of at most two monotone
// runs (ascending-then-descending or descending-then-ascending) into
// ascending order with a single merge — the paper's Step 7(c).
func sortBitonicRuns(xs []sortutil.Key) []sortutil.Key {
	if len(xs) <= 1 {
		return xs
	}
	return sortBitonicRunsInto(make([]sortutil.Key, len(xs)), xs)
}

// sortBitonicRunsInto is sortBitonicRuns writing the result into dst
// (capacity >= len(xs), no aliasing with xs); it returns the filled dst.
// xs may be mutated (runs are normalized to ascending in place before
// the merge) — callers ping-pong it against dst as the next scratch.
func sortBitonicRunsInto(dst, xs []sortutil.Key) []sortutil.Key {
	n := len(xs)
	dst = dst[:n]
	// Find the end of the first monotone run; equal neighbors continue a
	// run in either direction, so skip the leading plateau before fixing
	// the direction and let plateaus extend the run afterwards.
	i := 1
	for i < n && xs[i] == xs[i-1] {
		i++
	}
	if i >= n {
		copy(dst, xs) // constant or single-element sequence
		return dst
	}
	ascending := xs[i] > xs[i-1]
	i++
	for i < n && (xs[i] == xs[i-1] || (xs[i] > xs[i-1]) == ascending) {
		i++
	}
	first, second := xs[:i], xs[i:]
	// Normalize both runs to ascending; the second run is monotone by
	// the two-run precondition, so a single sortedness probe suffices.
	if !ascending {
		sortutil.Reverse(first)
	}
	if !sortutil.IsSorted(second, sortutil.Ascending) {
		sortutil.Reverse(second)
	}
	return sortutil.MergeInto(dst, first, second, sortutil.Ascending)
}
