package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/cube"
	"hypersort/internal/maxsubcube"
	"hypersort/internal/partition"
	"hypersort/internal/xrand"
)

// Table2Row compares processor utilization (working processors as a
// fraction of healthy processors) between the paper's partition approach
// and the maximum dimensional fault-free subcube baseline, for one (n, r)
// configuration. Best and Worst are taken over the sampled fault
// placements, matching the paper's best-case/worst-case columns.
type Table2Row struct {
	N, R                    int
	Trials                  int
	OursBest, OursWorst     float64
	BaseBest, BaseWorst     float64
	OursMean, BaseMean      float64
	MincutBest, MincutWorst int
}

// Table2Config parameterizes the sweep; zero values take the paper's
// ranges (n = 3..6, r = 1..n-1, 10000 trials).
type Table2Config struct {
	MinN, MaxN int
	Trials     int
	Seed       uint64
}

func (c *Table2Config) fill() {
	if c.MaxN == 0 {
		c.MinN, c.MaxN = 3, 6
	}
	if c.Trials == 0 {
		c.Trials = 10000
	}
}

// Table2 reproduces the paper's Table 2: utilization of the proposed
// partition algorithm versus the maximum fault-free subcube method over
// random fault placements.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	var rows []Table2Row
	for n := cfg.MinN; n <= cfg.MaxN; n++ {
		h := cube.New(n)
		for r := 1; r <= n-1; r++ {
			row := Table2Row{N: n, R: r, Trials: cfg.Trials,
				OursWorst: 2, BaseWorst: 2, MincutBest: n + 1, MincutWorst: -1}
			for trial := 0; trial < cfg.Trials; trial++ {
				faults := sampleFaults(h, r, rng)
				plan, err := partition.BuildPlan(n, faults)
				if err != nil {
					return nil, fmt.Errorf("experiments: n=%d r=%d: %w", n, r, err)
				}
				ours := plan.Utilization()
				base := maxsubcube.Utilization(h, faults)
				row.OursMean += ours
				row.BaseMean += base
				if ours > row.OursBest {
					row.OursBest = ours
				}
				if ours < row.OursWorst {
					row.OursWorst = ours
				}
				if base > row.BaseBest {
					row.BaseBest = base
				}
				if base < row.BaseWorst {
					row.BaseWorst = base
				}
				if plan.Mincut() < row.MincutBest {
					row.MincutBest = plan.Mincut()
				}
				if plan.Mincut() > row.MincutWorst {
					row.MincutWorst = plan.Mincut()
				}
			}
			row.OursMean /= float64(cfg.Trials)
			row.BaseMean /= float64(cfg.Trials)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable2 renders the comparison as an aligned text table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tours best\tours worst\tours mean\tbaseline best\tbaseline worst\tbaseline mean")
	for _, row := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			row.N, row.R,
			100*row.OursBest, 100*row.OursWorst, 100*row.OursMean,
			100*row.BaseBest, 100*row.BaseWorst, 100*row.BaseMean)
	}
	w.Flush()
	return b.String()
}
