// Package diagnosis implements PMC-model system-level fault diagnosis on
// hypercubes, making executable the paper's assumption that "the
// locations of the faulty processors ... are known before running the
// proposed fault-tolerant sorting algorithm" (it cites the off-line
// diagnosis of Banerjee [3] and the n-cube diagnosis algorithms of
// Armstrong & Gray [2] and Bhat [5]).
//
// In the PMC (Preparata-Metze-Chien) model each processor tests its n
// neighbors. A fault-free tester reports faithfully: pass iff the tested
// neighbor is fault-free. A faulty tester's reports are arbitrary — here
// drawn from a deterministic adversarial stream so tests can exercise
// lying testers reproducibly. The n-dimensional hypercube is one-step
// n-diagnosable, so with the paper's r <= n-1 faults the syndrome
// determines the fault set uniquely; Diagnose recovers it.
package diagnosis

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

// Syndrome records every directed neighbor test: Fail[u][d] reports
// whether processor u's test of its dimension-d neighbor failed.
type Syndrome struct {
	n    int
	Fail [][]bool
}

// NewSyndrome allocates an all-pass syndrome for Q_n.
func NewSyndrome(n int) *Syndrome {
	f := make([][]bool, 1<<n)
	for i := range f {
		f[i] = make([]bool, n)
	}
	return &Syndrome{n: n, Fail: f}
}

// Dim returns the cube dimension the syndrome covers.
func (s *Syndrome) Dim() int { return s.n }

// Result returns u's verdict on its dimension-d neighbor (true = fail).
func (s *Syndrome) Result(u cube.NodeID, d int) bool { return s.Fail[u][d] }

// Collect simulates one off-line test round: every processor tests all n
// neighbors. Fault-free testers report the truth; faulty testers report
// bits drawn from liar (the PMC model's arbitrary outcomes). Passing the
// same seed reproduces the same lies.
func Collect(h cube.Hypercube, faults cube.NodeSet, liar *xrand.RNG) *Syndrome {
	s := NewSyndrome(h.Dim())
	for u := cube.NodeID(0); u < cube.NodeID(h.Size()); u++ {
		for d := 0; d < h.Dim(); d++ {
			v := h.Neighbor(u, d)
			if faults.Has(u) {
				s.Fail[u][d] = liar.Uint64()&1 == 1
			} else {
				s.Fail[u][d] = faults.Has(v)
			}
		}
	}
	return s
}

// Diagnose decodes a syndrome, returning the unique fault set of size at
// most maxFaults consistent with it. It requires maxFaults <= n (the
// hypercube's one-step diagnosability bound); beyond that the syndrome
// may admit multiple explanations and decoding refuses rather than guess.
//
// Decoding seeds a hypothesis at each processor in turn: assume the seed
// fault-free, closure-propagate its verdicts (everything a trusted node
// passes is trusted, everything it fails is faulty), and accept the first
// closure that is globally consistent and small enough. With r <= n-1
// faults the fault-free survivors of Q_n are connected, so the closure
// from any fault-free seed covers exactly the fault-free set, and
// one-step diagnosability makes the accepted answer unique.
func Diagnose(h cube.Hypercube, s *Syndrome, maxFaults int) (cube.NodeSet, error) {
	if s.Dim() != h.Dim() {
		return nil, fmt.Errorf("diagnosis: syndrome for Q_%d used on Q_%d", s.Dim(), h.Dim())
	}
	if maxFaults < 0 || maxFaults > h.Dim() {
		return nil, fmt.Errorf("diagnosis: maxFaults %d outside one-step diagnosability [0,%d]", maxFaults, h.Dim())
	}
	for seed := cube.NodeID(0); seed < cube.NodeID(h.Size()); seed++ {
		if faults, ok := tryHypothesis(h, s, seed, maxFaults); ok {
			return faults, nil
		}
	}
	return nil, fmt.Errorf("diagnosis: no consistent fault set of size <= %d", maxFaults)
}

// verdict is a node's status inside one hypothesis.
type verdict uint8

const (
	unknown verdict = iota
	trusted
	accused
)

// tryHypothesis grows the hypothesis "seed is fault-free" to a full
// labeling and checks it explains the whole syndrome with few enough
// faults.
func tryHypothesis(h cube.Hypercube, s *Syndrome, seed cube.NodeID, maxFaults int) (cube.NodeSet, bool) {
	status := make([]verdict, h.Size())
	status[seed] = trusted
	queue := []cube.NodeID{seed}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for d := 0; d < h.Dim(); d++ {
			v := h.Neighbor(u, d)
			want := trusted
			if s.Result(u, d) {
				want = accused
			}
			switch status[v] {
			case unknown:
				status[v] = want
				if want == trusted {
					queue = append(queue, v)
				}
			case trusted, accused:
				if status[v] != want {
					return nil, false // two trusted nodes disagree
				}
			}
		}
	}
	faults := cube.NewNodeSet()
	for id, st := range status {
		switch st {
		case accused:
			faults.Add(cube.NodeID(id))
		case unknown:
			// Unreached nodes are not vouched for by any trusted node.
			// Under the connectivity guarantee of r <= n-1 this only
			// happens when the hypothesis is wrong (seed faulty), or the
			// node is genuinely cut off — count it faulty and let the
			// size bound arbitrate.
			faults.Add(cube.NodeID(id))
		}
	}
	if len(faults) > maxFaults {
		return nil, false
	}
	// Full consistency check: every trusted node's every verdict matches.
	for u := cube.NodeID(0); u < cube.NodeID(h.Size()); u++ {
		if status[u] != trusted {
			continue
		}
		for d := 0; d < h.Dim(); d++ {
			if s.Result(u, d) != faults.Has(h.Neighbor(u, d)) {
				return nil, false
			}
		}
	}
	return faults, true
}
