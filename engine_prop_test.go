// Randomized property suite for Engine and Sorter, in the style of the
// resilient-sorting literature's adversarial validation (Geissmann et
// al.; Kopelowitz & Talmon): seeded random configurations and key
// patterns, every result checked for sortedness, multiset preservation,
// and agreement with the host's sort.Slice — sequentially, through the
// Engine, and through concurrent SortBatch.
package hypersort

import (
	"fmt"
	"sort"
	"testing"

	"hypersort/internal/xrand"
)

// propScenario is one randomized trial: a machine configuration plus an
// input key slice.
type propScenario struct {
	name string
	cfg  Config
	keys []Key
}

// randomScenarios derives count seeded scenarios with dim in [1,8],
// fault sets of up to dim-1 processors, and key slices spanning empty,
// duplicate-heavy, and adversarial patterns.
func randomScenarios(seed uint64, count int) []propScenario {
	rng := xrand.New(seed)
	var out []propScenario
	for i := 0; i < count; i++ {
		dim := 1 + rng.IntN(8)
		r := rng.IntN(dim) // up to dim-1 faults
		faults := make([]NodeID, 0, r)
		for _, f := range rng.Sample(1<<dim, r) {
			faults = append(faults, NodeID(f))
		}
		n := rng.IntN(301)
		keys := make([]Key, n)
		pattern := rng.IntN(6)
		for j := range keys {
			switch pattern {
			case 0: // uniform random
				keys[j] = Key(rng.IntN(1 << 30))
			case 1: // heavy duplicates
				keys[j] = Key(rng.IntN(4))
			case 2: // already sorted
				keys[j] = Key(j)
			case 3: // reverse sorted
				keys[j] = Key(n - j)
			case 4: // organ pipe (adversarial for merge directions)
				if j < n/2 {
					keys[j] = Key(j)
				} else {
					keys[j] = Key(n - j)
				}
			case 5: // all equal, including negative values
				keys[j] = -7
			}
		}
		if rng.IntN(10) == 0 {
			keys = nil // explicit empty input
		}
		out = append(out, propScenario{
			name: fmt.Sprintf("trial%d/dim%d/r%d/pat%d/n%d", i, dim, r, pattern, len(keys)),
			cfg:  Config{Dim: dim, Faults: faults},
			keys: keys,
		})
	}
	return out
}

func refSorted(keys []Key) []Key {
	out := append([]Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkSorted asserts got is sorted, is a multiset permutation of in,
// and equals the reference sort.Slice output. (Equality to the sorted
// reference implies the first two; all three are asserted so a failure
// names the violated property.)
func checkSorted(t *testing.T, in, got []Key) {
	t.Helper()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("output not sorted: %v", got)
	}
	counts := make(map[Key]int, len(in))
	for _, k := range in {
		counts[k]++
	}
	for _, k := range got {
		counts[k]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("multiset violated: key %d count off by %d", k, c)
		}
	}
	want := refSorted(in)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRandomizedSortProperties runs each scenario through a fresh Sorter
// and through a shared Engine, then replays all scenarios as one
// concurrent SortBatch and demands identical results to the sequential
// calls.
func TestRandomizedSortProperties(t *testing.T) {
	scenarios := randomScenarios(0xFEED, 40)
	eng := NewEngine(EngineConfig{})

	sequential := make([][]Key, len(scenarios))
	for i, sc := range scenarios {
		sc := sc
		i := i
		t.Run("sorter/"+sc.name, func(t *testing.T) {
			s, err := New(sc.cfg)
			if err != nil {
				t.Fatalf("New(%+v): %v", sc.cfg, err)
			}
			got, _, err := s.Sort(sc.keys)
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, sc.keys, got)
		})
		t.Run("engine/"+sc.name, func(t *testing.T) {
			got, _, err := eng.Sort(sc.cfg, sc.keys)
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, sc.keys, got)
			sequential[i] = got
		})
	}

	reqs := make([]Request, len(scenarios))
	for i, sc := range scenarios {
		reqs[i] = Request{Config: sc.cfg, Op: OpSort, Keys: sc.keys}
	}
	results := eng.SortBatch(reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch %s: %v", scenarios[i].name, res.Err)
		}
		if len(res.Keys) != len(sequential[i]) {
			t.Fatalf("batch %s: %d keys, sequential %d", scenarios[i].name, len(res.Keys), len(sequential[i]))
		}
		for j := range res.Keys {
			if res.Keys[j] != sequential[i][j] {
				t.Fatalf("batch %s diverges from sequential at %d", scenarios[i].name, j)
			}
		}
	}
}

// TestRandomizedSelectionProperties drives the engine's order-statistic
// ops through the pool against host references.
func TestRandomizedSelectionProperties(t *testing.T) {
	rng := xrand.New(0xBEEF)
	eng := NewEngine(EngineConfig{})
	for i := 0; i < 12; i++ {
		dim := 2 + rng.IntN(5)
		r := rng.IntN(dim)
		faults := make([]NodeID, 0, r)
		for _, f := range rng.Sample(1<<dim, r) {
			faults = append(faults, NodeID(f))
		}
		cfg := Config{Dim: dim, Faults: faults}
		n := 1 + rng.IntN(400)
		keys := make([]Key, n)
		for j := range keys {
			keys[j] = Key(rng.IntN(1000)) - 500
		}
		ref := refSorted(keys)
		k := 1 + rng.IntN(n)

		got, _, err := eng.KthSmallest(cfg, keys, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref[k-1] {
			t.Fatalf("trial %d: kth(%d) = %d, want %d", i, k, got, ref[k-1])
		}
		top, _, err := eng.TopK(cfg, keys, k)
		if err != nil {
			t.Fatal(err)
		}
		for j := range top {
			if top[j] != ref[n-k+j] {
				t.Fatalf("trial %d: top-%d mismatch at %d", i, k, j)
			}
		}
	}
}
