package engine

import (
	"slices"
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// directTestKeys generates a deterministic mixed workload.
func directTestKeys(n int, seed uint64) []sortutil.Key {
	return workload.MustGenerate(workload.Uniform, n, xrand.New(seed))
}

// TestModeDirectServesSortsWithoutMachines pins the tentpole contract:
// in ModeDirect an eligible sort is served by the direct substrate —
// same sorted output as a simulated engine, a predicted Result, the
// Direct flag set, and no simulated machine ever constructed.
func TestModeDirectServesSortsWithoutMachines(t *testing.T) {
	cfg := Config{Dim: 4, Faults: []cube.NodeID{0, 7, 9}}
	keys := directTestKeys(700, 1)

	dEng := New(1, 1)
	defer dEng.Close()
	dEng.SetMode(ModeDirect)
	dRes := dEng.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if dRes.Err != nil {
		t.Fatal(dRes.Err)
	}
	if !dRes.Direct {
		t.Fatal("ModeDirect sort did not set Result.Direct")
	}

	sEng := New(1, 1)
	defer sEng.Close()
	sRes := sEng.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if sRes.Err != nil {
		t.Fatal(sRes.Err)
	}
	if sRes.Direct {
		t.Fatal("default-mode sort set Result.Direct")
	}
	if !slices.Equal(dRes.Keys, sRes.Keys) {
		t.Fatal("direct output differs from simulated output")
	}

	m := dEng.Metrics()
	if m.MachinesBuilt != 0 || m.MachinesCloned != 0 {
		t.Errorf("direct engine built %d machines (cloned %d), want 0", m.MachinesBuilt, m.MachinesCloned)
	}
	if m.DirectRequests != 1 {
		t.Errorf("DirectRequests = %d, want 1", m.DirectRequests)
	}
	if m.DirectBatches != 1 {
		t.Errorf("DirectBatches = %d, want 1", m.DirectBatches)
	}
	if dRes.Res.Makespan <= 0 || dRes.Res.Comparisons <= 0 {
		t.Errorf("predicted Result looks empty: %+v", dRes.Res)
	}
}

// TestModeDirectIneligibleOps pins the eligibility rules: selection ops,
// the half-exchange protocol, and distribution accounting all stay on
// the simulator even in ModeDirect.
func TestModeDirectIneligibleOps(t *testing.T) {
	e := New(1, 1)
	defer e.Close()
	e.SetMode(ModeDirect)
	cfg := Config{Dim: 3, Faults: []cube.NodeID{2}}
	keys := directTestKeys(200, 2)

	if res := e.Do(Request{Config: cfg, Op: OpMedian, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	} else if res.Direct {
		t.Error("selection op served direct")
	}
	half := cfg
	half.Protocol = bitonic.HalfExchange
	if res := e.Do(Request{Config: half, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	} else if res.Direct {
		t.Error("half-exchange sort served direct")
	}
	acct := cfg
	acct.AccountDistribution = true
	if res := e.Do(Request{Config: acct, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	} else if res.Direct {
		t.Error("AccountDistribution sort served direct")
	}
	if m := e.Metrics(); m.DirectRequests != 0 {
		t.Errorf("DirectRequests = %d, want 0", m.DirectRequests)
	}
	if m := e.Metrics(); m.MachinesBuilt == 0 {
		t.Error("ineligible requests built no machines — they cannot have simulated")
	}
}

// TestDirectChaosFallback pins the armed-chaos invariant: the simulator
// is the only execution path while injections are armed, and disarming
// restores direct service without rebuilding anything.
func TestDirectChaosFallback(t *testing.T) {
	e := New(1, 1)
	defer e.Close()
	e.SetMode(ModeDirect)
	cfg := Config{Dim: 3}
	keys := directTestKeys(300, 3)

	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil || !res.Direct {
		t.Fatalf("pre-arm sort: direct=%v err=%v", res.Direct, res.Err)
	}
	// Arm a kill far in the virtual future: the run recovers or completes
	// — either way it must run on the simulator.
	if err := e.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 5, At: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Direct {
		t.Fatal("sort served direct while chaos injections were armed")
	}
	if err := e.DisarmFaults(cfg); err != nil {
		t.Fatal(err)
	}
	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil || !res.Direct {
		t.Fatalf("post-disarm sort: direct=%v err=%v", res.Direct, res.Err)
	}
	if m := e.Metrics(); m.DirectRequests != 2 {
		t.Errorf("DirectRequests = %d, want 2 (pre-arm and post-disarm only)", m.DirectRequests)
	}
}

// TestModeAutoTraceFallback pins auto-mode semantics: with an
// engine-wide trace hook attached auto serves the simulator (direct
// runs emit no machine events); without one it serves direct.
func TestModeAutoTraceFallback(t *testing.T) {
	cfg := Config{Dim: 3}
	keys := directTestKeys(120, 4)

	traced := New(1, 1)
	defer traced.Close()
	traced.SetTrace(func(machine.TraceEvent) {})
	traced.SetMode(ModeAuto)
	if res := traced.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	} else if res.Direct {
		t.Error("auto mode served direct despite an attached trace hook")
	}

	plain := New(1, 1)
	defer plain.Close()
	plain.SetMode(ModeAuto)
	if res := plain.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	} else if !res.Direct {
		t.Error("auto mode without trace did not serve direct")
	}
}

// TestDirectOracleSampling exercises the shadow-oracle loop: with
// SetOracleSample(1) every direct result is re-executed on a simulated
// machine and cross-checked. Zero parity breaks expected, and the
// sampled runs must show up in both Metrics and the obs bundle.
func TestDirectOracleSampling(t *testing.T) {
	e := New(1, 1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Instrument(reg)
	e.SetMode(ModeDirect)
	e.SetOracleSample(1)
	cfg := Config{Dim: 4, Faults: []cube.NodeID{5}}
	for i := 0; i < 8; i++ {
		res := e.Do(Request{Config: cfg, Op: OpSort, Keys: directTestKeys(150+i, uint64(i))})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.Direct {
			t.Fatal("oracle-sampled sort lost its Direct flag")
		}
	}
	m := e.Metrics()
	if m.OracleRuns != 8 {
		t.Errorf("OracleRuns = %d, want 8", m.OracleRuns)
	}
	if m.ParityBreaks != 0 {
		t.Errorf("ParityBreaks = %d, want 0", m.ParityBreaks)
	}
	if m.MachinesBuilt == 0 {
		t.Error("oracle sampling built no simulated machine")
	}
}

// TestModeDirectUnbatched covers the batching-disabled route: eligible
// sorts take the direct substrate straight from do(), no lanes involved.
func TestModeDirectUnbatched(t *testing.T) {
	e := NewOpts(1, 1, BatchOptions{Disabled: true})
	defer e.Close()
	e.SetMode(ModeDirect)
	cfg := Config{Dim: 4}
	keys := directTestKeys(500, 5)
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Direct {
		t.Fatal("unbatched eligible sort not served direct")
	}
	m := e.Metrics()
	if m.MachinesBuilt != 0 {
		t.Errorf("MachinesBuilt = %d, want 0", m.MachinesBuilt)
	}
	if m.DirectBatches != 0 {
		t.Errorf("DirectBatches = %d, want 0 (no lanes with batching disabled)", m.DirectBatches)
	}
	if m.DirectRequests != 1 {
		t.Errorf("DirectRequests = %d, want 1", m.DirectRequests)
	}
}

// TestDirectBatchCoalescing drives concurrent direct-mode sorts through
// the dispatcher and checks they coalesce into direct batches with
// bit-identical results to the simulator.
func TestDirectBatchCoalescing(t *testing.T) {
	e := New(1, 8)
	defer e.Close()
	e.SetMode(ModeDirect)
	cfg := Config{Dim: 4, Faults: []cube.NodeID{3}}

	const n = 64
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Config: cfg, Op: OpSort, Keys: directTestKeys(400, uint64(i))}
	}
	results := e.Batch(reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if !res.Direct {
			t.Fatalf("request %d not served direct", i)
		}
		want := slices.Clone(reqs[i].Keys)
		slices.Sort(want)
		if !slices.Equal(res.Keys, want) {
			t.Fatalf("request %d mis-sorted", i)
		}
	}
	m := e.Metrics()
	if m.DirectRequests != n {
		t.Errorf("DirectRequests = %d, want %d", m.DirectRequests, n)
	}
	if m.DirectBatches == 0 || m.DirectBatches > n {
		t.Errorf("DirectBatches = %d, want in [1, %d]", m.DirectBatches, n)
	}
	if m.MachinesBuilt != 0 {
		t.Errorf("MachinesBuilt = %d, want 0", m.MachinesBuilt)
	}
}
