package diagnosis

// Online diagnosis: the live-fault counterpart of Collect. Collect
// simulates an off-line test round against a fault set the host already
// knows; OnlineRound instead runs a real SPMD probe kernel on a machine
// that just suffered injected casualties, so the *surviving processors
// themselves* build the syndrome — each node tests its n neighbors with
// a one-key probe exchange and records pass/fail in its own syndrome row
// — and the host decodes it with the same Diagnose used for the static
// model. The probe round costs virtual time like any kernel, which is
// how recovery latency gets a principled simulated component.

import (
	"fmt"
	"maps"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

// probeTagBase offsets probe tags from kernel tags; probes use tag
// probeTagBase+d for the dimension-d exchange.
const probeTagBase machine.Tag = 0x7D00

// OnlineResult is one online diagnosis round's outcome.
type OnlineResult struct {
	// Faults is the agreed processor fault set: configured faults plus
	// the newly diagnosed casualties.
	Faults cube.NodeSet
	// NewLinks lists links that died since the machine was configured
	// (fired KillLink injections). PMC syndromes cannot express link
	// faults, so these are sender-identified rather than decoded.
	NewLinks [][2]cube.NodeID
	// RoundTime is the probe round's virtual makespan — the simulated
	// cost of diagnosis, one component of recovery latency.
	RoundTime machine.Time
	// Confirmed reports whether the PMC syndrome decode succeeded and
	// agreed with the survivors' observations. False means the round fell
	// back to the sender-identified fault set: link casualties or a fault
	// count beyond one-step diagnosability, both outside the PMC model.
	Confirmed bool
}

// OnlineRound runs one neighbor-test round on m's surviving processors
// and decodes the resulting syndrome. Survivors probe every neighbor
// with a one-key exchange; a dead neighbor or severed link fails the
// test. Rows of dead processors are filled with deterministic adversarial
// bits from seed (the PMC model's arbitrary verdicts), so the same seed
// reproduces the same round bit for bit.
//
// The decode is attempted only inside the PMC model's jurisdiction — no
// dead links and at most dim processor faults; outside it the round
// still measures its virtual time but reports the sender-identified
// fault set with Confirmed=false.
func OnlineRound(m *machine.Machine, seed uint64) (OnlineResult, error) {
	h := m.Cube()
	n := h.Dim()
	survivors := m.Survivors()
	if len(survivors) == 0 {
		return OnlineResult{}, fmt.Errorf("diagnosis: no surviving processors to run a test round")
	}
	s := NewSyndrome(n)
	kernel := func(p *machine.Proc) error {
		row := s.Fail[p.ID()]
		probe := []sortutil.Key{sortutil.Key(p.ID())}
		for d := 0; d < n; d++ {
			v := h.Neighbor(p.ID(), d)
			// A testable neighbor is alive (participating) and reachable
			// over a live edge. Both endpoints evaluate the same symmetric
			// predicate, so probe exchanges always pair up and the round
			// cannot deadlock.
			if !p.InGroup(v) || p.LinkDead(p.ID(), v) {
				row[d] = true
				continue
			}
			got := p.Exchange(v, probeTagBase+machine.Tag(d), probe)
			// One comparison to evaluate the echoed identity.
			p.Compute(1)
			row[d] = len(got) != 1 || got[0] != sortutil.Key(v)
			p.Release(got)
		}
		return nil
	}
	res, err := m.Run(survivors, kernel)
	if err != nil {
		return OnlineResult{}, fmt.Errorf("diagnosis: probe round failed: %w", err)
	}

	firedNodes, firedLinks := m.FiredFaults()
	senderIdentified := m.Faults().Clone()
	for _, id := range firedNodes {
		senderIdentified.Add(id)
	}
	out := OnlineResult{
		Faults:    senderIdentified,
		NewLinks:  firedLinks,
		RoundTime: res.Makespan,
	}

	// Dead processors report arbitrary verdicts; draw them from the
	// seeded adversarial stream in address order so the syndrome is a
	// pure function of (machine state, seed).
	liar := xrand.New(seed)
	for u := cube.NodeID(0); u < cube.NodeID(h.Size()); u++ {
		if senderIdentified.Has(u) {
			for d := 0; d < n; d++ {
				s.Fail[u][d] = liar.Uint64()&1 == 1
			}
		}
	}

	if len(firedLinks) == 0 && len(m.LinkFaults()) == 0 && len(senderIdentified) <= n {
		decoded, derr := Diagnose(h, s, n)
		if derr == nil && maps.Equal(decoded, senderIdentified) {
			out.Faults = decoded
			out.Confirmed = true
		}
	}
	return out, nil
}
