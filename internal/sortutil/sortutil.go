// Package sortutil implements the sequential sorting machinery the
// fault-tolerant hypercube sort is built from: heapsort (the paper's
// Step 3 local sort), bitonic sequence primitives, two-way merges, and the
// compare-split operation each processor pair performs during a
// distributed bitonic stage.
//
// Keys are int64 with a reserved +infinity used as the paper's dummy key:
// when M elements do not divide evenly over the working processors, the
// short processors are padded with Inf so every processor holds the same
// count, and dummies sort to the top of the global order.
package sortutil

import (
	"math"
	"slices"
)

// Key is one sortable element. The paper sorts abstract keys; int64 covers
// the experiments and keeps compare-split allocation-free.
type Key int64

// Inf is the dummy key (the paper's infinity) used to pad uneven
// distributions. It must compare greater than every real key.
const Inf Key = math.MaxInt64

// NegInf is the symmetric lower sentinel, handy for descending padding in
// tests.
const NegInf Key = math.MinInt64

// Direction selects a sort order. The paper alternates directions by the
// parity of a processor's reindexed address.
type Direction bool

const (
	// Ascending sorts smallest-first.
	Ascending Direction = true
	// Descending sorts largest-first.
	Descending Direction = false
)

// String implements fmt.Stringer for debug output.
func (d Direction) String() string {
	if d == Ascending {
		return "ascending"
	}
	return "descending"
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction { return !d }

// ForParity returns the paper's direction rule: even (reindexed) addresses
// sort ascending, odd addresses descending.
func ForParity(addr int) Direction {
	if addr%2 == 0 {
		return Ascending
	}
	return Descending
}

// InOrder reports whether a may precede b under direction d.
func (d Direction) InOrder(a, b Key) bool {
	if d == Ascending {
		return a <= b
	}
	return a >= b
}

// HeapSort sorts xs in place in the given direction using a binary
// max-heap (min-heap for descending). The paper's Step 3 explicitly uses
// heapsort for the initial local sort; its worst-case cost
// ((M/N' - 1) log(M/N') + 1) comparisons is the first term of the cost
// model, so the implementation mirrors the textbook algorithm rather than
// delegating to sort.Slice.
func HeapSort(xs []Key, d Direction) {
	n := len(xs)
	if n < 2 {
		return
	}
	// Build phase: sift down from the last internal node.
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n, d)
	}
	// Extraction phase: repeatedly move the extreme element to the end.
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end, d)
	}
}

// siftDown restores the heap property for the subtree rooted at i within
// xs[:end]. For Ascending the heap is a max-heap (so extraction fills the
// tail with maxima); for Descending a min-heap.
func siftDown(xs []Key, i, end int, d Direction) {
	for {
		child := 2*i + 1
		if child >= end {
			return
		}
		if right := child + 1; right < end && dominates(xs[right], xs[child], d) {
			child = right
		}
		if !dominates(xs[child], xs[i], d) {
			return
		}
		xs[i], xs[child] = xs[child], xs[i]
		i = child
	}
}

// dominates reports whether a should sit above b in the heap for the
// requested final direction.
func dominates(a, b Key, d Direction) bool {
	if d == Ascending {
		return a > b
	}
	return a < b
}

// SortHost sorts xs in place in the given direction at host speed using
// the standard library's pattern-defeating quicksort. It produces exactly
// the same slice as HeapSort (keys are totally ordered values, so the
// sorted permutation is unique), only faster on the host. Simulation
// kernels call this for the *execution* of a local sort while still
// charging the paper's analytic heapsort comparison count to the virtual
// clock — host speed and simulated cost are independent axes, and the
// cost model follows the paper's Step 3 heapsort regardless of how the
// host happens to produce the sorted chunk (see bitonic.LocalSort and
// the conformance test pinning the equivalence).
func SortHost(xs []Key, d Direction) {
	slices.Sort(xs)
	if d == Descending {
		Reverse(xs)
	}
}

// IsSorted reports whether xs is ordered in direction d (non-strictly).
func IsSorted(xs []Key, d Direction) bool {
	for i := 1; i < len(xs); i++ {
		if !d.InOrder(xs[i-1], xs[i]) {
			return false
		}
	}
	return true
}

// IsBitonic reports whether xs is a bitonic sequence: a cyclic rotation of
// a sequence that first ascends then descends. Every sequence of length
// <= 2 is bitonic.
func IsBitonic(xs []Key) bool {
	n := len(xs)
	if n <= 2 {
		return true
	}
	// Count the number of direction inversions around the cycle; bitonic
	// sequences have at most two sign changes cyclically.
	changes := 0
	prevSign := 0
	for i := 0; i < n; i++ {
		a, b := xs[i], xs[(i+1)%n]
		var sign int
		switch {
		case a < b:
			sign = 1
		case a > b:
			sign = -1
		default:
			continue // equal neighbors never add a change
		}
		if prevSign != 0 && sign != prevSign {
			changes++
		}
		prevSign = sign
	}
	return changes <= 2
}

// Reverse reverses xs in place.
func Reverse(xs []Key) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Merge merges two slices, each already sorted in direction d, into a
// freshly allocated slice sorted in direction d. This is the paper's
// Step 7(c) merge of the kept half with the received half.
func Merge(a, b []Key, d Direction) []Key {
	out := make([]Key, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if d.InOrder(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// MergeInto is Merge writing into dst (which must have capacity
// len(a)+len(b)); it returns the filled dst. Kernels use it to avoid
// allocating inside timing loops.
func MergeInto(dst, a, b []Key, d Direction) []Key {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if d.InOrder(a[i], b[j]) {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// CompareSplit performs the distributed compare-exchange between a pair of
// processors each holding a sorted run: the pair's 2k elements are
// logically merged and the caller keeps either the k smallest (keepLow)
// or the k largest, returned sorted ascending. mine and theirs must each
// be sorted ascending; the result is freshly allocated.
//
// In the machine kernels the halves travel as messages per the paper's
// Step 7 protocol; this function is the arithmetic both endpoints agree
// on.
func CompareSplit(mine, theirs []Key, keepLow bool) []Key {
	return CompareSplitInto(make([]Key, 0, len(mine)), mine, theirs, keepLow)
}

// CompareSplitInto is CompareSplit writing into dst (which must have
// capacity len(mine) and must not alias mine or theirs); it returns the
// filled dst. The machine kernels call it with a per-processor scratch
// buffer so a compare-exchange step allocates nothing.
func CompareSplitInto(dst, mine, theirs []Key, keepLow bool) []Key {
	k := len(mine)
	out := dst[:0]
	// Already-separated fast paths: when the runs do not interleave the
	// result is a contiguous copy. Conditions are exact about ties (equal
	// keys keep mine, as the merge loops below do), so the output is
	// bit-identical to the general path.
	if k > 0 {
		if keepLow {
			if len(theirs) == 0 || mine[k-1] <= theirs[0] {
				return append(out, mine...)
			}
			if len(theirs) >= k && theirs[k-1] < mine[0] {
				return append(out, theirs[:k]...)
			}
		} else {
			if len(theirs) == 0 || mine[0] >= theirs[len(theirs)-1] {
				return append(out, mine...)
			}
			if len(theirs) >= k && theirs[len(theirs)-k] > mine[k-1] {
				return append(out, theirs[len(theirs)-k:]...)
			}
		}
	}
	// Equal-length runs (every machine kernel's case): tight indexed
	// loops. i+j picks so far stays < k, so both indices are always in
	// bounds without per-element limit checks.
	if len(theirs) == k {
		out = dst[:k]
		if keepLow {
			i, j := 0, 0
			for x := 0; x < k; x++ {
				if a, b := mine[i], theirs[j]; a <= b {
					out[x] = a
					i++
				} else {
					out[x] = b
					j++
				}
			}
			return out
		}
		// Keep the k largest: fill from the top walking the tails, which
		// lands the result ascending with no reverse pass.
		i, j := k-1, k-1
		for x := k - 1; x >= 0; x-- {
			if a, b := mine[i], theirs[j]; a >= b {
				out[x] = a
				i--
			} else {
				out[x] = b
				j--
			}
		}
		return out
	}
	if keepLow {
		i, j := 0, 0
		for len(out) < k {
			if j >= len(theirs) || (i < len(mine) && mine[i] <= theirs[j]) {
				out = append(out, mine[i])
				i++
			} else {
				out = append(out, theirs[j])
				j++
			}
		}
		return out
	}
	// Keep the k largest: walk from the tails.
	i, j := len(mine)-1, len(theirs)-1
	for len(out) < k {
		if j < 0 || (i >= 0 && mine[i] >= theirs[j]) {
			out = append(out, mine[i])
			i--
		} else {
			out = append(out, theirs[j])
			j--
		}
	}
	Reverse(out)
	return out
}

// BitonicMerge sorts a bitonic slice whose length is a power of two into
// direction d, in place, using the classic recursive halving network.
func BitonicMerge(xs []Key, d Direction) {
	n := len(xs)
	if n <= 1 {
		return
	}
	half := n / 2
	for i := 0; i < half; i++ {
		if !d.InOrder(xs[i], xs[i+half]) {
			xs[i], xs[i+half] = xs[i+half], xs[i]
		}
	}
	BitonicMerge(xs[:half], d)
	BitonicMerge(xs[half:], d)
}

// BitonicSort sorts xs (length a power of two) into direction d in place
// using Batcher's bitonic sorting network. It panics on non-power-of-two
// lengths; callers with ragged input should pad with Inf first.
func BitonicSort(xs []Key, d Direction) {
	n := len(xs)
	if n&(n-1) != 0 {
		panic("sortutil: BitonicSort requires power-of-two length")
	}
	if n <= 1 {
		return
	}
	half := n / 2
	BitonicSort(xs[:half], d)
	BitonicSort(xs[half:], d.Reverse())
	BitonicMerge(xs, d)
}

// PadToPowerOfTwo appends Inf dummies until len(xs) is a power of two and
// returns the padded slice alongside the pad count.
func PadToPowerOfTwo(xs []Key) ([]Key, int) {
	n := len(xs)
	if n == 0 {
		return xs, 0
	}
	size := 1
	for size < n {
		size <<= 1
	}
	pad := size - n
	for i := 0; i < pad; i++ {
		xs = append(xs, Inf)
	}
	return xs, pad
}

// StripInf removes trailing Inf dummies from an ascending-sorted slice.
func StripInf(xs []Key) []Key {
	end := len(xs)
	for end > 0 && xs[end-1] == Inf {
		end--
	}
	return xs[:end]
}

// StripInfAll returns xs with every Inf dummy removed, regardless of
// position (StripInf is the cheap variant for ascending-sorted slices).
func StripInfAll(xs []Key) []Key {
	out := make([]Key, 0, len(xs))
	for _, x := range xs {
		if x != Inf {
			out = append(out, x)
		}
	}
	return out
}

// CountReal returns the number of non-dummy keys in xs.
func CountReal(xs []Key) int {
	n := 0
	for _, x := range xs {
		if x != Inf {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of xs.
func Clone(xs []Key) []Key { return append([]Key(nil), xs...) }

// Multiset builds an occurrence count of xs; tests use it to assert a
// sort permuted rather than invented data.
func Multiset(xs []Key) map[Key]int {
	m := make(map[Key]int, len(xs))
	for _, x := range xs {
		m[x]++
	}
	return m
}

// SameMultiset reports whether a and b contain the same keys with the
// same multiplicities.
func SameMultiset(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	m := Multiset(a)
	for _, x := range b {
		m[x]--
		if m[x] < 0 {
			return false
		}
	}
	return true
}
