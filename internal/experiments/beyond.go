package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// BeyondRow is one fault count of the beyond-guarantee study (E14): the
// paper proves r <= n-1 always works and remarks (§2.2) the partition
// "is also suitable for faulty hypercube Q_n with r >= n faulty
// processors" when a single-fault structure still exists. This sweep
// measures how often that is, and what utilization survives.
type BeyondRow struct {
	N, R   int
	Trials int
	// Separable is the fraction of placements admitting a single-fault
	// partition (always 1 for r <= n-1).
	Separable float64
	// MeanUtilization averages plan utilization over separable
	// placements.
	MeanUtilization float64
	// MeanMincut averages the cut count over separable placements.
	MeanMincut float64
	// SortChecked counts full end-to-end sorts run and verified on
	// separable placements.
	SortChecked int
}

// BeyondGuarantee sweeps fault counts past the paper's r <= n-1 bound.
// For each r it samples placements, attempts the partition, and for a
// few separable placements runs and verifies a complete sort.
func BeyondGuarantee(n, maxR, trials int, seed uint64) ([]BeyondRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	if maxR >= h.Size() {
		return nil, fmt.Errorf("experiments: maxR %d leaves no working processors", maxR)
	}
	var rows []BeyondRow
	for r := 1; r <= maxR; r++ {
		row := BeyondRow{N: n, R: r, Trials: trials}
		separable := 0
		var utilSum, cutSum float64
		for trial := 0; trial < trials; trial++ {
			faults := sampleFaults(h, r, rng)
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				continue // unseparable placement
			}
			separable++
			utilSum += plan.Utilization()
			cutSum += float64(plan.Mincut())
			if row.SortChecked < 3 {
				keys := workload.MustGenerate(workload.Uniform, 64*(1<<n)/(r+1)+31, rng)
				m, err := machine.New(machine.Config{Dim: n, Faults: faults})
				if err != nil {
					return nil, err
				}
				sorted, _, err := core.FTSort(m, plan, keys)
				if err != nil {
					return nil, fmt.Errorf("experiments: beyond-guarantee sort failed at n=%d r=%d: %w", n, r, err)
				}
				if !sortutil.IsSorted(sorted, sortutil.Ascending) || !sortutil.SameMultiset(sorted, keys) {
					return nil, fmt.Errorf("experiments: beyond-guarantee sort WRONG at n=%d r=%d faults=%v", n, r, faults.Sorted())
				}
				row.SortChecked++
			}
		}
		row.Separable = float64(separable) / float64(trials)
		if separable > 0 {
			row.MeanUtilization = utilSum / float64(separable)
			row.MeanMincut = cutSum / float64(separable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBeyond renders E14's rows.
func FormatBeyond(rows []BeyondRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tseparable\tmean mincut\tmean utilization\tsorts verified")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%.2f\t%.1f%%\t%d\n",
			r.N, r.R, 100*r.Separable, r.MeanMincut, 100*r.MeanUtilization, r.SortChecked)
	}
	w.Flush()
	return b.String()
}
