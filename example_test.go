package hypersort_test

import (
	"fmt"

	"hypersort"
)

// ExampleSort shows the one-call path: sort keys on a 16-processor
// hypercube whose processor 5 is faulty.
func ExampleSort() {
	keys := []hypersort.Key{42, 7, 19, 3, 25, 11, 8, 30}
	sorted, _, err := hypersort.Sort(hypersort.Config{
		Dim:    4,
		Faults: []hypersort.NodeID{5},
	}, keys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(sorted)
	// Output: [3 7 8 11 19 25 30 42]
}

// ExampleNew_partition inspects the partition decisions for the paper's
// Example 1 fault set.
func ExampleNew_partition() {
	s, err := hypersort.New(hypersort.Config{
		Dim:    5,
		Faults: []hypersort.NodeID{3, 5, 16, 24},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p := s.Partition()
	fmt.Println("mincut:", p.Mincut)
	fmt.Println("chosen:", p.Chosen)
	fmt.Println("dangling:", p.Dangling)
	fmt.Printf("utilization: %.1f%%\n", 100*p.Utilization)
	// Output:
	// mincut: 3
	// chosen: [0 1 3]
	// dangling: [18 25 26 27]
	// utilization: 85.7%
}

// ExampleDiagnose runs the off-line PMC diagnosis round and recovers the
// fault set from neighbor test results.
func ExampleDiagnose() {
	found, err := hypersort.Diagnose(5, []hypersort.NodeID{7, 21}, 99)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(found)
	// Output: [7 21]
}
