package transport

import (
	"bytes"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// FuzzDecodeFrame drives arbitrary bytes through the decoder. Two
// properties are under test:
//
//   - Safety: no input panics, over-reads, or triggers an allocation
//     sized by an unvalidated count (a hostile count would OOM long
//     before the fuzzer's time budget noticed anything else).
//   - Round-trip identity: any body the decoder ACCEPTS must re-encode
//     to the identical bytes. The codec has no redundant encodings —
//     one uvarint per integer, no optional fields — so accept implies
//     canonical, and re-encode-then-compare catches any decoded field
//     silently dropping or misreading payload bits.
//
// The seed corpus is one valid frame of every type, so coverage starts
// inside the per-type decoders rather than dying at the version byte.
func FuzzDecodeFrame(f *testing.F) {
	cfg := engine.Config{
		Dim:        4,
		Faults:     []cube.NodeID{3, 9},
		LinkFaults: [][2]cube.NodeID{{0, 8}},
		Model:      machine.Total,
		Cost:       machine.CostModel{Compare: 1, Elem: 2, Startup: 50},
	}
	keys := []sortutil.Key{5, -12, 0, 1 << 40}
	fb := Feedback{Inflight: 3, QueueWaitNs: 999}
	seeds := [][]byte{
		AppendRequest(nil, 7, engine.Request{Config: cfg, Op: engine.OpTopK, K: 2, Keys: keys}, 12345),
		AppendResult(nil, 8, engine.Result{Keys: keys, Value: -1, Direct: true,
			Res: machine.Result{Makespan: 100, Messages: 5, Comparisons: 50}}, fb),
		AppendResult(nil, 9, engine.Result{Err: engine.ErrAdmissionRejected}, fb),
		AppendProbe(nil, 1),
		AppendProbeAck(nil, 1, fb),
		AppendInject(nil, 2, cfg, []machine.Injection{{Kind: machine.KillNode, Node: 3, At: 7}}),
		AppendDisarm(nil, 3, cfg),
		AppendAck(nil, 4, nil, fb),
		AppendMetricsReq(nil, 5),
		AppendMetricsAck(nil, 6, engine.Metrics{Requests: 12, PlanHits: 3}, fb),
	}
	for _, s := range seeds {
		f.Add(s[4:]) // strip the length prefix: the fuzzer owns the body
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(&fr, data); err != nil {
			return // rejected is always fine; panicking is the bug
		}
		var re []byte
		switch fr.Type {
		case TReq:
			re = AppendRequest(nil, fr.Corr, fr.Req, fr.Deadline)
		case TRes:
			re = AppendResult(nil, fr.Corr, fr.Res, fr.Feedback)
		case TProbe:
			re = AppendProbe(nil, fr.Corr)
		case TProbeAck:
			re = AppendProbeAck(nil, fr.Corr, fr.Feedback)
		case TInject:
			re = AppendInject(nil, fr.Corr, fr.Cfg, fr.Injs)
		case TDisarm:
			re = AppendDisarm(nil, fr.Corr, fr.Cfg)
		case TAck:
			re = AppendAck(nil, fr.Corr, fr.Err, fr.Feedback)
		case TMetrics:
			re = AppendMetricsReq(nil, fr.Corr)
		case TMetricsAck:
			re = AppendMetricsAck(nil, fr.Corr, fr.Metrics, fr.Feedback)
		default:
			t.Fatalf("decoder accepted unknown type %d", fr.Type)
		}
		if !bytes.Equal(re[4:], data) {
			t.Fatalf("round-trip mismatch for type %d:\n in  %x\n out %x", fr.Type, data, re[4:])
		}
	})
}
