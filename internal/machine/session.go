package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypersort/internal/cube"
)

// Session pins a participant group on a machine so a sequence of runs can
// execute as one fused dispatch: participants are validated and marked
// once at OpenSession, the persistent workers receive a single task per
// node covering the whole kernel sequence, and the machine returns to the
// general-purpose state only at Close. This is the execution half of the
// engine's continuous-batching dispatcher — amortizing task handoff,
// WaitGroup synchronization, node reset, and scheduler churn across K
// requests instead of paying them K times.
//
// A Session owns its machine exclusively: no Run/RunInto and no second
// session may execute on the machine while the session is open. Like the
// machine itself, a Session is not safe for concurrent use.
type Session struct {
	m            *Machine
	participants []cube.NodeID
	fused        fusedState
	open         bool

	// single-run scratch for RunNext, so the convenience wrapper stays
	// allocation-free.
	k1  [1]Kernel
	r1  [1]Result
	pn1 [1]map[cube.NodeID]Time
}

// fusedState is the coordination state one fused batch shares with the
// per-node workers: the kernel sequence, the separator WaitGroups, the
// per-(sub-run, slot) statistics slots each worker harvests its own node
// into, and the index of the first failed sub-run (-1 while none).
type fusedState struct {
	kernels []Kernel
	n       int // participants per sub-run; stats is indexed [k*n+slot]
	stats   []fusedNodeStats
	failed  atomic.Int32
	// seps[k] separates sub-run k from k+1; see separator. Reused
	// across batches; RunBatch re-arms after the previous batch's
	// workers have fully drained (rs.wg.Wait guarantees that).
	seps []separator
}

// separator is one sub-run boundary of a fused batch: no worker starts
// sub-run k+1 before every worker has harvested sub-run k. Arrival is an
// atomic counter; departure is yield-then-park, mirroring the mailbox's
// adaptive wait: in the dominant schedule the peers are at most one
// scheduling round behind, so a couple of Gosched re-checks usually see
// the counter full and skip the park/wake round trip entirely. The
// WaitGroup is the park fallback — safe because every worker Done()s it
// before incrementing the counter, so a worker that observed the full
// counter finds the WaitGroup already settled, and one that didn't
// parks until the stragglers arrive.
//
// A worker exiting early (its kernel failed, or it observed the run
// abort) arrives at every remaining separator on the way out, so no
// peer ever blocks on a dead participant.
type separator struct {
	arrived atomic.Int32
	wg      sync.WaitGroup
}

// sepSpinYields bounds the yield-then-recheck loop before a separator
// parks. Mirrors the mailbox's adaptive wait; kernels in one batch are
// near-identical work, so peers almost always arrive within a round or
// two of yields.
const sepSpinYields = 2

// arrive records this worker at the separator (park-fallback WaitGroup
// first, then the counter — the order the spin in pass relies on).
func (sep *separator) arrive() {
	sep.wg.Done()
	sep.arrived.Add(1)
}

// pass blocks until all n workers have arrived.
func (sep *separator) pass(n int) {
	for i := 0; i < sepSpinYields; i++ {
		if sep.arrived.Load() == int32(n) {
			return
		}
		runtime.Gosched()
	}
	if sep.arrived.Load() != int32(n) {
		sep.wg.Wait()
	}
}

// fusedNodeStats is one node's counters for one fused sub-run, harvested
// by the node's own worker at sub-run completion (the aggregation loop
// reads them only after the run's WaitGroup has settled).
type fusedNodeStats struct {
	clock                                   Time
	msgs, keys, hops, comps, waits, barrier int64
}

// OpenSession validates and pins participants for a fused sequence of
// runs, returning the session handle. The participant rules are Run's:
// every entry a healthy node of the cube, no duplicates. Sessions always
// execute on the persistent workers — they exist to amortize, so even a
// machine that has never run gets its worker pool here.
//
// The caller must Close the session before using the machine for
// anything else.
//
// The returned handle is the machine's cached session scratch — a
// machine can have at most one session open, so OpenSession recycles one
// Session (and its statistics and separator buffers) across the
// machine's lifetime instead of allocating per batch. Consequently a
// handle from a previous, closed session aliases the new one: use the
// handle OpenSession returned, not a stale one.
func (m *Machine) OpenSession(participants []cube.NodeID) (*Session, error) {
	if m.cong != nil {
		// The congestion replay runs once per run over per-sub-run send
		// logs; fused batches would interleave the logs of independent
		// sub-runs. Congestion-priced configurations use Run/RunInto
		// (the engine routes them around its dispatch lanes).
		return nil, fmt.Errorf("machine: sessions do not support congestion-priced configurations (multipath routing or hot links)")
	}
	if err := m.markParticipants(participants); err != nil {
		return nil, err
	}
	m.ranOnce = true
	m.startWorkers()
	s := &m.sess
	s.m = m
	s.participants = participants
	s.open = true
	return s, nil
}

// RunNext executes a single kernel within the session — one sub-run of a
// fused sequence of length one. perNode follows RunInto's contract: if
// non-nil it is cleared, filled, and installed as Result.PerNode.
func (s *Session) RunNext(kernel Kernel, perNode map[cube.NodeID]Time) (Result, error) {
	s.k1[0] = kernel
	s.pn1[0] = perNode
	_, err := s.RunBatch(s.k1[:], s.r1[:], s.pn1[:])
	s.k1[0], s.pn1[0] = nil, nil
	return s.r1[0], err
}

// RunBatch executes kernels back-to-back as one fused dispatch: a single
// task per node, a single WaitGroup round-trip, with lightweight
// WaitGroup separators between the sub-runs. Each kernel is an independent virtual-time
// run — clocks and counters restart at zero — and its Result (written
// into into[k]) is identical to what a standalone Run of that kernel on
// this participant group would report.
//
// completed is the number of leading sub-runs that finished: on success
// it is len(kernels) and err is nil; if sub-run k fails, completed is k,
// into[0:k] hold valid Results, and err is the failing kernel's error
// (sub-runs k+1... are never attempted). perNode may be nil or shorter
// than kernels; entry k, when present and non-nil, is recycled into
// into[k].PerNode per RunInto's contract.
func (s *Session) RunBatch(kernels []Kernel, into []Result, perNode []map[cube.NodeID]Time) (completed int, err error) {
	if !s.open {
		return 0, fmt.Errorf("machine: RunBatch on a closed session")
	}
	if len(kernels) == 0 {
		return 0, nil
	}
	if len(into) < len(kernels) {
		return 0, fmt.Errorf("machine: RunBatch needs %d result slots, got %d", len(kernels), len(into))
	}
	m := s.m
	n := len(s.participants)
	m.resetNodes()
	rs := m.prepareRun(n)

	fs := &s.fused
	fs.kernels = kernels
	fs.n = n
	if need := len(kernels) * n; cap(fs.stats) < need {
		fs.stats = make([]fusedNodeStats, need)
	} else {
		fs.stats = fs.stats[:need]
	}
	fs.failed.Store(-1)
	if nseps := len(kernels) - 1; cap(fs.seps) < nseps {
		fs.seps = make([]separator, nseps)
	} else {
		fs.seps = fs.seps[:nseps]
	}
	for k := range fs.seps {
		fs.seps[k].arrived.Store(0)
		fs.seps[k].wg.Add(n)
	}

	rs.wg.Add(n)
	for i, id := range s.participants {
		p := &m.procs[i]
		*p = Proc{m: m, nd: m.nodes[id], slot: i}
		// The worker consumed its previous task before its wg.Done, so
		// this buffered send never blocks.
		m.nodes[id].work <- runTask{fused: fs, proc: p, slot: i, rs: rs}
	}
	rs.wg.Wait()

	firstErr := rs.firstError()
	completed = len(kernels)
	if firstErr != nil {
		completed = int(fs.failed.Load())
		if completed < 0 {
			completed = 0
		}
	}
	for k := 0; k < completed; k++ {
		var buf map[cube.NodeID]Time
		if k < len(perNode) {
			buf = perNode[k]
		}
		into[k] = s.aggregate(k, buf)
	}
	fs.kernels = nil // drop kernel closures; stats scratch is retained
	return completed, firstErr
}

// aggregate folds sub-run k's harvested per-node statistics into a
// Result, reusing perNode as the PerNode map when non-nil, and flushes
// the machine's metrics bundle exactly as a standalone run would.
func (s *Session) aggregate(k int, perNode map[cube.NodeID]Time) Result {
	fs := &s.fused
	res := Result{PerNode: perNode}
	if res.PerNode == nil {
		res.PerNode = make(map[cube.NodeID]Time, fs.n)
	} else {
		clear(res.PerNode)
	}
	var barrierWait int64
	base := k * fs.n
	for i, id := range s.participants {
		st := &fs.stats[base+i]
		if st.clock > res.Makespan {
			res.Makespan = st.clock
		}
		res.Messages += st.msgs
		res.KeysSent += st.keys
		res.KeyHops += st.hops
		res.Comparisons += st.comps
		res.RecvWaits += st.waits
		barrierWait += st.barrier
		res.PerNode[id] = st.clock
	}
	if mm := s.m.cfg.Metrics; mm != nil {
		mm.Runs.Inc()
		mm.Messages.Add(res.Messages)
		mm.KeysSent.Add(res.KeysSent)
		mm.KeyHops.Add(res.KeyHops)
		mm.Comparisons.Add(res.Comparisons)
		mm.RecvWaits.Add(res.RecvWaits)
		mm.BarrierVTime.Add(barrierWait)
		mm.Makespan.Observe(int64(res.Makespan))
	}
	return res
}

// Close releases the session's participant marks, returning the machine
// to the general-purpose state. The machine remains usable for Run and
// further sessions. Close is idempotent; the persistent workers stay hot
// (retire them with Machine.Close).
func (s *Session) Close() {
	if !s.open {
		return
	}
	s.m.unmarkParticipants(s.participants)
	s.open = false
}
