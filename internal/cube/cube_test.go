package cube

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, MaxDim + 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSizeAndDim(t *testing.T) {
	for n := 0; n <= 10; n++ {
		h := New(n)
		if h.Dim() != n {
			t.Errorf("Dim() = %d, want %d", h.Dim(), n)
		}
		if h.Size() != 1<<n {
			t.Errorf("Size() = %d, want %d", h.Size(), 1<<n)
		}
	}
}

func TestContains(t *testing.T) {
	h := New(4)
	if !h.Contains(0) || !h.Contains(15) {
		t.Error("Q_4 should contain 0 and 15")
	}
	if h.Contains(16) {
		t.Error("Q_4 should not contain 16")
	}
}

func TestNeighbor(t *testing.T) {
	h := New(5)
	if got := h.Neighbor(0b00101, 1); got != 0b00111 {
		t.Errorf("Neighbor(00101, 1) = %05b, want 00111", got)
	}
	if got := h.Neighbor(0b00101, 0); got != 0b00100 {
		t.Errorf("Neighbor(00101, 0) = %05b, want 00100", got)
	}
}

func TestNeighborPanics(t *testing.T) {
	h := New(3)
	defer func() {
		if recover() == nil {
			t.Error("Neighbor with d=3 on Q_3 did not panic")
		}
	}()
	h.Neighbor(0, 3)
}

func TestNeighborsAreAtDistanceOne(t *testing.T) {
	h := New(6)
	for id := NodeID(0); id < NodeID(h.Size()); id += 7 {
		for _, nb := range h.Neighbors(id) {
			if HammingDistance(id, nb) != 1 {
				t.Fatalf("neighbor %d of %d at distance %d", nb, id, HammingDistance(id, nb))
			}
		}
	}
}

func TestNeighborInvolution(t *testing.T) {
	h := New(8)
	f := func(id uint32, d uint8) bool {
		node := NodeID(id) & NodeID(h.Size()-1)
		dim := int(d) % h.Dim()
		return h.Neighbor(h.Neighbor(node, dim), dim) == node
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitSetFlip(t *testing.T) {
	id := NodeID(0b1010)
	if Bit(id, 1) != 1 || Bit(id, 0) != 0 {
		t.Error("Bit extraction wrong")
	}
	if SetBit(id, 0, 1) != 0b1011 {
		t.Error("SetBit to 1 wrong")
	}
	if SetBit(id, 1, 0) != 0b1000 {
		t.Error("SetBit to 0 wrong")
	}
	if FlipBit(id, 3) != 0b0010 {
		t.Error("FlipBit wrong")
	}
}

func TestHammingDistanceProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := NodeID(a), NodeID(b)
		d := HammingDistance(x, y)
		return d == HammingDistance(y, x) &&
			d == bits.OnesCount32(a^b) &&
			(d == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingTriangleInequality(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := NodeID(a), NodeID(b), NodeID(c)
		return HammingDistance(x, z) <= HammingDistance(x, y)+HammingDistance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDifferingDims(t *testing.T) {
	dims := DifferingDims(0b10110, 0b00011)
	want := []int{0, 2, 4}
	if len(dims) != len(want) {
		t.Fatalf("DifferingDims = %v, want %v", dims, want)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("DifferingDims = %v, want %v", dims, want)
		}
	}
}

func TestReindexProperties(t *testing.T) {
	// Reindex moves the pivot to zero, is an involution, and preserves
	// adjacency (it is a hypercube automorphism).
	f := func(p, a, b uint32) bool {
		pivot, x, y := NodeID(p), NodeID(a), NodeID(b)
		if Reindex(pivot, pivot) != 0 {
			return false
		}
		if Reindex(pivot, Reindex(pivot, x)) != x {
			return false
		}
		return HammingDistance(x, y) == HammingDistance(Reindex(pivot, x), Reindex(pivot, y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayCodeAdjacent(t *testing.T) {
	for i := 0; i < 1<<10-1; i++ {
		if HammingDistance(GrayCode(i), GrayCode(i+1)) != 1 {
			t.Fatalf("Gray codewords %d and %d not adjacent", i, i+1)
		}
	}
}

func TestGrayRankInverse(t *testing.T) {
	f := func(i uint16) bool {
		return GrayRank(GrayCode(int(i))) == int(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(5, 3, 5, 9)
	if len(s) != 3 {
		t.Fatalf("set size = %d, want 3 (duplicates dropped)", len(s))
	}
	if !s.Has(3) || !s.Has(5) || !s.Has(9) || s.Has(4) {
		t.Error("membership wrong")
	}
	sorted := s.Sorted()
	if sorted[0] != 3 || sorted[1] != 5 || sorted[2] != 9 {
		t.Errorf("Sorted = %v", sorted)
	}
	c := s.Clone()
	c.Add(7)
	if s.Has(7) {
		t.Error("Clone is not independent")
	}
}

func TestFormatParseAddr(t *testing.T) {
	if got := FormatAddr(0b00011, 5); got != "00011" {
		t.Errorf("FormatAddr = %q", got)
	}
	id, err := ParseAddr("11000")
	if err != nil || id != 24 {
		t.Errorf("ParseAddr(11000) = %d, %v", id, err)
	}
	if _, err := ParseAddr("1012"); err == nil {
		t.Error("ParseAddr accepted invalid digit")
	}
	if _, err := ParseAddr(""); err == nil {
		t.Error("ParseAddr accepted empty string")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		id := NodeID(raw) & 0xFFFFF // 20 bits
		got, err := ParseAddr(FormatAddr(id, 20))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeBasics(t *testing.T) {
	e := NewEdge(5, 4)
	if e.A != 4 || e.B != 5 {
		t.Errorf("edge not normalized: %+v", e)
	}
	if e.Dim() != 0 {
		t.Errorf("edge dim = %d", e.Dim())
	}
	if NewEdge(2, 6).Dim() != 2 {
		t.Error("edge dim wrong")
	}
}

func TestNewEdgePanicsOnNonNeighbors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-neighbor edge did not panic")
		}
	}()
	NewEdge(0, 3)
}

func TestEdgeSet(t *testing.T) {
	s := NewEdgeSet(NewEdge(0, 1))
	if !s.Has(1, 0) || !s.Has(0, 1) {
		t.Error("membership should be direction-independent")
	}
	if s.Has(2, 3) {
		t.Error("phantom member")
	}
	s.Add(6, 2)
	if len(s) != 2 {
		t.Error("Add failed")
	}
	c := s.Clone()
	c.Add(4, 5)
	if len(s) != 2 {
		t.Error("Clone not independent")
	}
	sorted := s.Sorted()
	if len(sorted) != 2 || sorted[0].A != 0 || sorted[1].A != 2 {
		t.Errorf("Sorted = %v", sorted)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	for n := 1; n <= 5; n++ {
		h := New(n)
		edges := h.Edges()
		want := n << uint(n-1)
		if len(edges) != want {
			t.Fatalf("Q_%d: %d edges, want %d", n, len(edges), want)
		}
		seen := NewEdgeSet()
		for _, e := range edges {
			if HammingDistance(e.A, e.B) != 1 || e.A >= e.B {
				t.Fatalf("bad edge %+v", e)
			}
			if seen.Has(e.A, e.B) {
				t.Fatalf("duplicate edge %+v", e)
			}
			seen.Add(e.A, e.B)
		}
	}
	if got := New(0).Edges(); len(got) != 0 {
		t.Errorf("Q_0 edges = %v", got)
	}
}
