// Package hostio reads and writes key files so the CLI tools can sort
// real data rather than only synthetic workloads. Two formats are
// supported, chosen by file extension:
//
//   - .txt (or anything else): one decimal integer per line; blank lines
//     and lines starting with '#' are ignored.
//   - .bin: little-endian int64, no header.
package hostio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hypersort/internal/sortutil"
)

// ReadKeys loads keys from path, dispatching on the extension.
func ReadKeys(path string) ([]sortutil.Key, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return readBinary(f)
	}
	return readText(f, path)
}

// WriteKeys stores keys to path, dispatching on the extension.
func WriteKeys(path string, keys []sortutil.Key) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return writeBinary(f, keys)
	}
	return writeText(f, keys)
}

func readText(r io.Reader, path string) ([]sortutil.Key, error) {
	var keys []sortutil.Key
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("hostio: %s:%d: %v", path, lineNo, err)
		}
		keys = append(keys, sortutil.Key(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostio: reading %s: %w", path, err)
	}
	return keys, nil
}

func writeText(w io.Writer, keys []sortutil.Key) error {
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintln(bw, int64(k)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readBinary(r io.Reader) ([]sortutil.Key, error) {
	br := bufio.NewReader(r)
	var keys []sortutil.Key
	buf := make([]byte, 8)
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF {
			return keys, nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("hostio: truncated binary key file (%d bytes past the last full key)", len(keys)*8)
		}
		if err != nil {
			return nil, err
		}
		keys = append(keys, sortutil.Key(int64(binary.LittleEndian.Uint64(buf))))
	}
}

func writeBinary(w io.Writer, keys []sortutil.Key) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 8)
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf, uint64(int64(k)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
