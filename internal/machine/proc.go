package machine

import (
	"errors"
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// Proc is one processor's view of the machine during a Run: its identity,
// virtual clock, and communication primitives. A Proc is only valid
// inside the kernel invocation it was created for and must not be shared
// across goroutines.
type Proc struct {
	m  *Machine
	nd *node
	// slot is the participant index within the run, which is also the
	// processor's position in the barrier's combining tree.
	slot int
}

// procFailure carries an abort through panic so kernel code can use the
// communication primitives without threading errors everywhere; Run's
// wrapper converts it back into an error.
type procFailure struct{ err error }

// ErrAborted is reported by participants blocked in Recv or Barrier when
// another participant's kernel failed.
var ErrAborted = errors.New("machine: run aborted by another participant's failure")

// runKernel executes the kernel, translating panics into errors.
func (p *Proc) runKernel(k Kernel) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pf, ok := r.(procFailure); ok {
				err = pf.err
				return
			}
			err = fmt.Errorf("machine: kernel panic on node %d: %v", p.nd.id, r)
		}
	}()
	return k(p)
}

func (p *Proc) fail(err error) {
	panic(procFailure{err: err})
}

// ID returns this processor's physical hypercube address.
func (p *Proc) ID() cube.NodeID { return p.nd.id }

// Dim returns the hypercube dimension n.
func (p *Proc) Dim() int { return p.m.h.Dim() }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() Time { return p.nd.clock }

// Comparisons returns the comparisons this processor has performed so
// far in the current run. Kernels take deltas of it (paired with Clock)
// to attribute work to algorithm phases.
func (p *Proc) Comparisons() int64 { return p.nd.compares }

// InGroup reports whether addr participates in the current run. Kernels
// use it to implement the paper's "skip the dead partner" rule.
func (p *Proc) InGroup(addr cube.NodeID) bool {
	return int(addr) < len(p.m.inGroup) && p.m.inGroup[addr]
}

// IsFaulty reports whether addr is a faulty processor of the machine.
func (p *Proc) IsFaulty(addr cube.NodeID) bool { return p.m.cfg.Faults.Has(addr) }

// Compute advances the clock by n key comparisons (n * t_c). Negative n
// is a programming error and panics.
func (p *Proc) Compute(n int) {
	if s := p.m.inj.load(); s != nil {
		p.checkInjections(s)
	}
	if n < 0 {
		panic("machine: negative comparison count")
	}
	p.nd.compares += int64(n)
	p.nd.clock += Time(n) * p.m.cfg.Cost.Compare
	if p.m.cfg.Trace != nil {
		p.m.emit(TraceEvent{Node: p.nd.id, Kind: TraceCompute, Peer: p.nd.id, Keys: n, Time: p.nd.clock})
	}
}

// Elapse advances the clock by an arbitrary duration, for costs outside
// the comparison/transfer model (e.g. a host-side setup phase a caller
// wants accounted).
func (p *Proc) Elapse(d Time) {
	if d < 0 {
		panic("machine: negative elapse")
	}
	p.nd.clock += d
}

// Send transmits keys to dst with the given tag. The send is
// asynchronous: the caller's clock advances by the first-hop injection
// cost (Startup + len*Elem), and the message arrives at the destination
// after the remaining hops' store-and-forward latency. Sending to a
// totally faulty destination, or routing failure in the Total model,
// aborts the kernel.
func (p *Proc) Send(dst cube.NodeID, tag Tag, keys []sortutil.Key) {
	// Injection check first — before validation and, crucially, before
	// payloadGet, so a dying sender cannot strand a pooled buffer.
	if s := p.m.inj.load(); s != nil {
		p.checkSendInjections(s, dst)
	}
	if !p.m.h.Contains(dst) {
		p.fail(fmt.Errorf("machine: node %d sent to %d outside the cube", p.nd.id, dst))
	}
	if p.m.cfg.Model == Total && p.m.cfg.Faults.Has(dst) {
		p.fail(fmt.Errorf("machine: node %d sent to totally faulty node %d", p.nd.id, dst))
	}
	if cs := p.m.cong; cs != nil {
		// Congestion-priced configurations (multipath routing or hot
		// links) take the path-walking branch; see congestion.go.
		p.sendCongested(cs, dst, tag, keys)
		return
	}
	var hops int
	if p.m.hamming {
		hops = cube.HammingDistance(p.nd.id, dst)
	} else {
		var err error
		hops, err = p.m.Hops(p.nd.id, dst)
		if err != nil {
			p.fail(fmt.Errorf("machine: node %d cannot reach %d: %w", p.nd.id, dst, err))
		}
	}
	c := p.m.cfg.Cost
	perHop := c.Startup + Time(len(keys))*c.Elem
	if hops > 0 {
		p.nd.clock += perHop // first-hop injection serializes at the sender
	}
	arrival := p.nd.clock + Time(hops-1)*perHop
	if hops == 0 {
		arrival = p.nd.clock
	}
	payload := p.payloadGet(len(keys))
	copy(payload, keys)
	p.nd.msgsSent++
	p.nd.keysSent += int64(len(keys))
	p.nd.keyHops += int64(len(keys)) * int64(hops)
	p.m.nodes[dst].box.put(message{src: p.nd.id, tag: tag, arrival: arrival, keys: payload})
	if p.m.cfg.Trace != nil {
		p.m.emit(TraceEvent{Node: p.nd.id, Kind: TraceSend, Peer: dst, Tag: tag, Keys: len(keys), Hops: hops, Time: p.nd.clock})
	}
}

// Recv blocks until a message with the given source and tag arrives,
// advances the clock to the message's arrival time if later, and returns
// the payload. The returned slice is owned by the caller: it may be read
// or mutated freely, and a caller that is done with it before the kernel
// returns should hand it back with Release so the next Send can reuse
// the buffer instead of allocating. Never retain a slice after releasing
// it.
func (p *Proc) Recv(src cube.NodeID, tag Tag) []sortutil.Key {
	if s := p.m.inj.load(); s != nil {
		p.checkInjections(s)
	}
	m, waited, ok := p.nd.box.take(src, tag)
	if !ok {
		p.fail(ErrAborted)
	}
	if waited {
		p.nd.recvWaits++
		// Already the slow path (this receive parked); sample mailbox depth
		// 1-in-16 per node to keep the mutex-guarded walk rare.
		if mm := p.m.cfg.Metrics; mm != nil && p.nd.recvWaits&15 == 1 {
			mm.QueueDepth.Observe(int64(p.nd.box.pending()))
		}
	}
	if m.arrival > p.nd.clock {
		p.nd.clock = m.arrival
	}
	if p.m.cfg.Trace != nil {
		p.m.emit(TraceEvent{Node: p.nd.id, Kind: TraceRecv, Peer: src, Tag: tag, Keys: len(m.keys), Time: p.nd.clock})
	}
	return m.keys
}

// Exchange performs the symmetric compare-exchange transfer: send keys to
// peer and receive the peer's keys, both under the same tag. It is the
// communication pattern of the paper's Step 7 and of every bitonic stage.
// The returned slice follows Recv's ownership rules (release when done).
func (p *Proc) Exchange(peer cube.NodeID, tag Tag, keys []sortutil.Key) []sortutil.Key {
	p.Send(peer, tag, keys)
	return p.Recv(peer, tag)
}

// Release hands a payload slice obtained from Recv back to the machine's
// buffer pool so a later Send can reuse it. After Release the caller
// must not touch the slice again — the next Send on any node of this
// machine (or a Clone) may overwrite it. Releasing is optional:
// unreleased payloads are simply garbage collected. Kernels on the hot
// path release every payload they finish reading, which keeps a run at
// O(1) payload allocations steady-state instead of O(messages).
func (p *Proc) Release(buf []sortutil.Key) { p.payloadPut(buf) }

// payloadGet acquires a payload buffer of length n: first from the
// node's private cache, then the machine-wide pool.
func (p *Proc) payloadGet(n int) []sortutil.Key {
	if n == 0 {
		return nil
	}
	nd := p.nd
	for i := nd.ncache - 1; i >= 0; i-- {
		if b := nd.cache[i]; cap(b) >= n {
			nd.ncache--
			nd.cache[i] = nd.cache[nd.ncache]
			nd.cache[nd.ncache] = nil
			return b[:n]
		}
	}
	return p.m.bufs.get(n)
}

// payloadPut releases a payload buffer into the node's private cache,
// overflowing to the machine-wide pool. Poisoning (SetReleasePoison)
// applies on this path too so the aliasing tests cover cached reuse.
func (p *Proc) payloadPut(b []sortutil.Key) {
	if cap(b) == 0 {
		return
	}
	nd := p.nd
	if nd.ncache < len(nd.cache) {
		if poisonReleased {
			b = b[:cap(b)]
			for i := range b {
				b[i] = poisonKey
			}
		}
		nd.cache[nd.ncache] = b[:0]
		nd.ncache++
		return
	}
	p.m.bufs.put(b)
}

// Barrier blocks until every participant of the run reaches it, then
// synchronizes the clock to the group maximum. It models phase structure
// and is free in virtual time; see the barrier type for rationale.
func (p *Proc) Barrier() {
	if s := p.m.inj.load(); s != nil {
		p.checkInjections(s)
	}
	t, ok := p.m.bar.wait(p.slot, p.nd.clock)
	if !ok {
		p.fail(ErrAborted)
	}
	p.nd.barrierWait += int64(t - p.nd.clock)
	p.nd.clock = t
}

// HopsTo returns the hop count the machine's router charges from this
// node to dst (diagnostic; Send already prices it).
func (p *Proc) HopsTo(dst cube.NodeID) int {
	hops, err := p.m.Hops(p.nd.id, dst)
	if err != nil {
		p.fail(err)
	}
	return hops
}
