package routing

import (
	"fmt"

	"hypersort/internal/cube"
)

// ErrNoPathLinks is returned when no route exists that avoids the given
// faulty links and processors.
type ErrNoPathLinks struct {
	Src, Dst cube.NodeID
}

// Error implements the error interface.
func (e ErrNoPathLinks) Error() string {
	return fmt.Sprintf("routing: no path from %d to %d avoiding faulty links", e.Src, e.Dst)
}

// Unwrap exposes the plain no-path error for the same pair, so callers
// can errors.Is / errors.As against ErrNoPath without caring which
// fault flavour (processors only, or processors and links) blocked the
// route.
func (e ErrNoPathLinks) Unwrap() error {
	return ErrNoPath{Src: e.Src, Dst: e.Dst}
}

// FaultAvoidingLinks returns a path from src to dst traversing neither a
// faulty intermediate processor nor a faulty link — the router for the
// paper's broader "faulty processors/links" model (§1). Like
// FaultAvoiding it prefers profitable dimensions before misrouting and is
// complete: failure means the fault sets genuinely disconnect the pair.
// The n-cube's edge connectivity is n, so with at most n-1 faulty links
// (and no faulty processors) every pair stays routable.
func FaultAvoidingLinks(h cube.Hypercube, src, dst cube.NodeID, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet) (Path, error) {
	if src == dst {
		return Path{src}, nil
	}
	visited := make(map[cube.NodeID]bool, h.Size())
	visited[src] = true
	if p := dfsAvoidLinks(h, src, dst, nodeFaults, linkFaults, visited, Path{src}); p != nil {
		return p, nil
	}
	return nil, ErrNoPathLinks{Src: src, Dst: dst}
}

// dfsAvoidLinks mirrors dfsAvoid with the added per-edge check.
func dfsAvoidLinks(h cube.Hypercube, cur, dst cube.NodeID, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet, visited map[cube.NodeID]bool, path Path) Path {
	profitable := cube.DifferingDims(cur, dst)
	inProfit := make(map[int]bool, len(profitable))
	for _, d := range profitable {
		inProfit[d] = true
	}
	order := append([]int(nil), profitable...)
	for d := 0; d < h.Dim(); d++ {
		if !inProfit[d] {
			order = append(order, d)
		}
	}
	for _, d := range order {
		next := cube.FlipBit(cur, d)
		if linkFaults.Has(cur, next) {
			continue // dead wire
		}
		if next == dst {
			return append(path, next)
		}
		if visited[next] || nodeFaults.Has(next) {
			continue
		}
		visited[next] = true
		if p := dfsAvoidLinks(h, next, dst, nodeFaults, linkFaults, visited, append(path, next)); p != nil {
			return p
		}
	}
	return nil
}

// AvoidsLinkFaults reports whether no step of the path crosses a faulty
// link.
func (p Path) AvoidsLinkFaults(linkFaults cube.EdgeSet) bool {
	for i := 1; i < len(p); i++ {
		if linkFaults.Has(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// linkAwareRouter implements Router over FaultAvoidingLinks.
type linkAwareRouter struct {
	h          cube.Hypercube
	nodeFaults cube.NodeSet
	linkFaults cube.EdgeSet
	memo       *hopMemo
}

// NewLinkAwareRouter returns a router that avoids both faulty processors
// (per the total-fault model) and faulty links. Pass an empty node set
// for the processors-healthy/links-faulty scenario.
func NewLinkAwareRouter(h cube.Hypercube, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet) Router {
	if nodeFaults == nil {
		nodeFaults = cube.NewNodeSet()
	}
	if linkFaults == nil {
		linkFaults = cube.NewEdgeSet()
	}
	return linkAwareRouter{h: h, nodeFaults: nodeFaults.Clone(), linkFaults: linkFaults.Clone(), memo: newHopMemo()}
}

func (r linkAwareRouter) Route(src, dst cube.NodeID) (Path, error) {
	return FaultAvoidingLinks(r.h, src, dst, r.nodeFaults, r.linkFaults)
}

// Hops implements HopCounter by memoizing the DFS result per pair (the
// fault sets are fixed for the router's lifetime).
func (r linkAwareRouter) Hops(src, dst cube.NodeID) (int, error) {
	return r.memo.hops(src, dst, func() (Path, error) { return r.Route(src, dst) })
}

func (r linkAwareRouter) Name() string { return "link-aware" }
