package machine_test

import (
	"errors"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// exchangeKernel is a small all-dimensions neighbor-exchange program:
// enough traffic that any mid-run casualty is observed by its partners,
// with rounds of compute so victim clocks actually advance.
func exchangeKernel(rounds int) machine.Kernel {
	return func(p *machine.Proc) error {
		buf := []sortutil.Key{sortutil.Key(p.ID())}
		for r := 0; r < rounds; r++ {
			p.Compute(3)
			for d := 0; d < p.Dim(); d++ {
				peer := cube.FlipBit(p.ID(), d)
				if !p.InGroup(peer) {
					continue
				}
				got := p.Exchange(peer, machine.Tag(r*p.Dim()+d), buf)
				p.Release(got)
			}
			p.Barrier()
		}
		return nil
	}
}

func TestKillNodeAtVirtualTime(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 3})
	defer m.Close()
	victim := cube.NodeID(5)
	if err := m.Arm(machine.Injection{Kind: machine.KillNode, Node: victim, At: 10}); err != nil {
		t.Fatal(err)
	}

	_, err := m.RunAllHealthy(exchangeKernel(20))
	var died machine.ProcessorDiedError
	if !errors.As(err, &died) {
		t.Fatalf("want ProcessorDiedError, got %v", err)
	}
	if died.Node != victim {
		t.Fatalf("wrong victim: got %d want %d", died.Node, victim)
	}
	if died.At < 10 {
		t.Fatalf("fired before trigger time: At=%d", died.At)
	}
	if !machine.IsInjectedDeath(err) {
		t.Fatal("IsInjectedDeath must recognize the run error")
	}

	// Permanent death: a second run listing the victim fails fast.
	if _, err := m.RunAllHealthy(exchangeKernel(20)); !errors.As(err, &died) {
		t.Fatalf("second run: want ProcessorDiedError, got %v", err)
	}

	// Survivors and FiredFaults reflect the casualty.
	nodes, links := m.FiredFaults()
	if len(nodes) != 1 || nodes[0] != victim || len(links) != 0 {
		t.Fatalf("FiredFaults = %v, %v", nodes, links)
	}
	for _, id := range m.Survivors() {
		if id == victim {
			t.Fatal("victim listed as survivor")
		}
	}

	// The survivors can still run together.
	if _, err := m.Run(m.Survivors(), exchangeKernel(5)); err != nil {
		t.Fatalf("survivor run: %v", err)
	}

	// Disarm resurrects the whole cube.
	m.DisarmInjections()
	if _, err := m.RunAllHealthy(exchangeKernel(5)); err != nil {
		t.Fatalf("post-disarm run: %v", err)
	}
}

func TestKillNodeAfterMessagesIsDeterministic(t *testing.T) {
	run := func() machine.Time {
		m := machine.MustNew(machine.Config{Dim: 3})
		defer m.Close()
		if err := m.Arm(machine.Injection{Kind: machine.KillNode, Node: 2, AfterMessages: 7}); err != nil {
			t.Fatal(err)
		}
		_, err := m.RunAllHealthy(exchangeKernel(20))
		var died machine.ProcessorDiedError
		if !errors.As(err, &died) {
			t.Fatalf("want ProcessorDiedError, got %v", err)
		}
		if died.Node != 2 {
			t.Fatalf("wrong victim %d", died.Node)
		}
		return died.At
	}
	first := run()
	for i := 0; i < 3; i++ {
		if at := run(); at != first {
			t.Fatalf("send-count trigger fired at different virtual times: %d vs %d", at, first)
		}
	}
}

func TestKillLink(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 3})
	defer m.Close()
	link := [2]cube.NodeID{0, 1}
	if err := m.Arm(machine.Injection{Kind: machine.KillLink, Link: link, At: 5}); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunAllHealthy(exchangeKernel(20))
	var died machine.LinkDiedError
	if !errors.As(err, &died) {
		t.Fatalf("want LinkDiedError, got %v", err)
	}
	if died.Link != link {
		t.Fatalf("wrong link %v", died.Link)
	}
	nodes, links := m.FiredFaults()
	if len(nodes) != 0 || len(links) != 1 || links[0] != link {
		t.Fatalf("FiredFaults = %v, %v", nodes, links)
	}
	// No processor died, so every node survives; runs that avoid the
	// severed edge still work.
	if len(m.Survivors()) != 8 {
		t.Fatalf("survivors = %v", m.Survivors())
	}
	avoiding := func(p *machine.Proc) error {
		p.Compute(1)
		for d := 0; d < p.Dim(); d++ {
			peer := cube.FlipBit(p.ID(), d)
			if p.LinkDead(p.ID(), peer) || !p.InGroup(peer) {
				continue
			}
			got := p.Exchange(peer, machine.Tag(d), []sortutil.Key{1})
			p.Release(got)
		}
		return nil
	}
	if _, err := m.RunAllHealthy(avoiding); err != nil {
		t.Fatalf("link-avoiding run: %v", err)
	}
}

func TestArmValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 3, Faults: cube.NewNodeSet(1)})
	defer m.Close()
	bad := []machine.Injection{
		{Kind: machine.KillNode, Node: 99},                          // outside the cube
		{Kind: machine.KillNode, Node: 1},                           // already faulty
		{Kind: machine.KillNode, Node: 2, At: -1},                   // negative trigger
		{Kind: machine.KillLink, Link: [2]cube.NodeID{0, 3}},        // not an edge
		{Kind: machine.KillLink, Link: [2]cube.NodeID{0, 99}},       // endpoint outside
		{Kind: machine.KillLink, Link: [2]cube.NodeID{0, 1}, AfterMessages: 2}, // wrong trigger kind
		{Kind: machine.InjectionKind(9), Node: 2},                   // unknown kind
	}
	for i, inj := range bad {
		if err := m.Arm(inj); err == nil {
			t.Errorf("case %d: Arm accepted invalid injection %+v", i, inj)
		}
	}
	if s := m.Survivors(); len(s) != 7 {
		t.Fatalf("rejected arms must not change state; survivors=%v", s)
	}
}

func TestCloneSharesInjector(t *testing.T) {
	template := machine.MustNew(machine.Config{Dim: 3})
	defer template.Close()
	clone := template.Clone()
	defer clone.Close()
	// Arm on the template AFTER the clone exists: the shared injector
	// must still cover the clone (the pool-arming contract).
	if err := template.Arm(machine.Injection{Kind: machine.KillNode, Node: 6, At: 0}); err != nil {
		t.Fatal(err)
	}
	_, err := clone.RunAllHealthy(exchangeKernel(5))
	var died machine.ProcessorDiedError
	if !errors.As(err, &died) || died.Node != 6 {
		t.Fatalf("clone run: want node 6 death, got %v", err)
	}
}
