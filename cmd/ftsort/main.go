// Command ftsort sorts a synthetic workload on a simulated faulty
// hypercube with the paper's fault-tolerant algorithm and reports the
// partition decisions and simulated cost.
//
// Usage:
//
//	ftsort -n 6 -faults 3,17,40 -m 32000 [-dist uniform] [-model partial]
//	       [-seed 1] [-tc 1 -tsr 1 -startup 0] [-proto full|half]
//	       [-distribute] [-trace N] [-steps] [-estimate] [-q]
//
// The -steps flag prints every intermediate machine state (the paper's
// Figure 6 walkthrough); keep -m small when using it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hypersort"
	"hypersort/internal/cli"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/hostio"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/trace"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	var (
		n       = flag.Int("n", 6, "hypercube dimension (2^n processors)")
		faultsF = flag.String("faults", "", "comma-separated faulty processor addresses")
		linksF  = flag.String("link-faults", "", "comma-separated dead links as endpoint pairs, e.g. 0-1,5-7")
		m       = flag.Int("m", 32000, "number of keys to sort")
		dist    = flag.String("dist", "uniform", "key distribution: uniform, gaussian, sorted, reverse, nearly-sorted, few-distinct, zipf-lite")
		model   = flag.String("model", "partial", "fault model: partial (links survive) or total (links die)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		tc      = flag.Int64("tc", 1, "cost of one comparison (t_c)")
		tsr     = flag.Int64("tsr", 1, "cost of one key per hop (t_s/r)")
		startup = flag.Int64("startup", 0, "per-hop message startup cost")
		est     = flag.Bool("estimate", false, "also print the paper's closed-form worst-case estimate")
		quiet   = flag.Bool("q", false, "print only the stats line")
		proto   = flag.String("proto", "full", "compare-exchange protocol: full (one-message block swap) or half (the paper's two-round Step 7)")
		distrib = flag.Bool("distribute", false, "include host scatter/gather of keys in the simulated time")
		traceN  = flag.Int("trace", 0, "print the first N simulator events and a per-node activity summary")
		steps   = flag.Bool("steps", false, "print each intermediate state (the paper's Figure 6 walkthrough)")
		inFile  = flag.String("in", "", "read keys from this file (.txt: one integer per line; .bin: little-endian int64) instead of generating a workload")
		outFile = flag.String("out", "", "write the sorted keys to this file (same formats)")
	)
	flag.Parse()

	faults, err := cli.ParseNodeList(*faultsF)
	if err != nil {
		fatal(err)
	}
	linkSet, err := cli.ParseEdgeList(*linksF)
	if err != nil {
		fatal(err)
	}
	var linkPairs [][2]hypersort.NodeID
	for _, e := range linkSet.Sorted() {
		linkPairs = append(linkPairs, [2]hypersort.NodeID{e.A, e.B})
	}
	fm, err := cli.ParseFaultModel(*model)
	if err != nil {
		fatal(err)
	}
	protocol, err := cli.ParseProtocol(*proto)
	if err != nil {
		fatal(err)
	}

	var rec *trace.Recorder
	cfg := hypersort.Config{
		Dim:                 *n,
		Faults:              faults,
		LinkFaults:          linkPairs,
		Model:               fm,
		Cost:                hypersort.CostModel{Compare: hypersort.Time(*tc), Elem: hypersort.Time(*tsr), Startup: hypersort.Time(*startup)},
		Protocol:            protocol,
		AccountDistribution: *distrib,
	}
	if *traceN > 0 {
		rec = trace.NewRecorder()
		cfg.Trace = rec.Record
	}
	s, err := hypersort.New(cfg)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		p := s.Partition()
		fmt.Printf("Q_%d, %d fault(s) %v, fault model %s\n", *n, len(faults), faults, *model)
		fmt.Printf("partition: mincut=%d |Ψ|=%d chosen=%v extra-comm=%d\n",
			p.Mincut, len(p.CuttingSet), p.Chosen, p.ExtraComm)
		fmt.Printf("working processors: %d  dangling: %v  utilization: %.1f%%\n",
			p.Working, p.Dangling, 100*p.Utilization)
	}

	var keys []hypersort.Key
	if *inFile != "" {
		keys, err = hostio.ReadKeys(*inFile)
		if err != nil {
			fatal(err)
		}
	} else {
		keys, err = workload.Generate(workload.Kind(*dist), *m, xrand.New(*seed))
		if err != nil {
			fatal(err)
		}
	}
	var sorted []hypersort.Key
	var stats hypersort.Stats
	if *steps {
		// Drop to the core API for the step hook; the facade covers the
		// common path.
		faultSet := cube.NewNodeSet(faults...)
		plan, err := partition.BuildPlan(*n, faultSet)
		if err != nil {
			fatal(err)
		}
		mach, err := machine.New(machine.Config{Dim: *n, Faults: faultSet, Model: fm, LinkFaults: linkSet,
			Cost: machine.CostModel{Compare: machine.Time(*tc), Elem: machine.Time(*tsr), Startup: machine.Time(*startup)}})
		if err != nil {
			fatal(err)
		}
		rec := core.NewStateRecorder()
		var res machine.Result
		sorted, res, err = core.FTSortOpt(mach, plan, keys, core.Options{StepHook: rec.Record})
		if err != nil {
			fatal(err)
		}
		stats = hypersort.Stats{Makespan: int64(res.Makespan), Messages: res.Messages,
			KeysSent: res.KeysSent, KeyHops: res.KeyHops, Comparisons: res.Comparisons}
		for _, snap := range rec.Snapshots() {
			fmt.Print(snap.Format())
		}
	} else {
		sorted, stats, err = s.Sort(keys)
		if err != nil {
			fatal(err)
		}
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		fatal(fmt.Errorf("internal error: output not sorted"))
	}
	fmt.Printf("sorted %d keys: time=%d messages=%d key-hops=%d comparisons=%d\n",
		len(sorted), stats.Makespan, stats.Messages, stats.KeyHops, stats.Comparisons)
	if *outFile != "" {
		if err := hostio.WriteKeys(*outFile, sorted); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outFile)
	}
	if rec != nil {
		events := rec.Events()
		fmt.Println()
		fmt.Print(trace.Timeline(events, *traceN))
		fmt.Println()
		fmt.Print(trace.Analyze(events).Summary())
	}
	if *est {
		t, err := s.EstimatedTime(*m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("closed-form worst-case estimate: %d (measured/estimate = %.2f)\n",
			t, float64(stats.Makespan)/float64(t))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftsort:", err)
	os.Exit(1)
}
