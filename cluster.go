package hypersort

import (
	"context"
	"time"

	"hypersort/internal/cluster"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/transport"
)

// ClusterConfig tunes a Cluster: the shard topology and routing
// thresholds, plus the per-shard engine knobs (each shard is one full
// Engine — its own plan cache, machine pools, and dispatch lanes — so
// the EngineConfig-shaped fields apply to every shard independently).
// The zero value selects sensible defaults: GOMAXPROCS shards, one
// replica, spill at twice the fused batch depth, shed at the admission
// queue bound.
type ClusterConfig struct {
	// Shards is the number of independent engine shards behind the
	// router. Values < 1 mean GOMAXPROCS.
	Shards int
	// Replicas is how many replica shards a hot plan key may spill to
	// when its home shard crosses the spill high-water mark. 0 disables
	// spill; values < 0 select the default (1). Clamped to Shards-1.
	Replicas int
	// SpillHighWater is the in-flight request count on a key's home
	// shard above which the router considers a replica. Values < 1
	// select the default (2x the fused batch depth).
	SpillHighWater int
	// ShedLimit is the per-shard in-flight count at which a shard stops
	// accepting routed traffic; when the home shard and every replica
	// reach it the request is refused with ErrClusterSaturated (which
	// wraps ErrAdmissionRejected — the same 503 contract). Values < 1
	// select the default (the admission queue depth).
	ShedLimit int

	// PoolSize, BatchWorkers, Trace, DisableBatching, MaxBatch,
	// MaxLinger, AdmissionQueue, Mode, and OracleSample mean exactly
	// what they mean on EngineConfig, applied to each shard.
	PoolSize        int
	BatchWorkers    int
	Trace           func(TraceEvent)
	DisableBatching bool
	MaxBatch        int
	MaxLinger       time.Duration
	AdmissionQueue  int
	Mode            ExecMode
	OracleSample    int
}

// ErrClusterSaturated is found (via errors.Is) in a Result.Err or Sort
// error when the cluster router shed the request: its home shard and
// every replica candidate were at the shed limit, so the request was
// refused before touching any queue. It always wraps
// ErrAdmissionRejected, so existing backpressure handling (503 +
// Retry-After in cmd/serve) applies unchanged.
var ErrClusterSaturated = cluster.ErrSaturated

// ClusterMetrics snapshots a cluster's lifetime counters: the router's
// request/spill/shed totals, the engine counters summed across shards,
// and each shard's own engine counters.
type ClusterMetrics = cluster.Metrics

// Cluster is N independent Engines behind a consistent-hash router —
// the paper's working-subcube partition applied to the serving stack
// itself. Same-configuration traffic keeps landing on (and fusing
// within) one shard; a hot configuration spills to replica shards when
// its home saturates; and when every eligible shard is saturated the
// router sheds the request with ErrClusterSaturated before it touches a
// queue. All methods are safe for concurrent use.
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster builds a cluster. Like NewEngine it performs no planning
// up front, and it registers its observability bundles — the router's
// spill/shed counters and per-shard series, plus the shared engine
// bundles — in the process-wide metrics registry.
func NewCluster(cfg ClusterConfig) *Cluster {
	opts := cluster.Options{
		Shards:         cfg.Shards,
		Replicas:       cfg.Replicas,
		SpillHighWater: cfg.SpillHighWater,
		ShedLimit:      cfg.ShedLimit,
		PoolSize:       cfg.PoolSize,
		Workers:        cfg.BatchWorkers,
		Batch: engine.BatchOptions{
			Disabled:   cfg.DisableBatching,
			MaxBatch:   cfg.MaxBatch,
			MaxLinger:  cfg.MaxLinger,
			QueueDepth: cfg.AdmissionQueue,
		},
		Mode:         cfg.Mode,
		OracleSample: cfg.OracleSample,
	}
	if cfg.Trace != nil {
		opts.Trace = machine.TraceFunc(cfg.Trace)
	}
	c := cluster.New(opts)
	c.Instrument(obs.Default())
	return &Cluster{c: c}
}

// NewRemoteCluster builds a cluster whose shards are separate PROCESSES
// (started with `serve -cluster-mode=shard`), one per address, reached
// over the pipelined binary wire protocol. Routing is identical to the
// in-process cluster — the consistent-hash ring hashes shard indices,
// so a proxy fleet sharing one ordered address list routes every key
// the same way — with two multi-process additions: spill and shed
// consult the live per-shard in-flight gauge fed back on every
// response, and a dead shard (connection refused, broken mid-call,
// timed out) is marked unhealthy, its keys re-routed to ring
// successors, and reprobed until it returns. The per-shard engine
// fields of cfg (PoolSize, MaxBatch, ...) are ignored here: each shard
// process configures its own engine from its own flags.
func NewRemoteCluster(cfg ClusterConfig, addrs []string) *Cluster {
	opts := cluster.Options{
		Replicas:       cfg.Replicas,
		SpillHighWater: cfg.SpillHighWater,
		ShedLimit:      cfg.ShedLimit,
		Workers:        cfg.BatchWorkers,
		Batch: engine.BatchOptions{
			MaxBatch:   cfg.MaxBatch,
			QueueDepth: cfg.AdmissionQueue,
		},
	}
	backends := make([]cluster.Backend, len(addrs))
	for i, addr := range addrs {
		backends[i] = cluster.NewRemoteShard(transport.NewClient(addr, transport.ClientOptions{}))
	}
	c := cluster.NewWithBackends(opts, backends)
	c.Instrument(obs.Default())
	return &Cluster{c: c}
}

// QueueWaitHint is the worst median queue wait any shard reported over
// the wire, in nanoseconds — the Retry-After signal for proxy mode.
// Always 0 for in-process clusters (their queue wait is observed in the
// local histogram instead).
func (c *Cluster) QueueWaitHint() int64 { return c.c.QueueWaitHint() }

// HealthyShards counts shards currently reachable (always NumShards for
// in-process clusters).
func (c *Cluster) HealthyShards() int { return c.c.HealthyShards() }

// NumShards returns the number of engine shards behind the router.
func (c *Cluster) NumShards() int { return c.c.NumShards() }

// Close shuts down every shard engine; see Engine.Close for the
// semantics (idempotent, a resource release rather than a poison pill).
func (c *Cluster) Close() { c.c.Close() }

// Metrics returns a snapshot of the cluster's lifetime counters.
func (c *Cluster) Metrics() ClusterMetrics { return c.c.Metrics() }

// ShardFor returns the shard ids eligible to serve cfg: its home shard
// first, then its replica candidates in ring order. Deterministic for a
// given cluster shape — useful for tests and capacity reasoning.
func (c *Cluster) ShardFor(cfg Config) ([]int, error) {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return nil, err
	}
	return c.c.Candidates(ecfg), nil
}

// Sort sorts keys ascending through the cluster router; see Engine.Sort.
func (c *Cluster) Sort(cfg Config, keys []Key) ([]Key, Stats, error) {
	return c.SortContext(context.Background(), cfg, keys)
}

// SortContext is Sort with deadline and cancellation awareness; see
// Engine.SortContext.
func (c *Cluster) SortContext(ctx context.Context, cfg Config, keys []Key) ([]Key, Stats, error) {
	res := c.doCtx(ctx, Request{Config: cfg, Op: OpSort, Keys: keys})
	return res.Keys, res.Stats, res.Err
}

// KthSmallest returns the k-th smallest key (1-based) via the cluster.
func (c *Cluster) KthSmallest(cfg Config, keys []Key, k int) (Key, Stats, error) {
	res := c.doCtx(context.Background(), Request{Config: cfg, Op: OpKthSmallest, Keys: keys, K: k})
	return res.Value, res.Stats, res.Err
}

// Median returns the lower median of keys via the cluster.
func (c *Cluster) Median(cfg Config, keys []Key) (Key, Stats, error) {
	res := c.doCtx(context.Background(), Request{Config: cfg, Op: OpMedian, Keys: keys})
	return res.Value, res.Stats, res.Err
}

// TopK returns the k largest keys in ascending order via the cluster.
func (c *Cluster) TopK(cfg Config, keys []Key, k int) ([]Key, Stats, error) {
	res := c.doCtx(context.Background(), Request{Config: cfg, Op: OpTopK, Keys: keys, K: k})
	return res.Keys, res.Stats, res.Err
}

// SortBatch executes the requests concurrently, each routed through the
// cluster independently; see Engine.SortBatch for the isolation
// contract.
func (c *Cluster) SortBatch(reqs []Request) []Result {
	return c.SortBatchContext(context.Background(), reqs)
}

// SortBatchContext is SortBatch with a shared context.
func (c *Cluster) SortBatchContext(ctx context.Context, reqs []Request) []Result {
	inner := make([]engine.Request, len(reqs))
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		ecfg, err := engineConfig(r.Config)
		if err != nil {
			errs[i] = err
			continue
		}
		inner[i] = engine.Request{Config: ecfg, Op: r.Op, Keys: r.Keys, K: r.K}
	}
	innerRes := c.c.BatchContext(ctx, inner)
	out := make([]Result, len(reqs))
	for i := range reqs {
		if errs[i] != nil {
			out[i] = Result{Err: errs[i]}
			continue
		}
		out[i] = Result{
			Keys:   innerRes[i].Keys,
			Value:  innerRes[i].Value,
			Stats:  statsOf(innerRes[i].Res),
			Direct: innerRes[i].Direct,
			Err:    innerRes[i].Err,
		}
	}
	return out
}

// InjectFault arms live fault injections against cfg on EVERY shard:
// the router may serve the configuration from its home shard or — under
// load — any replica, so a drill must cover them all. See
// Engine.InjectFault for the recovery contract.
func (c *Cluster) InjectFault(cfg Config, injs ...Injection) error {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return err
	}
	return c.c.InjectFault(ecfg, injs...)
}

// DisarmFaults clears cfg's injection schedule on every shard.
func (c *Cluster) DisarmFaults(cfg Config) error {
	ecfg, err := engineConfig(cfg)
	if err != nil {
		return err
	}
	return c.c.DisarmFaults(ecfg)
}

// doCtx runs one request through the cluster under ctx.
func (c *Cluster) doCtx(ctx context.Context, req Request) Result {
	ecfg, err := engineConfig(req.Config)
	if err != nil {
		return Result{Err: err}
	}
	res := c.c.DoContext(ctx, engine.Request{Config: ecfg, Op: req.Op, Keys: req.Keys, K: req.K})
	return Result{Keys: res.Keys, Value: res.Value, Stats: statsOf(res.Res), Direct: res.Direct, Err: res.Err}
}
