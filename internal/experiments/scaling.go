package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// SpeedupRow is one point of the scalability study (experiment E13):
// sorting a fixed M on ever larger fault-free cubes, with speedup and
// efficiency relative to the single-processor heapsort.
type SpeedupRow struct {
	N          int // cube dimension
	Procs      int
	M          int
	Makespan   machine.Time
	Speedup    float64
	Efficiency float64
}

// Speedup measures strong scaling of the (fault-free) distributed bitonic
// sort: T_1 is a single processor heapsorting all M keys; T_{2^n} is the
// full sort on Q_n.
func Speedup(mKeys int, maxN int, seed uint64, cost machine.CostModel) ([]SpeedupRow, error) {
	if (cost == machine.CostModel{}) {
		cost = machine.PaperCostModel()
	}
	rng := xrand.New(seed)
	keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
	var rows []SpeedupRow
	var t1 machine.Time
	for n := 0; n <= maxN; n++ {
		m, err := machine.New(machine.Config{Dim: n, Cost: cost})
		if err != nil {
			return nil, err
		}
		_, res, err := bitonic.Sort(m, bitonic.FullCube(n), keys, sortutil.Ascending)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			t1 = res.Makespan
		}
		procs := 1 << n
		rows = append(rows, SpeedupRow{
			N: n, Procs: procs, M: mKeys, Makespan: res.Makespan,
			Speedup:    float64(t1) / float64(res.Makespan),
			Efficiency: float64(t1) / float64(res.Makespan) / float64(procs),
		})
	}
	return rows, nil
}

// DefaultSpeedupCost is the cost model the speedup study reports with
// (the paper's unit-cost model).
func DefaultSpeedupCost() machine.CostModel { return machine.PaperCostModel() }

// FormatSpeedup renders E13's rows.
func FormatSpeedup(rows []SpeedupRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tprocessors\tM\ttime\tspeedup\tefficiency")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			r.N, r.Procs, r.M, r.Makespan, r.Speedup, r.Efficiency)
	}
	w.Flush()
	return b.String()
}

// DistributionRow is one point of the distribution-overhead study
// (experiment E12): the same fault-tolerant sort with and without the
// paper's excluded Step 2 scatter/gather phases in the clock.
type DistributionRow struct {
	N, R, M       int
	SortOnly      machine.Time
	WithDistrib   machine.Time
	OverheadShare float64 // (WithDistrib - SortOnly) / WithDistrib
}

// DistributionOverhead quantifies the cost the paper's model excludes:
// host scatter before sorting plus gather after, over a binomial tree
// from the first working processor.
func DistributionOverhead(n, r int, ms []int, seed uint64) ([]DistributionRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	faults := sampleFaults(h, r, rng)
	plan, err := partition.BuildPlan(n, faults)
	if err != nil {
		return nil, err
	}
	mach, err := machine.New(machine.Config{Dim: n, Faults: faults})
	if err != nil {
		return nil, err
	}
	var rows []DistributionRow
	for _, m := range ms {
		keys := workload.MustGenerate(workload.Uniform, m, rng)
		_, resSort, err := core.FTSortOpt(mach, plan, keys, core.Options{})
		if err != nil {
			return nil, err
		}
		_, resDist, err := core.FTSortOpt(mach, plan, keys, core.Options{AccountDistribution: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DistributionRow{
			N: n, R: r, M: m,
			SortOnly:      resSort.Makespan,
			WithDistrib:   resDist.Makespan,
			OverheadShare: float64(resDist.Makespan-resSort.Makespan) / float64(resDist.Makespan),
		})
	}
	return rows, nil
}

// FormatDistribution renders E12's rows.
func FormatDistribution(rows []DistributionRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tM\tsort only\twith distribution\toverhead share")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
			r.N, r.R, r.M, r.SortOnly, r.WithDistrib, 100*r.OverheadShare)
	}
	w.Flush()
	return b.String()
}
