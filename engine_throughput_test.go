// The continuous-batching throughput rig: many concurrent clients
// hammering sort requests with small inputs — the dispatch-overhead-
// dominated regime the fused dispatcher exists for. Two scenarios:
//
//   - BenchmarkEngineThroughput (the headline): 64 clients on ONE
//     configuration, a Q_2 cube that lost a processor. Every request is
//     fusable with every other, so the dispatcher coalesces the whole
//     client population into deep fused runs — the continuous-batching
//     analogue of many requests against one model.
//
//   - BenchmarkEngineThroughputMix: the same clients spread over a
//     degradation ladder of four configurations. Only requests on the
//     same configuration fuse, so batches are shallower and the pool-only
//     baseline overlaps four machines; the batching win narrows. E20
//     records both tables.
package hypersort

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/obs"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

const (
	throughputClients = 64
	throughputM       = 16 // keys per request: small-M, dispatch-dominated
)

// throughputModes are the engine configurations under comparison: the
// fused dispatcher, the same engine with batching disabled (every
// request takes the unbatched pool path), and the dispatcher routing
// fused batches to the direct host-speed substrate.
var throughputModes = []struct {
	name     string
	disabled bool
	mode     engine.Mode
}{
	{"batching", false, engine.ModeSim},
	{"pool-only", true, engine.ModeSim},
	{"direct", false, engine.ModeDirect},
}

// throughputConfigs is the mix scenario's configuration ladder: a
// healthy Q_2 degrading down to a single surviving processor — the
// fault-tolerance regimes the paper's algorithm exists for. Degraded
// cubes have small working sets, so their kernels are cheap and the
// per-request dispatch ceremony dominates.
func throughputConfigs() []engine.Config {
	return []engine.Config{
		{Dim: 2},                              // 4 working nodes
		{Dim: 2, Faults: []cube.NodeID{3}},    // 3 working nodes
		{Dim: 2, Faults: []cube.NodeID{2, 3}}, // 2 working nodes
		{Dim: 1, Faults: []cube.NodeID{1}},    // 1 working node
	}
}

// runThroughput drives one mode of one scenario: clients goroutines
// work-steal requests from a shared counter until b.N are served, each
// request picking its configuration through pick. Reports req/s, the p99
// nanoseconds a request waited for execution capacity (from the
// engine's own queue-wait histogram), and the mean fused batch depth.
func runThroughput(b *testing.B, disabled bool, mode engine.Mode, configs []engine.Config, pick func(client int, i int64) int) {
	rng := xrand.New(7)
	inputs := make([][]sortutil.Key, throughputClients)
	for i := range inputs {
		inputs[i] = workload.MustGenerate(workload.Uniform, throughputM, rng)
	}

	// A private registry per mode: the p99 read below must see only this
	// run's waits, not the process-lifetime default registry shared with
	// every other test.
	reg := obs.NewRegistry()
	// One machine per configuration: a saturated pool is exactly the
	// regime continuous batching targets.
	e := engine.NewOpts(1, throughputClients, engine.BatchOptions{Disabled: disabled, MaxBatch: 32, MaxLinger: 100 * time.Microsecond})
	e.SetMode(mode)
	e.Instrument(reg)
	defer e.Close()
	em := obs.NewEngineMetrics(reg) // same instruments: registration is idempotent

	// Warm plans and pool templates outside the timer.
	for _, cfg := range configs {
		if res := e.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: inputs[0]}); res.Err != nil {
			b.Fatal(res.Err)
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < throughputClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				req := engine.Request{
					Config: configs[pick(c, i)],
					Op:     engine.OpSort,
					Keys:   inputs[c],
				}
				if res := e.Do(req); res.Err != nil {
					b.Error(res.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(em.QueueWait.Quantile(0.99)), "p99-wait-ns")
	mtr := e.Metrics()
	if mtr.FusedBatches > 0 {
		b.ReportMetric(float64(mtr.FusedRequests)/float64(mtr.FusedBatches), "reqs/batch")
	}
	if mtr.DirectBatches > 0 {
		b.ReportMetric(float64(mtr.DirectRequests)/float64(mtr.DirectBatches), "reqs/batch")
	}
}

// BenchmarkEngineThroughput is the headline scenario: 64 concurrent
// clients issuing small sorts against one damaged cube (Q_2 with one
// fault, three working processors) — batching on (fused dispatches)
// versus off (pool-only baseline).
//
// Run with GOMAXPROCS=4 to reproduce the E20 table:
//
//	GOMAXPROCS=4 go test -run '^$' -bench BenchmarkEngineThroughput -benchtime 2s .
func BenchmarkEngineThroughput(b *testing.B) {
	hot := []engine.Config{{Dim: 2, Faults: []cube.NodeID{3}}}
	for _, mode := range throughputModes {
		b.Run(mode.name, func(b *testing.B) {
			runThroughput(b, mode.disabled, mode.mode, hot, func(int, int64) int { return 0 })
		})
	}
}

// BenchmarkEngineThroughputMix spreads the same client population over
// the four-rung degradation ladder, each request cycling to the next
// rung — the adversarial case for coalescing, since at most a quarter
// of the in-flight requests share a lane.
func BenchmarkEngineThroughputMix(b *testing.B) {
	configs := throughputConfigs()
	for _, mode := range throughputModes {
		b.Run(mode.name, func(b *testing.B) {
			runThroughput(b, mode.disabled, mode.mode, configs, func(_ int, i int64) int { return int(i) % len(configs) })
		})
	}
}

// TestEngineThroughputSmoke is the CI-sized version of the rig: a burst
// of concurrent small sorts against one machine must complete correctly
// AND actually coalesce — the dispatcher's coalescing counters are the
// assertion, so a regression that silently routes everything down the
// unbatched path fails here, not in a benchmark nobody is watching.
func TestEngineThroughputSmoke(t *testing.T) {
	e := engine.NewOpts(1, 32, engine.BatchOptions{MaxLinger: 2 * time.Millisecond})
	defer e.Close()
	cfg := engine.Config{Dim: 4, Faults: []cube.NodeID{3}}
	rng := xrand.New(9)

	const burst = 32
	inputs := make([][]sortutil.Key, burst)
	for i := range inputs {
		inputs[i] = workload.MustGenerate(workload.Uniform, 128, rng)
	}
	results := make([]engine.Result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: inputs[i]})
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if len(res.Keys) != len(inputs[i]) {
			t.Fatalf("request %d: %d keys out, %d in", i, len(res.Keys), len(inputs[i]))
		}
		for j := 1; j < len(res.Keys); j++ {
			if res.Keys[j-1] > res.Keys[j] {
				t.Fatalf("request %d: output not sorted at %d", i, j)
			}
		}
	}
	mtr := e.Metrics()
	if mtr.FusedRequests <= mtr.FusedBatches {
		t.Fatalf("no coalescing: %d fused requests in %d batches (pool of 1, burst of %d)",
			mtr.FusedRequests, mtr.FusedBatches, burst)
	}
	t.Logf("coalescing: %d requests in %d fused batches", mtr.FusedRequests, mtr.FusedBatches)
}
