package trace_test

import (
	"fmt"
	"os"

	"hypersort/internal/machine"
	"hypersort/internal/trace"
)

// ExampleAnalyze digests a small hand-built event stream: node 0 sends
// 64 keys one hop to node 1, which merges them. With real machines the
// stream comes from a Recorder wired into machine.Config.Trace.
func ExampleAnalyze() {
	events := []machine.TraceEvent{
		{Node: 0, Kind: machine.TraceCompute, Keys: 6, Time: 12},
		{Node: 0, Kind: machine.TraceSend, Peer: 1, Tag: 1, Keys: 64, Hops: 1, Time: 76},
		{Node: 1, Kind: machine.TraceRecv, Peer: 0, Tag: 1, Keys: 64, Time: 140},
		{Node: 1, Kind: machine.TraceCompute, Keys: 63, Time: 266},
	}

	rep := trace.Analyze(events)
	fmt.Printf("events: %d\n", rep.Events)
	fmt.Printf("makespan: %d\n", rep.Makespan)
	fmt.Printf("node 1 received: %d keys\n", rep.Profiles[1].KeysIn)
	fmt.Printf("messages 0->1: %d\n", rep.Traffic[0][1])
	fmt.Printf("extra-hop share: %.2f\n", rep.ExtraHopShare())
	// Output:
	// events: 4
	// makespan: 266
	// node 1 received: 64 keys
	// messages 0->1: 1
	// extra-hop share: 0.00
}

// ExampleWriteChrome exports a Ring's contents as Chrome trace-event
// JSON — load the bytes in https://ui.perfetto.dev to see the timeline.
func ExampleWriteChrome() {
	ring := trace.NewRing(1024, 1)
	// In production the ring is attached engine-wide; here we feed it
	// directly.
	ring.Record(machine.TraceEvent{Node: 0, Kind: machine.TraceSend, Peer: 1, Tag: 1, Keys: 8, Hops: 1, Time: 10})
	ring.Record(machine.TraceEvent{Node: 1, Kind: machine.TraceRecv, Peer: 0, Tag: 1, Keys: 8, Time: 24})

	if err := trace.WriteChrome(os.Stdout, ring.Snapshot(0)); err != nil {
		fmt.Println("export failed:", err)
	}
	// Output:
	// {"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"node 0"}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"node 1"}},{"name":"send","cat":"machine","ph":"i","ts":10,"pid":0,"tid":0,"s":"t","args":{"peer":1,"keys":8,"tag":1,"hops":1}},{"name":"recv","cat":"machine","ph":"i","ts":24,"pid":0,"tid":1,"s":"t","args":{"peer":0,"keys":8,"tag":1}}],"displayTimeUnit":"ns"}
}
