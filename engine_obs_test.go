package hypersort

import (
	"testing"

	"hypersort/internal/obs"
	"hypersort/internal/trace"
)

// TestEngineWideTrace pins the engine-wide trace hook: a ring attached
// via EngineConfig.Trace captures events from pooled machines, while
// per-request Config.Trace stays rejected (the two mechanisms must not
// be conflated).
func TestEngineWideTrace(t *testing.T) {
	ring := trace.NewRing(1024, 1)
	eng := NewEngine(EngineConfig{PoolSize: 2, BatchWorkers: 2, Trace: ring.Record})
	defer eng.Close()

	keys := demoKeys(64, 7)
	sorted, _, err := eng.Sort(Config{Dim: 3, Faults: []NodeID{5}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !isAscending(sorted) {
		t.Fatal("engine sort output not ascending")
	}
	if ring.Seen() == 0 || ring.Len() == 0 {
		t.Fatalf("engine-wide ring captured nothing (seen=%d)", ring.Seen())
	}

	// Per-request tracing remains a Sorter-only feature.
	if _, _, err := eng.Sort(Config{Dim: 3, Trace: func(TraceEvent) {}}, keys); err == nil {
		t.Fatal("per-request Config.Trace accepted by Engine")
	}
}

// TestEngineDefaultInstrumentation pins that every engine feeds the
// process-wide registry: serving one request must advance the request
// counter and record a latency observation.
func TestEngineDefaultInstrumentation(t *testing.T) {
	em := obs.NewEngineMetrics(obs.Default()) // same shared instruments NewEngine uses
	before := em.Requests.Value()
	latBefore := em.Latency.Count()

	eng := NewEngine(EngineConfig{PoolSize: 1, BatchWorkers: 1})
	defer eng.Close()
	if _, _, err := eng.Sort(Config{Dim: 2}, demoKeys(16, 3)); err != nil {
		t.Fatal(err)
	}

	if got := em.Requests.Value(); got != before+1 {
		t.Errorf("requests %d -> %d, want +1", before, got)
	}
	if got := em.Latency.Count(); got != latBefore+1 {
		t.Errorf("latency observations %d -> %d, want +1", latBefore, got)
	}
	if em.PoolInUse.Value() != 0 {
		t.Errorf("pool in-use = %d after quiesce, want 0", em.PoolInUse.Value())
	}
}

// demoKeys builds a deterministic unsorted key slice for facade tests.
func demoKeys(n int, stride Key) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key((Key(i)*stride + 13) % Key(n))
	}
	return keys
}

// isAscending reports whether keys are sorted ascending.
func isAscending(keys []Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
