// Package obs is the repository's dependency-free observability core: a
// metrics registry of atomic counters, gauges, and log-scale histograms
// with Prometheus text-format exposition and a JSON-friendly snapshot.
//
// It exists because the simulator's north star is a production-shaped
// service: every run should be able to explain itself *live*, not only
// through the post-hoc trace recorder. The design constraints, in order:
//
//  1. The disabled path must be near-free. Hot-loop call sites guard on a
//     nil metric-set pointer; the machine's per-message path pays nothing
//     beyond the nil check it already had for tracing.
//  2. The enabled path must be cheap enough to leave on in production:
//     every mutation is a single atomic add (no locks, no maps, no
//     allocation), and high-frequency sources aggregate locally and flush
//     once per run.
//  3. No dependencies. Exposition is hand-rolled Prometheus text format
//     (version 0.0.4), which every Prometheus-compatible scraper accepts.
//
// Metrics are registered once (typically at package init or engine
// construction) against a Registry; Default is the process-wide registry
// cmd/serve exposes on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative n is ignored — counters only
// go up (use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (pool occupancy,
// queue depth). The zero value is usable but unregistered.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric: a name, help text, optional fixed
// label pair, and the backing instrument.
type metric struct {
	name  string
	help  string
	label [2]string // {key, value}; empty key means unlabelled
	kind  metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// Registry holds named metrics and renders them. All methods are safe for
// concurrent use; registration is expected to be rare (startup) and
// lookups to be cached by callers, so a plain mutex suffices.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one cmd/serve exposes on
// GET /metrics. Library code that wants its metrics scraped without extra
// plumbing registers here.
func Default() *Registry { return defaultRegistry }

// key builds the uniqueness key for a (name, label) pair.
func key(name string, label [2]string) string {
	if label[0] == "" {
		return name
	}
	return name + "{" + label[0] + "=" + label[1] + "}"
}

// register adds m unless an identical (name, label) entry exists, in
// which case the existing entry is returned — registration is idempotent
// so independent components can share a metric by name.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(m.name, m.label)
	if exist, ok := r.byKey[k]; ok {
		return exist
	}
	r.metrics = append(r.metrics, m)
	r.byKey[k] = m
	return m
}

// Counter registers (or retrieves) the counter name with the given help
// text. Names follow Prometheus conventions: snake_case with a unit
// suffix (…_total for counters).
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// LabeledCounter registers (or retrieves) a counter carrying one fixed
// label pair — the registry's one concession to dimensionality, enough
// for phase- and kind-keyed families without a label-set allocator on the
// hot path.
func (r *Registry) LabeledCounter(name, help, labelKey, labelValue string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter,
		label: [2]string{labelKey, labelValue}, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or retrieves) the gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// LabeledGauge registers (or retrieves) a gauge carrying one fixed label
// pair — the gauge counterpart of LabeledCounter, used for per-shard
// families (one series per cluster shard) without a label-set allocator
// on the hot path.
func (r *Registry) LabeledGauge(name, help, labelKey, labelValue string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: kindGauge,
		label: [2]string{labelKey, labelValue}, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time by
// fn (process memory, pool sizes). Re-registering the same name keeps the
// first function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or retrieves) a log-scale histogram; see the
// Histogram type for the bucketing scheme. Document the observed unit in
// the help text (and, per Prometheus convention, in the name suffix).
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindHistogram, hist: &Histogram{}})
	return m.hist
}

// LabeledHistogram registers (or retrieves) a histogram carrying one
// fixed label pair — the histogram counterpart of LabeledCounter, used
// for per-dimension families (one series per hypercube dimension).
func (r *Registry) LabeledHistogram(name, help, labelKey, labelValue string) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindHistogram,
		label: [2]string{labelKey, labelValue}, hist: &Histogram{}})
	return m.hist
}

// SnapshotValue is one metric's state in a Snapshot.
type SnapshotValue struct {
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value is the scalar value for counters and gauges.
	Value int64 `json:"value,omitempty"`
	// Count and Sum summarize a histogram; Buckets maps upper bounds
	// (inclusive, power-of-two) to cumulative counts, omitting empty ones.
	Count   int64            `json:"count,omitempty"`
	Sum     int64            `json:"sum,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric's current state keyed by its
// exposition name (including the label, if any) — the JSON-friendly view
// cmd/serve embeds in /v1/metrics.
func (r *Registry) Snapshot() map[string]SnapshotValue {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]SnapshotValue, len(metrics))
	for _, m := range metrics {
		k := key(m.name, m.label)
		switch m.kind {
		case kindCounter:
			out[k] = SnapshotValue{Kind: "counter", Value: m.counter.Value()}
		case kindGauge:
			out[k] = SnapshotValue{Kind: "gauge", Value: m.gauge.Value()}
		case kindGaugeFunc:
			out[k] = SnapshotValue{Kind: "gauge", Value: m.fn()}
		case kindHistogram:
			count, sum, buckets := m.hist.snapshot()
			sv := SnapshotValue{Kind: "histogram", Count: count, Sum: sum}
			if len(buckets) > 0 {
				sv.Buckets = make(map[string]int64, len(buckets))
				cum := int64(0)
				for _, b := range buckets {
					cum += b.count
					sv.Buckets[fmt.Sprint(b.le)] = cum
				}
			}
			out[k] = sv
		}
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text format 0.0.4
// into w. Metrics are grouped by name (labelled series of one family
// share a single HELP/TYPE header) and sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].label[1] < metrics[j].label[1]
	})
	lastName := ""
	for _, m := range metrics {
		if m.name != lastName {
			lastName = m.name
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typeName(m.kind))
		}
		series := m.name
		if m.label[0] != "" {
			series = fmt.Sprintf("%s{%s=%q}", m.name, m.label[0], m.label[1])
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", series, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %d\n", series, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s %d\n", series, m.fn())
		case kindHistogram:
			m.hist.writePrometheus(w, m.name, m.label)
		}
	}
}

// typeName maps a metric kind to its Prometheus TYPE keyword.
func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}
