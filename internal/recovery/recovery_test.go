package recovery

import (
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func keys(n int, seed uint64) []sortutil.Key {
	return workload.MustGenerate(workload.Uniform, n, xrand.New(seed))
}

func TestRunNoFailures(t *testing.T) {
	// MTBF 0 disables injection: exactly one attempt, no waste.
	in := keys(300, 1)
	res, err := Run(Config{Dim: 4, MTBF: 0, Seed: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Wasted != 0 {
		t.Errorf("attempts=%d wasted=%d", res.Attempts, res.Wasted)
	}
	if res.Total != res.FinalSort {
		t.Error("total != final sort with no failures")
	}
	if !sortutil.IsSorted(res.Sorted, sortutil.Ascending) || !sortutil.SameMultiset(res.Sorted, in) {
		t.Error("wrong sort result")
	}
}

func TestRunHugeMTBFOneAttempt(t *testing.T) {
	in := keys(300, 2)
	res, err := Run(Config{Dim: 4, MTBF: 1 << 40, Seed: 2}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d with enormous MTBF", res.Attempts)
	}
}

func TestRunTinyMTBFRetries(t *testing.T) {
	// MTBF far below the sort time forces at least one restart; with
	// MaxAttempts = Dim+1 the session either succeeds on a degraded
	// machine or reports giving up.
	in := keys(2000, 3)
	res, err := Run(Config{Dim: 5, MTBF: 200, Seed: 3}, in)
	if err != nil {
		// Giving up is legitimate at this failure rate; the partial
		// result must still carry the attempt accounting.
		if res.Attempts == 0 {
			t.Error("error with zero attempts recorded")
		}
		return
	}
	if res.Attempts < 2 {
		t.Errorf("attempts = %d, expected restarts at MTBF far below sort time", res.Attempts)
	}
	if res.Wasted <= 0 {
		t.Error("restarts recorded but no wasted time")
	}
	if res.Total != res.Wasted+res.FinalSort {
		t.Error("total != wasted + final")
	}
	if len(res.Faults) < res.Attempts-1 {
		t.Errorf("faults %v fewer than attempts-1 = %d", res.Faults, res.Attempts-1)
	}
	if !sortutil.IsSorted(res.Sorted, sortutil.Ascending) || !sortutil.SameMultiset(res.Sorted, in) {
		t.Error("wrong sort result after recovery")
	}
}

func TestRunWithInitialFaults(t *testing.T) {
	in := keys(200, 4)
	initial := cube.NewNodeSet(3, 9)
	res, err := Run(Config{Dim: 4, InitialFaults: initial, MTBF: 0, Seed: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 2 {
		t.Errorf("faults = %v", res.Faults)
	}
	// The caller's set must not be mutated.
	if len(initial) != 2 {
		t.Error("initial fault set mutated")
	}
}

func TestRunDeterministic(t *testing.T) {
	in := keys(1500, 5)
	cfg := Config{Dim: 5, MTBF: 3000, Seed: 42}
	a, errA := Run(cfg, in)
	b, errB := Run(cfg, in)
	if (errA == nil) != (errB == nil) {
		t.Fatal("determinism broken in error path")
	}
	if a.Attempts != b.Attempts || a.Total != b.Total || a.Wasted != b.Wasted {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunGivesUp(t *testing.T) {
	in := keys(4000, 6)
	// MTBF of 1: a failure lands inside every attempt; the session must
	// exhaust MaxAttempts and report it.
	_, err := Run(Config{Dim: 3, MTBF: 1, MaxAttempts: 3, Seed: 7}, in)
	if err == nil {
		t.Fatal("expected give-up error")
	}
	if !strings.Contains(err.Error(), "gave up") && !strings.Contains(err.Error(), "partitionable") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSampleFailure(t *testing.T) {
	rng := xrand.New(8)
	if sampleFailure(0, rng) != 0 || sampleFailure(-5, rng) != 0 {
		t.Error("disabled MTBF should sample 0")
	}
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := sampleFailure(1000, rng)
		if v <= 0 {
			t.Fatal("non-positive sample")
		}
		sum += float64(v)
	}
	mean := sum / trials
	if mean < 900 || mean > 1100 {
		t.Errorf("sample mean %v far from MTBF 1000", mean)
	}
}

func TestHealthyNodes(t *testing.T) {
	h := healthyNodes(3, cube.NewNodeSet(0, 7))
	if len(h) != 6 {
		t.Errorf("healthy = %v", h)
	}
	for _, id := range h {
		if id == 0 || id == 7 {
			t.Error("faulty node listed healthy")
		}
	}
}

func TestRunCustomCostAndModel(t *testing.T) {
	in := keys(200, 9)
	res, err := Run(Config{
		Dim:   4,
		MTBF:  0,
		Model: machine.Total,
		Cost:  machine.CostModel{Compare: 2, Elem: 5, Startup: 10},
		Seed:  10,
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSort <= 0 {
		t.Error("no time accounted")
	}
}

func TestRunUnpartitionableInitialFaults(t *testing.T) {
	// Faults 0 and 1 on Q_1 leave no working processor: BuildPlan cannot
	// produce a plan and Run must surface that.
	_, err := Run(Config{Dim: 1, InitialFaults: cube.NewNodeSet(0, 1), MTBF: 0, Seed: 1}, keys(10, 10))
	if err == nil {
		t.Error("unpartitionable machine accepted")
	}
}
