package machine

import (
	"sync"
	"sync/atomic"
)

// runBarrier synchronizes a fixed group of kernel goroutines and their
// virtual clocks: every participant's clock leaves the barrier set to the
// group maximum. The barrier itself is free in virtual time — it models
// the logical phase structure of an SPMD algorithm, not a timed
// collective (the algorithms under study synchronize through their data
// messages, which are priced).
//
// Implementations are reusable across generations and runs: the machine
// caches one barrier per participant count and re-arms it between runs.
type runBarrier interface {
	// wait blocks participant slot until all participants have arrived,
	// then releases them all with the maximum clock. ok is false if the
	// run was aborted.
	wait(slot int, t Time) (syncTime Time, ok bool)
	// abort releases all waiters with ok=false and poisons future waits
	// until the next arm. Safe to call from multiple goroutines.
	abort()
	// arm prepares the barrier for a new run: clears the abort state and
	// drains any values stranded by a mid-generation abort. Called with
	// no kernel goroutines live.
	arm()
	size() int
}

// useFlatBarrier routes Runs through the legacy centralized barrier; the
// cross-substrate determinism harness flips it to pin that the combining
// tree is observationally identical. It is atomic because test engines
// run concurrently with the harness toggling it (SetFlatBarrier racing a
// concurrent engine's barrierFor was a real detector finding): atomicity
// makes the read/write well-defined, while the "no machine mid-Run when
// toggling" rule below keeps the semantics sane.
var useFlatBarrier atomic.Bool

// SetFlatBarrier selects the legacy mutex barrier for subsequently
// started Runs. Test-only; never toggle while a machine is mid-Run.
func SetFlatBarrier(on bool) { useFlatBarrier.Store(on) }

// barrierArity is the combining-tree fan-in. Four keeps the tree depth at
// log4(N) — two channel hops for a 64-node group — while each parent
// still drains its children with a handful of channel receives.
const barrierArity = 4

// treeBarrier is a channel-based combining tree. Participant slot i is
// tree node i; its parent is (i-1)/arity. Arrivals combine the running
// clock maximum upward; the root observes the global maximum and
// broadcasts it back down the same tree. Compared with the legacy flat
// barrier this replaces one mutex and a broadcast condition variable —
// under which N goroutines serialize twice per superstep — with disjoint
// bounded channels whose contention is spread across the tree.
//
// Equivalence with the flat barrier: both release every participant with
// the maximum clock among the n arrivals of the generation. (The flat
// barrier technically tracked a running maximum that was never reset
// across generations, but clocks are monotone and every participant
// leaves a generation at the shared maximum, so the running maximum and
// the per-generation maximum coincide.)
type treeBarrier struct {
	nodes   []treeBarNode
	stop    chan struct{} // closed on abort; re-made by arm
	aborted atomic.Bool
}

type treeBarNode struct {
	children int
	arrive   chan Time // buffered to children: child sends never block
	release  chan Time // buffered 1: parent handoff never blocks
}

func newTreeBarrier(n int) *treeBarrier {
	b := &treeBarrier{nodes: make([]treeBarNode, n), stop: make(chan struct{})}
	for i := range b.nodes {
		lo := barrierArity*i + 1
		hi := lo + barrierArity
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		cc := hi - lo
		b.nodes[i] = treeBarNode{
			children: cc,
			arrive:   make(chan Time, cc),
			release:  make(chan Time, 1),
		}
	}
	return b
}

func (b *treeBarrier) size() int { return len(b.nodes) }

func (b *treeBarrier) wait(slot int, t Time) (Time, bool) {
	nd := &b.nodes[slot]
	max := t
	for i := 0; i < nd.children; i++ {
		select {
		case v := <-nd.arrive:
			if v > max {
				max = v
			}
		case <-b.stop:
			return 0, false
		}
	}
	if slot > 0 {
		parent := &b.nodes[(slot-1)/barrierArity]
		select {
		case parent.arrive <- max:
		case <-b.stop:
			return 0, false
		}
		select {
		case v := <-nd.release:
			max = v
		case <-b.stop:
			return 0, false
		}
	}
	for c := barrierArity*slot + 1; c < barrierArity*slot+1+barrierArity && c < len(b.nodes); c++ {
		b.nodes[c].release <- max
	}
	return max, true
}

func (b *treeBarrier) abort() {
	if b.aborted.CompareAndSwap(false, true) {
		close(b.stop)
	}
}

func (b *treeBarrier) arm() {
	if b.aborted.Load() {
		b.stop = make(chan struct{})
		b.aborted.Store(false)
	}
	// A mid-generation abort can strand combined values in the tree's
	// channels; drain them so the next run starts clean. (After a normal
	// completion every channel is already empty.)
	for i := range b.nodes {
		nd := &b.nodes[i]
		for len(nd.arrive) > 0 {
			<-nd.arrive
		}
		for len(nd.release) > 0 {
			<-nd.release
		}
	}
}

// flatBarrier is the legacy centralized barrier: one mutex, one condition
// variable, a shared counter. Kept as the reference implementation for
// the cross-substrate determinism harness (SetFlatBarrier) — it is the
// semantics the tree barrier must reproduce bit-for-bit.
type flatBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	max     Time
	aborted bool
}

func newFlatBarrier(n int) *flatBarrier {
	b := &flatBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *flatBarrier) size() int { return b.n }

func (b *flatBarrier) wait(_ int, t Time) (syncTime Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return 0, false
	}
	if t > b.max {
		b.max = t
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		// Last arrival: open the next generation.
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.max, true
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return 0, false
	}
	return b.max, true
}

func (b *flatBarrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}

func (b *flatBarrier) arm() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count, b.max, b.aborted = 0, 0, false
}
