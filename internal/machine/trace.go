package machine

import "hypersort/internal/cube"

// TraceKind classifies a traced machine event.
type TraceKind uint8

const (
	// TraceSend is emitted when a processor injects a message; Time is
	// the post-injection clock, Peer the destination, Keys the payload
	// size, Hops the routed distance.
	TraceSend TraceKind = iota
	// TraceRecv is emitted when a processor consumes a message; Time is
	// the post-receive clock, Peer the source.
	TraceRecv
	// TraceCompute is emitted for a Compute call; Keys carries the
	// comparison count.
	TraceCompute
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	case TraceCompute:
		return "compute"
	}
	return "unknown"
}

// TraceEvent is one machine event delivered to a Config.Trace hook.
// Events are emitted by the processor goroutines concurrently; hooks must
// be safe for concurrent use (trace.Recorder is).
type TraceEvent struct {
	Node cube.NodeID
	Kind TraceKind
	Peer cube.NodeID // destination (send) or source (recv); Node itself for compute
	Tag  Tag
	Keys int  // payload size (send/recv) or comparison count (compute)
	Hops int  // routed hops (send only)
	Time Time // the node's clock after the event
}

// TraceFunc receives machine events; see Config.Trace.
type TraceFunc func(TraceEvent)

// emit delivers an event if tracing is configured.
func (m *Machine) emit(ev TraceEvent) {
	if m.cfg.Trace != nil {
		m.cfg.Trace(ev)
	}
}
