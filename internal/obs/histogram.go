package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of histogram buckets: bucket 0 for
// observations <= 1, then one per power of two. Bucket i (i >= 1) covers
// (2^(i-1), 2^i]; the last bucket also absorbs everything larger, so no
// observation is ever dropped.
const histBuckets = 64

// Histogram is a fixed log-scale (power-of-two bucket) histogram of
// non-negative int64 observations. The geometry is chosen for the
// quantities this repository measures — virtual-time durations, request
// latencies in nanoseconds, queue depths — whose interesting structure
// spans orders of magnitude: the log buckets resolve any such range to
// within a factor of two with no configuration and no allocation.
//
// Observe is three atomic adds; the zero value is ready to use. Negative
// observations are clamped to zero (virtual clocks never run backwards; a
// negative latency is a caller bug, and a histogram is the wrong place to
// crash on it).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex returns the bucket index for observation v: 0 for v <= 1,
// otherwise ceil(log2 v) (so bucket i covers (2^(i-1), 2^i]). Values
// above the last bound land in the final bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v) - 1) // ceil(log2 v): 2^i maps to bucket i
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketRow is one non-empty bucket in a snapshot: its inclusive upper
// bound and its own (non-cumulative) count.
type bucketRow struct {
	le    int64
	count int64
}

// snapshot reads the histogram's state: total count, sum, and the
// non-empty buckets in ascending bound order. The read is not atomic
// across buckets — a scrape racing observations may be off by in-flight
// increments, which is the standard (and harmless) histogram contract.
func (h *Histogram) snapshot() (count, sum int64, rows []bucketRow) {
	count = h.count.Load()
	sum = h.sum.Load()
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			rows = append(rows, bucketRow{le: boundOf(i), count: c})
		}
	}
	return count, sum, rows
}

// boundOf returns bucket i's inclusive upper bound, 2^i (bucket 0's
// bound is 2^0 = 1; negatives are clamped into it by Observe).
func boundOf(i int) int64 {
	return int64(1) << uint(i)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]): the inclusive upper bound of the bucket containing the q-th
// observation, i.e. the estimate is within a factor of two of the true
// value, matching the bucket geometry. Returns 0 when the histogram is
// empty. Like snapshot, the read is not atomic across buckets.
func (h *Histogram) Quantile(q float64) int64 {
	count, _, rows := h.snapshot()
	if count == 0 || len(rows) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	cum := int64(0)
	for _, row := range rows {
		cum += row.count
		if rank < cum {
			return row.le
		}
	}
	return rows[len(rows)-1].le
}

// writePrometheus renders the histogram as the conventional trio:
// cumulative _bucket{le="..."} series (only non-empty bounds plus +Inf),
// _sum, and _count.
func (h *Histogram) writePrometheus(w io.Writer, name string, label [2]string) {
	count, sum, rows := h.snapshot()
	extra := ""
	if label[0] != "" {
		extra = fmt.Sprintf("%s=%q,", label[0], label[1])
	}
	cum := int64(0)
	for _, row := range rows {
		cum += row.count
		fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, extra, row.le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, count)
	if label[0] != "" {
		fmt.Fprintf(w, "%s_sum{%s=%q} %d\n", name, label[0], label[1], sum)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label[0], label[1], count)
		return
	}
	fmt.Fprintf(w, "%s_sum %d\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
