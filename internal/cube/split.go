package cube

import (
	"fmt"
	"sort"
)

// CutSequence is an ordered list of cutting dimensions D = (d_1, ..., d_m).
// Partitioning Q_n along the dimensions of D in order yields 2^m subcubes
// of dimension s = n - m each: the single-fault subcube structure F_n^m of
// the paper when every subcube ends up with at most one faulty processor.
type CutSequence []int

// Validate checks that the sequence contains distinct dimensions inside
// [0, n).
func (d CutSequence) Validate(h Hypercube) error {
	seen := make(map[int]bool, len(d))
	for _, dim := range d {
		if dim < 0 || dim >= h.Dim() {
			return fmt.Errorf("cube: cutting dimension %d out of range [0,%d)", dim, h.Dim())
		}
		if seen[dim] {
			return fmt.Errorf("cube: cutting dimension %d repeated", dim)
		}
		seen[dim] = true
	}
	if len(d) > h.Dim() {
		return fmt.Errorf("cube: %d cutting dimensions exceed cube dimension %d", len(d), h.Dim())
	}
	return nil
}

// Clone returns an independent copy of the sequence.
func (d CutSequence) Clone() CutSequence { return append(CutSequence(nil), d...) }

// Equal reports element-wise equality.
func (d CutSequence) Equal(o CutSequence) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the sequence like the paper: "(0, 1, 3)".
func (d CutSequence) String() string {
	s := "("
	for i, dim := range d {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", dim)
	}
	return s + ")"
}

// Split is the address-space decomposition induced by cutting Q_n along a
// sequence D = (d_1, ..., d_m). Following the paper's §3 notation, each
// address u in Q_n factors into:
//
//   - an m-bit subcube index {v_{m-1} ... v_0} = {u_{d_m} ... u_{d_1}}
//     (v_i is the coordinate along the (i+1)-th cutting dimension), and
//   - an s-bit local address {w_{s-1} ... w_0} over the remaining s = n-m
//     dimensions, taken in ascending dimension order.
//
// Viewing each subcube as one node, the subcube indices form a Q_m whose
// dimension i corresponds to original dimension d_{i+1}.
type Split struct {
	h       Hypercube
	cuts    CutSequence // d_1..d_m
	rest    []int       // non-cut dimensions, ascending: w_j lives on rest[j]
	cutMask NodeID
}

// NewSplit builds the Split for cutting h along d. The sequence order
// matters for the v-address bit positions (v_i = coordinate along
// d_{i+1}); it returns an error if d is not a valid cut sequence.
func NewSplit(h Hypercube, d CutSequence) (*Split, error) {
	if err := d.Validate(h); err != nil {
		return nil, err
	}
	sp := &Split{h: h, cuts: d.Clone()}
	for _, dim := range d {
		sp.cutMask |= 1 << dim
	}
	for dim := 0; dim < h.Dim(); dim++ {
		if sp.cutMask&(1<<dim) == 0 {
			sp.rest = append(sp.rest, dim)
		}
	}
	return sp, nil
}

// MustSplit is NewSplit for statically known-valid sequences; it panics on
// error and is intended for tests and examples.
func MustSplit(h Hypercube, d CutSequence) *Split {
	sp, err := NewSplit(h, d)
	if err != nil {
		panic(err)
	}
	return sp
}

// Cube returns the underlying hypercube Q_n.
func (sp *Split) Cube() Hypercube { return sp.h }

// Cuts returns the cutting sequence D (not a copy; callers must not
// modify it).
func (sp *Split) Cuts() CutSequence { return sp.cuts }

// M returns m, the number of cutting dimensions (subcube-index width).
func (sp *Split) M() int { return len(sp.cuts) }

// S returns s = n - m, the dimension of each subcube (local width).
func (sp *Split) S() int { return len(sp.rest) }

// NumSubcubes returns 2^m.
func (sp *Split) NumSubcubes() int { return 1 << len(sp.cuts) }

// SubcubeSize returns 2^s, the number of processors per subcube.
func (sp *Split) SubcubeSize() int { return 1 << len(sp.rest) }

// V extracts the m-bit subcube index of address u: bit i of the result is
// the coordinate of u along cutting dimension d_{i+1}.
func (sp *Split) V(u NodeID) NodeID {
	var v NodeID
	for i, dim := range sp.cuts {
		if u&(1<<dim) != 0 {
			v |= 1 << i
		}
	}
	return v
}

// W extracts the s-bit local address of u within its subcube: bit j of the
// result is the coordinate of u along the j-th non-cut dimension
// (ascending).
func (sp *Split) W(u NodeID) NodeID {
	var w NodeID
	for j, dim := range sp.rest {
		if u&(1<<dim) != 0 {
			w |= 1 << j
		}
	}
	return w
}

// Compose is the inverse of (V, W): it reassembles the full Q_n address
// from a subcube index v and a local address w.
func (sp *Split) Compose(v, w NodeID) NodeID {
	var u NodeID
	for i, dim := range sp.cuts {
		if v&(1<<i) != 0 {
			u |= 1 << dim
		}
	}
	for j, dim := range sp.rest {
		if w&(1<<j) != 0 {
			u |= 1 << dim
		}
	}
	return u
}

// SubcubeOf returns the mask/value subcube holding every address whose
// subcube index is v.
func (sp *Split) SubcubeOf(v NodeID) Subcube {
	var val NodeID
	for i, dim := range sp.cuts {
		if v&(1<<i) != 0 {
			val |= 1 << dim
		}
	}
	return Subcube{Mask: sp.cutMask, Value: val}
}

// GroupFaults buckets a fault set by subcube index, returning for each of
// the 2^m subcubes the local (w-space) addresses of its faults, sorted.
func (sp *Split) GroupFaults(faults NodeSet) [][]NodeID {
	out := make([][]NodeID, sp.NumSubcubes())
	for f := range faults {
		v := sp.V(f)
		out[v] = append(out[v], sp.W(f))
	}
	for _, g := range out {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	return out
}

// IsSingleFault reports whether the split leaves at most one fault per
// subcube, i.e. whether D constructs a single-fault subcube structure
// F_n^m for this fault set.
func (sp *Split) IsSingleFault(faults NodeSet) bool {
	counts := make([]int, sp.NumSubcubes())
	for f := range faults {
		v := sp.V(f)
		counts[v]++
		if counts[v] > 1 {
			return false
		}
	}
	return true
}

// NeighborSubcube returns the subcube index adjacent to v along subcube
// dimension i (i.e. across original dimension d_{i+1}).
func (sp *Split) NeighborSubcube(v NodeID, i int) NodeID { return v ^ (1 << i) }

// LocalNeighborDim maps local (w-space) dimension j back to the original
// Q_n dimension it lives on.
func (sp *Split) LocalNeighborDim(j int) int { return sp.rest[j] }

// CutDim maps subcube (v-space) dimension i back to the original Q_n
// dimension d_{i+1} it lives on.
func (sp *Split) CutDim(i int) int { return sp.cuts[i] }
