// Package transport is the multi-process cluster's wire layer: a
// length-prefixed binary protocol for sort/top-k requests and results,
// a pipelined per-shard client, and a shard server that wraps one
// request engine behind a TCP listener.
//
// The protocol exists so PR 8's in-process consistent-hash router can
// dispatch to shard PROCESSES instead of in-process engines with
// nothing else changing: the ring, the spill/shed thresholds, and the
// facade stay byte-identical, and only the shard boundary moves from a
// method call to a socket. Three properties drive the design:
//
//   - Cheap frames. Every header field is a uvarint and the key payload
//     is raw little-endian 8-byte keys framed zero-copy on the encode
//     side (the frame references the request's key slice directly; no
//     intermediate buffer) and decoded with one aligned copy into a
//     caller-owned slice. Encode and decode of a 4096-key request stay
//     allocation-free in steady state — the proxy overhead gate in
//     BENCH_PR10.json pins that.
//
//   - Pipelining. Many requests are in flight per connection at once,
//     matched to callers by correlation ID, so one shard connection
//     sustains a storm without head-of-line request/response lockstep.
//     Responses may return in any order (shards serve concurrently).
//
//   - Load feedback. Every response — results, probe acks, everything —
//     carries the shard's current in-flight gauge and its observed p50
//     queue wait, so the proxy's spill/shed decisions and Retry-After
//     hints run against live shard load, not stale local guesses.
//
// Frame layout (all multi-byte integers little-endian or uvarint):
//
//	frame  := len(uint32 LE) body          len ≤ MaxFrame
//	body   := version(1) type(1) corr(uvarint) payload
//
// The version byte leads every frame so a mixed-version fleet fails
// loudly at the first frame rather than mis-parsing payloads. Payloads
// per type are documented on the Append* encoders below. PerNode clocks
// are not carried: remote results report aggregate counters only.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"unsafe"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// Version is the protocol version this package speaks. A frame with any
// other leading byte is rejected before its payload is touched.
const Version = 1

// MaxFrame bounds one frame's body length: large enough for tens of
// millions of keys, small enough that a corrupt or hostile length
// prefix cannot drive an allocation to OOM.
const MaxFrame = 1 << 28

// Frame types. Requests flow proxy→shard, their matching responses
// shard→proxy; every response type carries load Feedback.
const (
	// TReq is one sort/selection request; answered by TRes.
	TReq byte = 1 + iota
	// TRes is one request's result.
	TRes
	// TProbe is a health probe; answered by TProbeAck. The reprober
	// uses it to decide a dead shard came back.
	TProbe
	// TProbeAck answers TProbe with load feedback only.
	TProbeAck
	// TInject arms chaos injections on the shard; answered by TAck.
	TInject
	// TDisarm clears a configuration's injections; answered by TAck.
	TDisarm
	// TAck answers TInject/TDisarm: success or an encoded error.
	TAck
	// TMetrics requests the shard engine's counters; answered by
	// TMetricsAck.
	TMetrics
	// TMetricsAck carries the shard engine's Metrics snapshot.
	TMetricsAck
)

// Error kinds carried in result/ack frames so errors.Is keeps working
// across the process boundary: the proxy must map a shard's admission
// rejection to the same 503 contract as a local one.
const (
	errKindGeneric byte = iota
	errKindAdmission
	errKindUnrecoverable
)

// ErrBadFrame is wrapped by every decode failure: version mismatch,
// unknown type, truncated payload, or a field that fails validation.
var ErrBadFrame = errors.New("transport: malformed frame")

// Feedback is the shard-load report piggybacked on every response: the
// shard's requests currently in flight (after this one completed) and
// its observed median queue wait in nanoseconds. The proxy feeds both
// into spill/shed routing and Retry-After hints.
type Feedback struct {
	Inflight    int64
	QueueWaitNs int64
}

// Frame is one decoded frame. Which fields are meaningful depends on
// Type: Req/Deadline for TReq; Res for TRes; Cfg and Injs for TInject
// (Cfg alone for TDisarm); Err for TAck; Metrics for TMetricsAck; and
// Feedback for every response type.
type Frame struct {
	Type     byte
	Corr     uint64
	Req      engine.Request
	Deadline int64 // unix nanoseconds; 0 = none
	Res      engine.Result
	Cfg      engine.Config
	Injs     []machine.Injection
	Err      error
	Metrics  engine.Metrics
	Feedback Feedback
}

// hostLittleEndian reports whether the host stores integers little-
// endian — the fast path for the raw key payload. Big-endian hosts take
// a per-key conversion loop and interoperate bit-exactly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// keyBytes reinterprets a key slice as its backing bytes without
// copying. Converting *Key to *byte never misaligns (byte alignment is
// 1), so this is safe under checkptr in both directions used here:
// encode appends the view, decode copies INTO the view of an aligned
// destination slice.
func keyBytes(keys []sortutil.Key) []byte {
	if len(keys) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&keys[0])), len(keys)*8)
}

// beginFrame reserves the 4-byte length prefix and appends the body
// header; endFrame patches the prefix once the body is complete.
func beginFrame(dst []byte, typ byte, corr uint64) []byte {
	dst = append(dst, 0, 0, 0, 0, Version, typ)
	return binary.AppendUvarint(dst, corr)
}

// endFrame patches the length prefix reserved by beginFrame at offset
// start.
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// appendKeys appends the key payload: uvarint count, then count raw
// little-endian 8-byte keys — zero-copy from the caller's slice on
// little-endian hosts.
func appendKeys(dst []byte, keys []sortutil.Key) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	if hostLittleEndian {
		return append(dst, keyBytes(keys)...)
	}
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// appendConfig appends one engine configuration: dim, model, protocol,
// routing, a flags byte (bit 0 = AccountDistribution), the three cost
// constants, then the fault and link-fault lists.
func appendConfig(dst []byte, cfg engine.Config) []byte {
	dst = binary.AppendUvarint(dst, uint64(cfg.Dim))
	var flags byte
	if cfg.AccountDistribution {
		flags |= 1
	}
	dst = append(dst, byte(cfg.Model), byte(cfg.Protocol), byte(cfg.Routing), flags)
	dst = binary.AppendUvarint(dst, uint64(cfg.Cost.Compare))
	dst = binary.AppendUvarint(dst, uint64(cfg.Cost.Elem))
	dst = binary.AppendUvarint(dst, uint64(cfg.Cost.Startup))
	dst = binary.AppendUvarint(dst, uint64(len(cfg.Faults)))
	for _, f := range cfg.Faults {
		dst = binary.AppendUvarint(dst, uint64(f))
	}
	dst = binary.AppendUvarint(dst, uint64(len(cfg.LinkFaults)))
	for _, l := range cfg.LinkFaults {
		dst = binary.AppendUvarint(dst, uint64(l[0]))
		dst = binary.AppendUvarint(dst, uint64(l[1]))
	}
	return dst
}

// appendFeedback appends the load-feedback trailer every response
// carries.
func appendFeedback(dst []byte, fb Feedback) []byte {
	dst = binary.AppendUvarint(dst, uint64(max64(fb.Inflight, 0)))
	return binary.AppendUvarint(dst, uint64(max64(fb.QueueWaitNs, 0)))
}

// appendError appends an error as kind byte plus message, preserving
// the sentinel identities the HTTP layer switches on.
func appendError(dst []byte, err error) []byte {
	kind := errKindGeneric
	switch {
	case errors.Is(err, engine.ErrAdmissionRejected):
		kind = errKindAdmission
	case errors.Is(err, engine.ErrUnrecoverable):
		kind = errKindUnrecoverable
	}
	dst = append(dst, kind)
	msg := err.Error()
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// AppendRequest appends one request frame to dst and returns the
// extended slice. deadline is the caller's context deadline in unix
// nanoseconds (0 = none); the shard re-arms it on its own context, so
// cancellation survives the process boundary. Payload:
//
//	op(1) k(uvarint) deadline(uvarint) config keys
func AppendRequest(dst []byte, corr uint64, req engine.Request, deadline int64) []byte {
	start := len(dst)
	dst = beginFrame(dst, TReq, corr)
	dst = append(dst, byte(req.Op))
	dst = binary.AppendUvarint(dst, uint64(req.K))
	dst = binary.AppendUvarint(dst, uint64(max64(deadline, 0)))
	dst = appendConfig(dst, req.Config)
	dst = appendKeys(dst, req.Keys)
	return endFrame(dst, start)
}

// AppendResult appends one result frame. Payload:
//
//	status(1) [errkind(1) errlen(uvarint) errmsg]
//	direct(1) value(zigzag varint)
//	stats(9 uvarints) feedback keys
func AppendResult(dst []byte, corr uint64, res engine.Result, fb Feedback) []byte {
	start := len(dst)
	dst = beginFrame(dst, TRes, corr)
	if res.Err != nil {
		dst = append(dst, 1)
		dst = appendError(dst, res.Err)
		dst = appendFeedback(dst, fb)
		return endFrame(dst, start)
	}
	dst = append(dst, 0)
	var direct byte
	if res.Direct {
		direct = 1
	}
	dst = append(dst, direct)
	dst = binary.AppendVarint(dst, int64(res.Value))
	r := res.Res
	for _, v := range [...]int64{int64(r.Makespan), r.Messages, r.KeysSent, r.KeyHops,
		r.Comparisons, r.RecvWaits, int64(r.LinkWait), r.MaxLinkOccupancy, r.StripedSends} {
		dst = binary.AppendUvarint(dst, uint64(max64(v, 0)))
	}
	dst = appendFeedback(dst, fb)
	dst = appendKeys(dst, res.Keys)
	return endFrame(dst, start)
}

// AppendProbe appends a health-probe frame (empty payload).
func AppendProbe(dst []byte, corr uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, TProbe, corr)
	return endFrame(dst, start)
}

// AppendProbeAck appends a probe acknowledgement: feedback only.
func AppendProbeAck(dst []byte, corr uint64, fb Feedback) []byte {
	start := len(dst)
	dst = beginFrame(dst, TProbeAck, corr)
	dst = appendFeedback(dst, fb)
	return endFrame(dst, start)
}

// AppendInject appends a chaos-arm frame: the target configuration and
// the scheduled casualties (kind, node, link endpoints, trigger time,
// send-count trigger per injection).
func AppendInject(dst []byte, corr uint64, cfg engine.Config, injs []machine.Injection) []byte {
	start := len(dst)
	dst = beginFrame(dst, TInject, corr)
	dst = appendConfig(dst, cfg)
	dst = binary.AppendUvarint(dst, uint64(len(injs)))
	for _, inj := range injs {
		dst = append(dst, byte(inj.Kind))
		dst = binary.AppendUvarint(dst, uint64(inj.Node))
		dst = binary.AppendUvarint(dst, uint64(inj.Link[0]))
		dst = binary.AppendUvarint(dst, uint64(inj.Link[1]))
		dst = binary.AppendUvarint(dst, uint64(max64(int64(inj.At), 0)))
		dst = binary.AppendUvarint(dst, uint64(max64(inj.AfterMessages, 0)))
	}
	return endFrame(dst, start)
}

// AppendDisarm appends a chaos-disarm frame: the target configuration.
func AppendDisarm(dst []byte, corr uint64, cfg engine.Config) []byte {
	start := len(dst)
	dst = beginFrame(dst, TDisarm, corr)
	dst = appendConfig(dst, cfg)
	return endFrame(dst, start)
}

// AppendAck appends an inject/disarm acknowledgement: status byte, the
// encoded error when status is 1, then feedback.
func AppendAck(dst []byte, corr uint64, err error, fb Feedback) []byte {
	start := len(dst)
	dst = beginFrame(dst, TAck, corr)
	if err != nil {
		dst = append(dst, 1)
		dst = appendError(dst, err)
	} else {
		dst = append(dst, 0)
	}
	dst = appendFeedback(dst, fb)
	return endFrame(dst, start)
}

// AppendMetricsReq appends a metrics-snapshot request (empty payload).
func AppendMetricsReq(dst []byte, corr uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, TMetrics, corr)
	return endFrame(dst, start)
}

// AppendMetricsAck appends a metrics snapshot: the engine's 15 lifetime
// counters as uvarints, then feedback.
func AppendMetricsAck(dst []byte, corr uint64, m engine.Metrics, fb Feedback) []byte {
	start := len(dst)
	dst = beginFrame(dst, TMetricsAck, corr)
	for _, v := range metricsFields(&m) {
		dst = binary.AppendUvarint(dst, uint64(max64(*v, 0)))
	}
	dst = appendFeedback(dst, fb)
	return endFrame(dst, start)
}

// metricsFields fixes the wire order of the engine counter set: append
// new counters at the END or bump Version.
func metricsFields(m *engine.Metrics) [15]*int64 {
	return [15]*int64{
		&m.Requests, &m.PlanHits, &m.PlanMisses, &m.MachinesBuilt, &m.MachinesCloned,
		&m.FusedBatches, &m.FusedRequests, &m.AdmissionRejected, &m.Cancelled,
		&m.Replans, &m.Unrecoverable, &m.DirectRequests, &m.DirectBatches,
		&m.OracleRuns, &m.ParityBreaks,
	}
}

// wireError is an error reconstructed from the wire: the shard-side
// message verbatim, unwrapping to the sentinel its kind byte named so
// errors.Is works across the process boundary.
type wireError struct {
	msg  string
	base error
}

// Error implements error.
func (e *wireError) Error() string { return e.msg }

// Unwrap exposes the sentinel identity (nil for generic errors).
func (e *wireError) Unwrap() error { return e.base }

// reader is a bounds-checked cursor over one frame body. Every read
// reports failure by setting bad; the decoder checks once per frame, so
// hostile input cannot panic or over-read.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

// uvarintLen is the canonical encoded length of v.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	// Reject over-long ("non-minimal") encodings: the codec has exactly
	// one byte sequence per value, which is what lets the fuzz harness
	// assert decode-then-re-encode byte identity — and denies hostile
	// peers an aliasing channel.
	if n <= 0 || n != uvarintLen(v) {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 || n != uvarintLen(uint64(v)<<1^uint64(v>>63)) {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

// i64 reads a uvarint that must fit a non-negative int64 (counters,
// timestamps): values with the top bit set would change sign on decode
// and clamp to zero on re-encode, so they are rejected instead.
func (r *reader) i64() int64 {
	v := r.uvarint()
	if v > 1<<63-1 {
		r.bad = true
		return 0
	}
	return int64(v)
}

// node reads a uvarint that must fit a cube.NodeID (uint32).
func (r *reader) node() cube.NodeID {
	v := r.uvarint()
	if v > 1<<32-1 {
		r.bad = true
		return 0
	}
	return cube.NodeID(v)
}

// boolByte reads a byte that must be exactly 0 or 1 — status and
// boolean fields, kept canonical for the same reason as varints.
func (r *reader) boolByte() bool {
	c := r.byte()
	if c > 1 {
		r.bad = true
	}
	return c == 1
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.bad = true
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// keys decodes a key payload into dst (grown as needed). The count is
// validated against the remaining bytes BEFORE any allocation, so a
// hostile count cannot force a huge allocation.
func (r *reader) keys(dst []sortutil.Key) []sortutil.Key {
	n64 := r.uvarint()
	if r.bad {
		return nil
	}
	rem := len(r.b) - r.off
	if n64 > uint64(rem/8) {
		r.bad = true
		return nil
	}
	n := int(n64)
	if cap(dst) < n {
		dst = make([]sortutil.Key, n)
	}
	dst = dst[:n]
	raw := r.bytes(n * 8)
	if r.bad {
		return nil
	}
	if hostLittleEndian {
		copy(keyBytes(dst), raw)
	} else {
		for i := range dst {
			dst[i] = sortutil.Key(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return dst
}

// config decodes one engine configuration. List lengths are validated
// against the remaining frame bytes (each entry is at least one byte)
// before allocating.
// config decodes a Config, appending fault lists into the caller's
// scratch slices (pass nil when there is nothing to reuse) — the proxy
// hot path decodes the same shapes over and over and must not allocate
// per frame. Empty lists decode to nil, matching the encoder's view
// that nil and empty are the same wire bytes.
func (r *reader) config(faults []cube.NodeID, links [][2]cube.NodeID) engine.Config {
	var cfg engine.Config
	cfg.Dim = int(r.uvarint())
	cfg.Model = machine.FaultModel(r.byte())
	cfg.Protocol = bitonic.Protocol(r.byte())
	cfg.Routing = machine.RoutingPolicy(r.byte())
	flags := r.byte()
	if flags&^1 != 0 {
		r.bad = true // unknown flag bits: not representable, reject
		return cfg
	}
	cfg.AccountDistribution = flags&1 != 0
	cfg.Cost.Compare = machine.Time(r.i64())
	cfg.Cost.Elem = machine.Time(r.i64())
	cfg.Cost.Startup = machine.Time(r.i64())
	nf := r.uvarint()
	if r.bad || nf > uint64(len(r.b)-r.off) {
		r.bad = true
		return cfg
	}
	if nf > 0 {
		cfg.Faults = faults[:0]
		for i := uint64(0); i < nf; i++ {
			cfg.Faults = append(cfg.Faults, r.node())
		}
	}
	nl := r.uvarint()
	if r.bad || nl > uint64(len(r.b)-r.off) {
		r.bad = true
		return cfg
	}
	if nl > 0 {
		cfg.LinkFaults = links[:0]
		for i := uint64(0); i < nl; i++ {
			cfg.LinkFaults = append(cfg.LinkFaults, [2]cube.NodeID{r.node(), r.node()})
		}
	}
	return cfg
}

// feedback decodes the response load trailer.
func (r *reader) feedback() Feedback {
	return Feedback{Inflight: r.i64(), QueueWaitNs: r.i64()}
}

// err decodes an encoded error (kind byte + message).
func (r *reader) err() error {
	kind := r.byte()
	if kind > errKindUnrecoverable {
		r.bad = true
		return nil
	}
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	msg := string(r.bytes(int(n)))
	var base error
	switch kind {
	case errKindAdmission:
		base = engine.ErrAdmissionRejected
	case errKindUnrecoverable:
		base = engine.ErrUnrecoverable
	}
	return &wireError{msg: msg, base: base}
}

// DecodeFrame decodes one frame body (the bytes after the length
// prefix) into f, reusing f's key buffers when their capacity suffices.
// Arbitrary input never panics: any structural violation returns an
// error wrapping ErrBadFrame, and list lengths are validated against
// the body size before any allocation. Fields of f not used by the
// decoded type are reset.
func DecodeFrame(f *Frame, body []byte) error {
	reqKeys, resKeys := f.Req.Keys, f.Res.Keys
	reqFaults, reqLinks := f.Req.Config.Faults, f.Req.Config.LinkFaults
	cfgFaults, cfgLinks := f.Cfg.Faults, f.Cfg.LinkFaults
	*f = Frame{}
	r := &reader{b: body}
	if v := r.byte(); v != Version {
		if r.bad {
			return fmt.Errorf("%w: empty body", ErrBadFrame)
		}
		return fmt.Errorf("%w: protocol version %d, want %d", ErrBadFrame, v, Version)
	}
	f.Type = r.byte()
	f.Corr = r.uvarint()
	switch f.Type {
	case TReq:
		f.Req.Op = engine.Op(r.byte())
		f.Req.K = int(r.i64())
		f.Deadline = r.i64()
		f.Req.Config = r.config(reqFaults, reqLinks)
		f.Req.Keys = r.keys(reqKeys[:0])
	case TRes:
		if r.boolByte() {
			f.Res.Err = r.err()
			f.Feedback = r.feedback()
			break
		}
		f.Res.Direct = r.boolByte()
		f.Res.Value = sortutil.Key(r.varint())
		f.Res.Res.Makespan = machine.Time(r.i64())
		f.Res.Res.Messages = r.i64()
		f.Res.Res.KeysSent = r.i64()
		f.Res.Res.KeyHops = r.i64()
		f.Res.Res.Comparisons = r.i64()
		f.Res.Res.RecvWaits = r.i64()
		f.Res.Res.LinkWait = machine.Time(r.i64())
		f.Res.Res.MaxLinkOccupancy = r.i64()
		f.Res.Res.StripedSends = r.i64()
		f.Feedback = r.feedback()
		f.Res.Keys = r.keys(resKeys[:0])
	case TProbe, TMetrics:
		// Empty payloads.
	case TProbeAck:
		f.Feedback = r.feedback()
	case TInject:
		f.Cfg = r.config(cfgFaults, cfgLinks)
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)-r.off)+1 {
			return fmt.Errorf("%w: injection count %d exceeds frame", ErrBadFrame, n)
		}
		f.Injs = make([]machine.Injection, n)
		for i := range f.Injs {
			f.Injs[i].Kind = machine.InjectionKind(r.byte())
			f.Injs[i].Node = r.node()
			f.Injs[i].Link[0] = r.node()
			f.Injs[i].Link[1] = r.node()
			f.Injs[i].At = machine.Time(r.i64())
			f.Injs[i].AfterMessages = r.i64()
		}
	case TDisarm:
		f.Cfg = r.config(cfgFaults, cfgLinks)
	case TAck:
		if r.boolByte() {
			f.Err = r.err()
		}
		f.Feedback = r.feedback()
	case TMetricsAck:
		for _, v := range metricsFields(&f.Metrics) {
			*v = r.i64()
		}
		f.Feedback = r.feedback()
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, f.Type)
	}
	if r.bad {
		return fmt.Errorf("%w: truncated %s frame", ErrBadFrame, typeName(f.Type))
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes after %s frame", ErrBadFrame, len(r.b)-r.off, typeName(f.Type))
	}
	return nil
}

// typeName names a frame type for error messages.
func typeName(t byte) string {
	switch t {
	case TReq:
		return "request"
	case TRes:
		return "result"
	case TProbe:
		return "probe"
	case TProbeAck:
		return "probe-ack"
	case TInject:
		return "inject"
	case TDisarm:
		return "disarm"
	case TAck:
		return "ack"
	case TMetrics:
		return "metrics"
	case TMetricsAck:
		return "metrics-ack"
	}
	return fmt.Sprintf("type-%d", t)
}

// max64 is the int64 maximum (the wire encodes counters as uvarints, so
// negatives — which should not occur — clamp to zero rather than
// exploding into 2^64-ish values).
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
