// Cross-substrate determinism harness: the tentpole proof that the
// lock-free execution core (SPSC link rings, tree barrier, persistent
// workers) changes only wall-clock speed, never simulated results.
//
// The full fault-tolerant sort runs under every substrate combination —
// {fast paths, general-path-only} x {tree, flat} barrier — and under
// GOMAXPROCS 1 and NumCPU, on both cold (first-Run, one-shot goroutines)
// and warm (persistent-worker) machines. Every Result quantity that
// virtual time defines — Makespan, Messages, KeysSent, KeyHops,
// Comparisons, PerNode — and the sorted output must be bit-identical
// across all of them. RecvWaits is excluded by design: it counts host
// scheduling stalls, which legitimately vary across substrates.
//
// The tests mutate package-level substrate knobs and GOMAXPROCS, so
// nothing here may run in parallel with other tests (no t.Parallel).
package machine_test

import (
	"errors"
	"maps"
	"runtime"
	"slices"
	"testing"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// variant is one execution-substrate configuration under test.
type variant struct {
	name        string
	generalOnly bool
	flatBarrier bool
	procs       int
}

func substrateVariants() []variant {
	ncpu := runtime.NumCPU()
	vs := []variant{
		{"fast/tree/procs=1", false, false, 1},
		{"fast/tree/procs=n", false, false, ncpu},
		{"general/tree/procs=n", true, false, ncpu},
		{"fast/flat/procs=n", false, true, ncpu},
		{"general/flat/procs=1", true, true, 1},
	}
	return vs
}

// withSubstrate runs fn under the variant's knobs, restoring the
// defaults (and GOMAXPROCS) afterwards.
func withSubstrate(v variant, fn func()) {
	prev := runtime.GOMAXPROCS(v.procs)
	machine.SetGeneralPathOnly(v.generalOnly)
	machine.SetFlatBarrier(v.flatBarrier)
	defer func() {
		runtime.GOMAXPROCS(prev)
		machine.SetGeneralPathOnly(false)
		machine.SetFlatBarrier(false)
	}()
	fn()
}

// resultsEqual compares every virtual-time-defined Result field,
// ignoring RecvWaits.
func resultsEqual(a, b machine.Result) bool {
	return a.Makespan == b.Makespan &&
		a.Messages == b.Messages &&
		a.KeysSent == b.KeysSent &&
		a.KeyHops == b.KeyHops &&
		a.Comparisons == b.Comparisons &&
		maps.Equal(a.PerNode, b.PerNode)
}

func TestCrossSubstrateDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		dim    int
		faults []cube.NodeID
		model  machine.FaultModel
		mKeys  int
	}{
		{"q4-fault-free", 4, nil, machine.Partial, 197},
		{"q5-two-faults", 5, []cube.NodeID{3, 17}, machine.Partial, 430},
		{"q5-total-model", 5, []cube.NodeID{9, 22}, machine.Total, 256},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := cube.NewNodeSet(tc.faults...)
			plan, err := partition.BuildPlan(tc.dim, faults)
			if err != nil {
				t.Fatal(err)
			}
			keys := workload.MustGenerate(workload.Uniform, tc.mKeys, xrand.New(7))

			var refOut []sortutil.Key
			var refRes machine.Result
			for i, v := range substrateVariants() {
				withSubstrate(v, func() {
					m := machine.MustNew(machine.Config{Dim: tc.dim, Faults: faults, Model: tc.model})
					// Two runs per machine: the first exercises the cold
					// one-shot path, the second the persistent-worker
					// path. Both must agree with each other and with
					// every other variant.
					for run := 0; run < 2; run++ {
						out, res, err := core.FTSortOpt(m, plan, keys, core.Options{})
						if err != nil {
							t.Fatalf("%s run %d: %v", v.name, run, err)
						}
						if i == 0 && run == 0 {
							refOut, refRes = out, res
							return
						}
						if !slices.Equal(out, refOut) {
							t.Errorf("%s run %d: sorted output diverges", v.name, run)
						}
						if !resultsEqual(res, refRes) {
							t.Errorf("%s run %d: Result diverges\n got %+v\nwant %+v", v.name, run, res, refRes)
						}
					}
					m.Close()
				})
			}
		})
	}
}

// TestCrossSubstrateDeterminismInjection extends the harness to live
// faults: an armed kill must fire at the same virtual instant on the
// same victim under every substrate, and the degraded re-run on the
// survivors must produce bit-identical results everywhere. This is what
// makes chaos schedules replayable: (seed, injection schedule) pins the
// entire recovery trajectory regardless of host parallelism.
func TestCrossSubstrateDeterminismInjection(t *testing.T) {
	keys := workload.MustGenerate(workload.Uniform, 260, xrand.New(13))
	plan, err := partition.BuildPlan(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	degradedFaults := cube.NewNodeSet(5)
	degradedPlan, err := partition.BuildPlan(4, degradedFaults)
	if err != nil {
		t.Fatal(err)
	}

	var refDied machine.ProcessorDiedError
	var refOut []sortutil.Key
	var refRes machine.Result
	for i, v := range substrateVariants() {
		withSubstrate(v, func() {
			// The casualty run: the kill must strike the same victim at
			// the same virtual time on every substrate.
			m := machine.MustNew(machine.Config{Dim: 4})
			if err := m.Arm(machine.Injection{Kind: machine.KillNode, Node: 5, At: 30}); err != nil {
				t.Fatal(err)
			}
			_, _, err := core.FTSortOpt(m, plan, keys, core.Options{})
			m.Close()
			var died machine.ProcessorDiedError
			if !errors.As(err, &died) {
				t.Fatalf("%s: want ProcessorDiedError, got %v", v.name, err)
			}

			// The degraded re-run: recovery output is as deterministic as
			// the healthy path.
			dm := machine.MustNew(machine.Config{Dim: 4, Faults: degradedFaults})
			out, res, err := core.FTSortOpt(dm, degradedPlan, keys, core.Options{})
			dm.Close()
			if err != nil {
				t.Fatalf("%s: degraded run: %v", v.name, err)
			}

			if i == 0 {
				refDied, refOut, refRes = died, out, res
				return
			}
			if died != refDied {
				t.Errorf("%s: casualty diverges: %+v vs %+v", v.name, died, refDied)
			}
			if !slices.Equal(out, refOut) {
				t.Errorf("%s: degraded sorted output diverges", v.name)
			}
			if !resultsEqual(res, refRes) {
				t.Errorf("%s: degraded Result diverges\n got %+v\nwant %+v", v.name, res, refRes)
			}
		})
	}
}

// TestCrossSubstrateDeterminismCollectives covers the selection path's
// AllReduce/Scatter/Gather traffic (multi-writer fan-in at the root, the
// general path's reason to exist) with distribution accounting on.
func TestCrossSubstrateDeterminismCollectives(t *testing.T) {
	faults := cube.NewNodeSet(5)
	plan, err := partition.BuildPlan(4, faults)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.MustGenerate(workload.Uniform, 300, xrand.New(11))

	var refOut []sortutil.Key
	var refRes machine.Result
	for i, v := range substrateVariants() {
		withSubstrate(v, func() {
			m := machine.MustNew(machine.Config{Dim: 4, Faults: faults})
			out, res, err := core.FTSortOpt(m, plan, keys, core.Options{AccountDistribution: true})
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			if i == 0 {
				refOut, refRes = out, res
				return
			}
			if !slices.Equal(out, refOut) {
				t.Errorf("%s: sorted output diverges", v.name)
			}
			if !resultsEqual(res, refRes) {
				t.Errorf("%s: Result diverges\n got %+v\nwant %+v", v.name, res, refRes)
			}
		})
	}
}
