// Command fig7 regenerates one panel of the paper's Figure 7: simulated
// execution time versus number of keys for the fault-tolerant sort with
// r = 0..n-1 faults (thin lines) against the fault-free bitonic sort on
// smaller cubes (thick lines, the maximum fault-free subcube baseline).
//
// Usage:
//
//	fig7 -n 6                 # panel (a); -n 5, 4, 3 give (b), (d), (c)
//	fig7 -n 6 -ms 3200,32000,320000 -trials 10 -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hypersort/internal/cli"
	"hypersort/internal/experiments"
	"hypersort/internal/machine"
	"hypersort/internal/plot"
)

func main() {
	var (
		n      = flag.Int("n", 6, "cube dimension of the panel")
		msF    = flag.String("ms", "", "comma-separated key counts (default: the paper's 3200..320000)")
		trials = flag.Int("trials", 5, "fault placements averaged per point")
		seed   = flag.Uint64("seed", 1992, "random seed")
		model  = flag.String("model", "partial", "fault model: partial or total")
		tc     = flag.Int64("tc", 1, "cost of one comparison (t_c)")
		tsr    = flag.Int64("tsr", 1, "cost of one key per hop (t_s/r)")
		check  = flag.Bool("check", false, "verify the paper's who-wins orderings at the largest M")
		asJSON = flag.Bool("json", false, "emit series as JSON instead of a table")
		svgOut = flag.String("svg", "", "also write the panel as an SVG chart to this file")
	)
	flag.Parse()

	ms, err := cli.ParseIntList(*msF)
	if err != nil {
		fatal(err)
	}
	fm, err := cli.ParseFaultModel(*model)
	if err != nil {
		fatal(err)
	}

	series, err := experiments.Fig7(experiments.Fig7Config{
		N:              *n,
		Ms:             ms,
		TrialsPerPoint: *trials,
		Seed:           *seed,
		Model:          fm,
		Cost:           machine.CostModel{Compare: machine.Time(*tc), Elem: machine.Time(*tsr)},
	})
	if err != nil {
		fatal(err)
	}
	if *svgOut != "" {
		svg := plot.Fig7SVG(series, fmt.Sprintf("Figure 7, n=%d (simulated time vs M, log-log)", *n))
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(series); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("Figure 7 panel, n=%d (simulated time units; thin = ours with r faults, thick = fault-free baseline)\n\n", *n)
	fmt.Print(experiments.FormatFig7(series))

	if *check {
		violations := experiments.CheckFig7Shape(series)
		if len(violations) == 0 {
			fmt.Println("\nshape check: all of the paper's orderings hold at the largest M")
		} else {
			fmt.Println("\nshape check violations:")
			for _, v := range violations {
				fmt.Println("  -", v)
			}
			os.Exit(2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig7:", err)
	os.Exit(1)
}
