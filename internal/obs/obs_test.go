package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexEdges pins the histogram bucketing scheme at its edge
// cases: bucket 0 holds v <= 1, bucket i covers (2^(i-1), 2^i], and the
// final bucket absorbs everything beyond the last bound.
func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 0}, // bucket 0 covers v <= 1 (bound 2^0)
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{8, 3},
		{9, 4},
		{1 << 20, 20},
		{1<<20 + 1, 21},
		{1 << 62, 62},
		{1<<62 + 1, 63},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Invariant: every positive v satisfies boundOf(i-1) < v <= boundOf(i)
	// for its bucket i (with the final bucket unbounded above).
	for _, v := range []int64{1, 2, 3, 7, 8, 9, 1023, 1024, 1025} {
		i := bucketIndex(v)
		if v > boundOf(i) && i != histBuckets-1 {
			t.Errorf("v=%d above its bucket bound %d", v, boundOf(i))
		}
		if i > 0 && v <= boundOf(i-1) {
			t.Errorf("v=%d at or below previous bound %d", v, boundOf(i-1))
		}
	}
}

// TestHistogramObserve checks count/sum bookkeeping including the
// negative clamp.
func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-5, 0, 1, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := int64(0 + 0 + 1 + 100 + 1<<40); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
}

// TestCounterSemantics pins that counters ignore negative adds and
// gauges accept them.
func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	var g Gauge
	g.Add(5)
	g.Add(-3)
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}
}

// TestRegistryIdempotent checks that re-registering a (name, label) pair
// returns the same instrument instead of forking a second series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registered counter is a different instance")
	}
	la := r.LabeledCounter("y_total", "h", "phase", "p1")
	lb := r.LabeledCounter("y_total", "h", "phase", "p2")
	lc := r.LabeledCounter("y_total", "h", "phase", "p1")
	if la == lb {
		t.Fatal("different labels share an instance")
	}
	if la != lc {
		t.Fatal("same label forked a second instance")
	}
}

// TestWritePrometheusFormat parses the exposition output line by line:
// every non-comment line must be `name{labels} value` with numeric value,
// every family must carry HELP and TYPE headers, histogram buckets must
// be cumulative and capped by +Inf == count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "requests").Add(7)
	r.Gauge("t_pool_in_use", "pool").Set(3)
	r.GaugeFunc("t_heap_bytes", "heap", func() int64 { return 42 })
	h := r.Histogram("t_latency_ns", "latency")
	for _, v := range []int64{1, 3, 3, 900, 0} {
		h.Observe(v)
	}
	r.LabeledCounter("t_phase_total", "phases", "phase", "a").Add(1)
	r.LabeledCounter("t_phase_total", "phases", "phase", "b").Add(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	values := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			seenHelp[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad TYPE %q in %q", f[1], line)
			}
			seenType[f[0]] = true
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		var v int64
		if _, err := fmt.Sscanf(line[i+1:], "%d", &v); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		values[line[:i]] = v
	}
	for _, fam := range []string{"t_requests_total", "t_pool_in_use", "t_heap_bytes", "t_latency_ns", "t_phase_total"} {
		if !seenHelp[fam] || !seenType[fam] {
			t.Errorf("family %s missing HELP or TYPE", fam)
		}
	}
	if values["t_requests_total"] != 7 || values["t_pool_in_use"] != 3 || values["t_heap_bytes"] != 42 {
		t.Errorf("scalar values wrong: %v", values)
	}
	if values[`t_phase_total{phase="a"}`] != 1 || values[`t_phase_total{phase="b"}`] != 2 {
		t.Errorf("labelled values wrong: %v", values)
	}
	if values["t_latency_ns_count"] != 5 || values["t_latency_ns_sum"] != 907 {
		t.Errorf("histogram summary wrong: %v", values)
	}
	if values[`t_latency_ns_bucket{le="+Inf"}`] != 5 {
		t.Errorf("+Inf bucket != count: %v", values)
	}
	// Cumulative: the le="4" bucket holds observations 0,1,3,3.
	if values[`t_latency_ns_bucket{le="4"}`] != 4 {
		t.Errorf("cumulative bucket wrong: %v", values)
	}
	// Deterministic output: a second render is byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}

// TestSnapshot checks the JSON-friendly view matches the instruments.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "c").Add(9)
	h := r.Histogram("s_hist", "h")
	h.Observe(5)
	h.Observe(6)
	snap := r.Snapshot()
	if sv := snap["s_total"]; sv.Kind != "counter" || sv.Value != 9 {
		t.Fatalf("counter snapshot %+v", sv)
	}
	sv := snap["s_hist"]
	if sv.Kind != "histogram" || sv.Count != 2 || sv.Sum != 11 {
		t.Fatalf("histogram snapshot %+v", sv)
	}
	if sv.Buckets["8"] != 2 {
		t.Fatalf("histogram buckets %+v", sv.Buckets)
	}
}

// TestConcurrentMutation hammers one registry from many goroutines; run
// under -race this pins the lock-free instruments and the registration
// path. Totals must come out exact — atomic adds lose nothing.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	h := r.Histogram("cc_hist", "h")
	ps := NewPhaseSet(r)
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(i))
				ps.Observe(PhaseStep7Exchange, 2, 1)
				// Concurrent registration of the same name must stay safe.
				r.Counter("cc_total", "c")
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if got := ps.VTime(PhaseStep7Exchange); got != 2*workers*each {
		t.Fatalf("phase vtime = %d, want %d", got, 2*workers*each)
	}
}

// TestPhaseSetNil pins that a nil PhaseSet is a safe no-op — the
// disabled-path contract every kernel call site relies on.
func TestPhaseSetNil(t *testing.T) {
	var ps *PhaseSet
	ps.Observe(PhaseStep3Local, 10, 10) // must not panic
}

// TestPhaseLabels pins the phase label strings — they are public metric
// API once scraped, so renames are breaking changes.
func TestPhaseLabels(t *testing.T) {
	want := map[Phase]string{
		PhaseStep2Distribute: "step2_distribute",
		PhaseStep3Local:      "step3_local_sort",
		PhaseStep3Intra:      "step3_intra_merge",
		PhaseStep7Exchange:   "step7_exchange",
		PhaseStep8Resort:     "step8_resort",
		PhaseSelLocalSort:    "selection_local_sort",
		PhaseSelReduce:       "selection_reduce",
	}
	for p, label := range want {
		if p.String() != label {
			t.Errorf("phase %d label %q, want %q", p, p.String(), label)
		}
	}
	if Phase(99).String() != "unknown" {
		t.Error("out-of-range phase label")
	}
}
