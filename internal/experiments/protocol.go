package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// ProtocolRow compares the two compare-exchange wire protocols on the
// same configuration (experiment E11): the library's full-block swap
// versus the paper's literal Step 7(a)-(c) half-exchange.
type ProtocolRow struct {
	N, R, M         int
	Startup         machine.Time
	FullMakespan    machine.Time
	HalfMakespan    machine.Time
	FullMessages    int64
	HalfMessages    int64
	FullComparisons int64
	HalfComparisons int64
}

// ProtocolComparison runs the FT sort under both protocols across fault
// counts and two startup costs. The startup sweep shows the trade: the
// half-exchange doubles message count (hurts when startup dominates) but
// its element-wise compare phase is the paper's measured design point.
func ProtocolComparison(n, mKeys, trials int, seed uint64) ([]ProtocolRow, error) {
	rng := xrand.New(seed)
	h := cube.New(n)
	var rows []ProtocolRow
	for _, startup := range []machine.Time{0, 50} {
		for trial := 0; trial < trials; trial++ {
			r := rng.IntN(n)
			faults := sampleFaults(h, r, rng)
			keys := workload.MustGenerate(workload.Uniform, mKeys, rng)
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				return nil, err
			}
			cost := machine.CostModel{Compare: 1, Elem: 1, Startup: startup}
			mach, err := machine.New(machine.Config{Dim: n, Faults: faults, Cost: cost})
			if err != nil {
				return nil, err
			}
			_, resFull, err := core.FTSortOpt(mach, plan, keys, core.Options{Protocol: bitonic.FullBlock})
			if err != nil {
				return nil, err
			}
			_, resHalf, err := core.FTSortOpt(mach, plan, keys, core.Options{Protocol: bitonic.HalfExchange})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ProtocolRow{
				N: n, R: r, M: mKeys, Startup: startup,
				FullMakespan: resFull.Makespan, HalfMakespan: resHalf.Makespan,
				FullMessages: resFull.Messages, HalfMessages: resHalf.Messages,
				FullComparisons: resFull.Comparisons, HalfComparisons: resHalf.Comparisons,
			})
		}
	}
	return rows, nil
}

// FormatProtocol renders E11's rows.
func FormatProtocol(rows []ProtocolRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tM\tstartup\tfull time\thalf time\tfull msgs\thalf msgs\tfull cmps\thalf cmps")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.N, r.R, r.M, r.Startup,
			r.FullMakespan, r.HalfMakespan,
			r.FullMessages, r.HalfMessages,
			r.FullComparisons, r.HalfComparisons)
	}
	w.Flush()
	return b.String()
}
