package partition

import (
	"slices"
	"strconv"

	"hypersort/internal/cube"
)

// PlanKey is a canonical fingerprint of a sorter configuration: the
// hypercube dimension, the fault set, the link-fault set, and the fault
// model. Two configurations that describe the same machine — regardless
// of the order (or duplication) in which faults and link faults are
// listed, or the orientation of link endpoints — map to the same key, and
// two configurations that differ in any of the four components map to
// different keys. Plan and machine caches use it as their map key.
//
// The key is a readable string ("n6|md0|f3,17|l0-1,5-7"), so it doubles
// as a log/metrics label for a configuration.
type PlanKey string

// KeyFor canonicalizes a configuration into its PlanKey. Faults are
// deduplicated and sorted; link faults have each endpoint pair oriented
// low-high, then are deduplicated and sorted lexicographically. model is
// the fault model as an integer (the package cannot import
// internal/machine without a cycle; callers pass int(cfg.Model)).
//
// KeyFor is a pure fingerprint: it does not validate that fault
// addresses lie inside Q_dim or that link pairs are hypercube edges —
// validation belongs to the plan and machine constructors. On the set of
// valid configurations the mapping is injective (see FuzzPlanKey).
func KeyFor(dim int, faults []cube.NodeID, links [][2]cube.NodeID, model int) PlanKey {
	return PlanKey(AppendKey(nil, dim, faults, links, model))
}

// KeyForRouting is KeyFor extended with the routing policy (as an
// integer, for the same import-cycle reason as model). Policy 0 — the
// legacy single-path discipline — appends nothing, so every
// pre-multipath key (and therefore every cached plan, pool, and cluster
// ring position for default configurations) is byte-identical to what
// KeyFor produces.
func KeyForRouting(dim int, faults []cube.NodeID, links [][2]cube.NodeID, model, routing int) PlanKey {
	return PlanKey(AppendKeyRouting(nil, dim, faults, links, model, routing))
}

// AppendKey appends KeyFor's canonical fingerprint bytes to dst and
// returns the extended slice, KeyFor with caller-controlled allocation:
// request paths that fingerprint a configuration per call build the key
// in a pooled buffer and intern the durable string once, instead of
// paying the string construction on every lookup. For typical fault
// counts the canonicalization scratch lives on the stack.
func AppendKey(dst []byte, dim int, faults []cube.NodeID, links [][2]cube.NodeID, model int) []byte {
	return AppendKeyRouting(dst, dim, faults, links, model, 0)
}

// AppendKeyRouting is AppendKey extended with the routing policy; see
// KeyForRouting for the zero-policy compatibility guarantee.
func AppendKeyRouting(dst []byte, dim int, faults []cube.NodeID, links [][2]cube.NodeID, model, routing int) []byte {
	dst = append(dst, 'n')
	dst = strconv.AppendInt(dst, int64(dim), 10)
	dst = append(dst, "|md"...)
	dst = strconv.AppendInt(dst, int64(model), 10)
	dst = append(dst, "|f"...)

	var fstack [32]cube.NodeID
	fs := fstack[:0]
	if len(faults) > cap(fs) {
		fs = make([]cube.NodeID, 0, len(faults))
	}
	fs = append(fs, faults...)
	slices.Sort(fs)
	fs = slices.Compact(fs)
	for i, f := range fs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(f), 10)
	}

	dst = append(dst, "|l"...)
	type edge struct{ a, b cube.NodeID }
	var estack [16]edge
	es := estack[:0]
	if len(links) > cap(es) {
		es = make([]edge, 0, len(links))
	}
	for _, pair := range links {
		e := edge{pair[0], pair[1]}
		if e.a > e.b {
			e.a, e.b = e.b, e.a
		}
		es = append(es, e)
	}
	slices.SortFunc(es, func(x, y edge) int {
		if x.a != y.a {
			return int(x.a) - int(y.a)
		}
		return int(x.b) - int(y.b)
	})
	es = slices.Compact(es)
	for i, e := range es {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(e.a), 10)
		dst = append(dst, '-')
		dst = strconv.AppendInt(dst, int64(e.b), 10)
	}
	if routing != 0 {
		dst = append(dst, "|r"...)
		dst = strconv.AppendInt(dst, int64(routing), 10)
	}
	return dst
}
