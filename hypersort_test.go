package hypersort

import (
	"sort"
	"sync"
	"testing"

	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func genKeys(n int, seed uint64) []Key {
	return workload.MustGenerate(workload.Uniform, n, xrand.New(seed))
}

func TestSortOneCall(t *testing.T) {
	keys := genKeys(500, 1)
	sorted, stats, err := Sort(Config{Dim: 5, Faults: []NodeID{3, 17, 24}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(keys) {
		t.Fatalf("length %d != %d", len(sorted), len(keys))
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	if stats.Makespan <= 0 || stats.Comparisons <= 0 || stats.Messages <= 0 {
		t.Errorf("implausible stats: %+v", stats)
	}
}

func TestSorterReuse(t *testing.T) {
	s, err := New(Config{Dim: 4, Faults: []NodeID{7}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		keys := genKeys(200+17*trial, uint64(trial))
		sorted, _, err := s.Sort(keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(sorted) != len(keys) {
			t.Fatal("length mismatch")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: -1}); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := New(Config{Dim: 2, Faults: []NodeID{9}}); err == nil {
		t.Error("fault outside cube accepted")
	}
	if _, err := New(Config{Dim: 1, Faults: []NodeID{0, 1}}); err == nil {
		t.Error("fully faulty cube accepted")
	}
}

func TestPartitionInfoPaperExample(t *testing.T) {
	s, err := New(Config{Dim: 5, Faults: []NodeID{3, 5, 16, 24}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Partition()
	if p.Mincut != 3 || len(p.CuttingSet) != 5 {
		t.Errorf("mincut=%d |Ψ|=%d", p.Mincut, len(p.CuttingSet))
	}
	if len(p.Chosen) != 3 || p.Chosen[0] != 0 || p.Chosen[1] != 1 || p.Chosen[2] != 3 {
		t.Errorf("chosen = %v", p.Chosen)
	}
	if p.ExtraComm != 3 || p.Working != 24 {
		t.Errorf("extra=%d working=%d", p.ExtraComm, p.Working)
	}
	want := []NodeID{18, 25, 26, 27}
	if len(p.Dangling) != 4 {
		t.Fatalf("dangling = %v", p.Dangling)
	}
	for i := range want {
		if p.Dangling[i] != want[i] {
			t.Fatalf("dangling = %v", p.Dangling)
		}
	}
	if p.Utilization <= 0.85 || p.Utilization > 1 {
		t.Errorf("utilization = %v", p.Utilization)
	}
	// Mutating the returned copies must not affect the sorter.
	p.Chosen[0] = 99
	if s.Partition().Chosen[0] == 99 {
		t.Error("Partition returned aliased state")
	}
}

func TestEstimatedTime(t *testing.T) {
	s, err := New(Config{Dim: 5, Faults: []NodeID{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.EstimatedTime(1000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.EstimatedTime(100000)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || large <= small {
		t.Errorf("estimates %d, %d", small, large)
	}
	if _, err := s.EstimatedTime(-1); err == nil {
		t.Error("negative M accepted")
	}
}

func TestDiagnoseThenSort(t *testing.T) {
	trueFaults := []NodeID{5, 40, 61}
	found, err := Diagnose(6, trueFaults, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != len(trueFaults) {
		t.Fatalf("diagnosed %v", found)
	}
	for i := range trueFaults {
		if found[i] != trueFaults[i] {
			t.Fatalf("diagnosed %v, want %v", found, trueFaults)
		}
	}
	keys := genKeys(640, 9)
	sorted, _, err := Sort(Config{Dim: 6, Faults: found}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted after diagnose+sort")
	}
}

func TestSortCustomCostAndModel(t *testing.T) {
	keys := genKeys(300, 3)
	_, stats, err := Sort(Config{
		Dim:    4,
		Faults: []NodeID{2},
		Model:  Total,
		Cost:   CostModel{Compare: 2, Elem: 7, Startup: 11},
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestSortHalfExchangeProtocol(t *testing.T) {
	keys := genKeys(400, 5)
	a, _, err := Sort(Config{Dim: 4, Faults: []NodeID{6}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Sort(Config{Dim: 4, Faults: []NodeID{6}, Protocol: HalfExchange}, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("protocols disagree")
		}
	}
}

func TestSortAccountDistribution(t *testing.T) {
	keys := genKeys(800, 7)
	_, plain, err := Sort(Config{Dim: 4, Faults: []NodeID{2}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	sorted, dist, err := Sort(Config{Dim: 4, Faults: []NodeID{2}, AccountDistribution: true}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted with distribution accounting")
	}
	if dist.Makespan <= plain.Makespan {
		t.Errorf("distribution accounting did not increase time: %d vs %d", dist.Makespan, plain.Makespan)
	}
}

func TestSortTraceHook(t *testing.T) {
	var mu sync.Mutex
	count := 0
	cfg := Config{Dim: 3, Faults: []NodeID{1}, Trace: func(TraceEvent) {
		mu.Lock()
		count++
		mu.Unlock()
	}}
	if _, _, err := Sort(cfg, genKeys(100, 8)); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("trace hook never called")
	}
}

func TestSortWithLinkFaults(t *testing.T) {
	keys := genKeys(300, 11)
	sorted, stats, err := Sort(Config{
		Dim:        4,
		Faults:     []NodeID{6},
		LinkFaults: [][2]NodeID{{0, 1}, {9, 13}},
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted with link faults")
	}
	_, clean, err := Sort(Config{Dim: 4, Faults: []NodeID{6}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeyHops < clean.KeyHops {
		t.Error("link faults did not inflate traffic")
	}
	if _, err := New(Config{Dim: 4, LinkFaults: [][2]NodeID{{0, 3}}}); err == nil {
		t.Error("non-edge link fault accepted")
	}
}

func TestSelectionFacade(t *testing.T) {
	s, err := New(Config{Dim: 4, Faults: []NodeID{7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	keys := genKeys(501, 12)
	ref := append([]Key(nil), keys...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })

	kth, stats, err := s.KthSmallest(keys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if kth != ref[99] || stats.Makespan <= 0 {
		t.Errorf("KthSmallest = %d, want %d", kth, ref[99])
	}
	med, _, err := s.Median(keys)
	if err != nil {
		t.Fatal(err)
	}
	if med != ref[250] {
		t.Errorf("Median = %d, want %d", med, ref[250])
	}
	top, _, err := s.TopK(keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if top[i] != ref[len(ref)-5+i] {
			t.Errorf("TopK[%d] = %d, want %d", i, top[i], ref[len(ref)-5+i])
		}
	}
	if _, _, err := s.KthSmallest(keys, 0); err == nil {
		t.Error("rank 0 accepted")
	}
}

func TestSortEmptyAndFaultFree(t *testing.T) {
	sorted, _, err := Sort(Config{Dim: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != 0 {
		t.Errorf("sorted empty input into %v", sorted)
	}
}

func TestEngineFacadeSortAndConcurrency(t *testing.T) {
	eng := NewEngine(EngineConfig{PoolSize: 2})
	cfg := Config{Dim: 4, Faults: []NodeID{3}}
	keys := genKeys(500, 77)
	want, _, err := Sort(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, stats, err := eng.Sort(cfg, keys)
			if err != nil {
				t.Error(err)
				return
			}
			if stats.Makespan <= 0 {
				t.Error("no simulated time")
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("concurrent engine sort diverges at %d", j)
					return
				}
			}
		}()
	}
	wg.Wait()
	m := eng.Metrics()
	if m.PlanMisses != 1 {
		t.Errorf("plan searched %d times for one configuration", m.PlanMisses)
	}
}

func TestEngineRejectsTrace(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	cfg := Config{Dim: 3, Trace: func(TraceEvent) {}}
	if _, _, err := eng.Sort(cfg, genKeys(10, 1)); err == nil {
		t.Fatal("Engine accepted a Config.Trace")
	}
	res := eng.SortBatch([]Request{{Config: cfg, Keys: genKeys(10, 1)}})
	if res[0].Err == nil {
		t.Fatal("SortBatch accepted a Config.Trace")
	}
}

// TestSortBatchIsolatesErrors is the acceptance property: a batch with
// one invalid request still returns results for every valid one.
func TestSortBatchIsolatesErrors(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	keys := genKeys(200, 8)
	reqs := []Request{
		{Config: Config{Dim: 4, Faults: []NodeID{3}}, Op: OpSort, Keys: keys},
		{Config: Config{Dim: 4, Faults: []NodeID{99}}, Op: OpSort, Keys: keys}, // invalid fault
		{Config: Config{Dim: 3}, Op: OpKthSmallest, Keys: keys, K: 17},
		{Config: Config{Dim: 3}, Op: OpMedian, Keys: keys},
	}
	results := eng.SortBatch(reqs)
	if results[1].Err == nil {
		t.Fatal("invalid request did not fail")
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Fatalf("valid request %d failed: %v", i, results[i].Err)
		}
	}
	want, _, err := Sort(Config{Dim: 4, Faults: []NodeID{3}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if results[0].Keys[j] != want[j] {
			t.Fatalf("batch result diverges at %d", j)
		}
	}
	sorted := append([]Key(nil), want...)
	if results[2].Value != sorted[16] {
		t.Errorf("kth = %d, want %d", results[2].Value, sorted[16])
	}
	if results[3].Value != sorted[(len(sorted)-1)/2] {
		t.Errorf("median = %d, want %d", results[3].Value, sorted[(len(sorted)-1)/2])
	}
}

func TestSumStats(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	keys := genKeys(300, 9)
	reqs := []Request{
		{Config: Config{Dim: 3}, Op: OpSort, Keys: keys},
		{Config: Config{Dim: 4, Faults: []NodeID{1}}, Op: OpSort, Keys: keys},
		{Config: Config{Dim: 4, Faults: []NodeID{77}}, Op: OpSort, Keys: keys}, // fails
	}
	results := eng.SortBatch(reqs)
	agg := SumStats(results)
	wantComp := results[0].Stats.Comparisons + results[1].Stats.Comparisons
	if agg.Comparisons != wantComp {
		t.Errorf("aggregate comparisons %d, want %d (failed request must not contribute)", agg.Comparisons, wantComp)
	}
	wantMk := results[0].Stats.Makespan
	if results[1].Stats.Makespan > wantMk {
		wantMk = results[1].Stats.Makespan
	}
	if agg.Makespan != wantMk {
		t.Errorf("aggregate makespan %d, want max %d", agg.Makespan, wantMk)
	}
}
