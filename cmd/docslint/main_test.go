package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryDocs runs the full lint against the repository root, so
// the ordinary `go test ./...` leg enforces the documentation contract:
// package comments, exported-symbol godoc, and working Markdown links.
func TestRepositoryDocs(t *testing.T) {
	findings := Lint(repoRoot(t))
	for _, f := range findings {
		t.Error(f)
	}
}

// TestLintGoDocsCatches proves the Go checks actually fire, using a
// synthetic package with every class of violation.
func TestLintGoDocsCatches(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

func Exposed() {}

// Wrong name leads this comment.
type Thing struct{}

const Loose = 1

var Stray int
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := LintGoDocs(dir)
	wants := []string{
		"package bad has no package comment",
		"exported function Exposed",
		"exported type Thing",
		"exported const Loose",
		"exported var Stray",
	}
	for _, w := range wants {
		if !anyContains(findings, w) {
			t.Errorf("missing finding %q in %v", w, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
}

// TestLintGoDocsAccepts proves the accepted godoc idioms stay clean:
// name-led comments, article prefixes, grouped blocks, trailing
// line comments on const specs, unexported receivers, test files.
func TestLintGoDocsAccepts(t *testing.T) {
	dir := t.TempDir()
	src := `// Package good is documented.
package good

// Exposed does a thing.
func Exposed() {}

// A Widget holds state.
type Widget struct{}

// Tuning constants for the frobnicator.
const (
	Low  = 1
	High = 2
)

const (
	Alpha = iota // Alpha is first.
	Beta         // Beta is second.
)

type hidden struct{}

func (h hidden) Exported() {} // method on unexported type: exempt
`
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tsrc := `package good

func HelperForTests() {}
`
	if err := os.WriteFile(filepath.Join(dir, "good_test.go"), []byte(tsrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if findings := LintGoDocs(dir); len(findings) != 0 {
		t.Errorf("clean package produced findings: %v", findings)
	}
}

// TestLintMarkdownLinks proves relative-link checking: existing targets
// pass (with or without anchors), missing ones are reported, and
// external links are ignored.
func TestLintMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "REAL.md"), []byte("# real\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `# doc
[ok](REAL.md) and [anchored](REAL.md#real) and [ext](https://example.com/x.md)
[broken](MISSING.md)
`
	if err := os.WriteFile(filepath.Join(dir, "DOC.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := LintMarkdownLinks(dir)
	if len(findings) != 1 || !strings.Contains(findings[0], "MISSING.md") {
		t.Errorf("want exactly one MISSING.md finding, got %v", findings)
	}
	if !strings.Contains(findings[0], "DOC.md:3") {
		t.Errorf("finding should carry file:line, got %v", findings)
	}
}

// anyContains reports whether any string in list contains sub.
func anyContains(list []string, sub string) bool {
	for _, s := range list {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// repoRoot locates the repository root from the test's working
// directory (cmd/docslint), verified by the presence of go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}
