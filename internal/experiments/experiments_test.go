package experiments

import (
	"math"
	"strings"
	"testing"

	"hypersort/internal/machine"
)

func TestTable1SmallSweep(t *testing.T) {
	rows, err := Table1(Table1Config{MinN: 3, MaxN: 5, Trials: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: n=3 (r=2), n=4 (r=2,3), n=5 (r=2,3,4) = 6 rows.
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		var sum float64
		for m, pct := range row.Pct {
			if m < 1 || m > row.N-1 {
				t.Errorf("n=%d r=%d: impossible mincut %d", row.N, row.R, m)
			}
			if pct < 0 || pct > 100 {
				t.Errorf("percentage %v out of range", pct)
			}
			sum += pct
		}
		if math.Abs(sum-100) > 1e-9 {
			t.Errorf("n=%d r=%d: percentages sum to %v", row.N, row.R, sum)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "mincut") {
		t.Error("format missing header")
	}
}

// TestTable1PaperAnchor checks the one number the paper quotes: for
// n = 6, r = 5, about 94% of placements partition with mincut 3 and the
// rest mostly mincut 4 — i.e. mincut 3 dominates heavily.
func TestTable1PaperAnchor(t *testing.T) {
	rows, err := Table1(Table1Config{MinN: 6, MaxN: 6, Trials: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, row := range rows {
		if row.R != 5 {
			continue
		}
		found = true
		if row.Pct[3] < 85 {
			t.Errorf("n=6 r=5: mincut-3 share %.1f%%, paper reports ~93.85%%", row.Pct[3])
		}
		if row.Pct[3]+row.Pct[4]+row.Pct[2] < 99.9 {
			t.Errorf("n=6 r=5: mass outside mincut 2-4: %v", row.Pct)
		}
	}
	if !found {
		t.Fatal("no n=6 r=5 row")
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, err := Table1(Table1Config{MinN: 4, MaxN: 4, Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(Table1Config{MinN: 4, MaxN: 4, Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for m, pct := range a[i].Pct {
			if b[i].Pct[m] != pct {
				t.Fatal("Table1 not deterministic")
			}
		}
	}
}

func TestTable2SmallSweep(t *testing.T) {
	rows, err := Table2(Table2Config{MinN: 3, MaxN: 6, Trials: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2+3+4+5-2 { // r=1..n-1 for n=3..6: 2+3+4+5 = 14... computed explicitly below
	}
	want := 0
	for n := 3; n <= 6; n++ {
		want += n - 1
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row.OursWorst > row.OursBest || row.BaseWorst > row.BaseBest {
			t.Errorf("n=%d r=%d: worst above best", row.N, row.R)
		}
		// The headline claim: our utilization dominates the baseline's in
		// best, worst, and mean.
		if row.OursBest < row.BaseBest || row.OursWorst < row.BaseWorst || row.OursMean < row.BaseMean {
			t.Errorf("n=%d r=%d: ours (%v/%v) below baseline (%v/%v)",
				row.N, row.R, row.OursBest, row.OursWorst, row.BaseBest, row.BaseWorst)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "baseline best") {
		t.Error("format missing header")
	}
}

// TestTable2PaperAnchors checks the utilization numbers §4 quotes for
// n = 6, r = 4: ours 100% best / 93.3% worst, baseline 53.3% best /
// 26.6% worst.
func TestTable2PaperAnchors(t *testing.T) {
	rows, err := Table2(Table2Config{MinN: 6, MaxN: 6, Trials: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.R != 4 {
			continue
		}
		approx := func(got, want float64) bool { return math.Abs(got-want) < 0.01 }
		if !approx(row.OursBest, 1.0) {
			t.Errorf("ours best = %v, paper: 100%%", row.OursBest)
		}
		if !approx(row.OursWorst, 56.0/60.0) {
			t.Errorf("ours worst = %v, paper: 93.3%%", row.OursWorst)
		}
		if !approx(row.BaseBest, 32.0/60.0) {
			t.Errorf("baseline best = %v, paper: 53.3%%", row.BaseBest)
		}
		if !approx(row.BaseWorst, 16.0/60.0) {
			t.Errorf("baseline worst = %v, paper: 26.6%%", row.BaseWorst)
		}
	}
}

func TestFig7SmallPanel(t *testing.T) {
	series, err := Fig7(Fig7Config{N: 4, Ms: []int{400, 1600}, TrialsPerPoint: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 4 "ours" curves (r=0..3) + 3 baselines (Q3, Q2, Q1).
	if len(series) != 7 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		if s.Points[1].Makespan <= s.Points[0].Makespan {
			t.Errorf("series %q not increasing in M", s.Label)
		}
	}
	out := FormatFig7(series)
	if !strings.Contains(out, "baseline fault-free Q_3") {
		t.Error("format missing baseline column")
	}
	if FormatFig7(nil) != "" {
		t.Error("empty series should render empty")
	}
}

func TestFig7Validation(t *testing.T) {
	if _, err := Fig7(Fig7Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Fig7(Fig7Config{N: 99}); err == nil {
		t.Error("N=99 accepted")
	}
}

// TestFig7ShapeQ5 is the headline Figure 7 reproduction at reduced
// scale: on Q_5, at the top of the paper's M range, the proposed
// algorithm with r = 1..2 must beat the fault-free Q_4 baseline and
// every r must beat Q_3. The wins come from the local-sort term (more
// working processors means smaller chunks), so they only materialize at
// the large-M end — exactly the paper's "when the number of unsorted
// elements is large enough" remark.
func TestFig7ShapeQ5(t *testing.T) {
	if testing.Short() {
		t.Skip("large-M sweep")
	}
	series, err := Fig7(Fig7Config{N: 5, Ms: []int{32000, 256000}, TrialsPerPoint: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if violations := CheckFig7Shape(series); len(violations) > 0 {
		t.Errorf("shape violations: %v", violations)
	}
}

func TestCostAgreement(t *testing.T) {
	rows, err := CostAgreement(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 0.2 || r.Ratio > 5 {
			t.Errorf("n=%d r=%d: ratio %.2f outside band", r.N, r.R, r.Ratio)
		}
	}
	if !strings.Contains(FormatCostAgreement(rows), "ratio") {
		t.Error("format missing header")
	}
}

func TestHeuristicValue(t *testing.T) {
	rows, err := HeuristicValue(6, 2000, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Skip("no placement with a non-trivial Ψ in this sample")
	}
	var bestTime, worstTime machine.Time
	for _, r := range rows {
		if r.BestCost >= r.WorstCost {
			t.Errorf("selection not better by formula (1): %d vs %d", r.BestCost, r.WorstCost)
		}
		bestTime += r.BestMakespan
		worstTime += r.WorstMakespan
	}
	// Formula (1) bounds the turnaround (max extra hops per stage, i.e.
	// the critical path), not total traffic, so the aggregate assertion
	// is on simulated completion time: selected sequences must not be
	// slower than the worst-scoring ones overall.
	if bestTime > worstTime {
		t.Errorf("heuristic increased aggregate makespan: %d vs %d", bestTime, worstTime)
	}
	if !strings.Contains(FormatHeuristic(rows), "best cost") {
		t.Error("format missing header")
	}
}

func TestFaultModelComparison(t *testing.T) {
	rows, err := FaultModelComparison(5, 1000, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TotalMakespan < r.PartialMakespan {
			t.Errorf("total model cheaper than partial: %+v", r)
		}
		if r.TotalKeyHops < r.PartialKeyHops {
			t.Errorf("total model fewer key-hops than partial: %+v", r)
		}
	}
	if !strings.Contains(FormatFaultModel(rows), "partial time") {
		t.Error("format missing header")
	}
}

func TestProtocolComparison(t *testing.T) {
	rows, err := ProtocolComparison(4, 800, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 trials x 2 startup values
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.HalfMessages != 2*r.FullMessages {
			t.Errorf("half messages %d != 2x full %d", r.HalfMessages, r.FullMessages)
		}
		if r.HalfComparisons <= r.FullComparisons {
			t.Errorf("half comparisons %d should exceed full %d", r.HalfComparisons, r.FullComparisons)
		}
		if r.Startup > 0 && r.HalfMakespan < r.FullMakespan {
			t.Errorf("with startup %d the half-exchange (%d) should not beat full-block (%d)",
				r.Startup, r.HalfMakespan, r.FullMakespan)
		}
	}
	if !strings.Contains(FormatProtocol(rows), "half msgs") {
		t.Error("format missing header")
	}
}

func TestSpeedup(t *testing.T) {
	rows, err := Speedup(8192, 5, 12, machine.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Speedup != 1 || rows[0].Efficiency != 1 {
		t.Error("n=0 baseline speedup wrong")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Makespan >= rows[i-1].Makespan {
			t.Errorf("n=%d not faster than n=%d", rows[i].N, rows[i-1].N)
		}
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Errorf("speedup not increasing at n=%d", rows[i].N)
		}
		if rows[i].Efficiency > 1.0001 {
			t.Errorf("superlinear efficiency %v at n=%d", rows[i].Efficiency, rows[i].N)
		}
	}
	if !strings.Contains(FormatSpeedup(rows), "efficiency") {
		t.Error("format missing header")
	}
}

func TestDistributionOverhead(t *testing.T) {
	rows, err := DistributionOverhead(5, 2, []int{1000, 8000}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.WithDistrib <= r.SortOnly {
			t.Errorf("M=%d: distribution added no time (%d vs %d)", r.M, r.WithDistrib, r.SortOnly)
		}
		if r.OverheadShare <= 0 || r.OverheadShare >= 1 {
			t.Errorf("M=%d: overhead share %v implausible", r.M, r.OverheadShare)
		}
	}
	// The scatter/gather volume is Θ(M) either way, so the share should
	// be substantial but not dominate completely.
	if rows[1].OverheadShare > 0.9 {
		t.Errorf("overhead share %v suspiciously high", rows[1].OverheadShare)
	}
	if !strings.Contains(FormatDistribution(rows), "overhead share") {
		t.Error("format missing header")
	}
}

func TestBeyondGuarantee(t *testing.T) {
	rows, err := BeyondGuarantee(4, 7, 60, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.R <= r.N-1 && r.Separable != 1 {
			t.Errorf("r=%d within guarantee but separable %.2f", r.R, r.Separable)
		}
		if r.Separable > 0 && r.SortChecked == 0 {
			t.Errorf("r=%d separable but no sort verified", r.R)
		}
		if r.Separable < 0 || r.Separable > 1 {
			t.Errorf("separable fraction %v out of range", r.Separable)
		}
	}
	// Separability must eventually drop below certainty as faults grow.
	if rows[len(rows)-1].Separable >= rows[0].Separable && rows[len(rows)-1].Separable == 1 {
		t.Log("note: all sampled high-r placements separable (possible at small scale)")
	}
	if !strings.Contains(FormatBeyond(rows), "separable") {
		t.Error("format missing header")
	}
	if _, err := BeyondGuarantee(3, 8, 5, 1); err == nil {
		t.Error("maxR >= N accepted")
	}
}

func TestAvailability(t *testing.T) {
	rows, err := Availability(4, 800, 10, []float64{20, 0.8}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	calm, storm := rows[0], rows[1]
	if calm.MeanAttempts > 1.2 {
		t.Errorf("calm regime attempts %.2f", calm.MeanAttempts)
	}
	if calm.MeanSlowdown > 1.3 {
		t.Errorf("calm regime slowdown %.2f", calm.MeanSlowdown)
	}
	if storm.GaveUp+int(storm.MeanAttempts*float64(storm.Trials-storm.GaveUp)+0.5) <= storm.Trials {
		t.Errorf("storm regime shows no failure pressure: %+v", storm)
	}
	if !strings.Contains(FormatAvailability(rows), "MTBF/sort") {
		t.Error("format missing header")
	}
}

func TestLinkFaultsExperiment(t *testing.T) {
	rows, err := LinkFaults(4, 600, 3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanKeyHopInflation < 1 {
			t.Errorf("dead links reduced traffic: %+v", r)
		}
		if r.MeanSlowdown < 1 {
			t.Errorf("dead links reduced makespan: %+v", r)
		}
	}
	if !strings.Contains(FormatLinkFaults(rows), "dead links") {
		t.Error("format missing header")
	}
}

func TestFig7Deterministic(t *testing.T) {
	cfg := Fig7Config{N: 4, Ms: []int{500, 2000}, TrialsPerPoint: 2, Seed: 77}
	a, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Points {
			if a[i].Points[j].Makespan != b[i].Points[j].Makespan {
				t.Fatalf("series %q point %d diverged", a[i].Label, j)
			}
		}
	}
}

func TestFig7CustomCostAndModel(t *testing.T) {
	series, err := Fig7(Fig7Config{
		N: 3, Ms: []int{300}, TrialsPerPoint: 1, Seed: 10,
		Cost:  machine.CostModel{Compare: 1, Elem: 8, Startup: 100},
		Model: machine.Total,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
}

func TestDefaults(t *testing.T) {
	if ms := DefaultMs(); len(ms) != 5 || ms[0] != 3200 || ms[4] != 320000 {
		t.Errorf("DefaultMs = %v", ms)
	}
	if c := DefaultSpeedupCost(); c != machine.PaperCostModel() {
		t.Errorf("DefaultSpeedupCost = %+v", c)
	}
	// Zero-valued configs take the paper's ranges.
	var t1 Table1Config
	t1.fill()
	if t1.MinN != 3 || t1.MaxN != 6 || t1.Trials != 10000 {
		t.Errorf("Table1 defaults = %+v", t1)
	}
	var t2 Table2Config
	t2.fill()
	if t2.MinN != 3 || t2.MaxN != 6 || t2.Trials != 10000 {
		t.Errorf("Table2 defaults = %+v", t2)
	}
}

func TestMultipathExperiment(t *testing.T) {
	cfg := MultipathConfig{Ns: []int{4, 5}, Rs: []int{0, 1}, Ms: []int{1600}, Seed: 1}
	rows, err := Multipath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		// The acceptance claim: with a hot link injected, multipath
		// striping beats single-path e-cube on every grid cell.
		if r.Multi >= r.Single {
			t.Errorf("multipath did not improve: %+v", r)
		}
		if r.StripedSends == 0 {
			t.Errorf("no transfer striped: %+v", r)
		}
		if r.Speedup <= 1 {
			t.Errorf("speedup %.3f <= 1: %+v", r.Speedup, r)
		}
	}
	if !strings.Contains(FormatMultipath(rows), "speedup") {
		t.Error("format missing header")
	}
	// Determinism: the congestion-priced study is replayed from sorted
	// send logs, so a rerun must reproduce every cell exactly.
	again, err := Multipath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d diverged between runs:\n%+v\n%+v", i, rows[i], again[i])
		}
	}
}
