// The wire-protocol overhead rig (E25). Two questions, two benchmarks:
//
//   - BenchmarkTransportCodec: what does the proxy pay per request just
//     to cross the process boundary — encode a request, decode it shard-
//     side, encode the result, decode it proxy-side? Steady state must
//     be allocation-free: buffers and frames are reused, and the key
//     payload is framed zero-copy on encode. BENCH_PR10.json gates
//     ns/op and allocs/op on this path.
//   - BenchmarkMultiProcessCluster: the same 64-client storm as E23,
//     served by the in-process 4-shard cluster versus four wire-protocol
//     shard servers behind RemoteShard backends (loopback TCP — the
//     in-test stand-in for shard processes). On a multi-core host the
//     remote topology buys real parallelism per process; on any host
//     the delta against cluster-4 is the transport tax.
package hypersort

import (
	"context"
	"net"
	"testing"
	"time"

	"hypersort/internal/cluster"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/sortutil"
	"hypersort/internal/transport"
	"hypersort/internal/xrand"
)

// BenchmarkTransportCodec measures the four codec operations a request
// pays end to end, on a storm-sized (4096-key) payload.
func BenchmarkTransportCodec(b *testing.B) {
	rng := xrand.New(3)
	keys := make([]sortutil.Key, 4096)
	for i := range keys {
		keys[i] = sortutil.Key(rng.Uint64())
	}
	req := engine.Request{
		Config: engine.Config{Dim: 6, Faults: []NodeID{3, 17, 40}},
		Op:     engine.OpSort,
		Keys:   keys,
	}
	res := engine.Result{Keys: keys, Res: machine.Result{Makespan: 123456, Comparisons: 1 << 20, KeyHops: 1 << 18}}
	fb := transport.Feedback{Inflight: 7, QueueWaitNs: 12345}

	// Each sub-benchmark runs one warm-up operation before the timed
	// loop: the reusable buffer (encode) and the frame's key slices
	// (decode) grow once, then the steady state — the state the gate
	// cares about — is allocation-free.
	b.Run("encode-request", func(b *testing.B) {
		buf := transport.AppendRequest(nil, 0, req, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = transport.AppendRequest(buf[:0], uint64(i), req, 0)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("decode-request", func(b *testing.B) {
		body := transport.AppendRequest(nil, 1, req, 0)[4:]
		var f transport.Frame
		if err := transport.DecodeFrame(&f, body); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := transport.DecodeFrame(&f, body); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(body)))
	})
	b.Run("encode-result", func(b *testing.B) {
		buf := transport.AppendResult(nil, 0, res, fb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = transport.AppendResult(buf[:0], uint64(i), res, fb)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("decode-result", func(b *testing.B) {
		body := transport.AppendResult(nil, 1, res, fb)[4:]
		var f transport.Frame
		if err := transport.DecodeFrame(&f, body); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := transport.DecodeFrame(&f, body); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(body)))
	})
}

// newRemoteBenchCluster stands up `shards` wire-protocol servers (each
// wrapping the same engine configuration newBenchCluster gives an
// in-process shard) and a cluster routing to them through RemoteShard
// backends over loopback TCP. The returned close function tears down
// clients, then servers, then engines.
func newRemoteBenchCluster(b *testing.B, shards int) (*cluster.Cluster, func()) {
	b.Helper()
	engines := make([]*engine.Engine, shards)
	servers := make([]*transport.Server, shards)
	backends := make([]cluster.Backend, shards)
	for i := range backends {
		e := engine.NewOpts(1, throughputClients, engine.BatchOptions{MaxBatch: 32, MaxLinger: 100 * time.Microsecond})
		e.SetMode(engine.ModeDirect)
		e.Instrument(obs.NewRegistry())
		engines[i] = e
		srv := transport.NewServer(e, transport.ServerOptions{})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(lis)
		servers[i] = srv
		backends[i] = cluster.NewRemoteShard(transport.NewClient(lis.Addr().String(), transport.ClientOptions{}))
	}
	c := cluster.NewWithBackends(cluster.Options{
		Replicas:  1,
		ShedLimit: 1 << 20,
		Workers:   throughputClients,
	}, backends)
	c.Instrument(obs.NewRegistry())
	return c, func() {
		c.Close() // closes the transport clients
		for i := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			servers[i].Shutdown(ctx)
			cancel()
			engines[i].Close()
		}
	}
}

// BenchmarkMultiProcessCluster reruns the E23 storm shapes against the
// multi-process topology. Reproduce the E25 tables with:
//
//	GOMAXPROCS=4 go test -run '^$' -bench BenchmarkMultiProcessCluster -benchtime 1000x .
func BenchmarkMultiProcessCluster(b *testing.B) {
	hot := []engine.Config{{Dim: 2, Faults: []NodeID{3}}}
	mix := throughputConfigs()
	scenarios := []struct {
		name    string
		configs []engine.Config
		pick    func(int, int64) int
	}{
		{"hot", hot, func(int, int64) int { return 0 }},
		{"mix", mix, func(_ int, i int64) int { return int(i) % len(mix) }},
	}
	for _, sc := range scenarios {
		b.Run(sc.name+"/cluster-4", func(b *testing.B) {
			c := newBenchCluster(4)
			defer c.Close()
			runClusterThroughput(b, c, sc.configs, sc.pick, func() int64 { return c.Metrics().Sheds })
		})
		b.Run(sc.name+"/remote-4", func(b *testing.B) {
			c, teardown := newRemoteBenchCluster(b, 4)
			defer teardown()
			runClusterThroughput(b, c, sc.configs, sc.pick, func() int64 { return c.Metrics().Sheds })
		})
	}
}
