package partition

import (
	"fmt"
	"sort"
	"strings"

	"hypersort/internal/cube"
)

// PlanKey is a canonical fingerprint of a sorter configuration: the
// hypercube dimension, the fault set, the link-fault set, and the fault
// model. Two configurations that describe the same machine — regardless
// of the order (or duplication) in which faults and link faults are
// listed, or the orientation of link endpoints — map to the same key, and
// two configurations that differ in any of the four components map to
// different keys. Plan and machine caches use it as their map key.
//
// The key is a readable string ("n6|md0|f3,17|l0-1,5-7"), so it doubles
// as a log/metrics label for a configuration.
type PlanKey string

// KeyFor canonicalizes a configuration into its PlanKey. Faults are
// deduplicated and sorted; link faults have each endpoint pair oriented
// low-high, then are deduplicated and sorted lexicographically. model is
// the fault model as an integer (the package cannot import
// internal/machine without a cycle; callers pass int(cfg.Model)).
//
// KeyFor is a pure fingerprint: it does not validate that fault
// addresses lie inside Q_dim or that link pairs are hypercube edges —
// validation belongs to the plan and machine constructors. On the set of
// valid configurations the mapping is injective (see FuzzPlanKey).
func KeyFor(dim int, faults []cube.NodeID, links [][2]cube.NodeID, model int) PlanKey {
	fs := cube.NewNodeSet(faults...).Sorted()

	type edge struct{ a, b cube.NodeID }
	seen := make(map[edge]bool, len(links))
	es := make([]edge, 0, len(links))
	for _, pair := range links {
		e := edge{pair[0], pair[1]}
		if e.a > e.b {
			e.a, e.b = e.b, e.a
		}
		if !seen[e] {
			seen[e] = true
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].a != es[j].a {
			return es[i].a < es[j].a
		}
		return es[i].b < es[j].b
	})

	var b strings.Builder
	fmt.Fprintf(&b, "n%d|md%d|f", dim, model)
	for i, f := range fs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	b.WriteString("|l")
	for i, e := range es {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", e.a, e.b)
	}
	return PlanKey(b.String())
}
