package bitonic

import (
	"maps"
	"slices"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestHostSortConformance pins the host-speed local-sort substitution:
// LocalSort executes pdqsort (sortutil.SortHost) on the host but charges
// the analytic heapsort comparison count, so every simulated quantity —
// makespan, Comparisons, per-node clocks, traffic — and the sorted
// output must be bit-identical to actually running heapsort. The sorted
// permutation of a chunk is unique, which is why the equivalence is
// exact and not merely statistical.
func TestHostSortConformance(t *testing.T) {
	defer func() { hostSort = sortutil.SortHost }()

	cases := []struct {
		name   string
		dim    int
		faults []cube.NodeID
		mKeys  int
	}{
		{"fault-free-q4", 4, nil, 200},
		{"single-fault-q4", 4, []cube.NodeID{5}, 173},
		{"fault-free-q5-ragged", 5, nil, 301},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys := workload.MustGenerate(workload.Uniform, tc.mKeys, xrand.New(42))
			run := func(sorter func([]sortutil.Key, sortutil.Direction)) ([]sortutil.Key, machine.Result) {
				hostSort = sorter
				m := machine.MustNew(machine.Config{Dim: tc.dim, Faults: cube.NewNodeSet(tc.faults...)})
				v := FullCube(tc.dim)
				if len(tc.faults) > 0 {
					v = SingleFaultView(tc.dim, tc.faults[0])
				}
				out, res, err := Sort(m, v, keys, sortutil.Ascending)
				if err != nil {
					t.Fatalf("Sort: %v", err)
				}
				return out, res
			}
			gotOut, gotRes := run(sortutil.SortHost)
			wantOut, wantRes := run(sortutil.HeapSort)

			if !slices.Equal(gotOut, wantOut) {
				t.Errorf("sorted outputs differ between host sorts")
			}
			// RecvWaits is scheduler-dependent diagnostics, never part of
			// the virtual-time contract; everything else must match bit
			// for bit.
			gotRes.RecvWaits, wantRes.RecvWaits = 0, 0
			if gotRes.Makespan != wantRes.Makespan ||
				gotRes.Messages != wantRes.Messages ||
				gotRes.KeysSent != wantRes.KeysSent ||
				gotRes.KeyHops != wantRes.KeyHops ||
				gotRes.Comparisons != wantRes.Comparisons {
				t.Errorf("counters diverge: pdqsort %+v heapsort %+v", gotRes, wantRes)
			}
			if !maps.Equal(gotRes.PerNode, wantRes.PerNode) {
				t.Errorf("per-node clocks diverge:\npdq  %v\nheap %v", gotRes.PerNode, wantRes.PerNode)
			}
		})
	}
}
