package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypersort"
	"hypersort/internal/trace"
)

// TestServeParseMode pins the -mode flag vocabulary: the three
// substrates parse, anything else is a startup error.
func TestServeParseMode(t *testing.T) {
	cases := []struct {
		in      string
		want    hypersort.ExecMode
		wantErr bool
	}{
		{"sim", hypersort.ModeSim, false},
		{"direct", hypersort.ModeDirect, false},
		{"auto", hypersort.ModeAuto, false},
		{"", 0, true},
		{"Direct", 0, true},
		{"turbo", 0, true},
	}
	for _, c := range cases {
		got, err := parseMode(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseMode(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMode(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("parseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// newModeServer stands up the handler set over an engine in the given
// execution mode with tracing off — the `serve -mode=... -trace-buf 0`
// configuration, which is the one where auto serves direct.
func newModeServer(t *testing.T, mode hypersort.ExecMode) (*httptest.Server, *hypersort.Engine) {
	t.Helper()
	eng := hypersort.NewEngine(hypersort.EngineConfig{PoolSize: 1, BatchWorkers: 2, Mode: mode})
	srv := httptest.NewServer(newMux(eng, nil, true, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

// postSort drives one /v1/sort request and decodes the wire result.
func postSort(t *testing.T, srv *httptest.Server, body string) (int, wireResult) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res wireResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, res
}

// TestServeDirectMode drives a sort through a -mode=direct server and
// checks the full wire contract: 200, sorted keys, "direct":true, and
// predicted stats present — with the engine's direct counters moving
// and visible on /v1/metrics.
func TestServeDirectMode(t *testing.T) {
	srv, eng := newModeServer(t, hypersort.ModeDirect)
	status, res := postSort(t, srv, sortBody(4, []int64{3, 9}, 128))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if res.Err != "" {
		t.Fatalf("sort failed: %s", res.Err)
	}
	if !res.Direct {
		t.Fatal(`direct-mode sort response missing "direct":true`)
	}
	if len(res.Keys) != 128 {
		t.Fatalf("got %d keys, want 128", len(res.Keys))
	}
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i] < res.Keys[i-1] {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	if res.Stats.Comparisons == 0 || res.Stats.Makespan == 0 {
		t.Fatalf("predicted stats missing: %+v", res.Stats)
	}
	if m := eng.Metrics(); m.DirectRequests != 1 || m.MachinesBuilt != 0 {
		t.Fatalf("DirectRequests=%d MachinesBuilt=%d, want 1 and 0", m.DirectRequests, m.MachinesBuilt)
	}

	// The counter must ride along on the JSON metrics endpoint.
	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var body struct {
		Engine struct {
			DirectRequests int64
		} `json:"engine"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Engine.DirectRequests != 1 {
		t.Fatalf("/v1/metrics engine.DirectRequests = %d, want 1", body.Engine.DirectRequests)
	}
}

// TestServeDirectModeErrorContract pins that switching substrates does
// not shift the error surface: unservable configurations still answer
// 422 with a JSON error body in -mode=direct.
func TestServeDirectModeErrorContract(t *testing.T) {
	srv, _ := newModeServer(t, hypersort.ModeDirect)
	resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(`{"dim":99,"keys":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body["error"] == "" || body["error"] == nil {
		t.Fatalf("error body missing 'error' field: %v", body)
	}
}

// TestServeAutoModeChaosFallback is the serve-level armed-chaos
// invariant: an auto-mode server (tracing off) serves direct until a
// /v1/chaos/inject arms a casualty on the configuration, then every
// sort runs on the simulator (no "direct" flag, no direct-counter
// movement) until /v1/chaos/disarm stands the drill down.
func TestServeAutoModeChaosFallback(t *testing.T) {
	srv, eng := newModeServer(t, hypersort.ModeAuto)
	body := sortBody(4, nil, 96)

	status, res := postSort(t, srv, body)
	if status != http.StatusOK || res.Err != "" {
		t.Fatalf("pre-arm sort: status %d err %q", status, res.Err)
	}
	if !res.Direct {
		t.Fatal("auto-mode sort without tracing not served direct")
	}
	if m := eng.Metrics(); m.DirectRequests != 1 {
		t.Fatalf("pre-arm DirectRequests = %d, want 1", m.DirectRequests)
	}

	// Arm a kill far in the virtual future: it never fires, but while
	// armed the simulator must be the only execution path.
	inject := fmt.Sprintf(`{"dim":4,"kill_node":5,"at":%d}`, int64(1)<<40)
	resp, err := http.Post(srv.URL+"/v1/chaos/inject", "application/json", strings.NewReader(inject))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d", resp.StatusCode)
	}

	status, res = postSort(t, srv, body)
	if status != http.StatusOK || res.Err != "" {
		t.Fatalf("armed sort: status %d err %q", status, res.Err)
	}
	if res.Direct {
		t.Fatal("sort served direct while chaos injections were armed")
	}
	if m := eng.Metrics(); m.DirectRequests != 1 {
		t.Fatalf("armed DirectRequests = %d, want 1 (simulator must serve armed configs)", m.DirectRequests)
	}

	resp, err = http.Post(srv.URL+"/v1/chaos/disarm", "application/json", strings.NewReader(`{"dim":4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm status %d", resp.StatusCode)
	}

	status, res = postSort(t, srv, body)
	if status != http.StatusOK || res.Err != "" {
		t.Fatalf("post-disarm sort: status %d err %q", status, res.Err)
	}
	if !res.Direct {
		t.Fatal("direct service did not resume after disarm")
	}
	if m := eng.Metrics(); m.DirectRequests != 2 {
		t.Fatalf("post-disarm DirectRequests = %d, want 2", m.DirectRequests)
	}
}

// TestServeSimModeNeverDirect pins -mode=sim as the historical
// behaviour: no request carries the direct flag even though it would
// be eligible.
func TestServeSimModeNeverDirect(t *testing.T) {
	srv, eng := newModeServer(t, hypersort.ModeSim)
	status, res := postSort(t, srv, sortBody(3, nil, 64))
	if status != http.StatusOK || res.Err != "" {
		t.Fatalf("sort: status %d err %q", status, res.Err)
	}
	if res.Direct {
		t.Fatal("sim-mode sort carried the direct flag")
	}
	if m := eng.Metrics(); m.DirectRequests != 0 || m.MachinesBuilt == 0 {
		t.Fatalf("DirectRequests=%d MachinesBuilt=%d, want 0 and >0", m.DirectRequests, m.MachinesBuilt)
	}
}

// TestServeAutoModeTracedServesSim pins the documented default: with a
// trace ring attached (the default serve configuration) auto mode
// faithfully serves the simulator, because direct runs emit no machine
// events for /v1/trace.
func TestServeAutoModeTracedServesSim(t *testing.T) {
	ring := trace.NewRing(1024, 1)
	eng := hypersort.NewEngine(hypersort.EngineConfig{PoolSize: 1, BatchWorkers: 2, Mode: hypersort.ModeAuto, Trace: ring.Record})
	srv := httptest.NewServer(newMux(eng, ring, false, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	status, res := postSort(t, srv, sortBody(3, nil, 64))
	if status != http.StatusOK || res.Err != "" {
		t.Fatalf("sort: status %d err %q", status, res.Err)
	}
	if res.Direct {
		t.Fatal("traced auto-mode sort served direct")
	}
	if m := eng.Metrics(); m.DirectRequests != 0 {
		t.Fatalf("DirectRequests = %d, want 0", m.DirectRequests)
	}
}
