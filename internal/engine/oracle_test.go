package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// Oracle tests pin the recoverability frontier from the paper's routing
// bounds. Within the guarantee band — at most n-1 processor casualties
// in total on Q_n — recovery MUST succeed. Beyond it, on fault sets the
// partition search provably cannot separate, the engine MUST fail fast
// with ErrUnrecoverable instead of hanging or mis-sorting.

// oracleCase is one sequential kill schedule on top of a static fault
// set; total = len(faults) + len(victims).
type oracleCase struct {
	dim     int
	faults  []cube.NodeID
	victims []cube.NodeID
}

func (c oracleCase) String() string {
	return fmt.Sprintf("n%d/f%v/kill%v", c.dim, c.faults, c.victims)
}

// armSequential arms victim k on the configuration recovery reaches
// after the first k casualties, so kills strike one after another.
func armSequential(t *testing.T, e *Engine, c oracleCase) {
	t.Helper()
	for k, v := range c.victims {
		cfgK := Config{Dim: c.dim, Faults: append(append([]cube.NodeID(nil), c.faults...), c.victims[:k]...)}
		if err := e.InjectFault(cfgK, machine.Injection{Kind: machine.KillNode, Node: v, At: 0}); err != nil {
			t.Fatalf("%v: arm level %d: %v", c, k, err)
		}
	}
}

// TestOracleWithinBudgetRecovers: every schedule here keeps the total
// casualty count within n-1, the paper's guarantee band, so recovery
// must always complete with the correct sorted output.
func TestOracleWithinBudgetRecovers(t *testing.T) {
	cases := []oracleCase{
		{dim: 3, victims: []cube.NodeID{0}},
		{dim: 3, faults: []cube.NodeID{1}, victims: []cube.NodeID{6}},
		{dim: 4, faults: []cube.NodeID{2, 7}, victims: []cube.NodeID{0}},
		{dim: 4, victims: []cube.NodeID{1, 2, 4}},
		{dim: 5, faults: []cube.NodeID{3, 17}, victims: []cube.NodeID{8, 12}},
	}
	for _, c := range cases {
		t.Run(c.String(), func(t *testing.T) {
			e := New(1, 1)
			defer e.Close()
			armSequential(t, e, c)
			keys := workload.MustGenerate(workload.Uniform, 240, xrand.New(5))
			res := e.Do(Request{Config: Config{Dim: c.dim, Faults: c.faults}, Op: OpSort, Keys: keys})
			if res.Err != nil {
				t.Fatalf("within-budget schedule must recover: %v", res.Err)
			}
			if !keysEqual(res.Keys, sortedRef(keys)) {
				t.Fatal("recovered output is not the sorted input")
			}
			if m := e.Metrics(); m.Replans != int64(len(c.victims)) || m.Unrecoverable != 0 {
				t.Fatalf("metrics = %+v, want %d replans and 0 unrecoverable", m, len(c.victims))
			}
		})
	}
}

// TestOracleLinkBudgetRecovers: a severed link costs no processors, so
// replanning onto a configuration that routes around it must succeed.
// PMC syndromes cannot express link faults, so this exercises the
// unconfirmed (sender-identified) diagnosis path; a node kill layered on
// the degraded link configuration must still recover on top of it.
func TestOracleLinkBudgetRecovers(t *testing.T) {
	e := New(1, 1)
	defer e.Close()
	base := Config{Dim: 3}
	link := [2]cube.NodeID{0, 1}
	if err := e.InjectFault(base, machine.Injection{Kind: machine.KillLink, Link: link, At: 0}); err != nil {
		t.Fatal(err)
	}
	// Second casualty: kill a node on the link-degraded configuration the
	// first recovery lands on.
	degraded := Config{Dim: 3, LinkFaults: [][2]cube.NodeID{link}}
	if err := e.InjectFault(degraded, machine.Injection{Kind: machine.KillNode, Node: 5, At: 0}); err != nil {
		t.Fatal(err)
	}

	keys := workload.MustGenerate(workload.Uniform, 160, xrand.New(8))
	res := e.Do(Request{Config: base, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("link + node casualties within budget must recover: %v", res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("recovered output is not the sorted input")
	}
	if m := e.Metrics(); m.Replans != 2 || m.Unrecoverable != 0 {
		t.Fatalf("metrics = %+v, want 2 replans and 0 unrecoverable", m)
	}
}

// TestOracleOverBudgetUnrecoverable: these fault sets are verified
// inseparable — partition.BuildPlan has no cutting dimension that
// isolates at most one fault per subcube — so after the kill the engine
// must return ErrUnrecoverable promptly, not hang and not mis-sort.
func TestOracleOverBudgetUnrecoverable(t *testing.T) {
	cases := []oracleCase{
		// {0,1,2} on Q_2: every cut leaves two faults on one side.
		{dim: 2, faults: []cube.NodeID{1, 2}, victims: []cube.NodeID{0}},
		// {0,1,2,4} on Q_3: node 0 plus all its neighbors.
		{dim: 3, faults: []cube.NodeID{1, 2, 4}, victims: []cube.NodeID{0}},
	}
	for _, c := range cases {
		t.Run(c.String(), func(t *testing.T) {
			e := New(1, 1)
			defer e.Close()
			armSequential(t, e, c)
			keys := workload.MustGenerate(workload.Uniform, 60, xrand.New(3))

			done := make(chan Result, 1)
			go func() {
				done <- e.Do(Request{Config: Config{Dim: c.dim, Faults: c.faults}, Op: OpSort, Keys: keys})
			}()
			var res Result
			select {
			case res = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("over-budget casualty hung instead of failing fast")
			}
			if !errors.Is(res.Err, ErrUnrecoverable) {
				t.Fatalf("want ErrUnrecoverable, got: %v", res.Err)
			}
			if m := e.Metrics(); m.Unrecoverable < 1 || m.Replans != 0 {
				t.Fatalf("metrics = %+v, want >=1 unrecoverable and 0 replans", m)
			}
		})
	}
}
