package machine

import (
	"runtime"
	"testing"
	"time"

	"hypersort/internal/cube"
)

// countKernel is a trivial kernel that touches the clock so runs are
// observable.
func countKernel(p *Proc) error {
	p.Compute(1)
	return nil
}

// waitGoroutinesBelow polls until the process goroutine count drops to
// at most want (worker teardown is asynchronous after Close).
func waitGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines stuck at %d, want <= %d", runtime.NumGoroutine(), want)
}

func TestWorkersSpawnOnSecondRunAndCloseRetires(t *testing.T) {
	m := MustNew(Config{Dim: 3})
	all := m.Healthy()
	base := runtime.NumGoroutine()

	// First run: one-shot goroutines, no persistent pool left behind.
	if _, err := m.Run(all, countKernel); err != nil {
		t.Fatal(err)
	}
	if m.stop != nil {
		t.Fatal("persistent workers spawned on first run")
	}
	waitGoroutinesBelow(t, base)

	// Second run upgrades to the persistent pool: one worker per healthy
	// node stays parked between runs.
	if _, err := m.Run(all, countKernel); err != nil {
		t.Fatal(err)
	}
	if m.stop == nil {
		t.Fatal("second run did not spawn persistent workers")
	}
	if got := runtime.NumGoroutine(); got < base+len(all) {
		t.Fatalf("goroutines = %d, want >= %d parked workers above base %d", got, len(all), base)
	}

	m.Close()
	waitGoroutinesBelow(t, base)
	if m.stop != nil {
		t.Fatal("Close left stop channel live")
	}
}

func TestCloseIdempotentAndBeforeWorkers(t *testing.T) {
	// Close before any run, and double Close, must both be no-ops.
	m := MustNew(Config{Dim: 2})
	m.Close()
	m.Close()
	if _, err := m.Run(m.Healthy(), countKernel); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
}

func TestRunAfterCloseRespawns(t *testing.T) {
	m := MustNew(Config{Dim: 3})
	all := m.Healthy()
	var want Result
	for run := 0; run < 3; run++ {
		res, err := m.Run(all, countKernel)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 0 {
			want = res
			continue
		}
		if res.Makespan != want.Makespan || res.Comparisons != want.Comparisons {
			t.Fatalf("run %d diverged: %+v vs %+v", run, res, want)
		}
	}
	m.Close()
	// A closed machine still serves runs (workers respawn on demand);
	// results stay identical.
	for run := 0; run < 2; run++ {
		res, err := m.Run(all, countKernel)
		if err != nil {
			t.Fatalf("post-Close run %d: %v", run, err)
		}
		if res.Makespan != want.Makespan || res.Comparisons != want.Comparisons {
			t.Fatalf("post-Close run %d diverged: %+v vs %+v", run, res, want)
		}
	}
	m.Close()
}

func TestWorkersSurviveKernelFailure(t *testing.T) {
	// An aborted run must leave the persistent pool consistent: the next
	// run reuses the same workers and succeeds.
	m := MustNew(Config{Dim: 3})
	all := m.Healthy()
	for run := 0; run < 2; run++ { // second run is on persistent workers
		if _, err := m.Run(all, countKernel); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.Run(all, func(p *Proc) error {
		if p.ID() == 5 {
			panic("deliberate kernel failure")
		}
		// Everyone else blocks on a message that never comes and must be
		// released by the abort fan-out.
		p.Recv(cube.NodeID(5), 99)
		return nil
	})
	if err == nil {
		t.Fatal("failing run reported no error")
	}
	res, err := m.Run(all, countKernel)
	if err != nil {
		t.Fatalf("run after abort: %v", err)
	}
	if res.Comparisons != int64(len(all)) {
		t.Fatalf("run after abort: comparisons = %d, want %d", res.Comparisons, len(all))
	}
	m.Close()
}
