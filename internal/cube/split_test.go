package cube

import (
	"testing"
	"testing/quick"
)

// TestPaperSplitExample reproduces the paper's §3 example: Q_5 cut along
// D = (0, 1, 3) has subcube address space {v2 v1 v0} = {u3 u1 u0} and local
// space {w1 w0} = {u4 u2}.
func TestPaperSplitExample(t *testing.T) {
	h := New(5)
	sp := MustSplit(h, CutSequence{0, 1, 3})
	if sp.M() != 3 || sp.S() != 2 {
		t.Fatalf("M/S = %d/%d, want 3/2", sp.M(), sp.S())
	}
	// u = u4 u3 u2 u1 u0 = 1 0 1 1 0 (22): v = u3u1u0 = 010, w = u4u2 = 11.
	u := NodeID(0b10110)
	if v := sp.V(u); v != 0b010 {
		t.Errorf("V(%05b) = %03b, want 010", u, v)
	}
	if w := sp.W(u); w != 0b11 {
		t.Errorf("W(%05b) = %02b, want 11", u, w)
	}
	if back := sp.Compose(sp.V(u), sp.W(u)); back != u {
		t.Errorf("Compose round trip = %05b, want %05b", back, u)
	}
}

// TestPaperExample2FaultPlacement checks the fault-to-subcube mapping of
// the paper's Example 2: faults 00011, 00101, 10000, 11000 under
// D = (0,1,3) land in subcubes 011, 001, 000, 100 with local addresses
// 00, 01, 10, 10.
func TestPaperExample2FaultPlacement(t *testing.T) {
	h := New(5)
	sp := MustSplit(h, CutSequence{0, 1, 3})
	cases := []struct {
		fault NodeID
		v, w  NodeID
	}{
		{0b00011, 0b011, 0b00},
		{0b00101, 0b001, 0b01},
		{0b10000, 0b000, 0b10},
		{0b11000, 0b100, 0b10},
	}
	for _, c := range cases {
		if v := sp.V(c.fault); v != c.v {
			t.Errorf("V(%05b) = %03b, want %03b", c.fault, v, c.v)
		}
		if w := sp.W(c.fault); w != c.w {
			t.Errorf("W(%05b) = %02b, want %02b", c.fault, w, c.w)
		}
	}
}

// TestPaperExample2DanglingAddresses checks the paper's dangling-processor
// address reconstruction: v in {010, 101, 110, 111} with w = 10 compose to
// global addresses 18, 25, 26, 27.
func TestPaperExample2DanglingAddresses(t *testing.T) {
	h := New(5)
	sp := MustSplit(h, CutSequence{0, 1, 3})
	want := map[NodeID]NodeID{0b010: 18, 0b101: 25, 0b110: 26, 0b111: 27}
	for v, addr := range want {
		if got := sp.Compose(v, 0b10); got != addr {
			t.Errorf("Compose(%03b, 10) = %d, want %d", v, got, addr)
		}
	}
}

func TestSplitValidate(t *testing.T) {
	h := New(4)
	if _, err := NewSplit(h, CutSequence{0, 0}); err == nil {
		t.Error("repeated dimension accepted")
	}
	if _, err := NewSplit(h, CutSequence{4}); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if _, err := NewSplit(h, CutSequence{0, 1, 2, 3}); err != nil {
		t.Errorf("full cut rejected: %v", err)
	}
}

func TestMustSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSplit did not panic on invalid sequence")
		}
	}()
	MustSplit(New(3), CutSequence{7})
}

func TestSplitBijection(t *testing.T) {
	// (V, W) must be a bijection from Q_n addresses to (v, w) pairs.
	h := New(6)
	sp := MustSplit(h, CutSequence{5, 2, 0})
	seen := make(map[[2]NodeID]NodeID)
	for u := NodeID(0); u < NodeID(h.Size()); u++ {
		key := [2]NodeID{sp.V(u), sp.W(u)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("addresses %d and %d map to same (v,w) %v", prev, u, key)
		}
		seen[key] = u
		if sp.Compose(key[0], key[1]) != u {
			t.Fatalf("Compose(V,W) != identity for %d", u)
		}
	}
}

func TestSplitComposeQuick(t *testing.T) {
	h := New(10)
	sp := MustSplit(h, CutSequence{9, 4, 1, 7})
	f := func(raw uint32) bool {
		u := NodeID(raw) & NodeID(h.Size()-1)
		return sp.Compose(sp.V(u), sp.W(u)) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubcubeOfMatchesV(t *testing.T) {
	h := New(6)
	sp := MustSplit(h, CutSequence{1, 3})
	for u := NodeID(0); u < NodeID(h.Size()); u++ {
		sc := sp.SubcubeOf(sp.V(u))
		if !sc.Contains(u) {
			t.Fatalf("SubcubeOf(V(%d)) does not contain %d", u, u)
		}
		if sc.Dim(h) != sp.S() {
			t.Fatalf("subcube dim %d != S %d", sc.Dim(h), sp.S())
		}
	}
}

func TestGroupFaultsAndIsSingleFault(t *testing.T) {
	h := New(5)
	sp := MustSplit(h, CutSequence{0, 1, 3})
	faults := NewNodeSet(0b00011, 0b00101, 0b10000, 0b11000)
	if !sp.IsSingleFault(faults) {
		t.Fatal("paper Example 1 split should be single-fault")
	}
	groups := sp.GroupFaults(faults)
	if len(groups) != 8 {
		t.Fatalf("got %d groups", len(groups))
	}
	// Subcube 011 holds fault with local address 00, subcube 000 holds 10.
	if len(groups[0b011]) != 1 || groups[0b011][0] != 0b00 {
		t.Errorf("group 011 = %v", groups[0b011])
	}
	if len(groups[0b000]) != 1 || groups[0b000][0] != 0b10 {
		t.Errorf("group 000 = %v", groups[0b000])
	}
	// Two faults in the same subcube break the property.
	bad := NewNodeSet(0, 0b00100) // both have v = 000 under D = (0,1,3)
	if sp.IsSingleFault(bad) {
		t.Error("two faults in one subcube reported as single-fault")
	}
}

func TestNeighborSubcubeAndDimMaps(t *testing.T) {
	h := New(5)
	sp := MustSplit(h, CutSequence{0, 1, 3})
	if nb := sp.NeighborSubcube(0b011, 1); nb != 0b001 {
		t.Errorf("NeighborSubcube(011, 1) = %03b", nb)
	}
	if sp.CutDim(0) != 0 || sp.CutDim(1) != 1 || sp.CutDim(2) != 3 {
		t.Error("CutDim mapping wrong")
	}
	if sp.LocalNeighborDim(0) != 2 || sp.LocalNeighborDim(1) != 4 {
		t.Error("LocalNeighborDim mapping wrong")
	}
}

func TestCutSequenceHelpers(t *testing.T) {
	d := CutSequence{0, 1, 3}
	if d.String() != "(0, 1, 3)" {
		t.Errorf("String = %q", d.String())
	}
	if !d.Equal(d.Clone()) {
		t.Error("Clone not equal")
	}
	if d.Equal(CutSequence{0, 1}) || d.Equal(CutSequence{0, 1, 4}) {
		t.Error("Equal false positives")
	}
	c := d.Clone()
	c[0] = 2
	if d[0] != 0 {
		t.Error("Clone not independent")
	}
}

// TestSplitSubcubesPartitionCube verifies the 2^m subcubes of a split
// tile Q_n exactly: disjoint and covering.
func TestSplitSubcubesPartitionCube(t *testing.T) {
	h := New(6)
	sp := MustSplit(h, CutSequence{2, 5, 0})
	covered := make([]int, h.Size())
	for v := NodeID(0); v < NodeID(sp.NumSubcubes()); v++ {
		for _, id := range sp.SubcubeOf(v).Nodes(h) {
			covered[id]++
		}
	}
	for id, c := range covered {
		if c != 1 {
			t.Fatalf("node %d covered %d times", id, c)
		}
	}
}
