package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
)

// testKeys returns a deterministic spread of hash points standing in for
// plan-key fingerprints.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = fnv1a([]byte(fmt.Sprintf("plan-key-%d", i)))
	}
	return keys
}

// TestRingStability is the consistent-hashing contract: growing an
// N-shard ring to N+1 shards moves roughly 1/(N+1) of the key space —
// never the wholesale reshuffle modulo hashing would cause — and every
// key that moves, moves TO the new shard (no churn between survivors).
func TestRingStability(t *testing.T) {
	const vnodes = 128
	keys := testKeys(20000)
	for n := 2; n <= 8; n++ {
		before := newRing(n, vnodes)
		after := newRing(n+1, vnodes)
		moved := 0
		for _, k := range keys {
			a, b := before.owner(k), after.owner(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d: key moved from shard %d to pre-existing shard %d; consistent hashing only moves keys to the new shard", n, a, b)
			}
		}
		frac := float64(moved) / float64(len(keys))
		want := 1.0 / float64(n+1)
		if frac > 2*want {
			t.Fatalf("n=%d: %.1f%% of keys moved, want about %.1f%% (<= 2x)", n, 100*frac, 100*want)
		}
		if moved == 0 {
			t.Fatalf("n=%d: no keys moved to the new shard; it would receive no traffic", n)
		}
	}
}

// TestRingDeterminism pins the cross-process stability promise: two
// rings of the same shape assign every key and every successor list
// identically (FNV-1a and the vnode naming scheme are fixed, so this
// can only break if someone changes them — which silently invalidates
// every persisted routing expectation).
func TestRingDeterminism(t *testing.T) {
	a, b := newRing(5, 64), newRing(5, 64)
	for _, k := range testKeys(2000) {
		sa := a.successors(k, 3, nil)
		sb := b.successors(k, 3, nil)
		if len(sa) != len(sb) {
			t.Fatalf("successor lengths diverge: %v vs %v", sa, sb)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("successors diverge for key %#x: %v vs %v", k, sa, sb)
			}
		}
	}
}

// TestRingSuccessorsDistinct checks the replica-set invariants: the
// requested count is honoured (clamped to the shard count), entries are
// pairwise distinct, and the first entry matches owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := newRing(4, 128)
	for _, k := range testKeys(2000) {
		for n := 1; n <= 6; n++ {
			s := r.successors(k, n, nil)
			wantLen := n
			if wantLen > 4 {
				wantLen = 4
			}
			if len(s) != wantLen {
				t.Fatalf("successors(%#x, %d) returned %d shards, want %d", k, n, len(s), wantLen)
			}
			if s[0] != r.owner(k) {
				t.Fatalf("successors[0] = %d, owner = %d", s[0], r.owner(k))
			}
			seen := map[int]bool{}
			for _, sh := range s {
				if seen[sh] {
					t.Fatalf("duplicate shard %d in successors %v", sh, s)
				}
				if sh < 0 || sh >= 4 {
					t.Fatalf("shard %d out of range in %v", sh, s)
				}
				seen[sh] = true
			}
		}
	}
}

// TestRingSuccessorsAppend checks the append contract: a non-empty dst
// is preserved and the new entries are deduplicated only among
// themselves.
func TestRingSuccessorsAppend(t *testing.T) {
	r := newRing(3, 32)
	dst := []int{99}
	s := r.successors(testKeys(1)[0], 3, dst)
	if s[0] != 99 {
		t.Fatalf("append clobbered existing dst: %v", s)
	}
	if len(s) != 4 {
		t.Fatalf("appended %d entries, want 3: %v", len(s)-1, s)
	}
}

// TestRingSpread sanity-checks vnode-driven balance: over many keys, no
// shard owns more than twice its fair share.
func TestRingSpread(t *testing.T) {
	const shards = 6
	r := newRing(shards, 128)
	counts := make([]int, shards)
	keys := testKeys(30000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	fair := len(keys) / shards
	for s, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): spread too skewed", s, c, len(keys), fair)
		}
	}
}

// churnBackend is a Backend whose only interesting behaviour is a
// toggleable health bit — the routing-churn test below cares about
// where requests WOULD land, not what shards do with them.
type churnBackend struct{ healthy atomic.Bool }

func (b *churnBackend) Do(ctx context.Context, req engine.Request) engine.Result {
	return engine.Result{}
}
func (b *churnBackend) InjectFault(engine.Config, ...machine.Injection) error { return nil }
func (b *churnBackend) DisarmFaults(engine.Config) error                      { return nil }
func (b *churnBackend) Metrics() engine.Metrics                               { return engine.Metrics{} }
func (b *churnBackend) Healthy() bool                                         { return b.healthy.Load() }
func (b *churnBackend) Load() int64                                           { return -1 }
func (b *churnBackend) QueueWaitNs() int64                                    { return 0 }
func (b *churnBackend) Instrument(*obs.Registry)                              {}
func (b *churnBackend) Close()                                                {}

// TestRingChurnOnShardDeath is the health-aware routing contract for a
// ring whose MEMBERSHIP is fixed but whose shards die and return:
//
//   - removing one shard of N re-homes only the keys it owned — about
//     1/N of the key space — onto its ring successors; every other key
//     keeps its shard (no cascade churn among survivors);
//   - no key is ever stranded: with any single shard down, every key
//     still routes to a healthy shard without error;
//   - re-adding the shard restores the original assignment exactly.
func TestRingChurnOnShardDeath(t *testing.T) {
	const shards = 5
	backends := make([]Backend, shards)
	for i := range backends {
		be := &churnBackend{}
		be.healthy.Store(true)
		backends[i] = be
	}
	c := NewWithBackends(Options{Replicas: 1}, backends)
	defer c.Close()

	// Distinct configurations spread across the hash space: the fault
	// list feeds the canonical routing fingerprint.
	configs := make([]engine.Config, 3000)
	for i := range configs {
		configs[i] = engine.Config{Dim: 6, Faults: []cube.NodeID{cube.NodeID(i)}}
	}
	owner := func(cfg engine.Config) int {
		s, _, err := c.route(cfg)
		if err != nil {
			t.Fatalf("route(%v): %v", cfg.Faults, err)
		}
		return s.id
	}
	before := make([]int, len(configs))
	for i, cfg := range configs {
		before[i] = owner(cfg)
	}

	for dead := 0; dead < shards; dead++ {
		backends[dead].(*churnBackend).healthy.Store(false)
		moved := 0
		for i, cfg := range configs {
			got := owner(cfg) // Fatals if stranded
			if got == dead {
				t.Fatalf("key %d routed to dead shard %d", i, dead)
			}
			if before[i] == dead {
				moved++
			} else if got != before[i] {
				t.Fatalf("key %d churned between survivors: shard %d -> %d while %d was down",
					i, before[i], got, dead)
			}
		}
		if frac, want := float64(moved)/float64(len(configs)), 1.0/shards; frac > 2*want {
			t.Fatalf("shard %d down moved %.1f%% of keys, want about %.1f%%", dead, 100*frac, 100*want)
		}

		// Re-add: the original assignment must come back exactly.
		backends[dead].(*churnBackend).healthy.Store(true)
		for i, cfg := range configs {
			if got := owner(cfg); got != before[i] {
				t.Fatalf("key %d did not return home after shard %d recovered: %d != %d",
					i, dead, got, before[i])
			}
		}
	}
}

// TestRouteAllShardsDown pins the floor of the health machinery: with
// every shard unhealthy the router sheds with the saturation contract
// (engine.ErrAdmissionRejected identity → 503 + Retry-After upstream)
// instead of panicking or routing into a void.
func TestRouteAllShardsDown(t *testing.T) {
	backends := make([]Backend, 3)
	for i := range backends {
		backends[i] = &churnBackend{} // zero value: unhealthy
	}
	c := NewWithBackends(Options{Replicas: 1}, backends)
	defer c.Close()
	res := c.Do(engine.Request{Config: engine.Config{Dim: 4}, Op: engine.OpSort})
	if !errors.Is(res.Err, ErrSaturated) || !errors.Is(res.Err, engine.ErrAdmissionRejected) {
		t.Fatalf("all-down error = %v, want ErrSaturated wrapping ErrAdmissionRejected", res.Err)
	}
	if m := c.Metrics(); m.Sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", m.Sheds)
	}
	if c.HealthyShards() != 0 {
		t.Fatalf("HealthyShards = %d, want 0", c.HealthyShards())
	}
}
