// Package cube implements the address algebra of binary n-dimensional
// hypercubes (binary n-cubes): node addresses, neighbor relations, Hamming
// distance, subcube (mask/value) arithmetic, partitioning a cube along an
// ordered sequence of cutting dimensions, and the XOR reindexing used to
// relocate a faulty processor to local address zero.
//
// Throughout the package a hypercube Q_n has N = 2^n processors addressed
// 0..N-1. Bit d of an address is the coordinate along dimension d; two
// processors are neighbors iff their addresses differ in exactly one bit.
// The package follows the notation of Sheu, Chen and Chang, "Fault-Tolerant
// Sorting Algorithm on Hypercube Multicomputers" (ICPP 1992): the address
// space of Q_n is written {u_{n-1} u_{n-2} ... u_0}.
package cube

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxDim is the largest supported hypercube dimension. 24 keeps every
// address comfortably inside a uint32 and an exhaustive 2^n enumeration
// tractable; the paper's experiments use n <= 6.
const MaxDim = 24

// NodeID is the address of one processor in a hypercube. Bit d of a NodeID
// is the processor's coordinate along dimension d.
type NodeID uint32

// Hypercube describes an n-dimensional binary cube. The zero value is the
// degenerate 1-processor cube Q_0.
type Hypercube struct {
	n int
}

// New returns the n-dimensional hypercube Q_n. It panics if n is negative
// or larger than MaxDim; topology dimensions are static configuration, so a
// bad value is a programming error rather than a runtime condition.
func New(n int) Hypercube {
	if n < 0 || n > MaxDim {
		panic(fmt.Sprintf("cube: dimension %d out of range [0,%d]", n, MaxDim))
	}
	return Hypercube{n: n}
}

// Dim returns n, the dimension of the cube.
func (h Hypercube) Dim() int { return h.n }

// Size returns N = 2^n, the number of processors.
func (h Hypercube) Size() int { return 1 << h.n }

// Contains reports whether id is a valid address in this cube.
func (h Hypercube) Contains(id NodeID) bool { return uint64(id) < uint64(1)<<h.n }

// Neighbor returns the neighbor of id along dimension d.
// It panics if d is outside [0, n).
func (h Hypercube) Neighbor(id NodeID, d int) NodeID {
	if d < 0 || d >= h.n {
		panic(fmt.Sprintf("cube: dimension %d out of range [0,%d)", d, h.n))
	}
	return id ^ (1 << d)
}

// Neighbors returns all n neighbors of id, in ascending dimension order.
func (h Hypercube) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, h.n)
	for d := 0; d < h.n; d++ {
		out[d] = id ^ (1 << d)
	}
	return out
}

// Bit returns bit d (coordinate u_d) of id as 0 or 1.
func Bit(id NodeID, d int) int { return int(id>>uint(d)) & 1 }

// SetBit returns id with bit d forced to v (0 or 1).
func SetBit(id NodeID, d, v int) NodeID {
	if v == 0 {
		return id &^ (1 << d)
	}
	return id | (1 << d)
}

// FlipBit returns id with bit d inverted.
func FlipBit(id NodeID, d int) NodeID { return id ^ (1 << d) }

// HammingDistance returns the number of bit positions in which a and b
// differ; on a hypercube this is the length of a shortest path between
// them (the paper's HD function).
func HammingDistance(a, b NodeID) int { return bits.OnesCount32(uint32(a ^ b)) }

// Weight returns the Hamming weight (popcount) of id.
func Weight(id NodeID) int { return bits.OnesCount32(uint32(id)) }

// DifferingDims returns the dimensions in which a and b differ, ascending.
// It is the support of a XOR b and has length HammingDistance(a, b).
func DifferingDims(a, b NodeID) []int {
	x := uint32(a ^ b)
	out := make([]int, 0, bits.OnesCount32(x))
	for x != 0 {
		d := bits.TrailingZeros32(x)
		out = append(out, d)
		x &= x - 1
	}
	return out
}

// Reindex applies the paper's logical reindexing: the bit-wise XOR of an
// address with a pivot. Reindex(pivot, pivot) == 0, so choosing the faulty
// processor as the pivot moves it to logical address 0 while preserving
// the hypercube adjacency (XOR by a constant is a graph automorphism).
// Reindex is an involution: Reindex(pivot, Reindex(pivot, id)) == id.
func Reindex(pivot, id NodeID) NodeID { return pivot ^ id }

// GrayCode returns the i-th codeword of the binary reflected Gray code.
// Successive codewords differ in exactly one bit, so walking i = 0..N-1
// visits every node of Q_n along a Hamiltonian path.
func GrayCode(i int) NodeID { return NodeID(i ^ (i >> 1)) }

// GrayRank is the inverse of GrayCode: GrayRank(GrayCode(i)) == i.
func GrayRank(g NodeID) int {
	r := uint32(g)
	for shift := uint(1); shift < 32; shift <<= 1 {
		r ^= r >> shift
	}
	return int(r)
}

// NodeSet is a set of processor addresses, used for fault sets. The zero
// value is an empty set ready for use after make or via NewNodeSet.
type NodeSet map[NodeID]struct{}

// NewNodeSet builds a set from the given addresses, dropping duplicates.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Has reports whether id is a member of the set.
func (s NodeSet) Has(id NodeID) bool { _, ok := s[id]; return ok }

// Add inserts id into the set.
func (s NodeSet) Add(id NodeID) { s[id] = struct{}{} }

// Sorted returns the members in ascending address order.
func (s NodeSet) Sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the set.
func (s NodeSet) Clone() NodeSet {
	out := make(NodeSet, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// Edge is an undirected hypercube link, stored in normalized order
// (A < B). Two processors share an edge iff their addresses differ in
// exactly one bit.
type Edge struct {
	A, B NodeID
}

// NewEdge normalizes an endpoint pair into an Edge. It panics if the
// endpoints are not hypercube neighbors — a non-adjacent "link" is a
// programming error, not a runtime condition.
func NewEdge(a, b NodeID) Edge {
	if HammingDistance(a, b) != 1 {
		panic(fmt.Sprintf("cube: %d and %d are not neighbors", a, b))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Dim returns the dimension the edge spans.
func (e Edge) Dim() int {
	return DifferingDims(e.A, e.B)[0]
}

// EdgeSet is a set of links, used for link-fault sets.
type EdgeSet map[Edge]struct{}

// NewEdgeSet builds a set from the given edges.
func NewEdgeSet(edges ...Edge) EdgeSet {
	s := make(EdgeSet, len(edges))
	for _, e := range edges {
		s[e] = struct{}{}
	}
	return s
}

// Has reports whether the (normalized) link between a and b is in the
// set.
func (s EdgeSet) Has(a, b NodeID) bool {
	_, ok := s[NewEdge(a, b)]
	return ok
}

// Add inserts the link between a and b.
func (s EdgeSet) Add(a, b NodeID) { s[NewEdge(a, b)] = struct{}{} }

// Clone returns an independent copy.
func (s EdgeSet) Clone() EdgeSet {
	out := make(EdgeSet, len(s))
	for e := range s {
		out[e] = struct{}{}
	}
	return out
}

// Sorted returns the edges ordered by (A, B) for deterministic output.
func (s EdgeSet) Sorted() []Edge {
	out := make([]Edge, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Edges enumerates every link of Q_n (n * 2^(n-1) of them), ordered by
// (A, B) — used by link-fault experiments to sample dead wires.
func (h Hypercube) Edges() []Edge {
	out := make([]Edge, 0, h.n<<uint(h.n-1))
	for a := NodeID(0); a < NodeID(h.Size()); a++ {
		for d := 0; d < h.n; d++ {
			b := a ^ (1 << d)
			if a < b {
				out = append(out, Edge{A: a, B: b})
			}
		}
	}
	return out
}

// FormatAddr renders id as an n-bit binary string, most significant
// dimension first, matching the paper's u_{n-1}...u_0 notation.
func FormatAddr(id NodeID, n int) string {
	b := make([]byte, n)
	for d := 0; d < n; d++ {
		if Bit(id, n-1-d) == 1 {
			b[d] = '1'
		} else {
			b[d] = '0'
		}
	}
	return string(b)
}

// ParseAddr parses an n-bit binary string written most significant
// dimension first (the inverse of FormatAddr).
func ParseAddr(s string) (NodeID, error) {
	if len(s) == 0 || len(s) > MaxDim {
		return 0, fmt.Errorf("cube: address %q must have between 1 and %d bits", s, MaxDim)
	}
	var id NodeID
	for _, c := range s {
		switch c {
		case '0':
			id <<= 1
		case '1':
			id = id<<1 | 1
		default:
			return 0, fmt.Errorf("cube: address %q contains non-binary digit %q", s, c)
		}
	}
	return id, nil
}
