package selection_test

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/selection"
	"hypersort/internal/sortutil"
)

// Example finds the median of a small key set on a hypercube with one
// faulty processor, without sorting.
func Example() {
	faults := cube.NewNodeSet(2)
	plan, err := partition.BuildPlan(3, faults)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := machine.MustNew(machine.Config{Dim: 3, Faults: faults})
	keys := []sortutil.Key{40, 10, 30, 70, 20, 60, 50}
	median, _, err := selection.Median(m, plan, keys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("median:", median)
	// Output: median: 40
}
