// Command diagnose simulates PMC system-level fault diagnosis on a
// hypercube: every processor tests its neighbors (faulty testers lie
// arbitrarily), and the syndrome is decoded back to the fault set —
// the off-line step the paper assumes has happened before sorting.
//
// Usage:
//
//	diagnose -n 6 -faults 5,40,61 [-seed 7] [-show-syndrome]
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersort/internal/cli"
	"hypersort/internal/cube"
	"hypersort/internal/diagnosis"
	"hypersort/internal/xrand"
)

func main() {
	var (
		n        = flag.Int("n", 6, "hypercube dimension")
		faultsF  = flag.String("faults", "", "true faulty processor addresses (comma-separated)")
		seed     = flag.Uint64("seed", 7, "seed for faulty testers' arbitrary replies")
		showSynd = flag.Bool("show-syndrome", false, "print every failing test result")
	)
	flag.Parse()

	list, err := cli.ParseNodeList(*faultsF)
	if err != nil {
		fatal(err)
	}
	faults := cube.NewNodeSet(list...)
	h := cube.New(*n)
	if len(faults) > *n {
		fatal(fmt.Errorf("%d faults exceed the one-step diagnosability bound t = n = %d", len(faults), *n))
	}

	syndrome := diagnosis.Collect(h, faults, xrand.New(*seed))
	if *showSynd {
		fmt.Println("failing tests (tester -> tested):")
		for u := cube.NodeID(0); u < cube.NodeID(h.Size()); u++ {
			for d := 0; d < h.Dim(); d++ {
				if syndrome.Result(u, d) {
					fmt.Printf("  %d -> %d\n", u, h.Neighbor(u, d))
				}
			}
		}
	}

	found, err := diagnosis.Diagnose(h, syndrome, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("true faults:      %v\n", faults.Sorted())
	fmt.Printf("diagnosed faults: %v\n", found.Sorted())
	if fmt.Sprint(found.Sorted()) == fmt.Sprint(faults.Sorted()) {
		fmt.Println("diagnosis exact: the sorter can be configured with these addresses")
	} else {
		fmt.Println("DIAGNOSIS MISMATCH")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
