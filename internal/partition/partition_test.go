package partition

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

// paperFaults is Example 1's fault set on Q_5: addresses 3, 5, 16, 24.
func paperFaults() cube.NodeSet { return cube.NewNodeSet(3, 5, 16, 24) }

// TestPaperExample1CuttingSet verifies the exact Ψ and mincut of the
// paper's Example 1: Ψ = {(0,1,3), (0,2,3), (1,2,3), (1,3,4), (2,3,4)},
// m = 3.
func TestPaperExample1CuttingSet(t *testing.T) {
	h := cube.New(5)
	set, err := FindCuttingSet(h, paperFaults())
	if err != nil {
		t.Fatal(err)
	}
	if set.Mincut != 3 {
		t.Fatalf("mincut = %d, want 3", set.Mincut)
	}
	want := []cube.CutSequence{{0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {1, 3, 4}, {2, 3, 4}}
	if len(set.Sequences) != len(want) {
		t.Fatalf("|Ψ| = %d (%v), want %d", len(set.Sequences), set.Sequences, len(want))
	}
	for i, w := range want {
		if !set.Sequences[i].Equal(w) {
			t.Errorf("Ψ[%d] = %v, want %v", i, set.Sequences[i], w)
		}
	}
}

// TestPaperExample2Costs verifies formula (1)'s values for all five
// sequences: 3, 3, 4, 3, 3.
func TestPaperExample2Costs(t *testing.T) {
	h := cube.New(5)
	faults := paperFaults()
	wants := map[string]int{
		"(0, 1, 3)": 3,
		"(0, 2, 3)": 3,
		"(1, 2, 3)": 4,
		"(1, 3, 4)": 3,
		"(2, 3, 4)": 3,
	}
	for _, d := range []cube.CutSequence{{0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {1, 3, 4}, {2, 3, 4}} {
		got, err := ExtraCommCost(h, faults, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != wants[d.String()] {
			t.Errorf("cost%v = %d, want %d", d, got, wants[d.String()])
		}
	}
}

// TestPaperExample2Selection verifies the heuristic picks D_1 = (0,1,3)
// (minimum cost, ties broken toward the first) and the dangling
// processors come out as 18, 25, 26, 27 with local address 10.
func TestPaperExample2Selection(t *testing.T) {
	p, err := BuildPlan(5, paperFaults())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Chosen.Equal(cube.CutSequence{0, 1, 3}) {
		t.Fatalf("D_β = %v, want (0, 1, 3)", p.Chosen)
	}
	if p.ExtraComm != 3 {
		t.Errorf("extra comm = %d, want 3", p.ExtraComm)
	}
	if w := DanglingW(p.Split, p.Faults); w != 0b10 {
		t.Errorf("dangling w = %02b, want 10", w)
	}
	want := []cube.NodeID{18, 25, 26, 27}
	if len(p.Dangling) != len(want) {
		t.Fatalf("dangling = %v, want %v", p.Dangling, want)
	}
	for i := range want {
		if p.Dangling[i] != want[i] {
			t.Fatalf("dangling = %v, want %v", p.Dangling, want)
		}
	}
}

func TestTrivialFaultCounts(t *testing.T) {
	for _, faults := range []cube.NodeSet{nil, cube.NewNodeSet(), cube.NewNodeSet(9)} {
		set, err := FindCuttingSet(cube.New(4), faults)
		if err != nil {
			t.Fatal(err)
		}
		if set.Mincut != 0 || len(set.Sequences) != 1 || len(set.Sequences[0]) != 0 {
			t.Errorf("faults %v: set = %+v", faults, set)
		}
	}
}

func TestFindCuttingSetRejectsOutOfCube(t *testing.T) {
	if _, err := FindCuttingSet(cube.New(3), cube.NewNodeSet(8)); err == nil {
		t.Error("fault outside cube accepted")
	}
}

func TestTwoFaultsOneCut(t *testing.T) {
	// Any two distinct faults are separated by each dimension they differ
	// in, so mincut = 1 and |Ψ| = HammingDistance.
	h := cube.New(5)
	set, err := FindCuttingSet(h, cube.NewNodeSet(0b00000, 0b10110))
	if err != nil {
		t.Fatal(err)
	}
	if set.Mincut != 1 {
		t.Fatalf("mincut = %d", set.Mincut)
	}
	if len(set.Sequences) != 3 {
		t.Fatalf("|Ψ| = %d, want HD = 3 (%v)", len(set.Sequences), set.Sequences)
	}
	for _, d := range set.Sequences {
		if len(d) != 1 {
			t.Fatal("non-singleton sequence for two faults")
		}
	}
}

// bruteMincut computes the true minimum cut size by exhaustive subset
// enumeration, the specification FindCuttingSet must match.
func bruteMincut(h cube.Hypercube, faults cube.NodeSet) int {
	n := h.Dim()
	for k := 0; k <= n; k++ {
		for _, dims := range cube.Combinations(n, k) {
			sp := cube.MustSplit(h, cube.CutSequence(dims))
			if sp.IsSingleFault(faults) {
				return k
			}
		}
	}
	return -1
}

func TestMincutMatchesBruteForce(t *testing.T) {
	r := xrand.New(42)
	for _, n := range []int{3, 4, 5, 6} {
		h := cube.New(n)
		for trial := 0; trial < 120; trial++ {
			nf := 2 + r.IntN(n-1) // 2..n faults: also exercise r = n
			if nf > (1 << n) {
				nf = 1 << n
			}
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(h.Size(), nf) {
				faults.Add(cube.NodeID(f))
			}
			set, err := FindCuttingSet(h, faults)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			if want := bruteMincut(h, faults); set.Mincut != want {
				t.Fatalf("n=%d faults=%v: mincut %d, brute force %d", n, faults.Sorted(), set.Mincut, want)
			}
			// Every member of Ψ must actually induce a single-fault
			// structure of the mincut length.
			for _, d := range set.Sequences {
				if len(d) != set.Mincut {
					t.Fatalf("sequence %v has wrong length", d)
				}
				if !cube.MustSplit(h, d).IsSingleFault(faults) {
					t.Fatalf("sequence %v not single-fault for %v", d, faults.Sorted())
				}
			}
		}
	}
}

// TestCuttingSetComplete verifies Ψ contains EVERY minimal feasible
// subset, cross-checked by brute force.
func TestCuttingSetComplete(t *testing.T) {
	r := xrand.New(43)
	h := cube.New(5)
	for trial := 0; trial < 100; trial++ {
		nf := 2 + r.IntN(4)
		faults := cube.NewNodeSet()
		for _, f := range r.Sample(h.Size(), nf) {
			faults.Add(cube.NodeID(f))
		}
		set, err := FindCuttingSet(h, faults)
		if err != nil {
			t.Fatal(err)
		}
		var want []cube.CutSequence
		for _, dims := range cube.Combinations(5, set.Mincut) {
			if cube.MustSplit(h, cube.CutSequence(dims)).IsSingleFault(faults) {
				want = append(want, cube.CutSequence(dims))
			}
		}
		if len(want) != len(set.Sequences) {
			t.Fatalf("faults %v: |Ψ| = %d, brute force %d", faults.Sorted(), len(set.Sequences), len(want))
		}
		for i := range want {
			if !set.Sequences[i].Equal(want[i]) {
				t.Fatalf("Ψ[%d] = %v, want %v", i, set.Sequences[i], want[i])
			}
		}
	}
}

func TestExtraCommCostRejectsBadSequence(t *testing.T) {
	h := cube.New(4)
	faults := cube.NewNodeSet(0, 1) // differ only in dim 0
	if _, err := ExtraCommCost(h, faults, cube.CutSequence{1}); err == nil {
		t.Error("non-separating sequence accepted")
	}
	if _, err := ExtraCommCost(h, faults, cube.CutSequence{9}); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestSelectEmptySet(t *testing.T) {
	if _, _, err := Select(cube.New(3), nil, CutSet{}); err == nil {
		t.Error("empty Ψ accepted")
	}
}

func TestPlanInvariants(t *testing.T) {
	r := xrand.New(44)
	for _, n := range []int{3, 4, 5, 6} {
		h := cube.New(n)
		for trial := 0; trial < 60; trial++ {
			nf := r.IntN(n) // 0..n-1 faults (the paper's regime)
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(h.Size(), nf) {
				faults.Add(cube.NodeID(f))
			}
			p, err := BuildPlan(n, faults)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			if nf == 0 {
				if p.HasDead || p.Working() != h.Size() || p.Utilization() != 1 {
					t.Fatalf("fault-free plan wrong: %+v", p)
				}
				continue
			}
			// Every subcube has exactly one dead node; faults are dead.
			if len(p.DeadW) != p.NumSubcubes() {
				t.Fatal("DeadW size wrong")
			}
			deadSet := cube.NewNodeSet()
			for v := 0; v < p.NumSubcubes(); v++ {
				deadSet.Add(p.DeadOf(cube.NodeID(v)))
			}
			if len(deadSet) != p.NumSubcubes() {
				t.Fatal("dead nodes not distinct")
			}
			for f := range faults {
				if !deadSet.Has(f) {
					t.Fatalf("fault %d not dead", f)
				}
			}
			// Dangling = dead minus faults, all healthy.
			if len(p.Dangling) != p.NumSubcubes()-nf {
				t.Fatalf("dangling count %d, want %d", len(p.Dangling), p.NumSubcubes()-nf)
			}
			for _, d := range p.Dangling {
				if faults.Has(d) {
					t.Fatalf("dangling %d is faulty", d)
				}
			}
			// Working processors = N - 2^m; utilization consistent.
			if p.Working() != h.Size()-p.NumSubcubes() {
				t.Fatal("working count wrong")
			}
			// Paper's bound: with r <= n-1 faults, dangling <= N/4.
			if len(p.Dangling) > h.Size()/4 {
				t.Fatalf("n=%d faults=%v: %d dangling > N/4", n, faults.Sorted(), len(p.Dangling))
			}
		}
	}
}

func TestPlanDeadOfPanicsWithoutFaults(t *testing.T) {
	p, err := BuildPlan(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("DeadOf on fault-free plan did not panic")
		}
	}()
	p.DeadOf(0)
}

func TestPlanString(t *testing.T) {
	p, err := BuildPlan(5, paperFaults())
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestSingleFaultPlanUsesWholeCube(t *testing.T) {
	p, err := BuildPlan(4, cube.NewNodeSet(11))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mincut() != 0 || p.NumSubcubes() != 1 || p.Working() != 15 {
		t.Fatalf("plan = %+v", p)
	}
	if p.DeadOf(0) != 11 {
		t.Errorf("dead = %d, want the fault 11", p.DeadOf(0))
	}
	if len(p.Dangling) != 0 {
		t.Error("single fault should not create dangling processors")
	}
}

// TestTwoFaultPlanNoDangling checks the paper's claim: two faults
// partition Q_n into two half-cubes, each with one fault — zero dangling.
func TestTwoFaultPlanNoDangling(t *testing.T) {
	r := xrand.New(45)
	for trial := 0; trial < 50; trial++ {
		s := r.Sample(64, 2)
		p, err := BuildPlan(6, cube.NewNodeSet(cube.NodeID(s[0]), cube.NodeID(s[1])))
		if err != nil {
			t.Fatal(err)
		}
		if p.Mincut() != 1 || len(p.Dangling) != 0 {
			t.Fatalf("faults %v: mincut %d dangling %v", s, p.Mincut(), p.Dangling)
		}
		if p.Utilization() != 1 {
			t.Errorf("utilization = %v, want 1", p.Utilization())
		}
	}
}

func TestNodesVisitedBound(t *testing.T) {
	// The paper bounds the tree at 2^n - 1 nodes.
	h := cube.New(6)
	set, err := FindCuttingSet(h, cube.NewNodeSet(0, 1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if set.NodesVisited > 63 {
		t.Errorf("visited %d > 2^6-1", set.NodesVisited)
	}
}

func TestBuildPlanWithSequence(t *testing.T) {
	faults := paperFaults()
	// Force the paper's D_3 = (1, 2, 3) instead of the heuristic's D_1.
	p, err := BuildPlanWithSequence(5, faults, cube.CutSequence{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Chosen.Equal(cube.CutSequence{1, 2, 3}) || p.ExtraComm != 4 {
		t.Fatalf("plan = %v cost %d", p.Chosen, p.ExtraComm)
	}
	if p.Mincut() != 3 || len(p.Dangling) != 4 {
		t.Fatalf("mincut %d dangling %v", p.Mincut(), p.Dangling)
	}
	// Rejections: non-separating and invalid sequences.
	if _, err := BuildPlanWithSequence(5, faults, cube.CutSequence{0}); err == nil {
		t.Error("non-separating sequence accepted")
	}
	if _, err := BuildPlanWithSequence(5, faults, cube.CutSequence{9}); err == nil {
		t.Error("invalid dimension accepted")
	}
	// Fault-free: any sequence is fine, no dead nodes.
	p0, err := BuildPlanWithSequence(4, nil, cube.CutSequence{2})
	if err != nil {
		t.Fatal(err)
	}
	if p0.HasDead || p0.Working() != 16 {
		t.Errorf("fault-free forced plan wrong: %+v", p0)
	}
}

func TestUtilizationDegenerate(t *testing.T) {
	// A fully faulty Q_0 has zero healthy processors.
	p := &Plan{Cube: cube.New(0), Faults: cube.NewNodeSet(0)}
	if p.Utilization() != 0 {
		t.Error("utilization of dead machine should be 0")
	}
}
