package workload

import (
	"testing"

	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

func TestGenerateAllKindsCountAndDeterminism(t *testing.T) {
	for _, kind := range Kinds() {
		a, err := Generate(kind, 500, xrand.New(9))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(a) != 500 {
			t.Fatalf("%s: got %d keys", kind, len(a))
		}
		b := MustGenerate(kind, 500, xrand.New(9))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", kind, i)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("nope", 10, xrand.New(1)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Generate(Uniform, -1, xrand.New(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic")
		}
	}()
	MustGenerate("nope", 1, xrand.New(1))
}

func TestSortedKindsAreSorted(t *testing.T) {
	r := xrand.New(2)
	s := MustGenerate(Sorted, 300, r)
	if !sortutil.IsSorted(s, sortutil.Ascending) {
		t.Error("Sorted kind not ascending")
	}
	rev := MustGenerate(ReverseOrder, 300, r)
	if !sortutil.IsSorted(rev, sortutil.Descending) {
		t.Error("ReverseOrder kind not descending")
	}
}

func TestFewDistinctHasFewValues(t *testing.T) {
	xs := MustGenerate(FewDistinct, 1000, xrand.New(3))
	seen := map[sortutil.Key]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) > 16 {
		t.Errorf("FewDistinct produced %d distinct values", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	xs := MustGenerate(ZipfLite, 5000, xrand.New(4))
	zeros := 0
	for _, x := range xs {
		if x == 0 {
			zeros++
		}
	}
	// 1/H(64) ~ 21% of mass on key 0; accept a broad band.
	if zeros < 500 || zeros > 2000 {
		t.Errorf("ZipfLite zero count %d outside skew band", zeros)
	}
}

func TestDistributeEvenAndRagged(t *testing.T) {
	keys := MustGenerate(Uniform, 10, xrand.New(5))
	shares, err := Distribute(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("share count = %d", len(shares))
	}
	q := len(shares[0])
	if q != 3 {
		t.Fatalf("share size = %d, want ceil(10/4)=3", q)
	}
	total, dummies := 0, 0
	for _, s := range shares {
		if len(s) != q {
			t.Fatal("uneven share sizes")
		}
		for _, k := range s {
			total++
			if k == sortutil.Inf {
				dummies++
			}
		}
	}
	if total != 12 || dummies != 2 {
		t.Errorf("total %d dummies %d", total, dummies)
	}
	// Real keys must survive the round trip.
	gathered := sortutil.StripInfAll(Gather(shares))
	if !sortutil.SameMultiset(gathered, keys) {
		t.Error("Distribute/Gather lost keys")
	}
}

func TestDistributeErrorsAndEmpty(t *testing.T) {
	if _, err := Distribute(nil, 0); err == nil {
		t.Error("p=0 accepted")
	}
	shares, err := Distribute(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if len(s) != 1 || s[0] != sortutil.Inf {
			t.Errorf("empty distribute share = %v", s)
		}
	}
}

func TestGatherOrder(t *testing.T) {
	shares := [][]sortutil.Key{{1, 2}, {3}, {4, 5}}
	got := Gather(shares)
	want := []sortutil.Key{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gather = %v", got)
		}
	}
}
