// Command reproduce regenerates every artifact of the paper's evaluation
// in one run: Table 1, Table 2, all four Figure 7 panels (text, JSON and
// SVG), and the ablation studies, writing them under an output directory
// together with a summary of the shape checks.
//
// Usage:
//
//	reproduce [-out results] [-seed 1992] [-quick]
//
// -quick cuts trial counts for a fast smoke run; the defaults match the
// paper's 10000-placement methodology and finish in well under a minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hypersort/internal/experiments"
	"hypersort/internal/plot"
)

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		seed  = flag.Uint64("seed", 1992, "random seed")
		quick = flag.Bool("quick", false, "reduced trial counts for a fast smoke run")
	)
	flag.Parse()

	trials := 10000
	figTrials := 5
	if *quick {
		trials = 300
		figTrials = 2
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var summary strings.Builder
	summary.WriteString("# Reproduction summary\n\n")
	fmt.Fprintf(&summary, "seed %d, %d partition trials, %d placements per figure point\n\n", *seed, trials, figTrials)

	// Table 1.
	step("Table 1 (mincut distribution)")
	t1, err := experiments.Table1(experiments.Table1Config{Trials: trials, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	writeText(*out, "table1.txt", experiments.FormatTable1(t1))
	writeJSON(*out, "table1.json", t1)
	summary.WriteString("- Table 1: written (anchor: n=6 r=5 mincut-3 share ~93.85% in the paper)\n")

	// Table 2.
	step("Table 2 (processor utilization)")
	t2, err := experiments.Table2(experiments.Table2Config{Trials: trials, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	writeText(*out, "table2.txt", experiments.FormatTable2(t2))
	writeJSON(*out, "table2.json", t2)
	summary.WriteString("- Table 2: written (anchors: n=6 r=4 -> 100%/93.3% ours, 53.3%/26.6% baseline)\n")

	// Figure 7 panels (paper labels: (a)=Q6, (b)=Q5, (c)=Q3, (d)=Q4).
	for _, p := range []struct {
		panel string
		n     int
	}{{"a", 6}, {"b", 5}, {"c", 3}, {"d", 4}} {
		step(fmt.Sprintf("Figure 7(%s) (n=%d)", p.panel, p.n))
		series, err := experiments.Fig7(experiments.Fig7Config{N: p.n, TrialsPerPoint: figTrials, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		base := "fig7" + p.panel
		writeText(*out, base+".txt", experiments.FormatFig7(series))
		writeJSON(*out, base+".json", series)
		writeText(*out, base+".svg", plot.Fig7SVG(series,
			fmt.Sprintf("Figure 7(%s): execution time vs M on Q_%d (log-log)", p.panel, p.n)))
		if violations := experiments.CheckFig7Shape(series); len(violations) == 0 {
			fmt.Fprintf(&summary, "- Figure 7(%s): shape check PASSED (all paper orderings hold at the largest M)\n", p.panel)
		} else {
			fmt.Fprintf(&summary, "- Figure 7(%s): shape check FAILED: %v\n", p.panel, violations)
		}
	}

	// Ablations.
	step("Ablations (E8-E16)")
	e8, err := experiments.CostAgreement(*seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e8_costmodel.txt", experiments.FormatCostAgreement(e8))
	e9, err := experiments.HeuristicValue(6, 4000, 20, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e9_heuristic.txt", experiments.FormatHeuristic(e9))
	e10, err := experiments.FaultModelComparison(5, 4000, 10, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e10_faultmodel.txt", experiments.FormatFaultModel(e10))
	e11, err := experiments.ProtocolComparison(5, 4000, 5, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e11_protocol.txt", experiments.FormatProtocol(e11))
	e12, err := experiments.DistributionOverhead(6, 3, []int{3200, 32000, 320000}, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e12_distribution.txt", experiments.FormatDistribution(e12))
	e13, err := experiments.Speedup(64000, 8, *seed, experiments.DefaultSpeedupCost())
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e13_speedup.txt", experiments.FormatSpeedup(e13))
	beyondTrials := trials
	if beyondTrials > 400 {
		beyondTrials = 400
	}
	e14, err := experiments.BeyondGuarantee(5, 12, beyondTrials, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e14_beyond.txt", experiments.FormatBeyond(e14))
	availTrials := 40
	if *quick {
		availTrials = 8
	}
	e15, err := experiments.Availability(5, 4000, availTrials, nil, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e15_availability.txt", experiments.FormatAvailability(e15))
	e16, err := experiments.LinkFaults(5, 4000, 4, 10, *seed)
	if err != nil {
		fatal(err)
	}
	writeText(*out, "e16_linkfaults.txt", experiments.FormatLinkFaults(e16))
	summary.WriteString("- Ablations E8-E16: written\n")

	writeText(*out, "SUMMARY.md", summary.String())
	fmt.Printf("\nall artifacts written to %s/\n", *out)
	fmt.Print(summary.String())
}

func step(name string) { fmt.Println("reproducing:", name) }

func writeText(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func writeJSON(dir, name string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	writeText(dir, name, string(data)+"\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
