package routing

import (
	"errors"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

func TestECubeBasics(t *testing.T) {
	h := cube.New(4)
	p := ECube(h, 0b0000, 0b1011)
	if !p.Valid(0b0000, 0b1011) {
		t.Fatalf("invalid path %v", p)
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d, want 3", p.Hops())
	}
	// Dimension order: bits corrected 0, 1, 3.
	want := Path{0b0000, 0b0001, 0b0011, 0b1011}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestECubeSelf(t *testing.T) {
	h := cube.New(3)
	p := ECube(h, 5, 5)
	if p.Hops() != 0 || !p.Valid(5, 5) {
		t.Errorf("self path = %v", p)
	}
}

func TestECubeShortestProperty(t *testing.T) {
	h := cube.New(6)
	r := xrand.New(1)
	for trial := 0; trial < 500; trial++ {
		src := cube.NodeID(r.IntN(64))
		dst := cube.NodeID(r.IntN(64))
		p := ECube(h, src, dst)
		if !p.Valid(src, dst) {
			t.Fatalf("invalid e-cube path %v", p)
		}
		if p.Hops() != cube.HammingDistance(src, dst) {
			t.Fatalf("e-cube path not shortest: %v", p)
		}
	}
}

func TestPathValidRejects(t *testing.T) {
	if (Path{}).Valid(0, 0) {
		t.Error("empty path valid")
	}
	if (Path{1, 2}).Valid(0, 2) {
		t.Error("wrong src accepted")
	}
	if (Path{0, 3}).Valid(0, 3) {
		t.Error("non-adjacent step accepted")
	}
	if (Path{0}).Hops() != 0 || (Path(nil)).Hops() != 0 {
		t.Error("Hops of trivial paths wrong")
	}
}

func TestAvoidsFaults(t *testing.T) {
	faults := cube.NewNodeSet(1)
	if (Path{0, 1, 3}).AvoidsFaults(faults) {
		t.Error("path through faulty intermediate accepted")
	}
	// Faulty endpoints are exempt.
	if !(Path{1, 3}).AvoidsFaults(faults) {
		t.Error("faulty endpoint should be exempt")
	}
}

func TestFaultAvoidingDetours(t *testing.T) {
	h := cube.New(3)
	// Route 000 -> 011 with 001 and 010 faulty: both shortest paths are
	// blocked, so the router must detour (e.g. through dimension 2).
	faults := cube.NewNodeSet(0b001, 0b010)
	p, err := FaultAvoiding(h, 0b000, 0b011, faults)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(0b000, 0b011) || !p.AvoidsFaults(faults) {
		t.Fatalf("bad detour path %v", p)
	}
	if p.Hops() < 4 {
		t.Errorf("detour should cost extra hops, got %d", p.Hops())
	}
}

func TestFaultAvoidingSelfAndAdjacent(t *testing.T) {
	h := cube.New(3)
	p, err := FaultAvoiding(h, 2, 2, nil)
	if err != nil || p.Hops() != 0 {
		t.Errorf("self route = %v, %v", p, err)
	}
	// Adjacent nodes connect directly even when everything else is faulty.
	faults := cube.NewNodeSet(0b010, 0b100, 0b011, 0b101, 0b110, 0b111)
	p, err = FaultAvoiding(h, 0b000, 0b001, faults)
	if err != nil {
		t.Fatalf("unexpected no-path: %v", err)
	}
	if !p.Valid(0b000, 0b001) || p.Hops() != 1 {
		t.Fatalf("adjacent path = %v", p)
	}
}

func TestFaultAvoidingNoPath(t *testing.T) {
	h := cube.New(3)
	// Surround node 0 with its three neighbors faulty: unreachable.
	faults := cube.NewNodeSet(0b001, 0b010, 0b100)
	_, err := FaultAvoiding(h, 0b111, 0b000, faults)
	var noPath ErrNoPath
	if !errors.As(err, &noPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	if noPath.Error() == "" {
		t.Error("empty error message")
	}
}

// TestFaultAvoidingCompleteUnderPaperRegime: with r <= n-1 faults the
// fault-free survivors of Q_n stay connected, so routing between any two
// healthy nodes must always succeed and avoid all faults.
func TestFaultAvoidingCompleteUnderPaperRegime(t *testing.T) {
	r := xrand.New(7)
	for _, n := range []int{3, 4, 5} {
		h := cube.New(n)
		for trial := 0; trial < 60; trial++ {
			nf := 1 + r.IntN(n-1) // 1..n-1 faults
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(h.Size(), nf) {
				faults.Add(cube.NodeID(f))
			}
			healthy := make([]cube.NodeID, 0, h.Size())
			for id := cube.NodeID(0); id < cube.NodeID(h.Size()); id++ {
				if !faults.Has(id) {
					healthy = append(healthy, id)
				}
			}
			src := healthy[r.IntN(len(healthy))]
			dst := healthy[r.IntN(len(healthy))]
			p, err := FaultAvoiding(h, src, dst, faults)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			if !p.Valid(src, dst) || !p.AvoidsFaults(faults) {
				t.Fatalf("n=%d: invalid avoiding path %v (faults %v)", n, p, faults.Sorted())
			}
		}
	}
}

func TestFaultAvoidingMatchesECubeWhenFaultFree(t *testing.T) {
	h := cube.New(5)
	r := xrand.New(11)
	for trial := 0; trial < 200; trial++ {
		src := cube.NodeID(r.IntN(32))
		dst := cube.NodeID(r.IntN(32))
		p, err := FaultAvoiding(h, src, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		// With no faults the greedy profitable-first order is exactly
		// e-cube, so the path must be shortest.
		if p.Hops() != cube.HammingDistance(src, dst) {
			t.Fatalf("fault-free avoiding path not shortest: %v", p)
		}
	}
}

func TestRouterInterfaces(t *testing.T) {
	h := cube.New(4)
	ec := NewECubeRouter(h)
	if ec.Name() != "e-cube" {
		t.Error("name wrong")
	}
	p, err := ec.Route(0, 15)
	if err != nil || p.Hops() != 4 {
		t.Errorf("e-cube route = %v, %v", p, err)
	}
	faults := cube.NewNodeSet(1)
	av := NewFaultAvoidingRouter(h, faults)
	if av.Name() != "fault-avoiding" {
		t.Error("name wrong")
	}
	p, err = av.Route(0, 3)
	if err != nil || !p.AvoidsFaults(faults) {
		t.Errorf("avoiding route = %v, %v", p, err)
	}
	// The router must have cloned the fault set.
	faults.Add(2)
	p, _ = av.Route(0, 3)
	if !p.Valid(0, 3) {
		t.Error("router affected by caller mutating fault set is fine, but path must stay valid")
	}
}
