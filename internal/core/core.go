// Package core implements the paper's fault-tolerant sorting algorithm
// (§3, Steps 1-8): sorting M keys on an n-dimensional hypercube with up
// to n-1 known faulty processors, by partitioning the cube into the
// single-fault subcube structure F_n^m, running the §2.1 single-fault
// bitonic sort inside each subcube, and merging across subcubes with a
// bitonic-like network that treats every subcube as one node of a Q_m.
//
// The steps map onto the code as follows:
//
//	Step 1 (reindex)      — partition.Plan.DeadW + bitonic.SubcubeView's
//	                        Pivot put each subcube's dead processor at
//	                        logical address 0.
//	Step 2 (distribute)   — workload.Distribute over the N' working
//	                        processors in (subcube, logical) order.
//	Step 3 (local+intra)  — bitonic.Ctx.SortView per subcube, ascending
//	                        iff the subcube address v is even.
//	Steps 4-6 (loops)     — the i/j double loop over subcube dimensions.
//	Step 7 (cross)        — Ctx.ExchangeSplit with the same-logical
//	                        processor of the dimension-j neighbor
//	                        subcube; keep the smaller keys iff
//	                        mask == v_j (mask = bit i+1 of v).
//	Step 8 (re-sort)      — Ctx.MergeView (the full s(s+1)/2-step
//	                        bitonic network), ascending iff
//	                        v_{j-1} == mask (v_{-1} = 0), so the next
//	                        exchange always pairs an ascending subcube
//	                        with a descending one — the discipline that
//	                        makes the chunk-wise exchange an exact
//	                        subcube-level compare-split.
//
// Step 8 must be the full re-sort, not just a bitonic merge: although the
// block after a compare-split is bitonic across the subcube, the dead
// processor at logical 0 behaves as the extreme sentinel of whatever
// direction the next operation runs in, and the bitonic profile's
// extreme-valued end does not in general sit at logical 0. The full
// network sorts unconditionally, which is exactly why the paper's skip
// rule is safe; see DESIGN.md ("Known deviations") for the analysis.
package core

import (
	"fmt"

	"hypersort/internal/bitonic"
	"hypersort/internal/collective"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
)

// FTSort sorts keys ascending on machine m according to plan, returning
// the sorted keys (in the subcubes' address order, gathered) and the
// simulated run cost. The plan must have been built for the same fault
// set the machine carries; mismatches are rejected because a kernel
// scheduled on a processor the machine considers faulty would be a silent
// lie about the hardware.
func FTSort(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key) ([]sortutil.Key, machine.Result, error) {
	return FTSortOpt(m, plan, keys, Options{})
}

// Options tunes algorithm variants.
type Options struct {
	// Protocol selects the compare-exchange wire protocol: the default
	// full-block swap, or the paper's literal two-round half-exchange
	// (Step 7(a)-(c)). Both move the same key volume; see the protocol
	// ablation in EXPERIMENTS.md.
	Protocol bitonic.Protocol
	// AccountDistribution includes the paper's Step 2 (and the final
	// collection) in the simulated time: keys are scattered from a host
	// processor (the first working processor) over a binomial tree
	// before sorting and gathered back afterwards. The paper's cost
	// model excludes this phase; turning it on measures what that
	// exclusion hides (distribution ablation in EXPERIMENTS.md).
	AccountDistribution bool
	// StepHook, if non-nil, receives every processor's chunk at each
	// algorithm checkpoint (after Step 3, after each Step 7 exchange,
	// after each Step 8 re-sort) — the programmatic form of the paper's
	// Figure 6 walkthrough. Called concurrently; see StateRecorder.
	StepHook StepHook
	// PerNodeBuf, if non-nil, is cleared, filled, and installed as the
	// Result's PerNode map instead of allocating a fresh one per call
	// (machine.RunInto's contract). Pooled callers pass the buffer from
	// the previous run on the same resource; it belongs to the returned
	// Result until the caller is done with it.
	PerNodeBuf map[cube.NodeID]machine.Time
	// Phases, if non-nil, receives per-phase virtual-time and comparison
	// breakdowns keyed by the paper's algorithm steps: each processor
	// reports the clock and comparison deltas of its Step 3 local sort,
	// Step 3 intra-subcube merge, every Step 7 exchange, and every Step 8
	// re-sort (plus Step 2 scatter/gather when AccountDistribution is on).
	// Nil disables phase accounting entirely.
	Phases *obs.PhaseSet
}

// phaseProbe attributes a processor's clock and comparison advance to
// algorithm phases: lap observes the delta since the previous lap (or
// mark) under the given phase. A probe with a nil PhaseSet does nothing.
type phaseProbe struct {
	p     *machine.Proc
	ps    *obs.PhaseSet
	clock machine.Time
	comps int64
}

// mark restarts the delta window without observing (used to exclude
// unattributed intervals).
func (pr *phaseProbe) mark() {
	if pr.ps == nil {
		return
	}
	pr.clock, pr.comps = pr.p.Clock(), pr.p.Comparisons()
}

// lap observes the window since the last mark/lap under phase ph and
// restarts the window.
func (pr *phaseProbe) lap(ph obs.Phase) {
	if pr.ps == nil {
		return
	}
	c, k := pr.p.Clock(), pr.p.Comparisons()
	pr.ps.Observe(ph, int64(c-pr.clock), k-pr.comps)
	pr.clock, pr.comps = c, k
}

// Collective tags live far above the bitonic context's counter so the
// scatter/gather phases can never collide with sort-phase messages.
const (
	scatterTag machine.Tag = 1 << 30
	gatherTag  machine.Tag = 1<<30 + 8
)

// FTSortOpt is FTSort with explicit algorithm options.
func FTSortOpt(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, opts Options) ([]sortutil.Key, machine.Result, error) {
	return FTSortLayout(m, NewLayout(plan), keys, opts)
}

// FTSortLayout is FTSortOpt with a precomputed layout. A Layout is a
// pure function of its plan, so callers serving many requests for the
// same configuration (the engine) build it once and reuse it, skipping
// the per-request view/slot-map construction.
func FTSortLayout(m *machine.Machine, layout *Layout, keys []sortutil.Key, opts Options) ([]sortutil.Key, machine.Result, error) {
	run, err := NewSortRun(m, layout, keys, opts)
	if err != nil {
		return nil, machine.Result{}, err
	}
	res, err := m.RunInto(layout.Working, run.Kernel(), opts.PerNodeBuf)
	if err != nil {
		return nil, machine.Result{}, err
	}
	return run.Gather(), res, nil
}

// SortRun is one prepared FTSort execution: the validated plan/machine
// pairing, the distributed key shares, the per-processor output slots,
// and the SPMD kernel closure — everything FTSortLayout does around the
// machine run, split from the run itself so the engine's continuous-
// batching dispatcher can fuse several prepared sorts into one machine
// dispatch (machine.Session.RunBatch) and gather each result afterwards.
type SortRun struct {
	layout *Layout
	opts   Options
	shares [][]sortutil.Key
	out    [][]sortutil.Key
	group  *collective.Group
	// backing is the shares' arena and scratch/scratchBack the matching
	// per-slot double-buffer halves handed to the bitonic contexts; all
	// three are retained so Reuse can redistribute fresh keys without
	// allocating. After a run, a slot's share and scratch buffers may
	// have traded places (the bitonic arena ping-pongs) — both stay
	// owned by this SortRun, so Reuse simply overwrites them.
	backing     []sortutil.Key
	scratch     [][]sortutil.Key
	scratchBack []sortutil.Key
	// kern caches the Kernel closure: a reused SortRun serves many
	// requests, and the closure's captures (just the receiver) never
	// change.
	kern machine.Kernel
}

// NewSortRun validates the plan/machine pairing and distributes keys,
// returning the prepared run. The returned SortRun is good for one
// execution of its Kernel followed by one Gather; Reuse re-arms it for
// another request on the same layout.
func NewSortRun(m *machine.Machine, layout *Layout, keys []sortutil.Key, opts Options) (*SortRun, error) {
	plan := layout.Plan
	if plan.Cube.Dim() != m.Cube().Dim() {
		return nil, fmt.Errorf("core: plan for Q_%d used on Q_%d", plan.Cube.Dim(), m.Cube().Dim())
	}
	for f := range m.Faults() {
		if !plan.Faults.Has(f) {
			return nil, fmt.Errorf("core: machine fault %d missing from plan", f)
		}
	}
	for f := range plan.Faults {
		if !m.Faults().Has(f) {
			return nil, fmt.Errorf("core: plan fault %d not faulty on machine", f)
		}
	}

	r := &SortRun{
		layout: layout,
		opts:   opts,
		out:    make([][]sortutil.Key, len(layout.Working)),
	}
	if err := r.distribute(keys); err != nil {
		return nil, err
	}
	if opts.AccountDistribution {
		var err error
		if r.group, err = collective.NewGroup(layout.Working); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Reuse re-arms a finished run for a fresh request on the same layout
// and options, redistributing keys into the retained arenas. It skips
// NewSortRun's plan/machine validation — the caller vouches that the
// machine configuration matches the one the run was built for (the
// engine's dispatch lanes serve exactly one configuration, so the check
// would re-verify an invariant of the lane). Steady state it allocates
// nothing: only a change in padded share geometry regrows the arenas.
func (r *SortRun) Reuse(keys []sortutil.Key) error {
	clear(r.out)
	return r.distribute(keys)
}

// distribute splits keys into the run's share arena and sizes the
// per-slot scratch buffers to match, reusing retained capacity.
func (r *SortRun) distribute(keys []sortutil.Key) error {
	p := len(r.layout.Working)
	var err error
	r.backing, r.shares, err = workload.DistributeInto(r.backing, r.shares, keys, p)
	if err != nil {
		return err
	}
	q := len(r.shares[0])
	if cap(r.scratchBack) < p*q {
		r.scratchBack = make([]sortutil.Key, p*q)
	}
	if cap(r.scratch) < p {
		r.scratch = make([][]sortutil.Key, p)
	} else {
		r.scratch = r.scratch[:p]
	}
	for i := 0; i < p; i++ {
		r.scratch[i] = r.scratchBack[i*q : (i+1)*q : (i+1)*q]
	}
	return nil
}

// Kernel returns the run's SPMD program, suitable for machine.Run or a
// fused machine.Session sub-run on the layout's Working participants.
// The closure is cached: successive calls (one per Reuse cycle) return
// the same function.
func (r *SortRun) Kernel() machine.Kernel {
	if r.kern == nil {
		r.kern = r.runKernel
	}
	return r.kern
}

// runKernel is the SPMD program of one participant (the body of Kernel).
func (r *SortRun) runKernel(p *machine.Proc) error {
	layout, opts := r.layout, r.opts
	slot := layout.SlotOf[p.ID()]
	pr := phaseProbe{p: p, ps: opts.Phases}
	pr.mark()
	// Distribute owns the shares' arena for this run, so each kernel
	// owns its share outright (the caller's keys stay untouched
	// without a defensive clone).
	share := r.shares[slot]
	scratch := r.scratch[slot]
	if opts.AccountDistribution {
		var all [][]sortutil.Key
		if slot == 0 {
			all = r.shares
		}
		share = collective.Scatter(p, r.group, 0, scatterTag, all)
		pr.lap(obs.PhaseStep2Distribute)
	}
	chunk := kernel(p, layout, share, scratch, opts, &pr)
	if opts.AccountDistribution {
		pr.mark()
		collected := collective.Gather(p, r.group, 0, gatherTag, chunk)
		pr.lap(obs.PhaseStep2Distribute)
		if slot == 0 {
			copy(r.out, collected)
		}
		return nil
	}
	r.out[slot] = chunk
	return nil
}

// Gather concatenates the per-processor chunks (in distribution order)
// and strips the padding sentinels, yielding the sorted keys. Call only
// after the Kernel's run completed without error.
func (r *SortRun) Gather() []sortutil.Key {
	// Every chunk has the padded share size, so size the gather exactly
	// (the original key count undercounts by the dummy padding).
	gathered := make([]sortutil.Key, 0, len(r.shares)*len(r.shares[0]))
	for _, chunk := range r.out {
		gathered = append(gathered, chunk...)
	}
	return sortutil.StripInf(gathered)
}

// Layout is the precomputed placement the kernels share: every subcube's
// view and the global distribution order of working processors.
type Layout struct {
	Plan *partition.Plan
	// Views[v] is subcube v's bitonic view (dead processor at logical 0).
	Views []bitonic.View
	// Working lists the N' working processors in (subcube address,
	// logical address) order — the order keys are distributed and
	// gathered in, so ascending output lands in the subcubes' address
	// order as Step 2 requires.
	Working []cube.NodeID
	// SlotOf inverts Working.
	SlotOf map[cube.NodeID]int
}

// NewLayout materializes the views and distribution order for a plan.
func NewLayout(plan *partition.Plan) *Layout {
	h := plan.Cube
	sp := plan.Split
	l := &Layout{
		Plan:   plan,
		Views:  make([]bitonic.View, sp.NumSubcubes()),
		SlotOf: make(map[cube.NodeID]int, plan.Working()),
	}
	for v := 0; v < sp.NumSubcubes(); v++ {
		sc := sp.SubcubeOf(cube.NodeID(v))
		if plan.HasDead {
			deadW := plan.DeadW[v]
			l.Views[v] = bitonic.SubcubeView(h, sc, &deadW)
		} else {
			l.Views[v] = bitonic.SubcubeView(h, sc, nil)
		}
		for _, phys := range l.Views[v].LivePhys() {
			l.SlotOf[phys] = len(l.Working)
			l.Working = append(l.Working, phys)
		}
	}
	return l
}

// kernel is the SPMD program of one working processor. It returns the
// processor's final chunk (sorted ascending). The probe attributes the
// processor's clock advance to the paper's steps; pass a probe with a
// nil PhaseSet to disable.
func kernel(p *machine.Proc, l *Layout, share, scratch []sortutil.Key, opts Options, pr *phaseProbe) []sortutil.Key {
	sp := l.Plan.Split
	v := sp.V(p.ID())
	myView := l.Views[v]
	t := myView.Logical(p.ID())
	ctx := bitonic.NewCtx(p, myView, share)
	ctx.Protocol = opts.Protocol
	ctx.UseScratch(scratch)

	// Step 3: local heapsort + intra-subcube bitonic sort, ascending iff
	// the subcube address is even. (SortView unrolled so the probe can
	// split the local sort from the intra-subcube merge.)
	dir := dirFor(cube.Bit(v, 0) == 0)
	ctx.LocalSort()
	pr.lap(obs.PhaseStep3Local)
	ctx.MergeView(myView, dir)
	pr.lap(obs.PhaseStep3Intra)
	if opts.StepHook != nil {
		opts.StepHook(StepEvent{Stage: StageAfterLocalAndIntra, J: -1, Node: p.ID(), V: v, T: t, Chunk: ctx.Chunk})
	}

	// Steps 4-8: bitonic-like merge across subcubes.
	mDims := sp.M()
	for i := 0; i < mDims; i++ {
		mask := cube.Bit(v, i+1) // Step 5; bit m of v is 0 (v < 2^m)
		for j := i; j >= 0; j-- {
			// Step 7: compare-exchange with the corresponding reindexed
			// processor of the dimension-j neighbor subcube.
			peerView := l.Views[sp.NeighborSubcube(v, j)]
			peer := peerView.Phys(t)
			keepLow := mask == cube.Bit(v, j)
			ctx.ExchangeSplit(peer, keepLow)
			pr.lap(obs.PhaseStep7Exchange)
			if opts.StepHook != nil {
				opts.StepHook(StepEvent{Stage: StageAfterExchange, I: i, J: j, Node: p.ID(), V: v, T: t, Chunk: ctx.Chunk})
			}
			// Step 8: re-sort the subcube; ascending iff v_{j-1} == mask
			// (v_{-1} taken as 0) so the next pairing is asc-vs-desc.
			prev := 0
			if j > 0 {
				prev = cube.Bit(v, j-1)
			}
			ctx.MergeView(myView, dirFor(prev == mask))
			pr.lap(obs.PhaseStep8Resort)
			if opts.StepHook != nil {
				opts.StepHook(StepEvent{Stage: StageAfterResort, I: i, J: j, Node: p.ID(), V: v, T: t, Chunk: ctx.Chunk})
			}
		}
	}
	return ctx.Chunk
}

// dirFor translates the paper's even/odd and mask conditions into a sort
// direction.
func dirFor(ascending bool) sortutil.Direction {
	if ascending {
		return sortutil.Ascending
	}
	return sortutil.Descending
}

// SortOnFaultyCube is the one-call convenience: build the partition plan
// for the fault set, build the machine, and run FTSort. It returns the
// plan alongside so callers can inspect the partition decisions.
func SortOnFaultyCube(n int, faults cube.NodeSet, model machine.FaultModel, cost machine.CostModel, keys []sortutil.Key) ([]sortutil.Key, *partition.Plan, machine.Result, error) {
	plan, err := partition.BuildPlan(n, faults)
	if err != nil {
		return nil, nil, machine.Result{}, err
	}
	m, err := machine.New(machine.Config{Dim: n, Faults: faults, Model: model, Cost: cost})
	if err != nil {
		return nil, nil, machine.Result{}, err
	}
	sorted, res, err := FTSort(m, plan, keys)
	if err != nil {
		return nil, nil, machine.Result{}, err
	}
	return sorted, plan, res, nil
}
