// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator for reproducible experiments. The paper's evaluation
// draws 10000 random fault placements per configuration; using a seeded
// generator of our own (rather than math/rand's global state) makes every
// table in EXPERIMENTS.md bit-for-bit reproducible across runs and Go
// versions.
//
// The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
// tiny, statistically solid 64-bit generator whose state advances by a
// Weyl sequence, which makes independent substreams trivial to derive.
package xrand

import "math/bits"

// RNG is a deterministic 64-bit pseudo-random generator. The zero value is
// a valid generator seeded with 0; prefer New for explicit seeding.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Equal seeds yield identical
// streams.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// golden is 2^64 / phi, the SplitMix64 Weyl increment.
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's, derived from the receiver's next output. Splitting is
// deterministic: the same sequence of Split/Uint64 calls reproduces the
// same tree of streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative int64 uniform over [0, 2^63).
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// IntN returns a uniform int in [0, n). It panics if n <= 0. Uses
// Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order (a partial Fisher-Yates shuffle). It panics if k > n or k < 0.
// The experiments use it to draw r distinct faulty-processor addresses
// out of N.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k outside [0, n]")
	}
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return append([]int(nil), pool[:k]...)
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, mirroring math/rand's Shuffle contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.IntN(i+1))
	}
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum of 12 uniforms (Irwin-Hall). Experiments only need plausible
// non-uniform key distributions, not exact tails, and this keeps the
// generator branch-free and fully deterministic.
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
