package core

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
)

// FuzzFTSort drives the full fault-tolerant sort with fuzzer-chosen
// machine size, fault placement, and keys: any input for which a plan is
// buildable must produce a sorted permutation. Run with
// `go test -fuzz=FuzzFTSort ./internal/core` for continuous fuzzing; the
// seed corpus below executes under plain `go test`.
func FuzzFTSort(f *testing.F) {
	f.Add(uint8(3), uint16(0b0000_0101), []byte{9, 1, 8, 1, 7, 250, 3})
	f.Add(uint8(4), uint16(0b1000_0000_0000_0001), []byte{5, 5, 5, 5})
	f.Add(uint8(2), uint16(0), []byte{})
	f.Add(uint8(5), uint16(0b10), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, dimRaw uint8, faultBits uint16, raw []byte) {
		n := int(dimRaw)%4 + 2 // Q_2..Q_5
		size := 1 << n
		faults := cube.NewNodeSet()
		for b := 0; b < 16 && b < size; b++ {
			if faultBits>>uint(b)&1 == 1 {
				faults.Add(cube.NodeID(b))
			}
		}
		if len(faults) >= size {
			return // nothing can work
		}
		plan, err := partition.BuildPlan(n, faults)
		if err != nil {
			return // unseparable fault set: a legitimate refusal
		}
		m, err := machine.New(machine.Config{Dim: n, Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]sortutil.Key, len(raw))
		for i, b := range raw {
			keys[i] = sortutil.Key(b)
		}
		sorted, _, err := FTSort(m, plan, keys)
		if err != nil {
			t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
		}
		if !sortutil.IsSorted(sorted, sortutil.Ascending) {
			t.Fatalf("n=%d faults=%v: not sorted", n, faults.Sorted())
		}
		if !sortutil.SameMultiset(sorted, keys) {
			t.Fatalf("n=%d faults=%v: not a permutation", n, faults.Sorted())
		}
	})
}
