package core

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
)

// The 0-1 principle: a comparator-based sorting algorithm is correct iff
// it sorts every sequence of zeros and ones. The distributed FT sort is
// built from compare-splits (merge-based comparators on blocks), so
// exhausting all 0-1 inputs on small machines is a complete correctness
// proof for those configurations — far stronger evidence than random
// keys, because 0-1 inputs hit every comparator decision boundary.

// runZeroOne sorts one 0-1 input (encoded in the bits of pattern) and
// checks the output.
func runZeroOne(t *testing.T, m *machine.Machine, plan *partition.Plan, mKeys int, pattern uint64) {
	t.Helper()
	keys := make([]sortutil.Key, mKeys)
	ones := 0
	for i := range keys {
		if pattern>>uint(i)&1 == 1 {
			keys[i] = 1
			ones++
		}
	}
	sorted, _, err := FTSort(m, plan, keys)
	if err != nil {
		t.Fatalf("pattern %b: %v", pattern, err)
	}
	if len(sorted) != mKeys {
		t.Fatalf("pattern %b: length %d", pattern, len(sorted))
	}
	for i, k := range sorted {
		want := sortutil.Key(0)
		if i >= mKeys-ones {
			want = 1
		}
		if k != want {
			t.Fatalf("pattern %b: position %d = %d, want %d (ones=%d)", pattern, i, k, want, ones)
		}
	}
}

// TestZeroOneExhaustiveQ3TwoFaults exhausts every 0-1 input of 12 keys
// (4096 patterns) on Q_3 with two faults — per the 0-1 principle this
// certifies the FT sort for that configuration completely.
func TestZeroOneExhaustiveQ3TwoFaults(t *testing.T) {
	faults := cube.NewNodeSet(0b010, 0b111)
	plan, err := partition.BuildPlan(3, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 3, Faults: faults})
	const mKeys = 12 // 2 keys per working processor (N' = 6)
	for pattern := uint64(0); pattern < 1<<mKeys; pattern++ {
		runZeroOne(t, m, plan, mKeys, pattern)
	}
}

// TestZeroOneExhaustiveQ2OneFault exhausts 0-1 inputs on the smallest
// faulty machine: Q_2 with one fault, 9 keys over 3 processors.
func TestZeroOneExhaustiveQ2OneFault(t *testing.T) {
	faults := cube.NewNodeSet(0b01)
	plan, err := partition.BuildPlan(2, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 2, Faults: faults})
	const mKeys = 9
	for pattern := uint64(0); pattern < 1<<mKeys; pattern++ {
		runZeroOne(t, m, plan, mKeys, pattern)
	}
}

// TestZeroOneExhaustiveFaultFree covers the no-fault layout (no dead
// nodes, single whole-cube subcube).
func TestZeroOneExhaustiveFaultFree(t *testing.T) {
	plan, err := partition.BuildPlan(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 2})
	const mKeys = 12 // 3 keys per processor
	for pattern := uint64(0); pattern < 1<<mKeys; pattern++ {
		runZeroOne(t, m, plan, mKeys, pattern)
	}
}

// TestZeroOneSampledQ4ThreeFaults samples the 0-1 space on a larger
// configuration where exhaustion is infeasible: Q_4 with three faults
// (mincut 2), 24 keys over 12 working processors. Walking patterns with
// a large stride still sweeps all densities and many boundary layouts.
func TestZeroOneSampledQ4ThreeFaults(t *testing.T) {
	faults := cube.NewNodeSet(0b0000, 0b0110, 0b1001)
	plan, err := partition.BuildPlan(4, faults)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mincut() != 2 {
		t.Fatalf("mincut = %d, want 2", plan.Mincut())
	}
	m := machine.MustNew(machine.Config{Dim: 4, Faults: faults})
	const mKeys = 24
	// Stride co-prime with 2^24 sweeps a well-spread sample.
	const stride = 2654435761 % (1 << mKeys)
	pattern := uint64(0)
	for i := 0; i < 3000; i++ {
		runZeroOne(t, m, plan, mKeys, pattern)
		pattern = (pattern + stride) % (1 << mKeys)
	}
	// Plus the adversarial boundary patterns: all-zero, all-one, single
	// one/zero at each position.
	runZeroOne(t, m, plan, mKeys, 0)
	runZeroOne(t, m, plan, mKeys, 1<<mKeys-1)
	for i := 0; i < mKeys; i++ {
		runZeroOne(t, m, plan, mKeys, 1<<uint(i))
		runZeroOne(t, m, plan, mKeys, (1<<mKeys-1)&^(1<<uint(i)))
	}
}
