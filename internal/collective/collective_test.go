package collective

import (
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroup([]cube.NodeID{1, 2, 1}); err == nil {
		t.Error("duplicate member accepted")
	}
	g, err := NewGroup([]cube.NodeID{5, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 || g.Member(1) != 3 {
		t.Error("group accessors wrong")
	}
	if r, ok := g.RankOf(7); !ok || r != 2 {
		t.Error("RankOf wrong")
	}
	if _, ok := g.RankOf(9); ok {
		t.Error("non-member has a rank")
	}
}

func TestMustGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGroup did not panic")
		}
	}()
	MustGroup(nil)
}

// groups returns interesting participant sets on Q_4: full cube
// (power-of-two), ragged sizes, scattered addresses.
func testGroups() [][]cube.NodeID {
	return [][]cube.NodeID{
		{0},
		{3, 9},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 1, 2, 3, 4},          // ragged P=5
		{15, 3, 8, 1, 12, 6, 10}, // scattered, ragged P=7
		{2, 4, 6, 8, 10, 12},     // P=6
	}
}

func TestBroadcastAllRootsAllGroups(t *testing.T) {
	payload := []sortutil.Key{11, 22, 33}
	for _, members := range testGroups() {
		g := MustGroup(members)
		for root := 0; root < g.Size(); root++ {
			m := machine.MustNew(machine.Config{Dim: 4})
			var mu sync.Mutex
			got := make(map[cube.NodeID][]sortutil.Key)
			_, err := m.Run(members, func(p *machine.Proc) error {
				var in []sortutil.Key
				if r, _ := g.RankOf(p.ID()); r == root {
					in = payload
				}
				out := Broadcast(p, g, root, 1, in)
				mu.Lock()
				got[p.ID()] = out
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatalf("members=%v root=%d: %v", members, root, err)
			}
			for id, out := range got {
				if len(out) != len(payload) {
					t.Fatalf("members=%v root=%d node=%d: got %v", members, root, id, out)
				}
				for i := range payload {
					if out[i] != payload[i] {
						t.Fatalf("members=%v root=%d node=%d: got %v", members, root, id, out)
					}
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for _, members := range testGroups() {
		g := MustGroup(members)
		for root := 0; root < g.Size(); root++ {
			// Ragged shares: rank i gets i+1 keys.
			shares := make([][]sortutil.Key, g.Size())
			for i := range shares {
				shares[i] = workload.MustGenerate(workload.Uniform, i+1, rng)
			}
			m := machine.MustNew(machine.Config{Dim: 4})
			var mu sync.Mutex
			received := make(map[int][]sortutil.Key)
			var gathered [][]sortutil.Key
			_, err := m.Run(members, func(p *machine.Proc) error {
				r, _ := g.RankOf(p.ID())
				var in [][]sortutil.Key
				if r == root {
					in = shares
				}
				mine := Scatter(p, g, root, 1, in)
				mu.Lock()
				received[r] = mine
				mu.Unlock()
				out := Gather(p, g, root, 10, mine)
				if r == root {
					mu.Lock()
					gathered = out
					mu.Unlock()
				} else if out != nil {
					t.Error("non-root Gather returned data")
				}
				return nil
			})
			if err != nil {
				t.Fatalf("members=%v root=%d: %v", members, root, err)
			}
			for r := 0; r < g.Size(); r++ {
				if !equalKeys(received[r], shares[r]) {
					t.Fatalf("members=%v root=%d rank=%d: scatter got %v want %v",
						members, root, r, received[r], shares[r])
				}
				if !equalKeys(gathered[r], shares[r]) {
					t.Fatalf("members=%v root=%d rank=%d: gather got %v want %v",
						members, root, r, gathered[r], shares[r])
				}
			}
		}
	}
}

func equalKeys(a, b []sortutil.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReduceOps(t *testing.T) {
	for _, members := range testGroups() {
		g := MustGroup(members)
		m := machine.MustNew(machine.Config{Dim: 4})
		var mu sync.Mutex
		results := map[string]int64{}
		_, err := m.Run(members, func(p *machine.Proc) error {
			r, _ := g.RankOf(p.ID())
			v := int64(r + 1)
			sum := Reduce(p, g, 0, 1, v, Sum)
			mx := Reduce(p, g, 0, 4, v, Max)
			mn := Reduce(p, g, 0, 7, v, Min)
			if r == 0 {
				mu.Lock()
				results["sum"], results["max"], results["min"] = sum, mx, mn
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("members=%v: %v", members, err)
		}
		pSize := int64(g.Size())
		if results["sum"] != pSize*(pSize+1)/2 {
			t.Errorf("members=%v: sum = %d", members, results["sum"])
		}
		if results["max"] != pSize || results["min"] != 1 {
			t.Errorf("members=%v: max/min = %d/%d", members, results["max"], results["min"])
		}
	}
}

func TestAllReduceAgreesEverywhere(t *testing.T) {
	members := []cube.NodeID{15, 3, 8, 1, 12, 6, 10}
	g := MustGroup(members)
	m := machine.MustNew(machine.Config{Dim: 4})
	var mu sync.Mutex
	got := map[cube.NodeID]int64{}
	_, err := m.Run(members, func(p *machine.Proc) error {
		r, _ := g.RankOf(p.ID())
		total := AllReduce(p, g, 1, int64(r*r), Sum)
		mu.Lock()
		got[p.ID()] = total
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0 + 1 + 4 + 9 + 16 + 25 + 36)
	for id, v := range got {
		if v != want {
			t.Errorf("node %d: AllReduce = %d, want %d", id, v, want)
		}
	}
}

// TestScatterLogarithmicDepth checks the tree actually halves: the root
// of a 16-member scatter sends only ceil(log2 16) = 4 flat messages (plus
// 4 count messages), not 15.
func TestScatterLogarithmicDepth(t *testing.T) {
	members := make([]cube.NodeID, 16)
	for i := range members {
		members[i] = cube.NodeID(i)
	}
	g := MustGroup(members)
	m := machine.MustNew(machine.Config{Dim: 4})
	shares := make([][]sortutil.Key, 16)
	for i := range shares {
		shares[i] = []sortutil.Key{sortutil.Key(i)}
	}
	res, err := m.Run(members, func(p *machine.Proc) error {
		r, _ := g.RankOf(p.ID())
		var in [][]sortutil.Key
		if r == 0 {
			in = shares
		}
		Scatter(p, g, 0, 1, in)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every non-leaf edge carries 2 messages (flat + counts); a binomial
	// tree over 16 ranks has 15 edges -> 30 messages total.
	if res.Messages != 30 {
		t.Errorf("total messages = %d, want 30", res.Messages)
	}
}

func TestCollectiveHelperFunctions(t *testing.T) {
	if highestBit(1) != 0 || highestBit(5) != 2 || highestBit(8) != 3 {
		t.Error("highestBit wrong")
	}
	if clearLowestBit(6) != 4 || clearLowestBit(8) != 0 {
		t.Error("clearLowestBit wrong")
	}
	if nextPow2Exp(1) != 0 || nextPow2Exp(5) != 3 || nextPow2Exp(8) != 3 {
		t.Error("nextPow2Exp wrong")
	}
	if nextRangeSplit(2) != 1 || nextRangeSplit(3) != 2 || nextRangeSplit(6) != 4 || nextRangeSplit(8) != 4 {
		t.Error("nextRangeSplit wrong")
	}
	flat, counts := flatten([][]sortutil.Key{{1, 2}, {}, {3}})
	back := unflatten(flat, counts)
	if len(back) != 3 || len(back[0]) != 2 || len(back[1]) != 0 || back[2][0] != 3 {
		t.Errorf("flatten round trip wrong: %v", back)
	}
}
