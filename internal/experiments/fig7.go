package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hypersort/internal/bitonic"
	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// Fig7Point is one (M, simulated execution time) sample of a curve.
type Fig7Point struct {
	M        int
	Makespan machine.Time
}

// Fig7Series is one curve of Figure 7: either the proposed algorithm on
// Q_n with R faults (thin lines in the paper) or the baseline bitonic
// sort on a fault-free Q_Dim standing in for the maximum fault-free
// subcube (thick lines).
type Fig7Series struct {
	Label    string
	R        int  // fault count (ours) — 0 for baselines
	Dim      int  // cube dimension the sort runs on
	Baseline bool // true for the fault-free subcube baseline
	Points   []Fig7Point
}

// Fig7Config parameterizes one panel of Figure 7.
type Fig7Config struct {
	// N is the cube dimension of the panel: 6, 5, 4, 3 for (a), (b),
	// (d), (c) respectively.
	N int
	// Ms are the element counts swept; zero means the paper's range
	// 3.2*10^3 .. 3.2*10^5 in 4x steps scaled down by DefaultMScale for
	// the smaller panels.
	Ms []int
	// TrialsPerPoint averages each "ours" point over this many random
	// fault placements (the paper used 10000 placements; the default 5
	// keeps the harness quick while the seed keeps it reproducible).
	TrialsPerPoint int
	// BaselineDims lists fault-free subcube sizes to plot; zero means
	// n-1 down to max(n-3, 1).
	BaselineDims []int
	Seed         uint64
	Cost         machine.CostModel
	Model        machine.FaultModel
}

func (c *Fig7Config) fill() error {
	if c.N < 1 || c.N > 10 {
		return fmt.Errorf("experiments: Fig7 dimension %d out of range [1,10]", c.N)
	}
	if len(c.Ms) == 0 {
		c.Ms = DefaultMs()
	}
	if c.TrialsPerPoint == 0 {
		c.TrialsPerPoint = 5
	}
	if len(c.BaselineDims) == 0 {
		lo := c.N - 3
		if lo < 1 {
			lo = 1
		}
		for d := c.N - 1; d >= lo; d-- {
			c.BaselineDims = append(c.BaselineDims, d)
		}
	}
	if (c.Cost == machine.CostModel{}) {
		// The paper's §3 cost model (t_c = t_s/r = 1, no startup): the
		// figure's who-wins structure depends on the compare/transfer
		// ratio, and this is the ratio the closed-form analysis uses.
		c.Cost = machine.PaperCostModel()
	}
	return nil
}

// DefaultMs returns the paper's Figure 7 element-count sweep:
// 3.2*10^3 to 3.2*10^5 in factor-of-~3.2 steps.
func DefaultMs() []int { return []int{3200, 10000, 32000, 100000, 320000} }

// Fig7 generates every curve of one Figure 7 panel: the proposed
// algorithm for r = 0..n-1 faults and the fault-free baselines. Each
// "ours" point is the mean simulated makespan over TrialsPerPoint random
// fault placements.
func Fig7(cfg Fig7Config) ([]Fig7Series, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	var series []Fig7Series

	for r := 0; r <= cfg.N-1; r++ {
		s := Fig7Series{Label: fmt.Sprintf("ours n=%d r=%d", cfg.N, r), R: r, Dim: cfg.N}
		for _, m := range cfg.Ms {
			var total machine.Time
			trials := cfg.TrialsPerPoint
			if r == 0 {
				trials = 1 // no placement randomness without faults
			}
			for trial := 0; trial < trials; trial++ {
				faults := sampleFaults(cube.New(cfg.N), r, rng)
				keys := workload.MustGenerate(workload.Uniform, m, rng)
				_, _, res, err := core.SortOnFaultyCube(cfg.N, faults, cfg.Model, cfg.Cost, keys)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 n=%d r=%d M=%d: %w", cfg.N, r, m, err)
				}
				total += res.Makespan
			}
			s.Points = append(s.Points, Fig7Point{M: m, Makespan: total / machine.Time(trials)})
		}
		series = append(series, s)
	}

	for _, d := range cfg.BaselineDims {
		s := Fig7Series{Label: fmt.Sprintf("baseline fault-free Q_%d", d), Dim: d, Baseline: true}
		mach, err := machine.New(machine.Config{Dim: d, Cost: cfg.Cost, Model: cfg.Model})
		if err != nil {
			return nil, err
		}
		for _, m := range cfg.Ms {
			keys := workload.MustGenerate(workload.Uniform, m, rng)
			_, res, err := bitonic.Sort(mach, bitonic.FullCube(d), keys, sortutil.Ascending)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 baseline Q_%d M=%d: %w", d, m, err)
			}
			s.Points = append(s.Points, Fig7Point{M: m, Makespan: res.Makespan})
		}
		series = append(series, s)
	}
	return series, nil
}

// FormatFig7 renders the panel as a table: one row per M, one column per
// curve, in simulated time units.
func FormatFig7(series []Fig7Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "M")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%d", series[0].Points[i].M)
		for _, s := range series {
			fmt.Fprintf(w, "\t%d", s.Points[i].Makespan)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// CheckFig7Shape verifies the orderings the paper reports for a panel
// (its Figure 7 discussion): with r = 1 or 2 faults the proposed
// algorithm on Q_n beats the fault-free Q_{n-1} baseline, and with any
// r <= n-1 it beats the fault-free Q_{n-2} baseline, at the largest M of
// the sweep. It returns a list of violated claims (empty = shape holds).
func CheckFig7Shape(series []Fig7Series) []string {
	last := func(s Fig7Series) machine.Time { return s.Points[len(s.Points)-1].Makespan }
	baseline := map[int]machine.Time{}
	var n int
	for _, s := range series {
		if s.Baseline {
			baseline[s.Dim] = last(s)
		} else if s.Dim > n {
			n = s.Dim
		}
	}
	var violations []string
	for _, s := range series {
		if s.Baseline {
			continue
		}
		if s.R >= 1 && s.R <= 2 {
			if b, ok := baseline[n-1]; ok && last(s) >= b {
				violations = append(violations,
					fmt.Sprintf("ours r=%d (%d) not faster than fault-free Q_%d (%d)", s.R, last(s), n-1, b))
			}
		}
		if s.R >= 1 {
			if b, ok := baseline[n-2]; ok && last(s) >= b {
				violations = append(violations,
					fmt.Sprintf("ours r=%d (%d) not faster than fault-free Q_%d (%d)", s.R, last(s), n-2, b))
			}
		}
	}
	return violations
}
