package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// sessionKernel builds a deterministic exchange-and-compute kernel
// parameterized by a per-request seed, so fused sub-runs in a batch are
// distinguishable in their Results.
func sessionKernel(seed int) Kernel {
	return func(p *Proc) error {
		for r := 0; r < 3; r++ {
			partner := p.ID() ^ cube.NodeID(1<<uint(r%p.Dim()))
			if !p.InGroup(partner) {
				p.Compute(seed + 1)
				continue
			}
			got := p.Exchange(partner, Tag(r), []sortutil.Key{sortutil.Key(p.ID()), sortutil.Key(seed + r)})
			p.Compute(len(got) + seed)
			p.Release(got)
		}
		return nil
	}
}

// sameDeterministicResult compares the host-scheduling-independent parts
// of two Results: everything except RecvWaits, which counts real
// blocking and legitimately varies run to run.
func sameDeterministicResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Makespan != want.Makespan || got.Messages != want.Messages ||
		got.KeysSent != want.KeysSent || got.KeyHops != want.KeyHops ||
		got.Comparisons != want.Comparisons {
		t.Errorf("%s: stats differ: got %+v want %+v", label, got, want)
	}
	if len(got.PerNode) != len(want.PerNode) {
		t.Fatalf("%s: PerNode size %d != %d", label, len(got.PerNode), len(want.PerNode))
	}
	for id, c := range want.PerNode {
		if got.PerNode[id] != c {
			t.Errorf("%s: PerNode[%d] = %d, want %d", label, id, got.PerNode[id], c)
		}
	}
}

func TestSessionRunBatchMatchesIndividualRuns(t *testing.T) {
	cfg := Config{Dim: 3, Faults: cube.NewNodeSet(5), Cost: DefaultCostModel()}
	ref := MustNew(cfg)
	defer ref.Close()
	fused := ref.Clone()
	defer fused.Close()
	parts := ref.Healthy()

	const K = 4
	kernels := make([]Kernel, K)
	want := make([]Result, K)
	for j := range kernels {
		kernels[j] = sessionKernel(j)
		res, err := ref.Run(parts, kernels[j])
		if err != nil {
			t.Fatalf("individual run %d: %v", j, err)
		}
		want[j] = res
	}

	s, err := fused.OpenSession(parts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make([]Result, K)
	completed, err := s.RunBatch(kernels, got, nil)
	if err != nil || completed != K {
		t.Fatalf("RunBatch = %d, %v", completed, err)
	}
	for j := range got {
		sameDeterministicResult(t, fmt.Sprintf("sub-run %d", j), got[j], want[j])
	}

	// A second batch on the same session must be just as clean.
	completed, err = s.RunBatch(kernels[:2], got[:2], nil)
	if err != nil || completed != 2 {
		t.Fatalf("second RunBatch = %d, %v", completed, err)
	}
	sameDeterministicResult(t, "second batch sub-run 1", got[1], want[1])
}

func TestSessionRunNextMatchesRun(t *testing.T) {
	m := MustNew(Config{Dim: 2})
	defer m.Close()
	want, err := m.Run(m.Healthy(), sessionKernel(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.OpenSession(m.Healthy())
	if err != nil {
		t.Fatal(err)
	}
	buf := make(map[cube.NodeID]Time)
	got, err := s.RunNext(sessionKernel(7), buf)
	s.Close()
	if err != nil {
		t.Fatal(err)
	}
	sameDeterministicResult(t, "RunNext", got, want)
	if len(buf) == 0 {
		t.Error("caller-provided PerNode buffer was not used")
	}
}

func TestSessionFailureAbortsBatchAndMachineRecovers(t *testing.T) {
	m := MustNew(Config{Dim: 3})
	defer m.Close()
	parts := m.Healthy()
	boom := errors.New("kernel boom")
	kernels := []Kernel{
		sessionKernel(0),
		func(p *Proc) error {
			if p.ID() == 3 {
				return boom
			}
			return sessionKernel(1)(p)
		},
		sessionKernel(2),
	}
	s, err := m.OpenSession(parts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Result, len(kernels))
	completed, err := s.RunBatch(kernels, got, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the kernel's error", err)
	}
	if completed != 1 {
		t.Fatalf("completed = %d, want 1 (sub-run 0 finished before the failure)", completed)
	}
	if got[0].PerNode == nil || got[0].Makespan == 0 {
		t.Errorf("sub-run 0 result not aggregated: %+v", got[0])
	}
	s.Close()

	// The machine must be fully usable after an aborted batch.
	if _, err := m.Run(parts, sessionKernel(0)); err != nil {
		t.Fatalf("Run after aborted batch: %v", err)
	}
}

func TestSessionLifecycleAndValidation(t *testing.T) {
	m := MustNew(Config{Dim: 2, Faults: cube.NewNodeSet(2)})
	defer m.Close()

	if _, err := m.OpenSession([]cube.NodeID{2}); err == nil || !strings.Contains(err.Error(), "faulty") {
		t.Errorf("faulty participant accepted: %v", err)
	}
	if _, err := m.OpenSession([]cube.NodeID{1, 1}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate participant accepted: %v", err)
	}

	s, err := m.OpenSession([]cube.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// While the session pins its group, a Run naming a pinned node must
	// be rejected (the machine is exclusively leased to the session).
	if _, err := m.Run([]cube.NodeID{0}, sessionKernel(0)); err == nil {
		t.Error("Run on a session-pinned participant accepted")
	}
	var res [1]Result
	if n, err := s.RunBatch(nil, res[:], nil); n != 0 || err != nil {
		t.Errorf("empty batch = %d, %v", n, err)
	}
	if _, err := s.RunBatch(make([]Kernel, 2), res[:], nil); err == nil {
		t.Error("short result slice accepted")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.RunBatch(make([]Kernel, 1), res[:], nil); err == nil {
		t.Error("RunBatch on closed session accepted")
	}
	// After Close the group is released.
	if _, err := m.Run([]cube.NodeID{0, 1}, sessionKernel(0)); err != nil {
		t.Errorf("Run after session close: %v", err)
	}
}
