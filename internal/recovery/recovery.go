// Package recovery extends the paper's static-fault model to faults that
// strike *during* a sort. The paper assumes the fault set is known before
// the algorithm starts (off-line diagnosis); when a processor dies
// mid-run, the natural policy in that framework is detect → re-diagnose →
// re-partition → restart, since the algorithm's intermediate state on a
// newly faulty machine is not salvageable without checkpointing the keys.
//
// The package models that policy as a renewal process over the simulated
// machine: failures arrive with exponentially distributed inter-arrival
// times in *virtual* time; an attempt whose makespan exceeds the next
// arrival is charged the wasted time, the victim joins the fault set, and
// the sort restarts on the degraded machine with a fresh partition plan.
// The process ends when an attempt completes before the next failure, or
// when the fault set stops admitting a single-fault partition.
package recovery

import (
	"fmt"
	"math"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/xrand"
)

// Config parameterizes a recovery session.
type Config struct {
	// Dim is the hypercube dimension.
	Dim int
	// InitialFaults are the faults known before the first attempt.
	InitialFaults cube.NodeSet
	// MTBF is the mean (virtual) time between failures. Zero disables
	// injection entirely (the session reduces to one plain sort).
	MTBF machine.Time
	// Model and Cost configure the machine as in machine.Config.
	Model machine.FaultModel
	Cost  machine.CostModel
	// MaxAttempts caps restarts (0 means 1 + Dim attempts, enough to
	// exhaust the guarantee band).
	MaxAttempts int
	// Seed drives the failure process.
	Seed uint64
}

// Result summarizes a session.
type Result struct {
	// Sorted is the final output.
	Sorted []sortutil.Key
	// Attempts counts sorts started (>= 1).
	Attempts int
	// Wasted is virtual time burned by attempts a failure interrupted.
	Wasted machine.Time
	// FinalSort is the successful attempt's makespan.
	FinalSort machine.Time
	// Total is Wasted + FinalSort: time-to-sorted including restarts.
	Total machine.Time
	// Faults is the final fault set, including mid-run casualties.
	Faults []cube.NodeID
}

// Run executes the detect/re-partition/restart loop.
func Run(cfg Config, keys []sortutil.Key) (Result, error) {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = cfg.Dim + 1
	}
	rng := xrand.New(cfg.Seed)
	faults := cfg.InitialFaults.Clone()
	if faults == nil {
		faults = cube.NewNodeSet()
	}
	var res Result
	for {
		if res.Attempts >= cfg.MaxAttempts {
			return res, fmt.Errorf("recovery: gave up after %d attempts (faults %v)", res.Attempts, faults.Sorted())
		}
		plan, err := partition.BuildPlan(cfg.Dim, faults)
		if err != nil {
			return res, fmt.Errorf("recovery: machine no longer partitionable: %w", err)
		}
		m, err := machine.New(machine.Config{Dim: cfg.Dim, Faults: faults, Model: cfg.Model, Cost: cfg.Cost})
		if err != nil {
			return res, err
		}
		sorted, runRes, err := core.FTSort(m, plan, keys)
		if err != nil {
			return res, err
		}
		res.Attempts++

		nextFailure := sampleFailure(cfg.MTBF, rng)
		if nextFailure <= 0 || nextFailure >= runRes.Makespan {
			// The attempt outran the failure process.
			res.Sorted = sorted
			res.FinalSort = runRes.Makespan
			res.Total = res.Wasted + runRes.Makespan
			res.Faults = faults.Sorted()
			return res, nil
		}
		// A processor died mid-run: charge the wasted time, pick a
		// uniformly random healthy victim, and restart.
		res.Wasted += nextFailure
		healthy := healthyNodes(cfg.Dim, faults)
		if len(healthy) == 0 {
			return res, fmt.Errorf("recovery: no healthy processors left")
		}
		victim := healthy[rng.IntN(len(healthy))]
		faults.Add(victim)
	}
}

// sampleFailure draws an exponential inter-arrival time with the given
// mean; mtbf <= 0 means "never" (returns 0, interpreted as no failure).
func sampleFailure(mtbf machine.Time, rng *xrand.RNG) machine.Time {
	if mtbf <= 0 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return machine.Time(math.Ceil(-float64(mtbf) * math.Log(u)))
}

// healthyNodes lists the fault-free processor addresses.
func healthyNodes(n int, faults cube.NodeSet) []cube.NodeID {
	out := make([]cube.NodeID, 0, 1<<n)
	for id := cube.NodeID(0); id < cube.NodeID(1<<n); id++ {
		if !faults.Has(id) {
			out = append(out, id)
		}
	}
	return out
}
