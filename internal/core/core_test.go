package core

import (
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// runFT builds plan + machine for the fault set and checks FTSort returns
// a sorted permutation of the input.
func runFT(t *testing.T, n int, faults cube.NodeSet, keys []sortutil.Key, model machine.FaultModel) machine.Result {
	t.Helper()
	sorted, _, res, err := SortOnFaultyCube(n, faults, model, machine.CostModel{}, keys)
	if err != nil {
		t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) {
		t.Fatalf("n=%d faults=%v: output not sorted", n, faults.Sorted())
	}
	if !sortutil.SameMultiset(sorted, keys) {
		t.Fatalf("n=%d faults=%v: output not a permutation", n, faults.Sorted())
	}
	return res
}

func TestFTSortNoFaults(t *testing.T) {
	r := xrand.New(1)
	for n := 0; n <= 4; n++ {
		keys := workload.MustGenerate(workload.Uniform, 10*(1<<n)+3, r)
		runFT(t, n, nil, keys, machine.Partial)
	}
}

func TestFTSortSingleFaultEveryLocation(t *testing.T) {
	r := xrand.New(2)
	for _, n := range []int{2, 3, 4} {
		for f := cube.NodeID(0); f < cube.NodeID(1<<n); f++ {
			keys := workload.MustGenerate(workload.Uniform, 5*(1<<n), r)
			runFT(t, n, cube.NewNodeSet(f), keys, machine.Partial)
		}
	}
}

// TestFTSortPaperExample runs the paper's Example 1/2 configuration:
// Q_5 with faults {3, 5, 16, 24}, partitioned by D_β = (0,1,3) with
// dangling processors {18, 25, 26, 27}.
func TestFTSortPaperExample(t *testing.T) {
	r := xrand.New(3)
	faults := cube.NewNodeSet(3, 5, 16, 24)
	keys := workload.MustGenerate(workload.Uniform, 470, r)
	sorted, plan, res, err := SortOnFaultyCube(5, faults, machine.Partial, machine.CostModel{}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Chosen.Equal(cube.CutSequence{0, 1, 3}) {
		t.Errorf("D_β = %v", plan.Chosen)
	}
	if plan.Working() != 24 {
		t.Errorf("N' = %d, want 24", plan.Working())
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) || !sortutil.SameMultiset(sorted, keys) {
		t.Fatal("wrong sort result")
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

// TestFTSortRandomFaultSweep is the headline correctness claim: sorting
// succeeds for every fault count up to n-1 at random locations, across
// cube sizes, in both fault models.
func TestFTSortRandomFaultSweep(t *testing.T) {
	r := xrand.New(4)
	for _, n := range []int{3, 4, 5} {
		for nf := 0; nf < n; nf++ {
			for trial := 0; trial < 6; trial++ {
				faults := cube.NewNodeSet()
				for _, f := range r.Sample(1<<n, nf) {
					faults.Add(cube.NodeID(f))
				}
				keys := workload.MustGenerate(workload.Uniform, 3*(1<<n)+r.IntN(64), r)
				runFT(t, n, faults, keys, machine.Partial)
				runFT(t, n, faults, keys, machine.Total)
			}
		}
	}
}

func TestFTSortQ6MaxFaults(t *testing.T) {
	// The paper's flagship machine size: Q_6 with 5 faults.
	r := xrand.New(5)
	faults := cube.NewNodeSet()
	for _, f := range r.Sample(64, 5) {
		faults.Add(cube.NodeID(f))
	}
	keys := workload.MustGenerate(workload.Uniform, 3200, r)
	runFT(t, 6, faults, keys, machine.Partial)
}

func TestFTSortAllDistributions(t *testing.T) {
	r := xrand.New(6)
	faults := cube.NewNodeSet(1, 6, 11)
	for _, kind := range workload.Kinds() {
		keys := workload.MustGenerate(kind, 200, r)
		runFT(t, 4, faults, keys, machine.Partial)
	}
}

func TestFTSortTinyAndRaggedInputs(t *testing.T) {
	r := xrand.New(7)
	faults := cube.NewNodeSet(2, 9)
	for _, sz := range []int{0, 1, 2, 13, 31, 97} {
		keys := workload.MustGenerate(workload.Uniform, sz, r)
		runFT(t, 4, faults, keys, machine.Partial)
	}
}

func TestFTSortDuplicateHeavy(t *testing.T) {
	keys := make([]sortutil.Key, 300)
	for i := range keys {
		keys[i] = sortutil.Key(i % 3)
	}
	runFT(t, 4, cube.NewNodeSet(0, 15), keys, machine.Partial)
}

// TestFTSortHalfExchangeProtocol sweeps the paper's literal Step 7
// protocol end to end: results must match the default protocol exactly.
func TestFTSortHalfExchangeProtocol(t *testing.T) {
	r := xrand.New(21)
	for _, n := range []int{3, 4, 5} {
		for nf := 0; nf < n; nf++ {
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(1<<n, nf) {
				faults.Add(cube.NodeID(f))
			}
			keys := workload.MustGenerate(workload.Uniform, 4*(1<<n)+r.IntN(32), r)
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.MustNew(machine.Config{Dim: n, Faults: faults})
			full, _, err := core0(m, plan, keys, bitonic.FullBlock)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			half, _, err := core0(m, plan, keys, bitonic.HalfExchange)
			if err != nil {
				t.Fatalf("n=%d faults=%v: %v", n, faults.Sorted(), err)
			}
			for i := range full {
				if full[i] != half[i] {
					t.Fatalf("n=%d faults=%v: protocols disagree at %d", n, faults.Sorted(), i)
				}
			}
		}
	}
}

// core0 runs FTSortOpt with the given protocol.
func core0(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, proto bitonic.Protocol) ([]sortutil.Key, machine.Result, error) {
	return FTSortOpt(m, plan, keys, Options{Protocol: proto})
}

func TestFTSortRejectsMismatchedPlan(t *testing.T) {
	planA, err := partition.BuildPlan(4, cube.NewNodeSet(1))
	if err != nil {
		t.Fatal(err)
	}
	mB := machine.MustNew(machine.Config{Dim: 4, Faults: cube.NewNodeSet(2)})
	if _, _, err := FTSort(mB, planA, []sortutil.Key{1, 2}); err == nil {
		t.Error("plan/machine fault mismatch accepted")
	}
	mC := machine.MustNew(machine.Config{Dim: 3, Faults: cube.NewNodeSet(1)})
	if _, _, err := FTSort(mC, planA, []sortutil.Key{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Machine missing a fault the plan expects.
	mD := machine.MustNew(machine.Config{Dim: 4})
	if _, _, err := FTSort(mD, planA, []sortutil.Key{1, 2}); err == nil {
		t.Error("plan fault not on machine accepted")
	}
}

func TestFTSortDeterministicCost(t *testing.T) {
	r := xrand.New(8)
	faults := cube.NewNodeSet(3, 12, 17)
	keys := workload.MustGenerate(workload.Uniform, 500, r)
	var first machine.Time
	for trial := 0; trial < 4; trial++ {
		res := runFT(t, 5, faults, keys, machine.Partial)
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("makespan %d != %d", res.Makespan, first)
		}
	}
}

func TestLayoutOrdering(t *testing.T) {
	plan, err := partition.BuildPlan(5, cube.NewNodeSet(3, 5, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(plan)
	if len(l.Working) != 24 {
		t.Fatalf("working = %d", len(l.Working))
	}
	// No dead processor (fault or dangling) may appear in Working.
	dead := cube.NewNodeSet(3, 5, 16, 24, 18, 25, 26, 27)
	seen := cube.NewNodeSet()
	for _, id := range l.Working {
		if dead.Has(id) {
			t.Errorf("dead processor %d in working set", id)
		}
		seen.Add(id)
	}
	if len(seen) != 24 {
		t.Error("duplicate working processors")
	}
	// Slots invert Working.
	for i, id := range l.Working {
		if l.SlotOf[id] != i {
			t.Error("SlotOf inconsistent")
		}
	}
	// Working is grouped by ascending subcube address.
	prevV := cube.NodeID(0)
	for _, id := range l.Working {
		v := plan.Split.V(id)
		if v < prevV {
			t.Fatal("working set not in subcube-address order")
		}
		prevV = v
	}
}

func TestCostEstimateBasics(t *testing.T) {
	c := machine.PaperCostModel()
	// Errors.
	if _, err := CostEstimate(100, -1, 0, false, c); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := CostEstimate(100, 3, 4, false, c); err == nil {
		t.Error("m > n accepted")
	}
	if _, err := CostEstimate(-1, 3, 0, false, c); err == nil {
		t.Error("negative M accepted")
	}
	if _, err := CostEstimate(10, 0, 0, true, c); err == nil {
		t.Error("zero working processors accepted")
	}
	// Monotone in M.
	small, err := CostEstimate(1000, 6, 2, true, c)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CostEstimate(10000, 6, 2, true, c)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("cost not increasing in M: %d vs %d", small, large)
	}
	// More cuts (fewer working processors + more cross stages) cost more
	// for the same M and n.
	m0, _ := CostEstimate(10000, 6, 0, true, c)
	m3, _ := CostEstimate(10000, 6, 3, true, c)
	if m3 <= m0 {
		t.Errorf("m=3 (%d) should cost more than m=0 (%d)", m3, m0)
	}
}

// TestCostEstimateTracksSimulation checks the closed form and the
// simulated makespan stay within a modest constant factor across
// configurations — the model is a worst-case bound with slightly
// different constants, not an exact predictor.
func TestCostEstimateTracksSimulation(t *testing.T) {
	r := xrand.New(9)
	for _, cfg := range []struct {
		n  int
		nf int
		M  int
	}{{4, 0, 2000}, {4, 3, 2000}, {5, 2, 4000}, {6, 5, 8000}} {
		faults := cube.NewNodeSet()
		for _, f := range r.Sample(1<<cfg.n, cfg.nf) {
			faults.Add(cube.NodeID(f))
		}
		keys := workload.MustGenerate(workload.Uniform, cfg.M, r)
		_, plan, res, err := SortOnFaultyCube(cfg.n, faults, machine.Partial, machine.PaperCostModel(), keys)
		if err != nil {
			t.Fatal(err)
		}
		est, err := CostEstimate(cfg.M, cfg.n, plan.Mincut(), plan.HasDead, machine.PaperCostModel())
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Makespan) / float64(est)
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("n=%d r=%d M=%d: makespan %d vs estimate %d (ratio %.2f)",
				cfg.n, cfg.nf, cfg.M, res.Makespan, est, ratio)
		}
	}
}

func TestCeilHelpers(t *testing.T) {
	if ceilDiv(7, 2) != 4 || ceilDiv(8, 2) != 4 {
		t.Error("ceilDiv wrong")
	}
	cases := map[int64]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for k, want := range cases {
		if got := ceilLog2(k); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCostEstimateCongestion(t *testing.T) {
	c := machine.PaperCostModel()
	base, err := CostEstimate(4000, 5, 1, true, c)
	if err != nil {
		t.Fatal(err)
	}
	// Zero extra-communication charge is exactly the legacy closed form.
	same, err := CostEstimateCongestion(4000, 5, 1, true, c, 0)
	if err != nil || same != base {
		t.Fatalf("zero-charge estimate = %d, want %d (%v)", same, base, err)
	}
	// Each objective unit charges one k-key transfer: k = ceil(4000/30).
	withCharge, err := CostEstimateCongestion(4000, 5, 1, true, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := int64((4000 + 29) / 30)
	if want := base + machine.Time(3*k*int64(c.Elem)); withCharge != want {
		t.Fatalf("charged estimate = %d, want %d", withCharge, want)
	}
	if _, err := CostEstimateCongestion(4000, 5, 1, true, c, -1); err == nil {
		t.Error("negative charge accepted")
	}
	if _, err := CostEstimateCongestion(100, -1, 0, false, c, 1); err == nil {
		t.Error("invalid dimensions accepted")
	}
}
