package core

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// sortedChunks produces a correctly sorted layout for a plan by running
// the actual FT sort with a step recorder and taking the final chunks.
func sortedChunks(t *testing.T, m *machine.Machine, plan *partition.Plan, mKeys int, seed uint64) [][]sortutil.Key {
	t.Helper()
	layout := NewLayout(plan)
	keys := workload.MustGenerate(workload.Uniform, mKeys, xrand.New(seed))
	chunks := make([][]sortutil.Key, len(layout.Working))
	rec := NewStateRecorder()
	if _, _, err := FTSortOpt(m, plan, keys, Options{StepHook: rec.Record}); err != nil {
		t.Fatal(err)
	}
	snaps := rec.Snapshots()
	final := snaps[len(snaps)-1]
	for v, row := range final.Chunks {
		for tt, chunk := range row {
			phys := NewLayout(plan).Views[v].Phys(tt)
			chunks[layout.SlotOf[phys]] = chunk
		}
	}
	// r <= 1 plans have no cross stage; the only snapshot is step 3,
	// which is already the final state in that case.
	return chunks
}

func TestVerifyDistributedAcceptsSortedLayout(t *testing.T) {
	faults := cube.NewNodeSet(3, 5, 16, 24)
	plan, err := partition.BuildPlan(5, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 5, Faults: faults})
	chunks := sortedChunks(t, m, plan, 480, 1)
	ok, res, err := VerifyDistributed(m, plan, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("correct layout rejected")
	}
	if res.Makespan <= 0 {
		t.Error("verification cost not accounted")
	}
}

func TestVerifyDistributedCatchesLocalDisorder(t *testing.T) {
	faults := cube.NewNodeSet(2)
	plan, err := partition.BuildPlan(3, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 3, Faults: faults})
	chunks := sortedChunks(t, m, plan, 35, 2)
	// Corrupt one chunk internally.
	if len(chunks[3]) >= 2 {
		chunks[3][0], chunks[3][1] = chunks[3][1]+1, chunks[3][0]
	} else {
		t.Fatal("chunk too small to corrupt")
	}
	ok, _, err := VerifyDistributed(m, plan, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("internal disorder accepted")
	}
}

func TestVerifyDistributedCatchesBoundaryDisorder(t *testing.T) {
	faults := cube.NewNodeSet(2)
	plan, err := partition.BuildPlan(3, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 3, Faults: faults})
	chunks := sortedChunks(t, m, plan, 35, 3)
	// Swap two whole chunks: each stays internally sorted, but the
	// boundary order breaks.
	chunks[1], chunks[4] = chunks[4], chunks[1]
	ok, _, err := VerifyDistributed(m, plan, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("boundary disorder accepted")
	}
}

func TestVerifyDistributedEmptyChunksForward(t *testing.T) {
	// An empty chunk must pass the running maximum through, so disorder
	// across it is still caught.
	plan, err := partition.BuildPlan(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 2})
	chunks := [][]sortutil.Key{{5, 6}, {}, {1, 2}, {7}}
	ok, _, err := VerifyDistributed(m, plan, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("disorder across an empty chunk accepted")
	}
	good := [][]sortutil.Key{{1, 2}, {}, {5, 6}, {7}}
	ok, _, err = VerifyDistributed(m, plan, good)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("valid layout with empty chunk rejected")
	}
}

func TestVerifyDistributedChunkCountMismatch(t *testing.T) {
	plan, err := partition.BuildPlan(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: 3})
	if _, _, err := VerifyDistributed(m, plan, make([][]sortutil.Key, 3)); err == nil {
		t.Error("wrong chunk count accepted")
	}
}

func TestBoundaryNeighborsCoverLayout(t *testing.T) {
	plan, err := partition.BuildPlan(4, cube.NewNodeSet(1, 14))
	if err != nil {
		t.Fatal(err)
	}
	pairs := boundaryNeighbors(plan)
	if len(pairs) != plan.Working()-1 {
		t.Fatalf("got %d pairs, want %d", len(pairs), plan.Working()-1)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i][0] != pairs[i-1][1] {
			t.Fatal("boundary chain broken")
		}
	}
}
