// Recovery: what happens when a processor dies *during* the sort? The
// paper's framework assumes faults are known up front, so the natural
// policy is detect -> re-diagnose -> re-partition -> restart. This
// example runs that loop on a Q_5 whose processors fail with a mean time
// between failures about twice the sort duration, and prints the story.
package main

import (
	"fmt"
	"log"

	"hypersort/internal/cube"
	"hypersort/internal/recovery"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	keys := workload.MustGenerate(workload.Uniform, 8000, xrand.New(7))

	// Reference: the failure-free sort time.
	calm, err := recovery.Run(recovery.Config{Dim: 5, MTBF: 0, Seed: 1}, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free sort of %d keys on Q_5: %d time units\n\n", len(keys), calm.FinalSort)

	// Now with a hostile failure process: MTBF = 2x the sort time (this
	// seed happens to draw several mid-run failures, showing the loop).
	cfg := recovery.Config{
		Dim:           5,
		InitialFaults: cube.NewNodeSet(11),
		MTBF:          calm.FinalSort * 2,
		Seed:          13,
	}
	res, err := recovery.Run(cfg, keys)
	if err != nil {
		log.Fatalf("machine died before completing: %v", err)
	}
	if !sortutil.IsSorted(res.Sorted, sortutil.Ascending) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("with failures (MTBF %d):\n", cfg.MTBF)
	fmt.Printf("  attempts:        %d\n", res.Attempts)
	fmt.Printf("  casualties:      %v (started with %v)\n", res.Faults, cfg.InitialFaults.Sorted())
	fmt.Printf("  wasted time:     %d\n", res.Wasted)
	fmt.Printf("  final sort time: %d (slower than calm: machine is more degraded)\n", res.FinalSort)
	fmt.Printf("  time-to-sorted:  %d (%.2fx the failure-free time)\n",
		res.Total, float64(res.Total)/float64(calm.FinalSort))
}
