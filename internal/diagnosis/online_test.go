package diagnosis_test

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/diagnosis"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// fire arms inj on m and runs traffic until it fires; the run error is
// required to be an injected death.
func fire(t *testing.T, m *machine.Machine, inj machine.Injection) {
	t.Helper()
	if err := m.Arm(inj); err != nil {
		t.Fatal(err)
	}
	kernel := func(p *machine.Proc) error {
		for r := 0; r < 10; r++ {
			p.Compute(5)
			for d := 0; d < p.Dim(); d++ {
				peer := cube.FlipBit(p.ID(), d)
				if !p.InGroup(peer) {
					continue
				}
				got := p.Exchange(peer, machine.Tag(r*p.Dim()+d), []sortutil.Key{1})
				p.Release(got)
			}
		}
		return nil
	}
	if _, err := m.RunAllHealthy(kernel); !machine.IsInjectedDeath(err) {
		t.Fatalf("injection did not fire: %v", err)
	}
}

func TestOnlineRoundHealthy(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 4, Faults: cube.NewNodeSet(3)})
	defer m.Close()
	res, err := diagnosis.OnlineRound(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatal("static fault set within PMC bounds must decode")
	}
	if len(res.Faults) != 1 || !res.Faults.Has(3) {
		t.Fatalf("faults = %v", res.Faults.Sorted())
	}
	if res.RoundTime <= 0 {
		t.Fatalf("probe round must cost virtual time, got %d", res.RoundTime)
	}
}

func TestOnlineRoundAfterNodeDeath(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 4, Faults: cube.NewNodeSet(9)})
	defer m.Close()
	fire(t, m, machine.Injection{Kind: machine.KillNode, Node: 5, At: 20})

	res, err := diagnosis.OnlineRound(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatal("two faults on Q_4 are one-step diagnosable; decode must confirm")
	}
	want := cube.NewNodeSet(5, 9)
	if len(res.Faults) != 2 || !res.Faults.Has(5) || !res.Faults.Has(9) {
		t.Fatalf("faults = %v, want %v", res.Faults.Sorted(), want.Sorted())
	}
	if len(res.NewLinks) != 0 {
		t.Fatalf("no link died, got %v", res.NewLinks)
	}
}

func TestOnlineRoundDeterministic(t *testing.T) {
	round := func() diagnosis.OnlineResult {
		m := machine.MustNew(machine.Config{Dim: 4})
		defer m.Close()
		fire(t, m, machine.Injection{Kind: machine.KillNode, Node: 11, At: 15})
		res, err := diagnosis.OnlineRound(m, 42)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := round(), round()
	if a.RoundTime != b.RoundTime || a.Confirmed != b.Confirmed {
		t.Fatalf("rounds diverge: %+v vs %+v", a, b)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("fault sets diverge: %v vs %v", a.Faults.Sorted(), b.Faults.Sorted())
	}
}

func TestOnlineRoundAfterLinkDeath(t *testing.T) {
	m := machine.MustNew(machine.Config{Dim: 3})
	defer m.Close()
	fire(t, m, machine.Injection{Kind: machine.KillLink, Link: [2]cube.NodeID{2, 6}, At: 10})

	res, err := diagnosis.OnlineRound(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed {
		t.Fatal("PMC syndromes cannot express link faults; decode must not confirm")
	}
	if len(res.Faults) != 0 {
		t.Fatalf("no processor died, got faults %v", res.Faults.Sorted())
	}
	if len(res.NewLinks) != 1 || res.NewLinks[0] != [2]cube.NodeID{2, 6} {
		t.Fatalf("NewLinks = %v", res.NewLinks)
	}
}
