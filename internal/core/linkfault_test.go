package core

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestFTSortWithLinkFaults exercises the broader fault model the paper's
// introduction names ("faulty processors/links"): dead links force
// detours but never break correctness, since the algorithm's message
// pattern is address-based and the router is complete.
func TestFTSortWithLinkFaults(t *testing.T) {
	r := xrand.New(31)
	for _, n := range []int{3, 4, 5} {
		h := cube.New(n)
		for trial := 0; trial < 8; trial++ {
			// Up to n-1 dead links (edge connectivity bound) plus up to
			// n-2 faulty processors.
			links := cube.NewEdgeSet()
			for len(links) < 1+r.IntN(n-1) {
				a := cube.NodeID(r.IntN(h.Size()))
				links.Add(a, h.Neighbor(a, r.IntN(n)))
			}
			nf := r.IntN(n - 1)
			faults := cube.NewNodeSet()
			for _, f := range r.Sample(h.Size(), nf) {
				faults.Add(cube.NodeID(f))
			}
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(machine.Config{Dim: n, Faults: faults, LinkFaults: links})
			if err != nil {
				t.Fatal(err)
			}
			keys := workload.MustGenerate(workload.Uniform, 4*(1<<n)+r.IntN(40), r)
			sorted, res, err := FTSort(m, plan, keys)
			if err != nil {
				t.Fatalf("n=%d faults=%v links=%v: %v", n, faults.Sorted(), links.Sorted(), err)
			}
			if !sortutil.IsSorted(sorted, sortutil.Ascending) || !sortutil.SameMultiset(sorted, keys) {
				t.Fatalf("n=%d: wrong result under link faults", n)
			}
			if res.Makespan <= 0 {
				t.Fatal("no time accounted")
			}
		}
	}
}

// TestLinkFaultsInflateCost: the same sort with dead links must cost at
// least as much as without (detours only add hops).
func TestLinkFaultsInflateCost(t *testing.T) {
	r := xrand.New(32)
	keys := workload.MustGenerate(workload.Uniform, 600, r)
	plan, err := partition.BuildPlan(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := machine.MustNew(machine.Config{Dim: 4})
	_, resClean, err := FTSort(clean, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	links := cube.NewEdgeSet(cube.NewEdge(0, 1), cube.NewEdge(5, 7), cube.NewEdge(8, 12))
	degraded := machine.MustNew(machine.Config{Dim: 4, LinkFaults: links})
	_, resLinks, err := FTSort(degraded, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	if resLinks.KeyHops < resClean.KeyHops {
		t.Errorf("link faults reduced traffic: %d vs %d", resLinks.KeyHops, resClean.KeyHops)
	}
	if resLinks.Makespan < resClean.Makespan {
		t.Errorf("link faults reduced makespan: %d vs %d", resLinks.Makespan, resClean.Makespan)
	}
}

// TestMachineRejectsLinkFaultOutsideCube covers the validation path.
func TestMachineRejectsLinkFaultOutsideCube(t *testing.T) {
	links := cube.NewEdgeSet(cube.NewEdge(8, 9)) // valid edge, outside Q_3
	if _, err := machine.New(machine.Config{Dim: 3, LinkFaults: links}); err == nil {
		t.Error("out-of-cube link fault accepted")
	}
}

// TestFTSortLinkFaultsTotalModel combines dead links with totally dead
// processors.
func TestFTSortLinkFaultsTotalModel(t *testing.T) {
	r := xrand.New(33)
	faults := cube.NewNodeSet(5)
	links := cube.NewEdgeSet(cube.NewEdge(0, 2), cube.NewEdge(9, 11))
	plan, err := partition.BuildPlan(4, faults)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{Dim: 4, Faults: faults, LinkFaults: links, Model: machine.Total})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.MustGenerate(workload.Uniform, 300, r)
	sorted, _, err := FTSort(m, plan, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) || !sortutil.SameMultiset(sorted, keys) {
		t.Fatal("wrong result under combined node+link faults (total model)")
	}
}
