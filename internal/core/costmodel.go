package core

import (
	"fmt"

	"hypersort/internal/machine"
)

// CostEstimate evaluates the paper's §3 closed-form worst-case time T for
// sorting M keys on Q_n partitioned into F_n^m, in the units of the given
// cost model (t_c = Cost.Compare, t_s/r = Cost.Elem; the closed form has
// no startup term).
//
// With k = ceil(M/N'), N' = 2^n - 2^m working processors (2^n when no
// processor is dead), s = n - m:
//
//	T = [(k-1)*ceil(log2 k) + 1] * t_c                    (Step 3 heapsort)
//	  + S * B                                             (Step 3 bitonic)
//	  + (m(m+1)/2) * [ (s+1)*k*t_s/r                      (Steps 7a+7b comm)
//	                 + (ceil(k/2)-1)*t_c                  (Step 7b compare)
//	                 + (k-1)*t_c                          (Step 7c merge)
//	                 + S * B ]                            (Step 8 bitonic)
//
// where S = s(s+1)/2 is the number of compare-exchange steps of a bitonic
// sort over a 2^s-node subcube and B = k*t_s/r + (ceil(3k/2)-1)*t_c is the
// per-step cost (k keys moved, ceil(k/2) compare-split comparisons plus a
// k-way merge).
//
// Note: the paper's printed formula shows loop factors s(s+3)/2 and
// m(m+3)/2; a bitonic sort over 2^s nodes performs exactly s(s+1)/2
// compare-exchange steps and Steps 4/6 iterate m(m+1)/2 times, so we use
// the exact counts (the source text of the formula is OCR-garbled in
// several terms; the derivation in the prose fixes the per-step costs
// used here).
func CostEstimate(mKeys, n, mcut int, dead bool, c machine.CostModel) (machine.Time, error) {
	if n < 0 || mcut < 0 || mcut > n {
		return 0, fmt.Errorf("core: invalid dimensions n=%d m=%d", n, mcut)
	}
	if mKeys < 0 {
		return 0, fmt.Errorf("core: negative key count %d", mKeys)
	}
	nWork := int64(1)<<n - boolInt(dead)<<mcut
	if nWork <= 0 {
		return 0, fmt.Errorf("core: no working processors (n=%d, m=%d)", n, mcut)
	}
	k := ceilDiv(int64(mKeys), nWork)
	if k == 0 {
		k = 1
	}
	s := int64(n - mcut)
	tc, tsr := int64(c.Compare), int64(c.Elem)

	heap := ((k-1)*ceilLog2(k) + 1) * tc
	perStep := k*tsr + (ceilDiv(3*k, 2)-1)*tc
	intra := s * (s + 1) / 2 * perStep
	m64 := int64(mcut)
	cross := (s+1)*k*tsr + (ceilDiv(k, 2)-1)*tc + (k-1)*tc + intra
	total := heap + intra + m64*(m64+1)/2*cross
	return machine.Time(total), nil
}

// CostEstimateCongestion is CostEstimate plus the congestion-aware
// extra-communication charge: extraComm is the partition heuristic's
// objective value for the chosen cutting sequence (hop count plus
// modeled link wait under partition.ObjectiveCongestion, in
// hop-equivalent units), and each unit costs one k-key transfer across
// one link (k * t_s/r) — exactly the rate at which formula (1)'s extra
// hops price reindexed cross-subcube exchanges. With extraComm = 0 the
// result equals CostEstimate, so the legacy closed form is the zero
// point of the congestion-aware one.
func CostEstimateCongestion(mKeys, n, mcut int, dead bool, c machine.CostModel, extraComm int) (machine.Time, error) {
	if extraComm < 0 {
		return 0, fmt.Errorf("core: negative extra-communication charge %d", extraComm)
	}
	base, err := CostEstimate(mKeys, n, mcut, dead, c)
	if err != nil {
		return 0, err
	}
	nWork := int64(1)<<n - boolInt(dead)<<mcut
	k := ceilDiv(int64(mKeys), nWork)
	if k == 0 {
		k = 1
	}
	return base + machine.Time(int64(extraComm)*k*int64(c.Elem)), nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// ceilLog2 returns ceil(log2 k) for k >= 1.
func ceilLog2(k int64) int64 {
	var log int64
	for v := k - 1; v > 0; v >>= 1 {
		log++
	}
	return log
}
