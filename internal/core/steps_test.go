package core

import (
	"sort"
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// recordRun sorts with a StateRecorder attached and returns the
// chronological snapshots.
func recordRun(t *testing.T, n int, faults cube.NodeSet, mKeys int, seed uint64) (*partition.Plan, []*Snapshot) {
	t.Helper()
	plan, err := partition.BuildPlan(n, faults)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.Config{Dim: n, Faults: faults})
	keys := workload.MustGenerate(workload.Uniform, mKeys, xrand.New(seed))
	rec := NewStateRecorder()
	sorted, _, err := FTSortOpt(m, plan, keys, Options{StepHook: rec.Record})
	if err != nil {
		t.Fatal(err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) {
		t.Fatal("final output not sorted")
	}
	return plan, rec.Snapshots()
}

// TestSnapshotCount checks the walkthrough has exactly the paper's
// checkpoint structure: 1 (Step 3) + 2 per (i, j) iteration.
func TestSnapshotCount(t *testing.T) {
	faults := cube.NewNodeSet(3, 5, 16, 24) // m = 3 -> 6 exchanges
	_, snaps := recordRun(t, 5, faults, 470, 1)
	want := 1 + 2*6
	if len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d", len(snaps), want)
	}
	if snaps[0].Stage != StageAfterLocalAndIntra {
		t.Error("first snapshot is not the Step 3 state")
	}
	// Exchange always precedes its re-sort, i ascending, j descending.
	wantIdx := [][2]int{{0, 0}, {1, 1}, {1, 0}, {2, 2}, {2, 1}, {2, 0}}
	for k, ij := range wantIdx {
		ex, rs := snaps[1+2*k], snaps[2+2*k]
		if ex.Stage != StageAfterExchange || ex.I != ij[0] || ex.J != ij[1] {
			t.Fatalf("snapshot %d = %s (i=%d, j=%d)", 1+2*k, ex.Stage, ex.I, ex.J)
		}
		if rs.Stage != StageAfterResort || rs.I != ij[0] || rs.J != ij[1] {
			t.Fatalf("snapshot %d = %s (i=%d, j=%d)", 2+2*k, rs.Stage, rs.I, rs.J)
		}
	}
}

// TestStep3Invariant: after Step 3 every subcube's block is sorted
// ascending iff its address is even — the paper's Figure 6(b).
func TestStep3Invariant(t *testing.T) {
	r := xrand.New(2)
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.IntN(2)
		nf := 2 + r.IntN(n-2)
		faults := cube.NewNodeSet()
		for _, f := range r.Sample(1<<n, nf) {
			faults.Add(cube.NodeID(f))
		}
		plan, snaps := recordRun(t, n, faults, 200+r.IntN(400), uint64(trial))
		s := snaps[0]
		for v := 0; v < plan.NumSubcubes(); v++ {
			keys := s.SubcubeKeys(cube.NodeID(v))
			dir := sortutil.Ascending
			if v%2 == 1 {
				dir = sortutil.Descending
			}
			if !blockSorted(s, cube.NodeID(v), dir) {
				t.Fatalf("trial %d: subcube %d not %v after step 3: %v", trial, v, dir, keys)
			}
		}
	}
}

// blockSorted reports whether subcube v's block is sorted in direction
// dir ACROSS logical addresses: every key of chunk t precedes every key
// of chunk t' > t in the direction (chunks themselves are stored
// ascending either way).
func blockSorted(s *Snapshot, v cube.NodeID, dir sortutil.Direction) bool {
	row := s.Chunks[v]
	ts := make([]cube.NodeID, 0, len(row))
	for t := range row {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var prevMax, prevMin *sortutil.Key
	for _, t := range ts {
		chunk := row[t]
		if len(chunk) == 0 {
			continue
		}
		lo, hi := chunk[0], chunk[len(chunk)-1]
		if prevMax != nil {
			if dir == sortutil.Ascending && lo < *prevMax {
				return false
			}
			if dir == sortutil.Descending && hi > *prevMin {
				return false
			}
		}
		prevMax, prevMin = &hi, &lo
	}
	return true
}

// TestResortDirectionInvariant: after the Step 8 re-sort at (i, j),
// every subcube's block is sorted ascending iff v_{j-1} == mask
// (v_{-1} = 0) — the discipline that keeps the next exchange pairing an
// ascending subcube with a descending one.
func TestResortDirectionInvariant(t *testing.T) {
	faults := cube.NewNodeSet(3, 5, 16, 24)
	plan, snaps := recordRun(t, 5, faults, 470, 3)
	for _, s := range snaps {
		if s.Stage != StageAfterResort {
			continue
		}
		for v := 0; v < plan.NumSubcubes(); v++ {
			mask := cube.Bit(cube.NodeID(v), s.I+1)
			prev := 0
			if s.J > 0 {
				prev = cube.Bit(cube.NodeID(v), s.J-1)
			}
			dir := sortutil.Descending
			if prev == mask {
				dir = sortutil.Ascending
			}
			if !blockSorted(s, cube.NodeID(v), dir) {
				t.Fatalf("(i=%d, j=%d) subcube %d not %v", s.I, s.J, v, dir)
			}
		}
	}
}

// TestWindowMonotoneInvariant: after phase i completes (the re-sort at
// j = 0), every aligned window of 2^(i+1) subcubes is monotone across
// subcube addresses — the supernode-level bitonic invariant. At the last
// phase the single window covers the whole cube ascending.
func TestWindowMonotoneInvariant(t *testing.T) {
	faults := cube.NewNodeSet(3, 5, 16, 24)
	plan, snaps := recordRun(t, 5, faults, 470, 4)
	numSub := plan.NumSubcubes()
	for _, s := range snaps {
		if s.Stage != StageAfterResort || s.J != 0 {
			continue
		}
		window := 1 << (s.I + 1)
		for base := 0; base < numSub; base += window {
			// Window direction: ascending iff bit i+1 of the base is 0.
			asc := cube.Bit(cube.NodeID(base), s.I+1) == 0
			var prev *sortutil.Key
			for v := base; v < base+window; v++ {
				keys := s.SubcubeKeys(cube.NodeID(v))
				if len(keys) == 0 {
					continue
				}
				lo, hi := keys[0], keys[len(keys)-1]
				first, last := lo, hi
				if !asc {
					first, last = hi, lo
				}
				if prev != nil {
					if asc && first < *prev {
						t.Fatalf("phase %d window base %d: subcube %d breaks ascending order", s.I, base, v)
					}
					if !asc && first > *prev {
						t.Fatalf("phase %d window base %d: subcube %d breaks descending order", s.I, base, v)
					}
				}
				prev = &last
			}
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	faults := cube.NewNodeSet(1)
	_, snaps := recordRun(t, 2, faults, 9, 5)
	out := snaps[0].Format()
	if !strings.Contains(out, "after-step-3") || !strings.Contains(out, "v=0") {
		t.Errorf("format output: %s", out)
	}
}

// TestSubcubeKeysInternalOrder: chunks concatenate in logical order with
// each chunk ascending.
func TestSubcubeKeysInternalOrder(t *testing.T) {
	faults := cube.NewNodeSet(2, 9)
	_, snaps := recordRun(t, 4, faults, 120, 6)
	last := snaps[len(snaps)-1]
	for v := range last.Chunks {
		for _, chunk := range last.Chunks[v] {
			if !sortutil.IsSorted(chunk, sortutil.Ascending) {
				t.Fatalf("chunk not internally ascending in final state")
			}
		}
	}
}
