package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	diverged := false
	for i := 0; i < 10; i++ {
		if r.Uint64() != s.Uint64() {
			diverged = true
		}
	}
	if !diverged {
		t.Error("split stream tracks parent stream")
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntNUniformity(t *testing.T) {
	// Chi-squared-lite: each of 8 buckets within 20% of expectation.
	r := New(99)
	const buckets, trials = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < trials; i++ {
		counts[r.IntN(buckets)]++
	}
	want := float64(trials) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.2*want {
			t.Errorf("bucket %d count %d far from %v", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	f := func(raw uint8) bool {
		n := int(raw)%64 + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(13)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(64)
		k := r.IntN(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d values", n, k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid value %d in %v", n, k, v, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSampleCoversAllValues(t *testing.T) {
	// Over many draws of Sample(8, 4), every value 0..7 must appear.
	r := New(17)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		for _, v := range r.Sample(8, 4) {
			seen[v] = true
		}
	}
	for v := 0; v < 8; v++ {
		if !seen[v] {
			t.Errorf("value %d never sampled", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("mean %v far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance %v far from 1", variance)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Error("Shuffle changed the multiset")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == r.Uint64() {
		t.Error("zero-value RNG repeats itself")
	}
}

func TestUint32AndInt63(t *testing.T) {
	r := New(55)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
		if v := r.Int63(); v < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
	if len(seen) < 95 {
		t.Errorf("Uint32 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntNLargeBound(t *testing.T) {
	// A bound just below 2^62 exercises Lemire's rejection path.
	r := New(56)
	n := 1 << 62
	for i := 0; i < 50; i++ {
		v := r.IntN(n)
		if v < 0 || v >= n {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}
