package cluster

// Consistent-hash ring. Each shard owns many pseudo-random points on a
// uint64 circle (virtual nodes); a plan key hashes to a point and is
// owned by the first shard point at or clockwise of it. The properties
// the router relies on:
//
//   - Stability: adding a shard reassigns only the key ranges the new
//     shard's points capture — an expected 1/(N+1) of the key space —
//     and every reassigned key moves TO the new shard; no key moves
//     between pre-existing shards. (TestRingStability asserts both.)
//   - Determinism: the ring is a pure function of (shards, vnodes), so
//     every cluster of the same shape routes identically — the
//     replica-spill property tests and any future multi-process mode
//     depend on this.
//   - Spread: with enough virtual nodes, consecutive successors of a
//     point land on distinct shards with near-uniform probability, which
//     is what makes the successor list a usable replica set.
//
// Lookups are a binary search over an immutable sorted slice — no locks,
// no allocation — so the router adds no shared mutable state to the
// request path (the per-shard engines' own mutexes stay the only locks).

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a position on the hash circle and the
// shard that owns it.
type ringPoint struct {
	h     uint64
	shard int
}

// ring is an immutable consistent-hash ring over `shards` shards.
type ring struct {
	points []ringPoint
	shards int
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a hashes b with FNV-1a (64-bit) and finalizes with a
// MurmurHash3-style bit mixer: stable across processes and Go versions,
// unlike maphash, so ring placement is reproducible — a property both
// the tests and any future multi-process deployment key on. The
// finalizer matters: raw FNV-1a has weak avalanche in the high-order
// bits on short inputs, and ring position is ordered by exactly those
// bits — without mixing, vnode points clump and shard ownership skews
// several-fold (TestRingSpread catches this).
func fnv1a(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds the ring for `shards` shards with `vnodes` points each.
func newRing(shards, vnodes int) *ring {
	r := &ring{
		points: make([]ringPoint, 0, shards*vnodes),
		shards: shards,
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv1a([]byte(fmt.Sprintf("shard/%d/vnode/%d", s, v)))
			r.points = append(r.points, ringPoint{h: h, shard: s})
		}
	}
	// Sort by position; break exact collisions by shard id so the ring is
	// deterministic even in the astronomically unlikely equal-hash case.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// successors appends to dst the first n distinct shards at or clockwise
// of hash h, in ring order — dst[0] is the key's home shard, the rest
// its replica candidates. n is clamped to the shard count.
func (r *ring) successors(h uint64, n int, dst []int) []int {
	if n > r.shards {
		n = r.shards
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	base := len(dst)
	for i := 0; len(dst)-base < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, s := range dst[base:] {
			if s == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p.shard)
		}
	}
	return dst
}

// owner returns the shard owning hash h.
func (r *ring) owner(h uint64) int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	return r.points[start%len(r.points)].shard
}
