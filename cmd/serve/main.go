// Command serve runs the concurrent sort engine as an HTTP service —
// the production-shaped front end to the library: many independent
// requests against a recurring set of (dim, faults) configurations,
// served from the engine's plan cache and machine pools.
//
// Usage:
//
//	serve -addr :8080 [-pool 4] [-workers 8] [-trace-buf 65536] [-trace-sample 1]
//	serve [-mode auto|direct|sim] [-oracle-sample 0] [-routing ecube|multipath]
//	serve [-no-batching] [-max-batch 32] [-max-linger 100us] [-admission-queue 256]
//	serve [-shards 4] [-replicas 1] [-spill-high-water 16] [-shed-limit 256]
//	serve -cluster-mode=shard -addr :9101
//	serve -cluster-mode=proxy -shard-addrs host1:9101,host2:9101,host3:9101
//	serve -demo [-requests 256] [-m 4000] [-seed 1]
//
// Sort requests flow through the engine's continuous-batching
// dispatcher: concurrent requests on the same configuration fuse into
// one machine run. When a configuration's admission queue fills, the
// affected requests answer 503 with Retry-After — backpressure, not
// client error; the Retry-After value is the ceiling of the observed
// median queue wait (minimum 1s). -no-batching restores the unbatched
// per-request path.
//
// -shards N runs N independent engine shards behind a consistent-hash
// router instead of one engine: same-configuration traffic keeps fusing
// within its home shard, hot configurations spill to -replicas replica
// shards past -spill-high-water in-flight requests, and when home plus
// replicas all reach -shed-limit the router sheds with the same 503
// contract before the request touches any queue (see DESIGN.md §11).
//
// -cluster-mode splits the -shards topology across PROCESSES (see
// DESIGN.md §13). "shard" serves one engine over the pipelined binary
// wire protocol instead of HTTP — start N of them, one per core or
// host. "proxy" serves the normal HTTP API but routes every request to
// the shard processes named by -shard-addrs on the same consistent-hash
// ring the in-process cluster uses, spilling and shedding against the
// live in-flight gauges each shard feeds back on every response. A dead
// shard is detected by transport error, routed around via ring
// successors (zero failed requests for in-flight storms), and reprobed
// until it returns. The engine-tuning flags (-pool, -max-batch, ...)
// apply where the engines live: pass them to the shard processes, not
// the proxy.
//
// -mode selects the execution substrate. "sim" (the historical
// behaviour) runs every sort on the simulated machine with measured
// stats. "direct" serves eligible sorts at host speed with predicted
// stats ("direct":true in the response); the simulator remains the
// oracle and the only path while -chaos injections are armed. "auto"
// (the default) picks direct when it can be done faithfully — which
// with the default tracing-on configuration means sim; pass
// -trace-buf 0 to let auto serve direct. -oracle-sample N cross-checks
// one in N direct results against the simulator.
//
// -routing selects the default compare-split routing policy. "ecube"
// (the default) is the paper's dimension-order discipline with hop-count
// pricing. "multipath" stripes large transfers across vertex-disjoint
// paths and prices per-link queueing into the simulated makespan;
// multipath requests always run on the simulator (never direct) and
// take the unbatched pool path. A request may override the default with
// its own "routing" field. See DESIGN.md §12 and the routing-modes
// section of README.md.
//
// Endpoints:
//
//	POST /v1/sort    one request  {"dim":6,"faults":[3,17],"keys":[...]}
//	POST /v1/batch   {"requests":[...]} — per-request error isolation
//	GET  /metrics    Prometheus text-format exposition of every metric
//	GET  /v1/metrics engine counters, process memory stats, and the
//	                 metrics registry snapshot as JSON
//	GET  /v1/trace   Chrome trace-event JSON of the most recent machine
//	                 events (?last=N trims; load in ui.perfetto.dev)
//	GET  /debug/pprof/  live profiling (heap, allocs, goroutine, profile)
//	GET  /healthz
//
// With -chaos, two drill endpoints arm live casualties against a
// configuration's machine pool (see DESIGN.md §9):
//
//	POST /v1/chaos/inject  {"dim":4,"kill_node":5,"at":120} or
//	                       {"dim":4,"kill_link":[0,1],"after_messages":7}
//	POST /v1/chaos/disarm  {"dim":4} — stand the drill down
//
// Sorts struck by an armed kill recover in-flight — online diagnosis,
// hot replan, key redistribution — and still answer 200 with the sorted
// keys; recovery latency and replan counters land on /metrics.
//
// See OBSERVABILITY.md for the full metric and trace reference.
//
// The -demo flag skips the network entirely and measures batch
// throughput on synthetic traffic: the same requests served by fresh
// per-call construction (plan search + machine build every time) versus
// the warm engine (cached plans, pooled machines), printing both
// wall-clock times and the speedup.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hypersort"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/trace"
	"hypersort/internal/transport"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		pool        = flag.Int("pool", 0, "machines pooled per configuration (0 = GOMAXPROCS)")
		workers     = flag.Int("workers", 0, "concurrent batch requests (0 = GOMAXPROCS)")
		noBatching  = flag.Bool("no-batching", false, "disable the continuous-batching dispatcher (every sort takes the unbatched pool path)")
		maxBatch    = flag.Int("max-batch", 0, "max sort requests fused into one machine run (0 = default)")
		maxLinger   = flag.Duration("max-linger", 0, "how long the dispatcher holds a partial batch open for stragglers (0 = default)")
		admission   = flag.Int("admission-queue", 0, "queued sorts allowed per configuration before 503s (0 = default)")
		shards      = flag.Int("shards", 0, "engine shards behind the consistent-hash router (0 = classic single engine)")
		clusterMode = flag.String("cluster-mode", "", "multi-process role: \"shard\" serves one engine over the binary wire protocol, \"proxy\" fronts -shard-addrs over HTTP (\"\" = in-process)")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated shard process addresses for -cluster-mode=proxy")
		replicas    = flag.Int("replicas", -1, "replica shards a hot plan key may spill to (-1 = default 1, 0 = spill off; needs -shards)")
		spillHW     = flag.Int("spill-high-water", 0, "in-flight requests on a home shard before spilling to replicas (0 = default)")
		shedLimit   = flag.Int("shed-limit", 0, "in-flight requests per shard before the router sheds with 503 (0 = default)")
		mode        = flag.String("mode", "auto", "execution substrate: sim, direct, or auto")
		routing     = flag.String("routing", "ecube", "default compare-split routing policy: ecube or multipath (per-request \"routing\" overrides)")
		oracle      = flag.Int("oracle-sample", 0, "cross-check 1 in N direct results on the simulator oracle (0 = off)")
		traceBuf    = flag.Int("trace-buf", 1<<16, "machine events kept for /v1/trace (0 disables tracing)")
		traceSample = flag.Int("trace-sample", 1, "record 1 of every N machine events")
		chaos       = flag.Bool("chaos", false, "enable the /v1/chaos fault-injection endpoints (live-fault drills)")
		demo        = flag.Bool("demo", false, "run the offline batch-throughput demo and exit")
		requests    = flag.Int("requests", 256, "demo: number of requests")
		m           = flag.Int("m", 4000, "demo: keys per request")
		seed        = flag.Uint64("seed", 1, "demo: workload seed")
	)
	flag.Parse()

	// The ring stays attached for the process lifetime: bounded memory,
	// one atomic claim per event, and /v1/trace exports the most recent
	// window on demand.
	var ring *trace.Ring
	execMode, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	routePolicy, err := parseRouting(*routing)
	if err != nil {
		fatal(err)
	}
	ecfg := hypersort.EngineConfig{
		PoolSize:        *pool,
		BatchWorkers:    *workers,
		DisableBatching: *noBatching,
		MaxBatch:        *maxBatch,
		MaxLinger:       *maxLinger,
		AdmissionQueue:  *admission,
		Mode:            execMode,
		OracleSample:    *oracle,
	}
	if *traceBuf > 0 {
		ring = trace.NewRing(*traceBuf, *traceSample)
		ecfg.Trace = ring.Record
	}
	switch *clusterMode {
	case "", "proxy", "shard":
	default:
		fatal(fmt.Errorf("unknown -cluster-mode %q (want shard, proxy, or empty)", *clusterMode))
	}
	if *clusterMode != "" {
		if *demo {
			fatal(errors.New("-demo measures the in-process amortization story; drop -cluster-mode"))
		}
		if *shards > 0 {
			fatal(errors.New("-cluster-mode and -shards are mutually exclusive: shard count is the -shard-addrs list length"))
		}
	}
	if *clusterMode == "shard" {
		if err := runShard(*addr, ecfg); err != nil {
			fatal(err)
		}
		return
	}

	// The backend behind the HTTP handler set: one engine, the
	// in-process sharded cluster (-shards), or the multi-process front
	// proxy (-cluster-mode=proxy). The handler set is identical in all
	// three (see the backend interface in handlers.go).
	var be backend
	var closeBackend func()
	if *clusterMode == "proxy" {
		addrs := splitAddrs(*shardAddrs)
		if len(addrs) == 0 {
			fatal(errors.New("-cluster-mode=proxy requires -shard-addrs"))
		}
		cl := hypersort.NewRemoteCluster(hypersort.ClusterConfig{
			Replicas:       *replicas,
			SpillHighWater: *spillHW,
			ShedLimit:      *shedLimit,
			BatchWorkers:   *workers,
			MaxBatch:       *maxBatch,
			AdmissionQueue: *admission,
		}, addrs)
		be, closeBackend = cl, cl.Close
	} else if *shards > 0 {
		cl := hypersort.NewCluster(hypersort.ClusterConfig{
			Shards:          *shards,
			Replicas:        *replicas,
			SpillHighWater:  *spillHW,
			ShedLimit:       *shedLimit,
			PoolSize:        ecfg.PoolSize,
			BatchWorkers:    ecfg.BatchWorkers,
			Trace:           ecfg.Trace,
			DisableBatching: ecfg.DisableBatching,
			MaxBatch:        ecfg.MaxBatch,
			MaxLinger:       ecfg.MaxLinger,
			AdmissionQueue:  ecfg.AdmissionQueue,
			Mode:            ecfg.Mode,
			OracleSample:    ecfg.OracleSample,
		})
		be, closeBackend = cl, cl.Close
	} else {
		eng := hypersort.NewEngine(ecfg)
		be, closeBackend = eng, eng.Close
	}
	if *demo {
		if *shards > 0 {
			fatal(errors.New("-demo measures the single-engine amortization story; drop -shards"))
		}
		eng := be.(*hypersort.Engine)
		defer eng.Close()
		runDemo(eng, *requests, *m, *seed)
		return
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// requests, then retires the engine's pooled worker goroutines — the
	// teardown half of the persistent-worker substrate.
	srv := &http.Server{Handler: newMux(be, ring, *chaos, routePolicy)}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("serve: listening on %s (cluster-mode=%q shards=%d pool=%d workers=%d batching=%v mode=%s routing=%s trace-buf=%d)\n", lis.Addr(), *clusterMode, *shards, *pool, *workers, !*noBatching, execMode, routePolicy, *traceBuf)
	if err := serveUntil(srv, lis, done, 10*time.Second, closeBackend); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Println("serve: drained, workers retired")
}

// serveUntil serves srv on lis until sig delivers, drains in-flight
// requests (bounded by the drain timeout), and only THEN closes the
// backend. The ordering is the point: http.Server's ListenAndServe
// returns the moment Shutdown begins, so closing the backend right
// after it — the old shape of main — raced engine teardown against
// handlers still executing requests. A regression test pins the order.
func serveUntil(srv *http.Server, lis net.Listener, sig <-chan os.Signal, drain time.Duration, closeBackend func()) error {
	shutdownErr := make(chan error, 1)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(lis); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Shutdown returns only after every in-flight handler finished (or
	// the drain deadline passed); the backend must outlive them.
	err := <-shutdownErr
	closeBackend()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// runShard serves one engine over the binary wire protocol — the
// -cluster-mode=shard role. The engine flags mean exactly what they
// mean in single-engine HTTP mode; only the front door changes. The
// listen line prints the RESOLVED address so orchestration (and the CI
// smoke leg) can start shards on ":0" and scrape the ports.
func runShard(addr string, ecfg hypersort.EngineConfig) error {
	eng := engine.NewOpts(ecfg.PoolSize, ecfg.BatchWorkers, engine.BatchOptions{
		Disabled:   ecfg.DisableBatching,
		MaxBatch:   ecfg.MaxBatch,
		MaxLinger:  ecfg.MaxLinger,
		QueueDepth: ecfg.AdmissionQueue,
	})
	eng.SetMode(ecfg.Mode)
	eng.SetOracleSample(ecfg.OracleSample)
	if ecfg.Trace != nil {
		eng.SetTrace(machine.TraceFunc(ecfg.Trace))
	}
	eng.Instrument(obs.Default())
	queueWait := obs.Default().Histogram("hypersort_engine_queue_wait_ns",
		"Nanoseconds a request waited for execution capacity (lane queue or machine-pool acquire).")
	srv := transport.NewServer(eng, transport.ServerOptions{QueueWait: queueWait})

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	fmt.Printf("serve: shard listening on %s (wire protocol v%d)\n", lis.Addr(), transport.Version)
	if err := srv.Serve(lis); !errors.Is(err, net.ErrClosed) {
		return err
	}
	// Same drain-before-close ordering as the HTTP path: the engine
	// shuts down only after in-flight wire requests finished.
	if err := <-shutdownErr; err != nil {
		fmt.Fprintln(os.Stderr, "serve: shard drain:", err)
	}
	eng.Close()
	fmt.Println("serve: shard drained, engine closed")
	return nil
}

// splitAddrs parses the -shard-addrs list, dropping empty entries.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// runDemo measures the engine's amortization win on synthetic traffic:
// R requests round-robined over a handful of faulty configurations,
// served fresh (New per call: plan search + machine build every time)
// versus through the warm engine (SortBatch over cached plans and
// pooled machines).
func runDemo(eng *hypersort.Engine, requests, m int, seed uint64) {
	configs := []hypersort.Config{
		{Dim: 6, Faults: []hypersort.NodeID{3, 17, 40}},
		{Dim: 7, Faults: []hypersort.NodeID{5, 29, 77, 101}},
		{Dim: 8, Faults: []hypersort.NodeID{1, 64, 130, 200, 255, 17, 90}},
		{Dim: 6, Faults: []hypersort.NodeID{0, 21, 42, 63}, Model: hypersort.Total},
	}
	rng := xrand.New(seed)
	reqs := make([]hypersort.Request, requests)
	for i := range reqs {
		reqs[i] = hypersort.Request{
			Config: configs[i%len(configs)],
			Op:     hypersort.OpSort,
			Keys:   workload.MustGenerate(workload.Uniform, m, rng),
		}
	}
	fmt.Printf("demo: %d requests x %d keys over %d configurations\n", requests, m, len(configs))

	start := time.Now()
	for i, r := range reqs {
		s, err := hypersort.New(r.Config)
		if err != nil {
			fatal(err)
		}
		if _, _, err := s.Sort(r.Keys); err != nil {
			fatal(fmt.Errorf("request %d: %w", i, err))
		}
	}
	fresh := time.Since(start)
	fmt.Printf("fresh per-call (plan search + machine build every request): %v  (%.1f req/s)\n",
		fresh.Round(time.Millisecond), float64(requests)/fresh.Seconds())

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	results := eng.SortBatch(reqs)
	warm := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	for i, res := range results {
		if res.Err != nil {
			fatal(fmt.Errorf("request %d: %w", i, res.Err))
		}
	}
	fmt.Printf("engine batch   (cached plans, pooled machines):             %v  (%.1f req/s)\n",
		warm.Round(time.Millisecond), float64(requests)/warm.Seconds())
	fmt.Printf("warm-path allocations: %.0f allocs/request (%.1f KiB/request)\n",
		float64(after.Mallocs-before.Mallocs)/float64(requests),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(requests)/1024)
	fmt.Printf("speedup: %.2fx\n", fresh.Seconds()/warm.Seconds())
	mtr := eng.Metrics()
	fmt.Printf("engine metrics: %d requests, %d plan searches (%d cache hits), %d machines built + %d cloned\n",
		mtr.Requests, mtr.PlanMisses, mtr.PlanHits, mtr.MachinesBuilt, mtr.MachinesCloned)
	agg := hypersort.SumStats(results)
	fmt.Printf("simulated totals: critical-path makespan=%d comparisons=%d key-hops=%d\n",
		agg.Makespan, agg.Comparisons, agg.KeyHops)
}

// parseRouting maps the -routing flag to the default routing policy.
func parseRouting(s string) (hypersort.RoutingPolicy, error) {
	switch s {
	case "ecube":
		return hypersort.RouteECube, nil
	case "multipath":
		return hypersort.RouteMultipath, nil
	}
	return hypersort.RouteECube, fmt.Errorf("serve: unknown -routing %q (want ecube or multipath)", s)
}

// parseMode maps the -mode flag to an execution substrate.
func parseMode(s string) (hypersort.ExecMode, error) {
	switch s {
	case "sim":
		return hypersort.ModeSim, nil
	case "direct":
		return hypersort.ModeDirect, nil
	case "auto":
		return hypersort.ModeAuto, nil
	}
	return hypersort.ModeSim, fmt.Errorf("serve: unknown -mode %q (want sim, direct, or auto)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
