package hypersort

import (
	"fmt"
	"sync"
	"testing"

	"hypersort/internal/machine"
	"hypersort/internal/xrand"
)

// TestEngineStress hammers one Engine from 64 goroutines across several
// configurations with deliberately small pools, verifying no deadlock,
// no cross-request key leakage, and stable results. Each goroutine owns
// a distinct key slice derived from its index, so any machine-reuse or
// batching bug that mixes requests shows up as a wrong multiset, not
// just a misordering. Run it under -race (the CI race job does); skipped
// in -short mode.
func TestEngineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// Poison released payloads for the whole stress run: with buffer
	// recycling live, any kernel that reads a buffer after Release — or
	// any pool bug that hands one buffer to two owners — surfaces as a
	// poison sentinel in the tagged-key range checks below.
	machine.SetReleasePoison(true)
	defer machine.SetReleasePoison(false)
	configs := []Config{
		{Dim: 3},
		{Dim: 4, Faults: []NodeID{3}},
		{Dim: 5, Faults: []NodeID{3, 17}, Model: Total},
		{Dim: 5, Faults: []NodeID{0, 12, 25, 31}},
		{Dim: 6, Faults: []NodeID{0, 21, 42}, Cost: DefaultCostModel()},
		// The half-exchange wire protocol doubles the messages per
		// compare-exchange and releases two payloads per round — the
		// heaviest user of the recycler.
		{Dim: 5, Faults: []NodeID{7, 19}, Protocol: HalfExchange},
	}
	eng := NewEngine(EngineConfig{PoolSize: 2, BatchWorkers: 8})

	const (
		workers = 64
		iters   = 6
	)
	var wg sync.WaitGroup
	failures := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for it := 0; it < iters; it++ {
				cfg := configs[(w+it)%len(configs)]
				n := 32 + rng.IntN(128)
				keys := make([]Key, n)
				// Tag every key with the owner's identity so leaked keys
				// are attributable: worker w's keys all live in
				// [w*1e6, w*1e6+1e6).
				base := Key(w) * 1_000_000
				for j := range keys {
					keys[j] = base + Key(rng.IntN(1_000_000))
				}
				got, stats, err := eng.Sort(cfg, keys)
				if err != nil {
					failures <- fmt.Errorf("worker %d iter %d: %v", w, it, err)
					return
				}
				if len(got) != n {
					failures <- fmt.Errorf("worker %d iter %d: %d keys back, sent %d", w, it, len(got), n)
					return
				}
				for j, k := range got {
					if k < base || k >= base+1_000_000 {
						failures <- fmt.Errorf("worker %d iter %d: foreign key %d at %d — cross-request leakage", w, it, k, j)
						return
					}
					if j > 0 && got[j-1] > k {
						failures <- fmt.Errorf("worker %d iter %d: unsorted at %d", w, it, j)
						return
					}
				}
				if stats.Makespan <= 0 {
					failures <- fmt.Errorf("worker %d iter %d: empty stats", w, it)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Error(err)
	}

	m := eng.Metrics()
	if m.Requests != workers*iters {
		t.Errorf("requests = %d, want %d", m.Requests, workers*iters)
	}
	// One partition search per configuration, no matter the pressure.
	if m.PlanMisses != int64(len(configs)) {
		t.Errorf("plan misses = %d, want %d", m.PlanMisses, len(configs))
	}
	// Pools are bounded at 2 machines per configuration.
	if max := int64(2 * len(configs)); m.MachinesBuilt+m.MachinesCloned > max {
		t.Errorf("%d machines created, bound is %d", m.MachinesBuilt+m.MachinesCloned, max)
	}
}

// TestEngineStressBatch replays a mixed-configuration batch repeatedly
// and demands bit-identical results every round: the simulator's virtual
// time is scheduling-independent, so pooled concurrency must not change
// any result or any Stats. Skipped in -short mode.
func TestEngineStressBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := xrand.New(99)
	var reqs []Request
	for i := 0; i < 48; i++ {
		dim := 2 + i%4
		var faults []NodeID
		if i%3 != 0 {
			faults = []NodeID{NodeID(rng.IntN(1 << dim))}
		}
		keys := make([]Key, 64+rng.IntN(64))
		for j := range keys {
			keys[j] = Key(rng.IntN(1 << 20))
		}
		reqs = append(reqs, Request{Config: Config{Dim: dim, Faults: faults}, Op: OpSort, Keys: keys})
	}
	eng := NewEngine(EngineConfig{PoolSize: 3})
	first := eng.SortBatch(reqs)
	for round := 0; round < 3; round++ {
		again := eng.SortBatch(reqs)
		for i := range reqs {
			if (first[i].Err == nil) != (again[i].Err == nil) {
				t.Fatalf("round %d req %d: error instability", round, i)
			}
			if first[i].Stats != again[i].Stats {
				t.Fatalf("round %d req %d: stats drift: %+v vs %+v", round, i, first[i].Stats, again[i].Stats)
			}
			for j := range first[i].Keys {
				if first[i].Keys[j] != again[i].Keys[j] {
					t.Fatalf("round %d req %d: result drift at %d", round, i, j)
				}
			}
		}
	}
}
