// Package bitonic implements distributed block bitonic sorting kernels on
// the simulated hypercube multicomputer: the classic fault-free sort and
// the paper's §2.1 single-fault variant in which the processor at
// (reindexed) logical address 0 is dead and every compare-exchange
// involving it is skipped.
//
// # Block discipline
//
// Each live processor holds a chunk of keys kept internally sorted
// ascending at all times. A compare-exchange between partners is a full
// chunk swap followed by a local compare-split (keep the k smallest or k
// largest of the union). By the 0-1 principle, replacing the comparators
// of Batcher's bitonic network with compare-splits on pre-sorted chunks
// yields a correct block sorting algorithm; the keep-low/keep-high pattern
// below is the standard hypercube formulation, with all decisions flipped
// for a descending target order.
//
// The dead node at logical address 0 is equivalent to a participant whose
// chunk is pinned at the order's extreme sentinel (-inf for ascending,
// +inf for descending): address 0 always keeps the extreme side in every
// window it appears in, so both the dead node and its partner can simply
// skip the step — exactly the paper's rule that "the corresponding
// processor of P_0 just keeps its elements without doing any operation".
//
// # Comparison accounting
//
// Kernels charge the simulator's virtual clock with the paper's §3
// worst-case counts rather than instruction-exact tallies: a local
// heapsort of k keys costs (k-1)*ceil(log2 k)+1 comparisons, a
// compare-split costs k, and a two-way merge of k keys costs k-1. This is
// the same accounting the paper's closed-form T uses, which keeps the
// simulated makespans comparable with the model (see core's cost model).
package bitonic

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// View embeds a logical s-dimensional cube into the physical machine: the
// logical cube's bit j lives on physical dimension Dims[j], every other
// physical dimension is frozen to the corresponding bit of Fixed, and
// logical addresses are XOR-reindexed by Pivot so that the subcube's dead
// processor (fault or dangling), if any, sits at logical address 0.
type View struct {
	// Dims lists the physical dimensions spanned by the logical cube,
	// one per logical bit, in logical bit order.
	Dims []int
	// Fixed carries the frozen coordinates of the physical dimensions
	// outside Dims (bits inside Dims are ignored).
	Fixed cube.NodeID
	// Pivot is the logical-space XOR reindexing constant: physical
	// logical-bit pattern p maps to logical address p XOR Pivot. Choosing
	// Pivot as the dead processor's in-view bit pattern moves it to
	// logical 0.
	Pivot cube.NodeID
	// Dead reports whether logical address 0 is a dead processor (faulty
	// or dangling) that holds no keys and skips all exchanges.
	Dead bool
}

// FullCube returns the trivial view of the whole machine: logical
// addresses are physical addresses.
func FullCube(n int) View {
	dims := make([]int, n)
	for i := range dims {
		dims[i] = i
	}
	return View{Dims: dims}
}

// S returns the logical dimension of the view.
func (v View) S() int { return len(v.Dims) }

// Size returns the number of logical addresses, 2^S.
func (v View) Size() int { return 1 << len(v.Dims) }

// LiveCount returns the number of key-holding processors in the view.
func (v View) LiveCount() int {
	if v.Dead {
		return v.Size() - 1
	}
	return v.Size()
}

// Phys maps a logical address to its physical machine address.
func (v View) Phys(logical cube.NodeID) cube.NodeID {
	bits := logical ^ v.Pivot
	addr := v.Fixed
	for j, d := range v.Dims {
		if bits&(1<<j) != 0 {
			addr |= 1 << d
		} else {
			addr &^= 1 << d
		}
	}
	return addr
}

// PeerPhys returns the physical address of the logical-dimension-j
// neighbor of the processor whose physical address is self. Phys is
// XOR-linear in the logical bits (flipping logical bit j flips exactly
// physical bit Dims[j]), so the neighbor is one XOR away — no remapping
// loop. Valid only when self is inside the view.
func (v View) PeerPhys(self cube.NodeID, j int) cube.NodeID {
	return self ^ 1<<v.Dims[j]
}

// Logical maps a physical address inside the view back to its logical
// address. It is the inverse of Phys for addresses whose frozen bits
// match Fixed; other addresses are outside the view and yield an
// undefined result.
func (v View) Logical(phys cube.NodeID) cube.NodeID {
	var bits cube.NodeID
	for j, d := range v.Dims {
		if phys&(1<<d) != 0 {
			bits |= 1 << j
		}
	}
	return bits ^ v.Pivot
}

// LiveLogicals returns the logical addresses that hold keys, ascending.
func (v View) LiveLogicals() []cube.NodeID {
	out := make([]cube.NodeID, 0, v.LiveCount())
	for t := cube.NodeID(0); t < cube.NodeID(v.Size()); t++ {
		if v.Dead && t == 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// LivePhys returns the physical addresses of the live processors,
// ordered by ascending logical address.
func (v View) LivePhys() []cube.NodeID {
	logicals := v.LiveLogicals()
	out := make([]cube.NodeID, len(logicals))
	for i, t := range logicals {
		out[i] = v.Phys(t)
	}
	return out
}

// Validate checks internal consistency against a machine of dimension n.
func (v View) Validate(n int) error {
	seen := make(map[int]bool, len(v.Dims))
	for _, d := range v.Dims {
		if d < 0 || d >= n {
			return fmt.Errorf("bitonic: view dimension %d outside [0,%d)", d, n)
		}
		if seen[d] {
			return fmt.Errorf("bitonic: view dimension %d repeated", d)
		}
		seen[d] = true
	}
	if v.Pivot >= cube.NodeID(v.Size()) {
		return fmt.Errorf("bitonic: pivot %d outside logical cube of dimension %d", v.Pivot, v.S())
	}
	return nil
}

// Ctx is the per-processor kernel context threading a processor's chunk
// and message-tag counter through the sort phases. All processors of a
// run must execute the same sequence of collective calls so their tag
// counters stay aligned.
type Ctx struct {
	P       *machine.Proc
	Logical cube.NodeID
	Chunk   []sortutil.Key // always sorted ascending
	// Protocol selects the compare-exchange wire protocol; the zero
	// value is FullBlock. Every processor of a run must use the same
	// protocol (tag counters count per-protocol messages).
	Protocol Protocol
	tag      machine.Tag
	// scratch is the second half of the context's double-buffered
	// arena: each compare-exchange writes its output into scratch and
	// swaps it with Chunk, so steady state a step allocates nothing.
	scratch []sortutil.Key
}

// NewCtx builds the context for a processor participating in view v with
// the given initial chunk (need not be sorted yet).
func NewCtx(p *machine.Proc, v View, chunk []sortutil.Key) *Ctx {
	return &Ctx{P: p, Logical: v.Logical(p.ID()), Chunk: chunk}
}

// NextTag reserves a fresh message tag; every collective step must call
// it exactly once on every processor.
func (c *Ctx) NextTag() machine.Tag {
	c.tag++
	return c.tag
}

// UseScratch seeds the context's double-buffered arena with a
// caller-owned buffer, so a caller that runs many kernels over
// fixed-size chunks (the engine's fused dispatch) can recycle the
// scratch across runs instead of paying one allocation per context. The
// buffer must not alias the chunk; after the kernel finishes the
// caller's buffer and the chunk may have traded places (the arena
// ping-pongs), so the caller must treat both as a pair it owns.
func (c *Ctx) UseScratch(buf []sortutil.Key) {
	c.scratch = buf
}

// scratchFor returns the arena's scratch buffer resized to n, allocating
// only when the current one is too small — in a sort every chunk has the
// same fixed size, so this allocates once per context lifetime.
func (c *Ctx) scratchFor(n int) []sortutil.Key {
	if cap(c.scratch) < n {
		c.scratch = make([]sortutil.Key, n)
	}
	return c.scratch[:n]
}

// heapsortCost is the paper's worst-case comparison count for heapsort of
// k keys: (k-1)*ceil(log2 k) + 1.
func heapsortCost(k int) int {
	if k <= 1 {
		return 1
	}
	log := 0
	for v := k - 1; v > 0; v >>= 1 {
		log++
	}
	return (k-1)*log + 1
}

// hostSort executes local sorts on the host. The default is pdqsort
// (sortutil.SortHost): the simulated algorithm is still the paper's
// Step 3 heapsort — LocalSort charges heapsortCost regardless — but the
// host produces the (unique) sorted permutation the fastest way it can.
// The conformance test swaps HeapSort back in to pin that Results are
// bit-identical either way.
var hostSort = sortutil.SortHost

// LocalSort sorts the chunk ascending and charges the clock the paper's
// heapsort cost.
func (c *Ctx) LocalSort() {
	hostSort(c.Chunk, sortutil.Ascending)
	c.P.Compute(heapsortCost(len(c.Chunk)))
}

// compareExchange performs one compare-exchange with the processor at
// physical address peer under the configured protocol, consuming the
// protocol's tag budget. Both chunks must be sorted ascending and
// equally sized. Afterwards this side holds the k smallest (keepLow) or
// k largest keys of the pair's union, sorted ascending.
func (c *Ctx) compareExchange(peer cube.NodeID, keepLow bool) {
	if c.Protocol == HalfExchange {
		tag1, tag2 := c.NextTag(), c.NextTag()
		c.exchangeSplitHalf(peer, tag1, tag2, keepLow)
		return
	}
	theirs := c.P.Exchange(peer, c.NextTag(), c.Chunk)
	// Already-separated fast paths: when the two sorted chunks do not
	// interleave, the compare-split result is one of them verbatim, so
	// skip the merge loop (and, when it is our own chunk, the copy too).
	// The conditions mirror CompareSplitInto's tie-breaking exactly —
	// equal keys keep "mine" — so the kept keys are bit-identical to the
	// slow path's, and the virtual-time charge below is the same
	// len(Chunk) either way: host shortcuts never touch simulated cost.
	k := len(c.Chunk)
	if k > 0 && len(theirs) == k {
		if keepLow && c.Chunk[k-1] <= theirs[0] || !keepLow && c.Chunk[0] >= theirs[k-1] {
			c.P.Release(theirs)
			c.P.Compute(k)
			return
		}
		if keepLow && theirs[k-1] < c.Chunk[0] || !keepLow && theirs[0] > c.Chunk[k-1] {
			copy(c.Chunk, theirs)
			c.P.Release(theirs)
			c.P.Compute(k)
			return
		}
	}
	dst := sortutil.CompareSplitInto(c.scratchFor(k), c.Chunk, theirs, keepLow)
	c.P.Release(theirs)
	c.Chunk, c.scratch = dst, c.Chunk
	c.P.Compute(len(c.Chunk))
}

// BitonicMergeView runs only the final merge stage of the bitonic network
// (s compare-exchange steps along logical dimensions s-1 down to 0),
// sorting the view's block into direction dir. It is correct when the
// distributed block is bitonic across logical addresses AND the view has
// no dead processor: a dead logical 0 behaves as the extreme sentinel of
// dir, and a bitonic profile's extreme end does not in general sit at
// logical 0, so the single merge pass cannot be used in the
// fault-tolerant sort's Step 8 (the full MergeView can, because a full
// sort needs no precondition). It remains the cheap re-merge for
// fault-free views.
func (c *Ctx) BitonicMergeView(v View, dir sortutil.Direction) {
	t := c.Logical
	for j := v.S() - 1; j >= 0; j-- {
		peerLogical := cube.FlipBit(t, j)
		if v.Dead && (t == 0 || peerLogical == 0) {
			c.SkipStep()
			continue
		}
		keepLow := cube.Bit(t, j) == 0
		if dir == sortutil.Descending {
			keepLow = !keepLow
		}
		c.compareExchange(v.PeerPhys(c.P.ID(), j), keepLow)
	}
}

// ExchangeSplit performs one compare-split with the processor at physical
// address peer, reserving a tag. It is the building block of the paper's
// Step 7 cross-subcube stage: the core algorithm pairs corresponding
// reindexed processors of adjacent subcubes and calls this on both sides
// (with opposite keepLow). Processors sitting a step out (dead partners)
// must call SkipStep instead so tag counters stay aligned.
func (c *Ctx) ExchangeSplit(peer cube.NodeID, keepLow bool) {
	c.compareExchange(peer, keepLow)
}

// SkipStep advances the tag counter by one compare-exchange's budget
// without communicating, keeping this processor aligned with peers that
// performed a collective step it sat out.
func (c *Ctx) SkipStep() {
	for i := 0; i < c.Protocol.tagsPerExchange(); i++ {
		c.NextTag()
	}
}

// SortView runs the distributed block bitonic sort across the view,
// leaving the view's keys sorted in direction dir by logical address
// (each chunk internally ascending; chunk at logical t precedes chunk at
// t+1 in direction dir). If the view has a dead logical 0, it is skipped
// per the paper's single-fault rule and the result occupies logical
// addresses 1..2^s-1.
//
// Every live processor of the view must call SortView in the same kernel
// step; the dead processor (which runs no kernel) is skipped by its
// partners.
func (c *Ctx) SortView(v View, dir sortutil.Direction) {
	c.LocalSort()
	c.MergeView(v, dir)
}

// MergeView runs only the compare-exchange network of the bitonic sort
// (all s phases), assuming each chunk is already internally sorted
// ascending. Exposed separately because the paper's Step 8 re-sorts
// subcubes whose chunks are already sorted.
func (c *Ctx) MergeView(v View, dir sortutil.Direction) {
	s := v.S()
	t := c.Logical
	for i := 0; i < s; i++ {
		// For the outermost phase i = s-1 this bit is 0 (t < 2^s), giving
		// the final ascending merge.
		dirBit := cube.Bit(t, i+1)
		for j := i; j >= 0; j-- {
			peerLogical := cube.FlipBit(t, j)
			if v.Dead && (t == 0 || peerLogical == 0) {
				c.SkipStep() // the paper's skip rule: dead pairs do nothing
				continue
			}
			keepLow := dirBit == cube.Bit(t, j)
			if dir == sortutil.Descending {
				keepLow = !keepLow
			}
			c.compareExchange(v.PeerPhys(c.P.ID(), j), keepLow)
		}
	}
}
