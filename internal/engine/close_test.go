package engine

import (
	"runtime"
	"testing"
	"time"

	"hypersort/internal/cube"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestCloseRetiresWorkersAndEngineStaysUsable drives enough repeat
// traffic through one configuration to warm a pooled machine's
// persistent workers, then checks Close returns the process to its
// goroutine baseline and that the engine still serves afterwards.
func TestCloseRetiresWorkersAndEngineStaysUsable(t *testing.T) {
	base := runtime.NumGoroutine()
	e := New(1, 1)
	cfg := Config{Dim: 4, Faults: []cube.NodeID{3}}
	keys := workload.MustGenerate(workload.Uniform, 120, xrand.New(9))
	for i := 0; i < 3; i++ { // repeat traffic: second run onward is on persistent workers
		if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	e.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("goroutines = %d after Close, want <= %d", got, base)
	}
	e.Close() // idempotent
	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatalf("request after Close: %v", res.Err)
	}
	e.Close()
}

// TestPerNodeBufferPooledPerLease pins the Result.PerNode reuse
// contract: consecutive sorts on the same single-machine pool return
// the same map storage (no per-request allocation), refilled with
// identical clocks.
func TestPerNodeBufferPooledPerLease(t *testing.T) {
	e := New(1, 1)
	cfg := Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 90, xrand.New(10))
	r1 := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	first := r1.Res.PerNode
	if len(first) == 0 {
		t.Fatal("no PerNode clocks recorded")
	}
	snapshot := make(map[cube.NodeID]int64, len(first))
	for id, c := range first {
		snapshot[id] = int64(c)
	}
	r2 := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	// Same pooled storage, same deterministic contents.
	if len(r2.Res.PerNode) != len(snapshot) {
		t.Fatalf("PerNode size changed: %d vs %d", len(r2.Res.PerNode), len(snapshot))
	}
	for id, c := range r2.Res.PerNode {
		if snapshot[id] != int64(c) {
			t.Fatalf("node %d clock %d != %d", id, c, snapshot[id])
		}
	}
	// The maps must literally alias (mutating one shows in the other):
	// that is the pooling, and why Result documents the copy rule.
	r2.Res.PerNode[cube.NodeID(0)] = 0xBEEF
	if first[cube.NodeID(0)] != 0xBEEF {
		t.Error("PerNode maps are not pooled storage (second run allocated afresh)")
	}
}
