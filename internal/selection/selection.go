// Package selection finds order statistics on the faulty hypercube
// without fully sorting — the companion problem of the paper's authors
// (their reference [17], "Selection of the First k Largest Processes in
// Hypercubes", Sheu, Wu & Chen, Parallel Computing 1989), rebuilt on this
// repository's fault-tolerant substrate.
//
// The algorithm is a distributed binary search over the key domain: the
// working processors of the partition hold the keys exactly as the
// fault-tolerant sort would distribute them, and each round an AllReduce
// counts how many keys fall below the probe. Because keys are int64, at
// most 64 rounds resolve any rank, each costing one O(log N') reduction
// of a single value — far cheaper than sorting when only a few order
// statistics are needed. The same partition layout (dead processors
// skipped, dangling idled) provides the fault tolerance.
package selection

import (
	"fmt"
	"sort"

	"hypersort/internal/collective"
	"hypersort/internal/core"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
)

// Options tunes the selection algorithms.
type Options struct {
	// Phases, if non-nil, receives per-phase virtual-time and comparison
	// breakdowns: each processor reports its local pre-sort
	// (PhaseSelLocalSort) and the AllReduce binary-search rounds
	// (PhaseSelReduce) separately. Nil disables phase accounting.
	Phases *obs.PhaseSet
}

// KthSmallest distributes keys over the plan's working processors and
// returns the k-th smallest key (1-based), computed by distributed
// binary search with AllReduce rank counts. It returns the simulated run
// cost alongside. k must be in [1, len(keys)].
func KthSmallest(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, k int) (sortutil.Key, machine.Result, error) {
	return KthSmallestOpt(m, plan, keys, k, Options{})
}

// KthSmallestOpt is KthSmallest with explicit options.
func KthSmallestOpt(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, k int, opts Options) (sortutil.Key, machine.Result, error) {
	if k < 1 || k > len(keys) {
		return 0, machine.Result{}, fmt.Errorf("selection: rank %d outside [1, %d]", k, len(keys))
	}
	layout := core.NewLayout(plan)
	shares, err := workload.Distribute(keys, len(layout.Working))
	if err != nil {
		return 0, machine.Result{}, err
	}
	group, err := collective.NewGroup(layout.Working)
	if err != nil {
		return 0, machine.Result{}, err
	}
	results := make([]sortutil.Key, len(layout.Working))
	res, err := m.Run(layout.Working, func(p *machine.Proc) error {
		slot := layout.SlotOf[p.ID()]
		mine := sortutil.Clone(shares[slot])
		var tag machine.Tag

		// Sort the local chunk once so each round's rank count is a
		// binary search instead of a scan — this is what keeps selection
		// cheaper than the full distributed sort.
		// Host execution is pdqsort; the virtual clock is still charged
		// the analytic heapsort cost below, so makespans are unchanged.
		sortutil.SortHost(mine, sortutil.Ascending)
		p.Compute(localSortCost(len(mine)))
		opts.Phases.Observe(obs.PhaseSelLocalSort, int64(p.Clock()), p.Comparisons())
		reduceClock, reduceComps := p.Clock(), p.Comparisons()

		// Narrow the search interval to the global key range first
		// (uniform 40-bit keys would otherwise waste ~24 rounds walking
		// down from the int64 extremes). Dummy padding keys are Inf and
		// excluded (k <= len(keys) real keys).
		real := mine[:sortutil.CountReal(mine)]
		localLo, localHi := int64(sortutil.Inf-1), int64(sortutil.NegInf)
		if len(real) > 0 {
			localLo, localHi = int64(real[0]), int64(real[len(real)-1])
		}
		lo := collective.AllReduce(p, group, tag+1, localLo, collective.Min)
		hi := collective.AllReduce(p, group, tag+5, localHi, collective.Max)
		tag += 8

		// Binary search: find the smallest value x with
		// |{keys <= x}| >= k.
		for lo < hi {
			// The unsigned difference stays exact even when hi-lo
			// exceeds MaxInt64.
			mid := lo + int64((uint64(hi)-uint64(lo))/2)
			count := int64(sort.Search(len(real), func(i int) bool {
				return int64(real[i]) > mid
			}))
			p.Compute(ceilLog2(len(real)))
			tag += 4
			total := collective.AllReduce(p, group, tag, count, collective.Sum)
			if total >= int64(k) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		results[slot] = sortutil.Key(lo)
		opts.Phases.Observe(obs.PhaseSelReduce,
			int64(p.Clock()-reduceClock), p.Comparisons()-reduceComps)
		return nil
	})
	if err != nil {
		return 0, machine.Result{}, err
	}
	// AllReduce keeps every processor in agreement; take slot 0's answer.
	return results[0], res, nil
}

// localSortCost is the paper's heapsort comparison bound for k keys.
func localSortCost(k int) int {
	if k <= 1 {
		return 1
	}
	return (k-1)*ceilLog2(k) + 1
}

// ceilLog2 returns ceil(log2 k) for k >= 1, and 1 for k <= 1 (one probe).
func ceilLog2(k int) int {
	if k <= 1 {
		return 1
	}
	log := 0
	for v := k - 1; v > 0; v >>= 1 {
		log++
	}
	return log
}

// Median returns the lower median (rank ceil(n/2)) of keys on the faulty
// machine.
func Median(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key) (sortutil.Key, machine.Result, error) {
	return MedianOpt(m, plan, keys, Options{})
}

// MedianOpt is Median with explicit options.
func MedianOpt(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, opts Options) (sortutil.Key, machine.Result, error) {
	if len(keys) == 0 {
		return 0, machine.Result{}, fmt.Errorf("selection: median of no keys")
	}
	return KthSmallestOpt(m, plan, keys, (len(keys)+1)/2, opts)
}

// TopK returns the k largest keys in ascending order. It resolves the
// threshold with one KthSmallest call and then gathers the keys above it
// — a second pass over local data plus one gather, still far below a
// full sort for small k.
func TopK(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, k int) ([]sortutil.Key, machine.Result, error) {
	return TopKOpt(m, plan, keys, k, Options{})
}

// TopKOpt is TopK with explicit options.
func TopKOpt(m *machine.Machine, plan *partition.Plan, keys []sortutil.Key, k int, opts Options) ([]sortutil.Key, machine.Result, error) {
	if k < 0 || k > len(keys) {
		return nil, machine.Result{}, fmt.Errorf("selection: top-%d outside [0, %d]", k, len(keys))
	}
	if k == 0 {
		return nil, machine.Result{}, nil
	}
	threshold, res, err := KthSmallestOpt(m, plan, keys, len(keys)-k+1, opts)
	if err != nil {
		return nil, machine.Result{}, err
	}
	// Host-side selection pass: keys strictly above the threshold all
	// belong; ties at the threshold fill the remainder. (The distributed
	// run resolved the threshold; this pass is the O(M) filter the host
	// performs while collecting results.)
	var above, ties []sortutil.Key
	for _, key := range keys {
		if key > threshold {
			above = append(above, key)
		} else if key == threshold {
			ties = append(ties, key)
		}
	}
	need := k - len(above)
	out := append(above, ties[:need]...)
	// Pure host-side post-processing: not on any simulated clock.
	sortutil.SortHost(out, sortutil.Ascending)
	return out, res, nil
}
