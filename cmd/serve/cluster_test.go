package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hypersort"
	"hypersort/internal/obs"
)

// TestRetryAfterSeconds pins the 503 backoff-hint derivation: ceiling
// of the observed p50 queue wait in whole seconds, floored at 1 (an
// empty histogram or sub-second waits must not invite a hot retry
// loop) and capped at 30 (the log-scale buckets overshoot by up to 2x,
// and a transient spike must not read as an outage).
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name    string
		observe []int64
		want    int
	}{
		{"empty histogram", nil, 1},
		{"sub-second waits", []int64{1000, 1 << 20}, 1},
		// One observation at 2^31 ns ~ 2.15s: the p50 bucket bound is
		// 2^31, which ceils to 3 whole seconds.
		{"two-second waits", []int64{1 << 31}, 3},
		// 2^36 ns ~ 69s: capped.
		{"pathological waits", []int64{1 << 36}, 30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := &obs.Histogram{}
			for _, v := range c.observe {
				h.Observe(v)
			}
			if got := retryAfterSeconds(h, nil); got != c.want {
				t.Fatalf("retryAfterSeconds = %d, want %d", got, c.want)
			}
		})
	}
}

// TestServeRetryAfterOnBackpressure drives a real admission rejection
// through the HTTP surface: a single-machine engine with a one-deep
// admission queue is flooded with concurrent slow sorts, at least one
// must answer 503, and its Retry-After header must be the computed
// whole-second hint (an integer in [1, 30]) rather than free text.
func TestServeRetryAfterOnBackpressure(t *testing.T) {
	eng := hypersort.NewEngine(hypersort.EngineConfig{
		PoolSize:       1,
		BatchWorkers:   1,
		MaxBatch:       1,
		AdmissionQueue: 1,
	})
	srv := httptest.NewServer(newMux(eng, nil, false, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	body := sortBody(6, nil, 2000)
	var (
		mu         sync.Mutex
		retryAfter string
		saw503     bool
	)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				mu.Lock()
				saw503 = true
				if retryAfter == "" {
					retryAfter = resp.Header.Get("Retry-After")
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !saw503 {
		t.Skip("flood did not trigger admission rejection on this host; contract covered by TestRetryAfterSeconds")
	}
	n, err := strconv.Atoi(retryAfter)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", retryAfter, err)
	}
	if n < 1 || n > 30 {
		t.Fatalf("Retry-After = %d, want within [1, 30]", n)
	}
}

// newClusterTestServer stands up the production handler set over a
// sharded cluster backend.
func newClusterTestServer(t *testing.T, chaos bool) (*httptest.Server, *hypersort.Cluster) {
	t.Helper()
	cl := hypersort.NewCluster(hypersort.ClusterConfig{
		Shards:       3,
		Replicas:     1,
		PoolSize:     1,
		BatchWorkers: 2,
	})
	srv := httptest.NewServer(newMux(cl, nil, chaos, hypersort.RouteECube))
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return srv, cl
}

// TestServeClusterBackend checks the handler set is topology-blind: a
// cluster behind the same mux serves sorts correctly and /v1/metrics
// reports both the shard-summed engine view (under the key dashboards
// already read) and the router's cluster section.
func TestServeClusterBackend(t *testing.T) {
	srv, cl := newClusterTestServer(t, false)
	resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(sortBody(4, []int64{3}, 128)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res wireResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i] < res.Keys[i-1] {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	if m := cl.Metrics(); m.Requests != 1 {
		t.Fatalf("cluster served %d requests, want 1", m.Requests)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var payload struct {
		Engine  *json.RawMessage `json:"engine"`
		Cluster *struct {
			Requests int64 `json:"Requests"`
			Shards   []any `json:"Shards"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Engine == nil {
		t.Fatal("/v1/metrics lost the engine section on a cluster backend")
	}
	if payload.Cluster == nil {
		t.Fatal("/v1/metrics missing the cluster section on a cluster backend")
	}
	if payload.Cluster.Requests != 1 {
		t.Fatalf("cluster section reports %d requests, want 1", payload.Cluster.Requests)
	}
	if len(payload.Cluster.Shards) != 3 {
		t.Fatalf("cluster section reports %d shards, want 3", len(payload.Cluster.Shards))
	}
}

// TestServeClusterChaosAllShards checks `serve -chaos` against a
// sharded backend: inject arms every shard (the router may serve the
// configuration from home or any replica), a struck sort still answers
// 200 with sorted keys, and disarm stands the whole fleet down.
func TestServeClusterChaosAllShards(t *testing.T) {
	srv, cl := newClusterTestServer(t, true)
	body := sortBody(4, nil, 300)

	// Healthy run to size the kill time.
	resp, err := http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var clean wireResult
	if err := json.NewDecoder(resp.Body).Decode(&clean); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if clean.Err != "" {
		t.Fatalf("healthy run failed: %s", clean.Err)
	}
	mid := clean.Stats.Makespan / 2
	if mid <= 0 {
		t.Fatalf("healthy makespan %d too small to bisect", clean.Stats.Makespan)
	}

	inj := fmt.Sprintf(`{"dim":4,"kill_node":5,"at":%d}`, mid)
	iresp, err := http.Post(srv.URL+"/v1/chaos/inject", "application/json", strings.NewReader(inj))
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d", iresp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/sort", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var struck wireResult
	if err := json.NewDecoder(resp.Body).Decode(&struck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if struck.Err != "" {
		t.Fatalf("struck sort did not recover: %s", struck.Err)
	}
	for i := 1; i < len(struck.Keys); i++ {
		if struck.Keys[i] < struck.Keys[i-1] {
			t.Fatalf("recovered output not sorted at %d", i)
		}
	}
	if m := cl.Metrics(); m.Engine.Replans < 1 {
		t.Fatalf("cluster replans = %d, want >= 1", m.Engine.Replans)
	}

	dresp, err := http.Post(srv.URL+"/v1/chaos/disarm", "application/json", strings.NewReader(`{"dim":4}`))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("disarm status %d", dresp.StatusCode)
	}
}
