package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
)

// evAt builds a distinguishable compute event for ring tests: Keys
// carries the writer's payload, Time its sequence position.
func evAt(node, payload int) machine.TraceEvent {
	return machine.TraceEvent{
		Node: cube.NodeID(node),
		Kind: machine.TraceCompute,
		Keys: payload,
		Time: machine.Time(payload),
	}
}

// TestRingWraparound fills a ring past capacity and checks that exactly
// the newest events survive, oldest first.
func TestRingWraparound(t *testing.T) {
	r := NewRing(16, 1)
	const total = 100
	for i := 1; i <= total; i++ {
		r.Record(evAt(0, i))
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	if r.Seen() != total || r.Recorded() != total {
		t.Fatalf("Seen/Recorded = %d/%d, want %d", r.Seen(), r.Recorded(), total)
	}
	got := r.Snapshot(0)
	if len(got) != 16 {
		t.Fatalf("snapshot has %d events, want 16", len(got))
	}
	for i, ev := range got {
		if want := total - 16 + 1 + i; ev.Keys != want {
			t.Fatalf("snapshot[%d].Keys = %d, want %d", i, ev.Keys, want)
		}
	}
	// last=N trims from the old end.
	tail := r.Snapshot(4)
	if len(tail) != 4 || tail[0].Keys != total-3 || tail[3].Keys != total {
		t.Fatalf("Snapshot(4) = %v", tail)
	}
}

// TestRingCapacityRounding pins the power-of-two rounding and the
// minimum size.
func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024}} {
		r := NewRing(c.ask, 1)
		if len(r.slots) != c.want {
			t.Errorf("NewRing(%d) capacity %d, want %d", c.ask, len(r.slots), c.want)
		}
	}
}

// TestRingSampling checks the 1-in-k sampling arithmetic.
func TestRingSampling(t *testing.T) {
	r := NewRing(64, 4)
	for i := 1; i <= 40; i++ {
		r.Record(evAt(0, i))
	}
	if r.Seen() != 40 {
		t.Fatalf("Seen = %d, want 40", r.Seen())
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10 (1 in 4)", r.Recorded())
	}
	got := r.Snapshot(0)
	if len(got) != 10 {
		t.Fatalf("snapshot has %d events, want 10", len(got))
	}
	// Every 4th offered event is kept, starting with the first.
	for i, ev := range got {
		if want := 1 + 4*i; ev.Keys != want {
			t.Fatalf("snapshot[%d].Keys = %d, want %d", i, ev.Keys, want)
		}
	}
}

// TestRingConcurrentWriters hammers one ring from many goroutines under
// the race detector and checks the ring's invariants afterwards: exact
// acceptance count, full buffer, and a strictly consistent snapshot.
func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(128, 1)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(evAt(w, i))
				if i%100 == 0 {
					r.Snapshot(16) // readers race writers
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Recorded() != workers*each {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), workers*each)
	}
	if got := len(r.Snapshot(0)); got != 128 {
		t.Fatalf("final snapshot has %d events, want 128", got)
	}
}

// TestRingDeterministicExport checks that exporting a quiescent ring
// twice yields byte-identical Chrome JSON.
func TestRingDeterministicExport(t *testing.T) {
	r := NewRing(32, 1)
	for i := 1; i <= 50; i++ {
		r.Record(machine.TraceEvent{
			Node: cube.NodeID(i % 4),
			Kind: machine.TraceKind(i % 3),
			Peer: cube.NodeID((i + 1) % 4),
			Keys: i,
			Hops: 1,
			Time: machine.Time(i * 10),
		})
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, r.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, r.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of a quiescent ring differ")
	}
}

// TestRingReset checks Reset restores the empty state.
func TestRingReset(t *testing.T) {
	r := NewRing(16, 2)
	for i := 1; i <= 10; i++ {
		r.Record(evAt(0, i))
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 || r.Recorded() != 0 || r.Snapshot(0) != nil {
		t.Fatalf("ring not empty after Reset: len=%d seen=%d recorded=%d", r.Len(), r.Seen(), r.Recorded())
	}
	r.Record(evAt(0, 1)) // sampling phase restarts: first event is kept
	if r.Recorded() != 1 {
		t.Fatal("first post-Reset event was sampled away")
	}
}

// TestWriteChromeFormat decodes the exported JSON and checks the trace-
// event schema: metadata thread names plus one instant event per machine
// event with the documented args.
func TestWriteChromeFormat(t *testing.T) {
	events := []machine.TraceEvent{
		{Node: 2, Kind: machine.TraceSend, Peer: 3, Tag: 7, Keys: 64, Hops: 2, Time: 100},
		{Node: 3, Kind: machine.TraceRecv, Peer: 2, Tag: 7, Keys: 64, Time: 260},
		{Node: 3, Kind: machine.TraceCompute, Keys: 63, Time: 300},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Tid  int64  `json:"tid"`
			Args struct {
				Peer *int64 `json:"peer"`
				Keys *int   `json:"keys"`
				Hops *int   `json:"hops"`
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args.Name == "" {
				t.Errorf("metadata row without thread name: %+v", ev)
			}
		case "i":
			inst++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 { // nodes 2 and 3
		t.Errorf("thread-name rows = %d, want 2", meta)
	}
	if inst != len(events) {
		t.Errorf("instant events = %d, want %d", inst, len(events))
	}
	// The send event keeps its payload.
	send := doc.TraceEvents[meta]
	if send.Name != "send" || send.Ts != 100 || send.Tid != 2 ||
		send.Args.Peer == nil || *send.Args.Peer != 3 ||
		send.Args.Keys == nil || *send.Args.Keys != 64 ||
		send.Args.Hops == nil || *send.Args.Hops != 2 {
		t.Errorf("send event mangled: %+v", send)
	}
}
