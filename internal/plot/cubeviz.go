package plot

import (
	"fmt"
	"math"
	"strings"

	"hypersort/internal/cube"
	"hypersort/internal/partition"
)

// PartitionSVG draws the partitioned hypercube: every processor as a
// circle placed by a standard recursive hypercube projection, links as
// lines, subcubes tinted by their address, faults crossed in red,
// dangling processors hollow. It is the diagrammatic counterpart of the
// paper's Figure 1/3 subcube drawings and gives cmd/partition a visual
// output.
func PartitionSVG(plan *partition.Plan) string {
	h := plan.Cube
	n := h.Dim()
	const (
		w, ht   = 760.0, 640.0
		margin  = 70.0
		radius  = 13.0
		legendY = 26.0
	)
	pos := layoutCube(n, w-2*margin, ht-2*margin-40)
	for i := range pos {
		pos[i][0] += margin
		pos[i][1] += margin + 40
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, ht, w, ht)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="15" font-weight="bold">Q_%d partitioned by D_β = %s: %d subcube(s), %d fault(s), %d dangling</text>`+"\n",
		margin, legendY, n, escape(plan.Chosen.String()), plan.NumSubcubes(), len(plan.Faults), len(plan.Dangling))

	// Links first (under the nodes); cross-subcube links dashed.
	for _, e := range h.Edges() {
		dashed := ""
		if plan.Split.V(e.A) != plan.Split.V(e.B) {
			dashed = ` stroke-dasharray="4,4"`
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb"%s/>`+"\n",
			pos[e.A][0], pos[e.A][1], pos[e.B][0], pos[e.B][1], dashed)
	}

	dangling := cube.NewNodeSet(plan.Dangling...)
	for id := cube.NodeID(0); id < cube.NodeID(h.Size()); id++ {
		x, y := pos[id][0], pos[id][1]
		fill := subcubeColor(int(plan.Split.V(id)), plan.NumSubcubes())
		stroke, strokeW := "#333", 1.0
		switch {
		case plan.Faults.Has(id):
			stroke, strokeW = "#d62728", 3
		case dangling.Has(id):
			fill = "white"
			stroke, strokeW = "#b8860b", 2.5
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%g" fill="%s" stroke="%s" stroke-width="%g"/>`+"\n",
			x, y, radius, fill, stroke, strokeW)
		if plan.Faults.Has(id) {
			// Red cross over the fault.
			d := radius * 0.7
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d62728" stroke-width="2.5"/>`+"\n", x-d, y-d, x+d, y+d)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d62728" stroke-width="2.5"/>`+"\n", x-d, y+d, x+d, y-d)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%d</text>`+"\n",
			x, y+3.5, id)
	}

	// Legend.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">crossed red = faulty, hollow gold = dangling, fill hue = subcube, dashed link = crosses a cut dimension</text>`+"\n",
		margin, ht-18)
	b.WriteString("</svg>\n")
	return b.String()
}

// layoutCube positions 2^n nodes with the classic recursive offsetting:
// each added dimension duplicates the current drawing and shifts the copy
// by a decreasing vector, alternating direction to spread the cube.
func layoutCube(n int, w, h float64) [][2]float64 {
	pos := make([][2]float64, 1<<n)
	if n == 0 {
		pos[0] = [2]float64{w / 2, h / 2}
		return pos
	}
	// Offsets per dimension: alternate mostly-horizontal and
	// mostly-vertical displacements, shrinking geometrically.
	offsets := make([][2]float64, n)
	dx, dy := w*0.52, h*0.52
	for d := n - 1; d >= 0; d-- {
		if (n-1-d)%2 == 0 {
			offsets[d] = [2]float64{dx, dy * 0.18}
			dx *= 0.46
		} else {
			offsets[d] = [2]float64{dx * 0.18, dy}
			dy *= 0.46
		}
	}
	for id := 0; id < 1<<n; id++ {
		var x, y float64
		for d := 0; d < n; d++ {
			if id>>uint(d)&1 == 1 {
				x += offsets[d][0]
				y += offsets[d][1]
			}
		}
		pos[id] = [2]float64{x, y}
	}
	// Normalize into [0,w]x[0,h].
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pos {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	for i := range pos {
		if maxX > minX {
			pos[i][0] = (pos[i][0] - minX) / (maxX - minX) * w
		} else {
			pos[i][0] = w / 2
		}
		if maxY > minY {
			pos[i][1] = (pos[i][1] - minY) / (maxY - minY) * h
		} else {
			pos[i][1] = h / 2
		}
	}
	return pos
}

// subcubeColor assigns subcube v one of k evenly spaced pastel hues.
func subcubeColor(v, k int) string {
	if k <= 1 {
		return "#cfe3f5"
	}
	hue := float64(v) / float64(k) * 360
	r, g, b := hslToRGB(hue, 0.55, 0.82)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// hslToRGB converts HSL (h in degrees, s and l in [0,1]) to 8-bit RGB.
func hslToRGB(h, s, l float64) (uint8, uint8, uint8) {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	to8 := func(v float64) uint8 { return uint8(math.Round((v + m) * 255)) }
	return to8(r), to8(g), to8(b)
}
