package core

import (
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestObservabilityWiring runs the fault-tolerant sort with a machine
// metrics bundle and a phase set attached and cross-checks the flushed
// aggregates against the run's own Result: the bundle must mirror the
// Result exactly, and the per-phase comparison breakdown must partition
// the total (every comparison of the run belongs to exactly one phase).
func TestObservabilityWiring(t *testing.T) {
	reg := obs.NewRegistry()
	mm := obs.NewMachineMetrics(reg)
	ps := obs.NewPhaseSet(reg)

	// Two faults force a multi-subcube plan (m >= 1), so the cross-subcube
	// Steps 7 and 8 actually execute.
	faults := cube.NewNodeSet(1, 6)
	plan, err := partition.BuildPlan(3, faults)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{Dim: 3, Faults: faults, Metrics: mm})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.MustGenerate(workload.Uniform, 7*16, xrand.New(41))
	sorted, res, err := FTSortOpt(m, plan, keys, Options{Phases: ps})
	if err != nil {
		t.Fatal(err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) {
		t.Fatal("output not sorted")
	}

	if got := mm.Runs.Value(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	if got := mm.Messages.Value(); got != res.Messages {
		t.Errorf("messages metric %d != result %d", got, res.Messages)
	}
	if got := mm.Comparisons.Value(); got != res.Comparisons {
		t.Errorf("comparisons metric %d != result %d", got, res.Comparisons)
	}
	if got := mm.KeyHops.Value(); got != res.KeyHops {
		t.Errorf("key hops metric %d != result %d", got, res.KeyHops)
	}
	if mm.Makespan.Count() != 1 {
		t.Errorf("makespan observations = %d, want 1", mm.Makespan.Count())
	}
	if got := mm.Makespan.Sum(); got != int64(res.Makespan) {
		t.Errorf("makespan metric %d != result %d", got, res.Makespan)
	}

	// The sort phases partition the run's comparisons (distribution is
	// off, so step 2 contributes nothing).
	var phaseComps int64
	for _, p := range []obs.Phase{
		obs.PhaseStep2Distribute, obs.PhaseStep3Local, obs.PhaseStep3Intra,
		obs.PhaseStep7Exchange, obs.PhaseStep8Resort,
	} {
		phaseComps += ps.Comparisons(p)
	}
	if phaseComps != res.Comparisons {
		t.Errorf("phase comparisons sum %d != run total %d", phaseComps, res.Comparisons)
	}
	for _, p := range []obs.Phase{obs.PhaseStep3Local, obs.PhaseStep7Exchange, obs.PhaseStep8Resort} {
		if ps.Comparisons(p) == 0 {
			t.Errorf("phase %s recorded no comparisons", p)
		}
	}

	// A second run accumulates rather than resets.
	if _, _, err := FTSortOpt(m, plan, keys, Options{Phases: ps}); err != nil {
		t.Fatal(err)
	}
	if got := mm.Runs.Value(); got != 2 {
		t.Errorf("runs after second sort = %d, want 2", got)
	}
	if got := mm.Comparisons.Value(); got != 2*res.Comparisons {
		t.Errorf("comparisons after second sort = %d, want %d", got, 2*res.Comparisons)
	}
}
