package cli

import (
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/machine"
)

func TestParseNodeList(t *testing.T) {
	got, err := ParseNodeList(" 3, 5,16 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 16 {
		t.Errorf("got %v", got)
	}
	if got, err := ParseNodeList(""); err != nil || got != nil {
		t.Error("blank should yield nil, nil")
	}
	if got, err := ParseNodeList("   "); err != nil || got != nil {
		t.Error("whitespace should yield nil, nil")
	}
	for _, bad := range []string{"a", "1,,2", "-1", "1,2,x"} {
		if _, err := ParseNodeList(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("3200, 32000")
	if err != nil || len(got) != 2 || got[1] != 32000 {
		t.Errorf("got %v, %v", got, err)
	}
	if got, err := ParseIntList(""); err != nil || got != nil {
		t.Error("blank should yield nil, nil")
	}
	for _, bad := range []string{"x", "0", "-5", "1,0"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseFaultModel(t *testing.T) {
	if m, err := ParseFaultModel("partial"); err != nil || m != machine.Partial {
		t.Error("partial failed")
	}
	if m, err := ParseFaultModel(" Total "); err != nil || m != machine.Total {
		t.Error("total failed")
	}
	if _, err := ParseFaultModel("sideways"); err == nil {
		t.Error("bad model accepted")
	}
}

func TestParseProtocol(t *testing.T) {
	if p, err := ParseProtocol("full"); err != nil || p != bitonic.FullBlock {
		t.Error("full failed")
	}
	if p, err := ParseProtocol("half-exchange"); err != nil || p != bitonic.HalfExchange {
		t.Error("half failed")
	}
	if _, err := ParseProtocol("quarter"); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	s, err := ParseEdgeList(" 0-1, 5-7 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || !s.Has(1, 0) || !s.Has(7, 5) {
		t.Errorf("got %v", s.Sorted())
	}
	if s, err := ParseEdgeList(""); err != nil || s != nil {
		t.Error("blank should yield nil, nil")
	}
	for _, bad := range []string{"0", "0-3", "a-b", "0-1-2", "0-x"} {
		if _, err := ParseEdgeList(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
