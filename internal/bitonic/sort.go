package bitonic

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
)

// Sort distributes keys over the live processors of view v on machine m,
// runs the block bitonic sort in direction dir, and returns the sorted
// result gathered in logical-address order together with the run's
// simulated cost. Keys are padded with Inf dummies to equalize chunk
// sizes; the returned slice has the dummies stripped, so it is a sorted
// permutation of keys.
//
// This is the complete "bitonic sorting algorithm on a hypercube with at
// most one faulty processor" of the paper's §2.1 — the component the
// fault-tolerant algorithm applies inside each subcube, and (with a
// fault-free full-cube view) the baseline it compares against.
func Sort(m *machine.Machine, v View, keys []sortutil.Key, dir sortutil.Direction) ([]sortutil.Key, machine.Result, error) {
	return SortProto(m, v, keys, dir, FullBlock)
}

// SortProto is Sort with an explicit compare-exchange protocol (the
// paper's two-round half-exchange or the default full-block swap).
func SortProto(m *machine.Machine, v View, keys []sortutil.Key, dir sortutil.Direction, proto Protocol) ([]sortutil.Key, machine.Result, error) {
	if err := v.Validate(m.Cube().Dim()); err != nil {
		return nil, machine.Result{}, err
	}
	live := v.LivePhys()
	for _, phys := range live {
		if m.Faults().Has(phys) {
			return nil, machine.Result{}, fmt.Errorf("bitonic: live view processor %d is faulty on the machine", phys)
		}
	}
	shares, err := workload.Distribute(keys, len(live))
	if err != nil {
		return nil, machine.Result{}, err
	}
	// shareIdx maps physical address to this run's share slot.
	shareIdx := make(map[cube.NodeID]int, len(live))
	for i, phys := range live {
		shareIdx[phys] = i
	}
	out := make([][]sortutil.Key, len(live))
	res, err := m.Run(live, func(p *machine.Proc) error {
		idx := shareIdx[p.ID()]
		// Distribute allocated the shares for this call, so the kernel
		// owns its share outright — no defensive clone needed to keep
		// the caller's keys untouched.
		ctx := NewCtx(p, v, shares[idx])
		ctx.Protocol = proto
		ctx.SortView(v, dir)
		out[idx] = ctx.Chunk
		return nil
	})
	if err != nil {
		return nil, machine.Result{}, err
	}
	gathered := make([]sortutil.Key, 0, len(shares)*len(shares[0]))
	if dir == sortutil.Ascending {
		for _, chunk := range out {
			gathered = append(gathered, chunk...)
		}
	} else {
		// Chunks are internally ascending while the block order is
		// descending; emit each chunk reversed (in place — the run is
		// over and the chunks are ours) to produce a descending stream.
		for _, chunk := range out {
			sortutil.Reverse(chunk)
			gathered = append(gathered, chunk...)
		}
	}
	return stripDummies(gathered, dir), res, nil
}

// stripDummies removes Inf padding from a stream sorted in direction dir.
func stripDummies(xs []sortutil.Key, dir sortutil.Direction) []sortutil.Key {
	if dir == sortutil.Ascending {
		return sortutil.StripInf(xs)
	}
	i := 0
	for i < len(xs) && xs[i] == sortutil.Inf {
		i++
	}
	return xs[i:]
}

// SingleFaultView builds the §2.1 view of a whole n-cube with one faulty
// processor: addresses are reindexed by XOR with the fault so it sits at
// logical 0, and logical 0 is marked dead.
func SingleFaultView(n int, fault cube.NodeID) View {
	v := FullCube(n)
	v.Pivot = fault
	v.Dead = true
	return v
}

// SubcubeView builds the view of one subcube of a split (the paper's
// F_n^m component): sc identifies the subcube's fixed coordinates, and
// deadW, if non-nil, is the physical local address (in the subcube's free
// dimensions, ascending order = local bit order) of its dead processor.
func SubcubeView(h cube.Hypercube, sc cube.Subcube, deadW *cube.NodeID) View {
	v := View{Dims: sc.FreeDims(h), Fixed: sc.Value & sc.Mask}
	if deadW != nil {
		v.Pivot = *deadW
		v.Dead = true
	}
	return v
}
