// Command docslint enforces the repository's documentation contract
// without external tooling:
//
//   - every package has a package comment on at least one file;
//   - every exported top-level declaration (func, type, const, var,
//     method) carries a doc comment that begins with the identifier's
//     name, per standard godoc style;
//   - every relative link in the repository's Markdown files resolves
//     to a file that exists;
//   - every flag declared by cmd/serve is documented in README.md or
//     OBSERVABILITY.md, and every flag listed under OBSERVABILITY.md's
//     "Running the service" heading is actually declared;
//   - every experiment ID (E1, E24, ranges like E3-E6) referenced in
//     the repository docs resolves to a unique EXPERIMENTS.md heading,
//     and every heading is cited from CHANGES.md or DESIGN.md.
//
// Usage:
//
//	docslint [-root dir]
//
// It prints one finding per line and exits nonzero if any were found.
// The same checks run inside `go test ./cmd/docslint`, so CI's ordinary
// test leg enforces the contract; the binary exists for editor and
// pre-commit use.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()
	findings := Lint(*root)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Lint runs every check against the tree rooted at root and returns the
// findings, sorted, one human-readable line each.
func Lint(root string) []string {
	var findings []string
	findings = append(findings, LintGoDocs(root)...)
	findings = append(findings, LintMarkdownLinks(root)...)
	findings = append(findings, LintServeFlags(root)...)
	findings = append(findings, LintExperimentIDs(root)...)
	sort.Strings(findings)
	return findings
}

// LintGoDocs checks package comments and exported-symbol doc comments
// in every non-test Go file under root. Vendored and hidden directories
// are skipped; test files are exempt (their exported helpers are
// package-local test plumbing, not API).
func LintGoDocs(root string) []string {
	var findings []string
	pkgs := map[string][]*goFile{} // directory -> parsed files
	fset := token.NewFileSet()
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			findings = append(findings, fmt.Sprintf("%s: parse error: %v", rel(root, path), perr))
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], &goFile{path: path, file: f})
		return nil
	})

	for dir, files := range pkgs {
		hasPkgDoc := false
		for _, gf := range files {
			if gf.file.Doc != nil && len(strings.TrimSpace(gf.file.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", rel(root, dir), files[0].file.Name.Name))
		}
		for _, gf := range files {
			findings = append(findings, lintFileDecls(root, fset, gf)...)
		}
	}
	return findings
}

// goFile pairs a parsed file with its path for reporting.
type goFile struct {
	path string
	file *ast.File
}

// lintFileDecls checks every exported top-level declaration in one file.
func lintFileDecls(root string, fset *token.FileSet, gf *goFile) []string {
	var findings []string
	report := func(pos token.Pos, name, what string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s %s", rel(root, gf.path), p.Line, what, name, "has no doc comment starting with its name"))
	}
	for _, decl := range gf.file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods on unexported receivers are not reachable API.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			if !docStartsWith(d.Doc, d.Name.Name) {
				report(d.Pos(), d.Name.Name, what)
			}
		case *ast.GenDecl:
			findings = append(findings, lintGenDecl(root, fset, gf, d)...)
		}
	}
	return findings
}

// lintGenDecl checks one const/var/type block. A doc comment on the
// block covers its members (the standard grouped-declaration idiom), so
// per-spec comments are only demanded when the block itself is bare.
func lintGenDecl(root string, fset *token.FileSet, gf *goFile, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT {
		return nil
	}
	blockDoc := d.Doc != nil && len(strings.TrimSpace(d.Doc.Text())) > 0
	var findings []string
	report := func(pos token.Pos, name, what string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", rel(root, gf.path), p.Line, what, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			// For a single-type declaration godoc style wants the name in
			// the comment; grouped types just need some comment.
			if len(d.Specs) == 1 {
				if !docStartsWith(d.Doc, s.Name.Name) {
					report(s.Pos(), s.Name.Name, "type")
				}
			} else if !blockDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) {
				report(s.Pos(), s.Name.Name, "type")
			}
		case *ast.ValueSpec:
			if blockDoc || (s.Doc != nil && len(strings.TrimSpace(s.Doc.Text())) > 0) ||
				(s.Comment != nil && len(strings.TrimSpace(s.Comment.Text())) > 0) {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					what := "const"
					if d.Tok == token.VAR {
						what = "var"
					}
					report(n.Pos(), n.Name, what)
				}
			}
		}
	}
	return findings
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// docStartsWith reports whether the comment group exists and its first
// word is name (allowing the "A/An/The Name ..." article prefix that
// godoc also accepts).
func docStartsWith(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	text := strings.TrimSpace(doc.Text())
	if text == "" {
		return false
	}
	// Deprecated markers and directive-style comments count as documented.
	if strings.HasPrefix(text, "Deprecated:") {
		return true
	}
	fields := strings.Fields(text)
	if fields[0] == name {
		return true
	}
	if len(fields) >= 2 {
		switch fields[0] {
		case "A", "An", "The":
			if fields[1] == name {
				return true
			}
		}
	}
	return false
}

// mdLink matches inline Markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// LintMarkdownLinks checks that every relative link in every Markdown
// file under root points at a file or directory that exists. External
// (scheme-prefixed) links and pure in-page anchors are not checked —
// no network access, and anchor slugs are renderer-specific.
func LintMarkdownLinks(root string) []string {
	var findings []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
					strings.HasPrefix(target, "mailto:") {
					continue
				}
				// Trim an in-page anchor from a relative file link.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, serr := os.Stat(resolved); serr != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", rel(root, path), i+1, m[1]))
				}
			}
		}
		return nil
	})
	return findings
}

// rel shortens path for reporting, falling back to the input.
func rel(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil {
		return r
	}
	return path
}
