package routing

import (
	"sync"

	"hypersort/internal/cube"
)

// This file implements multi-path routing: a constructor for
// vertex-disjoint path sets between a hypercube pair, and a Router that
// serves them so the machine can stripe one large compare-split transfer
// across several links at once.
//
// The construction follows the classic rotation argument (and the
// many-to-many disjoint-paths result for faulty hypercubes of Li, Liu,
// Ma & Xu — see PAPERS.md): between nodes at Hamming distance h, the h
// rotations of the differing-dimension sequence yield h internally
// vertex-disjoint shortest paths, and each non-differing dimension d
// yields one more path of length h+2 that first steps "sideways" along
// d and steps back at the end. Faults puncture individual candidates;
// a DFS repair constrained to avoid the intermediates of the paths
// already accepted restores them whenever the surviving cube allows.

// DisjointPaths returns up to k pairwise internally vertex-disjoint
// paths from src to dst, each avoiding the given faulty processors
// (intermediates only — endpoints source and sink their own traffic,
// as everywhere in this package) and faulty links.
//
// k is clamped to [1, n]: an n-cube has exactly n vertex-disjoint paths
// between any pair (Menger), so asking for more can never succeed.
// Fewer than k paths may be returned when faults consume the spare
// connectivity; the call fails only when not even one path exists —
// with ErrNoPathLinks when link faults are present, ErrNoPath
// otherwise. For src == dst the single trivial path is returned.
//
// The result is deterministic: candidates are generated in a fixed
// order (dimension rotations ascending by start index, then detour
// dimensions ascending) and the DFS repair explores dimensions in the
// same fixed order as FaultAvoiding.
func DisjointPaths(h cube.Hypercube, src, dst cube.NodeID, k int, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet) ([]Path, error) {
	if src == dst {
		return []Path{{src}}, nil
	}
	if k < 1 {
		k = 1
	}
	if n := h.Dim(); k > n {
		k = n
	}
	diff := cube.DifferingDims(src, dst)
	used := make(map[cube.NodeID]bool, h.Size())
	paths := make([]Path, 0, k)

	accept := func(p Path) {
		for i := 1; i < len(p)-1; i++ {
			used[p[i]] = true
		}
		paths = append(paths, p)
	}
	usable := func(p Path) bool {
		if !p.AvoidsFaults(nodeFaults) || !p.AvoidsLinkFaults(linkFaults) {
			return false
		}
		for i := 1; i < len(p)-1; i++ {
			if used[p[i]] {
				return false
			}
		}
		return true
	}

	// Candidate family 1: the h rotations of the differing-dimension
	// sequence. Rotation i corrects diff[i], diff[i+1], ..., wrapping —
	// its intermediates have corrected exactly one cyclic interval of
	// diff starting at i, and two distinct proper cyclic intervals with
	// different starts are different sets, so the fault-free candidates
	// are pairwise internally disjoint by construction.
	for i := 0; i < len(diff) && len(paths) < k; i++ {
		p := Path{src}
		cur := src
		for j := 0; j < len(diff); j++ {
			cur = cube.FlipBit(cur, diff[(i+j)%len(diff)])
			p = append(p, cur)
		}
		if usable(p) {
			accept(p)
		} else if rp := repairPath(h, src, dst, nodeFaults, linkFaults, used); rp != nil {
			accept(rp)
		}
	}
	// Candidate family 2: length h+2 detours through each non-differing
	// dimension d — step along d, correct the differing dimensions in
	// ascending order, step back. Every intermediate has bit d flipped
	// relative to both families above, so disjointness is preserved.
	for d := 0; d < h.Dim() && len(paths) < k; d++ {
		if cube.Bit(src, d) != cube.Bit(dst, d) {
			continue
		}
		cur := cube.FlipBit(src, d)
		p := Path{src, cur}
		for _, dd := range diff {
			cur = cube.FlipBit(cur, dd)
			p = append(p, cur)
		}
		p = append(p, dst)
		if usable(p) {
			accept(p)
		} else if rp := repairPath(h, src, dst, nodeFaults, linkFaults, used); rp != nil {
			accept(rp)
		}
	}
	if len(paths) == 0 {
		if len(linkFaults) > 0 {
			return nil, ErrNoPathLinks{Src: src, Dst: dst}
		}
		return nil, ErrNoPath{Src: src, Dst: dst}
	}
	return paths, nil
}

// repairPath searches for a replacement path when a constructed
// candidate hits a fault or an already-used intermediate: a DFS in the
// style of dfsAvoidLinks additionally forbidden from entering the
// intermediates of the accepted paths, so whatever it finds extends the
// disjoint set. Returns nil when no such path exists.
func repairPath(h cube.Hypercube, src, dst cube.NodeID, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet, used map[cube.NodeID]bool) Path {
	visited := make(map[cube.NodeID]bool, h.Size())
	visited[src] = true
	return dfsDisjoint(h, src, dst, nodeFaults, linkFaults, used, visited, Path{src})
}

// dfsDisjoint mirrors dfsAvoidLinks with the extra blocked set of
// intermediates already claimed by accepted paths.
func dfsDisjoint(h cube.Hypercube, cur, dst cube.NodeID, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet, blocked, visited map[cube.NodeID]bool, path Path) Path {
	profitable := cube.DifferingDims(cur, dst)
	inProfit := make(map[int]bool, len(profitable))
	for _, d := range profitable {
		inProfit[d] = true
	}
	order := append([]int(nil), profitable...)
	for d := 0; d < h.Dim(); d++ {
		if !inProfit[d] {
			order = append(order, d)
		}
	}
	for _, d := range order {
		next := cube.FlipBit(cur, d)
		if linkFaults.Has(cur, next) {
			continue
		}
		if next == dst {
			return append(path, next)
		}
		if visited[next] || blocked[next] || nodeFaults.Has(next) {
			continue
		}
		visited[next] = true
		if p := dfsDisjoint(h, next, dst, nodeFaults, linkFaults, blocked, visited, append(path, next)); p != nil {
			return p
		}
	}
	return nil
}

// SplitSegments divides total keys into at most k contiguous segments
// as evenly as possible (the first total%k segments get one extra key).
// k is clamped so no segment is empty; total 0 yields a single empty
// segment. The boundaries depend only on (total, k), which is what
// makes striped transfers reassemble bit-identically: sender and
// receiver agree on the layout without negotiation.
func SplitSegments(total, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > total {
		k = total
	}
	if k == 0 {
		return []int{0}
	}
	segs := make([]int, k)
	base, rem := total/k, total%k
	for i := range segs {
		segs[i] = base
		if i < rem {
			segs[i]++
		}
	}
	return segs
}

// MultiPathRouter serves memoized disjoint path sets. Route and Hops
// answer with the primary (first) path, so the router drops into the
// single-path Router/HopCounter machinery unchanged; the machine's
// striping path calls Paths to get the whole set. Fault sets are fixed
// at construction, so a pair's path set never changes and the memo is
// shared by every machine holding the router (Clones included); it is
// safe for concurrent use.
type MultiPathRouter struct {
	h          cube.Hypercube
	nodeFaults cube.NodeSet
	linkFaults cube.EdgeSet
	maxPaths   int

	mu   sync.RWMutex
	memo map[uint64][]Path
}

// NewMultiPathRouter builds a multi-path router that avoids the given
// faulty processors (pass nil under the partial-fault model, where
// faulty nodes still forward) and faulty links. maxPaths bounds the
// paths constructed per pair; values < 1 select 1 (single-path mode,
// used when only congestion pricing — not striping — is wanted).
func NewMultiPathRouter(h cube.Hypercube, nodeFaults cube.NodeSet, linkFaults cube.EdgeSet, maxPaths int) *MultiPathRouter {
	if nodeFaults == nil {
		nodeFaults = cube.NewNodeSet()
	}
	if linkFaults == nil {
		linkFaults = cube.NewEdgeSet()
	}
	if maxPaths < 1 {
		maxPaths = 1
	}
	return &MultiPathRouter{
		h:          h,
		nodeFaults: nodeFaults.Clone(),
		linkFaults: linkFaults.Clone(),
		maxPaths:   maxPaths,
		memo:       make(map[uint64][]Path),
	}
}

// MaxPaths returns the per-pair path bound.
func (r *MultiPathRouter) MaxPaths() int { return r.maxPaths }

// Paths returns the memoized disjoint path set for the pair. The
// returned slice is shared: treat it as read-only.
func (r *MultiPathRouter) Paths(src, dst cube.NodeID) ([]Path, error) {
	key := memoKey(src, dst)
	r.mu.RLock()
	ps, ok := r.memo[key]
	r.mu.RUnlock()
	if !ok {
		var err error
		ps, err = DisjointPaths(r.h, src, dst, r.maxPaths, r.nodeFaults, r.linkFaults)
		if err != nil {
			ps = []Path{} // cache the failure: empty, non-nil
		}
		r.mu.Lock()
		r.memo[key] = ps
		r.mu.Unlock()
	}
	if len(ps) == 0 {
		if len(r.linkFaults) > 0 {
			return nil, ErrNoPathLinks{Src: src, Dst: dst}
		}
		return nil, ErrNoPath{Src: src, Dst: dst}
	}
	return ps, nil
}

// Route implements Router with the primary path.
func (r *MultiPathRouter) Route(src, dst cube.NodeID) (Path, error) {
	ps, err := r.Paths(src, dst)
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// Hops implements HopCounter with the primary path's hop count.
func (r *MultiPathRouter) Hops(src, dst cube.NodeID) (int, error) {
	ps, err := r.Paths(src, dst)
	if err != nil {
		return 0, err
	}
	return ps[0].Hops(), nil
}

// Name implements Router.
func (r *MultiPathRouter) Name() string { return "multipath" }
