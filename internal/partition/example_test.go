package partition_test

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/partition"
)

// Example reproduces the paper's Example 1 and Example 2: the cutting set
// of Q_5 with faults {3, 5, 16, 24}, the heuristic selection, and the
// dangling processors.
func Example() {
	plan, err := partition.BuildPlan(5, cube.NewNodeSet(3, 5, 16, 24))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mincut:", plan.Mincut())
	fmt.Println("|Ψ|:", len(plan.Set.Sequences))
	fmt.Println("chosen:", plan.Chosen)
	fmt.Println("dangling:", plan.Dangling)
	// Output:
	// mincut: 3
	// |Ψ|: 5
	// chosen: (0, 1, 3)
	// dangling: [18 25 26 27]
}

// ExampleExtraCommCost evaluates the paper's formula (1) for one member
// of the cutting set.
func ExampleExtraCommCost() {
	h := cube.New(5)
	faults := cube.NewNodeSet(3, 5, 16, 24)
	cost, err := partition.ExtraCommCost(h, faults, cube.CutSequence{1, 2, 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cost of (1, 2, 3):", cost)
	// Output: cost of (1, 2, 3): 4
}
