// Quickstart: sort 100k keys on a simulated 64-processor hypercube that
// has three faulty processors, using the public hypersort API.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"hypersort"
)

func main() {
	// A 6-dimensional hypercube (64 processors) with three known faults.
	// In a real deployment the fault list comes from diagnosis (see
	// examples/diagnosis); here we just declare it.
	s, err := hypersort.New(hypersort.Config{
		Dim:    6,
		Faults: []hypersort.NodeID{5, 23, 40},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The partition algorithm has already run: inspect its decisions.
	p := s.Partition()
	fmt.Printf("partitioned Q_6 into %d subcubes (cuts along dims %v)\n", 1<<len(p.Chosen), p.Chosen)
	fmt.Printf("working processors: %d of 61 healthy (%.1f%% utilization, %d dangling)\n",
		p.Working, 100*p.Utilization, len(p.Dangling))

	// Sort a shuffled workload.
	keys := make([]hypersort.Key, 100_000)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = hypersort.Key(rng.Int63())
	}
	sorted, stats, err := s.Sort(keys)
	if err != nil {
		log.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("sorted %d keys in %d simulated time units\n", len(sorted), stats.Makespan)
	fmt.Printf("traffic: %d messages, %d key-hops; compute: %d comparisons\n",
		stats.Messages, stats.KeyHops, stats.Comparisons)

	// Compare with the paper's closed-form worst-case estimate.
	est, err := s.EstimatedTime(len(keys))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed-form worst-case estimate: %d units (measured/estimate = %.2f)\n",
		est, float64(stats.Makespan)/float64(est))
}
