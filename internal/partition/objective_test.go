package partition

import (
	"strings"
	"testing"

	"hypersort/internal/cube"
)

func TestObjectiveString(t *testing.T) {
	if ObjectiveHops.String() != "hops" || ObjectiveCongestion.String() != "congestion" {
		t.Errorf("objective names: %q, %q", ObjectiveHops, ObjectiveCongestion)
	}
	if !strings.Contains(Objective(9).String(), "?") {
		t.Errorf("unknown objective renders %q", Objective(9))
	}
}

// TestExtraCommCostCongestionLowerBound: the congestion objective adds
// per-link contention on top of the hop count, so it can never be
// smaller than formula (1)'s hop-only value for the same sequence.
func TestExtraCommCostCongestionLowerBound(t *testing.T) {
	h := cube.New(5)
	faultSets := []cube.NodeSet{
		cube.NewNodeSet(3, 17),
		cube.NewNodeSet(0, 21, 30),
		cube.NewNodeSet(1, 6, 11, 28),
	}
	for _, faults := range faultSets {
		set, err := FindCuttingSet(h, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range set.Sequences {
			hops, err := ExtraCommCost(h, faults, seq)
			if err != nil {
				t.Fatal(err)
			}
			cong, err := ExtraCommCostCongestion(h, faults, seq)
			if err != nil {
				t.Fatal(err)
			}
			if cong < hops {
				t.Errorf("faults %v seq %v: congestion %d < hops %d",
					faults.Sorted(), seq, cong, hops)
			}
		}
	}
}

// TestSelectObjectiveHopsMatchesSelect: the hops objective is the
// legacy Select, bit for bit — same chosen sequence, same cost.
func TestSelectObjectiveHopsMatchesSelect(t *testing.T) {
	h := cube.New(5)
	faults := cube.NewNodeSet(3, 12, 25)
	set, err := FindCuttingSet(h, faults)
	if err != nil {
		t.Fatal(err)
	}
	legacy, lcost, err := Select(h, faults, set)
	if err != nil {
		t.Fatal(err)
	}
	viaObj, ocost, err := SelectObjective(h, faults, set, ObjectiveHops)
	if err != nil {
		t.Fatal(err)
	}
	if lcost != ocost {
		t.Fatalf("costs diverge: %d vs %d", lcost, ocost)
	}
	for i := range legacy {
		if legacy[i] != viaObj[i] {
			t.Fatalf("sequences diverge: %v vs %v", legacy, viaObj)
		}
	}
}

// TestBuildPlanObjectiveCongestion: the congestion-aware plan is a
// valid single-fault partition and records its objective value.
func TestBuildPlanObjectiveCongestion(t *testing.T) {
	faults := cube.NewNodeSet(3, 12, 25)
	p, err := BuildPlanObjective(5, faults, ObjectiveCongestion)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Split.IsSingleFault(faults) {
		t.Error("congestion plan is not single-fault")
	}
	if p.ExtraComm < 0 {
		t.Errorf("negative objective %d", p.ExtraComm)
	}
	// Fault-free: both objectives are zero and any plan is trivial.
	clean, err := BuildPlanObjective(4, nil, ObjectiveCongestion)
	if err != nil {
		t.Fatal(err)
	}
	if clean.ExtraComm != 0 {
		t.Errorf("fault-free objective = %d", clean.ExtraComm)
	}
	if _, err := BuildPlanObjective(4, nil, Objective(9)); err == nil {
		t.Error("bogus objective accepted")
	}
}

// TestKeyRoutingTag: routing policy 0 appends nothing (pre-multipath
// keys stay byte-identical); nonzero policies get their own keyspace.
func TestKeyRoutingTag(t *testing.T) {
	base := KeyFor(5, []cube.NodeID{3}, nil, 0)
	same := KeyForRouting(5, []cube.NodeID{3}, nil, 0, 0)
	if base != same {
		t.Fatalf("zero-policy key diverged: %q vs %q", base, same)
	}
	multi := KeyForRouting(5, []cube.NodeID{3}, nil, 0, 1)
	if multi == base {
		t.Fatal("routing policy not keyed")
	}
	if !strings.HasSuffix(string(multi), "|r1") {
		t.Fatalf("routing tag missing: %q", multi)
	}
}
