// Diagnosis: the full fault-management cycle the paper assumes — an
// off-line PMC test round identifies the faulty processors from neighbor
// test results (despite faulty testers lying), and the identified set is
// fed straight into the fault-tolerant sorter.
package main

import (
	"fmt"
	"log"
	"sort"

	"hypersort"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	const dim = 6

	// Ground truth: the hardware has these faults, but the software does
	// not know yet.
	trueFaults := []hypersort.NodeID{9, 27, 50}
	fmt.Printf("hardware state (hidden from software): faults at %v\n", trueFaults)

	// Off-line diagnosis round: every processor tests its neighbors;
	// faulty processors answer arbitrarily (seeded here for
	// reproducibility). The hypercube is n-diagnosable, so with at most
	// n faults the syndrome decodes uniquely.
	found, err := hypersort.Diagnose(dim, trueFaults, 1234)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis identified: %v\n", found)

	// Configure the sorter with the DIAGNOSED set — the paper's pipeline.
	s, err := hypersort.New(hypersort.Config{Dim: dim, Faults: found})
	if err != nil {
		log.Fatal(err)
	}
	keys := workload.MustGenerate(workload.Uniform, 50_000, xrand.New(99))
	sorted, stats, err := s.Sort(keys)
	if err != nil {
		log.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("sorted %d keys on the degraded machine in %d simulated units\n",
		len(sorted), stats.Makespan)
	fmt.Printf("utilization: %.1f%% of healthy processors kept working\n",
		100*s.Partition().Utilization)
}
