package engine

import (
	"sync"

	"hypersort/internal/machine"
)

// pool is a bounded pool of simulated machines for one configuration.
// The first acquisition builds a template machine with machine.New (full
// validation); later growth clones the template (the fast-path — shared
// immutable topology and router, fresh per-node state). Once max
// machines exist, acquire blocks until one is released, so a pool can
// never hold more than max machines no matter the request pressure.
type pool struct {
	// build constructs a machine: prev is nil for the template build and
	// the template for clone builds.
	build func(prev *machine.Machine) (*machine.Machine, error)

	// sem holds one token per machine ever created; at capacity, only
	// the idle channel can satisfy an acquire.
	sem chan struct{}
	// idle buffers released machines; capacity == cap(sem), so release
	// never blocks.
	idle chan *machine.Machine

	mu       sync.Mutex
	template *machine.Machine
}

func newPool(max int, build func(prev *machine.Machine) (*machine.Machine, error)) *pool {
	if max < 1 {
		max = 1
	}
	return &pool{
		build: build,
		sem:   make(chan struct{}, max),
		idle:  make(chan *machine.Machine, max),
	}
}

// acquire returns an idle machine, or creates one if the pool is below
// its bound, or blocks until a machine is released.
func (p *pool) acquire() (*machine.Machine, error) {
	// Prefer reuse over growth when a machine is already idle.
	select {
	case m := <-p.idle:
		return m, nil
	default:
	}
	select {
	case m := <-p.idle:
		return m, nil
	case p.sem <- struct{}{}:
		m, err := p.grow()
		if err != nil {
			<-p.sem
			return nil, err
		}
		return m, nil
	}
}

// grow builds one more machine: the template on first call, a clone of
// it afterwards.
func (p *pool) grow() (*machine.Machine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.template == nil {
		m, err := p.build(nil)
		if err != nil {
			return nil, err
		}
		p.template = m
		return m, nil
	}
	return p.build(p.template)
}

// release returns a machine to the pool. Machines reset their own state
// at the start of every Run, so no scrubbing is needed here.
func (p *pool) release(m *machine.Machine) {
	p.idle <- m
}
