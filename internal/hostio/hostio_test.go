package hostio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func TestTextRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	keys := workload.MustGenerate(workload.Uniform, 500, xrand.New(1))
	keys = append(keys, -42, 0) // negatives and zero
	if err := WriteKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sortutil.SameMultiset(got, keys) {
		t.Fatal("text round trip lost keys")
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatal("text round trip reordered keys")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	keys := workload.MustGenerate(workload.Gaussian, 700, xrand.New(2))
	if err := WriteKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatal("binary round trip corrupted keys")
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	content := "# header comment\n10\n\n  20  \n# trailing\n30\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []sortutil.Key{10, 20, 30}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestTextBadLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	if err := os.WriteFile(path, []byte("1\nbanana\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadKeys(path)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4, 5}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKeys(path); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := ReadKeys(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEmptyFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"empty.txt", "empty.bin"} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadKeys(path)
		if err != nil || len(got) != 0 {
			t.Errorf("%s: got %v, %v", name, got, err)
		}
	}
}
