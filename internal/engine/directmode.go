package engine

// Direct-mode execution: the engine can serve eligible sort requests on
// the host-speed substrate (internal/direct) instead of leasing a
// simulated machine. The compiled schedule is cached on the plan entry
// — mode selection is per request, the plan cache is shared — and the
// simulator remains the oracle: sampled direct results are re-executed
// on a pooled machine and cross-checked, and an armed chaos schedule
// forces every request back onto the simulator (fault injection has no
// meaning without one).

import (
	"context"
	"fmt"
	"slices"
	"time"

	"hypersort/internal/bitonic"
	"hypersort/internal/direct"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
)

// Mode selects the execution substrate for eligible requests.
type Mode int

const (
	// ModeSim serves every request on the simulated machine (the
	// default: full virtual-time accounting, measured Results).
	ModeSim Mode = iota
	// ModeDirect serves eligible sorts (full-block protocol, no
	// distribution accounting) on the direct substrate with a predicted
	// Result; everything else — selection ops, half-exchange, and any
	// configuration whose pool has chaos injections armed — stays on the
	// simulator.
	ModeDirect
	// ModeAuto is ModeDirect that additionally yields to the simulator
	// whenever an engine-wide trace hook is attached: direct runs emit
	// no machine events, so a tracing engine keeps the substrate that
	// can be observed.
	ModeAuto
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSim:
		return "sim"
	case ModeDirect:
		return "direct"
	case ModeAuto:
		return "auto"
	}
	return "mode(?)"
}

// SetMode selects the execution substrate for subsequent requests. Call
// before the engine serves traffic, like SetTrace: the field is read
// without locks on the request path.
func (e *Engine) SetMode(m Mode) { e.mode = m }

// SetOracleSample makes direct mode re-execute one in every n direct
// results on the simulator oracle and cross-check the sorted output
// (OracleRuns / ParityBreaks in Metrics, plus the predicted-vs-simulated
// cost error histogram when instrumented). n <= 0 disables sampling
// (the default). The sampled request blocks for the simulated run; pick
// n accordingly. Call before the engine serves traffic.
func (e *Engine) SetOracleSample(n int) { e.oracleSample = n }

// directEligible reports whether a request for cfg/op may run on the
// direct substrate under the engine's mode. Structural eligibility only
// — the armed-chaos check is per pool (see poolArmed) so a disarm
// re-enables direct service without rebuilding anything.
func (e *Engine) directEligible(cfg Config, op Op) bool {
	switch e.mode {
	case ModeDirect:
	case ModeAuto:
		if e.trace != nil {
			return false
		}
	default:
		return false
	}
	// Half-exchange requests ask for the paper's literal two-round wire
	// protocol and AccountDistribution charges simulated distribution
	// time — both are simulator semantics with no direct analogue. Nor
	// has multipath routing one: direct.Predict reproduces the hop-only
	// §3 model, so a congestion-aware makespan would be silently wrong
	// — such plans are declared direct-ineligible instead.
	return op == OpSort && cfg.Protocol == bitonic.FullBlock &&
		!cfg.AccountDistribution && cfg.Routing == machine.RouteSingle
}

// poolArmed reports whether the configuration's machine pool has chaos
// injections armed. An armed pool forces the simulator path: injections
// fire inside simulated runs, so serving direct would silently ignore
// them. A configuration without a pool cannot be armed (arming builds
// the pool's template first).
func (e *Engine) poolArmed(key partition.PlanKey, cfg Config) bool {
	e.mu.Lock()
	p, ok := e.pools[poolKey{pk: key, cost: cfg.Cost}]
	e.mu.Unlock()
	return ok && p.armed()
}

// schedule returns the entry's compiled direct schedule, compiling it on
// first use (single-flight, cached alongside the plan). Call only on a
// successfully planned entry.
func (entry *planEntry) schedule() *direct.Schedule {
	entry.directOnce.Do(func() {
		entry.sched = direct.Compile(entry.layout)
	})
	return entry.sched
}

// serveDirect executes one eligible sort on the direct substrate: borrow
// a pooled executor, sort at host speed, and attach the analytic
// predicted Result. No machine is leased. Sampled results are
// cross-checked against the simulator oracle before returning.
func (e *Engine) serveDirect(key partition.PlanKey, cfg Config, entry *planEntry, req Request) Result {
	sch := entry.schedule()
	x, _ := entry.execs.Get().(*direct.Exec)
	if x == nil {
		x = direct.NewExec(sch)
	}
	out, err := x.Sort(req.Keys)
	entry.execs.Put(x)
	if err != nil {
		return Result{Err: err}
	}
	pred, err := sch.Predict(len(req.Keys), cfg.Cost)
	if err != nil {
		return Result{Err: err}
	}
	e.directReq.Add(1)
	if e.em != nil {
		e.em.DirectRequests.Inc()
	}
	res := Result{Keys: out, Res: pred, Direct: true}
	if n := e.oracleSample; n > 0 && e.oracleTick.Add(1)%int64(n) == 0 {
		e.shadowOracle(key, cfg, entry, req, res)
	}
	return res
}

// shadowOracle re-executes req on a simulated machine and cross-checks
// the direct result: a sorted-output mismatch increments ParityBreaks
// (any nonzero value is a substrate bug), and the predicted-vs-simulated
// makespan error feeds the cost-error histogram. Oracle failures
// (shutdown, injected faults armed between sampling and acquire) skip
// the check rather than fail the already-served request.
func (e *Engine) shadowOracle(key partition.PlanKey, cfg Config, entry *planEntry, req Request, got Result) {
	pl := e.poolFor(poolKey{pk: key, cost: cfg.Cost}, cfg)
	l, err := pl.acquire(context.Background(), e.stop)
	if err != nil {
		return
	}
	defer pl.release(l)
	sim := e.runOnLease(l, entry, req)
	if sim.Err != nil {
		return
	}
	e.oracleRuns.Add(1)
	if e.em != nil {
		e.em.OracleRuns.Inc()
	}
	if !slices.Equal(sim.Keys, got.Keys) {
		e.parityBreaks.Add(1)
		if e.em != nil {
			e.em.DirectParityBreaks.Inc()
		}
	}
	if e.em != nil && sim.Res.Makespan > 0 {
		d := got.Res.Makespan - sim.Res.Makespan
		if d < 0 {
			d = -d
		}
		e.em.DirectCostError.Observe(int64(d) * 1000 / int64(sim.Res.Makespan))
	}
}

// DoDirect serves req inline on the caller's goroutine if — and only if
// — it is direct-eligible right now: direct mode selected, a sort on the
// full-block protocol without distribution accounting, a valid
// configuration whose plan exists (or builds cleanly), and no chaos
// schedule armed on its pool. It returns (result, true) when it served
// the request and (zero, false) when the caller should fall back to
// DoContext — including on plan failure, so the ordinary path owns the
// error accounting for doomed configurations.
//
// This is the cluster router's fast path: after the router has admitted
// a request, a dispatch lane would add only its bounded admission queue
// ahead of the same serveDirect call, so skipping the lane removes two
// goroutine handoffs per request without weakening any protocol. Callers
// that need admission control must provide their own (the cluster's
// shed limit) — DoDirect itself never queues and never rejects.
func (e *Engine) DoDirect(req Request) (res Result, ok bool) {
	if !e.directEligible(req.Config, req.Op) {
		return Result{}, false
	}
	if err := validate(req.Config); err != nil {
		return Result{}, false
	}
	key := e.planKey(req.Config)
	entry, err := e.plan(key, req.Config)
	if err != nil {
		return Result{}, false
	}
	if e.poolArmed(key, req.Config) {
		return Result{}, false
	}
	defer func() {
		if r := recover(); r != nil {
			res, ok = Result{Err: fmt.Errorf("engine: request panicked: %v", r)}, true
		}
	}()
	em := e.em
	var start time.Time
	if em != nil {
		start = time.Now()
	}
	res = e.serveDirect(key, req.Config, entry, req)
	e.requests.Add(1)
	if em != nil {
		em.Requests.Inc()
		if res.Err != nil {
			em.Failures.Inc()
		}
		em.Latency.Observe(time.Since(start).Nanoseconds())
	}
	return res, true
}

// directOK reports whether this lane's batches may execute on the direct
// substrate right now. Re-checked per batch: arming chaos flips the lane
// back to fused simulated runs, disarming flips it forward again.
func (ln *lane) directOK() bool {
	return ln.e.directEligible(ln.cfg, OpSort) && !ln.e.poolArmed(ln.key.pk, ln.cfg)
}

// runDirect serves one gathered batch on the direct substrate, inline on
// the dispatcher goroutine — no machine lease, no runner handoff; the
// executor parallelizes internally for large inputs, and batch-level
// concurrency comes from the lanes themselves.
func (ln *lane) runDirect(batch []*item) {
	e := ln.e
	n := 0
	for _, it := range batch {
		if ln.claim(it) {
			it.finish(e.serveDirect(ln.key.pk, ln.cfg, ln.entry, it.req))
			n++
		}
	}
	if n == 0 {
		return
	}
	e.directBat.Add(1)
	if e.em != nil {
		e.em.DirectBatches.Inc()
		e.em.BatchSize.Observe(int64(n))
	}
}
