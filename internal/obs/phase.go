package obs

// Phase identifies one stage of the paper's algorithms for per-phase
// breakdowns. The Step numbers refer to the fault-tolerant sort of the
// paper's §3 (Steps 1-8); the selection phases cover the companion
// k-selection algorithm (internal/selection).
type Phase int

// Algorithm phases, in execution order.
const (
	// PhaseStep2Distribute is the host scatter/gather of keys (Step 2 and
	// the final collection), accounted only when
	// core.Options.AccountDistribution is on.
	PhaseStep2Distribute Phase = iota
	// PhaseStep3Local is each processor's local heapsort at the start of
	// Step 3.
	PhaseStep3Local
	// PhaseStep3Intra is the intra-subcube bitonic merge network
	// completing Step 3.
	PhaseStep3Intra
	// PhaseStep7Exchange is the cross-subcube compare-split of Step 7.
	PhaseStep7Exchange
	// PhaseStep8Resort is the full subcube re-sort of Step 8.
	PhaseStep8Resort
	// PhaseSelLocalSort is selection's local pre-sort of each chunk.
	PhaseSelLocalSort
	// PhaseSelReduce is selection's AllReduce rank-count rounds.
	PhaseSelReduce
	numPhases
)

// String returns the phase's metric label.
func (p Phase) String() string {
	switch p {
	case PhaseStep2Distribute:
		return "step2_distribute"
	case PhaseStep3Local:
		return "step3_local_sort"
	case PhaseStep3Intra:
		return "step3_intra_merge"
	case PhaseStep7Exchange:
		return "step7_exchange"
	case PhaseStep8Resort:
		return "step8_resort"
	case PhaseSelLocalSort:
		return "selection_local_sort"
	case PhaseSelReduce:
		return "selection_reduce"
	}
	return "unknown"
}

// phaseCells is one phase's counter trio.
type phaseCells struct {
	vtime    *Counter
	compares *Counter
	count    *Counter
}

// PhaseSet accumulates per-phase virtual time and comparison counts for
// the kernels. One PhaseSet is shared by every processor goroutine of
// every run feeding it (Observe is two-to-three atomic adds), so a
// process needs exactly one, registered against a registry. A nil
// *PhaseSet disables phase accounting at every call site.
//
// The backing metric families are:
//
//	hypersort_phase_vtime_total{phase="..."}        virtual-time units
//	hypersort_phase_comparisons_total{phase="..."}  key comparisons
//	hypersort_phase_steps_total{phase="..."}        instrumented intervals
type PhaseSet struct {
	cells [numPhases]phaseCells
}

// NewPhaseSet registers the phase counter families in r and returns the
// set. Registration is idempotent: two NewPhaseSet calls on one registry
// share the same counters.
func NewPhaseSet(r *Registry) *PhaseSet {
	ps := &PhaseSet{}
	for p := Phase(0); p < numPhases; p++ {
		label := p.String()
		ps.cells[p] = phaseCells{
			vtime: r.LabeledCounter("hypersort_phase_vtime_total",
				"Virtual time spent per algorithm phase, in cost-model units, summed over processors.",
				"phase", label),
			compares: r.LabeledCounter("hypersort_phase_comparisons_total",
				"Key comparisons per algorithm phase, summed over processors.",
				"phase", label),
			count: r.LabeledCounter("hypersort_phase_steps_total",
				"Instrumented intervals per algorithm phase (one per processor per step).",
				"phase", label),
		}
	}
	return ps
}

// Observe records one processor's interval in phase p: vtime cost-model
// units elapsed and comparisons performed. Safe for concurrent use; nil
// receivers are a no-op so call sites can pass an unconfigured set
// through without guarding.
func (ps *PhaseSet) Observe(p Phase, vtime, comparisons int64) {
	if ps == nil || p < 0 || p >= numPhases {
		return
	}
	c := &ps.cells[p]
	c.vtime.Add(vtime)
	c.compares.Add(comparisons)
	c.count.Inc()
}

// VTime returns the accumulated virtual time of phase p (test hook).
func (ps *PhaseSet) VTime(p Phase) int64 { return ps.cells[p].vtime.Value() }

// Comparisons returns the accumulated comparisons of phase p (test hook).
func (ps *PhaseSet) Comparisons(p Phase) int64 { return ps.cells[p].compares.Value() }
