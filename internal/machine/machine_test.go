package machine

import (
	"errors"
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: -1}); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := New(Config{Dim: 3, Faults: cube.NewNodeSet(8)}); err == nil {
		t.Error("fault outside cube accepted")
	}
	m, err := New(Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost() != PaperCostModel() {
		t.Error("zero cost model should default to PaperCostModel")
	}
	if m.Cube().Dim() != 3 {
		t.Error("cube dim wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{Dim: -2})
}

func TestHealthy(t *testing.T) {
	m := MustNew(Config{Dim: 3, Faults: cube.NewNodeSet(0, 5)})
	h := m.Healthy()
	if len(h) != 6 {
		t.Fatalf("healthy = %v", h)
	}
	for _, id := range h {
		if id == 0 || id == 5 {
			t.Error("faulty node listed healthy")
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := MustNew(Config{Dim: 3, Faults: cube.NewNodeSet(2)})
	noop := func(p *Proc) error { return nil }
	if _, err := m.Run([]cube.NodeID{9}, noop); err == nil {
		t.Error("out-of-cube participant accepted")
	}
	if _, err := m.Run([]cube.NodeID{2}, noop); err == nil {
		t.Error("faulty participant accepted")
	}
	if _, err := m.Run([]cube.NodeID{1, 1}, noop); err == nil {
		t.Error("duplicate participant accepted")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := MustNew(Config{Dim: 2, Cost: CostModel{Compare: 2, Elem: 1}})
	res, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Compute(10)
		if p.Clock() != 20 {
			t.Errorf("clock = %d, want 20", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20 || res.Comparisons != 10 {
		t.Errorf("result = %+v", res)
	}
}

func TestSendRecvTiming(t *testing.T) {
	// One hop, 4 keys, Elem=3, Startup=20: latency 20+12 = 32.
	m := MustNew(Config{Dim: 2, Cost: CostModel{Compare: 1, Elem: 3, Startup: 20}})
	keys := []sortutil.Key{1, 2, 3, 4}
	res, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, 7, keys)
		} else {
			got := p.Recv(0, 7)
			if len(got) != 4 {
				t.Errorf("payload = %v", got)
			}
			if p.Clock() != 32 {
				t.Errorf("receiver clock = %d, want 32", p.Clock())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.KeysSent != 4 || res.KeyHops != 4 {
		t.Errorf("stats = %+v", res)
	}
}

func TestMultiHopTiming(t *testing.T) {
	// 0 -> 7 in Q_3 is 3 hops. Per hop: startup 10 + 2 keys * 5 = 20;
	// total 60.
	m := MustNew(Config{Dim: 3, Cost: CostModel{Compare: 1, Elem: 5, Startup: 10}})
	res, err := m.Run([]cube.NodeID{0, 7}, func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(7, 0, []sortutil.Key{1, 2})
		} else {
			p.Recv(0, 0)
			if p.Clock() != 60 {
				t.Errorf("clock = %d, want 60", p.Clock())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyHops != 6 {
		t.Errorf("KeyHops = %d, want 6", res.KeyHops)
	}
}

func TestSendSerializationAtSender(t *testing.T) {
	// Two back-to-back 1-hop sends of 3 keys with Elem=2, Startup=0: the
	// second message leaves after the first (injection serializes), so the
	// second arrival is 12, not 6.
	m := MustNew(Config{Dim: 1, Cost: CostModel{Compare: 1, Elem: 2}})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, 1, []sortutil.Key{1, 2, 3})
			p.Send(1, 2, []sortutil.Key{4, 5, 6})
			return nil
		}
		p.Recv(0, 1)
		first := p.Clock()
		p.Recv(0, 2)
		if p.Clock() <= first {
			t.Errorf("second message not serialized: %d then %d", first, p.Clock())
		}
		if p.Clock() != 12 {
			t.Errorf("second arrival = %d, want 12", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// Receiver asks for tag 2 before tag 1; mailbox matching must pair
	// them correctly regardless of arrival order.
	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, 1, []sortutil.Key{11})
			p.Send(1, 2, []sortutil.Key{22})
			return nil
		}
		if got := p.Recv(0, 2); got[0] != 22 {
			t.Errorf("tag 2 payload = %v", got)
		}
		if got := p.Recv(0, 1); got[0] != 11 {
			t.Errorf("tag 1 payload = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSymmetric(t *testing.T) {
	m := MustNew(Config{Dim: 1, Cost: CostModel{Compare: 1, Elem: 1}})
	res, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		peer := p.ID() ^ 1
		mine := []sortutil.Key{sortutil.Key(p.ID())}
		got := p.Exchange(peer, 5, mine)
		if got[0] != sortutil.Key(peer) {
			t.Errorf("node %d received %v", p.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both sides send 1 key, 1 hop: each clock = 1 (inject) then recv at
	// max(1, 1) = 1.
	if res.Makespan != 1 {
		t.Errorf("makespan = %d, want 1", res.Makespan)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := MustNew(Config{Dim: 2})
	res, err := m.Run([]cube.NodeID{0, 1, 2, 3}, func(p *Proc) error {
		p.Compute(int(p.ID()) * 10) // clocks 0, 10, 20, 30
		p.Barrier()
		if p.Clock() != 30 {
			t.Errorf("node %d clock after barrier = %d, want 30", p.ID(), p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30 {
		t.Errorf("makespan = %d", res.Makespan)
	}
}

func TestKernelErrorAbortsRun(t *testing.T) {
	m := MustNew(Config{Dim: 2})
	boom := errors.New("boom")
	_, err := m.Run(m.Healthy(), func(p *Proc) error {
		if p.ID() == 2 {
			return boom
		}
		// Everyone else blocks on a message that never comes.
		p.Recv(2, 9)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	m := MustNew(Config{Dim: 1})
	_, err := m.Run(m.Healthy(), func(p *Proc) error {
		if p.ID() == 0 {
			panic("kaboom")
		}
		p.Recv(0, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

func TestSendToFaultyTotalFails(t *testing.T) {
	m := MustNew(Config{Dim: 2, Faults: cube.NewNodeSet(3), Model: Total})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Send(3, 0, nil)
		return nil
	})
	if err == nil {
		t.Error("send to totally faulty node succeeded")
	}
}

func TestPartialFaultRoutesThrough(t *testing.T) {
	// Partial model: e-cube route 0->3 passes through faulty node 1 and
	// costs the plain 2 hops.
	m := MustNew(Config{Dim: 2, Faults: cube.NewNodeSet(1), Model: Partial})
	hops, err := m.Hops(0, 3)
	if err != nil || hops != 2 {
		t.Errorf("partial hops = %d, %v", hops, err)
	}
}

func TestTotalFaultDetours(t *testing.T) {
	// Total model: 0->3 must avoid 1; the detour via 2 still costs 2 hops,
	// but if both 1 and 2 are faulty the route grows.
	m := MustNew(Config{Dim: 3, Faults: cube.NewNodeSet(1, 2), Model: Total})
	hops, err := m.Hops(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hops <= 2 {
		t.Errorf("total-model hops = %d, want detour > 2", hops)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	// A ring of exchanges across all nodes: makespan must be identical
	// across repeated runs despite goroutine scheduling.
	cfg := Config{Dim: 4, Cost: DefaultCostModel()}
	kernel := func(p *Proc) error {
		for d := 0; d < p.Dim(); d++ {
			peer := cube.FlipBit(p.ID(), d)
			keys := make([]sortutil.Key, 8)
			got := p.Exchange(peer, Tag(d), keys)
			p.Compute(len(got))
		}
		return nil
	}
	var first Time
	for trial := 0; trial < 5; trial++ {
		m := MustNew(cfg)
		res, err := m.RunAllHealthy(kernel)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("trial %d makespan %d != %d", trial, res.Makespan, first)
		}
	}
}

func TestMachineReusableAcrossRuns(t *testing.T) {
	m := MustNew(Config{Dim: 2})
	kernel := func(p *Proc) error { p.Compute(5); return nil }
	for i := 0; i < 3; i++ {
		res, err := m.RunAllHealthy(kernel)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 5 {
			t.Fatalf("run %d makespan = %d (state leaked across runs?)", i, res.Makespan)
		}
	}
}

func TestSelfSendZeroCost(t *testing.T) {
	m := MustNew(Config{Dim: 2, Cost: CostModel{Compare: 1, Elem: 10, Startup: 10}})
	_, err := m.Run([]cube.NodeID{0}, func(p *Proc) error {
		p.Send(0, 0, []sortutil.Key{1})
		got := p.Recv(0, 0)
		if len(got) != 1 || p.Clock() != 0 {
			t.Errorf("self send cost clock %d, payload %v", p.Clock(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPayloadIsolation(t *testing.T) {
	// Mutating the sent slice after Send must not affect the receiver.
	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 0 {
			buf := []sortutil.Key{1, 2, 3}
			p.Send(1, 0, buf)
			buf[0] = 99
			return nil
		}
		got := p.Recv(0, 0)
		if got[0] != 1 {
			t.Errorf("payload aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInGroup(t *testing.T) {
	m := MustNew(Config{Dim: 2, Faults: cube.NewNodeSet(3)})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if !p.InGroup(0) || !p.InGroup(1) || p.InGroup(2) || p.InGroup(3) {
			t.Error("InGroup wrong")
		}
		if !p.IsFaulty(3) || p.IsFaulty(0) {
			t.Error("IsFaulty wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultModelString(t *testing.T) {
	if Partial.String() != "partial" || Total.String() != "total" {
		t.Error("FaultModel strings wrong")
	}
}

func TestSortedParticipants(t *testing.T) {
	in := []cube.NodeID{5, 1, 3}
	out := SortedParticipants(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("sorted = %v", out)
	}
	if in[0] != 5 {
		t.Error("input mutated")
	}
}

// pingKernel is a tiny deterministic all-pairs exchange used by the
// Clone tests: every participant sends its id to its dimension-0 partner
// and computes once.
func pingKernel(t *testing.T) Kernel {
	return func(p *Proc) error {
		partner := cube.FlipBit(p.ID(), 0)
		if !p.InGroup(partner) {
			p.Compute(3)
			return nil
		}
		p.Send(partner, 1, []sortutil.Key{sortutil.Key(p.ID())})
		got := p.Recv(partner, 1)
		if len(got) != 1 || got[0] != sortutil.Key(partner) {
			t.Errorf("node %d: got %v from %d", p.ID(), got, partner)
		}
		p.Compute(3)
		return nil
	}
}

func TestCloneMatchesOriginal(t *testing.T) {
	orig := MustNew(Config{Dim: 4, Faults: cube.NewNodeSet(5), Model: Total, Cost: DefaultCostModel()})
	clone := orig.Clone()
	if clone == orig {
		t.Fatal("Clone returned the same machine")
	}
	if clone.Cube() != orig.Cube() || clone.Cost() != orig.Cost() || clone.Model() != orig.Model() {
		t.Fatal("clone configuration diverges")
	}
	r1, err := orig.RunAllHealthy(pingKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := clone.RunAllHealthy(pingKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Messages != r2.Messages || r1.KeyHops != r2.KeyHops {
		t.Fatalf("clone result diverges: %+v vs %+v", r1, r2)
	}
}

// TestClonesRunConcurrently is the property the engine's pool depends
// on: clones of one template may Run at the same time, independently,
// with deterministic results. Run under -race.
func TestClonesRunConcurrently(t *testing.T) {
	template := MustNew(Config{Dim: 5, Faults: cube.NewNodeSet(3, 17)})
	want, err := template.RunAllHealthy(pingKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	done := make(chan int, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			m := template.Clone()
			results[i], errs[i] = m.RunAllHealthy(pingKernel(t))
			done <- i
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Makespan != want.Makespan || results[i].Messages != want.Messages {
			t.Fatalf("worker %d diverges: %+v vs %+v", i, results[i], want)
		}
	}
}
