package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func sortedRef(keys []sortutil.Key) []sortutil.Key {
	out := append([]sortutil.Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keysEqual(a, b []sortutil.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterSortAcrossConfigs is the basic routing smoke: a batch
// mixing configurations comes back correctly sorted with per-request
// isolation intact, and every request is accounted for by exactly one
// shard.
func TestClusterSortAcrossConfigs(t *testing.T) {
	c := New(Options{Shards: 3, Replicas: 1, PoolSize: 1, Workers: 4})
	defer c.Close()
	configs := []engine.Config{
		{Dim: 4},
		{Dim: 5, Faults: []cubeNode{3, 17}},
		{Dim: 4, Faults: []cubeNode{1}},
	}
	rng := xrand.New(11)
	var reqs []engine.Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, engine.Request{
			Config: configs[i%len(configs)],
			Op:     engine.OpSort,
			Keys:   workload.MustGenerate(workload.Uniform, 200, rng),
		})
	}
	results := c.Batch(reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if !keysEqual(res.Keys, sortedRef(reqs[i].Keys)) {
			t.Fatalf("request %d: output is not the sorted input", i)
		}
	}
	m := c.Metrics()
	if m.Requests != int64(len(reqs)) {
		t.Fatalf("router requests = %d, want %d", m.Requests, len(reqs))
	}
	if m.Engine.Requests != int64(len(reqs)) {
		t.Fatalf("shard-summed requests = %d, want %d", m.Engine.Requests, len(reqs))
	}
	if m.Sheds != 0 {
		t.Fatalf("unexpected sheds: %d", m.Sheds)
	}
}

// cubeNode abbreviates cube.NodeID in configuration literals.
type cubeNode = cube.NodeID

// TestClusterSpillStaysOnCandidates is the replica-spill determinism
// property: under a seeded storm on ONE hot configuration with an
// aggressive spill threshold, every request is served by the
// configuration's candidate set (home + R replicas) and by nothing else
// — spill widens a hot key's capacity, it never scatters traffic across
// the cluster. The candidate set itself is a pure function of the
// cluster shape, asserted against a second identically-shaped cluster.
func TestClusterSpillStaysOnCandidates(t *testing.T) {
	opts := Options{
		Shards:         4,
		Replicas:       1,
		SpillHighWater: 1, // spill as soon as two requests overlap
		ShedLimit:      1 << 20,
		PoolSize:       1,
		Workers:        8,
		Mode:           engine.ModeDirect,
	}
	c := New(opts)
	defer c.Close()
	cfg := engine.Config{Dim: 5, Faults: []cubeNode{7}}
	cands := c.Candidates(cfg)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want home + 1 replica", cands)
	}
	if c2 := New(opts); true {
		got := c2.Candidates(cfg)
		c2.Close()
		if len(got) != len(cands) || got[0] != cands[0] || got[1] != cands[1] {
			t.Fatalf("candidate set not deterministic across identically-shaped clusters: %v vs %v", got, cands)
		}
	}

	const total = 256
	keys := workload.MustGenerate(workload.Uniform, 256, xrand.New(42))
	want := sortedRef(keys)
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				res := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if !keysEqual(res.Keys, want) {
					errs <- errors.New("unsorted output under spill storm")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := c.Metrics()
	inCands := make(map[int]bool, len(cands))
	for _, s := range cands {
		inCands[s] = true
	}
	var served int64
	for s, sm := range m.Shards {
		if !inCands[s] && sm.Requests != 0 {
			t.Fatalf("non-candidate shard %d served %d requests; storm must stay on %v", s, sm.Requests, cands)
		}
		served += sm.Requests
	}
	if served != total {
		t.Fatalf("candidate shards served %d requests, want %d", served, total)
	}
	if m.Sheds != 0 {
		t.Fatalf("sheds = %d with an unreachable shed limit", m.Sheds)
	}
}

// TestClusterShedsWhenSaturated pins the cluster-wide backpressure
// contract: when the home shard and every replica sit at the shed
// limit, the router refuses the request before it touches any queue,
// and the error satisfies errors.Is for BOTH ErrSaturated and
// engine.ErrAdmissionRejected (so the HTTP layer's existing 503 mapping
// fires unchanged). Load is injected directly into the router's
// in-flight counters to make the saturation state exact rather than
// timing-dependent.
func TestClusterShedsWhenSaturated(t *testing.T) {
	c := New(Options{
		Shards:         3,
		Replicas:       1,
		SpillHighWater: 1,
		ShedLimit:      4,
		PoolSize:       1,
		Workers:        2,
		Mode:           engine.ModeDirect,
	})
	defer c.Close()
	cfg := engine.Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(3))

	cands := c.Candidates(cfg)
	for _, s := range cands {
		c.shards[s].inflight.Add(4)
	}
	res := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
	if res.Err == nil {
		t.Fatal("request served with every eligible shard at the shed limit")
	}
	if !errors.Is(res.Err, ErrSaturated) {
		t.Fatalf("shed error %v does not wrap ErrSaturated", res.Err)
	}
	if !errors.Is(res.Err, engine.ErrAdmissionRejected) {
		t.Fatalf("shed error %v does not wrap engine.ErrAdmissionRejected — 503 mapping would break", res.Err)
	}
	if m := c.Metrics(); m.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", m.Sheds)
	}

	// Relieve ONE replica: the router must spill there instead of
	// shedding.
	c.shards[cands[1]].inflight.Add(-4)
	res = c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("request shed with a free replica available: %v", res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("spilled request returned unsorted output")
	}
	m := c.Metrics()
	if m.Spills != 1 {
		t.Fatalf("spills = %d, want 1", m.Spills)
	}
	if m.Shards[cands[1]].Requests != 1 {
		t.Fatalf("relieved replica served %d requests, want 1", m.Shards[cands[1]].Requests)
	}

	// Full relief: traffic returns home.
	c.shards[cands[0]].inflight.Add(-4)
	res = c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("request failed after relief: %v", res.Err)
	}
	if got := c.Metrics().Shards[cands[0]].Requests; got != 1 {
		t.Fatalf("home shard served %d requests after relief, want 1", got)
	}
}

// TestClusterChaosReplansOnHomeShardOnly verifies recovery composes
// with sharding: with spill disabled, an injected mid-run kill strikes
// the configuration's home shard, recovery happens THERE, and no other
// shard replans (none ever saw the configuration). InjectFault arms
// every shard — covering where traffic could go — but only the shard
// that serves the traffic fires.
func TestClusterChaosReplansOnHomeShardOnly(t *testing.T) {
	c := New(Options{Shards: 3, Replicas: 0, PoolSize: 1, Workers: 2})
	defer c.Close()
	cfg := engine.Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 400, xrand.New(61))

	clean := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	mid := clean.Res.Makespan / 2
	if mid <= 0 {
		t.Fatalf("healthy makespan %d too small to bisect", clean.Res.Makespan)
	}
	if err := c.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 5, At: mid}); err != nil {
		t.Fatal(err)
	}
	res := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("recovery through the cluster failed: %v", res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("recovered output is not the sorted input")
	}

	home := c.Candidates(cfg)[0]
	m := c.Metrics()
	for s, sm := range m.Shards {
		if s == home {
			if sm.Replans < 1 {
				t.Fatalf("home shard %d replans = %d, want >= 1", s, sm.Replans)
			}
			continue
		}
		if sm.Replans != 0 || sm.Requests != 0 {
			t.Fatalf("shard %d saw recovery activity (replans=%d requests=%d); the kill must stay on home shard %d",
				s, sm.Replans, sm.Requests, home)
		}
	}
	if err := c.DisarmFaults(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestClusterConcurrentSpillShedDispatchRace races the three router
// outcomes against each other: a dispatch storm runs while another
// goroutine drives shard load across the spill and shed thresholds and
// a third arms and disarms chaos (flipping the direct fast path off and
// on). Every request must either return the correctly sorted keys or a
// well-formed shed error. Run under -race in CI, this is the router's
// memory-safety certificate.
func TestClusterConcurrentSpillShedDispatchRace(t *testing.T) {
	c := New(Options{
		Shards:         3,
		Replicas:       1,
		SpillHighWater: 2,
		ShedLimit:      6,
		PoolSize:       1,
		Workers:        4,
		Mode:           engine.ModeDirect,
	})
	defer c.Close()
	cfg := engine.Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 128, xrand.New(9))
	want := sortedRef(keys)

	var workers sync.WaitGroup
	var osc sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})

	osc.Add(1)
	go func() { // load oscillator: sweeps every shard across both thresholds
		defer osc.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := c.shards[i%len(c.shards)]
			s.inflight.Add(6)
			s.inflight.Add(-6)
		}
	}()
	workers.Add(1)
	go func() { // chaos flapper: forces direct/sim path flips mid-storm
		defer workers.Done()
		for i := 0; i < 8; i++ {
			if err := c.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 3, At: machine.Time(1 + i)}); err != nil {
				errs <- err
				return
			}
			if err := c.DisarmFaults(cfg); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 16; i++ {
				res := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys})
				if res.Err != nil {
					if !errors.Is(res.Err, ErrSaturated) {
						errs <- res.Err
						return
					}
					continue
				}
				if !keysEqual(res.Keys, want) {
					errs <- errors.New("unsorted output under concurrent spill/shed churn")
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	osc.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClusterInstrument checks the obs wiring: router counters and
// per-shard series land in the registry and move with traffic.
func TestClusterInstrument(t *testing.T) {
	c := New(Options{Shards: 2, Replicas: 1, PoolSize: 1, Workers: 2, Mode: engine.ModeDirect})
	defer c.Close()
	reg := obs.NewRegistry()
	c.Instrument(reg)
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(5))
	cfg := engine.Config{Dim: 4}
	if res := c.Do(engine.Request{Config: cfg, Op: engine.OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	}
	snap := reg.Snapshot()
	if v := snap["hypersort_cluster_requests_total"]; v.Value != 1 {
		t.Fatalf("cluster requests counter = %d, want 1", v.Value)
	}
	if v := snap["hypersort_cluster_router_decision_ns"]; v.Count != 1 {
		t.Fatalf("router decision histogram count = %d, want 1", v.Count)
	}
	home := c.Candidates(cfg)[0]
	series := fmt.Sprintf("hypersort_cluster_shard_requests_total{shard=%d}", home)
	if v := snap[series]; v.Value != 1 {
		t.Fatalf("%s = %d, want 1", series, v.Value)
	}
}
