package machine_test

import (
	"fmt"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// Example runs a two-processor kernel that exchanges payloads and shows
// the deterministic virtual-time accounting.
func Example() {
	m := machine.MustNew(machine.Config{
		Dim:  1,
		Cost: machine.CostModel{Compare: 1, Elem: 2, Startup: 0},
	})
	res, err := m.RunAllHealthy(func(p *machine.Proc) error {
		peer := cube.FlipBit(p.ID(), 0)
		got := p.Exchange(peer, 1, []sortutil.Key{1, 2, 3})
		p.Compute(len(got))
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Each side injects 3 keys at 2 units each (6), receives at t=6, then
	// compares 3 pairs (3): makespan 9.
	fmt.Println("makespan:", res.Makespan)
	fmt.Println("messages:", res.Messages)
	fmt.Println("key-hops:", res.KeyHops)
	// Output:
	// makespan: 9
	// messages: 2
	// key-hops: 6
}
