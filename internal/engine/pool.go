package engine

import (
	"context"
	"sync"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
)

// lease is what a request borrows from a pool: a simulated machine plus
// the reusable per-run scratch tied to it. perNode is the Result.PerNode
// buffer handed to machine.RunInto — it is valid in a returned Result
// only until the next request leases the same entry, which is why
// engine.Result documents a copy-before-hold rule for PerNode.
type lease struct {
	m *machine.Machine
	// perNode is created lazily on the first request that produces one.
	perNode map[cube.NodeID]machine.Time
}

// pool is a bounded pool of simulated machines for one configuration.
// The first acquisition builds a template machine with machine.New (full
// validation); later growth clones the template (the fast-path — shared
// immutable topology and router, fresh per-node state). Once max
// machines exist, acquire blocks until one is released, so a pool can
// never hold more than max machines no matter the request pressure.
type pool struct {
	// build constructs a machine: prev is nil for the template build and
	// the template for clone builds.
	build func(prev *machine.Machine) (*machine.Machine, error)

	// sem holds one token per machine ever created; at capacity, only
	// the idle channel can satisfy an acquire.
	sem chan struct{}
	// idle buffers released leases; capacity == cap(sem), so release
	// never blocks.
	idle chan *lease

	mu       sync.Mutex
	template *machine.Machine
	// all records every machine the pool ever built so Close can retire
	// their persistent workers.
	all []*machine.Machine
}

func newPool(max int, build func(prev *machine.Machine) (*machine.Machine, error)) *pool {
	if max < 1 {
		max = 1
	}
	return &pool{
		build: build,
		sem:   make(chan struct{}, max),
		idle:  make(chan *lease, max),
	}
}

// acquire returns an idle lease, or creates one if the pool is below its
// bound, or blocks until one is released, the context is done, or stop
// closes. An already-idle lease is always preferred, even over an
// expired context — the caller paid the wait either way, and handing it
// capacity is strictly more useful. ctx must be non-nil (pass
// context.Background() to wait unconditionally); stop may be nil. A
// stop-triggered return reports errClosed.
func (p *pool) acquire(ctx context.Context, stop <-chan struct{}) (*lease, error) {
	// Prefer reuse over growth when a machine is already idle.
	select {
	case l := <-p.idle:
		return l, nil
	default:
	}
	select {
	case l := <-p.idle:
		return l, nil
	case p.sem <- struct{}{}:
		l, err := p.grow()
		if err != nil {
			<-p.sem
			return nil, err
		}
		return l, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-stop:
		return nil, errClosed
	}
}

// grow builds one more machine: the template on first call, a clone of
// it afterwards.
func (p *pool) grow() (*lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.template == nil {
		m, err := p.build(nil)
		if err != nil {
			return nil, err
		}
		p.template = m
		p.all = append(p.all, m)
		return &lease{m: m}, nil
	}
	m, err := p.build(p.template)
	if err != nil {
		return nil, err
	}
	p.all = append(p.all, m)
	return &lease{m: m}, nil
}

// release returns a lease to the pool. Machines reset their own state
// at the start of every Run, so no scrubbing is needed here.
func (p *pool) release(l *lease) {
	p.idle <- l
}

// arm schedules live fault injections on the pool's shared injector. It
// leases a machine first, which forces the template build on a cold pool
// and guarantees the lease/template invariant (a non-empty pool always
// has a template); arming the template arms every clone, existing and
// future, because Clone shares the injector.
func (p *pool) arm(injs ...machine.Injection) error {
	l, err := p.acquire(context.Background(), nil)
	if err != nil {
		return err
	}
	defer p.release(l)
	p.mu.Lock()
	t := p.template
	p.mu.Unlock()
	return t.Arm(injs...)
}

// disarm clears the pool's injection schedule, fired entries included.
func (p *pool) disarm() error {
	l, err := p.acquire(context.Background(), nil)
	if err != nil {
		return err
	}
	defer p.release(l)
	p.mu.Lock()
	t := p.template
	p.mu.Unlock()
	t.DisarmInjections()
	return nil
}

// armed reports whether the pool's shared injection schedule is
// non-empty. A cold pool (no template yet) is never armed: arm() forces
// the template build, so an un-built pool cannot have been armed.
func (p *pool) armed() bool {
	p.mu.Lock()
	t := p.template
	p.mu.Unlock()
	return t != nil && t.InjectionsArmed()
}

// close retires the persistent workers of every machine the pool built.
// Callers must guarantee no request is still running on them.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.all {
		m.Close()
	}
}
