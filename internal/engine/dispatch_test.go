package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// gateTrace installs a machine trace hook that blocks every traced event
// until the returned release function is called — the deterministic way
// to hold a request "running" on its leased machine while the test
// arranges queue conditions behind it. Must be installed before the
// engine builds any machine.
func gateTrace(e *Engine) (release func()) {
	gate := make(chan struct{})
	e.SetTrace(func(machine.TraceEvent) { <-gate })
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCancelWhileQueuedBatchedPath is the regression test for
// deadline-aware admission on the dispatcher path: a sort request whose
// context is cancelled while it waits behind a saturated pool must
// return promptly with the context error, and must not leak a pool
// token or a queue slot — the engine stays fully usable.
func TestCancelWhileQueuedBatchedPath(t *testing.T) {
	e := NewOpts(1, 4, BatchOptions{MaxBatch: 1, QueueDepth: 8})
	defer e.Close()
	release := gateTrace(e)
	defer release()

	cfg := Config{Dim: 3, Faults: []cube.NodeID{2}}
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(11))

	// Request 1 leases the only machine and stalls on the trace gate.
	first := make(chan Result, 1)
	go func() { first <- e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}) }()
	waitFor(t, "first request to start its fused run", func() bool {
		return e.Metrics().FusedRequests == 1
	})

	// Request 2 queues behind it; cancel while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan Result, 1)
	go func() {
		second <- e.DoContext(ctx, Request{Config: cfg, Op: OpSort, Keys: keys})
	}()
	time.Sleep(5 * time.Millisecond) // let it reach the lane queue
	cancel()
	select {
	case res := <-second:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("cancelled request returned %v, want context.Canceled", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return promptly")
	}
	if got := e.Metrics().Cancelled; got != 1 {
		t.Fatalf("Cancelled = %d, want 1", got)
	}

	// Unblock request 1 and prove nothing leaked: it completes, and a
	// fresh request still gets the machine.
	release()
	if res := <-first; res.Err != nil {
		t.Fatalf("first request failed: %v", res.Err)
	}
	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatalf("request after cancellation failed: %v", res.Err)
	}
}

// TestCancelWhileQueuedDirectPath covers the same regression on the
// pool-only path (batching disabled): a request blocked in the machine
// pool's acquire must honor cancellation.
func TestCancelWhileQueuedDirectPath(t *testing.T) {
	e := NewOpts(1, 4, BatchOptions{Disabled: true})
	defer e.Close()
	release := gateTrace(e)
	defer release()

	cfg := Config{Dim: 3}
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(12))
	first := make(chan Result, 1)
	go func() { first <- e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}) }()
	waitFor(t, "first request to lease the machine", func() bool {
		return e.Metrics().MachinesBuilt == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan Result, 1)
	go func() {
		second <- e.DoContext(ctx, Request{Config: cfg, Op: OpSort, Keys: keys})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case res := <-second:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("cancelled request returned %v, want context.Canceled", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return promptly")
	}
	if got := e.Metrics().Cancelled; got != 1 {
		t.Fatalf("Cancelled = %d, want 1", got)
	}
	release()
	if res := <-first; res.Err != nil {
		t.Fatalf("first request failed: %v", res.Err)
	}
	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatalf("request after cancellation failed: %v", res.Err)
	}
}

// TestAdmissionRejection fills a lane's bounded queue behind a stalled
// machine and checks the overflow is refused fast with
// ErrAdmissionRejected while every admitted request still completes.
func TestAdmissionRejection(t *testing.T) {
	e := NewOpts(1, 16, BatchOptions{MaxBatch: 1, QueueDepth: 1})
	defer e.Close()
	release := gateTrace(e)
	defer release()

	cfg := Config{Dim: 3, Faults: []cube.NodeID{1}}
	keys := workload.MustGenerate(workload.Uniform, 64, xrand.New(13))
	first := make(chan Result, 1)
	go func() { first <- e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}) }()
	waitFor(t, "first request to start its fused run", func() bool {
		return e.Metrics().FusedRequests == 1
	})

	// With the machine stalled, at most one follower can sit in the
	// dispatcher's pending batch and one in the queue (depth 1); of six
	// followers at least four must be refused.
	const followers = 6
	results := make(chan Result, followers)
	for i := 0; i < followers; i++ {
		go func() { results <- e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}) }()
	}
	waitFor(t, "admission rejections", func() bool {
		return e.Metrics().AdmissionRejected >= followers-2
	})
	release()
	if res := <-first; res.Err != nil {
		t.Fatalf("first request failed: %v", res.Err)
	}
	rejected := 0
	for i := 0; i < followers; i++ {
		res := <-results
		switch {
		case res.Err == nil:
		case errors.Is(res.Err, ErrAdmissionRejected):
			rejected++
		default:
			t.Fatalf("follower failed with %v, want nil or ErrAdmissionRejected", res.Err)
		}
	}
	if rejected < followers-2 {
		t.Fatalf("rejected = %d, want >= %d", rejected, followers-2)
	}
	if got := e.Metrics().AdmissionRejected; got != int64(rejected) {
		t.Fatalf("AdmissionRejected metric = %d, want %d", got, rejected)
	}
}

// TestFusedRunMatchesIndividualRuns is the end-to-end equivalence check:
// K concurrent sort requests served through the continuous-batching
// dispatcher (pool of one machine, so they must coalesce) return
// byte-identical keys and identical deterministic virtual-time stats as
// the same K requests served one at a time with batching disabled —
// across randomized dimensions, fault sets, and both protocols.
func TestFusedRunMatchesIndividualRuns(t *testing.T) {
	rng := xrand.New(42)
	ref := NewOpts(2, 4, BatchOptions{Disabled: true})
	defer ref.Close()
	fused := NewOpts(1, 16, BatchOptions{MaxBatch: 4, MaxLinger: 2 * time.Millisecond})
	defer fused.Close()

	const trials = 8
	const K = 6
	for trial := 0; trial < trials; trial++ {
		dim := 3 + rng.IntN(3) // 3..5
		h := cube.New(dim)
		nFaults := rng.IntN(dim) // 0..dim-1
		seen := cube.NewNodeSet()
		var faults []cube.NodeID
		for len(faults) < nFaults {
			f := cube.NodeID(rng.IntN(h.Size()))
			if !seen.Has(f) {
				seen.Add(f)
				faults = append(faults, f)
			}
		}
		cfg := Config{Dim: dim, Faults: faults}
		if rng.IntN(2) == 0 {
			cfg.Protocol = bitonic.HalfExchange
		}
		m := 50 + rng.IntN(350)

		reqs := make([]Request, K)
		want := make([]Result, K)
		for i := range reqs {
			reqs[i] = Request{
				Config: cfg,
				Op:     OpSort,
				Keys:   workload.MustGenerate(workload.Uniform, m, rng),
			}
			want[i] = ref.Do(reqs[i])
		}
		if want[0].Err != nil {
			// Inseparable fault set: both engines must agree it fails.
			for i := range reqs {
				if res := fused.Do(reqs[i]); res.Err == nil {
					t.Fatalf("trial %d: fused engine sorted a configuration the reference rejects", trial)
				}
			}
			continue
		}

		got := make([]Result, K)
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = fused.Do(reqs[i])
			}(i)
		}
		wg.Wait()

		for i := range got {
			label := fmt.Sprintf("trial %d request %d (dim %d, %d faults, protocol %v)",
				trial, i, dim, nFaults, cfg.Protocol)
			if got[i].Err != nil {
				t.Fatalf("%s: %v", label, got[i].Err)
			}
			if !keysEqual(got[i].Keys, want[i].Keys) {
				t.Fatalf("%s: fused keys diverge from individual run", label)
			}
			g, w := got[i].Res, want[i].Res
			if g.Makespan != w.Makespan || g.Messages != w.Messages ||
				g.KeysSent != w.KeysSent || g.KeyHops != w.KeyHops ||
				g.Comparisons != w.Comparisons {
				t.Errorf("%s: stats differ:\nfused      %+v\nindividual %+v", label, g, w)
			}
		}
	}

	// Across the trials the single-machine engine must actually have
	// coalesced — otherwise this test exercised nothing.
	m := fused.Metrics()
	if m.FusedRequests <= m.FusedBatches {
		t.Fatalf("no coalescing observed: %d fused requests in %d batches", m.FusedRequests, m.FusedBatches)
	}
	t.Logf("coalescing: %d requests in %d fused batches (mean %.2f/batch)",
		m.FusedRequests, m.FusedBatches, float64(m.FusedRequests)/float64(m.FusedBatches))
}

// TestSelectionOpsBypassLanes pins the routing rule: only plain sorts go
// through dispatch lanes; selection ops run on the unbatched pool path and
// never count as fused requests.
func TestSelectionOpsBypassLanes(t *testing.T) {
	e := NewOpts(2, 4, BatchOptions{})
	defer e.Close()
	cfg := Config{Dim: 4, Faults: []cube.NodeID{7}}
	keys := workload.MustGenerate(workload.Uniform, 200, xrand.New(21))
	if res := e.Do(Request{Config: cfg, Op: OpMedian, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := e.Do(Request{Config: cfg, Op: OpTopK, Keys: keys, K: 5}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if m := e.Metrics(); m.FusedRequests != 0 {
		t.Fatalf("selection ops were fused: FusedRequests = %d, want 0", m.FusedRequests)
	}
}

// TestDoAfterCloseFallsBackToDirectPath: a closed engine must keep
// serving sorts correctly through the unbatched path.
func TestDoAfterCloseFallsBackToDirectPath(t *testing.T) {
	e := NewOpts(2, 4, BatchOptions{})
	cfg := Config{Dim: 3}
	keys := workload.MustGenerate(workload.Uniform, 100, xrand.New(31))
	if res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys}); res.Err != nil {
		t.Fatal(res.Err)
	}
	before := e.Metrics().FusedRequests
	e.Close()
	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("sort after Close failed: %v", res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("sort after Close returned wrong keys")
	}
	if after := e.Metrics().FusedRequests; after != before {
		t.Fatalf("request after Close was fused (%d -> %d), want unbatched path", before, after)
	}
}

// TestDeadOnArrivalNeverAdmitted: an already-cancelled context short-
// circuits before planning or queueing.
func TestDeadOnArrivalNeverAdmitted(t *testing.T) {
	e := NewOpts(1, 4, BatchOptions{})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.DoContext(ctx, Request{Config: Config{Dim: 3}, Op: OpSort,
		Keys: workload.MustGenerate(workload.Uniform, 50, xrand.New(41))})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("dead-on-arrival request returned %v, want context.Canceled", res.Err)
	}
	if m := e.Metrics(); m.MachinesBuilt != 0 {
		t.Fatalf("dead-on-arrival request built a machine")
	}
}
