package machine

import (
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

func TestSizeClassRoundTrip(t *testing.T) {
	// Every buffer get hands out must land back in a class whose get size
	// its capacity can serve: put(get(n)) must be reusable for n.
	kp := &keyPool{}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 1000, 1024, 1025, 1 << 20} {
		b := kp.get(n)
		if len(b) != n {
			t.Fatalf("get(%d) returned len %d", n, len(b))
		}
		ptr := &b[0]
		kp.put(b)
		b2 := kp.get(n)
		if &b2[0] != ptr {
			t.Errorf("get(%d) after put did not recycle the buffer", n)
		}
	}
}

func TestPoolGetZero(t *testing.T) {
	kp := &keyPool{}
	if b := kp.get(0); b != nil {
		t.Fatalf("get(0) = %v, want nil", b)
	}
	kp.put(nil) // must not panic
}

func TestPoolBoundedPerClass(t *testing.T) {
	kp := &keyPool{}
	for i := 0; i < maxPerClass+50; i++ {
		kp.put(make([]sortutil.Key, 8))
	}
	fl := &kp.classes[sizeClass(8)]
	if got := len(fl.bufs); got != maxPerClass {
		t.Fatalf("class holds %d buffers, want capped at %d", got, maxPerClass)
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	kp := &keyPool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 1 + (g*13+i)%300
				b := kp.get(n)
				for j := range b {
					b[j] = sortutil.Key(n)
				}
				kp.put(b)
			}
		}(g)
	}
	wg.Wait()
}

// TestRecycledPayloadNotAliased runs many rounds of message traffic with
// release poisoning on and asserts no kernel ever observes the poison
// sentinel: a recycled buffer must never be visible through a previously
// received (and released) slice, across kernels and across runs. The
// ring-exchange kernel releases every payload immediately after copying
// it out, so every buffer cycles through the pool each round.
func TestRecycledPayloadNotAliased(t *testing.T) {
	SetReleasePoison(true)
	defer SetReleasePoison(false)

	m := MustNew(Config{Dim: 4})
	parts := m.Healthy()
	const rounds = 20
	for run := 0; run < 5; run++ {
		_, err := m.Run(parts, func(p *Proc) error {
			next := cube.NodeID((int(p.ID()) + 1) % len(parts))
			prev := cube.NodeID((int(p.ID()) + len(parts) - 1) % len(parts))
			val := sortutil.Key(int(p.ID()) + run*1000)
			payload := []sortutil.Key{val, val + 1, val + 2}
			for r := 0; r < rounds; r++ {
				p.Send(next, Tag(r), payload)
				got := p.Recv(prev, Tag(r))
				want := sortutil.Key(int(prev) + run*1000)
				for i, k := range got {
					if k == poisonKey {
						t.Errorf("run %d round %d: node %d observed poisoned payload", run, r, p.ID())
					}
					if k != want+sortutil.Key(i) {
						t.Errorf("run %d round %d: node %d got[%d] = %d, want %d", run, r, p.ID(), i, k, want+sortutil.Key(i))
					}
				}
				p.Release(got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestReleasePoisonDetectsUseAfterRelease is the positive control for the
// aliasing tests: a kernel that (illegally) reads a buffer after Release,
// once the pool has recycled it into a new Send, must observe either the
// poison sentinel or the new owner's data — never stale original data
// presented as fresh. This pins the poisoning machinery the sort-level
// aliasing tests rely on.
func TestReleasePoisonDetectsUseAfterRelease(t *testing.T) {
	SetReleasePoison(true)
	defer SetReleasePoison(false)

	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 1 {
			p.Send(0, 1, []sortutil.Key{42, 42, 42, 42})
			p.Send(0, 2, []sortutil.Key{7, 7, 7, 7})
			return nil
		}
		got := p.Recv(1, 1)
		p.Release(got)
		// got is now illegal to read. The release poisoned it, so the
		// stale view must be the sentinel (until a new Send reuses it).
		if got[0] != poisonKey {
			t.Errorf("released buffer reads %d, want poison sentinel", got[0])
		}
		second := p.Recv(1, 2)
		p.Release(second)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortMidExchangeRecyclesCleanly pins the abort-cascade/pool
// interaction for live faults: a node killed mid-compare-split strands
// peers in Send/Recv against it, and the abort cascade must neither leak
// their in-flight pooled payloads nor double-release one into two future
// owners. The test kills a node at several different virtual instants
// (striking different points of the exchange schedule), then disarms and
// replays verified ring traffic with poisoning on — a buffer freed twice
// would alias two sends (wrong data), and a stale undelivered payload
// would surface as the poison sentinel.
func TestAbortMidExchangeRecyclesCleanly(t *testing.T) {
	SetReleasePoison(true)
	defer SetReleasePoison(false)

	m := MustNew(Config{Dim: 3})
	defer m.Close()
	parts := m.Healthy()

	traffic := func(p *Proc) error {
		payload := []sortutil.Key{1, 2, 3, 4, 5, 6, 7, 8}
		for r := 0; r < 8; r++ {
			p.Compute(2)
			for d := 0; d < p.Dim(); d++ {
				peer := cube.FlipBit(p.ID(), d)
				got := p.Exchange(peer, Tag(r*p.Dim()+d), payload)
				p.Release(got)
			}
		}
		return nil
	}

	for trial := 0; trial < 6; trial++ {
		if err := m.Arm(Injection{Kind: KillNode, Node: 5, At: Time(trial * 7)}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunAllHealthy(traffic); !IsInjectedDeath(err) {
			t.Fatalf("trial %d: kill did not fire: %v", trial, err)
		}
		m.DisarmInjections()

		// Verified replay: every received key must be the sender's exact
		// payload — never poison, never another round's buffer.
		_, err := m.Run(parts, func(p *Proc) error {
			next := cube.NodeID((int(p.ID()) + 1) % len(parts))
			prev := cube.NodeID((int(p.ID()) + len(parts) - 1) % len(parts))
			base := sortutil.Key(int(p.ID())*100 + trial*1000)
			for r := 0; r < 10; r++ {
				p.Send(next, Tag(r), []sortutil.Key{base, base + 1, base + 2})
				got := p.Recv(prev, Tag(r))
				want := sortutil.Key(int(prev)*100 + trial*1000)
				for i, k := range got {
					if k == poisonKey {
						t.Errorf("trial %d round %d: node %d observed poisoned payload after abort", trial, r, p.ID())
					} else if k != want+sortutil.Key(i) {
						t.Errorf("trial %d round %d: node %d got[%d] = %d, want %d", trial, r, p.ID(), i, k, want+sortutil.Key(i))
					}
				}
				p.Release(got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: post-abort replay: %v", trial, err)
		}
	}
}
