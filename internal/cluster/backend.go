package cluster

// The router dispatches to shards through the Backend interface so the
// same ring, spill, and shed machinery drives both deployment shapes:
// in-process engine shards (localShard, this file) and shard processes
// behind the wire protocol (RemoteShard, remote.go). The routing layer
// is deliberately ignorant of which one it holds.

import (
	"context"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
)

// Backend is one shard as the router sees it: the engine request
// surface plus the health and load signals routing decisions consume.
type Backend interface {
	// Do executes one request. Implementations take the direct
	// fast path when they have one; the router has already admitted
	// the request.
	Do(ctx context.Context, req engine.Request) engine.Result
	InjectFault(cfg engine.Config, injs ...machine.Injection) error
	DisarmFaults(cfg engine.Config) error
	Metrics() engine.Metrics
	// Healthy reports whether the shard is currently reachable.
	// In-process shards are always healthy; remote shards flip on
	// transport errors and back on successful reprobe.
	Healthy() bool
	// Load is the shard's own in-flight gauge, or -1 when the backend
	// has no view beyond the router's local accounting (in-process
	// shards). For remote shards this is the figure fed back on the
	// shard's most recent response — it sees load from OTHER proxies
	// too, which the router's local atomic cannot.
	Load() int64
	// QueueWaitNs is the shard's reported median queue wait (0 when
	// unknown) — the Retry-After signal.
	QueueWaitNs() int64
	// Instrument attaches observability to the backend (engine bundles
	// for local shards, transport bundles for remote ones).
	Instrument(r *obs.Registry)
	Close()
}

// localShard adapts one in-process engine to the Backend interface.
type localShard struct {
	eng *engine.Engine
}

// Do serves direct-eligible sorts inline on the caller's goroutine —
// the router already admitted the request, so the lane's bounded queue
// (the only thing a lane adds to a direct batch) is redundant — and
// hands everything else to the engine's ordinary dispatch.
func (b *localShard) Do(ctx context.Context, req engine.Request) engine.Result {
	if res, ok := b.eng.DoDirect(req); ok {
		return res
	}
	return b.eng.DoContext(ctx, req)
}

func (b *localShard) InjectFault(cfg engine.Config, injs ...machine.Injection) error {
	return b.eng.InjectFault(cfg, injs...)
}

func (b *localShard) DisarmFaults(cfg engine.Config) error { return b.eng.DisarmFaults(cfg) }
func (b *localShard) Metrics() engine.Metrics              { return b.eng.Metrics() }
func (b *localShard) Healthy() bool                        { return true }
func (b *localShard) Load() int64                          { return -1 }
func (b *localShard) QueueWaitNs() int64                   { return 0 }
func (b *localShard) Instrument(r *obs.Registry)           { b.eng.Instrument(r) }
func (b *localShard) Close()                               { b.eng.Close() }
