package routing

import (
	"errors"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/xrand"
)

// checkDisjoint verifies the DisjointPaths contract for one call: every
// path valid src→dst, avoiding the fault sets, and no intermediate node
// shared between any two paths.
func checkDisjoint(t *testing.T, h cube.Hypercube, src, dst cube.NodeID, paths []Path, nf cube.NodeSet, lf cube.EdgeSet) {
	t.Helper()
	seen := map[cube.NodeID]int{}
	for i, p := range paths {
		if !p.Valid(src, dst) {
			t.Fatalf("path %d = %v not a valid %d->%d walk", i, p, src, dst)
		}
		if !p.AvoidsFaults(nf) {
			t.Fatalf("path %d = %v crosses a faulty node (faults %v)", i, p, nf.Sorted())
		}
		if !p.AvoidsLinkFaults(lf) {
			t.Fatalf("path %d = %v crosses a dead link", i, p)
		}
		for _, v := range p[1 : len(p)-1] {
			if j, dup := seen[v]; dup {
				t.Fatalf("paths %d and %d share intermediate %d", j, i, v)
			}
			seen[v] = i
		}
	}
}

// TestDisjointPathsFaultFree exercises every (src, dst, k) on fault-free
// Q_3..Q_6: the full Menger count of n vertex-disjoint paths must come
// back, whatever the pair's Hamming distance.
func TestDisjointPathsFaultFree(t *testing.T) {
	for n := 3; n <= 6; n++ {
		h := cube.New(n)
		for src := cube.NodeID(0); src < cube.NodeID(h.Size()); src++ {
			for dst := cube.NodeID(0); dst < cube.NodeID(h.Size()); dst++ {
				if src == dst {
					continue
				}
				for k := 1; k <= n; k++ {
					paths, err := DisjointPaths(h, src, dst, k, nil, nil)
					if err != nil {
						t.Fatalf("Q_%d %d->%d k=%d: %v", n, src, dst, k, err)
					}
					if len(paths) != k {
						t.Fatalf("Q_%d %d->%d k=%d: got %d paths", n, src, dst, k, len(paths))
					}
					checkDisjoint(t, h, src, dst, paths, nil, nil)
				}
			}
		}
	}
}

// TestDisjointPathsRandomFaults is the fault-tolerant property test:
// random fault sets inside the connectivity bound (|node faults| +
// |link faults| < n) must never leave a pair pathless, and every
// returned set must satisfy the full contract.
func TestDisjointPathsRandomFaults(t *testing.T) {
	rng := xrand.New(24)
	for n := 3; n <= 6; n++ {
		h := cube.New(n)
		for trial := 0; trial < 40; trial++ {
			budget := rng.IntN(n) // total faults, < n = edge connectivity
			nodes := cube.NewNodeSet()
			links := cube.NewEdgeSet()
			for i := 0; i < budget; i++ {
				if rng.IntN(2) == 0 {
					nodes.Add(cube.NodeID(rng.IntN(h.Size())))
				} else {
					a := cube.NodeID(rng.IntN(h.Size()))
					links.Add(a, h.Neighbor(a, rng.IntN(n)))
				}
			}
			for probe := 0; probe < 32; probe++ {
				src := cube.NodeID(rng.IntN(h.Size()))
				dst := cube.NodeID(rng.IntN(h.Size()))
				if src == dst || nodes.Has(src) || nodes.Has(dst) {
					continue
				}
				k := 1 + rng.IntN(n)
				paths, err := DisjointPaths(h, src, dst, k, nodes, links)
				if err != nil {
					t.Fatalf("Q_%d %d->%d k=%d faults=%v: %v",
						n, src, dst, k, nodes.Sorted(), err)
				}
				if len(paths) == 0 {
					t.Fatalf("Q_%d %d->%d: empty path set without error", n, src, dst)
				}
				checkDisjoint(t, h, src, dst, paths, nodes, links)
			}
		}
	}
}

// TestDisjointPathsDeterministic: two independent calls (and two
// independent routers) must produce identical path sets — the machine's
// striping order, and therefore its virtual-time accounting, depends on
// it.
func TestDisjointPathsDeterministic(t *testing.T) {
	h := cube.New(5)
	nodes := cube.NewNodeSet(7, 19)
	links := cube.NewEdgeSet(cube.NewEdge(0, 16))
	for src := cube.NodeID(0); src < 32; src += 3 {
		for dst := cube.NodeID(1); dst < 32; dst += 5 {
			if src == dst || nodes.Has(src) || nodes.Has(dst) {
				continue
			}
			a, errA := DisjointPaths(h, src, dst, 5, nodes, links)
			b, errB := DisjointPaths(h, src, dst, 5, nodes, links)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%d->%d: error divergence %v vs %v", src, dst, errA, errB)
			}
			if len(a) != len(b) {
				t.Fatalf("%d->%d: %d vs %d paths", src, dst, len(a), len(b))
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("%d->%d path %d diverged: %v vs %v", src, dst, i, a[i], b[i])
					}
				}
			}
		}
	}
}

func TestDisjointPathsTrivialAndClamp(t *testing.T) {
	h := cube.New(4)
	p, err := DisjointPaths(h, 5, 5, 3, nil, nil)
	if err != nil || len(p) != 1 || len(p[0]) != 1 || p[0][0] != 5 {
		t.Fatalf("self paths = %v, %v", p, err)
	}
	paths, err := DisjointPaths(h, 0, 15, 99, nil, nil)
	if err != nil || len(paths) != 4 {
		t.Fatalf("k clamp: got %d paths, %v", len(paths), err)
	}
	paths, err = DisjointPaths(h, 0, 1, 0, nil, nil)
	if err != nil || len(paths) != 1 {
		t.Fatalf("k floor: got %d paths, %v", len(paths), err)
	}
}

// TestDisjointPathsIsolatedPair: when faults sever every route, the
// error kind must report whether link faults were in play — and
// ErrNoPathLinks must unwrap to ErrNoPath so callers matching the
// generic kind with errors.Is keep working.
func TestDisjointPathsIsolatedPair(t *testing.T) {
	h := cube.New(3)
	// Cut all three of node 0's edges.
	links := cube.NewEdgeSet(cube.NewEdge(0, 1), cube.NewEdge(0, 2), cube.NewEdge(0, 4))
	_, err := DisjointPaths(h, 0, 7, 2, nil, links)
	if err == nil {
		t.Fatal("expected no-path error")
	}
	var linkErr ErrNoPathLinks
	if !errors.As(err, &linkErr) {
		t.Fatalf("error %v is not ErrNoPathLinks", err)
	}
	if !errors.Is(err, ErrNoPath{Src: 0, Dst: 7}) {
		t.Fatalf("ErrNoPathLinks does not unwrap to ErrNoPath: %v", err)
	}
	// Node faults only: the generic kind, directly.
	_, err = DisjointPaths(h, 0, 7, 2, cube.NewNodeSet(1, 2, 4), nil)
	if !errors.Is(err, ErrNoPath{Src: 0, Dst: 7}) {
		t.Fatalf("node-fault isolation error = %v", err)
	}
}

func TestSplitSegments(t *testing.T) {
	cases := []struct {
		total, k int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{5, 1, []int{5}},
		{3, 5, []int{1, 1, 1}},
		{0, 4, []int{0}},
		{7, 0, []int{7}},
	}
	for _, c := range cases {
		got := SplitSegments(c.total, c.k)
		if len(got) != len(c.want) {
			t.Errorf("SplitSegments(%d,%d) = %v, want %v", c.total, c.k, got, c.want)
			continue
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("SplitSegments(%d,%d) = %v, want %v", c.total, c.k, got, c.want)
				break
			}
		}
		if sum != c.total {
			t.Errorf("SplitSegments(%d,%d) sums to %d", c.total, c.k, sum)
		}
	}
}

func TestMultiPathRouter(t *testing.T) {
	h := cube.New(4)
	r := NewMultiPathRouter(h, nil, nil, 4)
	if r.Name() != "multipath" || r.MaxPaths() != 4 {
		t.Fatalf("router identity: %q, %d", r.Name(), r.MaxPaths())
	}
	paths, err := r.Paths(0, 15)
	if err != nil || len(paths) != 4 {
		t.Fatalf("Paths = %d paths, %v", len(paths), err)
	}
	// Memoized lookups must return the identical (cached) path set.
	again, err := r.Paths(0, 15)
	if err != nil || &again[0][0] != &paths[0][0] {
		t.Error("second lookup did not hit the memo")
	}
	// Route/Hops serve the primary path.
	p, err := r.Route(0, 15)
	if err != nil || p.Hops() != 4 {
		t.Fatalf("Route = %v, %v", p, err)
	}
	if got, err := r.Hops(0, 15); err != nil || got != 4 {
		t.Fatalf("Hops = %d, %v", got, err)
	}
	// Failures are memoized too, and re-erred on every lookup.
	blocked := NewMultiPathRouter(cube.New(3), cube.NewNodeSet(1, 2, 4), nil, 3)
	for i := 0; i < 2; i++ {
		if _, err := blocked.Paths(0, 7); err == nil {
			t.Fatal("expected error from isolated pair")
		}
	}
}
