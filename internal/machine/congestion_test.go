package machine

import (
	"strings"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// exchangeKernel sends each participant's payload to its dimension-0
// partner and receives the partner's — the shape of one compare-split
// round, large enough to clear the striping threshold.
func exchangeKernel(size int) Kernel {
	return func(p *Proc) error {
		partner := cube.FlipBit(p.ID(), 0)
		payload := make([]sortutil.Key, size)
		for i := range payload {
			payload[i] = sortutil.Key(int(p.ID())*size + i)
		}
		p.Send(partner, 1, payload)
		got := p.Recv(partner, 1)
		if len(got) != size {
			p.fail(errTest)
		}
		return nil
	}
}

var errTest = errInvalid("congestion test: wrong payload length")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// sameCounters compares the scalar accounting of two Results (Result
// holds a per-node map, so it is not directly comparable).
func sameCounters(a, b Result) bool {
	return a.Makespan == b.Makespan && a.Messages == b.Messages &&
		a.KeysSent == b.KeysSent && a.KeyHops == b.KeyHops &&
		a.Comparisons == b.Comparisons && a.LinkWait == b.LinkWait &&
		a.MaxLinkOccupancy == b.MaxLinkOccupancy && a.StripedSends == b.StripedSends
}

func allNodes(dim int) []cube.NodeID {
	ids := make([]cube.NodeID, 1<<dim)
	for i := range ids {
		ids[i] = cube.NodeID(i)
	}
	return ids
}

// TestCongestionFieldsZeroByDefault: a default (single-path, no hot
// links) machine must not run any congestion code — the new Result
// fields stay zero, the compatibility guarantee behind "bit-identical
// to hop-only pricing".
func TestCongestionFieldsZeroByDefault(t *testing.T) {
	m := MustNew(Config{Dim: 3})
	if m.cong != nil {
		t.Fatal("default config built congestion state")
	}
	res, err := m.Run(allNodes(3), exchangeKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkWait != 0 || res.MaxLinkOccupancy != 0 || res.StripedSends != 0 {
		t.Errorf("congestion fields nonzero on default config: %+v", res)
	}
}

// TestHotLinkRaisesMakespan: pricing a surcharge onto one edge must
// strictly raise the makespan of a run crossing it, and the replay must
// report queueing on the congested wire.
func TestHotLinkRaisesMakespan(t *testing.T) {
	base, err := MustNew(Config{Dim: 3}).Run(allNodes(3), exchangeKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	hot := MustNew(Config{Dim: 3, HotLinks: map[cube.Edge]Time{cube.NewEdge(0, 1): 500}})
	res, err := hot.Run(allNodes(3), exchangeKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= base.Makespan {
		t.Errorf("hot link did not raise makespan: %d vs %d", res.Makespan, base.Makespan)
	}
	if res.MaxLinkOccupancy < 2 {
		// Both directions of every dimension-0 pair share one wire.
		t.Errorf("expected queued occupancy, got %d", res.MaxLinkOccupancy)
	}
	if res.LinkWait == 0 {
		t.Error("expected nonzero link wait")
	}
}

// TestMultipathStripesAndReassembles: a multipath run must stripe the
// large transfer (counted in StripedSends), deliver payloads
// bit-identical to the single-path run, and reproduce itself exactly
// across repeated runs — the replay is sorted by (depart, src, seq), so
// host scheduling must not leak into any counter.
func TestMultipathStripesAndReassembles(t *testing.T) {
	var payloads [2][]sortutil.Key
	kernel := func(slot int) Kernel {
		return func(p *Proc) error {
			partner := cube.FlipBit(p.ID(), 0)
			payload := make([]sortutil.Key, 96)
			for i := range payload {
				payload[i] = sortutil.Key(int(p.ID())*1000 + i)
			}
			p.Send(partner, 1, payload)
			got := p.Recv(partner, 1)
			if p.ID() == 0 {
				payloads[slot] = append([]sortutil.Key(nil), got...)
			}
			return nil
		}
	}
	single := MustNew(Config{Dim: 4})
	if _, err := single.Run(allNodes(4), kernel(0)); err != nil {
		t.Fatal(err)
	}
	multi := MustNew(Config{Dim: 4, Routing: RouteMultipath})
	res, err := multi.Run(allNodes(4), kernel(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.StripedSends == 0 {
		t.Error("no transfer striped")
	}
	if len(payloads[0]) != len(payloads[1]) {
		t.Fatalf("payload lengths diverge: %d vs %d", len(payloads[0]), len(payloads[1]))
	}
	for i := range payloads[0] {
		if payloads[0][i] != payloads[1][i] {
			t.Fatalf("striped payload diverges from single-path at %d", i)
		}
	}
	// Determinism: rerun the multipath machine and compare every counter.
	for trial := 0; trial < 3; trial++ {
		again, err := multi.Run(allNodes(4), kernel(1))
		if err != nil {
			t.Fatal(err)
		}
		if !sameCounters(again, res) {
			t.Fatalf("multipath run not deterministic:\n%+v\n%+v", res, again)
		}
	}
}

// TestMultipathAdaptiveSmallTransfer: transfers under the striping
// threshold stay on the primary path — message counts match the
// single-path run exactly.
func TestMultipathAdaptiveSmallTransfer(t *testing.T) {
	single, err := MustNew(Config{Dim: 3}).Run(allNodes(3), exchangeKernel(8))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MustNew(Config{Dim: 3, Routing: RouteMultipath}).Run(allNodes(3), exchangeKernel(8))
	if err != nil {
		t.Fatal(err)
	}
	if multi.StripedSends != 0 {
		t.Errorf("small transfer striped %d times", multi.StripedSends)
	}
	if multi.Messages != single.Messages || multi.KeysSent != single.KeysSent {
		t.Errorf("unstriped traffic diverges: %+v vs %+v", multi, single)
	}
}

func TestCongestionConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 3, Routing: RoutingPolicy(7)}); err == nil {
		t.Error("bogus routing policy accepted")
	}
	if _, err := New(Config{Dim: 3, HotLinks: map[cube.Edge]Time{{A: 0, B: 3}: 5}}); err == nil {
		t.Error("non-edge hot link accepted")
	}
	if _, err := New(Config{Dim: 3, HotLinks: map[cube.Edge]Time{cube.NewEdge(0, 1): -1}}); err == nil {
		t.Error("negative surcharge accepted")
	}
	if RouteSingle.String() != "ecube" || RouteMultipath.String() != "multipath" {
		t.Errorf("policy names: %q, %q", RouteSingle, RouteMultipath)
	}
}

// TestSessionRejectsCongestion: fused batch sessions interleave sub-run
// send logs, which the per-run occupancy replay cannot segment — the
// machine must refuse to open one rather than mis-price.
func TestSessionRejectsCongestion(t *testing.T) {
	m := MustNew(Config{Dim: 3, Routing: RouteMultipath})
	if _, err := m.OpenSession(allNodes(3)); err == nil ||
		!strings.Contains(err.Error(), "congestion") {
		t.Errorf("OpenSession on congestion-priced machine: %v", err)
	}
	hot := MustNew(Config{Dim: 3, HotLinks: map[cube.Edge]Time{cube.NewEdge(0, 1): 5}})
	if _, err := hot.OpenSession(allNodes(3)); err == nil {
		t.Error("OpenSession accepted hot-link machine")
	}
}

// TestCongestionClone: clones share the congestion state (immutable
// after construction) and price identically.
func TestCongestionClone(t *testing.T) {
	m := MustNew(Config{Dim: 3, Routing: RouteMultipath})
	c := m.Clone()
	a, err := m.Run(allNodes(3), exchangeKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(allNodes(3), exchangeKernel(64))
	if err != nil {
		t.Fatal(err)
	}
	if !sameCounters(a, b) {
		t.Errorf("clone priced differently:\n%+v\n%+v", a, b)
	}
}
