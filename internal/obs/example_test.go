package obs_test

import (
	"os"

	"hypersort/internal/obs"
)

// Example registers the three instrument kinds, records some activity,
// and renders the registry in Prometheus text format — the same bytes
// cmd/serve returns from GET /metrics.
func Example() {
	r := obs.NewRegistry()

	requests := r.Counter("example_requests_total",
		"Requests handled since process start.")
	inFlight := r.Gauge("example_in_flight",
		"Requests currently being handled.")
	latency := r.Histogram("example_latency_ns",
		"Request latency in nanoseconds.")

	for _, ns := range []int64{700, 1100, 90} {
		inFlight.Add(1)
		requests.Inc()
		latency.Observe(ns)
		inFlight.Add(-1)
	}

	r.WritePrometheus(os.Stdout)
	// Output:
	// # HELP example_in_flight Requests currently being handled.
	// # TYPE example_in_flight gauge
	// example_in_flight 0
	// # HELP example_latency_ns Request latency in nanoseconds.
	// # TYPE example_latency_ns histogram
	// example_latency_ns_bucket{le="128"} 1
	// example_latency_ns_bucket{le="1024"} 2
	// example_latency_ns_bucket{le="2048"} 3
	// example_latency_ns_bucket{le="+Inf"} 3
	// example_latency_ns_sum 1890
	// example_latency_ns_count 3
	// # HELP example_requests_total Requests handled since process start.
	// # TYPE example_requests_total counter
	// example_requests_total 3
}

// ExamplePhaseSet shows per-phase accounting as the sort kernels use it:
// each processor reports (virtual time, comparisons) intervals keyed by
// the paper's algorithm steps.
func ExamplePhaseSet() {
	r := obs.NewRegistry()
	ps := obs.NewPhaseSet(r)

	// One processor spent 40 virtual-time units and 17 comparisons in the
	// Step 3 local sort, then 12 units and 5 comparisons in the Step 7
	// cross-subcube exchange.
	ps.Observe(obs.PhaseStep3Local, 40, 17)
	ps.Observe(obs.PhaseStep7Exchange, 12, 5)

	// A nil PhaseSet is a safe no-op — kernels pass it through unguarded.
	var off *obs.PhaseSet
	off.Observe(obs.PhaseStep3Local, 1, 1)

	r.WritePrometheus(os.Stdout)
	// Output:
	// # HELP hypersort_phase_comparisons_total Key comparisons per algorithm phase, summed over processors.
	// # TYPE hypersort_phase_comparisons_total counter
	// hypersort_phase_comparisons_total{phase="selection_local_sort"} 0
	// hypersort_phase_comparisons_total{phase="selection_reduce"} 0
	// hypersort_phase_comparisons_total{phase="step2_distribute"} 0
	// hypersort_phase_comparisons_total{phase="step3_intra_merge"} 0
	// hypersort_phase_comparisons_total{phase="step3_local_sort"} 17
	// hypersort_phase_comparisons_total{phase="step7_exchange"} 5
	// hypersort_phase_comparisons_total{phase="step8_resort"} 0
	// # HELP hypersort_phase_steps_total Instrumented intervals per algorithm phase (one per processor per step).
	// # TYPE hypersort_phase_steps_total counter
	// hypersort_phase_steps_total{phase="selection_local_sort"} 0
	// hypersort_phase_steps_total{phase="selection_reduce"} 0
	// hypersort_phase_steps_total{phase="step2_distribute"} 0
	// hypersort_phase_steps_total{phase="step3_intra_merge"} 0
	// hypersort_phase_steps_total{phase="step3_local_sort"} 1
	// hypersort_phase_steps_total{phase="step7_exchange"} 1
	// hypersort_phase_steps_total{phase="step8_resort"} 0
	// # HELP hypersort_phase_vtime_total Virtual time spent per algorithm phase, in cost-model units, summed over processors.
	// # TYPE hypersort_phase_vtime_total counter
	// hypersort_phase_vtime_total{phase="selection_local_sort"} 0
	// hypersort_phase_vtime_total{phase="selection_reduce"} 0
	// hypersort_phase_vtime_total{phase="step2_distribute"} 0
	// hypersort_phase_vtime_total{phase="step3_intra_merge"} 0
	// hypersort_phase_vtime_total{phase="step3_local_sort"} 40
	// hypersort_phase_vtime_total{phase="step7_exchange"} 12
	// hypersort_phase_vtime_total{phase="step8_resort"} 0
}
